#include "src/frontend/parser.h"

#include <map>
#include <optional>

#include "src/frontend/lexer.h"
#include "src/ir/builder.h"
#include "src/ir/errors.h"

namespace exo2 {

namespace {

/** Scoped information about a name during parsing. */
struct VarInfo
{
    ScalarType type = ScalarType::F32;
    bool is_buffer = false;
};

class Parser
{
  public:
    Parser(std::vector<Token> toks, std::vector<ProcPtr> procs, bool lenient)
        : toks_(std::move(toks)), procs_(std::move(procs)),
          lenient_(lenient) {}

    ProcPtr parse_proc();
    StmtPtr parse_single_stmt();
    ExprPtr parse_full_expr();

  private:
    const Token& peek(int ahead = 0) const
    {
        size_t i = pos_ + static_cast<size_t>(ahead);
        return i < toks_.size() ? toks_[i] : toks_.back();
    }

    Token next() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }

    bool at_symbol(const std::string& s, int ahead = 0) const
    {
        return peek(ahead).kind == TokKind::Symbol && peek(ahead).text == s;
    }

    bool at_name(const std::string& s, int ahead = 0) const
    {
        return peek(ahead).kind == TokKind::Name && peek(ahead).text == s;
    }

    [[noreturn]] void error(const std::string& msg) const
    {
        throw SchedulingError(
            "parse error at line " + std::to_string(peek().line) + ": " +
            msg + " (got '" + peek().text + "')");
    }

    void expect_symbol(const std::string& s)
    {
        if (!at_symbol(s))
            error("expected '" + s + "'");
        next();
    }

    void expect_name(const std::string& s)
    {
        if (!at_name(s))
            error("expected '" + s + "'");
        next();
    }

    std::string expect_ident()
    {
        if (peek().kind != TokKind::Name)
            error("expected identifier");
        return next().text;
    }

    void expect(TokKind k, const std::string& what)
    {
        if (peek().kind != k)
            error("expected " + what);
        next();
    }

    VarInfo lookup(const std::string& name) const
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            auto f = it->find(name);
            if (f != it->end())
                return f->second;
        }
        if (lenient_)
            return VarInfo{ScalarType::F32, true};
        throw SchedulingError("parse error: unknown name '" + name + "'");
    }

    void declare(const std::string& name, VarInfo info)
    {
        scopes_.back()[name] = info;
    }

    ProcPtr find_proc(const std::string& name) const
    {
        for (const auto& p : procs_) {
            if (p->name() == name)
                return p;
        }
        return nullptr;
    }

    ProcArg parse_arg();
    std::vector<StmtPtr> parse_block();
    StmtPtr parse_stmt();
    ExprPtr parse_expr(int min_prec = 0);
    ExprPtr parse_atom();
    ExprPtr parse_access(const std::string& name);
    std::vector<ExprPtr> parse_expr_list(const std::string& close);

    std::vector<Token> toks_;
    std::vector<ProcPtr> procs_;
    bool lenient_;
    size_t pos_ = 0;
    std::vector<std::map<std::string, VarInfo>> scopes_{{}};
};

ProcArg
Parser::parse_arg()
{
    ProcArg a;
    a.name = expect_ident();
    expect_symbol(":");
    if (at_name("size")) {
        next();
        a.type = ScalarType::Index;
        a.is_size = true;
        declare(a.name, {ScalarType::Index, false});
        return a;
    }
    if (at_symbol("[")) {
        // windowed buffer: [f32][M, N]
        next();
        a.type = type_from_name(expect_ident());
        expect_symbol("]");
        a.is_window = true;
    } else {
        a.type = type_from_name(expect_ident());
    }
    if (at_symbol("[")) {
        next();
        a.dims = parse_expr_list("]");
    } else if (a.is_window) {
        error("windowed argument needs dimensions");
    }
    if (at_symbol("@")) {
        next();
        a.mem = memory_from_name(expect_ident());
    } else {
        a.mem = mem_dram();
    }
    declare(a.name, {a.type, !a.dims.empty()});
    return a;
}

ProcPtr
Parser::parse_proc()
{
    expect_name("def");
    std::string name = expect_ident();
    expect_symbol("(");
    std::vector<ProcArg> args;
    if (!at_symbol(")")) {
        args.push_back(parse_arg());
        while (at_symbol(",")) {
            next();
            args.push_back(parse_arg());
        }
    }
    expect_symbol(")");
    expect_symbol(":");
    expect(TokKind::Newline, "newline");
    expect(TokKind::Indent, "indented body");
    std::vector<ExprPtr> preds;
    while (at_name("assert")) {
        next();
        preds.push_back(parse_expr());
        expect(TokKind::Newline, "newline");
    }
    std::vector<StmtPtr> body;
    while (peek().kind != TokKind::Dedent && peek().kind != TokKind::EndOfFile)
        body.push_back(parse_stmt());
    if (peek().kind == TokKind::Dedent)
        next();
    // Drop a lone trailing `pass` used for empty-body procs.
    if (body.size() == 1 && body[0]->kind() == StmtKind::Pass)
        body.clear();
    return Proc::make(std::move(name), std::move(args), std::move(preds),
                      std::move(body));
}

std::vector<StmtPtr>
Parser::parse_block()
{
    expect(TokKind::Newline, "newline");
    if (lenient_ && peek().kind != TokKind::Indent)
        return {};  // pattern with `_` body consumed by caller
    expect(TokKind::Indent, "indented block");
    scopes_.emplace_back();
    std::vector<StmtPtr> body;
    while (peek().kind != TokKind::Dedent &&
           peek().kind != TokKind::EndOfFile) {
        body.push_back(parse_stmt());
    }
    if (peek().kind == TokKind::Dedent)
        next();
    scopes_.pop_back();
    return body;
}

StmtPtr
Parser::parse_stmt()
{
    if (at_name("pass")) {
        next();
        expect(TokKind::Newline, "newline");
        return Stmt::make_pass();
    }
    if (at_name("for")) {
        next();
        std::string iter = expect_ident();
        expect_name("in");
        LoopMode mode = LoopMode::Seq;
        ExprPtr lo;
        ExprPtr hi;
        if (at_name("_") && lenient_) {
            next();
            lo = var("_");
            hi = var("_");
        } else {
            if (at_name("par")) {
                mode = LoopMode::Par;
            } else if (!at_name("seq")) {
                error("expected seq/par");
            }
            next();
            expect_symbol("(");
            scopes_.emplace_back();
            declare(iter, {ScalarType::Index, false});
            lo = parse_expr();
            expect_symbol(",");
            hi = parse_expr();
            expect_symbol(")");
            scopes_.pop_back();
        }
        expect_symbol(":");
        // Pattern form: `for i in _: _` on one line.
        if (lenient_ && at_name("_")) {
            next();
            expect(TokKind::Newline, "newline");
            return Stmt::make_for(iter, lo, hi, {}, mode);
        }
        scopes_.emplace_back();
        declare(iter, {ScalarType::Index, false});
        auto body = parse_block();
        scopes_.pop_back();
        return Stmt::make_for(iter, lo, hi, std::move(body), mode);
    }
    if (at_name("if")) {
        next();
        ExprPtr cond;
        if (lenient_ && at_name("_")) {
            next();
            cond = var("_");
        } else {
            cond = parse_expr();
        }
        expect_symbol(":");
        std::vector<StmtPtr> body;
        std::vector<StmtPtr> orelse;
        if (lenient_ && at_name("_")) {
            next();
            expect(TokKind::Newline, "newline");
        } else {
            body = parse_block();
        }
        if (at_name("else")) {
            next();
            expect_symbol(":");
            orelse = parse_block();
        }
        return Stmt::make_if(cond, std::move(body), std::move(orelse));
    }
    // Remaining forms start with an identifier.
    std::string name = expect_ident();
    // Config write: name.field = e
    if (at_symbol(".")) {
        next();
        std::string field = expect_ident();
        expect_symbol("=");
        ExprPtr rhs = parse_expr();
        expect(TokKind::Newline, "newline");
        return Stmt::make_write_config(name, field, rhs);
    }
    // Alloc: name : type [dims] @ mem
    if (at_symbol(":")) {
        next();
        ScalarType t = at_name("_") && lenient_
                           ? (next(), ScalarType::F32)
                           : type_from_name(expect_ident());
        std::vector<ExprPtr> dims;
        if (at_symbol("[")) {
            next();
            dims = parse_expr_list("]");
        }
        MemoryPtr mem = mem_dram();
        if (at_symbol("@")) {
            next();
            mem = memory_from_name(expect_ident());
        }
        expect(TokKind::Newline, "newline");
        declare(name, {t, !dims.empty()});
        return Stmt::make_alloc(name, t, std::move(dims), mem);
    }
    // Call: name(args)
    if (at_symbol("(")) {
        next();
        std::vector<ExprPtr> args;
        if (!at_symbol(")"))
            args = parse_expr_list(")");
        else
            next();
        expect(TokKind::Newline, "newline");
        ProcPtr callee = find_proc(name);
        if (!callee && !lenient_)
            error("call to unknown procedure '" + name + "'");
        auto call = Stmt::make_call(callee, std::move(args));
        if (!callee)
            call = call->with_name(name);  // pattern: match by name
        return call;
    }
    // Assign / Reduce: name[idx] (=|+=) rhs
    std::vector<ExprPtr> idx;
    if (at_symbol("[")) {
        next();
        idx = parse_expr_list("]");
    }
    bool is_reduce;
    if (at_symbol("=")) {
        is_reduce = false;
    } else if (at_symbol("+=")) {
        is_reduce = true;
    } else {
        error("expected '=' or '+='");
    }
    next();
    ExprPtr rhs = parse_expr();
    expect(TokKind::Newline, "newline");
    VarInfo info = lenient_ && name == "_" ? VarInfo{} : lookup(name);
    if (!is_reduce && idx.empty() && rhs->kind() == ExprKind::Window) {
        declare(name, {rhs->type(), true});
        return Stmt::make_window_decl(name, rhs, rhs->type());
    }
    if (is_reduce) {
        return Stmt::make_reduce(name, std::move(idx), rhs, info.type);
    }
    return Stmt::make_assign(name, std::move(idx), rhs, info.type);
}

std::vector<ExprPtr>
Parser::parse_expr_list(const std::string& close)
{
    std::vector<ExprPtr> out;
    out.push_back(parse_expr());
    while (at_symbol(",")) {
        next();
        out.push_back(parse_expr());
    }
    expect_symbol(close);
    return out;
}

namespace {

int
binop_prec(const std::string& s)
{
    if (s == "or") return 1;
    if (s == "and") return 2;
    if (s == "<" || s == "<=" || s == ">" || s == ">=" || s == "==" ||
        s == "!=") {
        return 3;
    }
    if (s == "+" || s == "-") return 4;
    if (s == "*" || s == "/" || s == "%") return 5;
    return -1;
}

BinOpKind
binop_kind(const std::string& s)
{
    if (s == "or") return BinOpKind::Or;
    if (s == "and") return BinOpKind::And;
    if (s == "<") return BinOpKind::Lt;
    if (s == "<=") return BinOpKind::Le;
    if (s == ">") return BinOpKind::Gt;
    if (s == ">=") return BinOpKind::Ge;
    if (s == "==") return BinOpKind::Eq;
    if (s == "!=") return BinOpKind::Ne;
    if (s == "+") return BinOpKind::Add;
    if (s == "-") return BinOpKind::Sub;
    if (s == "*") return BinOpKind::Mul;
    if (s == "/") return BinOpKind::Div;
    if (s == "%") return BinOpKind::Mod;
    throw InternalError("not a binop: " + s);
}

}  // namespace

ExprPtr
Parser::parse_expr(int min_prec)
{
    ExprPtr lhs = parse_atom();
    for (;;) {
        std::string op_text;
        if (peek().kind == TokKind::Symbol)
            op_text = peek().text;
        else if (at_name("and") || at_name("or"))
            op_text = peek().text;
        else
            break;
        int p = binop_prec(op_text);
        if (p < 0 || p < min_prec)
            break;
        next();
        ExprPtr rhs = parse_expr(p + 1);
        lhs = Expr::make_binop(binop_kind(op_text), lhs, rhs);
    }
    return lhs;
}

ExprPtr
Parser::parse_access(const std::string& name)
{
    // Configuration-state read: name.field.
    if (at_symbol(".")) {
        next();
        std::string field = expect_ident();
        return Expr::make_read_config(name, field, ScalarType::F32);
    }
    // name, name[...], name(...) — with window detection.
    if (at_symbol("(")) {
        next();
        if (name == "stride") {
            std::string buf = expect_ident();
            expect_symbol(",");
            if (peek().kind != TokKind::Number)
                error("stride() dim must be a literal");
            int dim = static_cast<int>(next().number);
            expect_symbol(")");
            return Expr::make_stride(buf, dim);
        }
        std::vector<ExprPtr> args;
        if (!at_symbol(")"))
            args = parse_expr_list(")");
        else
            next();
        ScalarType t =
            args.empty() ? ScalarType::F32 : args[0]->type();
        return Expr::make_extern(name, std::move(args), t);
    }
    if (!at_symbol("[")) {
        VarInfo info = lookup(name);
        return Expr::make_read(name, {}, info.type);
    }
    next();
    VarInfo info = lookup(name);
    std::vector<WindowDim> dims;
    bool has_interval = false;
    for (;;) {
        WindowDim d;
        d.lo = parse_expr();
        if (at_symbol(":")) {
            next();
            d.hi = parse_expr();
            has_interval = true;
        }
        dims.push_back(d);
        if (at_symbol(",")) {
            next();
            continue;
        }
        break;
    }
    expect_symbol("]");
    if (has_interval)
        return Expr::make_window(name, std::move(dims), info.type);
    std::vector<ExprPtr> idx;
    idx.reserve(dims.size());
    for (auto& d : dims)
        idx.push_back(d.lo);
    return Expr::make_read(name, std::move(idx), info.type);
}

ExprPtr
Parser::parse_atom()
{
    const Token& t = peek();
    if (t.kind == TokKind::Number) {
        Token tok = next();
        if (tok.is_float)
            return Expr::make_const(tok.number, ScalarType::F32);
        return idx_const(static_cast<int64_t>(tok.number));
    }
    if (at_symbol("(")) {
        next();
        ExprPtr e = parse_expr();
        expect_symbol(")");
        return e;
    }
    if (at_symbol("-")) {
        next();
        return Expr::make_usub(parse_atom());
    }
    if (t.kind == TokKind::Name) {
        std::string name = next().text;
        if (name == "True")
            return bool_const(true);
        if (name == "False")
            return bool_const(false);
        if (name == "_")
            return var("_");
        return parse_access(name);
    }
    error("expected expression");
}

StmtPtr
Parser::parse_single_stmt()
{
    return parse_stmt();
}

ExprPtr
Parser::parse_full_expr()
{
    return parse_expr();
}

}  // namespace

ProcPtr
parse_proc(const std::string& src, const std::vector<ProcPtr>& procs)
{
    Parser p(tokenize(src), procs, /*lenient=*/false);
    return p.parse_proc();
}

StmtPtr
parse_pattern(const std::string& src)
{
    Parser p(tokenize(src), {}, /*lenient=*/true);
    return p.parse_single_stmt();
}

ExprPtr
parse_expr_str(const std::string& src)
{
    Parser p(tokenize(src), {}, /*lenient=*/true);
    return p.parse_full_expr();
}

}  // namespace exo2
