#ifndef EXO2_FRONTEND_LEXER_H_
#define EXO2_FRONTEND_LEXER_H_

/**
 * @file
 * Tokenizer for the object language: an indentation-aware lexer
 * producing INDENT/DEDENT tokens in the Python style.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace exo2 {

/** Token kinds produced by the lexer. */
enum class TokKind : uint8_t {
    Name,      ///< identifier (including `_` wildcards)
    Number,    ///< integer or floating literal
    Symbol,    ///< punctuation / operator, spelled in `text`
    Newline,
    Indent,
    Dedent,
    EndOfFile,
};

/** A single token with source position for diagnostics. */
struct Token
{
    TokKind kind;
    std::string text;
    double number = 0.0;
    bool is_float = false;
    int line = 0;
    int col = 0;
};

/**
 * Tokenize `src`. Throws SchedulingError on malformed input (bad
 * indentation, unknown characters). Blank lines and `#` comments are
 * skipped.
 */
std::vector<Token> tokenize(const std::string& src);

}  // namespace exo2

#endif  // EXO2_FRONTEND_LEXER_H_
