#ifndef EXO2_FRONTEND_PARSER_H_
#define EXO2_FRONTEND_PARSER_H_

/**
 * @file
 * Parser for the object language's Python-like concrete syntax.
 *
 * Kernels in `src/kernels/` are authored as text and parsed into the IR;
 * the pattern sub-language used by `Proc::find` reuses this parser in a
 * lenient mode where `_` wildcards are permitted.
 */

#include <string>
#include <vector>

#include "src/ir/proc.h"

namespace exo2 {

/**
 * Parse a full `def name(...):` procedure. `procs` supplies resolvable
 * callees for statement-level calls. Throws SchedulingError on syntax
 * or scoping errors.
 */
ProcPtr parse_proc(const std::string& src,
                   const std::vector<ProcPtr>& procs = {});

/**
 * Parse a single statement pattern with `_` wildcards for use by
 * `Proc::find`. Conventions: an empty For/If body means "match any
 * body"; a Read of `_` matches any expression; an index list `[_]`
 * matches any index list; name `_` matches any name.
 */
StmtPtr parse_pattern(const std::string& src);

/** Parse a standalone expression (names typed as Index). Test helper. */
ExprPtr parse_expr_str(const std::string& src);

}  // namespace exo2

#endif  // EXO2_FRONTEND_PARSER_H_
