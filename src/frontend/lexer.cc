#include "src/frontend/lexer.h"

#include <cctype>
#include <cstdlib>

#include "src/ir/errors.h"

namespace exo2 {

namespace {

bool
is_name_start(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
is_name_char(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<Token>
tokenize(const std::string& src)
{
    std::vector<Token> toks;
    std::vector<int> indents{0};
    size_t i = 0;
    int line = 1;
    const size_t n = src.size();

    auto error = [&](const std::string& msg) {
        throw SchedulingError("lex error at line " + std::to_string(line) +
                              ": " + msg);
    };

    bool at_line_start = true;
    int paren_depth = 0;

    while (i <= n) {
        if (at_line_start && paren_depth == 0) {
            // Measure indentation; skip blank / comment-only lines.
            size_t j = i;
            int width = 0;
            while (j < n && (src[j] == ' ' || src[j] == '\t')) {
                width += (src[j] == '\t') ? 8 : 1;
                j++;
            }
            if (j >= n) {
                i = j;
                break;
            }
            if (src[j] == '\n') {
                i = j + 1;
                line++;
                continue;
            }
            if (src[j] == '#') {
                while (j < n && src[j] != '\n')
                    j++;
                i = (j < n) ? j + 1 : j;
                line++;
                continue;
            }
            if (width > indents.back()) {
                indents.push_back(width);
                toks.push_back({TokKind::Indent, "", 0, false, line, 0});
            } else {
                while (width < indents.back()) {
                    indents.pop_back();
                    toks.push_back({TokKind::Dedent, "", 0, false, line, 0});
                }
                if (width != indents.back())
                    error("inconsistent dedent");
            }
            i = j;
            at_line_start = false;
            continue;
        }
        if (i >= n)
            break;
        char c = src[i];
        int col = static_cast<int>(i);
        if (c == '\n') {
            line++;
            i++;
            if (paren_depth == 0) {
                toks.push_back({TokKind::Newline, "", 0, false, line, col});
                at_line_start = true;
            }
            continue;
        }
        if (c == ' ' || c == '\t') {
            i++;
            continue;
        }
        if (c == '#') {
            while (i < n && src[i] != '\n')
                i++;
            continue;
        }
        if (is_name_start(c)) {
            size_t j = i;
            while (j < n && is_name_char(src[j]))
                j++;
            toks.push_back({TokKind::Name, src.substr(i, j - i), 0, false,
                            line, col});
            i = j;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t j = i;
            bool is_float = false;
            while (j < n && (std::isdigit(static_cast<unsigned char>(src[j]))))
                j++;
            if (j < n && src[j] == '.' && j + 1 < n &&
                std::isdigit(static_cast<unsigned char>(src[j + 1]))) {
                is_float = true;
                j++;
                while (j < n &&
                       std::isdigit(static_cast<unsigned char>(src[j]))) {
                    j++;
                }
            } else if (j < n && src[j] == '.' &&
                       (j + 1 >= n ||
                        !is_name_char(src[j + 1]))) {
                // trailing "1." style literal
                is_float = true;
                j++;
            }
            Token t{TokKind::Number, src.substr(i, j - i), 0, is_float, line,
                    col};
            t.number = std::strtod(t.text.c_str(), nullptr);
            toks.push_back(t);
            i = j;
            continue;
        }
        // Multi-char symbols first.
        auto two = (i + 1 < n) ? src.substr(i, 2) : std::string();
        if (two == "+=" || two == "<=" || two == ">=" || two == "==" ||
            two == "!=") {
            toks.push_back({TokKind::Symbol, two, 0, false, line, col});
            i += 2;
            continue;
        }
        std::string one(1, c);
        if (c == '(' || c == '[')
            paren_depth++;
        if (c == ')' || c == ']')
            paren_depth--;
        if (std::string("()[]:,.=@+-*/%<>").find(c) != std::string::npos) {
            toks.push_back({TokKind::Symbol, one, 0, false, line, col});
            i++;
            continue;
        }
        error(std::string("unexpected character '") + c + "'");
    }
    if (!toks.empty() && toks.back().kind != TokKind::Newline)
        toks.push_back({TokKind::Newline, "", 0, false, line, 0});
    while (indents.size() > 1) {
        indents.pop_back();
        toks.push_back({TokKind::Dedent, "", 0, false, line, 0});
    }
    toks.push_back({TokKind::EndOfFile, "", 0, false, line, 0});
    return toks;
}

}  // namespace exo2
