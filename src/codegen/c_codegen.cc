#include "src/codegen/c_codegen.h"

#include <cmath>
#include <cstdio>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "src/ir/errors.h"
#include "src/ir/printer.h"
#include "src/util/strings.h"

namespace exo2 {

namespace {

/** Per-buffer layout info for index linearization. */
struct BufInfo
{
    std::vector<ExprPtr> dims;
    ScalarType type = ScalarType::F32;
    MemoryPtr mem;
    /** Accesses linearize through explicit stride spellings (window
     *  args and window declarations) instead of dense row-major. */
    bool strided = false;
    std::vector<std::string> strides;  ///< per-dim spelling when strided
    /** Native mode: declared as a __m256/__m512 value (1-D) or array
     *  of them (outer dims), not as a scalar array. Lane-level access
     *  goes through an element-pointer cast. */
    bool vec = false;
};

/** C spelling of one native vector register type. */
std::string
vec_c_type(ScalarType t, int vector_bytes)
{
    if (vector_bytes == 64)
        return t == ScalarType::F32 ? "__m512" : "__m512d";
    return t == ScalarType::F32 ? "__m256" : "__m256d";
}

/** Zeroing intrinsic matching vec_c_type. */
std::string
vec_zero_intrinsic(ScalarType t, int vector_bytes)
{
    std::string p = vector_bytes == 64 ? "_mm512_" : "_mm256_";
    return p + (t == ScalarType::F32 ? "setzero_ps()" : "setzero_pd()");
}

/** The C function name an instruction's scalar helper is emitted
 *  under: the legacy name-only template, or the proc's own name when
 *  the template is an intrinsic snippet. */
std::string
instr_helper_name(const ProcPtr& q)
{
    const std::string& t = q->instr()->c_template;
    return (t.empty() || q->instr()->has_native_template()) ? q->name()
                                                            : t;
}

/** Render a floating literal so it round-trips exactly through C. */
std::string
float_literal(double v, ScalarType t)
{
    // %g renders non-finite values as bare `inf`/`nan`, which are not
    // C identifiers; spell them through builtins.
    if (std::isinf(v)) {
        std::string inf = t == ScalarType::F32 ? "__builtin_inff()"
                                               : "__builtin_inf()";
        return v < 0 ? "(-" + inf + ")" : inf;
    }
    if (std::isnan(v)) {
        return t == ScalarType::F32 ? "__builtin_nanf(\"\")"
                                    : "__builtin_nan(\"\")";
    }
    char buf[64];
    // float round-trips at 9 significant digits, double at 17.
    std::snprintf(buf, sizeof(buf), t == ScalarType::F32 ? "%.9g" : "%.17g",
                  v);
    std::string s = buf;
    if (s.find('.') == std::string::npos &&
        s.find('e') == std::string::npos) {
        s += ".0";
    }
    if (t == ScalarType::F32)
        s += "f";
    return s;
}

class CGen
{
  public:
    /** `opts.native_vector_bytes` enables native SIMD lowering;
     *  `fallback_out` (optional) collects instructions a call site had
     *  to invoke as a scalar helper, `immintrin_out` (optional) is set
     *  when the emitted code needs <immintrin.h>. */
    explicit CGen(const ProcPtr& p, const CodegenOpts& opts = {},
                  std::set<const Proc*>* fallback_out = nullptr,
                  bool* immintrin_out = nullptr)
        : proc_(p), native_bytes_(opts.native_vector_bytes),
          emit_openmp_(opts.emit_openmp), fallback_out_(fallback_out),
          immintrin_out_(immintrin_out) {}

    std::string run()
    {
        emit_signature();
        indent_ = 1;
        push_scope();
        for (const auto& pred : proc_->preds())
            line("/* assert " + print_expr(pred) + " */");
        for (const auto& s : proc_->body_stmts())
            stmt(s);
        pop_scope();
        indent_ = 0;
        line("}");
        return out_.str();
    }

  private:
    void line(const std::string& s)
    {
        for (int i = 0; i < indent_; i++)
            out_ << "    ";
        out_ << s << "\n";
    }

    // -- Name scoping ------------------------------------------------------
    //
    // The object language scopes an Alloc/WindowDecl to the rest of its
    // enclosing block; C scopes match because For/If bodies emit braces.
    // The one mismatch is duplicate declarations in a single block
    // (unroll_loop copies its body, Allocs included), which C rejects —
    // those get uniquified here, with reads resolved through the scope
    // stack.

    void push_scope() { scopes_.emplace_back(); }

    void pop_scope()
    {
        for (const auto& [src, cname] : scopes_.back()) {
            (void)src;
            bufs_.erase(cname);
        }
        scopes_.pop_back();
    }

    /** C spelling of source name `name` under the current scopes. */
    std::string resolve(const std::string& name) const
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            auto f = it->find(name);
            if (f != it->end())
                return f->second;
        }
        return name;
    }

    /** Bind `name` in the current scope, uniquifying if taken. */
    std::string declare(const std::string& name)
    {
        std::string cname = name;
        int k = 2;
        while (cnames_.count(cname))
            cname = name + "_" + std::to_string(k++);
        cnames_.insert(cname);
        scopes_.back()[name] = cname;
        return cname;
    }

    void emit_signature()
    {
        std::ostringstream sig;
        sig << "void " << proc_->name() << "(";
        bool first = true;
        for (const auto& a : proc_->args()) {
            if (!first)
                sig << ", ";
            first = false;
            BufInfo info;
            info.dims = a.dims;
            info.type = a.type;
            info.mem = a.mem;
            if (a.dims.empty()) {
                sig << type_c_name(a.type) << " " << a.name;
            } else {
                sig << type_c_name(a.type) << "* " << a.name;
                if (a.is_window) {
                    // Window args carry explicit strides: the caller's
                    // window may be a non-contiguous slice.
                    info.strided = true;
                    for (size_t d = 0; d < a.dims.size(); d++) {
                        std::string s =
                            a.name + "_exo2_s" + std::to_string(d);
                        sig << ", int64_t " << s;
                        info.strides.push_back(s);
                    }
                }
            }
            cnames_.insert(a.name);
            bufs_[a.name] = info;
        }
        sig << ") {";
        out_ << sig.str() << "\n";
    }

    /** Stride spelling of `b`'s dim `d`; "" means (dense) stride 1. */
    std::string stride_spelling(const BufInfo& b, size_t d)
    {
        if (b.strided)
            return b.strides.at(d);
        std::string out;
        for (size_t k = d + 1; k < b.dims.size(); k++) {
            std::string piece = "(" + expr(b.dims[k]) + ")";
            out = out.empty() ? piece : out + " * " + piece;
        }
        return out;
    }

    /** Flat index expression; `cname` is the resolved C name. */
    std::string flat_index(const std::string& cname,
                           const std::vector<ExprPtr>& idx)
    {
        auto it = bufs_.find(cname);
        if (it == bufs_.end())
            throw InternalError("codegen: unknown buffer " + cname);
        const BufInfo& b = it->second;
        if (idx.size() != b.dims.size()) {
            throw SchedulingError(
                "codegen backend check: access arity mismatch on '" +
                cname + "'");
        }
        std::string out;
        for (size_t d = 0; d < idx.size(); d++) {
            std::string term = "(" + expr(idx[d]) + ")";
            std::string stride = stride_spelling(b, d);
            if (!stride.empty() && stride != "1")
                term += " * " + stride;
            out = out.empty() ? term : out + " + " + term;
        }
        return out.empty() ? "0" : out;
    }

    void note_immintrin()
    {
        if (immintrin_out_)
            *immintrin_out_ = true;
    }

    /** Element-pointer spelling of a native vector buffer: lanes are
     *  dense, so `((float*)&v)` (single register) or `((float*)v)`
     *  (register array) indexes them like the scalar layout would. */
    std::string lane_base(const std::string& cname, const BufInfo& b)
    {
        std::string amp = b.dims.size() == 1 ? "&" : "";
        return "((" + type_c_name(b.type) + "*)" + amp + cname + ")";
    }

    /** Evaluate a constant Index expression; false when not constant. */
    static bool const_value(const ExprPtr& e, int64_t* out)
    {
        if (!e || e->kind() != ExprKind::Const)
            return false;
        *out = static_cast<int64_t>(e->const_value());
        return true;
    }

    std::string access(const std::string& name,
                       const std::vector<ExprPtr>& idx)
    {
        std::string cname = resolve(name);
        auto it = bufs_.find(cname);
        if (it != bufs_.end() && !it->second.dims.empty()) {
            if (it->second.vec) {
                // Residual lane-level access to a vector register.
                return lane_base(cname, it->second) + "[" +
                       flat_index(cname, idx) + "]";
            }
            return cname + "[" + flat_index(cname, idx) + "]";
        }
        return cname;  // scalar
    }

    std::string expr(const ExprPtr& e)
    {
        switch (e->kind()) {
          case ExprKind::Const: {
            if (e->type() == ScalarType::Index ||
                e->type() == ScalarType::Bool || is_integer(e->type())) {
                std::ostringstream os;
                os << static_cast<int64_t>(e->const_value());
                return os.str();
            }
            return float_literal(e->const_value(), e->type());
          }
          case ExprKind::Read:
            if (e->idx().empty())
                return resolve(e->name());
            return access(e->name(), e->idx());
          case ExprKind::BinOp: {
            // Index-typed / and % are floor semantics in the object
            // language (matching simplify.cc's [0, c) remainder
            // normalization and the interpreter); C's operators
            // truncate toward zero, so lower through helpers.
            if (e->type() == ScalarType::Index &&
                (e->op() == BinOpKind::Div || e->op() == BinOpKind::Mod)) {
                const char* fn =
                    e->op() == BinOpKind::Div ? "exo2_fdiv" : "exo2_fmod";
                return std::string(fn) + "(" + expr(e->lhs()) + ", " +
                       expr(e->rhs()) + ")";
            }
            std::string l = expr(e->lhs());
            std::string r = expr(e->rhs());
            std::string op = binop_name(e->op());
            if (op == "and")
                op = "&&";
            if (op == "or")
                op = "||";
            return "(" + l + " " + op + " " + r + ")";
          }
          case ExprKind::USub:
            return "(-" + expr(e->lhs()) + ")";
          case ExprKind::Window: {
            // Pointer to the window origin.
            std::vector<ExprPtr> idx;
            for (const auto& d : e->window_dims())
                idx.push_back(d.lo);
            std::string cname = resolve(e->name());
            auto it = bufs_.find(cname);
            if (it != bufs_.end() && it->second.vec) {
                return "(" + lane_base(cname, it->second) + " + " +
                       flat_index(cname, idx) + ")";
            }
            return "&" + cname + "[" + flat_index(cname, idx) + "]";
          }
          case ExprKind::Stride: {
            std::string cname = resolve(e->name());
            auto it = bufs_.find(cname);
            if (it == bufs_.end())
                throw InternalError("codegen: stride of unknown buffer");
            std::string s = stride_spelling(
                it->second, static_cast<size_t>(e->stride_dim()));
            return s.empty() ? "1" : s;
          }
          case ExprKind::ReadConfig:
            return e->name() + "_" + e->field();
          case ExprKind::Extern: {
            // Extern impls carry an exo2_ext_ prefix: bare names like
            // `abs` or `sqrt` conflict with libc declarations as soon
            // as a system header (e.g. immintrin.h) is included.
            std::string out = "exo2_ext_" + e->name() + "(";
            for (size_t i = 0; i < e->idx().size(); i++) {
                if (i)
                    out += ", ";
                out += expr(e->idx()[i]);
            }
            return out + ")";
          }
        }
        throw InternalError("codegen: unknown expr");
    }

    /** Stride spelling of dim `d` of the buffer named `name` (resolved),
     *  as passed for a window formal ("" becomes "1"). */
    std::string stride_arg(const std::string& name, size_t d)
    {
        std::string cname = resolve(name);
        auto it = bufs_.find(cname);
        if (it == bufs_.end())
            throw InternalError("codegen: unknown buffer " + cname);
        std::string s = stride_spelling(it->second, d);
        return s.empty() ? "1" : s;
    }

    /** Backend check: a buffer passed for `formal` must have the same
     *  element type, or the callee would reinterpret the bytes. */
    void check_call_precision(const ProcArg& formal,
                              const std::string& buf_name)
    {
        auto it = bufs_.find(resolve(buf_name));
        if (it != bufs_.end() && it->second.type != formal.type) {
            throw SchedulingError(
                "codegen backend check: precision mismatch passing '" +
                buf_name + "' (" + type_name(it->second.type) + ") for " +
                "formal '" + formal.name + "' (" +
                type_name(formal.type) + ")");
        }
    }

    // -- Native SIMD lowering ----------------------------------------------

    /** Whether an Alloc can become a __m256/__m512 value: vector
     *  memory covered by the ISA budget, float element type, constant
     *  shape whose innermost dimension is exactly one register. */
    bool vec_alloc_eligible(const StmtPtr& s) const
    {
        if (!native_bytes_ || s->dims().empty())
            return false;
        const MemoryPtr& mem = s->mem();
        if (!mem || !mem->is_vector() ||
            mem->vector_bytes() > native_bytes_) {
            return false;
        }
        if (s->type() != ScalarType::F32 && s->type() != ScalarType::F64)
            return false;
        int lanes = mem->vector_bytes() / type_size_bytes(s->type());
        int64_t v = 0;
        for (const auto& d : s->dims()) {
            if (!const_value(d, &v))
                return false;
        }
        return v == lanes;  // v holds the innermost dimension
    }

    void emit_vec_alloc(const StmtPtr& s, const std::string& cname)
    {
        note_immintrin();
        std::string vt = vec_c_type(s->type(), s->mem()->vector_bytes());
        std::string attr = " /* " + s->mem()->name() + " register */";
        // Fresh allocations are zero-filled in the object language.
        if (s->dims().size() == 1) {
            line(vt + " " + cname + " = " +
                 vec_zero_intrinsic(s->type(), s->mem()->vector_bytes()) +
                 ";" + attr);
            return;
        }
        std::string outer;
        for (size_t d = 0; d + 1 < s->dims().size(); d++) {
            std::string piece = "(" + expr(s->dims()[d]) + ")";
            outer = outer.empty() ? piece : outer + " * " + piece;
        }
        line(vt + " " + cname + "[" + outer + "];" + attr);
        line("__builtin_memset(" + cname + ", 0, sizeof(" + cname +
             "));");
    }

    /** Spell a vector-register operand for an intrinsic snippet: the
     *  whole (1-D) register, or one register of an array selected by a
     *  window whose outer dims are points and whose innermost interval
     *  covers the full register. */
    bool vec_reg_operand(const ProcArg& formal, const ExprPtr& a,
                         std::string* out)
    {
        if (formal.dims.size() != 1)
            return false;
        if (a->kind() == ExprKind::Read && a->idx().empty()) {
            std::string cname = resolve(a->name());
            auto it = bufs_.find(cname);
            if (it == bufs_.end() || !it->second.vec ||
                it->second.dims.size() != 1 ||
                it->second.type != formal.type) {
                return false;
            }
            *out = cname;
            return true;
        }
        if (a->kind() != ExprKind::Window)
            return false;
        std::string cname = resolve(a->name());
        auto it = bufs_.find(cname);
        if (it == bufs_.end() || !it->second.vec ||
            it->second.type != formal.type) {
            return false;
        }
        const BufInfo& b = it->second;
        if (a->window_dims().size() != b.dims.size())
            return false;
        size_t last = b.dims.size() - 1;
        for (size_t d = 0; d < last; d++) {
            if (!a->window_dims()[d].is_point())
                return false;
        }
        const WindowDim& wd = a->window_dims()[last];
        int64_t lo = 0, hi = 0, lanes = 0;
        if (wd.is_point() || !const_value(wd.lo, &lo) ||
            !const_value(wd.hi, &hi) ||
            !const_value(b.dims[last], &lanes) || lo != 0 || hi != lanes) {
            return false;
        }
        if (b.dims.size() == 1) {
            *out = cname;
            return true;
        }
        // One register out of an array: flatten the outer point dims.
        std::string flat;
        for (size_t d = 0; d < last; d++) {
            std::string term = "(" + expr(a->window_dims()[d].lo) + ")";
            for (size_t k = d + 1; k < last; k++)
                term += " * (" + expr(b.dims[k]) + ")";
            flat = flat.empty() ? term : flat + " + " + term;
        }
        *out = cname + "[" + flat + "]";
        return true;
    }

    /** Spell a memory operand (element pointer) for an intrinsic
     *  snippet; requires a statically unit-stride lane dimension so
     *  `loadu`/`storeu`-style intrinsics address it directly. */
    bool mem_operand(const ProcArg& formal, const ExprPtr& a,
                     std::string* out)
    {
        if (a->kind() == ExprKind::Read && a->idx().empty()) {
            std::string cname = resolve(a->name());
            auto it = bufs_.find(cname);
            if (it == bufs_.end() ||
                it->second.dims.size() != formal.dims.size() ||
                it->second.type != formal.type) {
                return false;
            }
            std::string st =
                stride_spelling(it->second, it->second.dims.size() - 1);
            if (!st.empty() && st != "1")
                return false;
            *out = it->second.vec ? lane_base(cname, it->second) : cname;
            return true;
        }
        if (a->kind() != ExprKind::Window)
            return false;
        std::string cname = resolve(a->name());
        auto it = bufs_.find(cname);
        if (it == bufs_.end() || it->second.type != formal.type ||
            a->window_dims().size() != it->second.dims.size()) {
            return false;
        }
        size_t intervals = 0;
        size_t last_interval = 0;
        for (size_t d = 0; d < a->window_dims().size(); d++) {
            if (!a->window_dims()[d].is_point()) {
                intervals++;
                last_interval = d;
            }
        }
        if (intervals != formal.dims.size())
            return false;
        std::string st = stride_spelling(it->second, last_interval);
        if (!st.empty() && st != "1")
            return false;
        *out = "(" + expr(a) + ")";
        return true;
    }

    /** Expand `callee`'s intrinsic snippet at this call site; false
     *  when an operand cannot satisfy the snippet's contract (the
     *  caller then falls back to the scalar helper). */
    bool try_native_call(const StmtPtr& s, const ProcPtr& callee)
    {
        const auto& formals = callee->args();
        if (formals.size() != s->args().size())
            return false;  // the generic path reports the arity error
        std::vector<std::pair<std::string, std::string>> subs;
        for (size_t i = 0; i < formals.size(); i++) {
            const ProcArg& f = formals[i];
            const ExprPtr& a = s->args()[i];
            std::string spell;
            if (f.dims.empty()) {
                spell = "(" + expr(a) + ")";
            } else if (f.mem && f.mem->is_vector()) {
                if (f.mem->vector_bytes() > native_bytes_ ||
                    !vec_reg_operand(f, a, &spell)) {
                    return false;
                }
            } else if (!mem_operand(f, a, &spell)) {
                return false;
            }
            subs.emplace_back("{" + f.name + "}", spell);
        }
        std::string body = callee->instr()->c_template;
        for (const auto& [key, value] : subs)
            body = replace_all(body, key, value);
        note_immintrin();
        line(body);
        return true;
    }

    /** Render one call argument (with strides for window formals). */
    std::string call_arg(const ProcArg& formal, const ExprPtr& a)
    {
        if (formal.dims.empty())
            return expr(a);
        if (a->kind() == ExprKind::Window ||
            (a->kind() == ExprKind::Read && a->idx().empty())) {
            check_call_precision(formal, a->name());
        }
        if (a->kind() == ExprKind::Window) {
            std::string out = expr(a);  // &base[origin]
            if (!formal.is_window)
                return out;
            size_t k = 0;
            for (size_t d = 0; d < a->window_dims().size(); d++) {
                if (a->window_dims()[d].is_point())
                    continue;
                out += ", " + stride_arg(a->name(), d);
                k++;
            }
            if (k != formal.dims.size()) {
                throw SchedulingError(
                    "codegen backend check: window arity mismatch "
                    "passing '" +
                    a->name() + "' (" + std::to_string(k) + " interval " +
                    "dims vs " + std::to_string(formal.dims.size()) +
                    " formal dims)");
            }
            return out;
        }
        if (a->kind() == ExprKind::Read && a->idx().empty()) {
            // Whole buffer passed to a buffer formal.
            std::string cname = resolve(a->name());
            auto vit = bufs_.find(cname);
            std::string out = (vit != bufs_.end() && vit->second.vec)
                                  ? lane_base(cname, vit->second)
                                  : cname;
            if (!formal.is_window)
                return out;
            auto it = bufs_.find(cname);
            if (it == bufs_.end())
                throw InternalError("codegen: unknown buffer " + cname);
            size_t nd = it->second.dims.size();
            if (nd != formal.dims.size()) {
                throw SchedulingError(
                    "codegen backend check: buffer arity mismatch "
                    "passing '" +
                    a->name() + "'");
            }
            for (size_t d = 0; d < nd; d++)
                out += ", " + stride_arg(a->name(), d);
            return out;
        }
        throw SchedulingError(
            "codegen backend check: buffer argument must be a window or "
            "a whole buffer, got '" +
            print_expr(a) + "'");
    }

    void stmt(const StmtPtr& s)
    {
        switch (s->kind()) {
          case StmtKind::Assign:
          case StmtKind::Reduce: {
            std::string lhs = access(s->name(), s->idx());
            std::string op = s->kind() == StmtKind::Assign ? " = " : " += ";
            line(lhs + op + expr(s->rhs()) + ";");
            return;
          }
          case StmtKind::Alloc: {
            BufInfo info;
            info.dims = s->dims();
            info.type = s->type();
            info.mem = s->mem();
            if (vec_alloc_eligible(s)) {
                info.vec = true;
                std::string cname = declare(s->name());
                bufs_[cname] = info;
                emit_vec_alloc(s, cname);
                return;
            }
            std::string cname = declare(s->name());
            bufs_[cname] = info;
            // Fresh allocations are zero-filled in the object language
            // (the interpreter zero-initializes, and maskz instruction
            // semantics depend on it), so the C lowering must match.
            if (s->dims().empty()) {
                line(type_c_name(s->type()) + " " + cname + " = 0;");
                return;
            }
            std::string size;
            for (const auto& d : s->dims()) {
                std::string piece = "(" + expr(d) + ")";
                size = size.empty() ? piece : size + " * " + piece;
            }
            std::string attr;
            if (s->mem()->is_vector())
                attr = " /* " + s->mem()->name() + " register */";
            else if (s->mem()->kind() != MemoryKind::Dram)
                attr = " /* @" + s->mem()->name() + " */";
            line(type_c_name(s->type()) + " " + cname + "[" + size +
                 "];" + attr);
            line("__builtin_memset(" + cname + ", 0, sizeof(" + cname +
                 "));");
            return;
          }
          case StmtKind::For: {
            if (s->loop_mode() == LoopMode::Par && emit_openmp_)
                line("#pragma omp parallel for");
            std::string lo = expr(s->lo());
            std::string hi = expr(s->hi());
            push_scope();
            std::string ci = declare(s->iter());
            line("for (int64_t " + ci + " = " + lo + "; " + ci + " < " +
                 hi + "; " + ci + "++) {");
            indent_++;
            for (const auto& c : s->body())
                stmt(c);
            indent_--;
            pop_scope();
            line("}");
            return;
          }
          case StmtKind::If: {
            line("if (" + expr(s->cond()) + ") {");
            indent_++;
            push_scope();
            for (const auto& c : s->body())
                stmt(c);
            pop_scope();
            indent_--;
            if (!s->orelse().empty()) {
                line("} else {");
                indent_++;
                push_scope();
                for (const auto& c : s->orelse())
                    stmt(c);
                pop_scope();
                indent_--;
            }
            line("}");
            return;
          }
          case StmtKind::Pass:
            line(";");
            return;
          case StmtKind::Call: {
            const ProcPtr& callee = s->callee();
            if (!callee)
                throw InternalError("codegen: unresolved call");
            if (native_bytes_ && callee->is_instr() &&
                callee->instr()->has_native_template() &&
                try_native_call(s, callee)) {
                return;
            }
            if (callee->is_instr() && fallback_out_)
                fallback_out_->insert(callee.get());
            std::string name = callee->is_instr()
                                   ? instr_helper_name(callee)
                                   : callee->name();
            const auto& formals = callee->args();
            if (formals.size() != s->args().size()) {
                throw SchedulingError(
                    "codegen backend check: call arity mismatch calling "
                    "'" +
                    callee->name() + "'");
            }
            std::string out = name + "(";
            for (size_t i = 0; i < s->args().size(); i++) {
                if (i)
                    out += ", ";
                out += call_arg(formals[i], s->args()[i]);
            }
            line(out + ");");
            return;
          }
          case StmtKind::WriteConfig:
            line(s->name() + "_" + s->field() + " = " + expr(s->rhs()) +
                 ";");
            return;
          case StmtKind::WindowDecl: {
            const ExprPtr& w = s->rhs();
            std::string base_cname = resolve(w->name());
            auto bit = bufs_.find(base_cname);
            if (bit == bufs_.end())
                throw InternalError("codegen: window of unknown buffer");
            // Copy: declare() below may rehash bufs_.
            BufInfo base = bit->second;
            if (w->window_dims().size() != base.dims.size()) {
                throw SchedulingError(
                    "codegen backend check: window arity mismatch on '" +
                    w->name() + "'");
            }
            std::string ptr = expr(w);  // &base[origin]
            std::string cname = declare(s->name());
            BufInfo info;
            info.type = s->type();
            info.mem = base.mem;
            info.strided = true;
            line(type_c_name(s->type()) + "* " + cname + " = " + ptr +
                 ";");
            int k = 0;
            for (size_t d = 0; d < w->window_dims().size(); d++) {
                const WindowDim& wd = w->window_dims()[d];
                if (wd.is_point())
                    continue;
                // The window keeps the base's stride in every retained
                // dimension; the extent is hi - lo.
                std::string sname =
                    cname + "_exo2_s" + std::to_string(k++);
                std::string stride = stride_spelling(base, d);
                line("int64_t " + sname + " = " +
                     (stride.empty() ? "1" : stride) + ";");
                info.strides.push_back(sname);
                info.dims.push_back(
                    Expr::make_binop(BinOpKind::Sub, wd.hi, wd.lo));
            }
            bufs_[cname] = info;
            return;
          }
        }
        throw InternalError("codegen: unknown stmt");
    }

    ProcPtr proc_;
    int native_bytes_ = 0;
    bool emit_openmp_ = false;
    std::set<const Proc*>* fallback_out_ = nullptr;
    bool* immintrin_out_ = nullptr;
    std::ostringstream out_;
    std::map<std::string, BufInfo> bufs_;
    std::vector<std::map<std::string, std::string>> scopes_;
    std::set<std::string> cnames_;
    int indent_ = 0;
};

// -- Translation-unit assembly ---------------------------------------------

/** Walk every expression under `s` (including nested stmts). */
void
visit_exprs(const StmtPtr& s, const std::function<void(const ExprPtr&)>& f)
{
    std::function<void(const ExprPtr&)> fe = [&](const ExprPtr& e) {
        if (!e)
            return;
        f(e);
        if (e->lhs())
            fe(e->lhs());
        if (e->rhs())
            fe(e->rhs());
        for (const auto& i : e->idx())
            fe(i);
        for (const auto& w : e->window_dims()) {
            fe(w.lo);
            if (w.hi)
                fe(w.hi);
        }
    };
    std::function<void(const StmtPtr&)> fs = [&](const StmtPtr& st) {
        for (const auto& i : st->idx())
            fe(i);
        fe(st->rhs());
        for (const auto& d : st->dims())
            fe(d);
        fe(st->lo());
        fe(st->hi());
        fe(st->cond());
        for (const auto& a : st->args())
            fe(a);
        for (const auto& c : st->body())
            fs(c);
        for (const auto& c : st->orelse())
            fs(c);
    };
    fs(s);
}

/** Collect `p` and its transitive callees in definition order. */
void
collect_procs(const ProcPtr& p, std::vector<ProcPtr>* out,
              std::set<const Proc*>* seen)
{
    if (!p || seen->count(p.get()))
        return;
    seen->insert(p.get());
    std::function<void(const StmtPtr&)> fs = [&](const StmtPtr& s) {
        if (s->kind() == StmtKind::Call)
            collect_procs(s->callee(), out, seen);
        for (const auto& c : s->body())
            fs(c);
        for (const auto& c : s->orelse())
            fs(c);
    };
    for (const auto& s : p->body_stmts())
        fs(s);
    out->push_back(p);
}

/** C bodies for the built-in extern scalar functions (kept in lockstep
 *  with the interpreter's registry in interp.cc). */
const std::map<std::string, std::string>&
extern_c_impls()
{
    static const std::map<std::string, std::string> impls = {
        {"relu", "static double exo2_ext_relu(double a) "
                 "{ return a > 0 ? a : 0; }"},
        {"clamp_i8",
         "static double exo2_ext_clamp_i8(double a) "
         "{ double r = __builtin_round(a); "
         "return r < -128.0 ? -128.0 : (r > 127.0 ? 127.0 : r); }"},
        {"acc_scale", "static double exo2_ext_acc_scale(double a, double b) "
                      "{ return a * b; }"},
        {"select",
         "static double exo2_ext_select(double c, double x, double y) "
         "{ return c >= 0 ? x : y; }"},
        {"sqrt", "static double exo2_ext_sqrt(double a) "
                 "{ return __builtin_sqrt(a); }"},
        {"abs", "static double exo2_ext_abs(double a) "
                "{ return __builtin_fabs(a); }"},
    };
    return impls;
}

/** Support helpers for the native SIMD lowering, emitted once per
 *  native translation unit. Mask counts are clamped so whole-vector
 *  masked tiles (lane count larger than the register) behave like the
 *  reference semantics; reductions accumulate in lane order, matching
 *  the scalar reference loop (and so the interpreter) exactly. */
const char*
native_helpers_preamble()
{
    return R"(#include <immintrin.h>

#if defined(__AVX2__)
static inline __m256i exo2_m256_lt(int64_t m) {
    int32_t c = m < 0 ? 0 : (m > 8 ? 8 : (int32_t)m);
    return _mm256_cmpgt_epi32(_mm256_set1_epi32(c),
                              _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
}
static inline __m256i exo2_m256_range(int64_t l, int64_t m) {
    return _mm256_andnot_si256(exo2_m256_lt(l), exo2_m256_lt(m));
}
static inline __m256i exo2_m256d_lt(int64_t m) {
    long long c = m < 0 ? 0 : (m > 4 ? 4 : m);
    return _mm256_cmpgt_epi64(_mm256_set1_epi64x(c),
                              _mm256_setr_epi64x(0, 1, 2, 3));
}
static inline __m256i exo2_m256d_range(int64_t l, int64_t m) {
    return _mm256_andnot_si256(exo2_m256d_lt(l), exo2_m256d_lt(m));
}
static inline void exo2_reduce_mm256_ps(float* dst, __m256 v) {
    float t[8];
    _mm256_storeu_ps(t, v);
    for (int i = 0; i < 8; i++) dst[0] += t[i];
}
static inline void exo2_reduce_mm256_pd(double* dst, __m256d v) {
    double t[4];
    _mm256_storeu_pd(t, v);
    for (int i = 0; i < 4; i++) dst[0] += t[i];
}
#endif /* __AVX2__ */
#if defined(__AVX512F__)
static inline __mmask16 exo2_k16_lt(int64_t m) {
    int64_t c = m < 0 ? 0 : (m > 16 ? 16 : m);
    return (__mmask16)((1u << c) - 1u);
}
static inline __mmask16 exo2_k16_range(int64_t l, int64_t m) {
    return (__mmask16)(exo2_k16_lt(m) & (__mmask16)~exo2_k16_lt(l));
}
static inline __mmask8 exo2_k8_lt(int64_t m) {
    int64_t c = m < 0 ? 0 : (m > 8 ? 8 : m);
    return (__mmask8)((1u << c) - 1u);
}
static inline __mmask8 exo2_k8_range(int64_t l, int64_t m) {
    return (__mmask8)(exo2_k8_lt(m) & (__mmask8)~exo2_k8_lt(l));
}
static inline void exo2_reduce_mm512_ps(float* dst, __m512 v) {
    float t[16];
    _mm512_storeu_ps(t, v);
    for (int i = 0; i < 16; i++) dst[0] += t[i];
}
static inline void exo2_reduce_mm512_pd(double* dst, __m512d v) {
    double t[8];
    _mm512_storeu_pd(t, v);
    for (int i = 0; i < 8; i++) dst[0] += t[i];
}
#endif /* __AVX512F__ */
)";
}

}  // namespace

std::string
codegen_c(const ProcPtr& p, const CodegenOpts& opts)
{
    CGen g(p, opts);
    return g.run();
}

int
codegen_max_vector_bytes(const ProcPtr& p)
{
    std::vector<ProcPtr> procs;
    std::set<const Proc*> seen;
    collect_procs(p, &procs, &seen);
    int mx = 0;
    auto upd = [&](const MemoryPtr& m) {
        if (m && m->is_vector() && m->vector_bytes() > mx)
            mx = m->vector_bytes();
    };
    std::function<void(const StmtPtr&)> fs = [&](const StmtPtr& s) {
        if (s->kind() == StmtKind::Alloc)
            upd(s->mem());
        for (const auto& c : s->body())
            fs(c);
        for (const auto& c : s->orelse())
            fs(c);
    };
    for (const auto& q : procs) {
        for (const auto& a : q->args())
            upd(a.mem);
        for (const auto& s : q->body_stmts())
            fs(s);
    }
    return mx;
}

std::string
codegen_c_unit(const ProcPtr& p, const CodegenOpts& opts)
{
    std::vector<ProcPtr> procs;
    std::set<const Proc*> seen;
    collect_procs(p, &procs, &seen);

    // Native lowering is all-or-nothing per unit: engage only when the
    // ISA budget covers the widest vector memory in use (a half-native
    // unit would mix operand representations across instructions).
    int required = opts.required_vector_bytes >= 0
                       ? opts.required_vector_bytes
                       : codegen_max_vector_bytes(p);
    CodegenOpts eff = opts;
    if (required == 0 || opts.native_vector_bytes < required)
        eff.native_vector_bytes = 0;

    // Scan for configuration fields and extern functions.
    std::set<std::string> config_vars;
    std::set<std::string> externs;
    for (const auto& q : procs) {
        for (const auto& s : q->body_stmts()) {
            std::function<void(const StmtPtr&)> fs =
                [&](const StmtPtr& st) {
                    if (st->kind() == StmtKind::WriteConfig)
                        config_vars.insert(st->name() + "_" + st->field());
                    for (const auto& c : st->body())
                        fs(c);
                    for (const auto& c : st->orelse())
                        fs(c);
                };
            fs(s);
            visit_exprs(s, [&](const ExprPtr& e) {
                if (e->kind() == ExprKind::ReadConfig)
                    config_vars.insert(e->name() + "_" + e->field());
                else if (e->kind() == ExprKind::Extern)
                    externs.insert(e->name());
            });
        }
    }

    // Generate non-instruction bodies first: their call sites decide
    // which instructions still need the scalar helper function (no
    // intrinsic snippet, or an operand the snippet cannot address).
    std::set<const Proc*> fallback;
    bool immintrin = false;
    std::map<const Proc*, std::string> bodies;
    for (const auto& q : procs) {
        if (q->is_instr())
            continue;
        CGen g(q, eff, &fallback, &immintrin);
        bodies[q.get()] = g.run();
    }
    std::vector<ProcPtr> helpers;
    for (const auto& q : procs) {
        if (!q->is_instr())
            continue;
        bool need = eff.native_vector_bytes == 0 ||
                    !q->instr()->has_native_template() ||
                    fallback.count(q.get()) > 0 || q == p;
        if (need)
            helpers.push_back(q);
    }

    std::ostringstream out;
    out << "#include <stdbool.h>\n#include <stdint.h>\n\n";
    if (eff.native_vector_bytes && immintrin)
        out << native_helpers_preamble() << "\n";
    out << "/* Floor-semantics integer division / remainder: Index-typed\n"
           " * `/` and `%` of the object language round toward negative\n"
           " * infinity (remainder in [0, |b|)), unlike C's truncating\n"
           " * operators. */\n";
    out << "static inline int64_t exo2_fdiv(int64_t a, int64_t b) {\n"
           "    int64_t q = a / b;\n"
           "    if ((a % b != 0) && ((a < 0) != (b < 0))) q -= 1;\n"
           "    return q;\n"
           "}\n";
    out << "static inline int64_t exo2_fmod(int64_t a, int64_t b) {\n"
           "    int64_t m = a % b;\n"
           "    if (m != 0 && ((a < 0) != (b < 0))) m += b;\n"
           "    return m;\n"
           "}\n\n";
    for (const auto& name : externs) {
        auto it = extern_c_impls().find(name);
        if (it == extern_c_impls().end()) {
            throw SchedulingError(
                "codegen: extern function '" + name +
                "' has no C implementation (add one to extern_c_impls)");
        }
        out << it->second << "\n";
    }
    if (!externs.empty())
        out << "\n";
    for (const auto& v : config_vars)
        out << "static double " << v << " = 0.0;\n";
    if (!config_vars.empty())
        out << "\n";

    // Scalar instruction helpers first (they are leaves), then the
    // procedures in dependency order.
    for (const auto& q : helpers) {
        std::string hname = instr_helper_name(q);
        ProcPtr emitq = hname != q->name() ? q->renamed(hname) : q;
        out << codegen_c(emitq) << "\n";
    }
    for (const auto& q : procs) {
        if (q->is_instr())
            continue;
        out << bodies[q.get()] << "\n";
    }

    // Uniform entry point used by the in-process verification harness.
    std::string entry_name =
        p->is_instr() ? instr_helper_name(p) : p->name();
    out << "void exo2_run(void** argv) {\n";
    out << "    " << entry_name << "(";
    const auto& args = p->args();
    bool first = true;
    for (size_t i = 0; i < args.size(); i++) {
        if (!first)
            out << ", ";
        first = false;
        const ProcArg& a = args[i];
        if (a.dims.empty()) {
            std::string ty =
                (a.is_size || a.type == ScalarType::Index)
                    ? "int64_t"
                    : type_c_name(a.type);
            out << "*(" << ty << "*)argv[" << i << "]";
        } else {
            if (a.is_window) {
                throw SchedulingError(
                    "codegen: cannot build an entry point for a proc "
                    "with window arguments ('" +
                    a.name + "')");
            }
            out << "(" << type_c_name(a.type) << "*)argv[" << i << "]";
        }
    }
    out << ");\n";
    out << "}\n";
    return out.str();
}

int
codegen_c_lines(const ProcPtr& p)
{
    std::string src = codegen_c(p);
    int lines = 0;
    std::istringstream is(src);
    std::string l;
    while (std::getline(is, l)) {
        bool blank = true;
        for (char c : l) {
            if (!isspace(static_cast<unsigned char>(c)))
                blank = false;
        }
        if (!blank)
            lines++;
    }
    return lines;
}

}  // namespace exo2
