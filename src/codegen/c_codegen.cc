#include "src/codegen/c_codegen.h"

#include <map>
#include <sstream>

#include "src/ir/errors.h"
#include "src/ir/printer.h"

namespace exo2 {

namespace {

/** Per-buffer layout info for index linearization. */
struct BufInfo
{
    std::vector<ExprPtr> dims;
    ScalarType type = ScalarType::F32;
    MemoryPtr mem;
    bool is_window = false;  ///< passed as pointer with stride args
};

class CGen
{
  public:
    explicit CGen(const ProcPtr& p) : proc_(p) {}

    std::string run()
    {
        emit_signature();
        indent_ = 1;
        for (const auto& pred : proc_->preds())
            line("/* assert " + print_expr(pred) + " */");
        for (const auto& s : proc_->body_stmts())
            stmt(s);
        indent_ = 0;
        line("}");
        return out_.str();
    }

  private:
    void line(const std::string& s)
    {
        for (int i = 0; i < indent_; i++)
            out_ << "    ";
        out_ << s << "\n";
    }

    void emit_signature()
    {
        std::ostringstream sig;
        sig << "void " << proc_->name() << "(";
        bool first = true;
        for (const auto& a : proc_->args()) {
            if (!first)
                sig << ", ";
            first = false;
            if (a.dims.empty()) {
                sig << type_c_name(a.type) << " " << a.name;
            } else {
                sig << type_c_name(a.type) << "* " << a.name;
            }
            BufInfo info;
            info.dims = a.dims;
            info.type = a.type;
            info.mem = a.mem;
            info.is_window = a.is_window;
            bufs_[a.name] = info;
        }
        sig << ") {";
        out_ << sig.str() << "\n";
    }

    /** Row-major flat index expression. */
    std::string flat_index(const std::string& name,
                           const std::vector<ExprPtr>& idx)
    {
        auto it = bufs_.find(name);
        if (it == bufs_.end())
            throw InternalError("codegen: unknown buffer " + name);
        const BufInfo& b = it->second;
        if (idx.size() != b.dims.size()) {
            throw SchedulingError(
                "codegen backend check: access arity mismatch on '" +
                name + "'");
        }
        std::string out;
        for (size_t d = 0; d < idx.size(); d++) {
            std::string term = "(" + expr(idx[d]) + ")";
            for (size_t k = d + 1; k < b.dims.size(); k++)
                term += " * (" + expr(b.dims[k]) + ")";
            out = out.empty() ? term : out + " + " + term;
        }
        return out.empty() ? "0" : out;
    }

    std::string access(const std::string& name,
                       const std::vector<ExprPtr>& idx)
    {
        auto it = bufs_.find(name);
        if (it != bufs_.end() && !it->second.dims.empty())
            return name + "[" + flat_index(name, idx) + "]";
        return name;  // scalar
    }

    std::string expr(const ExprPtr& e)
    {
        switch (e->kind()) {
          case ExprKind::Const: {
            std::ostringstream os;
            if (e->type() == ScalarType::Index ||
                is_integer(e->type())) {
                os << static_cast<int64_t>(e->const_value());
            } else {
                os << e->const_value();
                if (os.str().find('.') == std::string::npos &&
                    os.str().find('e') == std::string::npos) {
                    os << ".0";
                }
                if (e->type() == ScalarType::F32)
                    os << "f";
            }
            return os.str();
          }
          case ExprKind::Read:
            if (e->idx().empty())
                return e->name();
            return access(e->name(), e->idx());
          case ExprKind::BinOp: {
            std::string l = expr(e->lhs());
            std::string r = expr(e->rhs());
            std::string op = binop_name(e->op());
            if (op == "and")
                op = "&&";
            if (op == "or")
                op = "||";
            return "(" + l + " " + op + " " + r + ")";
          }
          case ExprKind::USub:
            return "(-" + expr(e->lhs()) + ")";
          case ExprKind::Window: {
            // Pointer to the window origin.
            std::vector<ExprPtr> idx;
            for (const auto& d : e->window_dims())
                idx.push_back(d.lo);
            return "&" + e->name() + "[" + flat_index(e->name(), idx) +
                   "]";
          }
          case ExprKind::Stride: {
            auto it = bufs_.find(e->name());
            if (it == bufs_.end())
                throw InternalError("codegen: stride of unknown buffer");
            const BufInfo& b = it->second;
            std::string out = "1";
            for (size_t k = static_cast<size_t>(e->stride_dim()) + 1;
                 k < b.dims.size(); k++) {
                out += " * (" + expr(b.dims[k]) + ")";
            }
            return out;
          }
          case ExprKind::ReadConfig:
            return e->name() + "_" + e->field();
          case ExprKind::Extern: {
            std::string out = e->name() + "(";
            for (size_t i = 0; i < e->idx().size(); i++) {
                if (i)
                    out += ", ";
                out += expr(e->idx()[i]);
            }
            return out + ")";
          }
        }
        throw InternalError("codegen: unknown expr");
    }

    void stmt(const StmtPtr& s)
    {
        switch (s->kind()) {
          case StmtKind::Assign:
          case StmtKind::Reduce: {
            std::string lhs = access(s->name(), s->idx());
            std::string op = s->kind() == StmtKind::Assign ? " = " : " += ";
            line(lhs + op + expr(s->rhs()) + ";");
            return;
          }
          case StmtKind::Alloc: {
            BufInfo info;
            info.dims = s->dims();
            info.type = s->type();
            info.mem = s->mem();
            bufs_[s->name()] = info;
            if (s->dims().empty()) {
                line(type_c_name(s->type()) + " " + s->name() + ";");
                return;
            }
            std::string size;
            for (const auto& d : s->dims()) {
                std::string piece = "(" + expr(d) + ")";
                size = size.empty() ? piece : size + " * " + piece;
            }
            std::string attr;
            if (s->mem()->is_vector())
                attr = " /* " + s->mem()->name() + " register */";
            else if (s->mem()->kind() != MemoryKind::Dram)
                attr = " /* @" + s->mem()->name() + " */";
            line(type_c_name(s->type()) + " " + s->name() + "[" + size +
                 "];" + attr);
            return;
          }
          case StmtKind::For: {
            std::string i = s->iter();
            std::string pragma;
            if (s->loop_mode() == LoopMode::Par)
                line("#pragma omp parallel for");
            line("for (int64_t " + i + " = " + expr(s->lo()) + "; " + i +
                 " < " + expr(s->hi()) + "; " + i + "++) {");
            indent_++;
            for (const auto& c : s->body())
                stmt(c);
            indent_--;
            line("}");
            return;
          }
          case StmtKind::If: {
            line("if (" + expr(s->cond()) + ") {");
            indent_++;
            for (const auto& c : s->body())
                stmt(c);
            indent_--;
            if (!s->orelse().empty()) {
                line("} else {");
                indent_++;
                for (const auto& c : s->orelse())
                    stmt(c);
                indent_--;
            }
            line("}");
            return;
          }
          case StmtKind::Pass:
            line(";");
            return;
          case StmtKind::Call: {
            const ProcPtr& callee = s->callee();
            if (!callee)
                throw InternalError("codegen: unresolved call");
            std::string name = callee->is_instr()
                                   ? callee->instr()->c_template
                                   : callee->name();
            std::string out = name + "(";
            for (size_t i = 0; i < s->args().size(); i++) {
                if (i)
                    out += ", ";
                out += expr(s->args()[i]);
            }
            line(out + ");");
            return;
          }
          case StmtKind::WriteConfig:
            line(s->name() + "_" + s->field() + " = " + expr(s->rhs()) +
                 ";");
            return;
          case StmtKind::WindowDecl: {
            const ExprPtr& w = s->rhs();
            BufInfo base = bufs_.at(w->name());
            BufInfo info;
            info.type = s->type();
            info.mem = base.mem;
            for (const auto& d : w->window_dims()) {
                if (!d.is_point()) {
                    // Windows keep the base's inner strides; dense
                    // lowering supports suffix windows only.
                    info.dims.push_back(d.hi);  // conservative extent
                }
            }
            bufs_[s->name()] = info;
            line(type_c_name(s->type()) + "* " + s->name() + " = " +
                 expr(w) + ";");
            return;
          }
        }
        throw InternalError("codegen: unknown stmt");
    }

    ProcPtr proc_;
    std::ostringstream out_;
    std::map<std::string, BufInfo> bufs_;
    int indent_ = 0;
};

}  // namespace

std::string
codegen_c(const ProcPtr& p)
{
    CGen g(p);
    return g.run();
}

int
codegen_c_lines(const ProcPtr& p)
{
    std::string src = codegen_c(p);
    int lines = 0;
    std::istringstream is(src);
    std::string l;
    while (std::getline(is, l)) {
        bool blank = true;
        for (char c : l) {
            if (!isspace(static_cast<unsigned char>(c)))
                blank = false;
        }
        if (!blank)
            lines++;
    }
    return lines;
}

}  // namespace exo2
