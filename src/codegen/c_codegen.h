#ifndef EXO2_CODEGEN_C_CODEGEN_H_
#define EXO2_CODEGEN_C_CODEGEN_H_

/**
 * @file
 * C source generator. Lowers a (scheduled) procedure to portable C:
 * dense row-major buffers, explicit loops, and intrinsic-style calls
 * for hardware instructions (each instruction's InstrInfo template
 * names the emitted function). This realizes the "Gen. C" artifact of
 * Figure 9a; the line counts it reports come from this backend.
 *
 * Backend checks (Appendix A.7) run here: memory-space access
 * legality and precision consistency are validated during lowering.
 *
 * Semantics notes (kept in lockstep with the interpreter; the
 * differential verifier in src/verify/ enforces this):
 *  - Index-typed `/` and `%` lower to the floor-semantics helpers
 *    `exo2_fdiv` / `exo2_fmod` (C's `/`/`%` truncate toward zero and
 *    disagree for negative operands). The helpers are emitted by
 *    `codegen_c_unit`.
 *  - Window-typed arguments are lowered as a base pointer plus one
 *    explicit `int64_t <name>_exo2_s<d>` stride parameter per
 *    dimension, so strided (non-suffix) windows linearize correctly.
 *  - Duplicate local declarations in one scope (e.g. produced by
 *    unroll_loop copying an Alloc) are uniquified.
 */

#include <string>

#include "src/ir/proc.h"

namespace exo2 {

/** Generate a self-contained C function for `p` (no preamble; see
 *  codegen_c_unit for a compilable translation unit). */
std::string codegen_c(const ProcPtr& p);

/**
 * Generate a complete, compilable C translation unit for `p`:
 * the floor div/mod helpers, C implementations of the extern scalar
 * functions used, configuration-state variables, the definitions of
 * every (transitively) called procedure — hardware instructions are
 * emitted from their semantics bodies — and finally `p` itself plus a
 * uniform entry point
 *
 *     void exo2_run(void** argv);
 *
 * where argv[i] points at the i-th argument (int64_t for sizes,
 * the element type for scalars, the buffer base pointer for buffers).
 * This is what the differential-verification oracle compiles and runs
 * in-process (src/verify/).
 */
std::string codegen_c_unit(const ProcPtr& p);

/** Number of non-empty lines in the generated C (Figure 9a metric). */
int codegen_c_lines(const ProcPtr& p);

}  // namespace exo2

#endif  // EXO2_CODEGEN_C_CODEGEN_H_
