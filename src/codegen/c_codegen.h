#ifndef EXO2_CODEGEN_C_CODEGEN_H_
#define EXO2_CODEGEN_C_CODEGEN_H_

/**
 * @file
 * C source generator. Lowers a (scheduled) procedure to portable C:
 * dense row-major buffers, explicit loops, and intrinsic-style calls
 * for hardware instructions (each instruction's InstrInfo template
 * names the emitted function). This realizes the "Gen. C" artifact of
 * Figure 9a; the line counts it reports come from this backend.
 *
 * Backend checks (Appendix A.7) run here: memory-space access
 * legality and precision consistency are validated during lowering.
 */

#include <string>

#include "src/ir/proc.h"

namespace exo2 {

/** Generate a self-contained C function for `p`. */
std::string codegen_c(const ProcPtr& p);

/** Number of non-empty lines in the generated C (Figure 9a metric). */
int codegen_c_lines(const ProcPtr& p);

}  // namespace exo2

#endif  // EXO2_CODEGEN_C_CODEGEN_H_
