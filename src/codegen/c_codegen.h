#ifndef EXO2_CODEGEN_C_CODEGEN_H_
#define EXO2_CODEGEN_C_CODEGEN_H_

/**
 * @file
 * C source generator. Lowers a (scheduled) procedure to portable C:
 * dense row-major buffers, explicit loops, and intrinsic-style calls
 * for hardware instructions (each instruction's InstrInfo template
 * names the emitted function). This realizes the "Gen. C" artifact of
 * Figure 9a; the line counts it reports come from this backend.
 *
 * Backend checks (Appendix A.7) run here: memory-space access
 * legality and precision consistency are validated during lowering.
 *
 * Semantics notes (kept in lockstep with the interpreter; the
 * differential verifier in src/verify/ enforces this):
 *  - Index-typed `/` and `%` lower to the floor-semantics helpers
 *    `exo2_fdiv` / `exo2_fmod` (C's `/`/`%` truncate toward zero and
 *    disagree for negative operands). The helpers are emitted by
 *    `codegen_c_unit`.
 *  - Window-typed arguments are lowered as a base pointer plus one
 *    explicit `int64_t <name>_exo2_s<d>` stride parameter per
 *    dimension, so strided (non-suffix) windows linearize correctly.
 *  - Duplicate local declarations in one scope (e.g. produced by
 *    unroll_loop copying an Alloc) are uniquified.
 *
 * Native SIMD mode (DESIGN.md §5): with CodegenOpts.native_vector_bytes
 * set, vector-register buffers lower to `__m256`/`__m512d` values and
 * instruction calls expand their InstrInfo intrinsic snippets in place.
 * Any instruction without a snippet — and any call site whose operands
 * do not satisfy a snippet's contract (unit-stride DRAM lanes, whole
 * vector-register operands) — falls back to the scalar helper function,
 * so native mode never changes which programs can be lowered.
 */

#include <string>

#include "src/ir/proc.h"

namespace exo2 {

/** Options for the C backend. */
struct CodegenOpts
{
    /**
     * Widest vector ISA available to the emitted translation unit, in
     * register bytes: 0 = portable scalar C (default), 32 = AVX2+FMA,
     * 64 = AVX-512. Native lowering engages only when this covers every
     * vector memory the procedure uses (a 64-byte-register proc under a
     * 32-byte budget compiles fully scalar rather than half-native).
     */
    int native_vector_bytes = 0;

    /**
     * Caller-cached result of `codegen_max_vector_bytes(p)` for the
     * proc being generated; -1 (default) makes codegen_c_unit compute
     * it. Callers that already walked the proc (the JIT does, to pick
     * compiler flags) pass it to avoid a second traversal.
     */
    int required_vector_bytes = -1;

    /**
     * Emit `#pragma omp parallel for` on LoopMode::Par loops. Off by
     * default: the pragma is inert without -fopenmp, but turning it on
     * should be a deliberate act paired with a race-free verdict from
     * the lint race pass (certify_parallel_loops, DESIGN.md §9) —
     * every Par loop the tuner or a user marks is a *claim*, and the
     * certificate is what makes handing it to a parallel runtime
     * defensible.
     */
    bool emit_openmp = false;
};

/** Generate a self-contained C function for `p` (no preamble; see
 *  codegen_c_unit for a compilable translation unit). */
std::string codegen_c(const ProcPtr& p, const CodegenOpts& opts = {});

/**
 * Generate a complete, compilable C translation unit for `p`:
 * the floor div/mod helpers, C implementations of the extern scalar
 * functions used, configuration-state variables, the definitions of
 * every (transitively) called procedure — hardware instructions are
 * emitted from their semantics bodies — and finally `p` itself plus a
 * uniform entry point
 *
 *     void exo2_run(void** argv);
 *
 * where argv[i] points at the i-th argument (int64_t for sizes,
 * the element type for scalars, the buffer base pointer for buffers).
 * This is what the differential-verification oracle compiles and runs
 * in-process (src/verify/).
 */
std::string codegen_c_unit(const ProcPtr& p, const CodegenOpts& opts = {});

/**
 * Widest vector-register memory `p` (or any transitive callee) touches,
 * in bytes; 0 when the procedure is purely scalar. The JIT uses this to
 * pick compiler ISA flags in lockstep with the codegen native gate.
 */
int codegen_max_vector_bytes(const ProcPtr& p);

/** Number of non-empty lines in the generated C (Figure 9a metric). */
int codegen_c_lines(const ProcPtr& p);

}  // namespace exo2

#endif  // EXO2_CODEGEN_C_CODEGEN_H_
