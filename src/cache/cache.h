#ifndef EXO2_CACHE_CACHE_H_
#define EXO2_CACHE_CACHE_H_

/**
 * @file
 * Crash-safe persistent caches for the scheduling service
 * (DESIGN.md §8): production traffic re-issues the same
 * (kernel, machine, sizes) requests millions of times, so tuning
 * winners and compiled kernels survive the process that produced them.
 *
 * Two caches share one on-disk discipline:
 *
 *  - **TuneCache** maps (proc digest, machine, ISA, sizes) to the
 *    replayable schedule-script text of a validated tuning winner
 *    (`verify::script_to_string` round-trips). An entry is a small
 *    text file with a versioned header and an FNV-1a checksum over
 *    the payload.
 *
 *  - **CompileCache** maps (generated-C digest, ISA flags, compiler
 *    identity) to a dlopen-able shared object plus a `.meta` sidecar
 *    carrying the object's checksum, validated on every load.
 *
 * Shared rules, all enforced here and nowhere else:
 *
 *  - Writes are atomic (util::write_file_atomic: unique temp + fsync +
 *    rename) under an advisory `flock` on a per-cache lock file, so
 *    concurrent writers — threads or separate processes — never
 *    interleave and readers never observe torn entries.
 *  - Reads never take the lock: rename gives each published entry an
 *    immutable inode.
 *  - A corrupt, truncated, or checksum-failing entry is *quarantined*
 *    (moved into the cache's `.bad/` subdirectory for post-mortems)
 *    and reported as a miss — never as an error. Same for *stale*
 *    entries written under an older format, schedule-library, or
 *    cost-model version.
 *  - Construction sweeps `*.tmp.*` orphans from writers that died
 *    mid-write (crash-only recovery: kill -9, restart, self-heal).
 *  - Every degradation is counted (`cache_stats()`), so tests and
 *    gates can prove recovery happened instead of passing vacuously.
 *
 * Fault injection (DESIGN.md §8): the `cache_corrupt` / `cache_stale`
 * sites of EXO2_FAULTS damage *real* just-written entry files —
 * bit-flip/truncate, or rewrite the header with an outdated version —
 * so the detection and quarantine paths are exercised against genuine
 * on-disk damage.
 *
 * Caching is opt-in: both caches are disabled unless a directory is
 * given explicitly or `EXO2_CACHE_DIR` is set (tests and one-shot
 * runs stay hermetic by default).
 */

#include <cstdint>
#include <optional>
#include <string>

namespace exo2 {
namespace cache {

/** FNV-1a 64-bit over arbitrary bytes: the cache checksum/key hash.
 *  Stable across platforms and builds (unlike std::hash). */
uint64_t fnv1a64(const void* data, size_t len,
                 uint64_t seed = 14695981039346656037ull);
uint64_t fnv1a64(const std::string& s);

/** Lower-case hex rendering of a 64-bit value (16 chars). */
std::string hex64(uint64_t v);

/** The cache root from EXO2_CACHE_DIR; empty = caching disabled. */
std::string cache_dir_from_env();

/** Process-wide degradation/effectiveness counters for both caches. */
struct CacheStats
{
    // Tuning cache.
    uint64_t tune_hits = 0;
    uint64_t tune_misses = 0;        ///< probe found nothing usable
    uint64_t tune_stores = 0;
    uint64_t tune_store_failures = 0;
    uint64_t tune_corrupt = 0;       ///< quarantined: damaged entry
    uint64_t tune_stale = 0;         ///< quarantined: version skew
    // Compile cache.
    uint64_t jit_hits = 0;
    uint64_t jit_misses = 0;
    uint64_t jit_stores = 0;
    uint64_t jit_store_failures = 0;
    uint64_t jit_corrupt = 0;
    uint64_t jit_stale = 0;
    // Crash-only recovery.
    uint64_t tmp_swept = 0;          ///< orphaned temp files reclaimed
};

CacheStats cache_stats();
void reset_cache_stats();

// ---------------------------------------------------------------------------
// Tuning cache
// ---------------------------------------------------------------------------

/** Identity of one tuning result. `sizes` is the canonical rendering
 *  of the tune-size environment ("K=48,M=48,N=48" — SizeEnv is an
 *  ordered map, so the rendering is unique). */
struct TuneKey
{
    uint64_t proc_digest = 0;  ///< proc_digest() of the naive proc
    std::string machine;       ///< Machine::name(), e.g. "AVX2"
    std::string isa;           ///< native_isa_name(), e.g. "avx2"
    std::string sizes;         ///< canonical size string

    /** Stable 64-bit identity (the entry's file name). */
    uint64_t hash() const;
};

/** One cached tuning result. */
struct TuneEntry
{
    std::string script_text;  ///< verify::script_to_string output
    double cost = 0.0;        ///< simulated cycles of the winner
    bool validated = false;   ///< tri-oracle-validated when stored
};

class TuneCache
{
  public:
    /** `dir` empty = disabled (every probe misses, stores are no-ops).
     *  Otherwise the cache lives in `<dir>/tune/`, created on first
     *  use, with orphaned temp files swept immediately. */
    explicit TuneCache(std::string dir);

    /** Env-configured convenience: TuneCache(cache_dir_from_env()). */
    TuneCache();

    bool enabled() const { return !dir_.empty(); }
    const std::string& dir() const { return dir_; }

    /** Look up `key`. Corrupt/truncated/stale entries are quarantined
     *  and reported as std::nullopt (a miss); never throws. */
    std::optional<TuneEntry> probe(const TuneKey& key) const;

    /** Publish `entry` under `key` (atomic, flock-serialized).
     *  Best-effort: returns false on I/O failure, never throws. */
    bool store(const TuneKey& key, const TuneEntry& entry) const;

    /** Remove the entry for `key` (e.g. its script stopped replaying
     *  on the current library); quarantines rather than deletes. */
    void invalidate(const TuneKey& key, const char* reason) const;

  private:
    std::string dir_;  ///< `<root>/tune`, or empty when disabled
};

// ---------------------------------------------------------------------------
// Compile cache
// ---------------------------------------------------------------------------

/** Identity of one compiled unit. */
struct CompileKey
{
    uint64_t source_digest = 0;  ///< fnv1a64 of the generated C
    std::string isa_flags;       ///< e.g. "-mavx2 -mfma"
    std::string compiler_id;     ///< compiler_identity() output

    uint64_t hash() const;
};

class CompileCache
{
  public:
    explicit CompileCache(std::string dir);
    CompileCache();

    bool enabled() const { return !dir_.empty(); }
    const std::string& dir() const { return dir_; }

    /** Path of a validated cached shared object for `key`, or
     *  std::nullopt. The returned file is immutable (rename-published)
     *  and safe to dlopen directly. A checksum or version mismatch
     *  quarantines the pair and misses; never throws. */
    std::optional<std::string> probe(const CompileKey& key) const;

    /** Publish the built object at `so_path` under `key` (bytes are
     *  copied; atomic + flock-serialized). Best-effort. */
    bool store(const CompileKey& key, const std::string& so_path) const;

    /** Quarantine a cached object that failed to dlopen after passing
     *  its checksum (e.g. damaged beyond what the checksum covers, or
     *  an incompatible object format). */
    void invalidate(const CompileKey& key, const char* reason) const;

  private:
    std::string dir_;  ///< `<root>/jit`, or empty when disabled
};

/**
 * Identity of the external C compiler `cc` (a path or PATH name):
 * "<cc> <first line of cc --version>". Memoized per process. Falls
 * back to the bare name when --version fails — two different broken
 * compilers then share entries, but both also fail to compile, so no
 * wrong code can be served.
 */
std::string compiler_identity(const std::string& cc);

}  // namespace cache
}  // namespace exo2

#endif  // EXO2_CACHE_CACHE_H_
