#include <cstdio>
#include <cstdlib>

#include "src/cache/cache.h"
#include "src/cache/cache_internal.h"
#include "src/machine/cost_sim.h"
#include "src/obs/trace.h"
#include "src/tune/actions.h"
#include "src/util/file_atomic.h"
#include "src/verify/sandbox.h"

namespace exo2 {
namespace cache {

namespace {

using internal::FlockGuard;
using internal::StatsRef;

constexpr const char* kMagic = "exo2-tune-cache v1";

std::string
entry_name(const TuneKey& key)
{
    return hex64(key.hash()) + ".tune";
}

/** Render one entry. The header is line-oriented key=value; the
 *  payload (the schedule script) follows the `---` separator and is
 *  covered by an explicit byte count (truncation check) and an FNV-1a
 *  checksum (damage check). */
std::string
render_entry(const TuneKey& key, const TuneEntry& e, int lib_version,
             int cost_version)
{
    char num[64];
    std::string s;
    s += kMagic;
    s += "\n";
    s += "lib=" + std::to_string(lib_version) + "\n";
    s += "cost_model=" + std::to_string(cost_version) + "\n";
    s += "digest=" + hex64(key.proc_digest) + "\n";
    s += "machine=" + key.machine + "\n";
    s += "isa=" + key.isa + "\n";
    s += "sizes=" + key.sizes + "\n";
    std::snprintf(num, sizeof(num), "cost=%.17g", e.cost);
    s += num;
    s += "\n";
    s += std::string("validated=") + (e.validated ? "1" : "0") + "\n";
    s += "payload_bytes=" + std::to_string(e.script_text.size()) + "\n";
    s += "checksum=" + hex64(fnv1a64(e.script_text)) + "\n";
    s += "---\n";
    s += e.script_text;
    return s;
}

/** One parsed header line; false when `line` is not `key=value`. */
bool
split_kv(const std::string& line, std::string* k, std::string* v)
{
    size_t eq = line.find('=');
    if (eq == std::string::npos)
        return false;
    *k = line.substr(0, eq);
    *v = line.substr(eq + 1);
    return true;
}

enum class ParseOutcome { Ok, Corrupt, Stale, KeyMismatch };

/** Parse and validate one entry file against `key`. */
ParseOutcome
parse_entry(const std::string& text, const TuneKey& key, TuneEntry* out)
{
    size_t pos = 0;
    auto next_line = [&](std::string* line) {
        if (pos >= text.size())
            return false;
        size_t nl = text.find('\n', pos);
        if (nl == std::string::npos)
            return false;  // headers must be newline-terminated
        *line = text.substr(pos, nl - pos);
        pos = nl + 1;
        return true;
    };

    std::string line;
    if (!next_line(&line))
        return ParseOutcome::Corrupt;
    if (line != kMagic) {
        // A recognizable older format is stale; garbage is corrupt.
        return line.rfind("exo2-tune-cache", 0) == 0
                   ? ParseOutcome::Stale
                   : ParseOutcome::Corrupt;
    }

    long lib = -1, cost_model = -1, payload_bytes = -1;
    uint64_t checksum = 0;
    bool have_checksum = false;
    std::string digest, machine, isa, sizes;
    TuneEntry e;
    for (;;) {
        if (!next_line(&line))
            return ParseOutcome::Corrupt;  // no `---` terminator
        if (line == "---")
            break;
        std::string k, v;
        if (!split_kv(line, &k, &v))
            return ParseOutcome::Corrupt;
        if (k == "lib")
            lib = std::atol(v.c_str());
        else if (k == "cost_model")
            cost_model = std::atol(v.c_str());
        else if (k == "digest")
            digest = v;
        else if (k == "machine")
            machine = v;
        else if (k == "isa")
            isa = v;
        else if (k == "sizes")
            sizes = v;
        else if (k == "cost")
            e.cost = std::atof(v.c_str());
        else if (k == "validated")
            e.validated = v == "1";
        else if (k == "payload_bytes")
            payload_bytes = std::atol(v.c_str());
        else if (k == "checksum") {
            checksum = std::strtoull(v.c_str(), nullptr, 16);
            have_checksum = true;
        }
        // Unknown header keys are ignored: forward-compatible reads.
    }
    if (payload_bytes < 0 || !have_checksum)
        return ParseOutcome::Corrupt;
    if (lib != tune::kScheduleLibraryVersion ||
        cost_model != kCostModelVersion)
        return ParseOutcome::Stale;

    std::string payload = text.substr(pos);
    if (static_cast<long>(payload.size()) != payload_bytes)
        return ParseOutcome::Corrupt;  // truncated (or padded)
    if (fnv1a64(payload) != checksum)
        return ParseOutcome::Corrupt;  // bit damage

    // Same file name but different identity: a hash collision, not
    // damage — report a plain miss so the caller re-tunes.
    if (digest != hex64(key.proc_digest) || machine != key.machine ||
        isa != key.isa || sizes != key.sizes)
        return ParseOutcome::KeyMismatch;

    e.script_text = std::move(payload);
    *out = std::move(e);
    return ParseOutcome::Ok;
}

}  // namespace

TuneCache::TuneCache(std::string dir)
{
    if (dir.empty())
        return;
    dir_ = dir + "/tune";
    if (!internal::ensure_dirs(dir_)) {
        dir_.clear();  // unusable root: behave as disabled
        return;
    }
    // Crash-only recovery: reclaim temp files from writers that died
    // mid-write (their entries were never published, so nothing else
    // refers to them).
    int swept = util::sweep_stale_tmp_files(dir_);
    if (swept > 0) {
        StatsRef stats;
        stats->tmp_swept += swept;
    }
}

TuneCache::TuneCache() : TuneCache(cache_dir_from_env()) {}

std::optional<TuneEntry>
TuneCache::probe(const TuneKey& key) const
{
    if (!enabled())
        return std::nullopt;
    EXO2_SPAN("cache.tune_probe");
    std::string name = entry_name(key);
    std::string text;
    if (!util::read_file_text(dir_ + "/" + name, &text)) {
        StatsRef stats;
        stats->tune_misses++;
        return std::nullopt;
    }
    TuneEntry e;
    switch (parse_entry(text, key, &e)) {
      case ParseOutcome::Ok: {
          StatsRef stats;
          stats->tune_hits++;
          return e;
      }
      case ParseOutcome::Corrupt: {
          internal::quarantine(dir_, name, "corrupt");
          StatsRef stats;
          stats->tune_corrupt++;
          stats->tune_misses++;
          return std::nullopt;
      }
      case ParseOutcome::Stale: {
          internal::quarantine(dir_, name, "stale");
          StatsRef stats;
          stats->tune_stale++;
          stats->tune_misses++;
          return std::nullopt;
      }
      case ParseOutcome::KeyMismatch: {
          StatsRef stats;
          stats->tune_misses++;
          return std::nullopt;
      }
    }
    return std::nullopt;
}

bool
TuneCache::store(const TuneKey& key, const TuneEntry& entry) const
{
    if (!enabled())
        return false;
    EXO2_SPAN("cache.tune_store");
    std::string name = entry_name(key);
    std::string path = dir_ + "/" + name;

    bool ok;
    {
        FlockGuard lock(dir_);
        ok = util::write_file_atomic(
            path,
            render_entry(key, entry, tune::kScheduleLibraryVersion,
                         kCostModelVersion),
            /*durable=*/true);

        // Structural fault injection (DESIGN.md §8): damage the entry
        // we just published — for real, on disk — so the detection and
        // quarantine paths in probe() face genuine corruption.
        if (ok && verify::fault_should_inject(
                      verify::FaultSite::CacheCorrupt)) {
            internal::corrupt_file_in_place(path);
        } else if (ok && verify::fault_should_inject(
                             verify::FaultSite::CacheStale)) {
            util::write_file_atomic(
                path,
                render_entry(key, entry,
                             tune::kScheduleLibraryVersion - 1,
                             kCostModelVersion),
                /*durable=*/true);
        }
    }
    StatsRef stats;
    if (ok)
        stats->tune_stores++;
    else
        stats->tune_store_failures++;
    return ok;
}

void
TuneCache::invalidate(const TuneKey& key, const char* reason) const
{
    if (!enabled())
        return;
    FlockGuard lock(dir_);
    internal::quarantine(dir_, entry_name(key), reason);
}

}  // namespace cache
}  // namespace exo2
