#include <cstdio>
#include <cstdlib>

#include "src/cache/cache.h"
#include "src/cache/cache_internal.h"
#include "src/obs/trace.h"
#include "src/util/file_atomic.h"
#include "src/verify/sandbox.h"

namespace exo2 {
namespace cache {

namespace {

using internal::FlockGuard;
using internal::StatsRef;

constexpr const char* kMagic = "exo2-jit-cache v1";

std::string
so_name(const CompileKey& key)
{
    return hex64(key.hash()) + ".so";
}

std::string
meta_name(const CompileKey& key)
{
    return hex64(key.hash()) + ".meta";
}

std::string
render_meta(const CompileKey& key, const std::string& so_bytes)
{
    std::string s;
    s += kMagic;
    s += "\n";
    s += "digest=" + hex64(key.source_digest) + "\n";
    s += "flags=" + key.isa_flags + "\n";
    s += "compiler=" + key.compiler_id + "\n";
    s += "so_bytes=" + std::to_string(so_bytes.size()) + "\n";
    s += "checksum=" + hex64(fnv1a64(so_bytes)) + "\n";
    return s;
}

enum class MetaOutcome { Ok, Corrupt, Stale, KeyMismatch };

MetaOutcome
parse_meta(const std::string& text, const CompileKey& key,
           long* so_bytes, uint64_t* checksum)
{
    *so_bytes = -1;
    bool have_checksum = false;
    std::string digest, flags, compiler;

    size_t pos = 0;
    bool first = true;
    while (pos < text.size()) {
        size_t nl = text.find('\n', pos);
        if (nl == std::string::npos)
            return MetaOutcome::Corrupt;  // meta lines end in newline
        std::string line = text.substr(pos, nl - pos);
        pos = nl + 1;
        if (first) {
            first = false;
            if (line == kMagic)
                continue;
            return line.rfind("exo2-jit-cache", 0) == 0
                       ? MetaOutcome::Stale
                       : MetaOutcome::Corrupt;
        }
        size_t eq = line.find('=');
        if (eq == std::string::npos)
            return MetaOutcome::Corrupt;
        std::string k = line.substr(0, eq);
        std::string v = line.substr(eq + 1);
        if (k == "digest")
            digest = v;
        else if (k == "flags")
            flags = v;
        else if (k == "compiler")
            compiler = v;
        else if (k == "so_bytes")
            *so_bytes = std::atol(v.c_str());
        else if (k == "checksum") {
            *checksum = std::strtoull(v.c_str(), nullptr, 16);
            have_checksum = true;
        }
    }
    if (first || *so_bytes < 0 || !have_checksum)
        return MetaOutcome::Corrupt;
    if (digest != hex64(key.source_digest) || flags != key.isa_flags ||
        compiler != key.compiler_id)
        return MetaOutcome::KeyMismatch;
    return MetaOutcome::Ok;
}

}  // namespace

CompileCache::CompileCache(std::string dir)
{
    if (dir.empty())
        return;
    dir_ = dir + "/jit";
    if (!internal::ensure_dirs(dir_)) {
        dir_.clear();
        return;
    }
    int swept = util::sweep_stale_tmp_files(dir_);
    if (swept > 0) {
        StatsRef stats;
        stats->tmp_swept += swept;
    }
}

CompileCache::CompileCache() : CompileCache(cache_dir_from_env()) {}

std::optional<std::string>
CompileCache::probe(const CompileKey& key) const
{
    if (!enabled())
        return std::nullopt;
    EXO2_SPAN("cache.jit_probe");
    std::string mname = meta_name(key);
    std::string sname = so_name(key);
    std::string meta;
    if (!util::read_file_text(dir_ + "/" + mname, &meta)) {
        StatsRef stats;
        stats->jit_misses++;
        return std::nullopt;
    }

    long so_bytes = -1;
    uint64_t checksum = 0;
    MetaOutcome mo = parse_meta(meta, key, &so_bytes, &checksum);
    if (mo == MetaOutcome::Corrupt || mo == MetaOutcome::Stale) {
        internal::quarantine(dir_, mname,
                             mo == MetaOutcome::Stale ? "stale"
                                                      : "corrupt");
        internal::quarantine(dir_, sname,
                             mo == MetaOutcome::Stale ? "stale"
                                                      : "corrupt");
        StatsRef stats;
        (mo == MetaOutcome::Stale ? stats->jit_stale
                                  : stats->jit_corrupt)++;
        stats->jit_misses++;
        return std::nullopt;
    }
    if (mo == MetaOutcome::KeyMismatch) {
        StatsRef stats;
        stats->jit_misses++;
        return std::nullopt;
    }

    // Validate the object against the sidecar before anyone dlopens
    // it: a torn or bit-damaged .so must never reach the loader.
    std::string so;
    if (!util::read_file_text(dir_ + "/" + sname, &so) ||
        static_cast<long>(so.size()) != so_bytes ||
        fnv1a64(so) != checksum) {
        internal::quarantine(dir_, sname, "checksum");
        internal::quarantine(dir_, mname, "checksum");
        StatsRef stats;
        stats->jit_corrupt++;
        stats->jit_misses++;
        return std::nullopt;
    }
    StatsRef stats;
    stats->jit_hits++;
    return dir_ + "/" + sname;
}

bool
CompileCache::store(const CompileKey& key,
                    const std::string& so_path) const
{
    if (!enabled())
        return false;
    EXO2_SPAN("cache.jit_store");
    std::string so;
    if (!util::read_file_text(so_path, &so) || so.empty()) {
        StatsRef stats;
        stats->jit_store_failures++;
        return false;
    }

    bool ok;
    {
        FlockGuard lock(dir_);
        // Object first, sidecar second: a crash between the two leaves
        // a .so with no .meta — probe() reports a miss, the next
        // successful store overwrites both. No ordering leaves a
        // validated sidecar pointing at missing/old bytes.
        ok = util::write_file_atomic(dir_ + "/" + so_name(key), so,
                                     /*durable=*/true) &&
             util::write_file_atomic(dir_ + "/" + meta_name(key),
                                     render_meta(key, so),
                                     /*durable=*/true);

        if (ok && verify::fault_should_inject(
                      verify::FaultSite::CacheCorrupt)) {
            internal::corrupt_file_in_place(dir_ + "/" + so_name(key));
        } else if (ok && verify::fault_should_inject(
                             verify::FaultSite::CacheStale)) {
            std::string stale_meta = render_meta(key, so);
            stale_meta.replace(stale_meta.find(" v1"), 3, " v0");
            util::write_file_atomic(dir_ + "/" + meta_name(key),
                                    stale_meta, /*durable=*/true);
        }
    }
    StatsRef stats;
    if (ok)
        stats->jit_stores++;
    else
        stats->jit_store_failures++;
    return ok;
}

void
CompileCache::invalidate(const CompileKey& key,
                         const char* reason) const
{
    if (!enabled())
        return;
    FlockGuard lock(dir_);
    internal::quarantine(dir_, so_name(key), reason);
    internal::quarantine(dir_, meta_name(key), reason);
}

}  // namespace cache
}  // namespace exo2
