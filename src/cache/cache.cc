#include "src/cache/cache.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <map>
#include <mutex>

#include "src/cache/cache_internal.h"
#include "src/util/env.h"
#include "src/util/file_atomic.h"
#include "src/verify/sandbox.h"

namespace exo2 {
namespace cache {

uint64_t
fnv1a64(const void* data, size_t len, uint64_t seed)
{
    const unsigned char* p = static_cast<const unsigned char*>(data);
    uint64_t h = seed;
    for (size_t i = 0; i < len; i++) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

uint64_t
fnv1a64(const std::string& s)
{
    return fnv1a64(s.data(), s.size());
}

std::string
hex64(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
cache_dir_from_env()
{
    return util::env_string("EXO2_CACHE_DIR", "");
}

uint64_t
TuneKey::hash() const
{
    uint64_t h = fnv1a64(&proc_digest, sizeof(proc_digest));
    h = fnv1a64(machine.data(), machine.size(), h);
    h = fnv1a64("|", 1, h);
    h = fnv1a64(isa.data(), isa.size(), h);
    h = fnv1a64("|", 1, h);
    h = fnv1a64(sizes.data(), sizes.size(), h);
    return h;
}

uint64_t
CompileKey::hash() const
{
    uint64_t h = fnv1a64(&source_digest, sizeof(source_digest));
    h = fnv1a64(isa_flags.data(), isa_flags.size(), h);
    h = fnv1a64("|", 1, h);
    h = fnv1a64(compiler_id.data(), compiler_id.size(), h);
    return h;
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

namespace {

std::mutex g_stats_mu;
CacheStats g_stats;

}  // namespace

CacheStats
cache_stats()
{
    std::lock_guard<std::mutex> lk(g_stats_mu);
    return g_stats;
}

void
reset_cache_stats()
{
    std::lock_guard<std::mutex> lk(g_stats_mu);
    g_stats = CacheStats();
}

// ---------------------------------------------------------------------------
// Compiler identity
// ---------------------------------------------------------------------------

std::string
compiler_identity(const std::string& cc)
{
    static std::mutex mu;
    static std::map<std::string, std::string> memo;
    std::lock_guard<std::mutex> lk(mu);
    auto it = memo.find(cc);
    if (it != memo.end())
        return it->second;

    std::string id = cc;
    char tmpl[] = "/tmp/exo2_ccid_XXXXXX";
    int fd = mkstemp(tmpl);
    if (fd >= 0) {
        close(fd);
        verify::SpawnResult r =
            verify::run_command({cc, "--version"}, tmpl, 10.0);
        if (r.ok()) {
            std::string text;
            if (util::read_file_text(tmpl, &text)) {
                size_t nl = text.find('\n');
                id = cc + " " +
                     (nl == std::string::npos ? text
                                              : text.substr(0, nl));
            }
        }
        unlink(tmpl);
    }
    memo[cc] = id;
    return id;
}

// ---------------------------------------------------------------------------
// Internal plumbing
// ---------------------------------------------------------------------------

namespace internal {

bool
ensure_dirs(const std::string& path)
{
    if (path.empty())
        return false;
    std::string cur;
    size_t pos = 0;
    while (pos <= path.size()) {
        size_t slash = path.find('/', pos);
        if (slash == std::string::npos)
            slash = path.size();
        cur = path.substr(0, slash);
        pos = slash + 1;
        if (cur.empty())
            continue;  // leading '/'
        if (mkdir(cur.c_str(), 0755) != 0 && errno != EEXIST)
            return false;
    }
    struct stat st;
    return stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

FlockGuard::FlockGuard(const std::string& dir)
{
    std::string lock_path = dir + "/lock";
    fd_ = open(lock_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd_ >= 0 && flock(fd_, LOCK_EX) != 0) {
        close(fd_);
        fd_ = -1;
    }
}

FlockGuard::~FlockGuard()
{
    if (fd_ >= 0) {
        flock(fd_, LOCK_UN);
        close(fd_);
    }
}

void
quarantine(const std::string& dir, const std::string& name,
           const char* reason)
{
    static std::atomic<uint64_t> seq{0};
    std::string bad_dir = dir + "/.bad";
    ensure_dirs(bad_dir);
    std::string src = dir + "/" + name;
    std::string dst = bad_dir + "/" + name + "." + reason + "." +
                      std::to_string(::getpid()) + "." +
                      std::to_string(seq.fetch_add(1));
    if (rename(src.c_str(), dst.c_str()) != 0)
        unlink(src.c_str());  // never serve a damaged entry twice
}

StatsRef::StatsRef() { g_stats_mu.lock(); }

StatsRef::~StatsRef() { g_stats_mu.unlock(); }

CacheStats*
StatsRef::operator->()
{
    return &g_stats;  // guarded by the mutex held for our lifetime
}

void
corrupt_file_in_place(const std::string& path)
{
    std::string bytes;
    if (!util::read_file_text(path, &bytes) || bytes.empty())
        return;
    bytes[bytes.size() / 2] ^= 0x5a;       // bit damage
    bytes.resize(bytes.size() - bytes.size() / 4);  // torn tail
    // Deliberately NOT atomic: this models in-place media damage.
    FILE* f = std::fopen(path.c_str(), "wb");
    if (f) {
        std::fwrite(bytes.data(), 1, bytes.size(), f);
        std::fclose(f);
    }
}

}  // namespace internal
}  // namespace cache
}  // namespace exo2
