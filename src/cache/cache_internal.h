#ifndef EXO2_CACHE_CACHE_INTERNAL_H_
#define EXO2_CACHE_CACHE_INTERNAL_H_

/**
 * @file
 * Shared plumbing of the persistent caches (not part of the public
 * API): directory creation, the advisory-flock write guard, entry
 * quarantine, and the global stats counters. See cache.h for the
 * on-disk discipline these implement.
 */

#include <cstdint>
#include <string>

#include "src/cache/cache.h"

namespace exo2 {
namespace cache {
namespace internal {

/** mkdir -p. Returns false when a component cannot be created. */
bool ensure_dirs(const std::string& path);

/**
 * Advisory exclusive lock on `<dir>/lock`, held for the guard's
 * lifetime. flock locks are per open-file-description, so two writers
 * contend whether they are threads of one process or separate
 * processes. Failure to acquire (e.g. unwritable dir) leaves
 * `held() == false`; callers proceed unlocked — the atomic-rename
 * publish is still safe, the lock only serializes multi-file
 * sequences and reduces wasted duplicate work.
 */
class FlockGuard
{
  public:
    explicit FlockGuard(const std::string& dir);
    ~FlockGuard();

    FlockGuard(const FlockGuard&) = delete;
    FlockGuard& operator=(const FlockGuard&) = delete;

    bool held() const { return fd_ >= 0; }

  private:
    int fd_ = -1;
};

/**
 * Move `<dir>/<name>` into `<dir>/.bad/` under a unique name that
 * embeds `reason` ("checksum", "truncated", "version", ...), for
 * post-mortem inspection. Never throws; a failed rename falls back to
 * unlink so a damaged entry can never be served twice.
 */
void quarantine(const std::string& dir, const std::string& name,
                const char* reason);

/** Mutating access to the process-wide counters (cache.h). */
struct StatsRef
{
    StatsRef();   ///< locks
    ~StatsRef();  ///< unlocks
    CacheStats* operator->();
};

/** Damage a just-written cache file in place, for the cache_corrupt
 *  injection site: flip a byte in the middle and truncate the tail so
 *  both the checksum and the length check have something to catch. */
void corrupt_file_in_place(const std::string& path);

}  // namespace internal
}  // namespace cache
}  // namespace exo2

#endif  // EXO2_CACHE_CACHE_INTERNAL_H_
