#ifndef EXO2_PRIMITIVES_BUFFERS_H_
#define EXO2_PRIMITIVES_BUFFERS_H_

/**
 * @file
 * Buffer transformation primitives (Appendix A.5): allocation motion,
 * dimension surgery, staging, and expression binding.
 */

#include <string>
#include <vector>

#include "src/primitives/common.h"

namespace exo2 {

/** Hoist an Alloc out of `n_lifts` enclosing loops/ifs. */
ProcPtr lift_alloc(const ProcPtr& p, const Cursor& alloc, int n_lifts = 1);

/** Sink an Alloc into the immediately following For/If. */
ProcPtr sink_alloc(const ProcPtr& p, const Cursor& alloc);

/** Delete a dead buffer (no remaining accesses). */
ProcPtr delete_buffer(const ProcPtr& p, const Cursor& alloc);

/** Replace buffer `b` by same-shaped earlier buffer `a` (Appendix A.5). */
ProcPtr reuse_buffer(const ProcPtr& p, const Cursor& a_alloc,
                     const Cursor& b_alloc);

/** Resize dimension `dim` to `sz`, shifting accesses by `-off`. */
ProcPtr resize_dim(const ProcPtr& p, const Cursor& alloc, int dim,
                   const ExprPtr& sz, const ExprPtr& off);

/** Prepend a new dimension of size `sz`, indexed by `idx` at accesses. */
ProcPtr expand_dim(const ProcPtr& p, const Cursor& alloc, const ExprPtr& sz,
                   const ExprPtr& idx);

/** Permute buffer dimensions by `perm` (perm[i] = old dim at new pos i). */
ProcPtr rearrange_dim(const ProcPtr& p, const Cursor& alloc,
                      const std::vector<int>& perm);

/** Split dimension `dim` by constant `c` into (dim/c, c). */
ProcPtr divide_dim(const ProcPtr& p, const Cursor& alloc, int dim,
                   int64_t c);
ProcPtr divide_dim(const ProcPtr& p, const std::string& buf_name, int dim,
                   int64_t c);

/** Fuse dimensions `dim` and `dim+1` (the latter constant-sized). */
ProcPtr mult_dim(const ProcPtr& p, const Cursor& alloc, int dim);

/** Explode a constant dimension accessed at constant indices into
 *  separate scalar buffers `name_0 .. name_{c-1}`. */
ProcPtr unroll_buffer(const ProcPtr& p, const Cursor& alloc, int dim);

/**
 * Stage the expression at `e` into a new scalar: inserts
 * `name: T; name = e` before the enclosing statement and replaces the
 * occurrence (all structurally equal occurrences when `cse`).
 */
ProcPtr bind_expr(const ProcPtr& p, const Cursor& e,
                  const std::string& new_name, bool cse = false);

/** Result of stage_mem: the proc plus cursors to the new code. */
struct StageMemResult
{
    ProcPtr p;
    Cursor alloc;
    Cursor load;   ///< invalid when staging write-only buffers
    Cursor store;  ///< invalid when the block never writes the buffer
    Cursor block;  ///< the rewritten block
};

/**
 * Stage the `window` of buffer `buf` into a new buffer `new_name`
 * around `block` (Appendix A.5): copy-in loops, access rewriting, and
 * copy-out loops when the block writes the buffer. Point dims of the
 * window are fixed coordinates; interval dims become tmp dimensions.
 */
StageMemResult stage_mem(const ProcPtr& p, const Cursor& block,
                         const std::string& buf,
                         const std::vector<WindowDim>& window,
                         const std::string& new_name);

}  // namespace exo2

#endif  // EXO2_PRIMITIVES_BUFFERS_H_
