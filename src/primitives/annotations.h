#ifndef EXO2_PRIMITIVES_ANNOTATIONS_H_
#define EXO2_PRIMITIVES_ANNOTATIONS_H_

/**
 * @file
 * Backend-checked annotations (Appendix A.7) and configuration-state
 * primitives (Appendix A.8). Annotation consistency (memory access
 * legality, precision agreement) is re-validated by the code generator
 * and the machine simulator; the primitives here perform the local
 * checks that can be done at scheduling time.
 */

#include <string>

#include "src/primitives/common.h"

namespace exo2 {

/** Change the memory space of an allocation. */
ProcPtr set_memory(const ProcPtr& p, const Cursor& alloc,
                   const MemoryPtr& mem);
ProcPtr set_memory(const ProcPtr& p, const std::string& buf_name,
                   const MemoryPtr& mem);

/** Change the element precision of an allocation. */
ProcPtr set_precision(const ProcPtr& p, const Cursor& alloc, ScalarType t);

/** Mark a loop parallel; requires no cross-iteration RAW/WAW. */
ProcPtr parallelize_loop(const ProcPtr& p, const Cursor& loop);

/**
 * Introduce a configuration-state binding: the expression at `e` is
 * written into `cfg.field` before the enclosing statement, and the
 * occurrence is replaced by a read of the field (Appendix A.8).
 */
ProcPtr bind_config(const ProcPtr& p, const Cursor& e,
                    const std::string& cfg, const std::string& field);

/** Delete a configuration write whose value is never read afterwards. */
ProcPtr delete_config(const ProcPtr& p, const Cursor& config_write);

/** Insert `cfg.field = e` at `gap`. */
ProcPtr write_config(const ProcPtr& p, const Cursor& gap,
                     const std::string& cfg, const std::string& field,
                     const ExprPtr& e);

/**
 * Insert a call to a configuration instruction (instr_class "config",
 * body all WriteConfig) at `gap`. Configuration state written by such
 * instructions is semantically transparent unless read later; the
 * check mirrors write_config's.
 */
ProcPtr insert_config_call(const ProcPtr& p, const Cursor& gap,
                           const ProcPtr& config_instr,
                           std::vector<ExprPtr> args);

/** Delete a configuration-instruction call whose fields are unread. */
ProcPtr delete_config_call(const ProcPtr& p, const Cursor& call);

}  // namespace exo2

#endif  // EXO2_PRIMITIVES_ANNOTATIONS_H_
