#ifndef EXO2_PRIMITIVES_MULTIPROC_H_
#define EXO2_PRIMITIVES_MULTIPROC_H_

/**
 * @file
 * Multi-procedure primitives (Appendix A.4): call inlining, statement
 * replacement by hardware instructions (via structural unification
 * against the instruction's semantics body), equivalent-procedure call
 * swapping, and sub-procedure extraction.
 */

#include <string>
#include <utility>
#include <vector>

#include "src/primitives/common.h"

namespace exo2 {

/** Inline the call at `call` (splices the callee body, substituted). */
ProcPtr inline_call(const ProcPtr& p, const Cursor& call);

/**
 * Replace the statement (or block) at `s` with a call to `instr`,
 * unifying the code against the instruction's semantics body. Throws
 * SchedulingError when unification fails.
 */
ProcPtr replace(const ProcPtr& p, const Cursor& s, const ProcPtr& instr);

/**
 * Exhaustively replace statements matching any of `instrs` (applied in
 * order) throughout the procedure.
 */
ProcPtr replace_all_stmts(const ProcPtr& p,
                          const std::vector<ProcPtr>& instrs);

/** Swap the callee of `call` for an equivalent procedure. */
ProcPtr call_eqv(const ProcPtr& p, const Cursor& call, const ProcPtr& eqv);

/**
 * Replace every call to a procedure equivalent to `eqv` with `eqv`;
 * returns the proc unchanged if there is none.
 */
ProcPtr call_eqv_all(const ProcPtr& p, const ProcPtr& eqv);

/**
 * Extract the block at `s` into a new procedure `name`; free variables
 * become arguments. Returns (rewritten proc, extracted subproc).
 */
std::pair<ProcPtr, ProcPtr> extract_subproc(const ProcPtr& p,
                                            const Cursor& s,
                                            const std::string& name);

}  // namespace exo2

#endif  // EXO2_PRIMITIVES_MULTIPROC_H_
