#ifndef EXO2_PRIMITIVES_SCOPE_H_
#define EXO2_PRIMITIVES_SCOPE_H_

/**
 * @file
 * Code rearrangement (Appendix A.2) and scope transformations
 * (Appendix A.3).
 */

#include <string>
#include <vector>

#include "src/primitives/common.h"

namespace exo2 {

/**
 * Swap two adjacent statements (or blocks: pass a Block cursor covering
 * both halves and the split index). `s` must be a block of exactly two
 * statements, or use the (stmt, stmt) overload.
 */
ProcPtr reorder_stmts(const ProcPtr& p, const Cursor& first,
                      const Cursor& second);

/** Swap the two halves of a two-statement block cursor. */
ProcPtr reorder_stmts(const ProcPtr& p, const Cursor& pair_block);

/** Commute the operands of a `+` or `*` expression. */
ProcPtr commute_expr(const ProcPtr& p, const Cursor& expr);

/**
 * Wrap `stmt` (or block) in a chain of specialization branches:
 * `if conds[0]: s else: if conds[1]: s else: ... else: s`.
 */
ProcPtr specialize(const ProcPtr& p, const Cursor& stmt,
                   const std::vector<ExprPtr>& conds);

/**
 * Fuse two adjacent loops (or ifs) with equal bounds (or condition).
 *
 * When the plain commutation check fails, fusion is still accepted if
 * the first loop is a *pure recomputation producer* for the second:
 * every write of the conflicting buffer is an Assign whose value
 * depends only on never-written inputs (so overlapping recomputation
 * writes identical values), and within each iteration the first loop's
 * writes cover the second's reads (proved by bounds inference). This
 * is what makes Halide-style compute_at with recompute expressible
 * (Section 6.3.2, Figure 10).
 */
ProcPtr fuse(const ProcPtr& p, const Cursor& scope1, const Cursor& scope2);

/**
 * Interchange the For/If at `scope` with its parent For/If; `scope`
 * must be the only statement in the parent's body (Appendix A.3).
 */
ProcPtr lift_scope(const ProcPtr& p, const Cursor& scope);
ProcPtr lift_scope(const ProcPtr& p, const std::string& loop_name);

}  // namespace exo2

#endif  // EXO2_PRIMITIVES_SCOPE_H_
