#ifndef EXO2_PRIMITIVES_SIMPLIFY_H_
#define EXO2_PRIMITIVES_SIMPLIFY_H_

/**
 * @file
 * Simplification primitives (Appendix A.6): arithmetic simplification
 * with bounds-aware div/mod rewriting, dead code elimination, proved
 * expression rewriting, write merging, and window/assign inlining.
 */

#include "src/primitives/common.h"

namespace exo2 {

/**
 * Arithmetic simplification over the whole procedure: constant folding,
 * affine normalization, and context-aware floor-div/mod elimination
 * (e.g. `(8*io + ii) / 8 -> io` when `0 <= ii < 8`). Shape-preserving;
 * cursors survive.
 */
ProcPtr simplify(const ProcPtr& p);

/** Simplify a single expression under a context (exposed for reuse). */
ExprPtr simplify_expr(const Context& ctx, const ExprPtr& e);

/**
 * Remove dead control flow under `scope` (or everywhere with the
 * 1-argument form): loops proved to run zero times become `pass`,
 * branches with constant-provable conditions are flattened.
 */
ProcPtr eliminate_dead_code(const ProcPtr& p, const Cursor& scope);
ProcPtr eliminate_dead_code(const ProcPtr& p);

/** Alias used throughout the GEMM library code. */
inline ProcPtr
dce(const ProcPtr& p)
{
    return eliminate_dead_code(p);
}

/** Replace the expression at `e` by `repl`, proving equivalence. */
ProcPtr rewrite_expr(const ProcPtr& p, const Cursor& e, const ExprPtr& repl);

/** Merge two adjacent writes to the same destination (Appendix A.6). */
ProcPtr merge_writes(const ProcPtr& p, const Cursor& s1, const Cursor& s2);

/** Inline a window declaration into its uses. */
ProcPtr inline_window(const ProcPtr& p, const Cursor& window_decl);

/** Inline a scalar assignment into the following statements. */
ProcPtr inline_assign(const ProcPtr& p, const Cursor& assign);

}  // namespace exo2

#endif  // EXO2_PRIMITIVES_SIMPLIFY_H_
