#include "src/primitives/scope.h"

#include "src/primitives/loops.h"

#include "src/analysis/effects.h"
#include "src/inspect/bounds.h"
#include "src/ir/builder.h"
#include "src/ir/errors.h"

namespace exo2 {

ProcPtr
reorder_stmts(const ProcPtr& p, const Cursor& first, const Cursor& second)
{
    ScheduleStats::count_rewrite("reorder_stmts");
    Cursor c1 = expect_stmt_cursor(p, first);
    Cursor c2 = expect_stmt_cursor(p, second);
    int pos1 = 0;
    int pos2 = 0;
    ListAddr l1 = list_addr_of(c1.loc().path, &pos1);
    ListAddr l2 = list_addr_of(c2.loc().path, &pos2);
    require(l1.parent == l2.parent && l1.label == l2.label &&
                pos2 == pos1 + 1,
            "reorder_stmts: statements must be adjacent");
    Context ctx = Context::at(p, c1.loc().path);
    std::string why;
    require(stmts_commute(ctx, c1.stmt(), c2.stmt(), &why),
            "reorder_stmts: statements do not commute: " + why);
    // Move the second statement before the first.
    return apply_move(p, l1, pos2, pos2 + 1, l1, pos1, "reorder_stmts");
}

ProcPtr
reorder_stmts(const ProcPtr& p, const Cursor& pair_block)
{
    Cursor blk = p->forward(pair_block);
    require(blk.is_valid() && blk.kind() == CursorKind::Block &&
                blk.block_size() == 2,
            "reorder_stmts: expected a two-statement block");
    return reorder_stmts(p, blk[0], blk[1]);
}

ProcPtr
commute_expr(const ProcPtr& p, const Cursor& expr)
{
    ScheduleStats::count_rewrite("commute_expr");
    Cursor c = p->forward(expr);
    require(c.is_valid() && c.kind() == CursorKind::Node,
            "commute_expr: expected an expression cursor");
    ExprPtr e = c.expr();
    require(e->kind() == ExprKind::BinOp &&
                (e->op() == BinOpKind::Add || e->op() == BinOpKind::Mul),
            "commute_expr: expression must be + or *");
    ExprPtr swapped = Expr::make_binop(e->op(), e->rhs(), e->lhs());
    return apply_replace_expr(p, c.loc().path, swapped, "commute_expr");
}

ProcPtr
specialize(const ProcPtr& p, const Cursor& stmt,
           const std::vector<ExprPtr>& conds)
{
    ScheduleStats::count_rewrite("specialize");
    require(!conds.empty(), "specialize: need at least one condition");
    Cursor c = p->forward(stmt);
    require(c.is_valid(), "specialize: cursor invalidated");
    int lo = 0;
    int hi = 0;
    ListAddr addr{};
    if (c.kind() == CursorKind::Node) {
        addr = list_addr_of(c.loc().path, &lo);
        hi = lo + 1;
    } else if (c.kind() == CursorKind::Block) {
        addr = list_addr_of(c.loc().path, &lo);
        hi = c.loc().hi;
    } else {
        throw SchedulingError("specialize: expected a stmt/block cursor");
    }
    for (const auto& cond : conds) {
        require(cond && cond->type() == ScalarType::Bool,
                "specialize: conditions must be boolean predicates");
    }
    // The branch bodies open a new scope: allocations in the wrapped
    // range must not be referenced after it.
    require_binders_do_not_escape(p, addr, lo, hi, "specialize");
    const auto& list = stmt_list_at(p, addr);
    std::vector<StmtPtr> block(list.begin() + lo, list.begin() + hi);
    // Build the chain inside-out.
    std::vector<StmtPtr> chain = block;  // final else: original code
    for (size_t i = conds.size(); i-- > 0;) {
        StmtPtr iff = Stmt::make_if(conds[i], block, chain);
        chain = {iff};
    }
    // Forwarding: the exact block maps to the outermost if; inner paths
    // relocate into the first specialized copy (then-branch chain head).
    Path first_copy = addr.parent;
    first_copy.push_back({addr.label, lo});
    first_copy.push_back({PathLabel::Body, 0});
    // The then-branch of the outermost if holds `block` directly.
    ListAddr new_list;
    new_list.parent = addr.parent;
    new_list.parent.push_back({addr.label, lo});
    new_list.label = PathLabel::Body;
    // Compose: relocate [lo,hi) region paths into the then-branch, then
    // shift siblings.
    ForwardFn shift = fwd_replace_range(addr, lo, hi, 1);
    ListAddr old_addr = addr;
    ForwardFn fwd = [old_addr, lo, hi, new_list,
                     shift](const CursorLoc& l) -> std::optional<CursorLoc> {
        size_t d = old_addr.parent.size();
        bool through = l.path.size() > d &&
                       l.path[d].label == old_addr.label;
        for (size_t i = 0; i < d && through; i++) {
            if (!(l.path[i] == old_addr.parent[i]))
                through = false;
        }
        if (through) {
            int j = l.path[d].index;
            bool final_step = l.path.size() == d + 1;
            if (j >= lo && (j < hi || (final_step && j <= hi &&
                                       l.kind != CursorKind::Node))) {
                if (final_step && l.kind == CursorKind::Block &&
                    (j < lo || l.hi > hi)) {
                    return std::nullopt;
                }
                CursorLoc out = l;
                Path np = new_list.parent;
                np.push_back({new_list.label, j - lo});
                np.insert(np.end(),
                          l.path.begin() + static_cast<long>(d) + 1,
                          l.path.end());
                out.path = std::move(np);
                return out;
            }
        }
        return shift(l);
    };
    std::vector<StmtPtr> nl(list.begin(), list.begin() + lo);
    nl.insert(nl.end(), chain.begin(), chain.end());
    nl.insert(nl.end(), list.begin() + hi, list.end());
    return p->with_body(rebuild_list(p, addr, std::move(nl)), fwd,
                        "specialize");
}

ProcPtr
fuse(const ProcPtr& p, const Cursor& scope1, const Cursor& scope2)
{
    ScheduleStats::count_rewrite("fuse");
    Cursor c1 = expect_stmt_cursor(p, scope1);
    Cursor c2 = expect_stmt_cursor(p, scope2);
    StmtPtr s1 = c1.stmt();
    StmtPtr s2 = c2.stmt();
    int pos1 = 0;
    int pos2 = 0;
    ListAddr l1 = list_addr_of(c1.loc().path, &pos1);
    ListAddr l2 = list_addr_of(c2.loc().path, &pos2);
    require(l1.parent == l2.parent && l1.label == l2.label &&
                pos2 == pos1 + 1,
            "fuse: scopes must be adjacent");
    Context ctx = Context::at(p, c1.loc().path);

    StmtPtr fused;
    int len1 = static_cast<int>(s1->body().size());

    if (s1->kind() == StmtKind::For && s2->kind() == StmtKind::For) {
        require(ctx.prove_eq(s1->lo(), s2->lo()) &&
                    ctx.prove_eq(s1->hi(), s2->hi()),
                "fuse: loop bounds are not provably equal");
        // Renaming one loop's iterator to the other's must not be
        // captured by a binder of that name nested in the body.
        require(s1->iter() == s2->iter() ||
                    !block_binds_name(s1->body(), s2->iter()),
                "fuse: '" + s2->iter() +
                    "' is re-bound inside the first loop's body");
        require(s1->iter() == s2->iter() ||
                    !block_binds_name(s2->body(), s1->iter()),
                "fuse: '" + s1->iter() +
                    "' is re-bound inside the second loop's body");
        std::vector<StmtPtr> b2 =
            block_subst(s2->body(), s2->iter(), var(s1->iter()));
        // Pure-recomputation acceptance: buffers written in s1 only by
        // Assigns whose inputs are never written in either loop, and
        // whose per-iteration writes cover s2's per-iteration reads.
        auto recompute_producer_ok = [&](const std::string& buf) {
            std::function<bool(const StmtPtr&)> pure =
                [&](const StmtPtr& st) {
                    if ((st->kind() == StmtKind::Assign ||
                         st->kind() == StmtKind::Reduce) &&
                        st->name() == buf) {
                        if (st->kind() != StmtKind::Assign)
                            return false;
                        std::vector<std::string> reads;
                        expr_collect_reads(st->rhs(), &reads);
                        for (const auto& r : reads) {
                            if (stmt_writes(s1, r) || stmt_writes(s2, r))
                                return false;
                        }
                    }
                    if (st->kind() == StmtKind::Call &&
                        stmt_writes(st, buf)) {
                        return false;
                    }
                    for (const auto& c : st->body()) {
                        if (!pure(c))
                            return false;
                    }
                    for (const auto& c : st->orelse()) {
                        if (!pure(c))
                            return false;
                    }
                    return true;
                };
            if (!pure(s1))
                return false;
            if (stmt_writes(s2, buf))
                return false;  // the consumer must only read it
            // Coverage: s1's writes (as a window in the iterator) must
            // contain s2's reads.
            try {
                auto w = inspect::infer_write_bounds(p, c1, buf);
                auto r = inspect::infer_read_bounds(p, c2, buf);
                for (auto& d : r) {
                    d.lo = expr_subst(d.lo, s2->iter(), var(s1->iter()));
                    d.hi = expr_subst(d.hi, s2->iter(), var(s1->iter()));
                }
                if (w.size() != r.size())
                    return false;
                Context fctx = ctx;
                fctx.enter_loop(s1->iter(), s1->lo(), s1->hi());
                for (size_t d = 0; d < w.size(); d++) {
                    if (!fctx.prove_le(w[d].lo, r[d].lo) ||
                        !fctx.prove_le(r[d].hi, w[d].hi)) {
                        return false;
                    }
                }
                return true;
            } catch (const SchedulingError&) {
                return false;
            }
        };
        // Safety: s1 at iteration i1 must commute with s2 at i2 < i1
        // (those are the pairs whose execution order flips).
        {
            std::map<std::string, bool> recompute_cache;
            auto a1 = collect_accesses_block(s1->body());
            auto a2 = collect_accesses_block(s2->body());
            std::string i1 = fresh_in(p, s1->iter() + "$a");
            std::string i2 = fresh_in(p, s2->iter() + "$b");
            for (const auto& a : a1) {
                for (const auto& b : a2) {
                    if (a.buf != b.buf)
                        continue;
                    if (a.kind == AccessKind::Read &&
                        b.kind == AccessKind::Read)
                        continue;
                    if (a.kind == AccessKind::Reduce &&
                        b.kind == AccessKind::Reduce)
                        continue;
                    bool conflict = true;
                    if (!a.whole_buffer && !b.whole_buffer &&
                        a.idx.size() == b.idx.size() && !a.idx.empty()) {
                        LinearSystem sys = ctx.system();
                        sys.add_pred(Expr::make_binop(
                            BinOpKind::Ge, var(i1), s1->lo()));
                        sys.add_pred(Expr::make_binop(
                            BinOpKind::Lt, var(i1), s1->hi()));
                        sys.add_pred(Expr::make_binop(
                            BinOpKind::Ge, var(i2), s2->lo()));
                        sys.add_pred(Expr::make_binop(
                            BinOpKind::Lt, var(i2), var(i1)));
                        for (const auto& bd : a.binders) {
                            sys.add_pred(Expr::make_binop(
                                BinOpKind::Ge, var(bd.name),
                                expr_subst(bd.lo, s1->iter(), var(i1))));
                            sys.add_pred(Expr::make_binop(
                                BinOpKind::Lt, var(bd.name),
                                expr_subst(bd.hi, s1->iter(), var(i1))));
                        }
                        for (const auto& bd : b.binders) {
                            sys.add_pred(Expr::make_binop(
                                BinOpKind::Ge, var(bd.name),
                                expr_subst(bd.lo, s2->iter(), var(i2))));
                            sys.add_pred(Expr::make_binop(
                                BinOpKind::Lt, var(bd.name),
                                expr_subst(bd.hi, s2->iter(), var(i2))));
                        }
                        for (const auto& g : a.guards)
                            sys.add_pred(
                                expr_subst(g, s1->iter(), var(i1)));
                        for (const auto& g : b.guards)
                            sys.add_pred(
                                expr_subst(g, s2->iter(), var(i2)));
                        for (size_t d = 0; d < a.idx.size(); d++) {
                            sys.add_eq0(affine_sub(
                                to_affine(expr_subst(a.idx[d], s1->iter(),
                                                     var(i1))),
                                to_affine(expr_subst(b.idx[d], s2->iter(),
                                                     var(i2)))));
                        }
                        conflict = !sys.infeasible();
                    }
                    if (conflict) {
                        auto it = recompute_cache.find(a.buf);
                        if (it == recompute_cache.end()) {
                            it = recompute_cache
                                     .emplace(a.buf,
                                              recompute_producer_ok(a.buf))
                                     .first;
                        }
                        if (it->second)
                            conflict = false;
                    }
                    require(!conflict,
                            "fuse: iterations do not commute on '" + a.buf +
                                "'");
                }
            }
        }
        // The fused loop adopts the *second* loop's iterator name so
        // nominal references to the consumer nest stay valid (Halide's
        // compute_at keeps the consumer loop names, Section 6.3.2).
        std::vector<StmtPtr> body =
            block_subst(s1->body(), s1->iter(), var(s2->iter()));
        b2 = s2->body();
        body.insert(body.end(), b2.begin(), b2.end());
        fused = Stmt::make_for(s2->iter(), s1->lo(), s1->hi(),
                               std::move(body), s1->loop_mode());
    } else if (s1->kind() == StmtKind::If && s2->kind() == StmtKind::If) {
        require(expr_equal(s1->cond(), s2->cond()),
                "fuse: if conditions must be identical");
        // The first if's branches must not change the condition's value.
        std::vector<std::string> cond_reads;
        expr_collect_reads(s1->cond(), &cond_reads);
        for (const auto& name : cond_reads) {
            require(!stmt_writes(s1, name),
                    "fuse: first scope writes '" + name +
                        "' read by the condition");
        }
        std::vector<StmtPtr> body = s1->body();
        body.insert(body.end(), s2->body().begin(), s2->body().end());
        std::vector<StmtPtr> orelse = s1->orelse();
        orelse.insert(orelse.end(), s2->orelse().begin(),
                      s2->orelse().end());
        fused = s1->with_body(std::move(body))->with_orelse(
            std::move(orelse));
    } else {
        throw SchedulingError("fuse: scopes must be two Fors or two Ifs");
    }

    // Forwarding: s1 body keeps indices; s2 body index j -> len1 + j
    // (both now under the fused stmt at pos1); following stmts shift -1.
    ForwardFn shift = fwd_replace_range(l1, pos1, pos1 + 2, 1);
    Path fused_path = c1.loc().path;
    ListAddr new_body{fused_path, PathLabel::Body};
    ListAddr old_b2{c2.loc().path, PathLabel::Body};
    ForwardFn move_b2 = [old_b2, new_body, len1,
                         shift](const CursorLoc& l)
        -> std::optional<CursorLoc> {
        size_t d = old_b2.parent.size();
        bool through =
            l.path.size() > d && l.path[d].label == old_b2.label;
        for (size_t i = 0; i < d && through; i++) {
            if (!(l.path[i] == old_b2.parent[i]))
                through = false;
        }
        if (through) {
            CursorLoc out = l;
            Path np = new_body.parent;
            np.push_back({new_body.label, l.path[d].index + len1});
            np.insert(np.end(), l.path.begin() + static_cast<long>(d) + 1,
                      l.path.end());
            out.path = std::move(np);
            return out;
        }
        return shift(l);
    };
    // s1 body: the fused stmt sits at pos1 where s1 was; inner paths
    // unchanged -> fall through move_b2 to shift, which maps the region
    // [pos1, pos1+2) ... but s1-body paths go through index pos1 which is
    // *inside* the replaced range. Handle them first.
    ListAddr old_b1{c1.loc().path, PathLabel::Body};
    ForwardFn fwd = fwd_relocate_list(old_b1, new_body, move_b2);

    const auto& list = stmt_list_at(p, l1);
    std::vector<StmtPtr> nl(list.begin(), list.begin() + pos1);
    nl.push_back(fused);
    nl.insert(nl.end(), list.begin() + pos2 + 1, list.end());
    return p->with_body(rebuild_list(p, l1, std::move(nl)), fwd, "fuse");
}

namespace {

/** Is `child_path` the sole statement of its parent's body? */
void
require_sole_child(const StmtPtr& parent, const std::string& who)
{
    require(parent->body().size() == 1,
            who + ": scope must be the only statement in its parent body");
}

}  // namespace

ProcPtr
lift_scope(const ProcPtr& p, const Cursor& scope)
{
    ScheduleStats::count_rewrite("lift_scope");
    Cursor sc = expect_stmt_cursor(p, scope);
    StmtPtr inner = sc.stmt();
    require(inner->kind() == StmtKind::For || inner->kind() == StmtKind::If,
            "lift_scope: scope must be a For or If");
    Cursor par = sc.parent();
    StmtPtr outer = par.stmt();
    require(outer->kind() == StmtKind::For || outer->kind() == StmtKind::If,
            "lift_scope: parent must be a For or If");
    int pos = 0;
    ListAddr in_list = list_addr_of(sc.loc().path, &pos);
    require(in_list.label == PathLabel::Body && pos == 0,
            "lift_scope: scope must be in its parent's body");
    require_sole_child(outer, "lift_scope");
    Path outer_path = par.loc().path;

    if (outer->kind() == StmtKind::For && inner->kind() == StmtKind::For)
        return reorder_loops(p, par);

    if (outer->kind() == StmtKind::For && inner->kind() == StmtKind::If) {
        // for i: if e: s [else: s2]  ->  if e: for i: s [else: for i: s2]
        require(!expr_uses(inner->cond(), outer->iter()),
                "lift_scope: condition depends on the loop iterator");
        // The original re-evaluates the condition every iteration; the
        // lifted form evaluates it once. If an iteration can change the
        // condition's value, the programs differ.
        {
            std::vector<std::string> cond_reads;
            expr_collect_reads(inner->cond(), &cond_reads);
            for (const auto& nm : cond_reads) {
                require(!stmt_writes(inner, nm),
                        "lift_scope: loop body writes '" + nm +
                            "' read by the condition");
            }
        }
        StmtPtr then_loop = outer->with_body(inner->body());
        std::vector<StmtPtr> new_orelse;
        if (!inner->orelse().empty())
            new_orelse = {outer->with_body(inner->orelse())};
        StmtPtr new_if =
            Stmt::make_if(inner->cond(), {then_loop}, new_orelse);
        // Old then-body: outer_path.body[0].body[j] -> new:
        // outer_path.body[0].body[j] (if->for). Same spine! Orelse:
        // outer_path.body[0].orelse[j] -> outer_path.orelse[0].body[j].
        Path old_or = sc.loc().path;
        ListAddr old_orelse{old_or, PathLabel::Orelse};
        Path new_or_loop = outer_path;
        new_or_loop.push_back({PathLabel::Orelse, 0});
        ListAddr new_orelse_body{new_or_loop, PathLabel::Body};
        ForwardFn fwd = fwd_relocate_list(old_orelse, new_orelse_body,
                                          fwd_identity());
        return p->with_body(rebuild_node(p, outer_path, NodeRef(new_if)),
                            fwd, "lift_scope");
    }

    if (outer->kind() == StmtKind::If && inner->kind() == StmtKind::For) {
        // if e: for i: s  ->  for i: if e: s   (outer must have no else)
        require(outer->orelse().empty(),
                "lift_scope: outer if cannot have an else clause");
        // The lifted form re-evaluates the condition every iteration;
        // if the body can change its value, later iterations would be
        // guarded differently than the original single evaluation.
        {
            std::vector<std::string> cond_reads;
            expr_collect_reads(outer->cond(), &cond_reads);
            for (const auto& nm : cond_reads) {
                require(!stmt_writes(inner, nm),
                        "lift_scope: loop body writes '" + nm +
                            "' read by the condition");
            }
        }
        StmtPtr new_if = Stmt::make_if(outer->cond(), inner->body());
        StmtPtr new_for = inner->with_body({new_if});
        // Old body: outer_path.body[0].body[j] ->
        // outer_path.body[0].body[j]. Same spine.
        return p->with_body(rebuild_node(p, outer_path, NodeRef(new_for)),
                            fwd_identity(), "lift_scope");
    }

    // If-in-If (Appendix A.3, first row).
    StmtPtr s3_src = nullptr;  // outer else
    std::vector<StmtPtr> s3 = outer->orelse();
    (void)s3_src;
    std::vector<StmtPtr> s = inner->body();
    std::vector<StmtPtr> s2 = inner->orelse();
    // new: if e2: (if e: s else: s3) else: (if e: s2 else: s3)
    StmtPtr then_if = Stmt::make_if(outer->cond(), s, s3);
    std::vector<StmtPtr> new_orelse;
    if (!s2.empty() || !s3.empty())
        new_orelse = {Stmt::make_if(outer->cond(), s2, s3)};
    StmtPtr new_if = Stmt::make_if(inner->cond(), {then_if}, new_orelse);
    // s: outer.body[0].body[j] -> outer.body[0].body[j] (same spine).
    // s2: outer.body[0].orelse[j] -> outer.orelse[0].body[j].
    // s3: outer.orelse[j] -> outer.body[0].orelse[j] (first copy).
    Path inner_path = sc.loc().path;
    ListAddr old_s2{inner_path, PathLabel::Orelse};
    Path new_or_if = outer_path;
    new_or_if.push_back({PathLabel::Orelse, 0});
    ListAddr new_s2{new_or_if, PathLabel::Body};
    ListAddr old_s3{outer_path, PathLabel::Orelse};
    Path new_then_if = outer_path;
    new_then_if.push_back({PathLabel::Body, 0});
    ListAddr new_s3{new_then_if, PathLabel::Orelse};
    ForwardFn fwd = fwd_relocate_list(
        old_s2, new_s2, fwd_relocate_list(old_s3, new_s3, fwd_identity()));
    return p->with_body(rebuild_node(p, outer_path, NodeRef(new_if)), fwd,
                        "lift_scope");
}

ProcPtr
lift_scope(const ProcPtr& p, const std::string& loop_name)
{
    return lift_scope(p, p->find_loop(loop_name));
}

}  // namespace exo2
