#include "src/primitives/common.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <functional>
#include <set>
#include <unordered_map>

#include "src/cursor/accel.h"
#include "src/ir/builder.h"
#include "src/ir/errors.h"

namespace exo2 {

namespace {

std::atomic<int64_t> g_rewrites{0};

}  // namespace

void
ScheduleStats::count_rewrite(const std::string& primitive)
{
    (void)primitive;
    g_rewrites.fetch_add(1);
}

int64_t
ScheduleStats::rewrites()
{
    return g_rewrites.load();
}

void
ScheduleStats::reset()
{
    g_rewrites.store(0);
}

void
require(bool cond, const std::string& msg)
{
    if (!cond)
        throw SchedulingError(msg);
}

namespace {

void
collect_names(const StmtPtr& s, std::set<std::string>* out)
{
    switch (s->kind()) {
      case StmtKind::Alloc:
      case StmtKind::WindowDecl:
        out->insert(s->name());
        break;
      case StmtKind::For:
        out->insert(s->iter());
        break;
      default:
        break;
    }
    for (const auto& c : s->body())
        collect_names(c, out);
    for (const auto& c : s->orelse())
        collect_names(c, out);
}

// Memoized per-subtree binder-name summaries (sorted unique vectors
// plus a 64-bit bloom), held in each statement's inline `names_memo()`
// slot like the pattern index (DESIGN.md §3): spine-sharing edits reuse
// all untouched subtrees' summaries, so `ensure_unused` / `fresh_in`
// probe instead of re-collecting every name in the proc on every
// primitive — the dominant cost of long wide schedules. Gated on the
// pattern-index switch so the no-acceleration ablation measures the
// original walk.

struct NameSummary
{
    uint64_t bloom = 0;  ///< one bit per name hash; clear bit = absent
    std::vector<std::string> names;  ///< sorted unique binder names
};

uint64_t
name_bloom_bit(const std::string& n)
{
    return uint64_t(1) << (std::hash<std::string>{}(n) & 63);
}

const NameSummary*
binder_names(const StmtPtr& s)
{
    return probe_subtree_memo<NameSummary>(s->names_memo(), [&] {
        auto sum = std::make_shared<NameSummary>();
        std::vector<std::string> names;
        switch (s->kind()) {
          case StmtKind::Alloc:
          case StmtKind::WindowDecl:
            names.push_back(s->name());
            break;
          case StmtKind::For:
            names.push_back(s->iter());
            break;
          default:
            break;
        }
        auto merge = [&](const std::vector<StmtPtr>& block) {
            for (const StmtPtr& ch : block) {
                const NameSummary* cs = binder_names(ch);
                sum->bloom |= cs->bloom;
                names.insert(names.end(), cs->names.begin(),
                             cs->names.end());
            }
        };
        merge(s->body());
        merge(s->orelse());
        std::sort(names.begin(), names.end());
        names.erase(std::unique(names.begin(), names.end()), names.end());
        for (const auto& n : names)
            sum->bloom |= name_bloom_bit(n);
        sum->names = std::move(names);
        return std::shared_ptr<const NameSummary>(std::move(sum));
    });
}

bool
name_used(const ProcPtr& p, const std::string& name)
{
    for (const auto& a : p->args()) {
        if (a.name == name)
            return true;
    }
    if (pattern_index_enabled()) {
        uint64_t bit = name_bloom_bit(name);
        for (const auto& s : p->body_stmts()) {
            const NameSummary* v = binder_names(s);
            if ((v->bloom & bit) &&
                std::binary_search(v->names.begin(), v->names.end(), name))
                return true;
        }
        return false;
    }
    std::set<std::string> names;
    for (const auto& s : p->body_stmts())
        collect_names(s, &names);
    return names.count(name) != 0;
}

}  // namespace

std::vector<std::string>
used_names(const ProcPtr& p)
{
    std::set<std::string> names;
    for (const auto& a : p->args())
        names.insert(a.name);
    for (const auto& s : p->body_stmts())
        collect_names(s, &names);
    return std::vector<std::string>(names.begin(), names.end());
}

void
ensure_unused(const ProcPtr& p, const std::string& name)
{
    require(!name_used(p, name),
            "name '" + name + "' is already used in " + p->name());
}

std::string
fresh_in(const ProcPtr& p, const std::string& base)
{
    if (pattern_index_enabled()) {
        if (!name_used(p, base))
            return base;
        for (int i = 1;; i++) {
            std::string cand = base + "_" + std::to_string(i);
            if (!name_used(p, cand))
                return cand;
        }
    }
    // Index off (ablation): collect once, then probe the set, instead
    // of one full tree walk per candidate.
    auto names = used_names(p);
    auto taken = [&](const std::string& n) {
        return std::find(names.begin(), names.end(), n) != names.end();
    };
    if (!taken(base))
        return base;
    for (int i = 1;; i++) {
        std::string cand = base + "_" + std::to_string(i);
        if (!taken(cand))
            return cand;
    }
}

Cursor
expect_stmt_cursor(const ProcPtr& p, const Cursor& c)
{
    Cursor f = p->forward(c);
    require(f.is_valid(), "cursor was invalidated");
    require(f.kind() == CursorKind::Node, "expected a statement cursor");
    (void)f.stmt();
    return f;
}

Cursor
expect_loop_cursor(const ProcPtr& p, const Cursor& c)
{
    Cursor f = expect_stmt_cursor(p, c);
    require(f.stmt()->kind() == StmtKind::For, "expected a For loop cursor");
    return f;
}

Cursor
expect_gap_cursor(const ProcPtr& p, const Cursor& c)
{
    Cursor f = p->forward(c);
    require(f.is_valid(), "cursor was invalidated");
    require(f.kind() == CursorKind::Gap, "expected a gap cursor");
    return f;
}

bool
block_binds_name(const std::vector<StmtPtr>& b, const std::string& name)
{
    for (const auto& s : b) {
        if (s->kind() == StmtKind::For && s->iter() == name)
            return true;
        if ((s->kind() == StmtKind::Alloc ||
             s->kind() == StmtKind::WindowDecl) &&
            s->name() == name) {
            return true;
        }
        if (block_binds_name(s->body(), name) ||
            block_binds_name(s->orelse(), name)) {
            return true;
        }
    }
    return false;
}

bool
stmt_uses_unshadowed(const StmtPtr& s, const std::string& name)
{
    auto expr_use = [&](const ExprPtr& e) {
        return e && expr_uses(e, name);
    };
    auto block_uses = [&](const std::vector<StmtPtr>& b) {
        for (const auto& c : b) {
            if (stmt_uses_unshadowed(c, name))
                return true;
            if ((c->kind() == StmtKind::Alloc ||
                 c->kind() == StmtKind::WindowDecl) &&
                c->name() == name) {
                return false;  // re-declared: rest of the list shadowed
            }
        }
        return false;
    };
    switch (s->kind()) {
      case StmtKind::Assign:
      case StmtKind::Reduce: {
        if (s->name() == name)
            return true;
        for (const auto& i : s->idx()) {
            if (expr_use(i))
                return true;
        }
        return expr_use(s->rhs());
      }
      case StmtKind::Alloc: {
        for (const auto& d : s->dims()) {
            if (expr_use(d))
                return true;
        }
        return false;  // the declaration itself is not a use
      }
      case StmtKind::WindowDecl:
        // Windowing `name` as the base is a use; the declared window
        // name itself is a binder, not a use.
        return expr_use(s->rhs());
      case StmtKind::For:
        if (expr_use(s->lo()) || expr_use(s->hi()))
            return true;
        if (s->iter() == name)
            return false;  // iterator shadows the body
        return block_uses(s->body());
      case StmtKind::If:
        return expr_use(s->cond()) || block_uses(s->body()) ||
               block_uses(s->orelse());
      case StmtKind::Pass:
        return false;
      case StmtKind::Call: {
        for (const auto& a : s->args()) {
            if (expr_use(a))
                return true;
        }
        return false;
      }
      case StmtKind::WriteConfig:
        return expr_use(s->rhs());
    }
    return false;
}

void
require_binders_do_not_escape(const ProcPtr& p, const ListAddr& addr,
                              int lo, int hi, const std::string& who)
{
    const auto& list = stmt_list_at(p, addr);
    for (int i = lo; i < hi && i < static_cast<int>(list.size()); i++) {
        const StmtPtr& s = list[i];
        if (s->kind() != StmtKind::Alloc &&
            s->kind() != StmtKind::WindowDecl) {
            continue;
        }
        for (size_t j = static_cast<size_t>(hi); j < list.size(); j++) {
            require(!stmt_uses(list[j], s->name()),
                    who + ": '" + s->name() +
                        "' is declared inside the rewritten range but "
                        "used after it (the new scope would capture it)");
        }
    }
}

ForwardFn
fwd_relocate_list(ListAddr old_list, ListAddr new_list, ForwardFn rest)
{
    return [old_list = std::move(old_list), new_list = std::move(new_list),
            rest = std::move(rest)](const CursorLoc& l)
               -> std::optional<CursorLoc> {
        size_t d = old_list.parent.size();
        bool through = l.path.size() > d &&
                       l.path[d].label == old_list.label;
        if (through) {
            for (size_t i = 0; i < d && through; i++) {
                if (!(l.path[i] == old_list.parent[i]))
                    through = false;
            }
        }
        if (!through)
            return rest(l);
        CursorLoc out = l;
        Path np = new_list.parent;
        np.push_back({new_list.label, l.path[d].index});
        np.insert(np.end(), l.path.begin() + static_cast<long>(d) + 1,
                  l.path.end());
        out.path = std::move(np);
        return out;
    };
}

namespace {

ExprPtr
rewrite_access_expr(const ExprPtr& e, const std::string& name,
                    const PointRewriteFn& point_fn,
                    const WindowRewriteFn& window_fn,
                    bool whole_buffer_ok = false)
{
    if (!e)
        return e;
    if (e->kind() == ExprKind::Read && e->name() == name &&
        !(whole_buffer_ok && e->idx().empty())) {
        // Empty-idx reads outside call arguments are scalar accesses of
        // a 0-dim buffer (e.g. pre-expansion staging temps).
        std::vector<ExprPtr> idx;
        idx.reserve(e->idx().size());
        for (const auto& i : e->idx()) {
            idx.push_back(
                rewrite_access_expr(i, name, point_fn, window_fn));
        }
        if (point_fn)
            idx = point_fn(idx);
        return Expr::make_read(e->name(), std::move(idx), e->type());
    }
    if (e->kind() == ExprKind::Window && e->name() == name) {
        std::vector<WindowDim> dims;
        for (const auto& d : e->window_dims()) {
            WindowDim nd;
            nd.lo = rewrite_access_expr(d.lo, name, point_fn, window_fn);
            if (d.hi)
                nd.hi = rewrite_access_expr(d.hi, name, point_fn, window_fn);
            dims.push_back(nd);
        }
        if (window_fn)
            dims = window_fn(dims);
        return Expr::make_window(e->name(), std::move(dims), e->type());
    }
    auto kids = e->children();
    bool changed = false;
    for (auto& k : kids) {
        auto nk = rewrite_access_expr(k, name, point_fn, window_fn);
        if (nk != k) {
            changed = true;
            k = nk;
        }
    }
    if (!changed)
        return e;
    return e->with_children(std::move(kids));
}

/** Whether `s` re-binds `name` for the rest of its statement list. */
bool
shadows_name(const StmtPtr& s, const std::string& name)
{
    return (s->kind() == StmtKind::Alloc ||
            s->kind() == StmtKind::WindowDecl) &&
           s->name() == name;
}

}  // namespace

StmtPtr
rewrite_buffer_access(const StmtPtr& s, const std::string& name,
                      const PointRewriteFn& point_fn,
                      const WindowRewriteFn& window_fn)
{
    StmtPtr out = s;
    auto rw = [&](const ExprPtr& e) {
        return rewrite_access_expr(e, name, point_fn, window_fn);
    };
    switch (s->kind()) {
      case StmtKind::Assign:
      case StmtKind::Reduce: {
        std::vector<ExprPtr> idx;
        for (const auto& i : s->idx())
            idx.push_back(rw(i));
        if (s->name() == name && point_fn)
            idx = point_fn(idx);
        out = out->with_idx(std::move(idx))->with_rhs(rw(s->rhs()));
        return out;
      }
      case StmtKind::Alloc:
        return out;
      case StmtKind::For:
        // An iterator of the same name shadows the buffer inside the
        // body (bounds evaluate outside the iterator's scope).
        if (s->iter() == name)
            return out->with_bounds(rw(s->lo()), rw(s->hi()));
        return out->with_bounds(rw(s->lo()), rw(s->hi()))
            ->with_body(rewrite_buffer_access_block(s->body(), name,
                                                    point_fn, window_fn));
      case StmtKind::If:
        return out->with_cond(rw(s->cond()))
            ->with_body(rewrite_buffer_access_block(s->body(), name,
                                                    point_fn, window_fn))
            ->with_orelse(rewrite_buffer_access_block(s->orelse(), name,
                                                      point_fn, window_fn));
      case StmtKind::Pass:
        return out;
      case StmtKind::Call: {
        std::vector<ExprPtr> args;
        for (const auto& a : s->args()) {
            // Whole-buffer pass stays untouched; windows are rewritten.
            args.push_back(rewrite_access_expr(a, name, point_fn,
                                               window_fn,
                                               /*whole_buffer_ok=*/true));
        }
        return out->with_args(std::move(args));
      }
      case StmtKind::WriteConfig:
      case StmtKind::WindowDecl:
        return out->with_rhs(rw(s->rhs()));
    }
    throw InternalError("unknown stmt kind");
}

std::vector<StmtPtr>
rewrite_buffer_access_block(const std::vector<StmtPtr>& b,
                            const std::string& name,
                            const PointRewriteFn& point_fn,
                            const WindowRewriteFn& window_fn)
{
    std::vector<StmtPtr> out;
    out.reserve(b.size());
    bool shadowed = false;
    for (const auto& s : b) {
        if (shadowed) {
            // A re-declaration of `name` earlier in this list: the rest
            // of the block refers to the new binder, not our buffer.
            out.push_back(s);
            continue;
        }
        out.push_back(rewrite_buffer_access(s, name, point_fn, window_fn));
        if (shadows_name(s, name))
            shadowed = true;
    }
    return out;
}

namespace {

ExprPtr
rename_buffer_expr(const ExprPtr& e, const std::string& old_name,
                   const std::string& new_name)
{
    if (!e)
        return e;
    if ((e->kind() == ExprKind::Read || e->kind() == ExprKind::Window ||
         e->kind() == ExprKind::Stride) &&
        e->name() == old_name) {
        if (e->kind() == ExprKind::Read) {
            std::vector<ExprPtr> idx;
            for (const auto& i : e->idx())
                idx.push_back(rename_buffer_expr(i, old_name, new_name));
            return Expr::make_read(new_name, std::move(idx), e->type());
        }
        if (e->kind() == ExprKind::Window) {
            std::vector<WindowDim> dims;
            for (const auto& d : e->window_dims()) {
                WindowDim nd;
                nd.lo = rename_buffer_expr(d.lo, old_name, new_name);
                if (d.hi)
                    nd.hi = rename_buffer_expr(d.hi, old_name, new_name);
                dims.push_back(nd);
            }
            return Expr::make_window(new_name, std::move(dims), e->type());
        }
        return Expr::make_stride(new_name, e->stride_dim());
    }
    auto kids = e->children();
    bool changed = false;
    for (auto& k : kids) {
        auto nk = rename_buffer_expr(k, old_name, new_name);
        if (nk != k) {
            changed = true;
            k = nk;
        }
    }
    if (!changed)
        return e;
    return e->with_children(std::move(kids));
}

}  // namespace

StmtPtr
rename_buffer(const StmtPtr& s, const std::string& old_name,
              const std::string& new_name)
{
    auto rw = [&](const ExprPtr& e) {
        return rename_buffer_expr(e, old_name, new_name);
    };
    StmtPtr out = s;
    switch (s->kind()) {
      case StmtKind::Assign:
      case StmtKind::Reduce: {
        std::vector<ExprPtr> idx;
        for (const auto& i : s->idx())
            idx.push_back(rw(i));
        out = out->with_idx(std::move(idx))->with_rhs(rw(s->rhs()));
        if (s->name() == old_name)
            out = out->with_name(new_name);
        return out;
      }
      case StmtKind::Alloc: {
        std::vector<ExprPtr> dims;
        for (const auto& d : s->dims())
            dims.push_back(rw(d));
        out = out->with_dims(std::move(dims));
        if (s->name() == old_name)
            out = out->with_name(new_name);
        return out;
      }
      case StmtKind::For: {
        if (s->iter() == old_name)
            return out->with_bounds(rw(s->lo()), rw(s->hi()));
        auto rename_block = [&](const std::vector<StmtPtr>& b) {
            std::vector<StmtPtr> nb;
            bool shadowed = false;
            for (const auto& c : b) {
                nb.push_back(shadowed
                                 ? c
                                 : rename_buffer(c, old_name, new_name));
                if (shadows_name(c, old_name))
                    shadowed = true;
            }
            return nb;
        };
        return out->with_bounds(rw(s->lo()), rw(s->hi()))
            ->with_body(rename_block(s->body()));
      }
      case StmtKind::If: {
        auto rename_block = [&](const std::vector<StmtPtr>& b) {
            std::vector<StmtPtr> nb;
            bool shadowed = false;
            for (const auto& c : b) {
                nb.push_back(shadowed
                                 ? c
                                 : rename_buffer(c, old_name, new_name));
                if (shadows_name(c, old_name))
                    shadowed = true;
            }
            return nb;
        };
        return out->with_cond(rw(s->cond()))
            ->with_body(rename_block(s->body()))
            ->with_orelse(rename_block(s->orelse()));
      }
      case StmtKind::Pass:
        return out;
      case StmtKind::Call: {
        std::vector<ExprPtr> args;
        for (const auto& a : s->args())
            args.push_back(rw(a));
        return out->with_args(std::move(args));
      }
      case StmtKind::WriteConfig:
        return out->with_rhs(rw(s->rhs()));
      case StmtKind::WindowDecl: {
        out = out->with_rhs(rw(s->rhs()));
        if (s->name() == old_name)
            out = out->with_name(new_name);
        return out;
      }
    }
    throw InternalError("unknown stmt kind");
}

namespace {

void
visit_expr_accesses(
    const Context& ctx, const ExprPtr& e, const std::string& name,
    const std::function<void(const Context&, const std::vector<ExprPtr>&)>&
        visit)
{
    if (!e)
        return;
    if (e->kind() == ExprKind::Read && e->name() == name) {
        visit(ctx, e->idx());
    }
    if (e->kind() == ExprKind::Window && e->name() == name) {
        // Report lo and hi-1 for each interval dim.
        std::vector<ExprPtr> los;
        std::vector<ExprPtr> his;
        for (const auto& d : e->window_dims()) {
            los.push_back(d.lo);
            his.push_back(d.hi ? d.hi - idx_const(1) : d.lo);
        }
        visit(ctx, los);
        visit(ctx, his);
    }
    for (const auto& k : e->children())
        visit_expr_accesses(ctx, k, name, visit);
}

void
visit_stmt_accesses(
    Context ctx, const StmtPtr& s, const std::string& name,
    const std::function<void(const Context&, const std::vector<ExprPtr>&)>&
        visit)
{
    switch (s->kind()) {
      case StmtKind::Assign:
      case StmtKind::Reduce:
        if (s->name() == name)
            visit(ctx, s->idx());
        for (const auto& i : s->idx())
            visit_expr_accesses(ctx, i, name, visit);
        visit_expr_accesses(ctx, s->rhs(), name, visit);
        return;
      case StmtKind::Alloc:
        return;
      case StmtKind::For: {
        if (s->iter() == name)
            return;  // iterator shadows the buffer in the body
        Context inner = ctx;
        inner.enter_loop(s->iter(), s->lo(), s->hi());
        for (const auto& c : s->body()) {
            visit_stmt_accesses(inner, c, name, visit);
            if (shadows_name(c, name))
                break;
        }
        return;
      }
      case StmtKind::If: {
        visit_expr_accesses(ctx, s->cond(), name, visit);
        Context tctx = ctx;
        tctx.assume(s->cond());
        for (const auto& c : s->body()) {
            visit_stmt_accesses(tctx, c, name, visit);
            if (shadows_name(c, name))
                break;
        }
        Context ectx = ctx;
        ectx.system().add_pred_negated(s->cond());
        for (const auto& c : s->orelse()) {
            visit_stmt_accesses(ectx, c, name, visit);
            if (shadows_name(c, name))
                break;
        }
        return;
      }
      case StmtKind::Pass:
        return;
      case StmtKind::Call:
        for (const auto& a : s->args())
            visit_expr_accesses(ctx, a, name, visit);
        return;
      case StmtKind::WriteConfig:
      case StmtKind::WindowDecl:
        visit_expr_accesses(ctx, s->rhs(), name, visit);
        return;
    }
}

}  // namespace

void
visit_stmt_buffer_accesses(
    const Context& base, const StmtPtr& s, const std::string& name,
    const std::function<void(const Context&, const std::vector<ExprPtr>&)>&
        visit)
{
    visit_stmt_accesses(base, s, name, visit);
}

void
visit_alloc_scope_accesses(
    const ProcPtr& p, const Path& alloc_path, const std::string& name,
    const std::function<void(const Context&, const std::vector<ExprPtr>&)>&
        visit)
{
    int pos = 0;
    ListAddr addr = list_addr_of(alloc_path, &pos);
    const auto& list = stmt_list_at(p, addr);
    Context ctx = Context::at(p, alloc_path);
    for (size_t i = static_cast<size_t>(pos) + 1; i < list.size(); i++) {
        visit_stmt_accesses(ctx, list[i], name, visit);
        if (shadows_name(list[i], name))
            break;  // re-declared: the rest refers to the new binder
    }
}

void
visit_buffer_accesses(
    const ProcPtr& p, const Path& root, const std::string& name,
    const std::function<void(const Context&, const std::vector<ExprPtr>&)>&
        visit)
{
    if (root.empty()) {
        Context ctx = Context::at(p, {});
        for (const auto& s : p->body_stmts())
            visit_stmt_accesses(ctx, s, name, visit);
        return;
    }
    Context ctx = Context::at(p, root);
    visit_stmt_accesses(ctx, stmt_at(p, root), name, visit);
}

}  // namespace exo2
