#ifndef EXO2_PRIMITIVES_EXTENSIONS_H_
#define EXO2_PRIMITIVES_EXTENSIONS_H_

/**
 * @file
 * Three primitives beyond the Appendix A catalogue that the Exo 2
 * implementation exposes for its vectorizer (Section 6.1.1):
 *
 *  - parallelize_reduction: re-associate a loop-invariant `+=` into
 *    per-lane partial sums (the paper's `parallelize_reductions` step;
 *    sound for the commutative, associative Reduce of the object
 *    language, matching the Reduce/Reduce commuting rule).
 *  - split_guard: distribute an if over its body statements.
 *  - bind_expr_block: CSE form of bind_expr across a statement block.
 */

#include <string>

#include "src/primitives/common.h"

namespace exo2 {

/**
 * Given `loop` = `for i in seq(0, N)` whose body reduces into a
 * loop-invariant location `target` (a buffer access or scalar), rewrite
 *
 *     for i: ...; t += e(i); ...
 * into
 *     acc: T[lanes] @ mem
 *     for l: acc[l] = 0
 *     for i: ...; acc[i % lanes] += e(i); ...
 *     for l: t += acc[l]
 *
 * placing the accumulator code immediately around `loop`. When `loop`
 * is an inner loop `for ii` nested in `for io` (post divide_loop), pass
 * the outer loop as `around`: the zero/reduce loops go around it and
 * the lane index is the inner iterator.
 */
ProcPtr parallelize_reduction(const ProcPtr& p, const Cursor& around,
                              const Cursor& lane_loop,
                              const Cursor& reduce_stmt,
                              const std::string& acc_name, int lanes,
                              const MemoryPtr& mem);

/** Distribute `if c: s1 .. sn` into `if c: s1; ...; if c: sn`. */
ProcPtr split_guard(const ProcPtr& p, const Cursor& if_stmt);

/**
 * Bind `expr` (an expression occurring in the block) to a fresh scalar
 * before the block and replace every structurally equal occurrence in
 * the block. Safety: no statement of the block writes a buffer that
 * `expr` reads.
 */
ProcPtr bind_expr_block(const ProcPtr& p, const Cursor& block,
                        const ExprPtr& expr, const std::string& new_name);

/**
 * Widen a loop's iteration space, guarding the original body:
 * `for i in (lo, hi): s` becomes
 * `for i in (new_lo, new_hi): if lo <= i < hi: s`.
 * Safety: `new_lo <= lo` and `hi <= new_hi` must be provable. Bounds
 * may be null to keep the existing one. (This is ExoBLAS's round_loop
 * building block.)
 */
ProcPtr extend_loop_bound(const ProcPtr& p, const Cursor& loop,
                          const ExprPtr& new_lo, const ExprPtr& new_hi);

/**
 * Specialize a procedure by fixing a size argument to a constant
 * (Exo's `partial_eval`). The argument is removed from the signature.
 */
ProcPtr partial_eval(const ProcPtr& p, const std::string& size_arg,
                     int64_t value);

}  // namespace exo2

#endif  // EXO2_PRIMITIVES_EXTENSIONS_H_
