#include "src/primitives/extensions.h"

#include <algorithm>

#include "src/analysis/effects.h"
#include "src/ir/builder.h"
#include "src/ir/errors.h"
#include "src/ir/printer.h"

namespace exo2 {

ProcPtr
parallelize_reduction(const ProcPtr& p, const Cursor& around,
                      const Cursor& lane_loop, const Cursor& reduce_stmt,
                      const std::string& acc_name, int lanes,
                      const MemoryPtr& mem)
{
    ScheduleStats::count_rewrite("parallelize_reduction");
    ensure_unused(p, acc_name);
    Cursor ac = expect_stmt_cursor(p, around);
    Cursor lc = expect_loop_cursor(p, lane_loop);
    Cursor rc = expect_stmt_cursor(p, reduce_stmt);
    StmtPtr red = rc.stmt();
    require(red->kind() == StmtKind::Reduce,
            "parallelize_reduction: expected a reduction statement");
    StmtPtr lane = lc.stmt();
    Affine lo = to_affine(lane->lo());
    Affine hi = to_affine(lane->hi());
    require(lo.is_const() && lo.constant == 0 && hi.is_const() &&
                hi.constant == lanes,
            "parallelize_reduction: lane loop must be seq(0, lanes)");
    // The reduction statement must be inside the lane loop, which must
    // be inside `around`.
    auto has_prefix = [](const Path& path, const Path& prefix) {
        if (path.size() < prefix.size())
            return false;
        for (size_t i = 0; i < prefix.size(); i++) {
            if (!(path[i] == prefix[i]))
                return false;
        }
        return true;
    };
    require(has_prefix(lc.loc().path, ac.loc().path),
            "parallelize_reduction: lane loop not inside `around`");
    require(has_prefix(rc.loc().path, lc.loc().path),
            "parallelize_reduction: reduction not inside the lane loop");

    // Target must be loop-invariant across the `around` subtree: its
    // indices may not use any iterator bound within it.
    StmtPtr around_stmt = ac.stmt();
    std::vector<std::string> inner_iters;
    std::function<void(const StmtPtr&)> collect = [&](const StmtPtr& s) {
        if (s->kind() == StmtKind::For)
            inner_iters.push_back(s->iter());
        for (const auto& c : s->body())
            collect(c);
        for (const auto& c : s->orelse())
            collect(c);
    };
    collect(around_stmt);
    for (const auto& it : inner_iters) {
        for (const auto& e : red->idx()) {
            require(!expr_uses(e, it),
                    "parallelize_reduction: target is not loop-invariant");
        }
    }
    // Other accesses to the target buffer inside the subtree must be
    // provably disjoint from the reduction target location (e.g. the
    // trsv pattern `x[i] += -(A[i,j] * x[j])` with j < i).
    {
        Context ctx = Context::at(p, ac.loc().path);
        int own = 0;
        for (const auto& acc : collect_accesses(around_stmt)) {
            if (acc.buf != red->name())
                continue;
            if (acc.kind == AccessKind::Reduce && !acc.whole_buffer &&
                acc.idx.size() == red->idx().size()) {
                bool same = true;
                for (size_t d = 0; d < acc.idx.size(); d++) {
                    if (!affine_equal(acc.idx[d], red->idx()[d]))
                        same = false;
                }
                if (same) {
                    own++;
                    continue;
                }
            }
            // Disjointness test against the invariant target location.
            Access target;
            target.buf = red->name();
            target.kind = AccessKind::Write;
            target.idx = red->idx();
            require(!accesses_conflict(ctx, target, acc),
                    "parallelize_reduction: target '" + red->name() +
                        "' is accessed elsewhere in the loop nest");
        }
        require(own == 1,
                "parallelize_reduction: expected exactly one reduction "
                "into the target");
    }

    // Build the accumulator pieces.
    ScalarType t = red->type();
    StmtPtr alloc = Stmt::make_alloc(acc_name, t, {idx_const(lanes)}, mem);
    std::string zi = fresh_in(p, "l0");
    StmtPtr zero_loop = Stmt::make_for(
        zi, idx_const(0), idx_const(lanes),
        {Stmt::make_assign(acc_name, {var(zi)},
                           Expr::make_const(0.0, t), t)});
    std::string ri = fresh_in(p, "l1");
    StmtPtr red_loop = Stmt::make_for(
        ri, idx_const(0), idx_const(lanes),
        {Stmt::make_reduce(red->name(), red->idx(),
                           Expr::make_read(acc_name, {var(ri)}, t), t)});

    // One batched version: rewrite the reduction in place (same shape),
    // insert alloc + zero loop before `around` and the reduce loop
    // after it — a single provenance hop instead of three.
    StmtPtr new_red = Stmt::make_reduce(
        acc_name, {var(lane->iter())}, red->rhs(), t);
    EditBatch batch(p);
    batch.replace_stmt_same_shape(rc.loc().path, new_red);
    int pos = 0;
    ListAddr addr = list_addr_of(ac.loc().path, &pos);
    batch.insert(addr, pos, {alloc, zero_loop});
    batch.insert(addr, pos + 3, {red_loop});
    return batch.commit("parallelize_reduction");
}

ProcPtr
split_guard(const ProcPtr& p, const Cursor& if_stmt)
{
    ScheduleStats::count_rewrite("split_guard");
    Cursor c = expect_stmt_cursor(p, if_stmt);
    StmtPtr s = c.stmt();
    require(s->kind() == StmtKind::If, "split_guard: expected an if");
    require(s->orelse().empty(), "split_guard: else clause unsupported");
    if (s->body().size() <= 1)
        return p;
    std::vector<std::string> cond_reads;
    expr_collect_reads(s->cond(), &cond_reads);
    for (const auto& st : s->body()) {
        for (const auto& nm : cond_reads) {
            require(!stmt_writes(st, nm),
                    "split_guard: body writes '" + nm +
                        "' read by the condition");
        }
    }
    std::vector<StmtPtr> repl;
    for (const auto& st : s->body())
        repl.push_back(Stmt::make_if(s->cond(), {st}));
    int n = static_cast<int>(repl.size());
    int pos = 0;
    ListAddr addr = list_addr_of(c.loc().path, &pos);
    // Forwarding: body[j] -> (pos+j).body[0]; the if itself -> first.
    ListAddr old_body{c.loc().path, PathLabel::Body};
    ForwardFn shift = fwd_replace_range(addr, pos, pos + 1, n);
    ForwardFn fwd = [old_body, pos, shift](const CursorLoc& l)
        -> std::optional<CursorLoc> {
        size_t d = old_body.parent.size();
        bool through =
            l.path.size() > d && l.path[d].label == old_body.label;
        for (size_t i = 0; i < d && through; i++) {
            if (!(l.path[i] == old_body.parent[i]))
                through = false;
        }
        if (through) {
            CursorLoc out = l;
            int j = l.path[d].index;
            out.path[d - 1].index = pos + j;
            out.path[d].index = 0;
            if (l.path.size() == d + 1 && l.kind != CursorKind::Node)
                return std::nullopt;  // gaps/blocks across the split
            return out;
        }
        return shift(l);
    };
    const auto& list = stmt_list_at(p, addr);
    std::vector<StmtPtr> nl(list.begin(), list.begin() + pos);
    nl.insert(nl.end(), repl.begin(), repl.end());
    nl.insert(nl.end(), list.begin() + pos + 1, list.end());
    return p->with_body(rebuild_list(p, addr, std::move(nl)), fwd,
                        "split_guard");
}

ProcPtr
extend_loop_bound(const ProcPtr& p, const Cursor& loop,
                  const ExprPtr& new_lo, const ExprPtr& new_hi)
{
    ScheduleStats::count_rewrite("extend_loop_bound");
    Cursor lc = expect_loop_cursor(p, loop);
    StmtPtr s = lc.stmt();
    Context ctx = Context::at(p, lc.loc().path);
    ExprPtr lo = new_lo ? new_lo : s->lo();
    ExprPtr hi = new_hi ? new_hi : s->hi();
    require(ctx.prove_le(lo, s->lo()),
            "extend_loop_bound: new lower bound not provably <= old");
    require(ctx.prove_le(s->hi(), hi),
            "extend_loop_bound: new upper bound not provably >= old");
    ExprPtr iv = var(s->iter());
    ExprPtr cond;
    if (new_hi)
        cond = lt(iv, s->hi());
    if (new_lo) {
        ExprPtr c2 = ge(iv, s->lo());
        cond = cond ? land(c2, cond) : c2;
    }
    std::vector<StmtPtr> body = s->body();
    if (cond)
        body = {Stmt::make_if(cond, std::move(body))};
    StmtPtr widened =
        Stmt::make_for(s->iter(), lo, hi, std::move(body), s->loop_mode());
    // Forwarding: old body relocates one level deeper (under the if).
    Path guard_path = lc.loc().path;
    guard_path.push_back({PathLabel::Body, 0});
    ForwardFn fwd =
        cond ? fwd_relocate_list(ListAddr{lc.loc().path, PathLabel::Body},
                                 ListAddr{guard_path, PathLabel::Body},
                                 fwd_identity())
             : fwd_identity();
    return p->with_body(rebuild_node(p, lc.loc().path, NodeRef(widened)),
                        fwd, "extend_loop_bound");
}

ProcPtr
partial_eval(const ProcPtr& p, const std::string& size_arg, int64_t value)
{
    ScheduleStats::count_rewrite("partial_eval");
    const ProcArg* a = p->find_arg(size_arg);
    require(a != nullptr && a->is_size,
            "partial_eval: '" + size_arg + "' is not a size argument");
    ExprPtr c = idx_const(value);
    std::vector<ProcArg> args;
    for (const auto& arg : p->args()) {
        if (arg.name == size_arg)
            continue;
        ProcArg na = arg;
        for (auto& d : na.dims)
            d = expr_subst(d, size_arg, c);
        args.push_back(na);
    }
    std::vector<ExprPtr> preds;
    for (const auto& pr : p->preds())
        preds.push_back(expr_subst(pr, size_arg, c));
    std::vector<StmtPtr> body = block_subst(p->body_stmts(), size_arg, c);
    return p->with_signature(std::move(args), std::move(preds),
                             std::move(body), fwd_identity(),
                             "partial_eval");
}

ProcPtr
bind_expr_block(const ProcPtr& p, const Cursor& block, const ExprPtr& expr,
                const std::string& new_name)
{
    ScheduleStats::count_rewrite("bind_expr_block");
    ensure_unused(p, new_name);
    Cursor bc = p->forward(block);
    require(bc.is_valid(), "bind_expr_block: cursor invalidated");
    int lo = 0;
    int hi = 0;
    ListAddr addr{};
    if (bc.kind() == CursorKind::Node) {
        addr = list_addr_of(bc.loc().path, &lo);
        hi = lo + 1;
    } else {
        require(bc.kind() == CursorKind::Block,
                "bind_expr_block: expected stmt/block cursor");
        addr = list_addr_of(bc.loc().path, &lo);
        hi = bc.loc().hi;
    }
    const auto& list = stmt_list_at(p, addr);
    std::vector<StmtPtr> body(list.begin() + lo, list.begin() + hi);
    std::vector<std::string> reads;
    expr_collect_reads(expr, &reads);
    for (const auto& st : body) {
        for (const auto& nm : reads) {
            require(!stmt_writes(st, nm),
                    "bind_expr_block: block writes '" + nm +
                        "' read by the bound expression");
        }
    }
    // The expression must be evaluable at the block entry: all names it
    // reads must not be bound inside the block.
    for (const auto& nm : collect_allocs(body)) {
        require(std::find(reads.begin(), reads.end(), nm) == reads.end(),
                "bind_expr_block: expression reads block-local '" + nm +
                    "'");
    }
    // Evaluating the expression at the insertion point must be safe:
    // every buffer read must be provably in bounds there (the block's
    // statements may be guarded; hoisting a read above a guard is only
    // legal when the access cannot fault).
    {
        Path entry = bc.loc().path;  // first stmt of the block
        Context ctx = Context::at(p, entry);
        std::function<void(const ExprPtr&)> check =
            [&](const ExprPtr& e) {
                if (!e)
                    return;
                if (e->kind() == ExprKind::Read && !e->idx().empty()) {
                    std::vector<ExprPtr> dims;
                    if (const ProcArg* a = p->find_arg(e->name())) {
                        dims = a->dims;
                    } else {
                        try {
                            dims = p->find_alloc(e->name())
                                       .stmt()
                                       ->dims();
                        } catch (const SchedulingError&) {
                        }
                    }
                    require(dims.size() == e->idx().size(),
                            "bind_expr_block: cannot bound access to '" +
                                e->name() + "'");
                    for (size_t d = 0; d < dims.size(); d++) {
                        require(ctx.prove_ge0(e->idx()[d]) &&
                                    ctx.prove_lt(e->idx()[d], dims[d]),
                                "bind_expr_block: access to '" +
                                    e->name() +
                                    "' not provably in bounds at the "
                                    "insertion point");
                    }
                }
                for (const auto& k : e->children())
                    check(k);
            };
        check(expr);
    }

    ExprPtr replacement =
        Expr::make_read(new_name, {}, expr->type());
    std::function<ExprPtr(const ExprPtr&)> sub =
        [&](const ExprPtr& cur) -> ExprPtr {
        if (expr_equal(cur, expr))
            return replacement;
        auto kids = cur->children();
        bool changed = false;
        for (auto& k : kids) {
            auto nk = sub(k);
            if (nk != k) {
                changed = true;
                k = nk;
            }
        }
        return changed ? cur->with_children(std::move(kids)) : cur;
    };
    std::function<StmtPtr(const StmtPtr&)> sub_stmt =
        [&](const StmtPtr& st) -> StmtPtr {
        StmtPtr out = st;
        switch (st->kind()) {
          case StmtKind::Assign:
          case StmtKind::Reduce: {
            std::vector<ExprPtr> idx;
            for (const auto& i : st->idx())
                idx.push_back(sub(i));
            return out->with_idx(std::move(idx))
                ->with_rhs(sub(st->rhs()));
          }
          case StmtKind::For: {
            std::vector<StmtPtr> nb;
            for (const auto& cst : st->body())
                nb.push_back(sub_stmt(cst));
            return out->with_body(std::move(nb));
          }
          case StmtKind::If: {
            std::vector<StmtPtr> nb;
            for (const auto& cst : st->body())
                nb.push_back(sub_stmt(cst));
            std::vector<StmtPtr> ne;
            for (const auto& cst : st->orelse())
                ne.push_back(sub_stmt(cst));
            return out->with_body(std::move(nb))
                ->with_orelse(std::move(ne));
          }
          default:
            return out;
        }
    };
    std::vector<StmtPtr> repl;
    repl.push_back(Stmt::make_alloc(new_name, expr->type(), {},
                                    mem_dram()));
    repl.push_back(Stmt::make_assign(new_name, {}, expr, expr->type()));
    for (const auto& st : body)
        repl.push_back(sub_stmt(st));

    // Forwarding: block stmts shift by 2; structure preserved.
    ListAddr old_addr = addr;
    ForwardFn fwd = [old_addr, lo, hi](const CursorLoc& l)
        -> std::optional<CursorLoc> {
        size_t d = old_addr.parent.size();
        bool through =
            l.path.size() > d && l.path[d].label == old_addr.label;
        for (size_t i = 0; i < d && through; i++) {
            if (!(l.path[i] == old_addr.parent[i]))
                through = false;
        }
        if (!through)
            return l;
        CursorLoc out = l;
        int j = l.path[d].index;
        if (j >= lo) {
            out.path[d].index = j + 2;
            if (l.path.size() == d + 1 && l.kind == CursorKind::Block)
                out.hi = l.hi + 2;
        }
        (void)hi;
        return out;
    };
    std::vector<StmtPtr> nl(list.begin(), list.begin() + lo);
    nl.insert(nl.end(), repl.begin(), repl.end());
    nl.insert(nl.end(), list.begin() + hi, list.end());
    return p->with_body(rebuild_list(p, addr, std::move(nl)), fwd,
                        "bind_expr_block");
}

}  // namespace exo2
