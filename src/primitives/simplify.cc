#include "src/primitives/simplify.h"

#include "src/analysis/effects.h"

#include "src/ir/builder.h"
#include "src/ir/errors.h"
#include "src/ir/printer.h"

namespace exo2 {

namespace {

bool
is_index_like(const ExprPtr& e)
{
    return e->type() == ScalarType::Index;
}

/** Split an affine form into (divisible-by-c part scaled down, rest). */
void
split_by_divisor(const Affine& a, int64_t c, Affine* quotient, Affine* rest)
{
    quotient->constant = 0;
    rest->constant = 0;
    quotient->terms.clear();
    rest->terms.clear();
    for (const auto& [key, t] : a.terms) {
        if (t.coeff % c == 0) {
            quotient->terms[key] = LinTerm{t.atom, t.coeff / c};
        } else {
            rest->terms[key] = t;
        }
    }
    // Constant: put the divisible part in the quotient.
    int64_t qc = a.constant / c;
    int64_t rc = a.constant % c;
    if (rc < 0) {  // keep remainder in [0, c)
        rc += c;
        qc -= 1;
    }
    quotient->constant = qc;
    rest->constant = rc;
}

ExprPtr
fold_float_binop(const ExprPtr& e)
{
    const ExprPtr& l = e->lhs();
    const ExprPtr& r = e->rhs();
    if (l->kind() != ExprKind::Const || r->kind() != ExprKind::Const)
        return e;
    double a = l->const_value();
    double b = r->const_value();
    double v = 0;
    switch (e->op()) {
      case BinOpKind::Add: v = a + b; break;
      case BinOpKind::Sub: v = a - b; break;
      case BinOpKind::Mul: v = a * b; break;
      default: return e;
    }
    return Expr::make_const(v, e->type());
}

class Simplifier
{
  public:
    explicit Simplifier(const Context& ctx) : ctx_(ctx) {}

    ExprPtr expr(const ExprPtr& e)
    {
        if (!e)
            return e;
        switch (e->kind()) {
          case ExprKind::Const:
          case ExprKind::Stride:
          case ExprKind::ReadConfig:
            return e;
          case ExprKind::Read:
          case ExprKind::Extern:
          case ExprKind::Window:
          case ExprKind::USub: {
            auto kids = e->children();
            bool changed = false;
            for (auto& k : kids) {
                auto nk = expr(k);
                if (nk != k) {
                    changed = true;
                    k = nk;
                }
            }
            ExprPtr out = changed ? e->with_children(std::move(kids)) : e;
            if (out->kind() == ExprKind::USub &&
                out->lhs()->kind() == ExprKind::Const) {
                return Expr::make_const(-out->lhs()->const_value(),
                                        out->type());
            }
            return out;
          }
          case ExprKind::BinOp:
            return binop(e);
        }
        throw InternalError("unknown expr kind");
    }

  private:
    ExprPtr binop(const ExprPtr& e)
    {
        ExprPtr l = expr(e->lhs());
        ExprPtr r = expr(e->rhs());
        ExprPtr cur = (l == e->lhs() && r == e->rhs())
                          ? e
                          : Expr::make_binop(e->op(), l, r);
        if (is_predicate_op(cur->op()))
            return cur;
        if (!is_index_like(cur))
            return fold_float_binop(cur);
        switch (cur->op()) {
          case BinOpKind::Add:
          case BinOpKind::Sub:
          case BinOpKind::Mul: {
            Affine a = to_affine(cur);
            // Fold `c*(e/c) -> e` when `c | e` is provable (e.g.
            // `H - 32*(H/32) -> 0` under `H % 32 == 0`).
            bool changed = true;
            while (changed) {
                changed = false;
                for (const auto& [key, t] : a.terms) {
                    const ExprPtr& atom = t.atom;
                    if (atom->kind() != ExprKind::BinOp ||
                        atom->op() != BinOpKind::Div) {
                        continue;
                    }
                    Affine dv = to_affine(atom->rhs());
                    if (!dv.is_const() || dv.constant <= 0)
                        continue;
                    int64_t c = dv.constant;
                    if (t.coeff % c != 0)
                        continue;
                    if (!ctx_.prove_divisible(atom->lhs(), c))
                        continue;
                    int64_t q = t.coeff / c;
                    Affine inner = to_affine(atom->lhs());
                    Affine folded = a;
                    folded.terms.erase(key);
                    a = affine_add(folded, affine_scale(inner, q));
                    changed = true;
                    break;
                }
            }
            return affine_to_expr(a);
          }
          case BinOpKind::Div:
            return divmod(cur, /*is_div=*/true);
          case BinOpKind::Mod:
            return divmod(cur, /*is_div=*/false);
          default:
            return cur;
        }
    }

    ExprPtr divmod(const ExprPtr& e, bool is_div)
    {
        Affine divisor = to_affine(e->rhs());
        if (!divisor.is_const() || divisor.constant <= 0)
            return e;
        int64_t c = divisor.constant;
        if (c == 1)
            return is_div ? e->lhs() : idx_const(0);
        Affine a = to_affine(e->lhs());
        Affine q;
        Affine rest;
        split_by_divisor(a, c, &q, &rest);
        ExprPtr rest_e = affine_to_expr(rest);
        // If 0 <= rest < c is provable, the division splits exactly.
        bool rest_small =
            affine_is_zero(rest) ||
            (ctx_.prove_ge0(rest_e) &&
             ctx_.prove_lt(rest_e, idx_const(c)));
        if (rest_small) {
            if (is_div)
                return affine_to_expr(q);
            return rest_e;  // e % c == rest
        }
        // No exact split: retain (possibly simplified) operands.
        ExprPtr lhs_simpl = affine_to_expr(a);
        return Expr::make_binop(e->op(), lhs_simpl, idx_const(c));
    }

    const Context& ctx_;
};

StmtPtr simplify_stmt(Context ctx, const StmtPtr& s);

std::vector<StmtPtr>
simplify_block(const Context& ctx, const std::vector<StmtPtr>& b)
{
    std::vector<StmtPtr> out;
    out.reserve(b.size());
    for (const auto& s : b)
        out.push_back(simplify_stmt(ctx, s));
    return out;
}

StmtPtr
simplify_stmt(Context ctx, const StmtPtr& s)
{
    // Every case returns `s` unchanged when simplification was a no-op
    // (vector == compares elementwise shared_ptrs, which interning
    // makes exact), keeping subtree identity and cached analyses.
    Simplifier sim(ctx);
    auto rw = [&](const ExprPtr& e) { return sim.expr(e); };
    switch (s->kind()) {
      case StmtKind::Assign:
      case StmtKind::Reduce: {
        std::vector<ExprPtr> idx;
        for (const auto& i : s->idx())
            idx.push_back(rw(i));
        ExprPtr rhs = rw(s->rhs());
        if (rhs == s->rhs() && idx == s->idx())
            return s;
        return s->with_idx(std::move(idx))->with_rhs(std::move(rhs));
      }
      case StmtKind::Alloc: {
        std::vector<ExprPtr> dims;
        for (const auto& d : s->dims())
            dims.push_back(rw(d));
        if (dims == s->dims())
            return s;
        return s->with_dims(std::move(dims));
      }
      case StmtKind::For: {
        ExprPtr lo = rw(s->lo());
        ExprPtr hi = rw(s->hi());
        Context inner = ctx;
        inner.enter_loop(s->iter(), lo, hi);
        std::vector<StmtPtr> body = simplify_block(inner, s->body());
        if (lo == s->lo() && hi == s->hi() && body == s->body())
            return s;
        return s->with_bounds(std::move(lo), std::move(hi))
            ->with_body(std::move(body));
      }
      case StmtKind::If: {
        ExprPtr cond = rw(s->cond());
        Context tctx = ctx;
        tctx.assume(cond);
        Context ectx = ctx;
        ectx.system().add_pred_negated(cond);
        std::vector<StmtPtr> body = simplify_block(tctx, s->body());
        std::vector<StmtPtr> orelse = simplify_block(ectx, s->orelse());
        if (cond == s->cond() && body == s->body() &&
            orelse == s->orelse()) {
            return s;
        }
        return s->with_cond(std::move(cond))
            ->with_body(std::move(body))
            ->with_orelse(std::move(orelse));
      }
      case StmtKind::Pass:
        return s;
      case StmtKind::Call: {
        std::vector<ExprPtr> args;
        for (const auto& a : s->args())
            args.push_back(rw(a));
        if (args == s->args())
            return s;
        return s->with_args(std::move(args));
      }
      case StmtKind::WriteConfig:
      case StmtKind::WindowDecl: {
        ExprPtr rhs = rw(s->rhs());
        if (rhs == s->rhs())
            return s;
        return s->with_rhs(std::move(rhs));
      }
    }
    throw InternalError("unknown stmt kind");
}

}  // namespace

ExprPtr
simplify_expr(const Context& ctx, const ExprPtr& e)
{
    Simplifier sim(ctx);
    return sim.expr(e);
}

ProcPtr
simplify(const ProcPtr& p)
{
    ScheduleStats::count_rewrite("simplify");
    Context ctx = Context::at(p, {});
    auto body = simplify_block(ctx, p->body_stmts());
    return p->with_body(std::move(body), fwd_identity(), "simplify");
}

namespace {

/** Locate the first dead For/If under the proc; returns its path. */
bool
find_dead(const ProcPtr& p, const std::vector<StmtPtr>& b, Path prefix,
          PathLabel label, const Context& ctx, Path* out, int* mode)
{
    for (size_t i = 0; i < b.size(); i++) {
        const StmtPtr& s = b[i];
        Path here = prefix;
        here.push_back({label, static_cast<int>(i)});
        if (s->kind() == StmtKind::For) {
            if (ctx.prove_le(s->hi(), s->lo())) {
                *out = here;
                *mode = 0;  // zero-trip loop
                return true;
            }
            Context inner = ctx;
            inner.enter_loop(s->iter(), s->lo(), s->hi());
            if (find_dead(p, s->body(), here, PathLabel::Body, inner, out,
                          mode)) {
                return true;
            }
        } else if (s->kind() == StmtKind::If) {
            if (ctx.prove_pred(s->cond())) {
                *out = here;
                *mode = 1;  // always true
                return true;
            }
            ExprPtr neg = negate_pred(s->cond());
            if (neg && ctx.prove_pred(neg)) {
                *out = here;
                *mode = 2;  // always false
                return true;
            }
            Context tctx = ctx;
            tctx.assume(s->cond());
            if (find_dead(p, s->body(), here, PathLabel::Body, tctx, out,
                          mode)) {
                return true;
            }
            Context ectx = ctx;
            ectx.system().add_pred_negated(s->cond());
            if (find_dead(p, s->orelse(), here, PathLabel::Orelse, ectx,
                          out, mode)) {
                return true;
            }
        }
    }
    return false;
}

}  // namespace

ProcPtr
eliminate_dead_code(const ProcPtr& p, const Cursor& scope)
{
    // Restricted form: run the global pass (the scope restriction is a
    // convenience; dead code elsewhere is equally dead).
    (void)scope;
    return eliminate_dead_code(p);
}

ProcPtr
eliminate_dead_code(const ProcPtr& p)
{
    ScheduleStats::count_rewrite("eliminate_dead_code");
    ProcPtr cur = p;
    for (int guard = 0; guard < 10000; guard++) {
        Path path;
        int mode = -1;
        Context root = Context::at(cur, {});
        if (!find_dead(cur, cur->body_stmts(), {}, PathLabel::Body, root,
                       &path, &mode)) {
            return cur;
        }
        StmtPtr s = stmt_at(cur, path);
        if (mode == 0) {
            cur = apply_replace_stmt(cur, path, Stmt::make_pass(),
                                     "eliminate_dead_code");
        } else if (mode == 1) {
            cur = apply_unwrap(cur, path, s->body(),
                               "eliminate_dead_code");
        } else {
            if (s->orelse().empty()) {
                cur = apply_replace_stmt(cur, path, Stmt::make_pass(),
                                         "eliminate_dead_code");
            } else {
                cur = apply_unwrap(cur, path, s->orelse(),
                                   "eliminate_dead_code");
            }
        }
    }
    throw InternalError("eliminate_dead_code did not converge");
}

ProcPtr
rewrite_expr(const ProcPtr& p, const Cursor& e, const ExprPtr& repl)
{
    ScheduleStats::count_rewrite("rewrite_expr");
    Cursor c = p->forward(e);
    require(c.is_valid() && c.kind() == CursorKind::Node,
            "rewrite_expr: expected an expression cursor");
    ExprPtr old = c.expr();
    Context ctx = Context::at(p, c.loc().path);
    require(ctx.prove_eq(old, repl),
            "rewrite_expr: cannot prove '" + print_expr(old) + "' == '" +
                print_expr(repl) + "'");
    return apply_replace_expr(p, c.loc().path, repl, "rewrite_expr");
}

ProcPtr
merge_writes(const ProcPtr& p, const Cursor& s1c, const Cursor& s2c)
{
    ScheduleStats::count_rewrite("merge_writes");
    Cursor c1 = expect_stmt_cursor(p, s1c);
    Cursor c2 = expect_stmt_cursor(p, s2c);
    StmtPtr s1 = c1.stmt();
    StmtPtr s2 = c2.stmt();
    int pos1 = 0;
    int pos2 = 0;
    ListAddr l1 = list_addr_of(c1.loc().path, &pos1);
    ListAddr l2 = list_addr_of(c2.loc().path, &pos2);
    require(l1.parent == l2.parent && l1.label == l2.label &&
                pos2 == pos1 + 1,
            "merge_writes: statements must be adjacent");
    auto is_write = [](const StmtPtr& s) {
        return s->kind() == StmtKind::Assign ||
               s->kind() == StmtKind::Reduce;
    };
    require(is_write(s1) && is_write(s2),
            "merge_writes: both statements must be writes");
    require(s1->name() == s2->name() &&
                s1->idx().size() == s2->idx().size(),
            "merge_writes: writes must target the same destination");
    Context ctx = Context::at(p, c1.loc().path);
    for (size_t i = 0; i < s1->idx().size(); i++) {
        require(ctx.prove_eq(s1->idx()[i], s2->idx()[i]),
                "merge_writes: destination indices differ");
    }
    StmtPtr merged;
    bool a1 = s1->kind() == StmtKind::Assign;
    bool a2 = s2->kind() == StmtKind::Assign;
    if (a2) {
        // `_ = e1; x = e2` -> `x = e2` (e2 must not read x).
        require(!expr_uses(s2->rhs(), s2->name()),
                "merge_writes: second rhs reads the destination");
        merged = s2;
    } else if (a1) {
        // x = e1; x += e2  ->  x = e1 + e2
        merged = s1->with_rhs(
            Expr::make_binop(BinOpKind::Add, s1->rhs(), s2->rhs()));
    } else {
        // x += e1; x += e2  ->  x += e1 + e2
        merged = s1->with_rhs(
            Expr::make_binop(BinOpKind::Add, s1->rhs(), s2->rhs()));
    }
    return apply_replace_range(p, l1, pos1, pos1 + 2, {merged},
                               "merge_writes");
}

ProcPtr
inline_window(const ProcPtr& p, const Cursor& window_decl)
{
    ScheduleStats::count_rewrite("inline_window");
    Cursor c = expect_stmt_cursor(p, window_decl);
    StmtPtr s = c.stmt();
    require(s->kind() == StmtKind::WindowDecl,
            "inline_window: expected a window declaration");
    const ExprPtr& w = s->rhs();
    std::string wname = s->name();
    std::string bname = w->name();
    std::vector<WindowDim> wdims = w->window_dims();

    auto point_fn = [wdims](const std::vector<ExprPtr>& idx) {
        std::vector<ExprPtr> out;
        size_t k = 0;
        for (const auto& d : wdims) {
            if (d.is_point()) {
                out.push_back(d.lo);
            } else {
                ExprPtr inner = k < idx.size() ? idx[k] : idx_const(0);
                k++;
                out.push_back(d.lo + inner);
            }
        }
        return out;
    };
    auto window_fn = [wdims](const std::vector<WindowDim>& dims) {
        std::vector<WindowDim> out;
        size_t k = 0;
        for (const auto& d : wdims) {
            if (d.is_point()) {
                out.push_back(d);
            } else {
                WindowDim nd;
                if (k < dims.size()) {
                    nd.lo = d.lo + dims[k].lo;
                    if (dims[k].hi)
                        nd.hi = d.lo + dims[k].hi;
                } else {
                    nd = d;
                }
                k++;
                out.push_back(nd);
            }
        }
        return out;
    };

    int pos = 0;
    ListAddr addr = list_addr_of(c.loc().path, &pos);
    const auto& list = stmt_list_at(p, addr);
    std::vector<StmtPtr> repl;
    bool shadowed = false;
    for (size_t i = static_cast<size_t>(pos) + 1; i < list.size(); i++) {
        if (shadowed) {
            repl.push_back(list[i]);
            continue;
        }
        StmtPtr rewritten =
            rewrite_buffer_access(list[i], wname, point_fn, window_fn);
        repl.push_back(rename_buffer(rewritten, wname, bname));
        if ((list[i]->kind() == StmtKind::Alloc ||
             list[i]->kind() == StmtKind::WindowDecl) &&
            list[i]->name() == wname) {
            shadowed = true;  // re-declared: rest refers to the new binder
        }
    }
    return apply_replace_range(p, addr, pos, static_cast<int>(list.size()),
                               std::move(repl), "inline_window");
}

namespace {

/**
 * True if `name` is used anywhere in the proc outside statements
 * [pos, end) of the list at `addr`. Positional, not pointer-based:
 * structurally shared subtrees may appear at several positions.
 */
bool
used_outside_suffix(const ProcPtr& p, const ListAddr& addr, int pos,
                    const std::string& name)
{
    bool found = false;
    std::function<void(const std::vector<StmtPtr>&, const Path&,
                       PathLabel)>
        walk = [&](const std::vector<StmtPtr>& list, const Path& prefix,
                   PathLabel label) {
            if (found)
                return;
            bool is_target =
                label == addr.label && prefix == addr.parent;
            for (size_t i = 0; i < list.size() && !found; i++) {
                if (is_target && static_cast<int>(i) >= pos)
                    continue;  // the rewritten suffix itself
                const StmtPtr& s = list[i];
                // Below the target list cannot reappear, so a full
                // recursive use check is exact here — except when this
                // statement is an ancestor of the target list, where we
                // must keep walking positionally.
                bool ancestor = false;
                if (addr.parent.size() > prefix.size()) {
                    const PathStep& step = addr.parent[prefix.size()];
                    ancestor = is_stmt_list_label(step.label) &&
                               step.label == label &&
                               step.index == static_cast<int>(i);
                }
                if (!ancestor) {
                    // A bare declaration of the same name is not a use
                    // of our variable (it is the binder itself, or a
                    // shadowing re-declaration).
                    if ((s->kind() == StmtKind::Alloc ||
                         s->kind() == StmtKind::WindowDecl) &&
                        s->name() == name) {
                        for (const auto& d : s->dims())
                            found = found || expr_uses(d, name);
                        if (s->rhs())
                            found = found || expr_uses(s->rhs(), name);
                        continue;
                    }
                    if (stmt_uses(s, name))
                        found = true;
                    continue;
                }
                // Ancestor of the target list: check this node's own
                // expressions, then recurse into its lists.
                for (const auto& e : s->idx())
                    found = found || expr_uses(e, name);
                if (s->rhs())
                    found = found || expr_uses(s->rhs(), name);
                for (const auto& e : s->dims())
                    found = found || expr_uses(e, name);
                if (s->lo())
                    found = found || expr_uses(s->lo(), name);
                if (s->hi())
                    found = found || expr_uses(s->hi(), name);
                if (s->cond())
                    found = found || expr_uses(s->cond(), name);
                for (const auto& e : s->args())
                    found = found || expr_uses(e, name);
                if (s->is_write() && s->name() == name)
                    found = true;
                Path here = prefix;
                here.push_back({label, static_cast<int>(i)});
                if (!s->body().empty())
                    walk(s->body(), here, PathLabel::Body);
                if (!s->orelse().empty())
                    walk(s->orelse(), here, PathLabel::Orelse);
            }
        };
    walk(p->body_stmts(), {}, PathLabel::Body);
    return found;
}

}  // namespace

ProcPtr
inline_assign(const ProcPtr& p, const Cursor& assign)
{
    ScheduleStats::count_rewrite("inline_assign");
    Cursor c = expect_stmt_cursor(p, assign);
    StmtPtr s = c.stmt();
    require(s->kind() == StmtKind::Assign && s->idx().empty(),
            "inline_assign: expected a scalar assignment");
    int pos = 0;
    ListAddr addr = list_addr_of(c.loc().path, &pos);
    // Deleting the assignment is only sound if the destination's value
    // cannot be observed outside the statements we rewrite: a use after
    // the enclosing scope (or re-reachable through an enclosing loop's
    // back-edge) would read the removed value.
    require(!used_outside_suffix(p, addr, pos, s->name()),
            "inline_assign: '" + s->name() +
                "' is live outside the enclosing statement list");
    const auto& list = stmt_list_at(p, addr);
    // Safety: x is not re-written later, and the values e reads are not
    // modified by the following statements.
    std::vector<std::string> rhs_reads;
    expr_collect_reads(s->rhs(), &rhs_reads);
    for (size_t i = static_cast<size_t>(pos) + 1; i < list.size(); i++) {
        require(!stmt_writes(list[i], s->name()),
                "inline_assign: destination is written again afterwards");
        for (const auto& r : rhs_reads) {
            require(!stmt_writes(list[i], r),
                    "inline_assign: '" + r +
                        "' is modified after the assignment");
        }
    }
    std::vector<StmtPtr> repl;
    for (size_t i = static_cast<size_t>(pos) + 1; i < list.size(); i++)
        repl.push_back(stmt_subst(list[i], s->name(), s->rhs()));
    return apply_replace_range(p, addr, pos, static_cast<int>(list.size()),
                               std::move(repl), "inline_assign");
}

}  // namespace exo2
