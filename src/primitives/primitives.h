#ifndef EXO2_PRIMITIVES_PRIMITIVES_H_
#define EXO2_PRIMITIVES_PRIMITIVES_H_

/**
 * @file
 * Umbrella header: the full catalogue of Exo 2 scheduling primitives
 * (Appendix A). Scheduling libraries include this one header.
 */

#include "src/primitives/annotations.h"
#include "src/primitives/buffers.h"
#include "src/primitives/common.h"
#include "src/primitives/extensions.h"
#include "src/primitives/loops.h"
#include "src/primitives/multiproc.h"
#include "src/primitives/scope.h"
#include "src/primitives/simplify.h"

#endif  // EXO2_PRIMITIVES_PRIMITIVES_H_
