#include "src/primitives/multiproc.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/analysis/effects.h"
#include "src/ir/builder.h"
#include "src/ir/errors.h"
#include "src/ir/printer.h"

namespace exo2 {

namespace {

// ---- Unification against instruction semantics bodies ------------------

/** Buffer-argument binding produced by unification. */
struct BufBinding
{
    std::string target;            ///< target buffer name
    std::vector<ExprPtr> prefix;   ///< leading point coordinates
    std::vector<ExprPtr> offsets;  ///< per-formal-dim window offsets
    ScalarType type = ScalarType::F32;
    bool bound = false;
};

struct Unifier
{
    const ProcPtr& instr;
    const ProcPtr& target_proc;
    std::map<std::string, ExprPtr> scalars;   ///< formal -> target expr
    std::map<std::string, BufBinding> buffers;
    std::map<std::string, std::string> iters; ///< formal -> target iter
    std::vector<std::string> target_iters;    ///< iters of matched loops

    Unifier(const ProcPtr& i, const ProcPtr& t)
        : instr(i), target_proc(t) {}

    /** Memory kind of a target buffer (arg or local alloc). */
    MemoryKind target_mem_kind(const std::string& name) const
    {
        if (const ProcArg* a = target_proc->find_arg(name))
            return a->mem ? a->mem->kind() : MemoryKind::Dram;
        std::function<const Stmt*(const std::vector<StmtPtr>&)> scan =
            [&](const std::vector<StmtPtr>& b) -> const Stmt* {
            for (const auto& s : b) {
                if (s->kind() == StmtKind::Alloc && s->name() == name)
                    return s.get();
                if (const Stmt* r = scan(s->body()))
                    return r;
                if (const Stmt* r = scan(s->orelse()))
                    return r;
            }
            return nullptr;
        };
        if (const Stmt* a = scan(target_proc->body_stmts()))
            return a->mem()->kind();
        return MemoryKind::Dram;
    }

    bool is_formal_scalar(const std::string& n) const
    {
        const ProcArg* a = instr->find_arg(n);
        return a && a->dims.empty();
    }

    bool is_formal_buffer(const std::string& n) const
    {
        const ProcArg* a = instr->find_arg(n);
        return a && !a->dims.empty();
    }

    bool iter_independent(const ExprPtr& e) const
    {
        for (const auto& it : target_iters) {
            if (expr_uses(e, it))
                return false;
        }
        return true;
    }

    /** Substitute bound scalars and iter mappings into a formal expr. */
    ExprPtr subst_formal(const ExprPtr& e) const
    {
        ExprPtr out = e;
        for (const auto& [name, repl] : scalars)
            out = expr_subst(out, name, repl);
        for (const auto& [fi, ti] : iters)
            out = expr_subst(out, fi, var(ti));
        return out;
    }

    bool unify_expr(const ExprPtr& f, const ExprPtr& t)
    {
        if (!f || !t)
            return f == t;
        // Scalar formal argument: bind to the whole target expression.
        if (f->kind() == ExprKind::Read && f->idx().empty() &&
            is_formal_scalar(f->name())) {
            if (!iter_independent(t))
                return false;
            auto it = scalars.find(f->name());
            if (it != scalars.end())
                return affine_equal(it->second, t) ||
                       expr_equal(it->second, t);
            scalars[f->name()] = t;
            return true;
        }
        // Buffer formal access.
        if (f->kind() == ExprKind::Read && !f->idx().empty() &&
            is_formal_buffer(f->name())) {
            if (t->kind() != ExprKind::Read || t->idx().empty())
                return false;
            return unify_buffer_access(f->name(), f->idx(), t->name(),
                                       t->idx(), t->type());
        }
        // Index-typed expressions: compare affine forms after
        // substitution (handles iterator renaming).
        if (f->type() == ScalarType::Index &&
            t->type() == ScalarType::Index) {
            ExprPtr fs = subst_formal(f);
            if (affine_equal(fs, t))
                return true;
            // Fall through to structural match for div/mod shapes.
        }
        // Mask-bound binding: formal `lhs < m` or `lhs >= l` (with an
        // unbound scalar bound) unifies with any same-operator target
        // by solving for the bound; the substituted formal is then
        // identically equivalent to the target.
        if (f->kind() == ExprKind::BinOp && t->kind() == ExprKind::BinOp &&
            (f->op() == BinOpKind::Lt || f->op() == BinOpKind::Ge) &&
            t->op() == f->op() &&
            f->rhs()->kind() == ExprKind::Read &&
            f->rhs()->idx().empty() &&
            is_formal_scalar(f->rhs()->name()) &&
            scalars.find(f->rhs()->name()) == scalars.end()) {
            ExprPtr solved = affine_to_expr(affine_add(
                affine_sub(to_affine(t->rhs()), to_affine(t->lhs())),
                to_affine(subst_formal(f->lhs()))));
            if (iter_independent(solved)) {
                scalars[f->rhs()->name()] = solved;
                return true;
            }
        }
        if (f->kind() != t->kind())
            return false;
        switch (f->kind()) {
          case ExprKind::Const:
            return f->const_value() == t->const_value();
          case ExprKind::Read: {
            if (f->idx().size() != t->idx().size())
                return false;
            std::string fname = f->name();
            auto fit = iters.find(fname);
            if (fit != iters.end())
                fname = fit->second;
            if (fname != t->name())
                return false;
            for (size_t i = 0; i < f->idx().size(); i++) {
                if (!unify_expr(f->idx()[i], t->idx()[i]))
                    return false;
            }
            return true;
          }
          case ExprKind::BinOp:
            return f->op() == t->op() &&
                   unify_expr(f->lhs(), t->lhs()) &&
                   unify_expr(f->rhs(), t->rhs());
          case ExprKind::USub:
            return unify_expr(f->lhs(), t->lhs());
          case ExprKind::Extern: {
            if (f->name() != t->name() ||
                f->idx().size() != t->idx().size()) {
                return false;
            }
            for (size_t i = 0; i < f->idx().size(); i++) {
                if (!unify_expr(f->idx()[i], t->idx()[i]))
                    return false;
            }
            return true;
          }
          case ExprKind::Stride:
            return f->name() == t->name() &&
                   f->stride_dim() == t->stride_dim();
          case ExprKind::ReadConfig:
            return f->name() == t->name() && f->field() == t->field();
          case ExprKind::Window:
            return false;  // windows inside instr bodies unsupported
        }
        return false;
    }

    bool unify_buffer_access(const std::string& formal,
                             const std::vector<ExprPtr>& fidx,
                             const std::string& target,
                             const std::vector<ExprPtr>& tidx,
                             ScalarType t_type)
    {
        size_t k = fidx.size();
        if (tidx.size() < k)
            return false;
        // Memory spaces must agree (loads and stores are otherwise
        // structurally identical).
        const ProcArg* farg = instr->find_arg(formal);
        MemoryKind fkind =
            farg && farg->mem ? farg->mem->kind() : MemoryKind::Dram;
        if (fkind != target_mem_kind(target))
            return false;
        // Element precisions must agree: binding an f64 buffer to an
        // f32 window formal type-puns the storage in generated C
        // (found by the tri-oracle on dsdot/sdsdot, whose f64
        // accumulator must not match the f32 reduce_add instruction).
        if (farg && farg->type != t_type)
            return false;
        size_t lead = tidx.size() - k;
        BufBinding cand;
        cand.target = target;
        cand.type = t_type;
        for (size_t d = 0; d < lead; d++) {
            if (!iter_independent(tidx[d]))
                return false;
            cand.prefix.push_back(tidx[d]);
        }
        for (size_t j = 0; j < k; j++) {
            ExprPtr fs = subst_formal(fidx[j]);
            ExprPtr off = affine_to_expr(
                affine_sub(to_affine(tidx[lead + j]), to_affine(fs)));
            if (!iter_independent(off))
                return false;
            cand.offsets.push_back(off);
        }
        auto it = buffers.find(formal);
        if (it == buffers.end() || !it->second.bound) {
            cand.bound = true;
            buffers[formal] = cand;
            return true;
        }
        const BufBinding& prev = it->second;
        if (prev.target != cand.target ||
            prev.prefix.size() != cand.prefix.size()) {
            return false;
        }
        for (size_t d = 0; d < cand.prefix.size(); d++) {
            if (!affine_equal(prev.prefix[d], cand.prefix[d]))
                return false;
        }
        for (size_t j = 0; j < k; j++) {
            if (!affine_equal(prev.offsets[j], cand.offsets[j]))
                return false;
        }
        return true;
    }

    bool unify_stmt(const StmtPtr& f, const StmtPtr& t)
    {
        if (f->kind() != t->kind())
            return false;
        switch (f->kind()) {
          case StmtKind::Assign:
          case StmtKind::Reduce: {
            if (!unify_expr(f->rhs(), t->rhs()))
                return false;
            if (is_formal_buffer(f->name())) {
                if (t->kind() != f->kind())
                    return false;
                // t->type() is the written buffer's element type (the
                // rhs type is the value's, which may differ in
                // mixed-precision accumulations).
                return unify_buffer_access(f->name(), f->idx(), t->name(),
                                           t->idx(), t->type());
            }
            return false;  // instr writes must target buffer args
          }
          case StmtKind::For: {
            if (!unify_expr(f->lo(), t->lo()) ||
                !unify_expr(f->hi(), t->hi())) {
                return false;
            }
            iters[f->iter()] = t->iter();
            target_iters.push_back(t->iter());
            if (f->body().size() != t->body().size())
                return false;
            for (size_t i = 0; i < f->body().size(); i++) {
                if (!unify_stmt(f->body()[i], t->body()[i]))
                    return false;
            }
            target_iters.pop_back();
            return true;
          }
          case StmtKind::If: {
            if (!unify_expr(f->cond(), t->cond()))
                return false;
            if (f->body().size() != t->body().size() ||
                f->orelse().size() != t->orelse().size()) {
                return false;
            }
            for (size_t i = 0; i < f->body().size(); i++) {
                if (!unify_stmt(f->body()[i], t->body()[i]))
                    return false;
            }
            for (size_t i = 0; i < f->orelse().size(); i++) {
                if (!unify_stmt(f->orelse()[i], t->orelse()[i]))
                    return false;
            }
            return true;
          }
          case StmtKind::Pass:
            return true;
          case StmtKind::WriteConfig:
            return f->name() == t->name() && f->field() == t->field() &&
                   unify_expr(f->rhs(), t->rhs());
          default:
            return false;
        }
    }

    /** Build the Call arguments after a successful unification. */
    std::vector<ExprPtr> build_args() const
    {
        std::vector<ExprPtr> args;
        for (const auto& a : instr->args()) {
            if (a.dims.empty()) {
                auto it = scalars.find(a.name);
                if (it == scalars.end()) {
                    throw SchedulingError(
                        "replace: argument '" + a.name + "' of " +
                        instr->name() + " was not bound");
                }
                args.push_back(it->second);
                continue;
            }
            auto it = buffers.find(a.name);
            if (it == buffers.end() || !it->second.bound) {
                throw SchedulingError("replace: buffer argument '" +
                                      a.name + "' of " + instr->name() +
                                      " was not bound");
            }
            const BufBinding& b = it->second;
            std::vector<WindowDim> dims;
            for (const auto& pt : b.prefix)
                dims.push_back(WindowDim{pt, nullptr});
            for (size_t j = 0; j < b.offsets.size(); j++) {
                ExprPtr extent = a.dims[j];
                // Substitute bound scalars into the formal extent.
                for (const auto& [n, e] : scalars)
                    extent = expr_subst(extent, n, e);
                WindowDim wd;
                wd.lo = b.offsets[j];
                wd.hi = affine_to_expr(affine_add(to_affine(b.offsets[j]),
                                                  to_affine(extent)));
                dims.push_back(wd);
            }
            args.push_back(Expr::make_window(b.target, std::move(dims),
                                             b.type));
        }
        return args;
    }
};

}  // namespace

ProcPtr
replace(const ProcPtr& p, const Cursor& s, const ProcPtr& instr)
{
    ScheduleStats::count_rewrite("replace");
    require(instr != nullptr, "replace: null instruction");
    Cursor c = p->forward(s);
    require(c.is_valid(), "replace: cursor invalidated");
    int lo = 0;
    int hi = 0;
    ListAddr addr{};
    if (c.kind() == CursorKind::Node) {
        addr = list_addr_of(c.loc().path, &lo);
        hi = lo + 1;
    } else if (c.kind() == CursorKind::Block) {
        addr = list_addr_of(c.loc().path, &lo);
        hi = c.loc().hi;
    } else {
        throw SchedulingError("replace: expected a stmt/block cursor");
    }
    const auto& list = stmt_list_at(p, addr);
    const auto& fbody = instr->body_stmts();
    require(static_cast<int>(fbody.size()) == hi - lo,
            "replace: statement count mismatch against " + instr->name());
    Unifier u(instr, p);
    for (size_t i = 0; i < fbody.size(); i++) {
        require(u.unify_stmt(fbody[i], list[static_cast<size_t>(lo) + i]),
                "replace: unification with " + instr->name() + " failed");
    }
    StmtPtr call = Stmt::make_call(instr, u.build_args());
    return apply_replace_range(p, addr, lo, hi, {call}, "replace");
}

namespace {

/** Try to replace starting at each statement; returns true on change. */
bool
try_replace_somewhere(ProcPtr* p, const ProcPtr& instr)
{
    // Walk all statements in pre-order, trying a 1:1 (or n:n for
    // multi-statement instr bodies) unification at each list position.
    struct Walker
    {
        const ProcPtr& instr;
        ProcPtr result;
        bool changed = false;

        bool visit_list(const ProcPtr& p, const Path& parent,
                        PathLabel label, const std::vector<StmtPtr>& list)
        {
            int n = static_cast<int>(instr->body_stmts().size());
            for (int i = 0; i + n <= static_cast<int>(list.size()); i++) {
                Unifier u(instr, p);
                bool ok = true;
                for (int j = 0; j < n && ok; j++) {
                    ok = u.unify_stmt(
                        instr->body_stmts()[static_cast<size_t>(j)],
                        list[static_cast<size_t>(i + j)]);
                }
                if (ok) {
                    std::vector<ExprPtr> args;
                    try {
                        args = u.build_args();
                    } catch (const SchedulingError&) {
                        continue;
                    }
                    StmtPtr call = Stmt::make_call(instr, args);
                    ListAddr addr{parent, label};
                    result = apply_replace_range(p, addr, i, i + n, {call},
                                                 "replace");
                    ScheduleStats::count_rewrite("replace");
                    changed = true;
                    return true;
                }
            }
            for (size_t i = 0; i < list.size(); i++) {
                Path here = parent;
                here.push_back({label, static_cast<int>(i)});
                const StmtPtr& st = list[i];
                if (!st->body().empty() &&
                    visit_list(p, here, PathLabel::Body, st->body())) {
                    return true;
                }
                if (!st->orelse().empty() &&
                    visit_list(p, here, PathLabel::Orelse, st->orelse())) {
                    return true;
                }
            }
            return false;
        }
    };
    Walker w{instr, nullptr};
    if (w.visit_list(*p, {}, PathLabel::Body, (*p)->body_stmts())) {
        *p = w.result;
        return true;
    }
    return false;
}

}  // namespace

ProcPtr
replace_all_stmts(const ProcPtr& p, const std::vector<ProcPtr>& instrs)
{
    ProcPtr cur = p;
    for (const auto& instr : instrs) {
        if (!instr || instr->body_stmts().empty())
            continue;
        int guard = 0;
        while (try_replace_somewhere(&cur, instr)) {
            require(++guard < 100000, "replace_all_stmts: runaway");
        }
    }
    return cur;
}

ProcPtr
inline_call(const ProcPtr& p, const Cursor& call)
{
    ScheduleStats::count_rewrite("inline");
    Cursor cc = expect_stmt_cursor(p, call);
    StmtPtr s = cc.stmt();
    require(s->kind() == StmtKind::Call, "inline: expected a call");
    ProcPtr callee = s->callee();
    require(callee != nullptr, "inline: unresolved callee");
    require(s->args().size() == callee->args().size(),
            "inline: arity mismatch");

    std::vector<StmtPtr> body = callee->body_stmts();
    // Rename local allocations fresh to avoid collisions.
    for (const auto& nm : collect_allocs(body)) {
        std::string fresh = fresh_in(p, nm);
        if (fresh != nm) {
            std::vector<StmtPtr> nb;
            for (const auto& st : body)
                nb.push_back(rename_buffer(st, nm, fresh));
            body = std::move(nb);
        }
    }

    for (size_t i = 0; i < callee->args().size(); i++) {
        const ProcArg& f = callee->args()[i];
        ExprPtr actual = s->args()[i];
        if (f.dims.empty()) {
            body = block_subst(body, f.name, actual);
            continue;
        }
        if (actual->kind() == ExprKind::Read && actual->idx().empty()) {
            std::vector<StmtPtr> nb;
            for (const auto& st : body)
                nb.push_back(rename_buffer(st, f.name, actual->name()));
            body = std::move(nb);
            continue;
        }
        require(actual->kind() == ExprKind::Window,
                "inline: unsupported buffer argument shape");
        std::vector<WindowDim> win = actual->window_dims();
        PointRewriteFn point_fn = [win](const std::vector<ExprPtr>& idx) {
            std::vector<ExprPtr> out;
            size_t k = 0;
            for (const auto& d : win) {
                if (d.is_point()) {
                    out.push_back(d.lo);
                } else {
                    ExprPtr inner =
                        k < idx.size() ? idx[k] : idx_const(0);
                    k++;
                    out.push_back(affine_to_expr(affine_add(
                        to_affine(d.lo), to_affine(inner))));
                }
            }
            return out;
        };
        WindowRewriteFn window_fn =
            [win](const std::vector<WindowDim>& dims) {
                std::vector<WindowDim> out;
                size_t k = 0;
                for (const auto& d : win) {
                    if (d.is_point()) {
                        out.push_back(d);
                    } else {
                        WindowDim nd = d;
                        if (k < dims.size()) {
                            nd.lo = d.lo + dims[k].lo;
                            nd.hi = dims[k].hi ? (d.lo + dims[k].hi)
                                               : nullptr;
                            if (!nd.hi) {
                                // point into an interval dim
                                nd.hi = nullptr;
                            }
                        }
                        k++;
                        out.push_back(nd);
                    }
                }
                return out;
            };
        std::vector<StmtPtr> nb;
        for (const auto& st : body) {
            StmtPtr r =
                rewrite_buffer_access(st, f.name, point_fn, window_fn);
            nb.push_back(rename_buffer(r, f.name, actual->name()));
        }
        body = std::move(nb);
    }

    int pos = 0;
    ListAddr addr = list_addr_of(cc.loc().path, &pos);
    return apply_replace_range(p, addr, pos, pos + 1, std::move(body),
                               "inline");
}

ProcPtr
call_eqv(const ProcPtr& p, const Cursor& call, const ProcPtr& eqv)
{
    ScheduleStats::count_rewrite("call_eqv");
    Cursor cc = expect_stmt_cursor(p, call);
    StmtPtr s = cc.stmt();
    require(s->kind() == StmtKind::Call, "call_eqv: expected a call");
    require(procs_equivalent(s->callee(), eqv),
            "call_eqv: procedures are not equivalent");
    return apply_replace_stmt_same_shape(p, cc.loc().path,
                                         s->with_callee(eqv), "call_eqv");
}

ProcPtr
call_eqv_all(const ProcPtr& p, const ProcPtr& eqv)
{
    ProcPtr cur = p;
    for (int guard = 0; guard < 100000; guard++) {
        auto calls = cur->find_all("_(_)");
        bool changed = false;
        for (const auto& c : calls) {
            StmtPtr s = c.stmt();
            if (s->callee() && s->callee() != eqv &&
                procs_equivalent(s->callee(), eqv)) {
                cur = call_eqv(cur, c, eqv);
                changed = true;
                break;
            }
        }
        if (!changed)
            return cur;
    }
    throw InternalError("call_eqv_all did not converge");
}

ProcPtr
extract_subproc_impl(const ProcPtr& p, const Cursor& c,
                     const std::string& name, ProcPtr* out_sub)
{
    ScheduleStats::count_rewrite("extract_subproc");
    Cursor bc = p->forward(c);
    require(bc.is_valid(), "extract_subproc: cursor invalidated");
    int lo = 0;
    int hi = 0;
    ListAddr addr{};
    if (bc.kind() == CursorKind::Node) {
        addr = list_addr_of(bc.loc().path, &lo);
        hi = lo + 1;
    } else {
        require(bc.kind() == CursorKind::Block,
                "extract_subproc: expected stmt/block");
        addr = list_addr_of(bc.loc().path, &lo);
        hi = bc.loc().hi;
    }
    const auto& list = stmt_list_at(p, addr);
    std::vector<StmtPtr> block(list.begin() + lo, list.begin() + hi);

    // Free names of the block = used names minus block-local binders.
    std::set<std::string> bound;
    for (const auto& nm : collect_allocs(block))
        bound.insert(nm);
    std::function<void(const StmtPtr&)> binders = [&](const StmtPtr& st) {
        if (st->kind() == StmtKind::For)
            bound.insert(st->iter());
        if (st->kind() == StmtKind::WindowDecl)
            bound.insert(st->name());
        for (const auto& k : st->body())
            binders(k);
        for (const auto& k : st->orelse())
            binders(k);
    };
    for (const auto& st : block)
        binders(st);

    std::vector<ProcArg> args;
    std::vector<ExprPtr> call_args;
    std::set<std::string> taken;
    // Order: proc args first (stable), then any allocs from outside.
    auto add_free = [&](const std::string& nm) {
        if (bound.count(nm) || taken.count(nm))
            return;
        bool used = false;
        for (const auto& st : block) {
            if (stmt_uses(st, nm)) {
                used = true;
                break;
            }
        }
        if (!used)
            return;
        taken.insert(nm);
        if (const ProcArg* a = p->find_arg(nm)) {
            ProcArg na = *a;
            if (!na.dims.empty())
                na.is_window = true;
            args.push_back(na);
            call_args.push_back(
                Expr::make_read(nm, {}, na.type));
            return;
        }
        // Must be an outer alloc or iterator; find the alloc if any.
        try {
            Cursor acur = p->find_alloc(nm);
            StmtPtr as = acur.stmt();
            ProcArg na;
            na.name = nm;
            na.type = as->type();
            na.dims = as->dims();
            na.mem = as->mem();
            na.is_window = !as->dims().empty();
            args.push_back(na);
            call_args.push_back(Expr::make_read(nm, {}, na.type));
        } catch (const SchedulingError&) {
            // Outer loop iterator: pass as a size-like scalar.
            ProcArg na;
            na.name = nm;
            na.type = ScalarType::Index;
            na.is_size = true;
            args.push_back(na);
            call_args.push_back(var(nm));
        }
    };
    for (const auto& a : p->args())
        add_free(a.name);
    // Collect any remaining free names.
    std::vector<std::string> mentioned;
    for (const auto& st : block) {
        for (const auto& acc : collect_accesses(st)) {
            if (acc.buf.rfind("$cfg:", 0) == 0)
                continue;
            if (std::find(mentioned.begin(), mentioned.end(), acc.buf) ==
                mentioned.end()) {
                mentioned.push_back(acc.buf);
            }
        }
    }
    for (const auto& nm : mentioned)
        add_free(nm);

    ProcPtr sub = Proc::make(name, args, {}, block);
    if (out_sub)
        *out_sub = sub;
    StmtPtr call = Stmt::make_call(sub, call_args);
    return apply_replace_range(p, addr, lo, hi, {call}, "extract_subproc");
}

std::pair<ProcPtr, ProcPtr>
extract_subproc(const ProcPtr& p, const Cursor& s, const std::string& name)
{
    ProcPtr sub;
    ProcPtr np = extract_subproc_impl(p, s, name, &sub);
    return {np, sub};
}

}  // namespace exo2
