#include "src/primitives/annotations.h"

#include "src/analysis/effects.h"
#include "src/ir/builder.h"
#include "src/ir/errors.h"

namespace exo2 {

ProcPtr
set_memory(const ProcPtr& p, const Cursor& alloc, const MemoryPtr& mem)
{
    ScheduleStats::count_rewrite("set_memory");
    Cursor ac = expect_stmt_cursor(p, alloc);
    StmtPtr s = ac.stmt();
    require(s->kind() == StmtKind::Alloc,
            "set_memory: expected an allocation cursor");
    if (mem->is_vector()) {
        // Backend precondition checked eagerly: the innermost dimension
        // must fit exactly one vector register.
        require(!s->dims().empty(),
                "set_memory: scalar cannot live in a vector memory");
        Affine inner = to_affine(s->dims().back());
        int lanes = mem->vector_bytes() / type_size_bytes(s->type());
        require(inner.is_const() && inner.constant == lanes,
                "set_memory: innermost dim must equal the vector width (" +
                    std::to_string(lanes) + ")");
    }
    return apply_replace_stmt_same_shape(p, ac.loc().path, s->with_mem(mem),
                                         "set_memory");
}

ProcPtr
set_memory(const ProcPtr& p, const std::string& buf_name,
           const MemoryPtr& mem)
{
    return set_memory(p, p->find_alloc(buf_name), mem);
}

ProcPtr
set_precision(const ProcPtr& p, const Cursor& alloc, ScalarType t)
{
    ScheduleStats::count_rewrite("set_precision");
    Cursor ac = expect_stmt_cursor(p, alloc);
    StmtPtr s = ac.stmt();
    require(s->kind() == StmtKind::Alloc,
            "set_precision: expected an allocation cursor");
    require(is_numeric(t), "set_precision: type must be numeric");
    return apply_replace_stmt_same_shape(p, ac.loc().path, s->with_type(t),
                                         "set_precision");
}

ProcPtr
parallelize_loop(const ProcPtr& p, const Cursor& loop)
{
    ScheduleStats::count_rewrite("parallelize_loop");
    Cursor lc = expect_loop_cursor(p, loop);
    Context ctx = Context::at(p, lc.loc().path);
    std::vector<LoopConflict> conflicts;
    if (loop_conflicts(ctx, lc.stmt(), /*reductions_ok=*/false, &conflicts)) {
        // Name every conflicting access pair, not just the first: the
        // user fixes them all at once instead of replaying the error.
        std::string why = conflicts.front().detail;
        for (size_t i = 1; i < conflicts.size(); i++)
            why += "; " + conflicts[i].detail;
        require(false, "parallelize_loop: " + why);
    }
    return apply_replace_stmt_same_shape(
        p, lc.loc().path, lc.stmt()->with_loop_mode(LoopMode::Par),
        "parallelize_loop");
}

namespace {

/** Does any statement in the suffix (or deeper) read `cfg.field`? */
bool
config_read_after(const std::vector<StmtPtr>& list, size_t start,
                  const std::string& cfg, const std::string& field)
{
    std::string key = "$cfg:" + cfg + "." + field;
    for (size_t i = start; i < list.size(); i++) {
        for (const auto& a : collect_accesses(list[i])) {
            if (a.buf == key && a.kind == AccessKind::Read)
                return true;
        }
    }
    return false;
}

/**
 * Check `cfg.field` is not read by code executing after the statement
 * at `path` (its list suffix and every enclosing list's suffix; loops
 * also re-execute their own bodies, so enclosing loop bodies count).
 */
void
require_not_read_after(const ProcPtr& p, const Path& path,
                       const std::string& cfg, const std::string& field,
                       const std::string& who)
{
    // A list level re-executes when any loop encloses it.
    auto loop_above = [&](const Path& list_parent) {
        Path q = list_parent;
        while (!q.empty()) {
            if (stmt_at(p, q)->kind() == StmtKind::For)
                return true;
            q.pop_back();
        }
        return false;
    };
    Path cur = path;
    for (;;) {
        int pos = 0;
        ListAddr addr = list_addr_of(cur, &pos);
        const auto& list = stmt_list_at(p, addr);
        size_t start = loop_above(addr.parent)
                           ? 0
                           : static_cast<size_t>(pos) + 1;
        require(!config_read_after(list, start, cfg, field),
                who + ": " + cfg + "." + field +
                    " is read by code executing afterwards");
        if (addr.parent.empty())
            return;
        cur = addr.parent;
    }
}

}  // namespace

ProcPtr
bind_config(const ProcPtr& p, const Cursor& e, const std::string& cfg,
            const std::string& field)
{
    ScheduleStats::count_rewrite("bind_config");
    Cursor ec = p->forward(e);
    require(ec.is_valid() && ec.kind() == CursorKind::Node,
            "bind_config: expected an expression cursor");
    ExprPtr expr = ec.expr();
    // Find the enclosing statement.
    Path path = ec.loc().path;
    size_t stmt_depth = 0;
    for (size_t i = path.size(); i-- > 0;) {
        if (is_stmt_list_label(path[i].label)) {
            stmt_depth = i;
            break;
        }
    }
    Path stmt_path(path.begin(), path.begin() + stmt_depth + 1);
    require_not_read_after(p, stmt_path, cfg, field, "bind_config");
    int pos = 0;
    ListAddr addr = list_addr_of(stmt_path, &pos);
    StmtPtr wc = Stmt::make_write_config(cfg, field, expr);
    // One batched version: insert + expression rewrite, one provenance
    // hop (the config write's forwarding composed with the rewrite's).
    EditBatch batch(p);
    batch.insert(addr, pos, {wc});
    std::optional<CursorLoc> ec2 = batch.forward(ec.loc());
    require(ec2.has_value(), "bind_config: expression lost");
    ExprPtr rd = Expr::make_read_config(cfg, field, expr->type());
    batch.replace_expr(ec2->path, rd);
    return batch.commit("bind_config");
}

ProcPtr
delete_config(const ProcPtr& p, const Cursor& config_write)
{
    ScheduleStats::count_rewrite("delete_config");
    Cursor cc = expect_stmt_cursor(p, config_write);
    StmtPtr s = cc.stmt();
    require(s->kind() == StmtKind::WriteConfig,
            "delete_config: expected a configuration write");
    require_not_read_after(p, cc.loc().path, s->name(), s->field(),
                           "delete_config");
    int pos = 0;
    ListAddr addr = list_addr_of(cc.loc().path, &pos);
    return apply_erase(p, addr, pos, pos + 1, "delete_config");
}

namespace {

/** Require an instruction whose body only writes configuration state. */
void
require_pure_config(const ProcPtr& instr, const std::string& who)
{
    require(instr && instr->is_instr() &&
                instr->instr()->instr_class == "config",
            who + ": callee is not a configuration instruction");
    for (const auto& s : instr->body_stmts()) {
        require(s->kind() == StmtKind::WriteConfig,
                who + ": configuration instructions may only write "
                      "configuration state");
    }
}

}  // namespace

ProcPtr
insert_config_call(const ProcPtr& p, const Cursor& gap,
                   const ProcPtr& config_instr, std::vector<ExprPtr> args)
{
    ScheduleStats::count_rewrite("insert_config_call");
    require_pure_config(config_instr, "insert_config_call");
    Cursor gc = expect_gap_cursor(p, gap);
    int g = gc.loc().path.back().index;
    ListAddr addr = list_addr_of(gc.loc().path, &g);
    const auto& list = stmt_list_at(p, addr);
    for (const auto& s : config_instr->body_stmts()) {
        require(!config_read_after(list, static_cast<size_t>(g), s->name(),
                                   s->field()),
                "insert_config_call: " + s->name() + "." + s->field() +
                    " is read afterwards");
    }
    return apply_insert(
        p, addr, g, {Stmt::make_call(config_instr, std::move(args))},
        "insert_config_call");
}

ProcPtr
delete_config_call(const ProcPtr& p, const Cursor& call)
{
    ScheduleStats::count_rewrite("delete_config_call");
    Cursor cc = expect_stmt_cursor(p, call);
    StmtPtr s = cc.stmt();
    require(s->kind() == StmtKind::Call, "delete_config_call: not a call");
    require_pure_config(s->callee(), "delete_config_call");
    int pos = 0;
    ListAddr addr = list_addr_of(cc.loc().path, &pos);
    const auto& list = stmt_list_at(p, addr);
    for (const auto& w : s->callee()->body_stmts()) {
        require(!config_read_after(list, static_cast<size_t>(pos), w->name(),
                                   w->field()),
                "delete_config_call: field is read afterwards");
    }
    return apply_erase(p, addr, pos, pos + 1, "delete_config_call");
}

ProcPtr
write_config(const ProcPtr& p, const Cursor& gap, const std::string& cfg,
             const std::string& field, const ExprPtr& e)
{
    ScheduleStats::count_rewrite("write_config");
    Cursor gc = expect_gap_cursor(p, gap);
    int g = gc.loc().path.back().index;
    ListAddr addr = list_addr_of(gc.loc().path, &g);
    // The new value must not clobber state read afterwards: approximate
    // by requiring no read of the field after the gap.
    const auto& list = stmt_list_at(p, addr);
    require(!config_read_after(list, static_cast<size_t>(g), cfg, field),
            "write_config: " + cfg + "." + field + " is read afterwards");
    return apply_insert(p, addr, g, {Stmt::make_write_config(cfg, field, e)},
                        "write_config");
}

}  // namespace exo2
