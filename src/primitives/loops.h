#ifndef EXO2_PRIMITIVES_LOOPS_H_
#define EXO2_PRIMITIVES_LOOPS_H_

/**
 * @file
 * Loop-transformation primitives (Appendix A.1). Every operation has
 * the type `Op = Proc x Cursor x ... -> Proc` (Section 3.2), raises
 * SchedulingError when its safety condition fails, and records a
 * forwarding function for cursors.
 */

#include <string>
#include <vector>

#include "src/primitives/common.h"

namespace exo2 {

/** Tail strategies for divide_loop (Appendix A.1). */
enum class TailStrategy {
    Perfect,      ///< requires factor | bound
    Guard,        ///< ceil-divide with an if-guard
    Cut,          ///< main loop + explicit tail loop
    CutAndGuard,  ///< tail loop wrapped in `if bound % c > 0`
};

/**
 * Split `loop` (over [0, I)) by `factor` into `new_iters[0]` (outer) and
 * `new_iters[1]` (inner) using the given tail strategy.
 */
ProcPtr divide_loop(const ProcPtr& p, const Cursor& loop, int64_t factor,
                    const std::vector<std::string>& new_iters,
                    TailStrategy tail = TailStrategy::Guard);
ProcPtr divide_loop(const ProcPtr& p, const std::string& loop_name,
                    int64_t factor,
                    const std::vector<std::string>& new_iters,
                    TailStrategy tail = TailStrategy::Guard);

/** Interchange `loop` with the single loop its body contains. */
ProcPtr reorder_loops(const ProcPtr& p, const Cursor& loop);
ProcPtr reorder_loops(const ProcPtr& p, const std::string& loop_name);

/**
 * Overlapping-tile split (Halide-style recompute): `for i < I` becomes
 * `for io < n_tiles: for ii < c + I - n_tiles*c` (Appendix A.1).
 * The body must be idempotent and `n_tiles*c <= I`.
 */
ProcPtr divide_with_recompute(const ProcPtr& p, const Cursor& loop,
                              const ExprPtr& n_tiles, int64_t c,
                              const std::vector<std::string>& new_iters);

/** Flatten a perfect 2-nest `i (size I), j (size c)` into one loop. */
ProcPtr mult_loops(const ProcPtr& p, const Cursor& outer,
                   const std::string& new_iter);

/** Split [lo, hi) into [lo, e) and [e, hi). */
ProcPtr cut_loop(const ProcPtr& p, const Cursor& loop, const ExprPtr& e);

/** Join two adjacent loops with identical bodies and h1 == l2. */
ProcPtr join_loops(const ProcPtr& p, const Cursor& loop1,
                   const Cursor& loop2);

/** Re-base the iteration space to start at `new_lo`. */
ProcPtr shift_loop(const ProcPtr& p, const Cursor& loop,
                   const ExprPtr& new_lo);

/**
 * Split the enclosing loop at `gap` into two loops, lifting through
 * `n_lifts` levels of enclosing loops.
 */
ProcPtr fission(const ProcPtr& p, const Cursor& gap, int n_lifts = 1);

/** Delete a loop whose body is idempotent and iterator-independent. */
ProcPtr remove_loop(const ProcPtr& p, const Cursor& loop);

/** Wrap `stmt` in `for iter in seq(0, hi)` (optionally `if iter == 0`). */
ProcPtr add_loop(const ProcPtr& p, const Cursor& stmt,
                 const std::string& iter, const ExprPtr& hi,
                 bool guard = false);

/** Fully unroll a constant-bound loop. */
ProcPtr unroll_loop(const ProcPtr& p, const Cursor& loop);
ProcPtr unroll_loop(const ProcPtr& p, const std::string& loop_name);

}  // namespace exo2

#endif  // EXO2_PRIMITIVES_LOOPS_H_
