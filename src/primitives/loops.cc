#include "src/primitives/loops.h"

#include "src/analysis/effects.h"
#include "src/ir/builder.h"
#include "src/ir/errors.h"
#include "src/ir/printer.h"

namespace exo2 {

namespace {

/** Require that a loop's lower bound is literally zero. */
void
require_zero_based(const StmtPtr& loop, const std::string& who)
{
    require(affine_is_zero(to_affine(loop->lo())),
            who + ": loop must start at 0 (use shift_loop first)");
}

/** The list address of a loop's body. */
ListAddr
body_list(const Path& loop_path)
{
    return ListAddr{loop_path, PathLabel::Body};
}

}  // namespace

ProcPtr
divide_loop(const ProcPtr& p, const Cursor& loop, int64_t factor,
            const std::vector<std::string>& new_iters, TailStrategy tail)
{
    ScheduleStats::count_rewrite("divide_loop");
    require(factor >= 1, "divide_loop: factor must be >= 1");
    require(new_iters.size() == 2, "divide_loop: need [outer, inner] names");
    Cursor lc = expect_loop_cursor(p, loop);
    StmtPtr s = lc.stmt();
    require_zero_based(s, "divide_loop");
    const std::string& io = new_iters[0];
    const std::string& ii = new_iters[1];
    // The divided iterator disappears, so its name may be reused for
    // the outer tile index (Halide's convention in H_tile).
    if (io != s->iter())
        ensure_unused(p, io);
    if (ii != s->iter())
        ensure_unused(p, ii);
    require(io != ii, "divide_loop: iterator names must differ");

    Context ctx = Context::at(p, lc.loc().path);
    ExprPtr bound = s->hi();
    ExprPtr c = idx_const(factor);
    ExprPtr new_idx = c * var(io) + var(ii);
    std::vector<StmtPtr> main_body = block_subst(s->body(), s->iter(),
                                                 new_idx);

    int pos = 0;
    ListAddr parent = list_addr_of(lc.loc().path, &pos);
    std::vector<StmtPtr> repl;
    ListAddr new_body_list;  // where the original body relocated to

    switch (tail) {
      case TailStrategy::Perfect: {
        require(ctx.prove_divisible(bound, factor),
                "divide_loop(perfect): cannot prove " + print_expr(bound) +
                    " divisible by " + std::to_string(factor));
        StmtPtr inner =
            Stmt::make_for(ii, idx_const(0), c, std::move(main_body));
        StmtPtr outer =
            Stmt::make_for(io, idx_const(0), bound / c, {inner});
        repl = {outer};
        Path ip = lc.loc().path;
        ip.push_back({PathLabel::Body, 0});
        new_body_list = body_list(ip);
        break;
      }
      case TailStrategy::Guard: {
        ExprPtr guard = lt(new_idx, bound);
        StmtPtr iff = Stmt::make_if(guard, std::move(main_body));
        StmtPtr inner = Stmt::make_for(ii, idx_const(0), c, {iff});
        ExprPtr ceil = (bound + idx_const(factor - 1)) / c;
        StmtPtr outer = Stmt::make_for(io, idx_const(0), ceil, {inner});
        repl = {outer};
        Path ip = lc.loc().path;
        ip.push_back({PathLabel::Body, 0});
        ip.push_back({PathLabel::Body, 0});
        new_body_list = body_list(ip);
        break;
      }
      case TailStrategy::Cut:
      case TailStrategy::CutAndGuard: {
        StmtPtr inner =
            Stmt::make_for(ii, idx_const(0), c, std::move(main_body));
        StmtPtr outer =
            Stmt::make_for(io, idx_const(0), bound / c, {inner});
        ExprPtr tail_base = c * (bound / c);
        std::vector<StmtPtr> tail_body =
            block_subst(s->body(), s->iter(), tail_base + var(ii));
        StmtPtr tail_loop = Stmt::make_for(ii, idx_const(0), bound % c,
                                           std::move(tail_body));
        StmtPtr tail_stmt = tail_loop;
        if (tail == TailStrategy::CutAndGuard) {
            tail_stmt = Stmt::make_if(gt(bound % c, idx_const(0)),
                                      {tail_loop});
        }
        repl = {outer, tail_stmt};
        Path ip = lc.loc().path;
        ip.push_back({PathLabel::Body, 0});
        new_body_list = body_list(ip);
        break;
      }
    }

    ForwardFn rest = fwd_replace_range(parent, pos, pos + 1,
                                       static_cast<int>(repl.size()));
    ForwardFn fwd =
        fwd_relocate_list(body_list(lc.loc().path), new_body_list, rest);

    const auto& old_list = stmt_list_at(p, parent);
    std::vector<StmtPtr> nl(old_list.begin(), old_list.begin() + pos);
    nl.insert(nl.end(), repl.begin(), repl.end());
    nl.insert(nl.end(), old_list.begin() + pos + 1, old_list.end());
    return p->with_body(rebuild_list(p, parent, std::move(nl)), fwd,
                        "divide_loop");
}

ProcPtr
divide_loop(const ProcPtr& p, const std::string& loop_name, int64_t factor,
            const std::vector<std::string>& new_iters, TailStrategy tail)
{
    return divide_loop(p, p->find_loop(loop_name), factor, new_iters, tail);
}

ProcPtr
reorder_loops(const ProcPtr& p, const Cursor& loop)
{
    ScheduleStats::count_rewrite("reorder_loops");
    Cursor lc = expect_loop_cursor(p, loop);
    StmtPtr outer = lc.stmt();
    require(outer->body().size() == 1 &&
                outer->body()[0]->kind() == StmtKind::For,
            "reorder_loops: body must be exactly one nested loop");
    StmtPtr inner = outer->body()[0];
    require(!expr_uses(inner->lo(), outer->iter()) &&
                !expr_uses(inner->hi(), outer->iter()),
            "reorder_loops: inner bounds depend on outer iterator");
    Context ctx = Context::at(p, lc.loc().path);
    std::string why;
    require(loop_iterations_commute(ctx, outer, &why),
            "reorder_loops: iterations do not commute: " + why);

    StmtPtr new_inner = Stmt::make_for(outer->iter(), outer->lo(),
                                       outer->hi(), inner->body(),
                                       outer->loop_mode());
    StmtPtr new_outer = Stmt::make_for(inner->iter(), inner->lo(),
                                       inner->hi(), {new_inner},
                                       inner->loop_mode());
    return apply_replace_stmt_same_shape(p, lc.loc().path, new_outer,
                                         "reorder_loops");
}

ProcPtr
reorder_loops(const ProcPtr& p, const std::string& loop_name)
{
    return reorder_loops(p, p->find_loop(loop_name));
}

ProcPtr
divide_with_recompute(const ProcPtr& p, const Cursor& loop,
                      const ExprPtr& n_tiles, int64_t c,
                      const std::vector<std::string>& new_iters)
{
    ScheduleStats::count_rewrite("divide_with_recompute");
    require(new_iters.size() == 2,
            "divide_with_recompute: need [outer, inner] names");
    Cursor lc = expect_loop_cursor(p, loop);
    StmtPtr s = lc.stmt();
    require_zero_based(s, "divide_with_recompute");
    ensure_unused(p, new_iters[0]);
    ensure_unused(p, new_iters[1]);
    require(block_idempotent(s->body()),
            "divide_with_recompute: body must be idempotent");
    Context ctx = Context::at(p, lc.loc().path);
    ExprPtr bound = s->hi();
    require(ctx.prove_le(n_tiles * idx_const(c), bound),
            "divide_with_recompute: cannot prove n_tiles*c <= bound");
    std::string why;
    require(loop_iterations_commute(ctx, s, &why),
            "divide_with_recompute: iterations must commute: " + why);

    const std::string& io = new_iters[0];
    const std::string& ii = new_iters[1];
    ExprPtr new_idx = idx_const(c) * var(io) + var(ii);
    std::vector<StmtPtr> body = block_subst(s->body(), s->iter(), new_idx);
    ExprPtr inner_hi =
        idx_const(c) + bound - n_tiles * idx_const(c);
    StmtPtr inner = Stmt::make_for(ii, idx_const(0), inner_hi,
                                   std::move(body));
    StmtPtr outer = Stmt::make_for(io, idx_const(0), n_tiles, {inner});

    Path ip = lc.loc().path;
    ip.push_back({PathLabel::Body, 0});
    ForwardFn fwd = fwd_relocate_list(body_list(lc.loc().path),
                                      body_list(ip), fwd_identity());
    return p->with_body(rebuild_node(p, lc.loc().path, NodeRef(outer)), fwd,
                        "divide_with_recompute");
}

ProcPtr
mult_loops(const ProcPtr& p, const Cursor& outer, const std::string& new_iter)
{
    ScheduleStats::count_rewrite("mult_loops");
    Cursor lc = expect_loop_cursor(p, outer);
    StmtPtr s = lc.stmt();
    require(s->body().size() == 1 && s->body()[0]->kind() == StmtKind::For,
            "mult_loops: body must be exactly one nested loop");
    StmtPtr inner = s->body()[0];
    require_zero_based(s, "mult_loops");
    require_zero_based(inner, "mult_loops");
    Affine c = to_affine(inner->hi());
    require(c.is_const() && c.constant >= 1,
            "mult_loops: inner bound must be a positive constant");
    ensure_unused(p, new_iter);
    ExprPtr k = var(new_iter);
    ExprPtr cc = idx_const(c.constant);
    std::vector<StmtPtr> body = inner->body();
    body = block_subst(body, inner->iter(), k % cc);
    body = block_subst(body, s->iter(), k / cc);
    StmtPtr merged = Stmt::make_for(new_iter, idx_const(0), s->hi() * cc,
                                    std::move(body));
    // Paths: loopPath.body[0].body[j] -> loopPath.body[j].
    Path inner_path = lc.loc().path;
    inner_path.push_back({PathLabel::Body, 0});
    ForwardFn fwd = fwd_relocate_list(
        body_list(inner_path), body_list(lc.loc().path),
        fwd_invalidate_below(lc.loc().path));
    return p->with_body(rebuild_node(p, lc.loc().path, NodeRef(merged)), fwd,
                        "mult_loops");
}

ProcPtr
cut_loop(const ProcPtr& p, const Cursor& loop, const ExprPtr& e)
{
    ScheduleStats::count_rewrite("cut_loop");
    Cursor lc = expect_loop_cursor(p, loop);
    StmtPtr s = lc.stmt();
    Context ctx = Context::at(p, lc.loc().path);
    require(ctx.prove_le(s->lo(), e) && ctx.prove_le(e, s->hi()),
            "cut_loop: cutoff not provably within loop bounds");
    StmtPtr first = Stmt::make_for(s->iter(), s->lo(), e, s->body(),
                                   s->loop_mode());
    StmtPtr second = Stmt::make_for(s->iter(), e, s->hi(), s->body(),
                                    s->loop_mode());
    int pos = 0;
    ListAddr parent = list_addr_of(lc.loc().path, &pos);
    ForwardFn fwd = fwd_relocate_list(
        body_list(lc.loc().path), body_list(lc.loc().path),
        fwd_replace_range(parent, pos, pos + 1, 2));
    const auto& old_list = stmt_list_at(p, parent);
    std::vector<StmtPtr> nl(old_list.begin(), old_list.begin() + pos);
    nl.push_back(first);
    nl.push_back(second);
    nl.insert(nl.end(), old_list.begin() + pos + 1, old_list.end());
    return p->with_body(rebuild_list(p, parent, std::move(nl)), fwd,
                        "cut_loop");
}

ProcPtr
join_loops(const ProcPtr& p, const Cursor& loop1, const Cursor& loop2)
{
    ScheduleStats::count_rewrite("join_loops");
    Cursor c1 = expect_loop_cursor(p, loop1);
    Cursor c2 = expect_loop_cursor(p, loop2);
    StmtPtr s1 = c1.stmt();
    StmtPtr s2 = c2.stmt();
    int pos1 = 0;
    int pos2 = 0;
    ListAddr l1 = list_addr_of(c1.loc().path, &pos1);
    ListAddr l2 = list_addr_of(c2.loc().path, &pos2);
    require(l1.parent == l2.parent && l1.label == l2.label &&
                pos2 == pos1 + 1,
            "join_loops: loops must be adjacent");
    Context ctx = Context::at(p, c1.loc().path);
    require(ctx.prove_eq(s1->hi(), s2->lo()),
            "join_loops: first upper bound must equal second lower bound");
    require(s1->iter() == s2->iter() ||
                !block_binds_name(s2->body(), s1->iter()),
            "join_loops: '" + s1->iter() +
                "' is re-bound inside the second loop's body");
    std::vector<StmtPtr> b2 = block_subst(s2->body(), s2->iter(),
                                          var(s1->iter()));
    require(block_equal(s1->body(), b2),
            "join_loops: loop bodies are not identical");
    StmtPtr joined = Stmt::make_for(s1->iter(), s1->lo(), s2->hi(),
                                    s1->body(), s1->loop_mode());
    ForwardFn fwd = fwd_relocate_list(
        body_list(c1.loc().path), body_list(c1.loc().path),
        fwd_replace_range(l1, pos1, pos1 + 2, 1));
    const auto& old_list = stmt_list_at(p, l1);
    std::vector<StmtPtr> nl(old_list.begin(), old_list.begin() + pos1);
    nl.push_back(joined);
    nl.insert(nl.end(), old_list.begin() + pos1 + 2, old_list.end());
    return p->with_body(rebuild_list(p, l1, std::move(nl)), fwd,
                        "join_loops");
}

ProcPtr
shift_loop(const ProcPtr& p, const Cursor& loop, const ExprPtr& new_lo)
{
    ScheduleStats::count_rewrite("shift_loop");
    Cursor lc = expect_loop_cursor(p, loop);
    StmtPtr s = lc.stmt();
    Context ctx = Context::at(p, lc.loc().path);
    require(ctx.prove_ge0(new_lo),
            "shift_loop: new lower bound must be nonnegative");
    ExprPtr delta = new_lo - s->lo();
    std::vector<StmtPtr> body =
        block_subst(s->body(), s->iter(), var(s->iter()) - delta);
    StmtPtr shifted = Stmt::make_for(s->iter(), new_lo, s->hi() + delta,
                                     std::move(body), s->loop_mode());
    return apply_replace_stmt_same_shape(p, lc.loc().path, shifted,
                                         "shift_loop");
}

ProcPtr
fission(const ProcPtr& p, const Cursor& gap, int n_lifts)
{
    Cursor gc = expect_gap_cursor(p, gap);
    ProcPtr cur = p;
    CursorLoc loc = gc.loc();
    for (int lift = 0; lift < n_lifts; lift++) {
        ScheduleStats::count_rewrite("fission");
        int g = loc.path.back().index;
        ListAddr body_addr = list_addr_of(loc.path, &g);
        require(!body_addr.parent.empty(),
                "fission: gap is not inside a loop");
        StmtPtr loop_stmt = stmt_at(cur, body_addr.parent);
        require(loop_stmt->kind() == StmtKind::For,
                "fission: enclosing statement is not a loop");
        require(body_addr.label == PathLabel::Body,
                "fission: gap must be in a loop body");
        const auto& body = loop_stmt->body();
        int n = static_cast<int>(body.size());
        require(g > 0 && g < n, "fission: gap at the edge of the body");
        std::vector<StmtPtr> b1(body.begin(), body.begin() + g);
        std::vector<StmtPtr> b2(body.begin() + g, body.end());
        // Safety: the second half must not use allocations of the first.
        for (const auto& a : collect_allocs(b1)) {
            for (const auto& s : b2) {
                require(!stmt_uses(s, a),
                        "fission: second half depends on allocation '" + a +
                            "' in the first half");
            }
        }
        // Safety: no dependence from s2(i) to s1(i') for i' > i. We
        // check that accesses of b1 at iteration i1 and b2 at i2 cannot
        // conflict when i1 > i2.
        Context ctx = Context::at(cur, body_addr.parent);
        {
            auto accs1 = collect_accesses_block(b1);
            auto accs2 = collect_accesses_block(b2);
            const std::string& iter = loop_stmt->iter();
            std::string i1 = fresh_in(cur, iter + "$a");
            std::string i2 = fresh_in(cur, iter + "$b");
            for (const auto& a : accs1) {
                for (const auto& b : accs2) {
                    if (a.buf != b.buf)
                        continue;
                    if (a.kind == AccessKind::Read &&
                        b.kind == AccessKind::Read) {
                        continue;
                    }
                    if (a.kind == AccessKind::Reduce &&
                        b.kind == AccessKind::Reduce) {
                        continue;
                    }
                    bool conflict = true;
                    if (!a.whole_buffer && !b.whole_buffer &&
                        a.idx.size() == b.idx.size() && !a.idx.empty()) {
                        LinearSystem sys = ctx.system();
                        for (const auto& nm : {i1, i2}) {
                            sys.add_pred(Expr::make_binop(
                                BinOpKind::Ge, var(nm), loop_stmt->lo()));
                            sys.add_pred(Expr::make_binop(
                                BinOpKind::Lt, var(nm), loop_stmt->hi()));
                        }
                        sys.add_pred(Expr::make_binop(BinOpKind::Gt,
                                                      var(i1), var(i2)));
                        for (const auto& bd : a.binders) {
                            sys.add_pred(Expr::make_binop(
                                BinOpKind::Ge, var(bd.name),
                                expr_subst(bd.lo, iter, var(i1))));
                            sys.add_pred(Expr::make_binop(
                                BinOpKind::Lt, var(bd.name),
                                expr_subst(bd.hi, iter, var(i1))));
                        }
                        for (const auto& bd : b.binders) {
                            sys.add_pred(Expr::make_binop(
                                BinOpKind::Ge, var(bd.name),
                                expr_subst(bd.lo, iter, var(i2))));
                            sys.add_pred(Expr::make_binop(
                                BinOpKind::Lt, var(bd.name),
                                expr_subst(bd.hi, iter, var(i2))));
                        }
                        for (const auto& gd : a.guards)
                            sys.add_pred(expr_subst(gd, iter, var(i1)));
                        for (const auto& gd : b.guards)
                            sys.add_pred(expr_subst(gd, iter, var(i2)));
                        for (size_t d = 0; d < a.idx.size(); d++) {
                            sys.add_eq0(affine_sub(
                                to_affine(
                                    expr_subst(a.idx[d], iter, var(i1))),
                                to_affine(
                                    expr_subst(b.idx[d], iter, var(i2)))));
                        }
                        conflict = !sys.infeasible();
                    }
                    require(!conflict,
                            "fission: loop-carried dependence on '" +
                                a.buf + "' between the halves");
                }
            }
        }
        StmtPtr loop1 = loop_stmt->with_body(std::move(b1));
        StmtPtr loop2 = loop_stmt->with_body(std::move(b2));
        int pos = 0;
        ListAddr parent = list_addr_of(body_addr.parent, &pos);
        // Forwarding: body[j<g] stays in loop1; body[j>=g] -> loop2 at
        // index j-g; siblings after the loop shift by one.
        ForwardFn shift = fwd_replace_range(parent, pos, pos + 1, 2);
        ListAddr old_body = body_addr;
        ForwardFn fwd = [old_body, g, shift](const CursorLoc& l)
            -> std::optional<CursorLoc> {
            size_t d = old_body.parent.size();
            bool through = l.path.size() > d &&
                           l.path[d].label == old_body.label;
            for (size_t i = 0; i < d && through; i++) {
                if (!(l.path[i] == old_body.parent[i]))
                    through = false;
            }
            if (through) {
                CursorLoc out = l;
                int j = l.path[d].index;
                // Blocks straddling the gap are invalidated below.
                bool second = j >= g;
                if (second) {
                    out.path[d - 1].index += 1;  // loop2 = next sibling
                    out.path[d].index = j - g;
                    if (l.kind == CursorKind::Block &&
                        l.path.size() == d + 1) {
                        if (l.hi <= g)
                            return l;  // handled below
                        out.hi = l.hi - g;
                    }
                }
                // Blocks straddling the gap are invalidated.
                if (l.kind == CursorKind::Block && l.path.size() == d + 1 &&
                    j < g && l.hi > g) {
                    return std::nullopt;
                }
                return out;
            }
            return shift(l);
        };
        const auto& old_list = stmt_list_at(cur, parent);
        std::vector<StmtPtr> nl(old_list.begin(), old_list.begin() + pos);
        nl.push_back(loop1);
        nl.push_back(loop2);
        nl.insert(nl.end(), old_list.begin() + pos + 1, old_list.end());
        cur = cur->with_body(rebuild_list(cur, parent, std::move(nl)), fwd,
                             "fission");
        // Next lift: the gap between loop1 and loop2.
        loc.kind = CursorKind::Gap;
        loc.path = body_addr.parent;
        loc.path.back().index = pos + 1;
        loc.hi = -1;
    }
    return cur;
}

ProcPtr
remove_loop(const ProcPtr& p, const Cursor& loop)
{
    ScheduleStats::count_rewrite("remove_loop");
    Cursor lc = expect_loop_cursor(p, loop);
    StmtPtr s = lc.stmt();
    require(block_idempotent(s->body()),
            "remove_loop: loop body must be idempotent");
    for (const auto& st : s->body()) {
        require(!stmt_uses(st, s->iter()),
                "remove_loop: body depends on the loop iterator");
    }
    Context ctx = Context::at(p, lc.loc().path);
    if (!ctx.prove_lt(s->lo(), s->hi())) {
        // Zero-trip escape hatch: if every write targets a local
        // allocation (whose pre-write contents are undefined), running
        // the body once when the loop would have run zero times only
        // refines undefined values and is unobservable.
        for (const auto& acc : collect_accesses_block(s->body())) {
            if (acc.kind == AccessKind::Read)
                continue;
            require(p->find_arg(acc.buf) == nullptr &&
                        acc.buf.rfind("$cfg:", 0) != 0,
                    "remove_loop: cannot prove the loop executes at "
                    "least once (writes non-local '" +
                        acc.buf + "')");
        }
    }
    return apply_unwrap(p, lc.loc().path, s->body(), "remove_loop");
}

ProcPtr
add_loop(const ProcPtr& p, const Cursor& stmt, const std::string& iter,
         const ExprPtr& hi, bool guard)
{
    ScheduleStats::count_rewrite("add_loop");
    Cursor sc = expect_stmt_cursor(p, stmt);
    ensure_unused(p, iter);
    if (!guard) {
        require(stmt_idempotent(sc.stmt()),
                "add_loop: statement must be idempotent without a guard");
    }
    Context ctx = Context::at(p, sc.loc().path);
    require(ctx.prove_ge0(hi - idx_const(1)),
            "add_loop: loop bound must be positive");
    int pos = 0;
    ListAddr parent = list_addr_of(sc.loc().path, &pos);
    // The loop body opens a new scope: an Alloc being wrapped must not
    // be referenced after the wrapped statement.
    require_binders_do_not_escape(p, parent, pos, pos + 1, "add_loop");
    // Batched: guard wrap + loop wrap commit as one version.
    EditBatch batch(p);
    if (guard) {
        batch.wrap(parent, pos, pos + 1, [&](std::vector<StmtPtr> block) {
            return Stmt::make_if(eq(var(iter), idx_const(0)),
                                 std::move(block));
        });
    }
    batch.wrap(parent, pos, pos + 1, [&](std::vector<StmtPtr> block) {
        return Stmt::make_for(iter, idx_const(0), hi, std::move(block));
    });
    return batch.commit("add_loop");
}

ProcPtr
unroll_loop(const ProcPtr& p, const Cursor& loop)
{
    ScheduleStats::count_rewrite("unroll_loop");
    Cursor lc = expect_loop_cursor(p, loop);
    StmtPtr s = lc.stmt();
    Affine lo = to_affine(s->lo());
    Affine hi = to_affine(s->hi());
    require(lo.is_const() && hi.is_const(),
            "unroll_loop: bounds must be constants");
    require(hi.constant - lo.constant > 0,
            "unroll_loop: trip count must be positive");
    int64_t trips = hi.constant - lo.constant;
    require(trips <= 1024, "unroll_loop: trip count too large to unroll");
    std::vector<StmtPtr> out;
    for (int64_t k = 0; k < trips; k++) {
        auto copy =
            block_subst(s->body(), s->iter(), idx_const(lo.constant + k));
        out.insert(out.end(), copy.begin(), copy.end());
    }
    int pos = 0;
    ListAddr parent = list_addr_of(lc.loc().path, &pos);
    ForwardFn fwd = fwd_unwrap(parent, pos, static_cast<int>(out.size()));
    const auto& old_list = stmt_list_at(p, parent);
    std::vector<StmtPtr> nl(old_list.begin(), old_list.begin() + pos);
    nl.insert(nl.end(), out.begin(), out.end());
    nl.insert(nl.end(), old_list.begin() + pos + 1, old_list.end());
    return p->with_body(rebuild_list(p, parent, std::move(nl)), fwd,
                        "unroll_loop");
}

ProcPtr
unroll_loop(const ProcPtr& p, const std::string& loop_name)
{
    return unroll_loop(p, p->find_loop(loop_name));
}

}  // namespace exo2
