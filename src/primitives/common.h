#ifndef EXO2_PRIMITIVES_COMMON_H_
#define EXO2_PRIMITIVES_COMMON_H_

/**
 * @file
 * Shared machinery for scheduling primitives: rewrite accounting
 * (Fig. 9b's metric), safety-check helpers, fresh-name management,
 * buffer access rewriting, and forwarding helpers.
 */

#include <functional>
#include <string>
#include <vector>

#include "src/analysis/context.h"
#include "src/cursor/cursor.h"
#include "src/cursor/edits.h"
#include "src/ir/errors.h"

namespace exo2 {

/**
 * Global accounting of primitive rewrites, reproducing the paper's
 * "number of primitive rewrites" metric (Fig. 9b). Every primitive
 * application increments the counter.
 */
class ScheduleStats
{
  public:
    static void count_rewrite(const std::string& primitive);
    static int64_t rewrites();
    static void reset();
};

/** Throw SchedulingError with `msg` when `cond` is false. */
void require(bool cond, const std::string& msg);

/** All names bound anywhere in the proc (args, allocs, iterators). */
std::vector<std::string> used_names(const ProcPtr& p);

/** Throw if `name` is already used in `p`. */
void ensure_unused(const ProcPtr& p, const std::string& name);

/** A fresh variant of `base` unused in `p` (base, base_1, base_2...). */
std::string fresh_in(const ProcPtr& p, const std::string& base);

/**
 * Forward `c` to `p` and require it to be a statement node cursor.
 * (Implicit forwarding of Section 5.2: every primitive forwards its
 * cursor arguments to the input procedure's reference frame.)
 */
Cursor expect_stmt_cursor(const ProcPtr& p, const Cursor& c);

/** Forward and require a For statement cursor. */
Cursor expect_loop_cursor(const ProcPtr& p, const Cursor& c);

/** Forward and require a gap cursor. */
Cursor expect_gap_cursor(const ProcPtr& p, const Cursor& c);

/**
 * Require that no Alloc/WindowDecl at the top level of `list[lo, hi)`
 * binds a name still used by `list[hi, end)`. Primitives that narrow a
 * statement range's scope (wrapping it in a new For/If: specialize,
 * add_loop) must call this, or the binder would be captured by the new
 * scope and later uses left dangling.
 */
void require_binders_do_not_escape(const ProcPtr& p, const ListAddr& addr,
                                   int lo, int hi, const std::string& who);

/**
 * Like `stmt_uses`, but shadowing-aware: a use under a re-declaration
 * of `name` (Alloc/WindowDecl in a nested block, or a For iterator of
 * the same name) refers to a different binder and does not count, and
 * a bare re-declaration itself is not a use. Primitives that grow a
 * binder's scope (lift_alloc) use this to detect capture.
 */
bool stmt_uses_unshadowed(const StmtPtr& s, const std::string& name);

/**
 * Whether any statement in `b` (recursively) binds `name` — as a For
 * iterator or an Alloc/WindowDecl. Substituting an expression that
 * reads `name` into such a block would capture those references;
 * primitives that rename iterators across blocks (fuse, join_loops)
 * must reject this.
 */
bool block_binds_name(const std::vector<StmtPtr>& b,
                      const std::string& name);

/**
 * Relocate forwarding: the statement list `old_list` moved wholesale to
 * `new_list` (same length and order); locations under it keep their
 * relative position, all other locations are forwarded by `rest`.
 */
ForwardFn fwd_relocate_list(ListAddr old_list, ListAddr new_list,
                            ForwardFn rest);

/**
 * Rewrite every access to buffer `name` in a statement:
 * `point_fn` maps point index vectors, `window_fn` maps window dims
 * (both must handle the buffer's access arity). Null fns mean identity.
 */
using PointRewriteFn =
    std::function<std::vector<ExprPtr>(const std::vector<ExprPtr>&)>;
using WindowRewriteFn =
    std::function<std::vector<WindowDim>(const std::vector<WindowDim>&)>;

StmtPtr rewrite_buffer_access(const StmtPtr& s, const std::string& name,
                              const PointRewriteFn& point_fn,
                              const WindowRewriteFn& window_fn);

std::vector<StmtPtr> rewrite_buffer_access_block(
    const std::vector<StmtPtr>& b, const std::string& name,
    const PointRewriteFn& point_fn, const WindowRewriteFn& window_fn);

/** Rename buffer `old_name` to `new_name` in reads and writes. */
StmtPtr rename_buffer(const StmtPtr& s, const std::string& old_name,
                      const std::string& new_name);

/**
 * Visit every access (Read / Window / write target) of buffer `name`
 * under `s`, with the Context at that access point. Used by primitives
 * that must prove per-access facts (expand_dim, resize_dim, stage_mem).
 * The visitor receives point index expressions (windows are reported
 * once per dim pair via lo and hi-1 points).
 */
void visit_buffer_accesses(
    const ProcPtr& p, const Path& root, const std::string& name,
    const std::function<void(const Context&, const std::vector<ExprPtr>&)>&
        visit);

/**
 * Visit accesses of buffer `name` within the scope of the allocation
 * at `alloc_path` (the statements following it in its list).
 */
void visit_alloc_scope_accesses(
    const ProcPtr& p, const Path& alloc_path, const std::string& name,
    const std::function<void(const Context&, const std::vector<ExprPtr>&)>&
        visit);

/** Visit accesses of one statement under an explicit base context. */
void visit_stmt_buffer_accesses(
    const Context& base, const StmtPtr& s, const std::string& name,
    const std::function<void(const Context&, const std::vector<ExprPtr>&)>&
        visit);

}  // namespace exo2

#endif  // EXO2_PRIMITIVES_COMMON_H_
