#include "src/primitives/buffers.h"

#include "src/analysis/effects.h"
#include "src/ir/builder.h"
#include "src/ir/errors.h"
#include "src/ir/printer.h"
#include "src/primitives/simplify.h"

namespace exo2 {

namespace {

/** Forward + check that the cursor denotes an Alloc statement. */
Cursor
expect_alloc_cursor(const ProcPtr& p, const Cursor& c)
{
    Cursor f = expect_stmt_cursor(p, c);
    require(f.stmt()->kind() == StmtKind::Alloc,
            "expected an allocation cursor");
    return f;
}

/** Any statement in the list suffix after `pos` touching `name`? */
bool
used_after(const std::vector<StmtPtr>& list, int pos,
           const std::string& name)
{
    for (size_t i = static_cast<size_t>(pos) + 1; i < list.size(); i++) {
        if (stmt_uses(list[i], name))
            return true;
    }
    return false;
}

}  // namespace

ProcPtr
lift_alloc(const ProcPtr& p, const Cursor& alloc, int n_lifts)
{
    ProcPtr cur = p;
    Cursor ac = expect_alloc_cursor(cur, alloc);
    for (int k = 0; k < n_lifts; k++) {
        ScheduleStats::count_rewrite("lift_alloc");
        ac = expect_alloc_cursor(cur, ac);
        StmtPtr s = ac.stmt();
        int pos = 0;
        ListAddr addr = list_addr_of(ac.loc().path, &pos);
        require(!addr.parent.empty(),
                "lift_alloc: allocation is already at the top level");
        StmtPtr parent = stmt_at(cur, addr.parent);
        if (parent->kind() == StmtKind::For) {
            for (const auto& d : s->dims()) {
                require(!expr_uses(d, parent->iter()),
                        "lift_alloc: dimension depends on loop iterator");
            }
        }
        int ppos = 0;
        ListAddr paddr = list_addr_of(addr.parent, &ppos);
        // Anti-capture: lifting grows the alloc's scope to the whole
        // parent statement and the parent's later siblings. Any
        // pre-existing reference to the name there binds to a different
        // declaration and would be captured by the lifted alloc.
        {
            const auto& list = stmt_list_at(cur, addr);
            for (int i = 0; i < pos; i++) {
                require(!stmt_uses(list[i], s->name()),
                        "lift_alloc: '" + s->name() +
                            "' is referenced (or re-declared) before the "
                            "allocation; lifting would capture it");
            }
            require(!(parent->cond() && expr_uses(parent->cond(),
                                                  s->name())) &&
                        !(parent->lo() && expr_uses(parent->lo(),
                                                    s->name())) &&
                        !(parent->hi() && expr_uses(parent->hi(),
                                                    s->name())),
                    "lift_alloc: parent header references '" + s->name() +
                        "'");
            const auto& other = addr.label == PathLabel::Body
                                    ? parent->orelse()
                                    : parent->body();
            for (const auto& st : other) {
                require(!stmt_uses_unshadowed(st, s->name()),
                        "lift_alloc: '" + s->name() +
                            "' is used in the parent's other branch; "
                            "lifting would capture it");
                if ((st->kind() == StmtKind::Alloc ||
                     st->kind() == StmtKind::WindowDecl) &&
                    st->name() == s->name()) {
                    break;  // shadowed from here on
                }
            }
            const auto& plist = stmt_list_at(cur, paddr);
            for (size_t i = static_cast<size_t>(ppos) + 1;
                 i < plist.size(); i++) {
                require(!stmt_uses_unshadowed(plist[i], s->name()),
                        "lift_alloc: '" + s->name() +
                            "' is used after the parent statement; "
                            "lifting would capture it");
                if ((plist[i]->kind() == StmtKind::Alloc ||
                     plist[i]->kind() == StmtKind::WindowDecl) &&
                    plist[i]->name() == s->name()) {
                    break;
                }
            }
        }
        ProcPtr next =
            apply_move(cur, addr, pos, pos + 1, paddr, ppos, "lift_alloc");
        ac = next->forward(ac);
        cur = next;
    }
    return cur;
}

ProcPtr
sink_alloc(const ProcPtr& p, const Cursor& alloc)
{
    ScheduleStats::count_rewrite("sink_alloc");
    Cursor ac = expect_alloc_cursor(p, alloc);
    StmtPtr s = ac.stmt();
    int pos = 0;
    ListAddr addr = list_addr_of(ac.loc().path, &pos);
    const auto& list = stmt_list_at(p, addr);
    require(pos + 1 < static_cast<int>(list.size()),
            "sink_alloc: nothing follows the allocation");
    StmtPtr target = list[static_cast<size_t>(pos) + 1];
    require(target->kind() == StmtKind::For ||
                target->kind() == StmtKind::If,
            "sink_alloc: next statement is not a For or If");
    require(!used_after(list, pos + 1, s->name()),
            "sink_alloc: buffer used outside the target scope");
    // The alloc lands at the start of the target's *then/body* block:
    // uses in the target's header expressions or its else branch would
    // be left outside the new scope (found by the tri-oracle after
    // specialize duplicated uses into both branches).
    require(!(target->cond() && expr_uses(target->cond(), s->name())) &&
                !(target->lo() && expr_uses(target->lo(), s->name())) &&
                !(target->hi() && expr_uses(target->hi(), s->name())),
            "sink_alloc: target header reads '" + s->name() + "'");
    for (const auto& st : target->orelse()) {
        require(!stmt_uses_unshadowed(st, s->name()),
                "sink_alloc: '" + s->name() +
                    "' is used in the target's else branch");
        if ((st->kind() == StmtKind::Alloc ||
             st->kind() == StmtKind::WindowDecl) &&
            st->name() == s->name()) {
            break;  // re-declared: the rest of the branch is shadowed
        }
    }
    // Destination: start of target body (post-deletion coords: target is
    // at `pos` after removing the alloc).
    Path tpath = addr.parent;
    tpath.push_back({addr.label, pos});
    ListAddr dst{tpath, PathLabel::Body};
    return apply_move(p, addr, pos, pos + 1, dst, 0, "sink_alloc");
}

ProcPtr
delete_buffer(const ProcPtr& p, const Cursor& alloc)
{
    ScheduleStats::count_rewrite("delete_buffer");
    Cursor ac = expect_alloc_cursor(p, alloc);
    StmtPtr s = ac.stmt();
    int pos = 0;
    ListAddr addr = list_addr_of(ac.loc().path, &pos);
    const auto& list = stmt_list_at(p, addr);
    require(!used_after(list, pos, s->name()),
            "delete_buffer: buffer '" + s->name() + "' is not dead");
    return apply_erase(p, addr, pos, pos + 1, "delete_buffer");
}

ProcPtr
reuse_buffer(const ProcPtr& p, const Cursor& a_alloc, const Cursor& b_alloc)
{
    ScheduleStats::count_rewrite("reuse_buffer");
    Cursor ac = expect_alloc_cursor(p, a_alloc);
    Cursor bc = expect_alloc_cursor(p, b_alloc);
    StmtPtr sa = ac.stmt();
    StmtPtr sb = bc.stmt();
    require(sa->type() == sb->type(),
            "reuse_buffer: element types differ");
    require(sa->dims().size() == sb->dims().size(),
            "reuse_buffer: ranks differ");
    Context ctx = Context::at(p, bc.loc().path);
    for (size_t i = 0; i < sa->dims().size(); i++) {
        require(ctx.prove_eq(sa->dims()[i], sb->dims()[i]),
                "reuse_buffer: dimension sizes differ");
    }
    int bpos = 0;
    ListAddr baddr = list_addr_of(bc.loc().path, &bpos);
    const auto& list = stmt_list_at(p, baddr);
    // `a` must be dead after b's allocation (we are about to clobber it).
    require(!used_after(list, bpos, sa->name()),
            "reuse_buffer: '" + sa->name() + "' is still live");
    std::vector<StmtPtr> repl;
    bool shadowed = false;
    for (size_t i = static_cast<size_t>(bpos) + 1; i < list.size(); i++) {
        if (shadowed) {
            repl.push_back(list[i]);
            continue;
        }
        repl.push_back(rename_buffer(list[i], sb->name(), sa->name()));
        if ((list[i]->kind() == StmtKind::Alloc ||
             list[i]->kind() == StmtKind::WindowDecl) &&
            list[i]->name() == sb->name()) {
            shadowed = true;  // re-declared: rest refers to the new binder
        }
    }
    return apply_replace_range(p, baddr, bpos,
                               static_cast<int>(list.size()),
                               std::move(repl), "reuse_buffer");
}

namespace {

/**
 * Rewrite all accesses to the alloc'd buffer in its scope (the suffix
 * of its containing list) and replace the Alloc with `new_alloc`.
 * `allow_windows` guards primitives that cannot translate windows.
 */
ProcPtr
rewrite_alloc_and_scope(const ProcPtr& p, const Cursor& ac,
                        StmtPtr new_alloc, const PointRewriteFn& point_fn,
                        const WindowRewriteFn& window_fn,
                        const std::string& action)
{
    int pos = 0;
    ListAddr addr = list_addr_of(ac.loc().path, &pos);
    const auto& list = stmt_list_at(p, addr);
    const std::string name = new_alloc->name();
    std::vector<StmtPtr> repl;
    repl.push_back(std::move(new_alloc));
    bool shadowed = false;
    for (size_t i = static_cast<size_t>(pos) + 1; i < list.size(); i++) {
        if (shadowed) {
            // A re-declaration (e.g. the duplicate Alloc an unroll
            // copies into this list) shadows ours for the rest.
            repl.push_back(list[i]);
            continue;
        }
        repl.push_back(
            rewrite_buffer_access(list[i], name, point_fn, window_fn));
        if ((list[i]->kind() == StmtKind::Alloc ||
             list[i]->kind() == StmtKind::WindowDecl) &&
            list[i]->name() == name) {
            shadowed = true;
        }
    }
    // Shape is preserved for all statements (indices rewritten in
    // place): keep cursors stable.
    auto body = rebuild_list(p, addr, [&] {
        std::vector<StmtPtr> nl(list.begin(), list.begin() + pos);
        nl.insert(nl.end(), repl.begin(), repl.end());
        return nl;
    }());
    return p->with_body(std::move(body), fwd_identity(), action);
}

}  // namespace

ProcPtr
resize_dim(const ProcPtr& p, const Cursor& alloc, int dim, const ExprPtr& sz,
           const ExprPtr& off)
{
    ScheduleStats::count_rewrite("resize_dim");
    Cursor ac = expect_alloc_cursor(p, alloc);
    StmtPtr s = ac.stmt();
    require(dim >= 0 && dim < static_cast<int>(s->dims().size()),
            "resize_dim: dimension out of range");
    // Every access to this dim must stay within [off, off + sz).
    bool ok = true;
    std::string bad;
    visit_alloc_scope_accesses(
        p, ac.loc().path, s->name(),
        [&](const Context& ctx, const std::vector<ExprPtr>& idx) {
            if (static_cast<size_t>(dim) >= idx.size())
                return;
            const ExprPtr& e = idx[static_cast<size_t>(dim)];
            if (!ctx.prove_le(off, e) ||
                !ctx.prove_lt(e, off + sz)) {
                ok = false;
                bad = print_expr(e);
            }
        });
    require(ok, "resize_dim: access '" + bad +
                    "' not provably within the resized bounds");
    auto dims = s->dims();
    dims[static_cast<size_t>(dim)] = sz;
    StmtPtr new_alloc = s->with_dims(std::move(dims));
    bool shift = !affine_is_zero(to_affine(off));
    PointRewriteFn point_fn = nullptr;
    WindowRewriteFn window_fn = nullptr;
    if (shift) {
        point_fn = [dim, off](const std::vector<ExprPtr>& idx) {
            auto out = idx;
            if (static_cast<size_t>(dim) < out.size()) {
                out[static_cast<size_t>(dim)] =
                    out[static_cast<size_t>(dim)] - off;
            }
            return out;
        };
        window_fn = [dim, off](const std::vector<WindowDim>& dims_in) {
            auto out = dims_in;
            if (static_cast<size_t>(dim) < out.size()) {
                out[static_cast<size_t>(dim)].lo =
                    out[static_cast<size_t>(dim)].lo - off;
                if (out[static_cast<size_t>(dim)].hi) {
                    out[static_cast<size_t>(dim)].hi =
                        out[static_cast<size_t>(dim)].hi - off;
                }
            }
            return out;
        };
    }
    return rewrite_alloc_and_scope(p, ac, new_alloc, point_fn, window_fn,
                                   "resize_dim");
}

ProcPtr
expand_dim(const ProcPtr& p, const Cursor& alloc, const ExprPtr& sz,
           const ExprPtr& idx)
{
    ScheduleStats::count_rewrite("expand_dim");
    Cursor ac = expect_alloc_cursor(p, alloc);
    StmtPtr s = ac.stmt();
    bool ok = true;
    visit_alloc_scope_accesses(
        p, ac.loc().path, s->name(),
        [&](const Context& ctx, const std::vector<ExprPtr>& unused) {
            (void)unused;
            if (!ctx.prove_ge0(idx) || !ctx.prove_lt(idx, sz))
                ok = false;
        });
    require(ok,
            "expand_dim: cannot prove 0 <= " + print_expr(idx) + " < " +
                print_expr(sz) + " at every access");
    Context actx = Context::at(p, ac.loc().path);
    require(actx.prove_ge0(sz - idx_const(1)),
            "expand_dim: size must be positive");
    std::vector<ExprPtr> dims;
    dims.push_back(sz);
    for (const auto& d : s->dims())
        dims.push_back(d);
    StmtPtr new_alloc = s->with_dims(std::move(dims));
    PointRewriteFn point_fn = [idx](const std::vector<ExprPtr>& old) {
        std::vector<ExprPtr> out;
        out.push_back(idx);
        out.insert(out.end(), old.begin(), old.end());
        return out;
    };
    WindowRewriteFn window_fn = [idx](const std::vector<WindowDim>& old) {
        std::vector<WindowDim> out;
        out.push_back(WindowDim{idx, nullptr});
        out.insert(out.end(), old.begin(), old.end());
        return out;
    };
    return rewrite_alloc_and_scope(p, ac, new_alloc, point_fn, window_fn,
                                   "expand_dim");
}

ProcPtr
rearrange_dim(const ProcPtr& p, const Cursor& alloc,
              const std::vector<int>& perm)
{
    ScheduleStats::count_rewrite("rearrange_dim");
    Cursor ac = expect_alloc_cursor(p, alloc);
    StmtPtr s = ac.stmt();
    size_t n = s->dims().size();
    require(perm.size() == n, "rearrange_dim: permutation arity mismatch");
    std::vector<bool> seen(n, false);
    for (int x : perm) {
        require(x >= 0 && static_cast<size_t>(x) < n && !seen[x],
                "rearrange_dim: invalid permutation");
        seen[static_cast<size_t>(x)] = true;
    }
    std::vector<ExprPtr> dims;
    for (int x : perm)
        dims.push_back(s->dims()[static_cast<size_t>(x)]);
    StmtPtr new_alloc = s->with_dims(std::move(dims));
    PointRewriteFn point_fn = [perm, n](const std::vector<ExprPtr>& old) {
        if (old.size() != n)
            throw SchedulingError("rearrange_dim: partial access");
        std::vector<ExprPtr> out;
        for (int x : perm)
            out.push_back(old[static_cast<size_t>(x)]);
        return out;
    };
    WindowRewriteFn window_fn = [perm, n](const std::vector<WindowDim>& old) {
        if (old.size() != n)
            throw SchedulingError("rearrange_dim: partial window");
        std::vector<WindowDim> out;
        for (int x : perm)
            out.push_back(old[static_cast<size_t>(x)]);
        return out;
    };
    return rewrite_alloc_and_scope(p, ac, new_alloc, point_fn, window_fn,
                                   "rearrange_dim");
}

ProcPtr
divide_dim(const ProcPtr& p, const Cursor& alloc, int dim, int64_t c)
{
    ScheduleStats::count_rewrite("divide_dim");
    require(c >= 1, "divide_dim: factor must be >= 1");
    Cursor ac = expect_alloc_cursor(p, alloc);
    StmtPtr s = ac.stmt();
    require(dim >= 0 && dim < static_cast<int>(s->dims().size()),
            "divide_dim: dimension out of range");
    Context ctx = Context::at(p, ac.loc().path);
    ExprPtr dsz = s->dims()[static_cast<size_t>(dim)];
    require(ctx.prove_divisible(dsz, c),
            "divide_dim: dimension size not divisible by " +
                std::to_string(c));
    std::vector<ExprPtr> dims;
    for (size_t i = 0; i < s->dims().size(); i++) {
        if (static_cast<int>(i) == dim) {
            dims.push_back(simplify_expr(ctx, s->dims()[i] / idx_const(c)));
            dims.push_back(idx_const(c));
        } else {
            dims.push_back(s->dims()[i]);
        }
    }
    StmtPtr new_alloc = s->with_dims(std::move(dims));
    PointRewriteFn point_fn = [dim, c](const std::vector<ExprPtr>& old) {
        std::vector<ExprPtr> out;
        for (size_t i = 0; i < old.size(); i++) {
            if (static_cast<int>(i) == dim) {
                out.push_back(old[i] / idx_const(c));
                out.push_back(old[i] % idx_const(c));
            } else {
                out.push_back(old[i]);
            }
        }
        return out;
    };
    WindowRewriteFn window_fn = [](const std::vector<WindowDim>&)
        -> std::vector<WindowDim> {
        throw SchedulingError(
            "divide_dim: buffer is already windowed; divide before "
            "introducing windows");
    };
    return rewrite_alloc_and_scope(p, ac, new_alloc, point_fn, window_fn,
                                   "divide_dim");
}

ProcPtr
divide_dim(const ProcPtr& p, const std::string& buf_name, int dim, int64_t c)
{
    return divide_dim(p, p->find_alloc(buf_name), dim, c);
}

ProcPtr
mult_dim(const ProcPtr& p, const Cursor& alloc, int dim)
{
    ScheduleStats::count_rewrite("mult_dim");
    Cursor ac = expect_alloc_cursor(p, alloc);
    StmtPtr s = ac.stmt();
    require(dim >= 0 && dim + 1 < static_cast<int>(s->dims().size()),
            "mult_dim: need two adjacent dimensions");
    Affine c = to_affine(s->dims()[static_cast<size_t>(dim) + 1]);
    require(c.is_const() && c.constant >= 1,
            "mult_dim: second dimension must be a positive constant");
    int64_t cc = c.constant;
    std::vector<ExprPtr> dims;
    for (size_t i = 0; i < s->dims().size(); i++) {
        if (static_cast<int>(i) == dim) {
            dims.push_back(s->dims()[i] * idx_const(cc));
        } else if (static_cast<int>(i) == dim + 1) {
            continue;
        } else {
            dims.push_back(s->dims()[i]);
        }
    }
    StmtPtr new_alloc = s->with_dims(std::move(dims));
    PointRewriteFn point_fn = [dim, cc](const std::vector<ExprPtr>& old) {
        std::vector<ExprPtr> out;
        for (size_t i = 0; i < old.size(); i++) {
            if (static_cast<int>(i) == dim) {
                out.push_back(old[i] * idx_const(cc) + old[i + 1]);
                i++;  // skip merged dim
            } else {
                out.push_back(old[i]);
            }
        }
        return out;
    };
    WindowRewriteFn window_fn = [](const std::vector<WindowDim>&)
        -> std::vector<WindowDim> {
        throw SchedulingError("mult_dim: windowed buffers not supported");
    };
    return rewrite_alloc_and_scope(p, ac, new_alloc, point_fn, window_fn,
                                   "mult_dim");
}

namespace {

/** Rewrite `name[k, rest...] -> name_k[rest...]` throughout an expr. */
ExprPtr
split_buffer_expr(const ExprPtr& e, const std::string& name,
                  const std::vector<std::string>& names)
{
    if (!e)
        return e;
    if (e->kind() == ExprKind::Read && e->name() == name &&
        !e->idx().empty()) {
        Affine a0 = to_affine(e->idx()[0]);
        require(a0.is_const() &&
                    a0.constant >= 0 &&
                    a0.constant < static_cast<int64_t>(names.size()),
                "unroll_buffer: non-constant index in dimension 0");
        std::vector<ExprPtr> rest;
        for (size_t i = 1; i < e->idx().size(); i++) {
            rest.push_back(split_buffer_expr(e->idx()[i], name, names));
        }
        return Expr::make_read(names[static_cast<size_t>(a0.constant)],
                               std::move(rest), e->type());
    }
    auto kids = e->children();
    bool changed = false;
    for (auto& k : kids) {
        auto nk = split_buffer_expr(k, name, names);
        if (nk != k) {
            changed = true;
            k = nk;
        }
    }
    return changed ? e->with_children(std::move(kids)) : e;
}

StmtPtr
split_buffer_stmt(const StmtPtr& s, const std::string& name,
                  const std::vector<std::string>& names)
{
    auto rw = [&](const ExprPtr& e) {
        return split_buffer_expr(e, name, names);
    };
    StmtPtr out = s;
    switch (s->kind()) {
      case StmtKind::Assign:
      case StmtKind::Reduce: {
        std::vector<ExprPtr> idx;
        for (const auto& i : s->idx())
            idx.push_back(rw(i));
        if (s->name() == name) {
            require(!idx.empty(), "unroll_buffer: scalar access");
            Affine a0 = to_affine(idx[0]);
            require(a0.is_const() && a0.constant >= 0 &&
                        a0.constant < static_cast<int64_t>(names.size()),
                    "unroll_buffer: non-constant write index");
            std::vector<ExprPtr> rest(idx.begin() + 1, idx.end());
            return out->with_name(names[static_cast<size_t>(a0.constant)])
                ->with_idx(std::move(rest))
                ->with_rhs(rw(s->rhs()));
        }
        return out->with_idx(std::move(idx))->with_rhs(rw(s->rhs()));
      }
      case StmtKind::For: {
        std::vector<StmtPtr> body;
        for (const auto& c : s->body())
            body.push_back(split_buffer_stmt(c, name, names));
        return out->with_bounds(rw(s->lo()), rw(s->hi()))
            ->with_body(std::move(body));
      }
      case StmtKind::If: {
        std::vector<StmtPtr> body;
        for (const auto& c : s->body())
            body.push_back(split_buffer_stmt(c, name, names));
        std::vector<StmtPtr> orelse;
        for (const auto& c : s->orelse())
            orelse.push_back(split_buffer_stmt(c, name, names));
        return out->with_cond(rw(s->cond()))
            ->with_body(std::move(body))
            ->with_orelse(std::move(orelse));
      }
      case StmtKind::Call: {
        require(!stmt_uses(s, name),
                "unroll_buffer: buffer passed to a call");
        return out;
      }
      default:
        return out;
    }
}

}  // namespace

ProcPtr
unroll_buffer(const ProcPtr& p, const Cursor& alloc, int dim)
{
    ScheduleStats::count_rewrite("unroll_buffer");
    Cursor ac = expect_alloc_cursor(p, alloc);
    StmtPtr s = ac.stmt();
    require(dim == 0, "unroll_buffer: only dimension 0 is supported");
    require(!s->dims().empty(), "unroll_buffer: scalar buffer");
    Affine c = to_affine(s->dims()[0]);
    require(c.is_const() && c.constant >= 1 && c.constant <= 64,
            "unroll_buffer: dimension must be a small constant");
    int64_t n = c.constant;
    std::vector<ExprPtr> rest(s->dims().begin() + 1, s->dims().end());
    int pos = 0;
    ListAddr addr = list_addr_of(ac.loc().path, &pos);
    const auto& list = stmt_list_at(p, addr);
    std::vector<std::string> names;
    std::vector<StmtPtr> repl;
    for (int64_t k = 0; k < n; k++) {
        std::string nm = s->name() + "_" + std::to_string(k);
        ensure_unused(p, nm);
        names.push_back(nm);
        repl.push_back(Stmt::make_alloc(nm, s->type(), rest, s->mem()));
    }
    for (size_t i = static_cast<size_t>(pos) + 1; i < list.size(); i++)
        repl.push_back(split_buffer_stmt(list[i], s->name(), names));
    return apply_replace_range(p, addr, pos, static_cast<int>(list.size()),
                               std::move(repl), "unroll_buffer");
}

ProcPtr
bind_expr(const ProcPtr& p, const Cursor& e, const std::string& new_name,
          bool cse)
{
    ScheduleStats::count_rewrite("bind_expr");
    Cursor ec = p->forward(e);
    require(ec.is_valid() && ec.kind() == CursorKind::Node,
            "bind_expr: expected an expression cursor");
    ExprPtr expr = ec.expr();
    require(is_numeric(expr->type()),
            "bind_expr: can only bind numeric expressions");
    ensure_unused(p, new_name);
    // Find the enclosing statement: longest prefix ending in a
    // stmt-list step.
    Path path = ec.loc().path;
    size_t stmt_depth = 0;
    for (size_t i = path.size(); i-- > 0;) {
        if (is_stmt_list_label(path[i].label)) {
            stmt_depth = i;
            break;
        }
    }
    Path stmt_path(path.begin(), path.begin() + stmt_depth + 1);
    int pos = 0;
    ListAddr addr = list_addr_of(stmt_path, &pos);

    StmtPtr alloc_stmt =
        Stmt::make_alloc(new_name, expr->type(), {}, mem_dram());
    StmtPtr assign_stmt =
        Stmt::make_assign(new_name, {}, expr, expr->type());
    // Batched: the alloc/assign insertion and the use rewrite commit as
    // a single version with one composed forwarding entry.
    EditBatch batch(p);
    batch.insert(addr, pos, {alloc_stmt, assign_stmt});
    ExprPtr replacement = Expr::make_read(new_name, {}, expr->type());
    if (!cse) {
        std::optional<CursorLoc> ec2 = batch.forward(ec.loc());
        require(ec2.has_value(), "bind_expr: expression lost");
        batch.replace_expr(ec2->path, replacement);
        return batch.commit("bind_expr");
    }
    // CSE: replace every structurally-equal occurrence in the enclosing
    // statement.
    std::optional<CursorLoc> sloc2 =
        batch.forward(CursorLoc{CursorKind::Node, stmt_path, -1});
    require(sloc2.has_value(), "bind_expr: statement lost");
    StmtPtr target = stmt_at(batch.staged(), sloc2->path);
    std::function<ExprPtr(const ExprPtr&)> sub =
        [&](const ExprPtr& cur) -> ExprPtr {
        if (expr_equal(cur, expr))
            return replacement;
        auto kids = cur->children();
        bool changed = false;
        for (auto& k : kids) {
            auto nk = sub(k);
            if (nk != k) {
                changed = true;
                k = nk;
            }
        }
        return changed ? cur->with_children(std::move(kids)) : cur;
    };
    std::function<StmtPtr(const StmtPtr&)> sub_stmt =
        [&](const StmtPtr& st) -> StmtPtr {
        StmtPtr out = st;
        switch (st->kind()) {
          case StmtKind::Assign:
          case StmtKind::Reduce: {
            std::vector<ExprPtr> idx;
            for (const auto& i : st->idx())
                idx.push_back(sub(i));
            return out->with_idx(std::move(idx))->with_rhs(sub(st->rhs()));
          }
          case StmtKind::For: {
            std::vector<StmtPtr> body;
            for (const auto& cst : st->body())
                body.push_back(sub_stmt(cst));
            return out->with_body(std::move(body));
          }
          case StmtKind::If: {
            std::vector<StmtPtr> body;
            for (const auto& cst : st->body())
                body.push_back(sub_stmt(cst));
            std::vector<StmtPtr> orelse;
            for (const auto& cst : st->orelse())
                orelse.push_back(sub_stmt(cst));
            return out->with_body(std::move(body))
                ->with_orelse(std::move(orelse));
          }
          default:
            return out;
        }
    };
    StmtPtr new_target = sub_stmt(target);
    batch.replace_stmt_same_shape(sloc2->path, new_target);
    return batch.commit("bind_expr(cse)");
}

StageMemResult
stage_mem(const ProcPtr& p, const Cursor& block, const std::string& buf,
          const std::vector<WindowDim>& window, const std::string& new_name)
{
    ScheduleStats::count_rewrite("stage_mem");
    ensure_unused(p, new_name);
    Cursor bc = p->forward(block);
    require(bc.is_valid(), "stage_mem: cursor invalidated");
    int blo = 0;
    int bhi = 0;
    ListAddr addr{};
    if (bc.kind() == CursorKind::Node) {
        addr = list_addr_of(bc.loc().path, &blo);
        bhi = blo + 1;
    } else if (bc.kind() == CursorKind::Block) {
        addr = list_addr_of(bc.loc().path, &blo);
        bhi = bc.loc().hi;
    } else {
        throw SchedulingError("stage_mem: expected a stmt/block cursor");
    }
    const auto& list = stmt_list_at(p, addr);
    std::vector<StmtPtr> body(list.begin() + blo, list.begin() + bhi);

    // Element type of the staged buffer.
    ScalarType elem = ScalarType::F32;
    if (const ProcArg* arg = p->find_arg(buf)) {
        elem = arg->type;
    } else {
        // Search for the alloc.
        Cursor alloc_c = p->find_alloc(buf);
        elem = alloc_c.stmt()->type();
    }

    // Interval dims become tmp dimensions.
    std::vector<ExprPtr> extents;
    for (size_t d = 0; d < window.size(); d++) {
        if (!window[d].is_point())
            extents.push_back(window[d].hi - window[d].lo);
    }

    // Safety: all accesses to `buf` in the block lie inside the window.
    {
        bool ok = true;
        std::string bad;
        Context base = Context::at(p, bc.loc().path);
        auto chk = [&](const Context& ctx,
                       const std::vector<ExprPtr>& idx) {
            if (idx.size() != window.size()) {
                ok = false;
                return;
            }
            for (size_t d = 0; d < window.size(); d++) {
                if (window[d].is_point()) {
                    if (!ctx.prove_eq(idx[d], window[d].lo)) {
                        ok = false;
                        bad = print_expr(idx[d]);
                    }
                } else {
                    if (!ctx.prove_le(window[d].lo, idx[d]) ||
                        !ctx.prove_lt(idx[d], window[d].hi)) {
                        ok = false;
                        bad = print_expr(idx[d]);
                    }
                }
            }
        };
        for (const auto& st : body)
            visit_stmt_buffer_accesses(base, st, buf, chk);
        require(ok, "stage_mem: access '" + bad +
                        "' escapes the staged window of '" + buf + "'");
    }

    bool writes = false;
    bool reads = false;
    for (const auto& st : body) {
        if (stmt_writes(st, buf))
            writes = true;
        if (stmt_reads(st, buf))
            reads = true;
    }

    // Build the staged code.
    StmtPtr alloc_stmt =
        Stmt::make_alloc(new_name, elem, extents, mem_dram());

    // Copy loops: for k0 < e0: ... tmp[k...] = buf[lo + k...]
    auto make_copy = [&](bool load) -> StmtPtr {
        std::vector<std::string> iters;
        for (size_t k = 0; k < extents.size(); k++)
            iters.push_back(fresh_in(p, "i" + std::to_string(k)));
        std::vector<ExprPtr> buf_idx;
        std::vector<ExprPtr> tmp_idx;
        size_t k = 0;
        for (size_t d = 0; d < window.size(); d++) {
            if (window[d].is_point()) {
                buf_idx.push_back(window[d].lo);
            } else {
                buf_idx.push_back(window[d].lo + var(iters[k]));
                tmp_idx.push_back(var(iters[k]));
                k++;
            }
        }
        StmtPtr inner;
        if (load) {
            inner = Stmt::make_assign(
                new_name, tmp_idx,
                Expr::make_read(buf, buf_idx, elem), elem);
        } else {
            inner = Stmt::make_assign(
                buf, buf_idx,
                Expr::make_read(new_name, tmp_idx, elem), elem);
        }
        for (size_t d = extents.size(); d-- > 0;) {
            inner = Stmt::make_for(iters[d], idx_const(0), extents[d],
                                   {inner});
        }
        return inner;
    };

    // Rewrite accesses in the block: buf[idx] -> tmp[idx_i - lo_i] for
    // interval dims (point dims dropped).
    std::vector<WindowDim> win = window;
    PointRewriteFn point_fn = [win](const std::vector<ExprPtr>& old) {
        std::vector<ExprPtr> out;
        for (size_t d = 0; d < win.size() && d < old.size(); d++) {
            if (win[d].is_point())
                continue;
            Affine lo = to_affine(win[d].lo);
            if (affine_is_zero(lo))
                out.push_back(old[d]);
            else
                out.push_back(old[d] - win[d].lo);
        }
        return out;
    };
    WindowRewriteFn window_fn = [win](const std::vector<WindowDim>& old) {
        std::vector<WindowDim> out;
        for (size_t d = 0; d < win.size() && d < old.size(); d++) {
            if (win[d].is_point())
                continue;
            WindowDim nd;
            nd.lo = old[d].lo - win[d].lo;
            if (old[d].hi)
                nd.hi = old[d].hi - win[d].lo;
            out.push_back(nd);
        }
        return out;
    };
    std::vector<StmtPtr> new_body;
    for (const auto& st : body) {
        StmtPtr rewritten =
            rewrite_buffer_access(st, buf, point_fn, window_fn);
        new_body.push_back(rename_buffer(rewritten, buf, new_name));
    }

    std::vector<StmtPtr> repl;
    repl.push_back(alloc_stmt);
    int load_off = -1;
    if (reads) {
        load_off = static_cast<int>(repl.size());
        repl.push_back(make_copy(/*load=*/true));
    }
    int body_off = static_cast<int>(repl.size());
    repl.insert(repl.end(), new_body.begin(), new_body.end());
    int store_off = -1;
    if (writes) {
        store_off = static_cast<int>(repl.size());
        repl.push_back(make_copy(/*load=*/false));
    }

    // Forwarding: block stmts shift by body_off; inner structure kept.
    int added = static_cast<int>(repl.size()) - (bhi - blo);
    ListAddr old_addr = addr;
    ForwardFn fwd = [old_addr, blo, bhi, body_off,
                     added](const CursorLoc& l) -> std::optional<CursorLoc> {
        size_t d = old_addr.parent.size();
        bool through =
            l.path.size() > d && l.path[d].label == old_addr.label;
        for (size_t i = 0; i < d && through; i++) {
            if (!(l.path[i] == old_addr.parent[i]))
                through = false;
        }
        if (!through)
            return l;
        CursorLoc out = l;
        int j = l.path[d].index;
        bool final_step = l.path.size() == d + 1;
        if (final_step && l.kind == CursorKind::Block) {
            if (l.hi <= blo)
                return out;
            if (j >= bhi) {
                out.path[d].index = j + added;
                out.hi = l.hi + added;
                return out;
            }
            if (j >= blo && l.hi <= bhi) {
                out.path[d].index = j + body_off;
                out.hi = l.hi + body_off;
                return out;
            }
            return std::nullopt;
        }
        if (j < blo)
            return out;
        if (j >= bhi) {
            out.path[d].index = j + added;
            return out;
        }
        out.path[d].index = j + body_off;
        return out;
    };

    std::vector<StmtPtr> nl(list.begin(), list.begin() + blo);
    nl.insert(nl.end(), repl.begin(), repl.end());
    nl.insert(nl.end(), list.begin() + bhi, list.end());
    ProcPtr p2 =
        p->with_body(rebuild_list(p, addr, std::move(nl)), fwd, "stage_mem");

    StageMemResult res;
    res.p = p2;
    auto node_at_index = [&](int off) {
        Path np = addr.parent;
        np.push_back({addr.label, blo + off});
        return Cursor(p2, CursorLoc{CursorKind::Node, np, -1});
    };
    res.alloc = node_at_index(0);
    res.load = load_off >= 0 ? node_at_index(load_off) : Cursor();
    res.store = store_off >= 0 ? node_at_index(store_off) : Cursor();
    Path bp = addr.parent;
    bp.push_back({addr.label, blo + body_off});
    CursorLoc bl;
    bl.kind = CursorKind::Block;
    bl.path = bp;
    bl.hi = blo + body_off + (bhi - blo);
    res.block = Cursor(p2, bl);
    return res;
}

}  // namespace exo2
