#include "src/analysis/effects.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <unordered_map>

#include "src/analysis/memo.h"
#include "src/ir/builder.h"
#include "src/ir/errors.h"
#include "src/ir/interner.h"
#include "src/ir/printer.h"

namespace exo2 {

namespace {

/** Binding of a callee buffer argument to a caller buffer region. */
struct BufBinding
{
    std::string buf;                ///< caller buffer name
    std::vector<WindowDim> window;  ///< caller dims; points consume none
    bool opaque = false;            ///< unknown region: whole buffer
};

/** Substitution environment used when inlining callee effects. */
struct Env
{
    std::map<std::string, ExprPtr> scalars;
    std::map<std::string, BufBinding> buffers;
};

std::string
fresh_name(const std::string& base)
{
    static std::atomic<uint64_t> counter{0};
    return base + "$" + std::to_string(counter.fetch_add(1));
}

/** Apply the scalar substitution of `env` to an expression. */
ExprPtr
apply_env_expr(const ExprPtr& e, const Env& env)
{
    ExprPtr out = e;
    for (const auto& [name, repl] : env.scalars)
        out = expr_subst(out, name, repl);
    return out;
}

/**
 * Translate a callee access index through a window binding into caller
 * buffer coordinates.
 */
std::vector<ExprPtr>
translate_window(const BufBinding& b, const std::vector<ExprPtr>& idx)
{
    std::vector<ExprPtr> out;
    size_t k = 0;
    for (const auto& dim : b.window) {
        if (dim.is_point()) {
            out.push_back(dim.lo);
        } else {
            ExprPtr inner = (k < idx.size()) ? idx[k] : idx_const(0);
            k++;
            Affine lo = to_affine(dim.lo);
            if (affine_is_zero(lo))
                out.push_back(inner);
            else
                out.push_back(dim.lo + inner);
        }
    }
    return out;
}

struct Collector
{
    std::vector<Access> out;
    std::vector<LoopBinder> binders;
    std::vector<ExprPtr> guards;
    int depth = 0;

    void emit(std::string buf, AccessKind kind, std::vector<ExprPtr> idx,
              bool whole)
    {
        Access a;
        a.buf = std::move(buf);
        a.kind = kind;
        a.idx = std::move(idx);
        a.whole_buffer = whole;
        a.binders = binders;
        a.guards = guards;
        out.push_back(std::move(a));
    }

    void expr(const ExprPtr& e, const Env& env)
    {
        if (!e)
            return;
        switch (e->kind()) {
          case ExprKind::Read: {
            std::vector<ExprPtr> idx;
            idx.reserve(e->idx().size());
            for (const auto& i : e->idx()) {
                expr(i, env);
                idx.push_back(apply_env_expr(i, env));
            }
            auto bit = env.buffers.find(e->name());
            if (bit != env.buffers.end()) {
                if (bit->second.opaque) {
                    emit(bit->second.buf, AccessKind::Read, {}, true);
                } else {
                    emit(bit->second.buf, AccessKind::Read,
                         translate_window(bit->second, idx), false);
                }
                return;
            }
            auto sit = env.scalars.find(e->name());
            if (sit != env.scalars.end()) {
                // Scalar binding: effects were already collected at the
                // call site when evaluating the actual argument.
                return;
            }
            emit(e->name(), AccessKind::Read, std::move(idx), false);
            return;
          }
          case ExprKind::Window: {
            // Whole-window read (e.g. passed to a call handled at the
            // call site); reading the region conservatively.
            emit(e->name(), AccessKind::Read, {}, true);
            return;
          }
          case ExprKind::ReadConfig:
            emit("$cfg:" + e->name() + "." + e->field(), AccessKind::Read,
                 {}, false);
            return;
          case ExprKind::Stride:
            return;
          default:
            for (const auto& k : e->children())
                expr(k, env);
            return;
        }
    }

    /** Resolve the (possibly env-mapped) target of a write. */
    void write_target(const std::string& name, AccessKind kind,
                      const std::vector<ExprPtr>& raw_idx, const Env& env)
    {
        std::vector<ExprPtr> idx;
        idx.reserve(raw_idx.size());
        for (const auto& i : raw_idx) {
            expr(i, env);
            idx.push_back(apply_env_expr(i, env));
        }
        auto bit = env.buffers.find(name);
        if (bit != env.buffers.end()) {
            if (bit->second.opaque)
                emit(bit->second.buf, kind, {}, true);
            else
                emit(bit->second.buf, kind,
                     translate_window(bit->second, idx), false);
            return;
        }
        emit(name, kind, std::move(idx), false);
    }

    void call(const StmtPtr& s, const Env& env)
    {
        const ProcPtr& callee = s->callee();
        if (!callee) {
            // Unresolved call (pattern-only): be maximally conservative.
            for (const auto& a : s->args())
                expr(a, env);
            return;
        }
        if (depth > 8) {
            for (const auto& a : s->args())
                expr(a, env);
            return;
        }
        Env inner;
        const auto& formals = callee->args();
        for (size_t i = 0; i < formals.size() && i < s->args().size(); i++) {
            const ProcArg& f = formals[i];
            ExprPtr actual = s->args()[i];
            if (f.dims.empty()) {
                // Scalar: evaluate effects here; bind for index subst.
                expr(actual, env);
                inner.scalars[f.name] = apply_env_expr(actual, env);
                continue;
            }
            BufBinding b;
            if (actual->kind() == ExprKind::Window) {
                auto bit = env.buffers.find(actual->name());
                if (bit != env.buffers.end() && !bit->second.opaque) {
                    // Window of a window: compose.
                    b.buf = bit->second.buf;
                    std::vector<WindowDim> composed;
                    size_t k = 0;
                    for (const auto& outer : bit->second.window) {
                        if (outer.is_point()) {
                            composed.push_back(outer);
                            continue;
                        }
                        if (k >= actual->window_dims().size()) {
                            composed.push_back(outer);
                            continue;
                        }
                        WindowDim wd = actual->window_dims()[k++];
                        WindowDim nd;
                        nd.lo = outer.lo +
                                apply_env_expr(wd.lo, env);
                        if (!wd.is_point())
                            nd.hi = outer.lo + apply_env_expr(wd.hi, env);
                        composed.push_back(nd);
                    }
                    b.window = std::move(composed);
                } else if (bit != env.buffers.end()) {
                    b.buf = bit->second.buf;
                    b.opaque = true;
                } else {
                    b.buf = actual->name();
                    for (const auto& wd : actual->window_dims()) {
                        WindowDim nd;
                        nd.lo = apply_env_expr(wd.lo, env);
                        if (!wd.is_point())
                            nd.hi = apply_env_expr(wd.hi, env);
                        b.window.push_back(nd);
                    }
                    // Index expressions inside the window are reads.
                    for (const auto& wd : actual->window_dims()) {
                        expr(wd.lo, env);
                        if (!wd.is_point())
                            expr(wd.hi, env);
                    }
                }
            } else if (actual->kind() == ExprKind::Read &&
                       actual->idx().empty()) {
                auto bit = env.buffers.find(actual->name());
                if (bit != env.buffers.end()) {
                    b = bit->second;
                } else {
                    b.buf = actual->name();
                    for (size_t d = 0; d < f.dims.size(); d++) {
                        WindowDim nd;
                        nd.lo = idx_const(0);
                        nd.hi = apply_env_expr(f.dims[d], env);
                        b.window.push_back(nd);
                    }
                }
            } else {
                expr(actual, env);
                b.buf = actual->kind() == ExprKind::Read ? actual->name()
                                                         : "$unknown";
                b.opaque = true;
            }
            inner.buffers[f.name] = std::move(b);
        }
        depth++;
        block(callee->body_stmts(), inner);
        depth--;
    }

    void stmt(const StmtPtr& s, const Env& env)
    {
        switch (s->kind()) {
          case StmtKind::Assign:
          case StmtKind::Reduce: {
            expr(s->rhs(), env);
            write_target(s->name(),
                         s->kind() == StmtKind::Assign ? AccessKind::Write
                                                       : AccessKind::Reduce,
                         s->idx(), env);
            return;
          }
          case StmtKind::Alloc:
            for (const auto& d : s->dims())
                expr(d, env);
            return;
          case StmtKind::For: {
            expr(s->lo(), env);
            expr(s->hi(), env);
            std::string fresh = fresh_name(s->iter());
            Env inner = env;
            inner.scalars[s->iter()] = var(fresh);
            binders.push_back({fresh, apply_env_expr(s->lo(), env),
                               apply_env_expr(s->hi(), env)});
            block(s->body(), inner);
            binders.pop_back();
            return;
          }
          case StmtKind::If: {
            expr(s->cond(), env);
            ExprPtr c = apply_env_expr(s->cond(), env);
            guards.push_back(c);
            block(s->body(), env);
            guards.pop_back();
            ExprPtr nc = negate_pred(c);
            if (nc)
                guards.push_back(nc);
            block(s->orelse(), env);
            if (nc)
                guards.pop_back();
            return;
          }
          case StmtKind::Pass:
            return;
          case StmtKind::Call:
            call(s, env);
            return;
          case StmtKind::WriteConfig:
            expr(s->rhs(), env);
            emit("$cfg:" + s->name() + "." + s->field(), AccessKind::Write,
                 {}, false);
            return;
          case StmtKind::WindowDecl: {
            // Bind the window for following statements — handled by
            // block(); here just record index reads.
            const ExprPtr& w = s->rhs();
            for (const auto& wd : w->window_dims()) {
                expr(wd.lo, env);
                if (!wd.is_point())
                    expr(wd.hi, env);
            }
            return;
          }
        }
        throw InternalError("unknown stmt kind in effects");
    }

    void block(const std::vector<StmtPtr>& b, const Env& env)
    {
        Env cur = env;
        for (const auto& s : b) {
            stmt(s, cur);
            if (s->kind() == StmtKind::WindowDecl) {
                const ExprPtr& w = s->rhs();
                BufBinding bind;
                auto bit = cur.buffers.find(w->name());
                if (bit != cur.buffers.end() && bit->second.opaque) {
                    bind.buf = bit->second.buf;
                    bind.opaque = true;
                } else {
                    bind.buf = (bit != cur.buffers.end()) ? bit->second.buf
                                                          : w->name();
                    // Conservative: treat re-windowing of windows as
                    // opaque unless direct.
                    if (bit != cur.buffers.end()) {
                        bind.opaque = true;
                    } else {
                        for (const auto& wd : w->window_dims()) {
                            WindowDim nd;
                            nd.lo = apply_env_expr(wd.lo, cur);
                            if (!wd.is_point())
                                nd.hi = apply_env_expr(wd.hi, cur);
                            bind.window.push_back(nd);
                        }
                    }
                }
                cur.buffers[s->name()] = std::move(bind);
            }
        }
    }
};

/** Rename all binders of `a` apart with fresh names. */
Access
rename_binders(const Access& a)
{
    Access out = a;
    for (auto& b : out.binders) {
        std::string nn = fresh_name(b.name);
        for (auto& i : out.idx)
            i = expr_subst(i, b.name, var(nn));
        for (auto& g : out.guards)
            g = expr_subst(g, b.name, var(nn));
        for (auto& b2 : out.binders) {
            if (&b2 != &b) {
                b2.lo = expr_subst(b2.lo, b.name, var(nn));
                b2.hi = expr_subst(b2.hi, b.name, var(nn));
            }
        }
        b.name = nn;
    }
    return out;
}

void
assume_access(LinearSystem* sys, const Access& a)
{
    for (const auto& b : a.binders) {
        sys->add_pred(Expr::make_binop(BinOpKind::Ge, var(b.name), b.lo));
        sys->add_pred(Expr::make_binop(BinOpKind::Lt, var(b.name), b.hi));
    }
    for (const auto& g : a.guards)
        sys->add_pred(g);
}

/**
 * Per-subtree effect summary caches.
 *
 * Soundness: statements are immutable, and the collection at an empty
 * environment is a function of the subtree alone — apart from the
 * fresh names minted for loop binders. Cached summaries therefore fix
 * one alpha-variant of the binder names; every consumer that combines
 * two summaries (`accesses_conflict`, `cross_iteration_conflict`)
 * renames binders apart before solving, so reusing a variant is
 * indistinguishable from recollecting. Entries hold a strong StmtPtr,
 * pinning the key pointer against reuse-after-free.
 *
 * Spine-rebuilding edits (cursor/edits.cc) preserve every untouched
 * subtree by pointer, which is exactly what makes these caches hit
 * across consecutive scheduling primitives.
 */
struct StmtEffectsEntry
{
    StmtPtr pin;
    std::vector<Access> accs;
};

struct BlockEffectsEntry
{
    std::vector<StmtPtr> stmts;  ///< key (and pin): exact pointer sequence
    std::vector<Access> accs;
};

std::unordered_map<const Stmt*, StmtEffectsEntry>&
stmt_effects_cache()
{
    static auto* c = new std::unordered_map<const Stmt*, StmtEffectsEntry>();
    return *c;
}

std::unordered_multimap<uint64_t, BlockEffectsEntry>&
block_effects_cache()
{
    static auto* c =
        new std::unordered_multimap<uint64_t, BlockEffectsEntry>();
    return *c;
}

void
clear_effects_memo()
{
    stmt_effects_cache().clear();
    block_effects_cache().clear();
}

memo_internal::ClearerRegistration effects_memo_reg(&clear_effects_memo);

constexpr size_t kEffectsMemoCap = 1u << 16;

uint64_t
block_ptr_hash(const std::vector<StmtPtr>& b)
{
    uint64_t h = 0xEFFEC75ull;
    for (const auto& s : b)
        h = hash_combine(h, reinterpret_cast<uintptr_t>(s.get()));
    return h;
}

}  // namespace

std::vector<Access>
collect_accesses(const StmtPtr& s)
{
    if (!analysis_memo_enabled()) {
        Collector c;
        c.stmt(s, Env{});
        return std::move(c.out);
    }
    auto& cache = stmt_effects_cache();
    auto it = cache.find(s.get());
    if (it != cache.end()) {
        memo_internal::g_stats.effects_hits++;
        return it->second.accs;
    }
    memo_internal::g_stats.effects_misses++;
    Collector c;
    c.stmt(s, Env{});
    if (cache.size() >= kEffectsMemoCap)
        cache.clear();
    cache.emplace(s.get(), StmtEffectsEntry{s, c.out});
    return std::move(c.out);
}

std::vector<Access>
collect_accesses_block(const std::vector<StmtPtr>& b)
{
    if (!analysis_memo_enabled()) {
        Collector c;
        c.block(b, Env{});
        return std::move(c.out);
    }
    auto& cache = block_effects_cache();
    uint64_t h = block_ptr_hash(b);
    auto range = cache.equal_range(h);
    for (auto it = range.first; it != range.second; ++it) {
        if (it->second.stmts == b) {
            memo_internal::g_stats.effects_hits++;
            return it->second.accs;
        }
    }
    memo_internal::g_stats.effects_misses++;
    Collector c;
    c.block(b, Env{});
    if (cache.size() >= kEffectsMemoCap)
        cache.clear();
    cache.emplace(h, BlockEffectsEntry{b, c.out});
    return std::move(c.out);
}

std::vector<std::string>
collect_allocs(const std::vector<StmtPtr>& b)
{
    std::vector<std::string> out;
    for (const auto& s : b) {
        if (s->kind() == StmtKind::Alloc)
            out.push_back(s->name());
        auto inner = collect_allocs(s->body());
        out.insert(out.end(), inner.begin(), inner.end());
        auto inner2 = collect_allocs(s->orelse());
        out.insert(out.end(), inner2.begin(), inner2.end());
    }
    return out;
}

bool
accesses_conflict(const Context& ctx, const Access& a, const Access& b)
{
    if (a.buf != b.buf)
        return false;
    if (a.kind == AccessKind::Read && b.kind == AccessKind::Read)
        return false;
    if (a.kind == AccessKind::Reduce && b.kind == AccessKind::Reduce)
        return false;  // commuting reductions
    if (a.whole_buffer || b.whole_buffer)
        return true;
    if (a.idx.empty() && b.idx.empty())
        return true;  // same scalar
    if (a.idx.size() != b.idx.size())
        return true;  // shape confusion: conservative
    // Overlap test: feasible that all indices are equal?
    Access rb = rename_binders(b);
    LinearSystem sys = ctx.system();
    assume_access(&sys, a);
    assume_access(&sys, rb);
    for (size_t d = 0; d < a.idx.size(); d++) {
        sys.add_eq0(affine_sub(to_affine(a.idx[d]), to_affine(rb.idx[d])));
    }
    return !sys.infeasible();
}

bool
stmts_commute(const Context& ctx, const StmtPtr& s1, const StmtPtr& s2,
              std::string* why)
{
    // Binder motion is a scoping question the access analysis cannot
    // see: an Alloc/WindowDecl has no data effects, but swapping it
    // past a statement that uses (or shadows a use of) the bound name
    // changes what that name refers to.
    auto binds = [](const StmtPtr& s) {
        return s->kind() == StmtKind::Alloc ||
               s->kind() == StmtKind::WindowDecl;
    };
    if (binds(s1) && stmt_uses(s2, s1->name())) {
        if (why)
            *why = "'" + s1->name() + "' is declared by the first "
                   "statement and used by the second";
        return false;
    }
    if (binds(s2) && stmt_uses(s1, s2->name())) {
        if (why)
            *why = "'" + s2->name() + "' is used by the first statement "
                   "and re-declared by the second";
        return false;
    }
    auto a1 = collect_accesses(s1);
    auto a2 = collect_accesses(s2);
    for (const auto& a : a1) {
        for (const auto& b : a2) {
            if (accesses_conflict(ctx, a, b)) {
                if (why) {
                    *why = "conflicting accesses to '" + a.buf + "'";
                }
                return false;
            }
        }
    }
    return true;
}

bool
blocks_commute(const Context& ctx, const std::vector<StmtPtr>& b1,
               const std::vector<StmtPtr>& b2, std::string* why)
{
    auto a1 = collect_accesses_block(b1);
    auto a2 = collect_accesses_block(b2);
    for (const auto& a : a1) {
        for (const auto& b : a2) {
            if (accesses_conflict(ctx, a, b)) {
                if (why)
                    *why = "conflicting accesses to '" + a.buf + "'";
                return false;
            }
        }
    }
    return true;
}

const char*
access_kind_name(AccessKind k)
{
    switch (k) {
      case AccessKind::Read:
        return "read";
      case AccessKind::Write:
        return "write";
      case AccessKind::Reduce:
        return "reduce";
    }
    return "?";
}

std::string
describe_access(const Access& a)
{
    std::string s = std::string(access_kind_name(a.kind)) + " " + a.buf;
    if (a.whole_buffer) {
        s += "[...]";
    } else if (!a.idx.empty()) {
        s += "[";
        for (size_t d = 0; d < a.idx.size(); d++) {
            if (d)
                s += ", ";
            s += print_expr(a.idx[d]);
        }
        s += "]";
    }
    return s;
}

namespace {

std::string
conflict_pair(const Access& a, const Access& b)
{
    return describe_access(a) + " vs " + describe_access(b);
}

/**
 * Collect every cross-iteration conflict of `loop` into `out` (which
 * may be null when only the boolean answer matters; collection then
 * stops at the first conflict). Returns true iff a conflict was found.
 */
bool
cross_iteration_conflicts(const Context& ctx, const StmtPtr& loop,
                          bool reductions_ok,
                          std::vector<LoopConflict>* out)
{
    bool found = false;
    // The pair loop below visits ordered pairs; report each unordered
    // pair once.
    std::set<std::pair<std::string, std::string>> seen;
    auto emit = [&](const Access& a, const Access& b, std::string detail) {
        found = true;
        if (out) {
            auto key = std::minmax(describe_access(a), describe_access(b));
            if (seen.insert(key).second)
                out->push_back(LoopConflict{a.buf, a, b, std::move(detail)});
        }
    };
    auto accs = collect_accesses_block(loop->body());
    const std::string& iter = loop->iter();
    // Buffers allocated inside the body are private per iteration and
    // carry nothing across iterations.
    auto locals = collect_allocs(loop->body());
    for (const auto& a : accs) {
        if (out == nullptr && found)
            break;
        if (std::find(locals.begin(), locals.end(), a.buf) != locals.end())
            continue;
        for (const auto& b : accs) {
            if (out == nullptr && found)
                break;
            if (a.buf != b.buf)
                continue;
            if (a.kind == AccessKind::Read && b.kind == AccessKind::Read)
                continue;
            if (reductions_ok && a.kind == AccessKind::Reduce &&
                b.kind == AccessKind::Reduce) {
                continue;
            }
            if (a.whole_buffer || b.whole_buffer) {
                emit(a, b,
                     "opaque access to '" + a.buf + "' across iterations of '" +
                         iter + "': " + conflict_pair(a, b));
                continue;
            }
            if (a.idx.empty() && b.idx.empty()) {
                emit(a, b,
                     "scalar '" + a.buf + "' carried across iterations of '" +
                         iter + "': " + conflict_pair(a, b));
                continue;
            }
            if (a.idx.size() != b.idx.size()) {
                emit(a, b,
                     "shape mismatch on '" + a.buf + "': " +
                         conflict_pair(a, b));
                continue;
            }
            // Rename iteration variables apart: i (in a) vs i' (in b),
            // with i < i' (covers both orders by symmetry of the pair
            // loop).
            std::string i1 = fresh_name(iter);
            std::string i2 = fresh_name(iter);
            Access ra = a;
            for (auto& e : ra.idx)
                e = expr_subst(e, iter, var(i1));
            for (auto& g : ra.guards)
                g = expr_subst(g, iter, var(i1));
            for (auto& bd : ra.binders) {
                bd.lo = expr_subst(bd.lo, iter, var(i1));
                bd.hi = expr_subst(bd.hi, iter, var(i1));
            }
            Access rb = b;
            for (auto& e : rb.idx)
                e = expr_subst(e, iter, var(i2));
            for (auto& g : rb.guards)
                g = expr_subst(g, iter, var(i2));
            for (auto& bd : rb.binders) {
                bd.lo = expr_subst(bd.lo, iter, var(i2));
                bd.hi = expr_subst(bd.hi, iter, var(i2));
            }
            rb = rename_binders(rb);
            ra = rename_binders(ra);
            LinearSystem sys = ctx.system();
            // Loop ranges for both iteration copies.
            for (const auto& nm : {i1, i2}) {
                sys.add_pred(
                    Expr::make_binop(BinOpKind::Ge, var(nm), loop->lo()));
                sys.add_pred(
                    Expr::make_binop(BinOpKind::Lt, var(nm), loop->hi()));
            }
            sys.add_pred(Expr::make_binop(BinOpKind::Lt, var(i1), var(i2)));
            assume_access(&sys, ra);
            assume_access(&sys, rb);
            for (size_t d = 0; d < ra.idx.size(); d++) {
                sys.add_eq0(
                    affine_sub(to_affine(ra.idx[d]), to_affine(rb.idx[d])));
            }
            if (!sys.infeasible()) {
                emit(a, b,
                     "possible cross-iteration dependence on '" + a.buf +
                         "': " + conflict_pair(a, b) +
                         " may touch the same cell in two distinct "
                         "iterations of '" + iter + "'");
            }
        }
    }
    return found;
}

bool
cross_iteration_conflict(const Context& ctx, const StmtPtr& loop,
                         bool reductions_ok, std::string* why)
{
    if (why == nullptr)
        return cross_iteration_conflicts(ctx, loop, reductions_ok, nullptr);
    std::vector<LoopConflict> conflicts;
    if (!cross_iteration_conflicts(ctx, loop, reductions_ok, &conflicts))
        return false;
    *why = conflicts.front().detail;
    return true;
}

}  // namespace

bool
loop_conflicts(const Context& ctx, const StmtPtr& loop, bool reductions_ok,
               std::vector<LoopConflict>* out)
{
    if (out)
        out->clear();
    return cross_iteration_conflicts(ctx, loop, reductions_ok, out);
}

bool
loop_iterations_commute(const Context& ctx, const StmtPtr& loop,
                        std::string* why)
{
    return !cross_iteration_conflict(ctx, loop, /*reductions_ok=*/true, why);
}

bool
loop_parallelizable(const Context& ctx, const StmtPtr& loop,
                    std::string* why)
{
    return !cross_iteration_conflict(ctx, loop, /*reductions_ok=*/false, why);
}

bool
stmt_idempotent(const StmtPtr& s)
{
    switch (s->kind()) {
      case StmtKind::Pass:
      case StmtKind::Alloc:
      case StmtKind::WindowDecl:
        return true;
      case StmtKind::Reduce:
        return false;
      case StmtKind::WriteConfig:
        // Idempotent iff the value does not read the field it writes.
        return !expr_uses(s->rhs(), s->name());
      case StmtKind::Assign: {
        // `x = e` is idempotent if e does not read x (at the same index;
        // conservatively: at all).
        return !expr_uses(s->rhs(), s->name());
      }
      case StmtKind::For:
      case StmtKind::If:
        return block_idempotent(s->body()) && block_idempotent(s->orelse());
      case StmtKind::Call: {
        if (!s->callee())
            return false;
        // A call is idempotent if its semantics body is, and no written
        // buffer is also read.
        auto accs = collect_accesses(s);
        for (const auto& a : accs) {
            if (a.kind == AccessKind::Reduce)
                return false;
            if (a.kind != AccessKind::Write)
                continue;
            for (const auto& b : accs) {
                if (b.kind == AccessKind::Read && b.buf == a.buf)
                    return false;
            }
        }
        return true;
      }
    }
    return false;
}

bool
block_idempotent(const std::vector<StmtPtr>& b)
{
    // Idempotence of each statement, plus no statement reads what an
    // earlier one writes (else replay would observe changed state —
    // except exact recomputation, which we conservatively reject).
    for (const auto& s : b) {
        if (!stmt_idempotent(s))
            return false;
    }
    for (size_t i = 0; i < b.size(); i++) {
        auto wi = collect_accesses(b[i]);
        for (size_t j = i + 1; j < b.size(); j++) {
            auto rj = collect_accesses(b[j]);
            for (const auto& w : wi) {
                if (w.kind == AccessKind::Read)
                    continue;
                for (const auto& r : rj) {
                    if (r.kind == AccessKind::Read && r.buf == w.buf)
                        return false;
                }
            }
        }
    }
    return true;
}

bool
stmt_reads(const StmtPtr& s, const std::string& name)
{
    for (const auto& a : collect_accesses(s)) {
        if (a.kind == AccessKind::Read && a.buf == name)
            return true;
        if (a.kind == AccessKind::Reduce && a.buf == name)
            return true;
    }
    return false;
}

bool
stmt_writes(const StmtPtr& s, const std::string& name)
{
    for (const auto& a : collect_accesses(s)) {
        if (a.buf == name && a.kind != AccessKind::Read)
            return true;
    }
    return false;
}

}  // namespace exo2
