#ifndef EXO2_ANALYSIS_AFFINE_H_
#define EXO2_ANALYSIS_AFFINE_H_

/**
 * @file
 * Affine normal forms for index expressions.
 *
 * Index expressions are normalized to `constant + sum(coeff_i * atom_i)`
 * where an atom is either a variable or an opaque non-affine
 * subexpression (a division, modulo, or variable product). Because
 * expressions are hash-consed (ir/interner.h), an atom is identified by
 * its dense intern id — structural identity — instead of the canonical
 * printed form the original implementation used; this removes all
 * string formatting and string-keyed map traffic from the hot path.
 * Treating non-affine subterms as opaque atoms keeps the analysis total
 * while remaining conservative.
 */

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "src/ir/expr.h"

namespace exo2 {

/** Atom identity: the intern id of the (hash-consed) atom expression. */
using AtomKey = uint64_t;

/** One linear term: `coeff * atom`. */
struct LinTerm
{
    ExprPtr atom;   ///< Variable read or opaque subexpression.
    int64_t coeff = 0;
};

/** `constant + sum(terms)`, terms keyed by atom intern id. */
struct Affine
{
    int64_t constant = 0;
    std::map<AtomKey, LinTerm> terms;

    bool is_const() const { return terms.empty(); }

    /** Coefficient of variable `name` (0 if absent). */
    int64_t coeff_of(const std::string& name) const;

    /** Coefficient of the atom with intern id `key` (0 if absent). */
    int64_t coeff_of_key(AtomKey key) const;

    /** True if any atom mentions variable `name` (even inside opaques). */
    bool mentions(const std::string& name) const;
};

/** Order-insensitive-friendly hash of a normal form (terms iterate in
 *  key order, so equal Affines hash equal). */
uint64_t affine_hash(const Affine& a);

/** Canonical printed form of an atom, cached per intern id. Used to
 *  keep spelling-based orderings (term emission, FM elimination order)
 *  identical to the pre-interning implementation. */
const std::string& atom_spelling(AtomKey key, const ExprPtr& atom);

/** Normalize an expression. Total: non-affine parts become atoms.
 *  Memoized per interned node (see analysis/memo.h). */
Affine to_affine(const ExprPtr& e);

/** Rebuild an expression from a normal form (used by simplify). */
ExprPtr affine_to_expr(const Affine& a);

Affine affine_add(const Affine& a, const Affine& b);
Affine affine_sub(const Affine& a, const Affine& b);
Affine affine_scale(const Affine& a, int64_t k);
Affine affine_neg(const Affine& a);

/** Structural zero test (exact; no reasoning about opaque atoms). */
bool affine_is_zero(const Affine& a);

/** `a - b == 0` after normalization. */
bool affine_equal(const ExprPtr& a, const ExprPtr& b);

}  // namespace exo2

#endif  // EXO2_ANALYSIS_AFFINE_H_
