#ifndef EXO2_ANALYSIS_AFFINE_H_
#define EXO2_ANALYSIS_AFFINE_H_

/**
 * @file
 * Affine normal forms for index expressions.
 *
 * Index expressions are normalized to `constant + sum(coeff_i * atom_i)`
 * where an atom is either a variable or an opaque non-affine
 * subexpression (a division, modulo, or variable product) keyed by its
 * canonical printed form. Treating non-affine subterms as opaque atoms
 * keeps the analysis total while remaining conservative.
 */

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "src/ir/expr.h"

namespace exo2 {

/** One linear term: `coeff * atom`. */
struct LinTerm
{
    ExprPtr atom;   ///< Variable read or opaque subexpression.
    int64_t coeff = 0;
};

/** `constant + sum(terms)`, terms keyed by canonical spelling. */
struct Affine
{
    int64_t constant = 0;
    std::map<std::string, LinTerm> terms;

    bool is_const() const { return terms.empty(); }

    /** Coefficient of variable `name` (0 if absent). */
    int64_t coeff_of(const std::string& name) const;

    /** True if any atom mentions variable `name` (even inside opaques). */
    bool mentions(const std::string& name) const;
};

/** Normalize an expression. Total: non-affine parts become atoms. */
Affine to_affine(const ExprPtr& e);

/** Rebuild an expression from a normal form (used by simplify). */
ExprPtr affine_to_expr(const Affine& a);

Affine affine_add(const Affine& a, const Affine& b);
Affine affine_sub(const Affine& a, const Affine& b);
Affine affine_scale(const Affine& a, int64_t k);
Affine affine_neg(const Affine& a);

/** Structural zero test (exact; no reasoning about opaque atoms). */
bool affine_is_zero(const Affine& a);

/** `a - b == 0` after normalization. */
bool affine_equal(const ExprPtr& a, const ExprPtr& b);

}  // namespace exo2

#endif  // EXO2_ANALYSIS_AFFINE_H_
