#include "src/analysis/context.h"

#include "src/cursor/node.h"
#include "src/ir/builder.h"
#include "src/ir/errors.h"

namespace exo2 {

ExprPtr
negate_pred(const ExprPtr& cond)
{
    if (!cond || cond->kind() != ExprKind::BinOp)
        return nullptr;
    switch (cond->op()) {
      case BinOpKind::Lt:
        return Expr::make_binop(BinOpKind::Ge, cond->lhs(), cond->rhs());
      case BinOpKind::Le:
        return Expr::make_binop(BinOpKind::Gt, cond->lhs(), cond->rhs());
      case BinOpKind::Gt:
        return Expr::make_binop(BinOpKind::Le, cond->lhs(), cond->rhs());
      case BinOpKind::Ge:
        return Expr::make_binop(BinOpKind::Lt, cond->lhs(), cond->rhs());
      case BinOpKind::Eq:
        return Expr::make_binop(BinOpKind::Ne, cond->lhs(), cond->rhs());
      case BinOpKind::Ne:
        return Expr::make_binop(BinOpKind::Eq, cond->lhs(), cond->rhs());
      case BinOpKind::And: {
        ExprPtr l = negate_pred(cond->lhs());
        ExprPtr r = negate_pred(cond->rhs());
        if (!l || !r)
            return nullptr;
        return Expr::make_binop(BinOpKind::Or, l, r);
      }
      case BinOpKind::Or: {
        ExprPtr l = negate_pred(cond->lhs());
        ExprPtr r = negate_pred(cond->rhs());
        if (!l || !r)
            return nullptr;
        return Expr::make_binop(BinOpKind::And, l, r);
      }
      default:
        return nullptr;
    }
}

void
Context::enter_loop(const std::string& name, const ExprPtr& lo,
                    const ExprPtr& hi)
{
    binders_.push_back({name, lo, hi});
    ExprPtr iv = var(name);
    sys_.add_pred(Expr::make_binop(BinOpKind::Ge, iv, lo));
    sys_.add_pred(Expr::make_binop(BinOpKind::Lt, iv, hi));
}

Context
Context::at(const ProcPtr& p, const Path& path)
{
    Context ctx;
    for (const auto& arg : p->args()) {
        if (arg.is_size) {
            // Sizes are nonnegative by convention.
            ctx.sys_.add_expr_ge0(var(arg.name));
        }
    }
    for (const auto& pred : p->preds())
        ctx.sys_.add_pred(pred);

    // Walk down the path, entering loops and guards.
    if (path.empty())
        return ctx;
    NodeRef node = p->body_stmts().at(static_cast<size_t>(path[0].index));
    for (size_t d = 1; d < path.size(); d++) {
        if (!std::holds_alternative<StmtPtr>(node))
            break;  // descended into an expression: no more binders
        StmtPtr s = std::get<StmtPtr>(node);
        const PathStep& step = path[d];
        if (s->kind() == StmtKind::For && step.label == PathLabel::Body) {
            ctx.enter_loop(s->iter(), s->lo(), s->hi());
            node = s->body().at(static_cast<size_t>(step.index));
        } else if (s->kind() == StmtKind::If &&
                   step.label == PathLabel::Body) {
            ctx.assume(s->cond());
            node = s->body().at(static_cast<size_t>(step.index));
        } else if (s->kind() == StmtKind::If &&
                   step.label == PathLabel::Orelse) {
            ctx.sys_.add_pred_negated(s->cond());
            node = s->orelse().at(static_cast<size_t>(step.index));
        } else {
            // Descend into bounds/cond/rhs expressions: binder of the
            // node itself is not in scope; stop collecting.
            break;
        }
    }
    return ctx;
}

Context
Context::inside(const ProcPtr& p, const Path& path)
{
    Context ctx = at(p, path);
    StmtPtr s = stmt_at(p, path);
    if (s->kind() != StmtKind::For)
        throw InternalError("Context::inside: not a loop");
    ctx.enter_loop(s->iter(), s->lo(), s->hi());
    return ctx;
}

}  // namespace exo2
