#include "src/analysis/linear.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <unordered_map>

#include "src/analysis/memo.h"
#include "src/obs/trace.h"
#include "src/ir/builder.h"
#include "src/ir/interner.h"

namespace exo2 {

namespace {

/** Caps keeping Fourier–Motzkin elimination cheap and safe. */
constexpr size_t kMaxConstraints = 4000;
constexpr size_t kMaxVars = 40;
constexpr int64_t kCoeffLimit = int64_t(1) << 40;

/**
 * Memo caches for the two query entry points. Keys are 128-bit digests
 * (two independent 64-bit halves) so collisions are negligible; values
 * are the boolean answers. The system half of the key is commutative
 * over constraints, which conflates permutations of the same multiset —
 * sound, because infeasibility is a property of the multiset and a
 * proof found under one elimination order holds for all orders.
 */
struct U128Hash
{
    size_t operator()(const std::pair<uint64_t, uint64_t>& k) const
    {
        return static_cast<size_t>(hash_combine(k.first, k.second));
    }
};

using QueryCache =
    std::unordered_map<std::pair<uint64_t, uint64_t>, bool, U128Hash>;

QueryCache&
infeasible_cache()
{
    static auto* c = new QueryCache();
    return *c;
}

QueryCache&
implies_cache()
{
    static auto* c = new QueryCache();
    return *c;
}

void
clear_linear_memo()
{
    infeasible_cache().clear();
    implies_cache().clear();
}

memo_internal::ClearerRegistration linear_memo_reg(&clear_linear_memo);

constexpr size_t kLinearMemoCap = 1u << 20;

/** Normalize `a >= 0` by the gcd of its coefficients (integer
 *  tightening: constant is floored). */
Affine
tighten(Affine a)
{
    int64_t g = 0;
    for (const auto& [k, t] : a.terms)
        g = std::gcd(g, std::abs(t.coeff));
    if (g > 1) {
        for (auto& [k, t] : a.terms)
            t.coeff /= g;
        // floor division for possibly-negative constants
        int64_t c = a.constant;
        a.constant = (c >= 0) ? c / g : -(((-c) + g - 1) / g);
    }
    return a;
}

bool
same_terms(const Affine& a, const Affine& b)
{
    if (a.terms.size() != b.terms.size())
        return false;
    auto ia = a.terms.begin();
    auto ib = b.terms.begin();
    for (; ia != a.terms.end(); ++ia, ++ib) {
        if (ia->first != ib->first || ia->second.coeff != ib->second.coeff)
            return false;
    }
    return true;
}

/** Hash of the term part only (atoms + coefficients, not the constant):
 *  bucket key for duplicate-row detection. */
uint64_t
terms_hash(const Affine& a)
{
    uint64_t h = hash_mix(a.terms.size());
    for (const auto& [k, t] : a.terms)
        h = hash_combine(h, hash_combine(k, static_cast<uint64_t>(t.coeff)));
    return h;
}

/** Floor division for possibly-negative numerators. */
int64_t
floor_div(int64_t a, int64_t b)
{
    int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0)))
        q--;
    return q;
}

/**
 * Cheap pre-passes before full Fourier–Motzkin:
 *
 *  1. Drop trivially redundant duplicate rows — same term vector, a
 *     weaker (larger) constant. `c >= 0` with the smallest constant
 *     implies all its duplicates, so dropping them loses no proofs and
 *     shrinks every elimination round quadratically.
 *  2. Single-variable bound propagation — rows `c*x + k >= 0` define an
 *     integer interval per atom; an empty interval refutes the system
 *     without any elimination. (FM would find the same refutation by
 *     combining the two rows, but this catches the very common
 *     `lo <= x < lo` guards in O(rows).)
 *
 * Returns true if the system is already provably infeasible; otherwise
 * leaves the deduplicated rows in `cs`.
 */
bool
prepass_infeasible(std::vector<Affine>* cs)
{
    // 1. Deduplicate rows (keep the tightest constant per term vector).
    std::unordered_map<uint64_t, std::vector<size_t>> buckets;
    std::vector<Affine> dedup;
    dedup.reserve(cs->size());
    for (auto& c : *cs) {
        uint64_t h = terms_hash(c);
        bool dup = false;
        for (size_t j : buckets[h]) {
            if (same_terms(dedup[j], c)) {
                dedup[j].constant = std::min(dedup[j].constant, c.constant);
                dup = true;
                break;
            }
        }
        if (!dup) {
            buckets[h].push_back(dedup.size());
            dedup.push_back(std::move(c));
        }
    }
    *cs = std::move(dedup);
    // 2. Per-atom integer intervals from single-term rows.
    struct Bounds
    {
        int64_t lo = INT64_MIN;
        int64_t hi = INT64_MAX;
    };
    std::unordered_map<AtomKey, Bounds> bounds;
    for (const auto& c : *cs) {
        if (c.terms.empty()) {
            if (c.constant < 0)
                return true;  // `k >= 0` with k < 0
            continue;
        }
        if (c.terms.size() != 1)
            continue;
        const auto& [key, t] = *c.terms.begin();
        Bounds& b = bounds[key];
        if (t.coeff > 0) {
            // x >= ceil(-k / c)  <=>  x >= -floor(k / c)
            b.lo = std::max(b.lo, -floor_div(c.constant, t.coeff));
        } else {
            // x <= floor(k / -c)
            b.hi = std::min(b.hi, floor_div(c.constant, -t.coeff));
        }
        if (b.lo > b.hi)
            return true;  // empty interval: no integer solution
    }
    return false;
}

}  // namespace

void
LinearSystem::axiomatize_atoms(const Affine& a)
{
    for (const auto& [key, term] : a.terms) {
        const ExprPtr& atom = term.atom;
        if (atom->kind() != ExprKind::BinOp)
            continue;
        if (atom->op() != BinOpKind::Div && atom->op() != BinOpKind::Mod)
            continue;
        Affine divisor = to_affine(atom->rhs());
        if (!divisor.is_const() || divisor.constant <= 0)
            continue;
        if (std::find(axiomatized_.begin(), axiomatized_.end(), key) !=
            axiomatized_.end()) {
            continue;
        }
        axiomatized_.push_back(key);
        int64_t c = divisor.constant;
        ExprPtr e = atom->lhs();
        ExprPtr div = Expr::make_binop(BinOpKind::Div, e, atom->rhs());
        ExprPtr mod = Expr::make_binop(BinOpKind::Mod, e, atom->rhs());
        // e - c*(e/c) - (e%c) == 0
        Affine eq = to_affine(e);
        eq = affine_sub(eq, affine_scale(to_affine(div), c));
        eq = affine_sub(eq, to_affine(mod));
        add_eq0(eq);
        // 0 <= e%c <= c-1
        Affine m = to_affine(mod);
        add_ge0(m);
        Affine upper = affine_neg(m);
        upper.constant += c - 1;
        add_ge0(upper);
    }
}

void
LinearSystem::add_ge0(const Affine& a)
{
    if (ge0_.size() >= kMaxConstraints)
        return;  // conservatively drop (weakens hypotheses only)
    Affine t = tighten(a);
    uint64_t h = affine_hash(t);
    sig1_ += h;                // commutative: order-insensitive digest
    sig2_ += hash_mix(h);      // independent second half
    ge0_.push_back(std::move(t));
    axiomatize_atoms(a);
}

void
LinearSystem::add_eq0(const Affine& a)
{
    add_ge0(a);
    add_ge0(affine_neg(a));
}

void
LinearSystem::add_expr_ge0(const ExprPtr& e)
{
    add_ge0(to_affine(e));
}

void
LinearSystem::add_pred(const ExprPtr& cond)
{
    if (!cond || cond->kind() != ExprKind::BinOp) {
        if (cond && cond->kind() == ExprKind::Const) {
            if (cond->type() == ScalarType::Bool && cond->const_value() == 0.0)
                add_ge0(Affine{-1, {}});  // `False`: infeasible
        }
        return;  // opaque predicate: ignore
    }
    Affine l = to_affine(cond->lhs());
    Affine r = to_affine(cond->rhs());
    switch (cond->op()) {
      case BinOpKind::And:
        add_pred(cond->lhs());
        add_pred(cond->rhs());
        return;
      case BinOpKind::Lt: {  // l < r  <=>  r - l - 1 >= 0
        Affine a = affine_sub(r, l);
        a.constant -= 1;
        add_ge0(a);
        return;
      }
      case BinOpKind::Le:
        add_ge0(affine_sub(r, l));
        return;
      case BinOpKind::Gt: {
        Affine a = affine_sub(l, r);
        a.constant -= 1;
        add_ge0(a);
        return;
      }
      case BinOpKind::Ge:
        add_ge0(affine_sub(l, r));
        return;
      case BinOpKind::Eq:
        add_eq0(affine_sub(l, r));
        return;
      default:
        return;  // Ne / Or: disjunctive, ignored as hypothesis
    }
}

void
LinearSystem::add_pred_negated(const ExprPtr& cond)
{
    if (!cond || cond->kind() != ExprKind::BinOp)
        return;
    ExprPtr flipped;
    switch (cond->op()) {
      case BinOpKind::Lt:
        flipped = Expr::make_binop(BinOpKind::Ge, cond->lhs(), cond->rhs());
        break;
      case BinOpKind::Le:
        flipped = Expr::make_binop(BinOpKind::Gt, cond->lhs(), cond->rhs());
        break;
      case BinOpKind::Gt:
        flipped = Expr::make_binop(BinOpKind::Le, cond->lhs(), cond->rhs());
        break;
      case BinOpKind::Ge:
        flipped = Expr::make_binop(BinOpKind::Lt, cond->lhs(), cond->rhs());
        break;
      case BinOpKind::Or:
        add_pred_negated(cond->lhs());
        add_pred_negated(cond->rhs());
        return;
      default:
        return;  // !(==) etc.: disjunctive
    }
    add_pred(flipped);
}

bool
LinearSystem::infeasible() const
{
    if (!analysis_memo_enabled())
        return infeasible_uncached();
    std::pair<uint64_t, uint64_t> key{hash_combine(sig1_, ge0_.size()),
                                      sig2_};
    auto& cache = infeasible_cache();
    auto it = cache.find(key);
    if (it != cache.end()) {
        memo_internal::g_stats.linear_hits++;
        return it->second;
    }
    memo_internal::g_stats.linear_misses++;
    bool ans = infeasible_uncached();
    if (cache.size() >= kLinearMemoCap)
        cache.clear();
    cache.emplace(key, ans);
    return ans;
}

bool
LinearSystem::infeasible_uncached() const
{
    // The memoized infeasible() wrapper stays span-free: hits are a
    // hash probe. Only real Fourier-Motzkin work is worth a span.
    EXO2_SPAN("analysis.solve",
              {{"constraints", static_cast<int>(ge0_.size())}});
    // Cheap pre-passes: duplicate-row dropping + single-variable bound
    // propagation. These run before the var-count bail-out so oversized
    // systems with directly contradictory bounds are still refuted.
    std::vector<Affine> cs = ge0_;
    if (prepass_infeasible(&cs))
        return true;

    // Collect variables, ordered by canonical spelling: elimination
    // order affects which integer-tightened proofs Fourier–Motzkin
    // finds, so we keep the exact order of the string-keyed
    // implementation (spellings come from a per-atom cache, not
    // re-printing). Ties (distinct atoms, same spelling) break by id.
    std::set<std::pair<std::string, AtomKey>> ordered_vars;
    for (const auto& c : cs) {
        for (const auto& [k, t] : c.terms)
            ordered_vars.insert({atom_spelling(k, t.atom), k});
    }
    if (ordered_vars.size() > kMaxVars)
        return false;  // too big; answer unknown

    for (const auto& [spelling, var] : ordered_vars) {
        std::vector<Affine> pos;
        std::vector<Affine> neg;
        std::vector<Affine> rest;
        for (auto& c : cs) {
            int64_t co = c.coeff_of_key(var);
            if (co > 0)
                pos.push_back(c);
            else if (co < 0)
                neg.push_back(c);
            else
                rest.push_back(c);
        }
        // Combine every (lower, upper) bound pair.
        for (const auto& p : pos) {
            int64_t a = p.coeff_of_key(var);
            for (const auto& n : neg) {
                int64_t b = -n.coeff_of_key(var);
                // b*p + a*n eliminates var.
                if (std::abs(a) > kCoeffLimit || std::abs(b) > kCoeffLimit)
                    return false;
                Affine comb =
                    affine_add(affine_scale(p, b), affine_scale(n, a));
                comb = tighten(comb);  // var cancelled exactly by b*p + a*n
                if (comb.is_const()) {
                    if (comb.constant < 0)
                        return true;
                } else {
                    rest.push_back(comb);
                }
                if (rest.size() > kMaxConstraints)
                    return false;
            }
        }
        // Deduplicate to curb growth.
        std::vector<Affine> dedup;
        for (auto& c : rest) {
            bool dup = false;
            for (auto& d : dedup) {
                if (same_terms(c, d)) {
                    d.constant = std::min(d.constant, c.constant);
                    dup = true;
                    break;
                }
            }
            if (!dup)
                dedup.push_back(std::move(c));
        }
        cs = std::move(dedup);
        for (const auto& c : cs) {
            if (c.is_const() && c.constant < 0)
                return true;
        }
    }
    for (const auto& c : cs) {
        if (c.is_const() && c.constant < 0)
            return true;
    }
    return false;
}

bool
LinearSystem::implies_ge0(const Affine& a) const
{
    if (!analysis_memo_enabled()) {
        // Refute a <= -1.
        LinearSystem s = *this;
        Affine neg = affine_neg(a);
        neg.constant -= 1;
        s.add_ge0(neg);
        return s.infeasible();
    }
    // The (system digest, query hash) pair determines the answer, so a
    // hit skips both the system copy and the elimination.
    uint64_t qh = affine_hash(a);
    std::pair<uint64_t, uint64_t> key{
        hash_combine(hash_combine(sig1_, ge0_.size()), qh),
        hash_combine(sig2_, hash_mix(qh))};
    auto& cache = implies_cache();
    auto it = cache.find(key);
    if (it != cache.end()) {
        memo_internal::g_stats.linear_hits++;
        return it->second;
    }
    memo_internal::g_stats.linear_misses++;
    LinearSystem s = *this;
    Affine neg = affine_neg(a);
    neg.constant -= 1;
    s.add_ge0(neg);
    bool ans = s.infeasible();
    if (cache.size() >= kLinearMemoCap)
        cache.clear();
    cache.emplace(key, ans);
    return ans;
}

bool
LinearSystem::implies_ge0(const ExprPtr& e) const
{
    return implies_ge0(to_affine(e));
}

bool
LinearSystem::implies_eq0(const Affine& a) const
{
    if (affine_is_zero(a))
        return true;
    return implies_ge0(a) && implies_ge0(affine_neg(a));
}

bool
LinearSystem::implies_pred(const ExprPtr& cond) const
{
    if (!cond)
        return false;
    if (cond->kind() == ExprKind::Const && cond->type() == ScalarType::Bool)
        return cond->const_value() != 0.0;
    if (cond->kind() != ExprKind::BinOp)
        return false;
    Affine l = to_affine(cond->lhs());
    Affine r = to_affine(cond->rhs());
    switch (cond->op()) {
      case BinOpKind::And:
        return implies_pred(cond->lhs()) && implies_pred(cond->rhs());
      case BinOpKind::Or:
        return implies_pred(cond->lhs()) || implies_pred(cond->rhs());
      case BinOpKind::Lt: {
        Affine a = affine_sub(r, l);
        a.constant -= 1;
        return implies_ge0(a);
      }
      case BinOpKind::Le:
        return implies_ge0(affine_sub(r, l));
      case BinOpKind::Gt: {
        Affine a = affine_sub(l, r);
        a.constant -= 1;
        return implies_ge0(a);
      }
      case BinOpKind::Ge:
        return implies_ge0(affine_sub(l, r));
      case BinOpKind::Eq:
        return implies_eq0(affine_sub(l, r));
      case BinOpKind::Ne: {
        LinearSystem s1 = *this;
        s1.add_eq0(affine_sub(l, r));
        return s1.infeasible();
      }
      default:
        return false;
    }
}

bool
LinearSystem::implies_divisible(const ExprPtr& e, int64_t k) const
{
    if (k == 1)
        return true;
    if (k <= 0)
        return false;
    Affine a = to_affine(e);
    // Fast path: every coefficient and the constant divisible by k.
    bool all = a.constant % k == 0;
    for (const auto& [key, t] : a.terms) {
        if (t.coeff % k != 0) {
            all = false;
            break;
        }
    }
    if (all)
        return true;
    // General path: prove e % k == 0 through the mod axioms.
    ExprPtr mod = Expr::make_binop(BinOpKind::Mod, e, idx_const(k));
    LinearSystem s = *this;
    Affine m = to_affine(mod);
    s.add_ge0(m);  // triggers axiomatization
    return s.implies_eq0(m);
}

}  // namespace exo2
