#ifndef EXO2_ANALYSIS_EFFECTS_H_
#define EXO2_ANALYSIS_EFFECTS_H_

/**
 * @file
 * Read/write/reduce effect sets and dependence checks.
 *
 * Accesses are collected with their guarding conditions and enclosing
 * binders; disjointness is decided by the linear checker. Calls are
 * handled by inlining the callee's effects through its argument
 * bindings (including window translation), so hardware instructions
 * participate in dependence analysis via their semantics bodies.
 */

#include <string>
#include <vector>

#include "src/analysis/context.h"

namespace exo2 {

/** How a statement touches a buffer (or config field / scalar). */
enum class AccessKind : uint8_t {
    Read,
    Write,
    Reduce,
};

/** One access to `buf` at `idx`, guarded and parameterized by binders. */
struct Access
{
    std::string buf;
    AccessKind kind = AccessKind::Read;
    /** Index expressions; empty for scalar variables. */
    std::vector<ExprPtr> idx;
    /** If set, indices are unknown: treat as touching everything. */
    bool whole_buffer = false;
    /** Loop binders introduced below the collection root. */
    std::vector<LoopBinder> binders;
    /** Guards (if-conditions) on the access. */
    std::vector<ExprPtr> guards;
};

/** "read" / "write" / "reduce". */
const char* access_kind_name(AccessKind k);

/** Render an access as `kind buf[idx, ...]` (e.g. `write y[i + 1]`;
 *  `[...]` for opaque whole-buffer accesses, bare name for scalars). */
std::string describe_access(const Access& a);

/**
 * One loop-carried conflict found by `loop_conflicts`: the pair of
 * accesses that may touch the same cell of `buf` in two distinct
 * iterations of the loop. `a`/`b` keep their original (un-renamed)
 * index expressions, so `describe_access(a)` names the conflicting
 * pair in the user's own binder names.
 */
struct LoopConflict
{
    std::string buf;
    Access a;
    Access b;
    /** Human-readable explanation (names buffer, kinds, indices). */
    std::string detail;
};

/**
 * Certifying cross-iteration dependence analysis: collect every
 * conflicting access pair of `loop` into `out` (empty => iterations
 * are independent). `reductions_ok` permits commuting Reduce/Reduce
 * pairs (loop_iterations_commute semantics); pass false for the strict
 * parallelism check (loop_parallelizable semantics). Sound in the
 * "no conflicts" direction: an empty result is a proof, a non-empty
 * one may contain false positives.
 */
bool loop_conflicts(const Context& ctx, const StmtPtr& loop,
                    bool reductions_ok, std::vector<LoopConflict>* out);

/** Collect all accesses in a statement (recursively, through calls). */
std::vector<Access> collect_accesses(const StmtPtr& s);

/** Collect all accesses in a block. */
std::vector<Access> collect_accesses_block(const std::vector<StmtPtr>& b);

/** Names allocated by Alloc statements within `b` (recursively). */
std::vector<std::string> collect_allocs(const std::vector<StmtPtr>& b);

/**
 * Can the two accesses refer to the same memory cell in a way that
 * matters for ordering? Read/Read never conflicts; Reduce/Reduce on the
 * same buffer commutes (associative `+=`). Binders of `b` are renamed
 * apart before the overlap test.
 */
bool accesses_conflict(const Context& ctx, const Access& a, const Access& b);

/**
 * Do `s1` and `s2` commute (can be reordered / run in either order)?
 * Conservative; `why` (optional) receives a diagnostic on failure.
 */
bool stmts_commute(const Context& ctx, const StmtPtr& s1, const StmtPtr& s2,
                   std::string* why = nullptr);

/** Do two blocks commute? */
bool blocks_commute(const Context& ctx, const std::vector<StmtPtr>& b1,
                    const std::vector<StmtPtr>& b2,
                    std::string* why = nullptr);

/**
 * Do different iterations of `loop` commute (no loop-carried
 * dependences, modulo commuting reductions)? Used by reorder_loops,
 * fission across a loop, and divide_with_recompute.
 */
bool loop_iterations_commute(const Context& ctx, const StmtPtr& loop,
                             std::string* why = nullptr);

/**
 * Strict parallelism check for `parallelize_loop`: no cross-iteration
 * write/write or read/write overlap at all (reductions count as
 * writes).
 */
bool loop_parallelizable(const Context& ctx, const StmtPtr& loop,
                         std::string* why = nullptr);

/**
 * Is a statement (or loop body) idempotent — executing it twice with
 * the same binder values equals executing it once? True for pure
 * assignments whose RHS does not read what the statement writes;
 * reductions are not idempotent. Used by remove_loop, add_loop,
 * divide_with_recompute.
 */
bool stmt_idempotent(const StmtPtr& s);
bool block_idempotent(const std::vector<StmtPtr>& b);

/** Does any access in `s` read buffer/var `name`? (through calls) */
bool stmt_reads(const StmtPtr& s, const std::string& name);

/** Does any access in `s` write or reduce buffer/var `name`? */
bool stmt_writes(const StmtPtr& s, const std::string& name);

}  // namespace exo2

#endif  // EXO2_ANALYSIS_EFFECTS_H_
