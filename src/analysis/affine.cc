#include "src/analysis/affine.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "src/analysis/memo.h"
#include "src/ir/builder.h"
#include "src/ir/interner.h"
#include "src/ir/printer.h"

namespace exo2 {

int64_t
Affine::coeff_of(const std::string& name) const
{
    // Lookup by canonical spelling, preserving the pre-interning
    // contract (atoms like "n / 8" are addressable by their printed
    // form). Spellings come from the print-once-per-atom cache; the
    // hot elimination loop keys on intern ids via coeff_of_key.
    for (const auto& [key, term] : terms) {
        if (atom_spelling(key, term.atom) == name)
            return term.coeff;
    }
    return 0;
}

int64_t
Affine::coeff_of_key(AtomKey key) const
{
    auto it = terms.find(key);
    return it == terms.end() ? 0 : it->second.coeff;
}

uint64_t
affine_hash(const Affine& a)
{
    uint64_t h = hash_combine(0xAFF1ull, static_cast<uint64_t>(a.constant));
    for (const auto& [key, term] : a.terms) {
        h = hash_combine(h, key);
        h = hash_combine(h, static_cast<uint64_t>(term.coeff));
    }
    return h;
}

bool
Affine::mentions(const std::string& name) const
{
    for (const auto& [key, term] : terms) {
        if (expr_uses(term.atom, name))
            return true;
    }
    return false;
}

namespace {

/**
 * Canonicalize an atom for keying: scalar variable reads are rewritten
 * to their Index-typed form (and enclosing operator types rederived),
 * so the same name denotes the same atom regardless of the type a
 * lenient parse assigned it. This mirrors the spelling-based keying of
 * the pre-interning implementation, where `n : f32` and `n : index`
 * printed identically and therefore unified.
 */
ExprPtr
canonical_atom(const ExprPtr& e)
{
    if (e->kind() == ExprKind::Read && e->idx().empty()) {
        return e->type() == ScalarType::Index ? e : var(e->name());
    }
    auto kids = e->children();
    bool changed = false;
    for (auto& k : kids) {
        ExprPtr nk = canonical_atom(k);
        if (nk != k) {
            changed = true;
            k = std::move(nk);
        }
    }
    return changed ? e->with_children(std::move(kids)) : e;
}

void
add_term(Affine* a, const ExprPtr& raw_atom, int64_t coeff)
{
    if (coeff == 0)
        return;
    ExprPtr atom = canonical_atom(raw_atom);
    AtomKey key = atom->intern_id();
    auto it = a->terms.find(key);
    if (it == a->terms.end()) {
        a->terms[key] = LinTerm{atom, coeff};
    } else {
        it->second.coeff += coeff;
        if (it->second.coeff == 0)
            a->terms.erase(it);
    }
}

void
accumulate(Affine* out, const Affine& a, int64_t scale)
{
    out->constant += scale * a.constant;
    for (const auto& [key, term] : a.terms)
        add_term(out, term.atom, scale * term.coeff);
}

/**
 * Memo cache for to_affine. Keys are raw interned-Expr pointers, which
 * are stable for the process lifetime (the interner retains every
 * node); values are immutable once computed because expressions are.
 */
std::unordered_map<const Expr*, Affine>&
affine_memo()
{
    static auto* m = new std::unordered_map<const Expr*, Affine>();
    return *m;
}

void
clear_affine_memo()
{
    affine_memo().clear();
}

memo_internal::ClearerRegistration affine_memo_reg(&clear_affine_memo);

constexpr size_t kAffineMemoCap = 1u << 20;

Affine
to_affine_uncached(const ExprPtr& e)
{
    Affine out;
    switch (e->kind()) {
      case ExprKind::Const:
        out.constant = static_cast<int64_t>(e->const_value());
        return out;
      case ExprKind::Read:
        if (e->idx().empty()) {
            add_term(&out, e, 1);
            return out;
        }
        add_term(&out, e, 1);  // buffer read: opaque
        return out;
      case ExprKind::USub:
        out = to_affine(e->lhs());
        return affine_neg(out);
      case ExprKind::BinOp: {
        switch (e->op()) {
          case BinOpKind::Add: {
            out = to_affine(e->lhs());
            accumulate(&out, to_affine(e->rhs()), 1);
            return out;
          }
          case BinOpKind::Sub: {
            out = to_affine(e->lhs());
            accumulate(&out, to_affine(e->rhs()), -1);
            return out;
          }
          case BinOpKind::Mul: {
            Affine l = to_affine(e->lhs());
            Affine r = to_affine(e->rhs());
            if (l.is_const()) {
                Affine res;
                accumulate(&res, r, l.constant);
                return res;
            }
            if (r.is_const()) {
                Affine res;
                accumulate(&res, l, r.constant);
                return res;
            }
            add_term(&out, e, 1);  // variable product: opaque
            return out;
          }
          default:
            add_term(&out, e, 1);  // div/mod/predicates: opaque
            return out;
        }
      }
      default:
        add_term(&out, e, 1);
        return out;
    }
}

}  // namespace

Affine
to_affine(const ExprPtr& e)
{
    if (!e)
        return Affine{};
    if (!analysis_memo_enabled())
        return to_affine_uncached(e);
    auto& memo = affine_memo();
    auto it = memo.find(e.get());
    if (it != memo.end()) {
        memo_internal::g_stats.affine_hits++;
        return it->second;
    }
    memo_internal::g_stats.affine_misses++;
    Affine out = to_affine_uncached(e);
    if (memo.size() >= kAffineMemoCap)
        memo.clear();
    memo.emplace(e.get(), out);
    return out;
}

const std::string&
atom_spelling(AtomKey key, const ExprPtr& atom)
{
    // Print-once cache: interned atoms are immortal, so the spelling
    // for a key never changes and the cache needs no invalidation.
    static auto* m = new std::unordered_map<AtomKey, std::string>();
    auto it = m->find(key);
    if (it == m->end())
        it = m->emplace(key, print_expr(atom)).first;
    return it->second;
}

ExprPtr
affine_to_expr(const Affine& a)
{
    // Emit terms in canonical-spelling order, matching the printed-form
    // keying of the pre-interning implementation (stable output, and
    // downstream tests/goldens depend on it).
    std::vector<const LinTerm*> ordered;
    ordered.reserve(a.terms.size());
    for (const auto& [key, term] : a.terms)
        ordered.push_back(&term);
    std::sort(ordered.begin(), ordered.end(),
              [](const LinTerm* x, const LinTerm* y) {
                  return atom_spelling(x->atom->intern_id(), x->atom) <
                         atom_spelling(y->atom->intern_id(), y->atom);
              });
    ExprPtr out;
    auto emit = [&](ExprPtr piece, bool negate) {
        if (!out) {
            out = negate ? -piece : piece;
        } else {
            out = negate ? (out - piece) : (out + piece);
        }
    };
    for (const LinTerm* tp : ordered) {
        const LinTerm& term = *tp;
        int64_t c = term.coeff;
        bool neg = c < 0;
        int64_t mag = neg ? -c : c;
        ExprPtr piece =
            (mag == 1) ? term.atom : idx_const(mag) * term.atom;
        emit(piece, neg);
    }
    if (a.constant != 0 || !out) {
        bool neg = a.constant < 0;
        emit(idx_const(neg ? -a.constant : a.constant), neg);
    }
    return out;
}

Affine
affine_add(const Affine& a, const Affine& b)
{
    Affine out = a;
    accumulate(&out, b, 1);
    return out;
}

Affine
affine_sub(const Affine& a, const Affine& b)
{
    Affine out = a;
    accumulate(&out, b, -1);
    return out;
}

Affine
affine_scale(const Affine& a, int64_t k)
{
    Affine out;
    accumulate(&out, a, k);
    return out;
}

Affine
affine_neg(const Affine& a)
{
    return affine_scale(a, -1);
}

bool
affine_is_zero(const Affine& a)
{
    return a.constant == 0 && a.terms.empty();
}

bool
affine_equal(const ExprPtr& a, const ExprPtr& b)
{
    return affine_is_zero(affine_sub(to_affine(a), to_affine(b)));
}

}  // namespace exo2
