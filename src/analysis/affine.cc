#include "src/analysis/affine.h"

#include "src/ir/builder.h"
#include "src/ir/printer.h"

namespace exo2 {

int64_t
Affine::coeff_of(const std::string& name) const
{
    auto it = terms.find(name);
    return it == terms.end() ? 0 : it->second.coeff;
}

bool
Affine::mentions(const std::string& name) const
{
    for (const auto& [key, term] : terms) {
        if (expr_uses(term.atom, name))
            return true;
    }
    return false;
}

namespace {

void
add_term(Affine* a, const ExprPtr& atom, int64_t coeff)
{
    if (coeff == 0)
        return;
    std::string key = print_expr(atom);
    auto it = a->terms.find(key);
    if (it == a->terms.end()) {
        a->terms[key] = LinTerm{atom, coeff};
    } else {
        it->second.coeff += coeff;
        if (it->second.coeff == 0)
            a->terms.erase(it);
    }
}

void
accumulate(Affine* out, const Affine& a, int64_t scale)
{
    out->constant += scale * a.constant;
    for (const auto& [key, term] : a.terms)
        add_term(out, term.atom, scale * term.coeff);
}

}  // namespace

Affine
to_affine(const ExprPtr& e)
{
    Affine out;
    if (!e)
        return out;
    switch (e->kind()) {
      case ExprKind::Const:
        out.constant = static_cast<int64_t>(e->const_value());
        return out;
      case ExprKind::Read:
        if (e->idx().empty()) {
            add_term(&out, e, 1);
            return out;
        }
        add_term(&out, e, 1);  // buffer read: opaque
        return out;
      case ExprKind::USub:
        out = to_affine(e->lhs());
        return affine_neg(out);
      case ExprKind::BinOp: {
        switch (e->op()) {
          case BinOpKind::Add: {
            out = to_affine(e->lhs());
            accumulate(&out, to_affine(e->rhs()), 1);
            return out;
          }
          case BinOpKind::Sub: {
            out = to_affine(e->lhs());
            accumulate(&out, to_affine(e->rhs()), -1);
            return out;
          }
          case BinOpKind::Mul: {
            Affine l = to_affine(e->lhs());
            Affine r = to_affine(e->rhs());
            if (l.is_const()) {
                Affine res;
                accumulate(&res, r, l.constant);
                return res;
            }
            if (r.is_const()) {
                Affine res;
                accumulate(&res, l, r.constant);
                return res;
            }
            add_term(&out, e, 1);  // variable product: opaque
            return out;
          }
          default:
            add_term(&out, e, 1);  // div/mod/predicates: opaque
            return out;
        }
      }
      default:
        add_term(&out, e, 1);
        return out;
    }
}

ExprPtr
affine_to_expr(const Affine& a)
{
    ExprPtr out;
    auto emit = [&](ExprPtr piece, bool negate) {
        if (!out) {
            out = negate ? -piece : piece;
        } else {
            out = negate ? (out - piece) : (out + piece);
        }
    };
    for (const auto& [key, term] : a.terms) {
        int64_t c = term.coeff;
        bool neg = c < 0;
        int64_t mag = neg ? -c : c;
        ExprPtr piece =
            (mag == 1) ? term.atom : idx_const(mag) * term.atom;
        emit(piece, neg);
    }
    if (a.constant != 0 || !out) {
        bool neg = a.constant < 0;
        emit(idx_const(neg ? -a.constant : a.constant), neg);
    }
    return out;
}

Affine
affine_add(const Affine& a, const Affine& b)
{
    Affine out = a;
    accumulate(&out, b, 1);
    return out;
}

Affine
affine_sub(const Affine& a, const Affine& b)
{
    Affine out = a;
    accumulate(&out, b, -1);
    return out;
}

Affine
affine_scale(const Affine& a, int64_t k)
{
    Affine out;
    accumulate(&out, a, k);
    return out;
}

Affine
affine_neg(const Affine& a)
{
    return affine_scale(a, -1);
}

bool
affine_is_zero(const Affine& a)
{
    return a.constant == 0 && a.terms.empty();
}

bool
affine_equal(const ExprPtr& a, const ExprPtr& b)
{
    return affine_is_zero(affine_sub(to_affine(a), to_affine(b)));
}

}  // namespace exo2
