#ifndef EXO2_ANALYSIS_MEMO_H_
#define EXO2_ANALYSIS_MEMO_H_

/**
 * @file
 * Control plane for the analysis memoization caches.
 *
 * The hot analyses — affine normalization (`to_affine`), linear
 * implication checks (`LinearSystem`), and effect collection
 * (`collect_accesses*`) — keep process-global memo caches keyed on the
 * structural identity of immutable IR nodes (see DESIGN.md, "Structural
 * identity and analysis memoization"). Because the IR is immutable and
 * `Expr` nodes are hash-consed, a cache entry can never be invalidated
 * by a schedule edit: edits build new nodes, they never mutate old
 * ones. The only cache management needed is eviction for memory, and a
 * global kill switch used by the cross-check tests to compare memoized
 * results against from-scratch recomputation.
 *
 * Threading: the analysis layer (and all its caches) is single-threaded
 * by design — scheduling applies one primitive at a time. The caches
 * are therefore deliberately unsynchronized. The Expr interner does
 * take a lock (ir/expr.cc) because IR *construction* is also reachable
 * from bench/test harness setup paths; the analyses themselves must
 * not be called concurrently until these caches grow synchronization.
 */

#include <cstdint>

namespace exo2 {

/** Are the analysis memo caches consulted? Defaults to true. */
bool analysis_memo_enabled();

/**
 * Enable or disable all analysis memo caches. Disabling also clears
 * them, so a later re-enable starts cold (this is what makes
 * memoized-vs-uncached cross-checking meaningful).
 */
void set_analysis_memo_enabled(bool on);

/** Drop every memo cache entry (affine, linear, effects). */
void clear_analysis_memo();

/** Aggregate hit/miss counters, for tests and benchmark reporting. */
struct AnalysisMemoStats
{
    uint64_t affine_hits = 0;
    uint64_t affine_misses = 0;
    uint64_t linear_hits = 0;
    uint64_t linear_misses = 0;
    uint64_t effects_hits = 0;
    uint64_t effects_misses = 0;
};

AnalysisMemoStats analysis_memo_stats();

/** Reset the hit/miss counters (does not touch cache contents). */
void reset_analysis_memo_stats();

namespace memo_internal {

/** Register a cache-clearing hook; called by clear_analysis_memo(). */
void register_clearer(void (*fn)());

/** One registration helper per cache translation unit. */
struct ClearerRegistration
{
    explicit ClearerRegistration(void (*fn)()) { register_clearer(fn); }
};

/** Shared counters, bumped by the individual caches. */
extern AnalysisMemoStats g_stats;

}  // namespace memo_internal

}  // namespace exo2

#endif  // EXO2_ANALYSIS_MEMO_H_
