#ifndef EXO2_ANALYSIS_CONTEXT_H_
#define EXO2_ANALYSIS_CONTEXT_H_

/**
 * @file
 * Program-point contexts: the facts (asserts, loop ranges, guards) in
 * scope at a location, packaged as a LinearSystem plus the ordered list
 * of enclosing loop binders. All primitive safety checks query these.
 */

#include <string>
#include <vector>

#include "src/analysis/linear.h"
#include "src/ir/proc.h"

namespace exo2 {

/** An enclosing loop binder with its (possibly symbolic) bounds. */
struct LoopBinder
{
    std::string name;
    ExprPtr lo;
    ExprPtr hi;
};

/**
 * The hypotheses in scope at a program point, with proof helpers.
 */
class Context
{
  public:
    /** Build the context of the node at `path` in `p` (facts from
     *  asserts, size-arg nonnegativity, enclosing loops and guards).
     *  The node's own binder (if a For) is NOT in scope. */
    static Context at(const ProcPtr& p, const Path& path);

    /** Like `at`, but with the For at `path` entered (binder in scope). */
    static Context inside(const ProcPtr& p, const Path& path);

    const std::vector<LoopBinder>& binders() const { return binders_; }
    const LinearSystem& system() const { return sys_; }
    LinearSystem& system() { return sys_; }

    /** Push an extra loop binder (used when descending manually). */
    void enter_loop(const std::string& name, const ExprPtr& lo,
                    const ExprPtr& hi);

    /** Add a guard hypothesis. */
    void assume(const ExprPtr& pred) { sys_.add_pred(pred); }

    // -- Proof helpers (conservative: false means "not provable") -------

    bool prove_pred(const ExprPtr& cond) const
    {
        return sys_.implies_pred(cond);
    }

    bool prove_eq(const ExprPtr& a, const ExprPtr& b) const
    {
        return sys_.implies_eq0(affine_sub(to_affine(a), to_affine(b)));
    }

    bool prove_le(const ExprPtr& a, const ExprPtr& b) const
    {
        return sys_.implies_ge0(affine_sub(to_affine(b), to_affine(a)));
    }

    bool prove_lt(const ExprPtr& a, const ExprPtr& b) const
    {
        Affine d = affine_sub(to_affine(b), to_affine(a));
        d.constant -= 1;
        return sys_.implies_ge0(d);
    }

    bool prove_ge0(const ExprPtr& e) const { return sys_.implies_ge0(e); }

    bool prove_divisible(const ExprPtr& e, int64_t k) const
    {
        return sys_.implies_divisible(e, k);
    }

  private:
    LinearSystem sys_;
    std::vector<LoopBinder> binders_;
};

/** Structural negation of a comparison predicate (null if impossible). */
ExprPtr negate_pred(const ExprPtr& cond);

}  // namespace exo2

#endif  // EXO2_ANALYSIS_CONTEXT_H_
