#include "src/analysis/memo.h"

#include <vector>

namespace exo2 {

namespace {

bool g_enabled = true;

std::vector<void (*)()>&
clearers()
{
    static std::vector<void (*)()> v;
    return v;
}

}  // namespace

namespace memo_internal {

AnalysisMemoStats g_stats;

void
register_clearer(void (*fn)())
{
    clearers().push_back(fn);
}

}  // namespace memo_internal

bool
analysis_memo_enabled()
{
    return g_enabled;
}

void
set_analysis_memo_enabled(bool on)
{
    if (g_enabled && !on)
        clear_analysis_memo();
    g_enabled = on;
}

void
clear_analysis_memo()
{
    for (auto fn : clearers())
        fn();
}

AnalysisMemoStats
analysis_memo_stats()
{
    return memo_internal::g_stats;
}

void
reset_analysis_memo_stats()
{
    memo_internal::g_stats = AnalysisMemoStats{};
}

}  // namespace exo2
