#ifndef EXO2_ANALYSIS_LINEAR_H_
#define EXO2_ANALYSIS_LINEAR_H_

/**
 * @file
 * A small linear integer arithmetic checker.
 *
 * This replaces the SMT solver Exo 2 relies on. Constraints are affine
 * inequalities over atoms (variables and opaque div/mod subterms).
 * Floor-division and modulo atoms are axiomatized (`e == c*(e/c) + e%c`,
 * `0 <= e%c < c`), then queries are decided by Fourier–Motzkin
 * elimination with integer tightening. The checker is conservative:
 * "not provable" answers reject a rewrite, never accept one.
 */

#include <vector>

#include "src/analysis/affine.h"

namespace exo2 {

/** A conjunction of affine constraints `a >= 0`. */
class LinearSystem
{
  public:
    /** Add constraint `a >= 0`, axiomatizing new div/mod atoms. */
    void add_ge0(const Affine& a);

    /** Add constraint `a == 0`. */
    void add_eq0(const Affine& a);

    /** Add `e >= 0` for an expression. */
    void add_expr_ge0(const ExprPtr& e);

    /**
     * Add a predicate (comparison / conjunction) as a hypothesis.
     * Disjunctions and non-linear predicates are ignored
     * (conservatively weakening the context).
     */
    void add_pred(const ExprPtr& cond);

    /** Add the negation of a predicate where expressible. */
    void add_pred_negated(const ExprPtr& cond);

    /**
     * Is the system infeasible over the integers? Sound "yes": a true
     * return guarantees no integer solution. May answer false (unknown)
     * for feasible or hard systems.
     *
     * Memoized process-wide on a commutative digest of the constraint
     * multiset (see analysis/memo.h): infeasibility is a property of
     * the constraint multiset, so a cached "yes" stays sound no matter
     * the insertion order that produced it.
     */
    bool infeasible() const;

    /** Is `e >= 0` implied for all integer solutions? */
    bool implies_ge0(const ExprPtr& e) const;
    bool implies_ge0(const Affine& a) const;

    /** Is `e == 0` implied? */
    bool implies_eq0(const Affine& a) const;

    /** Is predicate `cond` implied? (comparisons and conjunctions) */
    bool implies_pred(const ExprPtr& cond) const;

    /** Is `e` divisible by `k` for all solutions? */
    bool implies_divisible(const ExprPtr& e, int64_t k) const;

    size_t size() const { return ge0_.size(); }

  private:
    void axiomatize_atoms(const Affine& a);

    /** Run Fourier–Motzkin without consulting the memo cache. */
    bool infeasible_uncached() const;

    std::vector<Affine> ge0_;
    std::vector<AtomKey> axiomatized_;

    /** Incremental order-insensitive digest of ge0_ (two independent
     *  commutative sums), used as the memo key for implication and
     *  infeasibility queries. Updated by add_ge0. */
    uint64_t sig1_ = 0;
    uint64_t sig2_ = 0;
};

}  // namespace exo2

#endif  // EXO2_ANALYSIS_LINEAR_H_
