#include "src/verify/oracle.h"

#include <cmath>
#include <sstream>

#include "src/ir/errors.h"
#include "src/obs/trace.h"
#include "src/verify/cjit.h"

namespace exo2 {
namespace verify {

namespace {

/** Deterministic scalar stream in [-1, 1] (same generator family as
 *  Buffer::fill_random). */
struct ScalarStream
{
    uint64_t s;
    explicit ScalarStream(uint64_t seed)
        : s(seed * 6364136223846793005ull + 1442695040888963407ull) {}
    double next()
    {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        double u = static_cast<double>((s >> 16) & 0xFFFFFF) /
                   static_cast<double>(0xFFFFFF);
        return 2.0 * u - 1.0;
    }
};

bool
values_close(double a, double b, ScalarType t, double tol_scale)
{
    if (!is_float(t))
        return a == b;
    double atol = (t == ScalarType::F32 ? 1e-4 : 1e-9) * tol_scale;
    double rtol = (t == ScalarType::F32 ? 1e-3 : 1e-8) * tol_scale;
    if (std::isnan(a) || std::isnan(b))
        return std::isnan(a) && std::isnan(b);
    return std::fabs(a - b) <=
           atol + rtol * std::max(std::fabs(a), std::fabs(b));
}

/** Deep copy of generated inputs (each oracle runs on fresh state). */
OracleInputs
clone_inputs(const ProcPtr& p, const OracleInputs& in)
{
    OracleInputs out;
    size_t bi = 0;
    (void)p;
    for (const RunArg& a : in.args) {
        if (a.kind == RunArg::Kind::Buf) {
            auto b = std::make_unique<Buffer>(a.buf->type(),
                                              a.buf->dims());
            for (int64_t i = 0; i < a.buf->size(); i++)
                b->set(i, a.buf->at(i));
            out.args.push_back(RunArg::make_buffer(b.get()));
            out.buffers.push_back(std::move(b));
            bi++;
        } else {
            out.args.push_back(a);
        }
    }
    return out;
}

std::string
fmt_double(double v)
{
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
}

}  // namespace

int64_t
eval_index_expr(const ExprPtr& e, const SizeEnv& env)
{
    switch (e->kind()) {
      case ExprKind::Const:
        return static_cast<int64_t>(e->const_value());
      case ExprKind::Read: {
        if (!e->idx().empty())
            throw VerifyError("eval_index_expr: buffer read in size expr");
        auto it = env.find(e->name());
        if (it == env.end())
            throw VerifyError("eval_index_expr: unbound size '" +
                              e->name() + "'");
        return it->second;
      }
      case ExprKind::USub:
        return -eval_index_expr(e->lhs(), env);
      case ExprKind::BinOp: {
        int64_t l = eval_index_expr(e->lhs(), env);
        if (e->op() == BinOpKind::And)
            return (l != 0 && eval_index_expr(e->rhs(), env) != 0) ? 1 : 0;
        if (e->op() == BinOpKind::Or)
            return (l != 0 || eval_index_expr(e->rhs(), env) != 0) ? 1 : 0;
        int64_t r = eval_index_expr(e->rhs(), env);
        switch (e->op()) {
          case BinOpKind::Add: return l + r;
          case BinOpKind::Sub: return l - r;
          case BinOpKind::Mul: return l * r;
          case BinOpKind::Div: {
            if (r == 0)
                throw VerifyError("eval_index_expr: division by zero");
            int64_t q = l / r;
            if ((l % r != 0) && ((l < 0) != (r < 0)))
                q -= 1;
            return q;
          }
          case BinOpKind::Mod: {
            if (r == 0)
                throw VerifyError("eval_index_expr: modulo by zero");
            int64_t m = l % r;
            if (m != 0 && ((l < 0) != (r < 0)))
                m += r;
            return m;
          }
          case BinOpKind::Lt: return l < r ? 1 : 0;
          case BinOpKind::Le: return l <= r ? 1 : 0;
          case BinOpKind::Gt: return l > r ? 1 : 0;
          case BinOpKind::Ge: return l >= r ? 1 : 0;
          case BinOpKind::Eq: return l == r ? 1 : 0;
          case BinOpKind::Ne: return l != r ? 1 : 0;
          default:
            throw VerifyError("eval_index_expr: unsupported operator");
        }
      }
      default:
        throw VerifyError("eval_index_expr: unsupported expression kind");
    }
}

bool
preds_hold(const ProcPtr& p, const SizeEnv& env)
{
    for (const auto& pred : p->preds()) {
        if (eval_index_expr(pred, env) == 0)
            return false;
    }
    return true;
}

OracleInputs
make_inputs(const ProcPtr& p, const SizeEnv& env, uint64_t seed)
{
    OracleInputs out;
    ScalarStream scalars(seed ^ 0x5DEECE66Dull);
    size_t arg_i = 0;
    for (const ProcArg& a : p->args()) {
        arg_i++;
        if (a.dims.empty()) {
            if (a.is_size || a.type == ScalarType::Index) {
                auto it = env.find(a.name);
                if (it == env.end()) {
                    throw VerifyError("make_inputs: no size provided for '" +
                                      a.name + "'");
                }
                out.args.push_back(RunArg::make_size(it->second));
            } else {
                out.args.push_back(RunArg::make_scalar(scalars.next()));
            }
            continue;
        }
        if (a.is_window) {
            throw VerifyError(
                "make_inputs: top-level window argument '" + a.name +
                "' is not supported by the oracle harness");
        }
        std::vector<int64_t> dims;
        for (const auto& d : a.dims) {
            int64_t v = eval_index_expr(d, env);
            if (v < 0)
                throw VerifyError("make_inputs: negative dimension for '" +
                                  a.name + "'");
            dims.push_back(v);
        }
        auto buf = std::make_unique<Buffer>(a.type, dims);
        buf->fill_random(seed * 1000003ull + arg_i * 7919ull);
        out.args.push_back(RunArg::make_buffer(buf.get()));
        out.buffers.push_back(std::move(buf));
    }
    return out;
}

TriOracleReport
tri_oracle_check(const ProcPtr& original, const ProcPtr& scheduled,
                 const SizeEnv& env, uint64_t seed, double tol_scale)
{
    EXO2_SPAN("verify.tri_oracle", {{"proc", scheduled->name()}});
    TriOracleReport rep;

    if (!preds_hold(original, env)) {
        throw VerifyError(
            "tri_oracle_check: sizes violate the original's assertions "
            "(pick sizes satisfying " +
            original->name() + "'s preds)");
    }
    if (!preds_hold(scheduled, env)) {
        rep.ok = false;
        rep.detail = "scheduled proc acquired an assertion the original "
                     "does not have (fails under the chosen sizes)";
        return rep;
    }

    OracleInputs master = make_inputs(original, env, seed);

    // Oracle 3: reference = interpreter on the unscheduled original.
    OracleInputs ref = clone_inputs(original, master);
    try {
        interp_run(original, ref.args);
    } catch (const std::exception& e) {
        throw VerifyError(std::string("reference interpretation of '") +
                          original->name() + "' failed: " + e.what());
    }

    // Oracle 1: interpreter on the scheduled proc.
    OracleInputs it = clone_inputs(original, master);
    try {
        interp_run(scheduled, it.args);
    } catch (const std::exception& e) {
        rep.ok = false;
        rep.detail = std::string("interpreter diverged on the scheduled "
                                 "proc (dynamic check): ") +
                     e.what();
        return rep;
    }

    // Oracle 2: compiled C for the scheduled proc. The candidate is
    // untrusted generated code: by default it executes in the fault
    // sandbox (forked child, rlimits, watchdog) so a miscompiled
    // kernel that crashes or never terminates becomes a structured
    // fault in the report instead of killing the driver. EXO2_SANDBOX=0
    // selects the trusted in-process fast path.
    OracleInputs cc = clone_inputs(original, master);
    try {
        CompiledProc compiled(scheduled);
        if (sandbox_enabled()) {
            SandboxOutcome so = compiled.run_sandboxed(cc.args);
            if (!so.ok) {
                rep.ok = false;
                rep.fault = so.fault;
                rep.detail = "C oracle faulted on the scheduled proc: " +
                             so.fault.to_string();
                return rep;
            }
        } else {
            compiled.run(cc.args);
        }
    } catch (const FaultError& e) {
        // Build-phase fault: the compiler failed/hung or the object
        // would not load. Structured, recoverable.
        rep.ok = false;
        rep.fault = e.fault();
        rep.detail = "C oracle faulted on the scheduled proc: " +
                     e.fault().to_string();
        return rep;
    } catch (const std::exception& e) {
        rep.ok = false;
        rep.detail =
            std::string("C backend diverged on the scheduled proc: ") +
            e.what();
        return rep;
    }

    // Compare every buffer argument across the three runs.
    const auto& formals = original->args();
    size_t bi = 0;
    for (size_t i = 0; i < formals.size(); i++) {
        if (master.args[i].kind != RunArg::Kind::Buf)
            continue;
        const Buffer* rb = ref.buffers[bi].get();
        const Buffer* ib = it.buffers[bi].get();
        const Buffer* cb = cc.buffers[bi].get();
        bi++;
        ScalarType t = formals[i].type;
        for (int64_t k = 0; k < rb->size(); k++) {
            double rv = rb->at(k);
            double iv = ib->at(k);
            double cv = cb->at(k);
            const char* which = nullptr;
            if (!values_close(iv, rv, t, tol_scale)) {
                which = "interp(scheduled) vs reference";
            } else if (!values_close(cv, rv, t, tol_scale)) {
                which = "codegen-C(scheduled) vs reference";
            } else if (!values_close(cv, iv, t, tol_scale)) {
                which = "codegen-C(scheduled) vs interp(scheduled)";
            }
            if (which) {
                rep.ok = false;
                rep.detail = std::string(which) + " at '" +
                             formals[i].name + "'[" + std::to_string(k) +
                             "]: reference=" + fmt_double(rv) +
                             " interp=" + fmt_double(iv) +
                             " cc=" + fmt_double(cv);
                return rep;
            }
        }
    }
    return rep;
}

}  // namespace verify
}  // namespace exo2
