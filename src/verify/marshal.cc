#include "src/verify/marshal.h"

#include <cstring>

#include "src/ir/errors.h"

namespace exo2 {
namespace verify {

namespace {

constexpr size_t kAlign = 64;

size_t
align_up(size_t v)
{
    return (v + kAlign - 1) & ~(kAlign - 1);
}

void
store_elem(unsigned char* p, ScalarType t, double v)
{
    switch (t) {
      case ScalarType::F32: {
        float f = static_cast<float>(v);
        std::memcpy(p, &f, sizeof(f));
        break;
      }
      case ScalarType::F64:
        std::memcpy(p, &v, sizeof(v));
        break;
      case ScalarType::I8: {
        int8_t x = static_cast<int8_t>(v);
        std::memcpy(p, &x, sizeof(x));
        break;
      }
      case ScalarType::I32: {
        int32_t x = static_cast<int32_t>(v);
        std::memcpy(p, &x, sizeof(x));
        break;
      }
      default:
        throw VerifyError("unsupported buffer element type");
    }
}

double
load_elem(const unsigned char* p, ScalarType t)
{
    switch (t) {
      case ScalarType::F32: {
        float f;
        std::memcpy(&f, p, sizeof(f));
        return static_cast<double>(f);
      }
      case ScalarType::F64: {
        double v;
        std::memcpy(&v, p, sizeof(v));
        return v;
      }
      case ScalarType::I8: {
        int8_t x;
        std::memcpy(&x, p, sizeof(x));
        return static_cast<double>(x);
      }
      case ScalarType::I32: {
        int32_t x;
        std::memcpy(&x, p, sizeof(x));
        return static_cast<double>(x);
      }
      default:
        throw VerifyError("unsupported buffer element type");
    }
}

}  // namespace

ArgArena::ArgArena(const ProcPtr& proc, const std::vector<RunArg>& args)
{
    const auto& formals = proc->args();
    if (formals.size() != args.size())
        throw VerifyError("run: arity mismatch for '" + proc->name() +
                          "'");

    slots_.resize(args.size());
    argv_.assign(args.size(), nullptr);
    size_t off = 0;
    for (size_t i = 0; i < args.size(); i++) {
        const ProcArg& f = formals[i];
        const RunArg& a = args[i];
        Slot& s = slots_[i];
        s.name = f.name;
        switch (a.kind) {
          case RunArg::Kind::Size:
            if (!f.dims.empty())
                throw VerifyError("run: size passed for buffer arg");
            s.offset = off;
            s.elem = sizeof(int64_t);
            off = align_up(off + s.elem);
            break;
          case RunArg::Kind::Scalar:
            s.offset = off;
            s.elem = sizeof(int64_t);  // one 8-byte slot fits every type
            s.type = f.type;
            off = align_up(off + s.elem);
            break;
          case RunArg::Kind::Buf: {
            if (!a.buf)
                throw VerifyError("run: null buffer argument");
            s.type = a.buf->type();
            s.count = a.buf->size();
            s.elem = static_cast<size_t>(type_size_bytes(s.type));
            s.buf = a.buf;
            // guard | payload | guard, payload 64-byte aligned
            s.offset = off + kGuardBytes;
            off = align_up(s.offset +
                           s.elem * static_cast<size_t>(s.count) +
                           kGuardBytes);
            break;
          }
        }
    }
    bytes_ = off;

    // Stash the marshalling plan's source values now: scalars/sizes are
    // copied at marshal_in time from the RunArg, so record them in the
    // slot (the args vector may not outlive this object).
    for (size_t i = 0; i < args.size(); i++) {
        const RunArg& a = args[i];
        if (a.kind == RunArg::Kind::Size) {
            slots_[i].count = a.size;  // reuse count as the size value
        } else if (a.kind == RunArg::Kind::Scalar) {
            // encode through the formal type at marshal_in; remember
            // the double here
            slots_[i].scalar_value = a.scalar;
            slots_[i].is_scalar = true;
        }
    }
}

void
ArgArena::marshal_in(unsigned char* base)
{
    base_ = base;
    for (size_t i = 0; i < slots_.size(); i++) {
        Slot& s = slots_[i];
        unsigned char* p = base_ + s.offset;
        if (s.buf) {
            std::memset(p - kGuardBytes, kCanary, kGuardBytes);
            std::memset(p + s.elem * static_cast<size_t>(s.count),
                        kCanary, kGuardBytes);
            for (int64_t k = 0; k < s.count; k++)
                store_elem(p + s.elem * static_cast<size_t>(k), s.type,
                           s.buf->at(k));
        } else if (s.is_scalar) {
            // Store the native representation the generated entry
            // point dereferences (exo2_run casts argv[i] to the
            // formal's C type).
            std::memset(p, 0, sizeof(int64_t));
            switch (s.type) {
              case ScalarType::F32:
              case ScalarType::F64:
              case ScalarType::I8:
              case ScalarType::I32:
                store_elem(p, s.type, s.scalar_value);
                break;
              default:
                throw VerifyError(
                    "run: unsupported scalar formal type for '" +
                    s.name + "'");
            }
        } else {
            int64_t v = s.count;
            std::memcpy(p, &v, sizeof(v));
        }
        argv_[i] = p;
    }
}

void
ArgArena::marshal_out()
{
    for (const Slot& s : slots_) {
        if (!s.buf)
            continue;
        const unsigned char* p = base_ + s.offset;
        const unsigned char* head = p - kGuardBytes;
        const unsigned char* tail =
            p + s.elem * static_cast<size_t>(s.count);
        for (size_t i = 0; i < kGuardBytes; i++) {
            if (head[i] != kCanary || tail[i] != kCanary) {
                throw VerifyError(
                    "compiled code wrote outside buffer '" + s.name +
                    "' (" + (head[i] != kCanary ? "before" : "after") +
                    " its storage)");
            }
        }
        for (int64_t k = 0; k < s.count; k++)
            s.buf->set(k, load_elem(p + s.elem * static_cast<size_t>(k),
                                    s.type));
    }
}

}  // namespace verify
}  // namespace exo2
