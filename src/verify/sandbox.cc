#include "src/verify/sandbox.h"

#include <fcntl.h>
#include <signal.h>
#include <spawn.h>
#include <sys/mman.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "src/obs/trace.h"
#include "src/util/env.h"
#include "src/util/rng.h"
#include "src/verify/marshal.h"

extern char** environ;

namespace exo2 {
namespace verify {

namespace {

using Clock = std::chrono::steady_clock;

double
since(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Wait for `pid` with a wall-clock deadline; SIGKILL past it. The
 *  sleep between polls ramps 0.2ms -> 2ms so short runs return fast
 *  and long runs don't burn CPU. */
bool
wait_deadline(pid_t pid, double timeout_seconds, int* status)
{
    Clock::time_point t0 = Clock::now();
    useconds_t nap = 200;
    for (;;) {
        pid_t r = waitpid(pid, status, WNOHANG);
        if (r == pid)
            return false;  // reaped in time
        if (r < 0 && errno != EINTR) {
            // Reap failed outright; treat as exited-unknown.
            *status = 0;
            return false;
        }
        if (timeout_seconds > 0 && since(t0) > timeout_seconds) {
            kill(pid, SIGKILL);
            while (waitpid(pid, status, 0) < 0 && errno == EINTR) {
            }
            return true;
        }
        usleep(nap);
        if (nap < 2000)
            nap *= 2;
    }
}

}  // namespace

// ---------------------------------------------------------------------------
// run_command
// ---------------------------------------------------------------------------

SpawnResult
run_command(const std::vector<std::string>& argv,
            const std::string& output_path, double timeout_seconds)
{
    SpawnResult res;
    if (argv.empty()) {
        res.error = "empty argv";
        return res;
    }

    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv)
        cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);

    posix_spawn_file_actions_t fa;
    posix_spawn_file_actions_init(&fa);
    if (!output_path.empty()) {
        posix_spawn_file_actions_addopen(
            &fa, 1, output_path.c_str(),
            O_WRONLY | O_CREAT | O_TRUNC, 0644);
        posix_spawn_file_actions_adddup2(&fa, 1, 2);
    }

    Clock::time_point t0 = Clock::now();
    pid_t pid = -1;
    int rc = posix_spawnp(&pid, cargv[0], &fa, nullptr, cargv.data(),
                          environ);
    posix_spawn_file_actions_destroy(&fa);
    if (rc != 0) {
        res.error = std::string(cargv[0]) + ": " + std::strerror(rc);
        return res;
    }
    res.started = true;

    int status = 0;
    res.timed_out = wait_deadline(pid, timeout_seconds, &status);
    res.seconds = since(t0);
    if (WIFEXITED(status)) {
        res.exited = true;
        res.exit_code = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
        res.term_signal = WTERMSIG(status);
    }
    return res;
}

bool
spawn_failure_transient(const SpawnResult& r,
                        const std::string& captured_output)
{
    if (!r.started) {
        return r.error.find("Cannot allocate memory") !=
                   std::string::npos ||
               r.error.find("Resource temporarily unavailable") !=
                   std::string::npos;
    }
    if (r.timed_out)
        return false;  // a hung compiler is not transient
    // The OOM killer delivers SIGKILL; a compiler crash (SIGSEGV) is a
    // real bug worth surfacing, not retrying.
    if (r.term_signal == SIGKILL)
        return true;
    if (r.exited && r.exit_code != 0) {
        for (const char* marker :
             {"No space left on device", "cannot allocate memory",
              "out of memory", "Cannot allocate memory",
              "virtual memory exhausted"}) {
            if (captured_output.find(marker) != std::string::npos)
                return true;
        }
    }
    return false;
}

// ---------------------------------------------------------------------------
// sandbox_call
// ---------------------------------------------------------------------------

SandboxLimits
SandboxLimits::defaults()
{
    SandboxLimits l;
    l.wall_seconds = util::env_double("EXO2_SANDBOX_WALL",
                                      l.wall_seconds, 0.01, 86400.0);
    return l;
}

bool
sandbox_enabled()
{
    return util::env_flag("EXO2_SANDBOX", true);
}

namespace {

/** Child -> parent results, at the head of the shared mapping. */
struct SharedControl
{
    std::atomic<int> done;  ///< 1 once the child finished its calls
    double seconds;         ///< child-measured kernel wall clock
};

struct SharedMap
{
    void* base = nullptr;
    size_t len = 0;
    ~SharedMap()
    {
        if (base)
            munmap(base, len);
    }
};

}  // namespace

SandboxOutcome
sandbox_call(void (*entry)(void**), const ProcPtr& proc,
             const std::vector<RunArg>& args, int iters,
             const SandboxLimits& limits)
{
    EXO2_SPAN("sandbox.run",
              {{"proc", proc->name()}, {"iters", iters}});
    SandboxOutcome out;
    ArgArena arena(proc, args);

    constexpr size_t kCtl = 64;  // SharedControl, padded to a line
    static_assert(sizeof(SharedControl) <= kCtl, "control block grew");
    SharedMap map;
    map.len = kCtl + arena.bytes();
    map.base = mmap(nullptr, map.len, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (map.base == MAP_FAILED) {
        map.base = nullptr;
        out.fault.kind = FaultKind::SandboxError;
        out.fault.phase = FaultPhase::Execute;
        out.fault.detail =
            std::string("mmap(MAP_SHARED) failed: ") +
            std::strerror(errno);
        return out;
    }
    auto* ctl = new (map.base) SharedControl();
    ctl->done.store(0);
    ctl->seconds = 0.0;
    arena.marshal_in(static_cast<unsigned char*>(map.base) + kCtl);

    Clock::time_point t0 = Clock::now();
    pid_t pid = fork();
    if (pid < 0) {
        out.fault.kind = FaultKind::SandboxError;
        out.fault.phase = FaultPhase::Execute;
        out.fault.detail =
            std::string("fork failed: ") + std::strerror(errno);
        return out;
    }
    if (pid == 0) {
        // Child. Only async-signal-safe-ish work from here: apply the
        // rlimits, run the kernel, publish the timing, _exit. Never
        // unwind C++ state shared with the parent.
        if (limits.cpu_seconds > 0) {
            struct rlimit rl;
            rl.rlim_cur = static_cast<rlim_t>(limits.cpu_seconds);
            rl.rlim_max = static_cast<rlim_t>(limits.cpu_seconds) + 1;
            setrlimit(RLIMIT_CPU, &rl);
        }
        if (limits.address_space_bytes > 0) {
            struct rlimit rl;
            rl.rlim_cur =
                static_cast<rlim_t>(limits.address_space_bytes);
            rl.rlim_max =
                static_cast<rlim_t>(limits.address_space_bytes);
            setrlimit(RLIMIT_AS, &rl);
        }
        Clock::time_point c0 = Clock::now();
        for (int it = 0; it < iters; it++)
            entry(arena.argv());
        ctl->seconds = since(c0);
        ctl->done.store(1);
        _exit(0);
    }

    int status = 0;
    bool timed_out = wait_deadline(pid, limits.wall_seconds, &status);
    double elapsed = since(t0);

    if (timed_out) {
        out.fault.kind = FaultKind::Timeout;
        out.fault.phase = FaultPhase::Execute;
        out.fault.elapsed_seconds = elapsed;
        out.fault.detail =
            "kernel exceeded the " +
            std::to_string(limits.wall_seconds) +
            "s wall-clock watchdog in '" + proc->name() + "'";
        return out;
    }
    if (WIFSIGNALED(status)) {
        int sig = WTERMSIG(status);
        bool rlimit_kill = sig == SIGXCPU || sig == SIGKILL;
        out.fault.kind = rlimit_kill ? FaultKind::ResourceLimit
                                     : FaultKind::Crash;
        out.fault.phase = FaultPhase::Execute;
        out.fault.signal_number = sig;
        out.fault.elapsed_seconds = elapsed;
        out.fault.detail = std::string("kernel '") + proc->name() +
                           "' killed by " + strsignal(sig);
        return out;
    }
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0 ||
        ctl->done.load() != 1) {
        out.fault.kind = FaultKind::Crash;
        out.fault.phase = FaultPhase::Execute;
        out.fault.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : 0;
        out.fault.elapsed_seconds = elapsed;
        out.fault.detail = "kernel '" + proc->name() +
                           "' exited abnormally (code " +
                           std::to_string(out.fault.exit_code) + ")";
        return out;
    }

    // Clean run: validate guards and copy outputs back (guard damage
    // throws VerifyError, same contract as the in-process path).
    arena.marshal_out();
    out.ok = true;
    out.seconds = ctl->seconds;
    return out;
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

namespace {

struct Injector
{
    FaultSpec spec;
    bool active = false;
    XorShiftRng rng{1};
    FaultInjectionCounts counts;
};

std::mutex g_injector_mu;
Injector g_injector;
bool g_env_checked = false;

/** Load EXO2_FAULTS once, lazily, unless set_fault_spec overrode it. */
void
ensure_env_loaded_locked()
{
    if (g_env_checked)
        return;
    g_env_checked = true;
    const char* e = std::getenv("EXO2_FAULTS");
    if (!e || !*e)
        return;
    FaultSpec spec = parse_fault_spec(e);
    g_injector.spec = spec;
    g_injector.active = spec.any();
    g_injector.rng = XorShiftRng(spec.seed);
}

double*
spec_field(FaultSpec& s, const std::string& key)
{
    if (key == "compile_fail") return &s.compile_fail;
    if (key == "compile_slow") return &s.compile_slow;
    if (key == "dlopen_fail") return &s.dlopen_fail;
    if (key == "isa_fail") return &s.isa_fail;
    if (key == "sigsegv") return &s.sigsegv;
    if (key == "sigfpe") return &s.sigfpe;
    if (key == "sigill") return &s.sigill;
    if (key == "hang") return &s.hang;
    if (key == "cache_corrupt") return &s.cache_corrupt;
    if (key == "cache_stale") return &s.cache_stale;
    if (key == "queue_full") return &s.queue_full;
    return nullptr;
}

}  // namespace

FaultSpec
parse_fault_spec(const std::string& text)
{
    FaultSpec spec;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t comma = text.find(',', pos);
        std::string item = comma == std::string::npos
                               ? text.substr(pos)
                               : text.substr(pos, comma - pos);
        pos = comma == std::string::npos ? text.size() : comma + 1;
        if (item.empty())
            continue;
        size_t eq = item.find('=');
        if (eq == std::string::npos) {
            throw VerifyError("fault spec: '" + item +
                              "' is not key=value (in '" + text + "')");
        }
        std::string key = item.substr(0, eq);
        std::string val = item.substr(eq + 1);
        char* end = nullptr;
        if (key == "seed") {
            spec.seed = std::strtoull(val.c_str(), &end, 10);
            if (!end || *end)
                throw VerifyError("fault spec: bad seed '" + val + "'");
            continue;
        }
        double d = std::strtod(val.c_str(), &end);
        if (!end || *end)
            throw VerifyError("fault spec: bad value '" + val +
                              "' for '" + key + "'");
        if (key == "slow_seconds") {
            if (d <= 0)
                throw VerifyError("fault spec: slow_seconds must be > 0");
            spec.slow_seconds = d;
            continue;
        }
        double* field = spec_field(spec, key);
        if (!field) {
            throw VerifyError(
                "fault spec: unknown key '" + key +
                "' (expected seed, slow_seconds, compile_fail, "
                "compile_slow, dlopen_fail, isa_fail, sigsegv, sigfpe, "
                "sigill, hang, cache_corrupt, cache_stale, or "
                "queue_full)");
        }
        if (d < 0 || d > 1)
            throw VerifyError("fault spec: probability for '" + key +
                              "' out of [0,1]: " + val);
        *field = d;
    }
    return spec;
}

std::string
fault_spec_to_string(const FaultSpec& spec)
{
    std::string s = "seed=" + std::to_string(spec.seed);
    FaultSpec mut = spec;
    for (const char* key :
         {"compile_fail", "compile_slow", "dlopen_fail", "isa_fail",
          "sigsegv", "sigfpe", "sigill", "hang", "cache_corrupt",
          "cache_stale", "queue_full"}) {
        double v = *spec_field(mut, key);
        if (v > 0) {
            char buf[48];
            std::snprintf(buf, sizeof(buf), ",%s=%g", key, v);
            s += buf;
        }
    }
    if (spec.slow_seconds != FaultSpec().slow_seconds) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), ",slow_seconds=%g",
                      spec.slow_seconds);
        s += buf;
    }
    return s;
}

void
set_fault_spec(const FaultSpec& spec)
{
    std::lock_guard<std::mutex> lk(g_injector_mu);
    g_env_checked = true;  // explicit spec overrides the environment
    g_injector.spec = spec;
    g_injector.active = spec.any();
    g_injector.rng = XorShiftRng(spec.seed);
}

void
clear_fault_spec()
{
    std::lock_guard<std::mutex> lk(g_injector_mu);
    g_injector.spec = FaultSpec();
    g_injector.active = false;
    g_env_checked = false;  // re-arm EXO2_FAULTS for the next draw
}

FaultSpec
current_fault_spec()
{
    std::lock_guard<std::mutex> lk(g_injector_mu);
    ensure_env_loaded_locked();
    return g_injector.active ? g_injector.spec : FaultSpec{};
}

bool
fault_should_inject(FaultSite site)
{
    std::lock_guard<std::mutex> lk(g_injector_mu);
    ensure_env_loaded_locked();
    if (!g_injector.active)
        return false;
    const FaultSpec& s = g_injector.spec;
    double p = 0;
    uint64_t* counter = nullptr;
    switch (site) {
      case FaultSite::CompileFail:
        p = s.compile_fail;
        counter = &g_injector.counts.compile_fail;
        break;
      case FaultSite::CompileSlow:
        p = s.compile_slow;
        counter = &g_injector.counts.compile_slow;
        break;
      case FaultSite::DlopenFail:
        p = s.dlopen_fail;
        counter = &g_injector.counts.dlopen_fail;
        break;
      case FaultSite::IsaFail:
        p = s.isa_fail;
        counter = &g_injector.counts.isa_fail;
        break;
      case FaultSite::Sigsegv:
        p = s.sigsegv;
        counter = &g_injector.counts.sigsegv;
        break;
      case FaultSite::Sigfpe:
        p = s.sigfpe;
        counter = &g_injector.counts.sigfpe;
        break;
      case FaultSite::Sigill:
        p = s.sigill;
        counter = &g_injector.counts.sigill;
        break;
      case FaultSite::Hang:
        p = s.hang;
        counter = &g_injector.counts.hang;
        break;
      case FaultSite::CacheCorrupt:
        p = s.cache_corrupt;
        counter = &g_injector.counts.cache_corrupt;
        break;
      case FaultSite::CacheStale:
        p = s.cache_stale;
        counter = &g_injector.counts.cache_stale;
        break;
      case FaultSite::QueueFull:
        p = s.queue_full;
        counter = &g_injector.counts.queue_full;
        break;
    }
    if (p <= 0)
        return false;
    if (g_injector.rng.unit() >= p)
        return false;
    (*counter)++;
    return true;
}

FaultInjectionCounts
fault_injection_counts()
{
    std::lock_guard<std::mutex> lk(g_injector_mu);
    return g_injector.counts;
}

void
reset_fault_injection_counts()
{
    std::lock_guard<std::mutex> lk(g_injector_mu);
    g_injector.counts = FaultInjectionCounts();
}

}  // namespace verify
}  // namespace exo2
