#ifndef EXO2_VERIFY_SANDBOX_H_
#define EXO2_VERIFY_SANDBOX_H_

/**
 * @file
 * Fault-isolated execution of untrusted generated code (DESIGN.md §7).
 *
 * Three pieces:
 *
 * 1. `run_command` — a hardened subprocess runner (posix_spawn, stderr
 *    capture to a file, per-invocation wall-clock timeout, full wait
 *    status decoding) used for every external C compiler invocation.
 *
 * 2. `sandbox_call` — crash-isolated kernel execution: the JIT'd entry
 *    point runs in a forked child under rlimits (CPU seconds, address
 *    space) and a parent-side wall-clock watchdog. Argument buffers
 *    are marshalled through a `MAP_SHARED` arena (marshal.h) so
 *    outputs written by the child survive a clean run; a SIGSEGV /
 *    SIGFPE / SIGILL / SIGBUS, a hang, or an rlimit kill comes back as
 *    a structured `RuntimeFault` instead of taking down the driver.
 *
 * 3. The deterministic fault injector — a seeded, replayable spec
 *    (`EXO2_FAULTS` or `set_fault_spec`) that makes compiles fail or
 *    hang, dlopen fail, native-ISA compiles fail (exercising the
 *    degradation chain), and generated kernels crash or spin, so tests
 *    can prove each consumer degrades instead of dying.
 *
 * Environment knobs: `EXO2_FAULTS` (spec string, see parse_fault_spec),
 * `EXO2_SANDBOX_WALL` (watchdog seconds for SandboxLimits::defaults),
 * `EXO2_SANDBOX=0` (consumers fall back to trusted in-process runs).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "src/interp/interp.h"
#include "src/ir/errors.h"
#include "src/ir/proc.h"

namespace exo2 {
namespace verify {

// ---------------------------------------------------------------------------
// Hardened subprocess runner
// ---------------------------------------------------------------------------

/** Decoded outcome of one subprocess invocation. */
struct SpawnResult
{
    bool started = false;    ///< posix_spawn itself succeeded
    bool timed_out = false;  ///< killed by the wall-clock timeout
    bool exited = false;     ///< WIFEXITED
    int exit_code = 0;       ///< WEXITSTATUS when exited
    int term_signal = 0;     ///< WTERMSIG when killed by a signal
    double seconds = 0.0;    ///< wall clock from spawn to reap
    std::string error;       ///< spawn-level failure (errno text)

    bool ok() const { return started && !timed_out && exited && exit_code == 0; }
};

/**
 * Run `argv` (argv[0] resolved via PATH) with stdout+stderr redirected
 * to `output_path`, waiting at most `timeout_seconds` (<= 0 = no
 * timeout) before SIGKILLing it. Never throws; every failure mode is
 * in the result. The raw wait status is decoded with
 * WIFEXITED/WIFSIGNALED — a compiler killed by the OOM killer reports
 * `term_signal == SIGKILL`, not a bogus exit code.
 */
SpawnResult run_command(const std::vector<std::string>& argv,
                        const std::string& output_path,
                        double timeout_seconds);

/** Whether a failed invocation looks transient (resource exhaustion:
 *  ENOMEM spawn failures, OOM kills, tmpfs-full compiler output) and
 *  is worth a bounded retry with backoff. */
bool spawn_failure_transient(const SpawnResult& r,
                             const std::string& captured_output);

// ---------------------------------------------------------------------------
// Crash-isolated kernel execution
// ---------------------------------------------------------------------------

/** Resource limits for one sandboxed kernel run. */
struct SandboxLimits
{
    /** Parent-side wall-clock watchdog; the child is SIGKILLed past
     *  this. <= 0 disables (not recommended for untrusted code). */
    double wall_seconds = 10.0;
    /** RLIMIT_CPU in the child; 0 disables. */
    uint64_t cpu_seconds = 30;
    /** RLIMIT_AS in the child; 0 disables. */
    uint64_t address_space_bytes = 4ull << 30;

    /** Defaults with `EXO2_SANDBOX_WALL` applied (if set). */
    static SandboxLimits defaults();
};

/** Outcome of one sandboxed run: either a clean run with the child's
 *  measured kernel seconds, or a structured fault. */
struct SandboxOutcome
{
    bool ok = false;
    /** Wall-clock seconds spent inside the entry-point calls, measured
     *  by the child (excludes fork/marshalling overhead). */
    double seconds = 0.0;
    RuntimeFault fault;
};

/**
 * Marshal `args`, fork, apply rlimits in the child, call `entry`
 * `iters` times with buffers in shared memory, and reap under the
 * watchdog. On a clean exit, guard zones are checked and outputs
 * marshalled back into the caller's Buffers (guard damage throws
 * VerifyError, as the in-process path does). Faults never throw: a
 * crash/hang/rlimit kill is returned as `outcome.fault` and the
 * caller's buffers are left untouched.
 */
SandboxOutcome sandbox_call(void (*entry)(void**), const ProcPtr& proc,
                            const std::vector<RunArg>& args, int iters,
                            const SandboxLimits& limits);

/** Whether consumers should sandbox untrusted runs: true unless
 *  `EXO2_SANDBOX` is set to `0`/`off` (trusted in-process mode). */
bool sandbox_enabled();

// ---------------------------------------------------------------------------
// Deterministic fault injection
// ---------------------------------------------------------------------------

/**
 * Injection probabilities per fault class, drawn from one seeded RNG in
 * pipeline order — so a (spec, workload) pair replays the same faults
 * on every run. All probabilities default to 0 (off).
 */
struct FaultSpec
{
    uint64_t seed = 1;
    double compile_fail = 0;  ///< compiler exits 1 with stderr output
    double compile_slow = 0;  ///< compiler blocks for `slow_seconds`
    double dlopen_fail = 0;   ///< built object fails to load
    double isa_fail = 0;      ///< native-ISA compile attempt fails
    double sigsegv = 0;       ///< kernel entry dereferences NULL
    double sigfpe = 0;        ///< kernel entry divides by zero
    double sigill = 0;        ///< kernel entry executes a trap
    double hang = 0;          ///< kernel entry spins forever
    /** Structural cache-fault injection (DESIGN.md §8): a fired
     *  cache_corrupt bit-flips or truncates the just-written on-disk
     *  cache entry; a fired cache_stale rewrites its header with an
     *  outdated library version. Either way the *real* detection,
     *  quarantine, and miss-recovery paths run against real damaged
     *  files. */
    double cache_corrupt = 0;
    double cache_stale = 0;
    /** Service-fault injection: a fired queue_full makes the daemon's
     *  bounded queue report saturation for one admission, driving the
     *  real REJECTED/backpressure response path. */
    double queue_full = 0;
    /** How long an injected slow compile blocks (subject to the
     *  compile timeout, which is the point). */
    double slow_seconds = 30.0;

    bool any() const
    {
        return compile_fail > 0 || compile_slow > 0 || dlopen_fail > 0 ||
               isa_fail > 0 || sigsegv > 0 || sigfpe > 0 || sigill > 0 ||
               hang > 0 || cache_corrupt > 0 || cache_stale > 0 ||
               queue_full > 0;
    }
};

/**
 * Parse a spec string: comma-separated `key=value` pairs where key is
 * one of seed, slow_seconds, or a fault-class name (compile_fail,
 * compile_slow, dlopen_fail, isa_fail, sigsegv, sigfpe, sigill, hang,
 * cache_corrupt, cache_stale, queue_full) and value is a probability
 * in [0, 1] (seed: an integer). Example:
 * `"seed=42,compile_fail=0.3,sigsegv=0.2,hang=0.1"`. Unknown keys are
 * rejected with a VerifyError naming the key and listing the accepted
 * ones — a typo'd fault class must never silently inject nothing —
 * as are out-of-range values.
 */
FaultSpec parse_fault_spec(const std::string& text);

/** Render a spec back to its string form (round-trips parse). */
std::string fault_spec_to_string(const FaultSpec& spec);

/** Install `spec` (and reseed the injection RNG). Overrides any
 *  `EXO2_FAULTS` environment spec until clear_fault_spec(). */
void set_fault_spec(const FaultSpec& spec);

/** Remove any installed spec and re-arm the (lazily read)
 *  `EXO2_FAULTS` environment spec. */
void clear_fault_spec();

/** The active spec (all-zero when injection is off). */
FaultSpec current_fault_spec();

/** Injection sites, in pipeline order. */
enum class FaultSite {
    CompileFail,
    CompileSlow,
    DlopenFail,
    IsaFail,
    Sigsegv,
    Sigfpe,
    Sigill,
    Hang,
    CacheCorrupt,
    CacheStale,
    QueueFull,
};

/** Draw the injection RNG for `site`; true = inject now. Increments
 *  the per-site fired counter when it fires. */
bool fault_should_inject(FaultSite site);

/** How many times each site fired since the last reset — lets tests
 *  and gates prove injection actually happened (no vacuous passes). */
struct FaultInjectionCounts
{
    uint64_t compile_fail = 0;
    uint64_t compile_slow = 0;
    uint64_t dlopen_fail = 0;
    uint64_t isa_fail = 0;
    uint64_t sigsegv = 0;
    uint64_t sigfpe = 0;
    uint64_t sigill = 0;
    uint64_t hang = 0;
    uint64_t cache_corrupt = 0;
    uint64_t cache_stale = 0;
    uint64_t queue_full = 0;

    uint64_t total() const
    {
        return compile_fail + compile_slow + dlopen_fail + isa_fail +
               sigsegv + sigfpe + sigill + hang + cache_corrupt +
               cache_stale + queue_full;
    }
};

FaultInjectionCounts fault_injection_counts();
void reset_fault_injection_counts();

}  // namespace verify
}  // namespace exo2

#endif  // EXO2_VERIFY_SANDBOX_H_
