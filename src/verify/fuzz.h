#ifndef EXO2_VERIFY_FUZZ_H_
#define EXO2_VERIFY_FUZZ_H_

/**
 * @file
 * The seeded schedule fuzzer and divergence minimizer (DESIGN.md §4).
 *
 * A fuzz run draws a random chain of scheduling primitives over a
 * kernel — primitives whose safety checks reject (SchedulingError /
 * InvalidCursorError) are simply skipped, mirroring how user schedules
 * use errors for control flow — then pushes the result through the
 * tri-oracle (oracle.h). Every applied step is recorded as a
 * self-describing FuzzStep so a failing chain replays from the
 * (kernel, seed, steps) triple alone, and delta-debugs down to a
 * minimal failing sub-chain.
 *
 * Reproducing a failure locally:
 *     FuzzResult r = fuzz_schedule(kernels::find_kernel("saxpy").proc,
 *                                  {{"n", 24}}, /seed/ 1234);
 * prints `fuzz_repro_string("saxpy", 1234, r)` on failure — or replay
 * `r.minimized` directly with `apply_fuzz_step`.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "src/ir/proc.h"
#include "src/verify/oracle.h"

namespace exo2 {
namespace verify {

/**
 * One recorded scheduling action. `op` names the primitive; `n` holds
 * integer parameters (target ordinals — resolved modulo the number of
 * candidates on the current proc — factors, offsets, flags) and `s`
 * holds fresh names. Replaying the same steps on the same proc is
 * deterministic.
 */
struct FuzzStep
{
    std::string op;
    std::vector<int64_t> n;
    std::vector<std::string> s;
};

/** Render a step as e.g. `divide[loop#1 factor=4 tail=cut io,ii]`. */
std::string step_to_string(const FuzzStep& step);

/**
 * Parse `step_to_string` output back into a step (inverse round-trip:
 * `step_from_string(step_to_string(s)) == s`). Throws SchedulingError
 * on malformed input. This is what makes recorded schedule scripts —
 * fuzzer repros and autotuner winners alike — replayable from text.
 */
FuzzStep step_from_string(const std::string& text);

/** Render a whole schedule script, one step per line. */
std::string script_to_string(const std::vector<FuzzStep>& steps);

/** Parse a script: one step per line; blank lines, `#` comment
 *  lines, surrounding whitespace, and trailing CRs are ignored, so
 *  annotated repro files and cache entries replay unchanged. */
std::vector<FuzzStep> script_from_string(const std::string& text);

/**
 * Apply one step to `p`. Throws SchedulingError (or InvalidCursorError)
 * when the step is inapplicable — callers skip such steps.
 */
ProcPtr apply_fuzz_step(const ProcPtr& p, const FuzzStep& step);

/** Outcome of one fuzzed schedule. */
struct FuzzResult
{
    enum class Status {
        Ok,          ///< all oracles agree
        Divergence,  ///< oracles disagree (engine bug)
        EngineError, ///< a primitive threw InternalError (engine bug)
        Fault,       ///< the C oracle faulted (compile fail/timeout,
                     ///< dlopen fail, kernel crash/hang) — recorded as
                     ///< a replayable repro, campaign continues
        LintUnsound, ///< the lint oracle proved the schedule safe, yet
                     ///< the C oracle crashed executing it with no
                     ///< fault injection active — a lint soundness bug
                     ///< (fails the run with a ddmin repro)
    };
    Status status = Status::Ok;
    std::string detail;
    /** The static lint verdict on the scheduled proc (the fourth
     *  oracle, DESIGN.md §9): `lint_safe` is `LintReport::proven_safe`
     *  — a strong claim that every access is in-bounds for all
     *  admissible sizes — and `lint_errors` counts Error-level
     *  findings (proven violations; zero on a healthy engine, since
     *  every applied primitive is a sound rewrite). */
    bool lint_safe = false;
    int lint_errors = 0;
    /** Structured fault when status == Fault. */
    ::exo2::RuntimeFault fault;
    std::vector<FuzzStep> applied;    ///< steps that took effect
    /** Minimal failing sub-chain (Divergence/EngineError); for Fault
     *  it is the full applied chain — the replayable repro script —
     *  since fault injection makes per-step replay probabilistic. */
    std::vector<FuzzStep> minimized;
    ProcPtr scheduled;                ///< final proc (null on EngineError)
};

/**
 * Draw and apply a random primitive chain (at most `max_steps` applied
 * steps) on `p`, then tri-oracle-check it against `p` with inputs
 * derived from `seed`. On failure the applied chain is minimized by
 * repeated single-step removal (ddmin-style) before returning.
 */
FuzzResult fuzz_schedule(const ProcPtr& p, const SizeEnv& env,
                         uint64_t seed, int max_steps = 8);

/** Full reproduction recipe for a failing result. */
std::string fuzz_repro_string(const std::string& kernel, uint64_t seed,
                              const FuzzResult& r);

}  // namespace verify
}  // namespace exo2

#endif  // EXO2_VERIFY_FUZZ_H_
