#ifndef EXO2_VERIFY_MARSHAL_H_
#define EXO2_VERIFY_MARSHAL_H_

/**
 * @file
 * Argument marshalling for JIT'd kernels (DESIGN.md §4, §7).
 *
 * The interpreter's `Buffer` stores every element as a double; the
 * generated C entry point `exo2_run(void**)` expects native element
 * arrays. An ArgArena computes a single contiguous layout for all
 * arguments of one call — native buffer payloads wrapped in
 * canary-filled guard zones, plus 8-byte slots for scalars and sizes —
 * then marshals values in, builds the `void**` argv, and after the
 * call checks the guards and copies outputs back.
 *
 * The layout is storage-agnostic on purpose: the in-process fast path
 * binds the arena to a heap allocation, while the fault-isolation
 * sandbox (sandbox.h) binds it to a `MAP_SHARED` mapping so outputs
 * written by a forked child survive into the parent after a clean run.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "src/interp/interp.h"
#include "src/ir/proc.h"

namespace exo2 {
namespace verify {

/** Guard zone size on each side of every buffer payload. */
constexpr size_t kGuardBytes = 256;
constexpr unsigned char kCanary = 0xAB;

/** Layout + marshalling of one call's arguments over caller storage. */
class ArgArena
{
  public:
    /** Computes the layout and validates `args` against the formals of
     *  `proc` (arity, size-vs-buffer kind). Throws VerifyError on
     *  mismatch. Does not touch any storage yet. */
    ArgArena(const ProcPtr& proc, const std::vector<RunArg>& args);

    /** Total bytes of backing storage the arena needs. */
    size_t bytes() const { return bytes_; }

    /** Bind to `base` (>= bytes(), 64-byte aligned) and write guard
     *  zones, native payloads, and scalar/size slots. */
    void marshal_in(unsigned char* base);

    /** The argv to pass to `exo2_run`, valid after marshal_in. */
    void** argv() { return argv_.data(); }

    /** Check every guard zone and copy buffer outputs back into the
     *  caller's `Buffer`s. Throws VerifyError when generated code
     *  wrote outside a buffer's storage. */
    void marshal_out();

  private:
    struct Slot
    {
        size_t offset = 0;      ///< payload offset within the arena
        int64_t count = 0;      ///< elements (buffers only)
        size_t elem = 0;        ///< element size in bytes
        ScalarType type = ScalarType::F32;
        Buffer* buf = nullptr;  ///< marshal-out target (buffers only)
        bool is_scalar = false;
        double scalar_value = 0.0;
        std::string name;       ///< formal name, for diagnostics
    };

    std::vector<Slot> slots_;
    std::vector<void*> argv_;
    unsigned char* base_ = nullptr;
    size_t bytes_ = 0;
};

}  // namespace verify
}  // namespace exo2

#endif  // EXO2_VERIFY_MARSHAL_H_
