#ifndef EXO2_VERIFY_ORACLE_H_
#define EXO2_VERIFY_ORACLE_H_

/**
 * @file
 * The tri-oracle equivalence check (DESIGN.md §4): given an original
 * procedure and a scheduled derivative, generate seeded random inputs,
 * run (1) the interpreter on the scheduled proc, (2) compiled C for
 * the scheduled proc, and (3) the interpreter on the original proc as
 * the reference, then compare every output buffer.
 *
 * Floating-point comparison uses a combined absolute/relative
 * tolerance: schedules legitimately reassociate reductions, and the
 * interpreter evaluates f32 arithmetic in double precision while C
 * rounds each operation; both effects are orders of magnitude below a
 * real indexing or rewrite bug on [-1, 1] inputs.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/interp/interp.h"
#include "src/ir/errors.h"
#include "src/ir/proc.h"

namespace exo2 {
namespace verify {

/** Values for the size arguments of a procedure. */
using SizeEnv = std::map<std::string, int64_t>;

/**
 * Evaluate an Index-typed expression (size-argument arithmetic,
 * including the object language's floor div/mod and predicates) under
 * `env`. Throws VerifyError on reads of names absent from `env`.
 */
int64_t eval_index_expr(const ExprPtr& e, const SizeEnv& env);

/** Whether every assertion of `p` holds under `env`. */
bool preds_hold(const ProcPtr& p, const SizeEnv& env);

/** Generated inputs for one run: args plus owned buffer storage. */
struct OracleInputs
{
    std::vector<RunArg> args;
    std::vector<std::unique_ptr<Buffer>> buffers;
};

/**
 * Build seeded random inputs for `p`: sizes from `env`, scalars and
 * buffer contents pseudo-random in [-1, 1] derived from `seed`.
 * Deterministic: same (p-signature, env, seed) gives the same inputs.
 */
OracleInputs make_inputs(const ProcPtr& p, const SizeEnv& env,
                         uint64_t seed);

/** Result of a tri-oracle comparison. */
struct TriOracleReport
{
    bool ok = true;
    /** Human-readable description of the first divergence. */
    std::string detail;
    /** When the C oracle faulted (compile failure/timeout, dlopen
     *  failure, or a sandboxed crash/hang of the kernel), the
     *  structured fault. A fault is reported as `ok == false` like a
     *  divergence, but consumers that must distinguish "the engine
     *  computed the wrong answer" from "the candidate could not be
     *  executed" (the fuzzer, the tuner) check `is_fault()`. */
    ::exo2::RuntimeFault fault;

    bool is_fault() const { return fault.is_fault(); }
};

/**
 * Run all three oracles and compare outputs. Never throws for
 * divergences (they are reported); throws VerifyError only for
 * harness-level failures (e.g. sizes violating the original's
 * assertions). `tol_scale` loosens the floating tolerances for
 * rounding-amplifying kernels (triangular solves).
 */
TriOracleReport tri_oracle_check(const ProcPtr& original,
                                 const ProcPtr& scheduled,
                                 const SizeEnv& env, uint64_t seed,
                                 double tol_scale = 1.0);

}  // namespace verify
}  // namespace exo2

#endif  // EXO2_VERIFY_ORACLE_H_
