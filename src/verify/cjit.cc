#include "src/verify/cjit.h"

#include <dirent.h>
#include <dlfcn.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/codegen/c_codegen.h"
#include "src/ir/errors.h"

namespace exo2 {
namespace verify {

namespace {

constexpr size_t kGuardBytes = 256;
constexpr unsigned char kCanary = 0xAB;

std::string
read_file(const std::string& path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Native element store for one buffer argument, with guard zones. */
struct NativeBuf
{
    std::vector<unsigned char> bytes;  ///< guard | payload | guard
    Buffer* src = nullptr;
    ScalarType type = ScalarType::F32;
    int64_t count = 0;

    void* payload() { return bytes.data() + kGuardBytes; }

    void marshal_in(Buffer* b)
    {
        src = b;
        type = b->type();
        count = b->size();
        size_t elem = static_cast<size_t>(type_size_bytes(type));
        bytes.assign(2 * kGuardBytes + elem * static_cast<size_t>(count),
                     kCanary);
        for (int64_t i = 0; i < count; i++) {
            double v = b->at(i);
            unsigned char* p =
                bytes.data() + kGuardBytes + elem * static_cast<size_t>(i);
            switch (type) {
              case ScalarType::F32: {
                float f = static_cast<float>(v);
                std::memcpy(p, &f, sizeof(f));
                break;
              }
              case ScalarType::F64:
                std::memcpy(p, &v, sizeof(v));
                break;
              case ScalarType::I8: {
                int8_t x = static_cast<int8_t>(v);
                std::memcpy(p, &x, sizeof(x));
                break;
              }
              case ScalarType::I32: {
                int32_t x = static_cast<int32_t>(v);
                std::memcpy(p, &x, sizeof(x));
                break;
              }
              default:
                throw VerifyError("unsupported buffer element type");
            }
        }
    }

    void check_guards(const std::string& arg_name) const
    {
        size_t elem = static_cast<size_t>(type_size_bytes(type));
        size_t tail = kGuardBytes + elem * static_cast<size_t>(count);
        for (size_t i = 0; i < kGuardBytes; i++) {
            if (bytes[i] != kCanary || bytes[tail + i] != kCanary) {
                throw VerifyError(
                    "compiled code wrote outside buffer '" + arg_name +
                    "' (" + (bytes[i] != kCanary ? "before" : "after") +
                    " its storage)");
            }
        }
    }

    void marshal_out() const
    {
        size_t elem = static_cast<size_t>(type_size_bytes(type));
        for (int64_t i = 0; i < count; i++) {
            const unsigned char* p =
                bytes.data() + kGuardBytes + elem * static_cast<size_t>(i);
            double v = 0;
            switch (type) {
              case ScalarType::F32: {
                float f;
                std::memcpy(&f, p, sizeof(f));
                v = static_cast<double>(f);
                break;
              }
              case ScalarType::F64:
                std::memcpy(&v, p, sizeof(v));
                break;
              case ScalarType::I8: {
                int8_t x;
                std::memcpy(&x, p, sizeof(x));
                v = static_cast<double>(x);
                break;
              }
              case ScalarType::I32: {
                int32_t x;
                std::memcpy(&x, p, sizeof(x));
                v = static_cast<double>(x);
                break;
              }
              default:
                throw VerifyError("unsupported buffer element type");
            }
            src->set(i, v);
        }
    }
};

/** Marshal `args`, call `entry` `iters` times, unmarshal, and return
 *  the wall-clock seconds spent inside the calls. */
double
run_marshalled(void (*entry)(void**), const ProcPtr& proc,
               const std::vector<RunArg>& args, int iters)
{
    const auto& formals = proc->args();
    if (formals.size() != args.size())
        throw VerifyError("run: arity mismatch for '" + proc->name() +
                          "'");

    // Scalar slots must stay alive across the call; one 8-byte slot per
    // argument is enough for every scalar type.
    std::vector<int64_t> slots(args.size(), 0);
    std::vector<NativeBuf> bufs(args.size());
    std::vector<void*> argv(args.size(), nullptr);

    for (size_t i = 0; i < args.size(); i++) {
        const ProcArg& f = formals[i];
        const RunArg& a = args[i];
        switch (a.kind) {
          case RunArg::Kind::Size:
            if (f.dims.empty() == false)
                throw VerifyError("run: size passed for buffer arg");
            std::memcpy(&slots[i], &a.size, sizeof(a.size));
            argv[i] = &slots[i];
            break;
          case RunArg::Kind::Scalar: {
            // Store the native representation the generated entry
            // point dereferences (exo2_run casts argv[i] to the
            // formal's C type).
            switch (f.type) {
              case ScalarType::F32: {
                float v = static_cast<float>(a.scalar);
                std::memcpy(&slots[i], &v, sizeof(v));
                break;
              }
              case ScalarType::F64:
                std::memcpy(&slots[i], &a.scalar, sizeof(a.scalar));
                break;
              case ScalarType::I8: {
                int8_t v = static_cast<int8_t>(a.scalar);
                std::memcpy(&slots[i], &v, sizeof(v));
                break;
              }
              case ScalarType::I32: {
                int32_t v = static_cast<int32_t>(a.scalar);
                std::memcpy(&slots[i], &v, sizeof(v));
                break;
              }
              default:
                throw VerifyError(
                    "run: unsupported scalar formal type for '" +
                    f.name + "'");
            }
            argv[i] = &slots[i];
            break;
          }
          case RunArg::Kind::Buf:
            if (!a.buf)
                throw VerifyError("run: null buffer argument");
            bufs[i].marshal_in(a.buf);
            argv[i] = bufs[i].payload();
            break;
        }
    }

    auto t0 = std::chrono::steady_clock::now();
    for (int it = 0; it < iters; it++)
        entry(argv.data());
    auto t1 = std::chrono::steady_clock::now();

    for (size_t i = 0; i < args.size(); i++) {
        if (args[i].kind != RunArg::Kind::Buf)
            continue;
        bufs[i].check_guards(formals[i].name);
        bufs[i].marshal_out();
    }
    return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

bool
cjit_cpu_supports(NativeIsa isa)
{
    if (isa == NativeIsa::Scalar)
        return true;
#if defined(__x86_64__) || defined(__i386__)
    if (isa == NativeIsa::Avx2)
        return __builtin_cpu_supports("avx2") &&
               __builtin_cpu_supports("fma");
    return __builtin_cpu_supports("avx512f");
#else
    return false;
#endif
}

NativeIsa
cjit_env_isa()
{
    const char* e = std::getenv("EXO2_NATIVE_ISA");
    std::string v = e ? e : "";
    for (char& c : v)
        c = static_cast<char>(tolower(static_cast<unsigned char>(c)));
    if (v.empty() || v == "scalar" || v == "off" || v == "0")
        return NativeIsa::Scalar;
    if (v == "auto" || v == "native") {
        if (cjit_cpu_supports(NativeIsa::Avx512))
            return NativeIsa::Avx512;
        if (cjit_cpu_supports(NativeIsa::Avx2))
            return NativeIsa::Avx2;
        return NativeIsa::Scalar;
    }
    if (v == "avx2" || v == "avx512") {
        NativeIsa isa =
            v == "avx2" ? NativeIsa::Avx2 : NativeIsa::Avx512;
        if (!cjit_cpu_supports(isa)) {
            throw VerifyError("EXO2_NATIVE_ISA=" + v +
                              " but the CPU does not support it (use "
                              "'auto' for runtime detection)");
        }
        return isa;
    }
    throw VerifyError("unrecognized EXO2_NATIVE_ISA value '" + v +
                      "' (expected scalar, avx2, avx512, or auto)");
}

namespace {

/** Recursively delete `path` (the compiler may leave files — or even
 *  driver temp subdirectories — beyond the ones we created). */
void
remove_tree(const std::string& path)
{
    if (DIR* d = opendir(path.c_str())) {
        while (struct dirent* ent = readdir(d)) {
            std::string name = ent->d_name;
            if (name == "." || name == "..")
                continue;
            std::string child = path + "/" + name;
            if (unlink(child.c_str()) != 0 && errno == EISDIR)
                remove_tree(child);
        }
        closedir(d);
    }
    rmdir(path.c_str());
}

}  // namespace

void
TempDir::remove()
{
    if (path_.empty())
        return;
    remove_tree(path_);
    path_.clear();
}

CompiledProc::CompiledProc(const ProcPtr& p)
    : CompiledProc(p, cjit_env_isa()) {}

CompiledProc::CompiledProc(const ProcPtr& p, NativeIsa isa) : proc_(p)
{
    // Validate explicit requests like the env path does: compiling for
    // an ISA the CPU lacks would SIGILL on the first run() instead of
    // failing with a diagnostic.
    if (!cjit_cpu_supports(isa)) {
        throw VerifyError(
            "requested native ISA is not supported by this CPU (use "
            "cjit_cpu_supports() to probe first)");
    }
    int avail = isa == NativeIsa::Avx512 ? 64
                : isa == NativeIsa::Avx2 ? 32
                                         : 0;
    int required = codegen_max_vector_bytes(p);
    native_ = required > 0 && avail >= required;

    CodegenOpts opts;
    opts.native_vector_bytes = avail;
    opts.required_vector_bytes = required;  // avoid a second proc walk
    src_ = codegen_c_unit(p, opts);

    char tmpl[] = "/tmp/exo2_jit_XXXXXX";
    char* dir = mkdtemp(tmpl);
    if (!dir)
        throw VerifyError("mkdtemp failed");
    // From here on the TempDir member owns cleanup: its destructor
    // runs on every exit path, including exceptions thrown below
    // (~CompiledProc never runs when the constructor throws, but
    // fully-constructed members are still destroyed).
    dir_ = TempDir(dir);

    std::string c_path = dir_.path() + "/kernel.c";
    std::string so_path = dir_.path() + "/kernel.so";
    std::string err_path = dir_.path() + "/cc.err";
    {
        std::ofstream out(c_path);
        out << src_;
    }

    std::string isa_flags;
    if (native_) {
        isa_flags = required >= 64 ? " -mavx512f -mavx2 -mfma"
                                   : " -mavx2 -mfma";
    }
    const char* cc = std::getenv("CC");
    std::string cmd = std::string(cc && *cc ? cc : "cc") +
                      " -O1 -fPIC -shared -fno-builtin -ffp-contract=off"
                      " -fno-math-errno -w" +
                      isa_flags + " -o " + so_path + " " + c_path +
                      " 2> " + err_path;
    int rc = std::system(cmd.c_str());
    if (rc != 0) {
        throw VerifyError("C compilation failed for proc '" + p->name() +
                          "':\n" + read_file(err_path) +
                          "\n--- generated source ---\n" + src_);
    }

    handle_ = dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (!handle_) {
        const char* err = dlerror();  // clears the error state
        throw VerifyError("dlopen failed: " +
                          std::string(err ? err : "unknown"));
    }
    entry_ = reinterpret_cast<void (*)(void**)>(dlsym(handle_, "exo2_run"));
    if (!entry_) {
        dlclose(handle_);
        handle_ = nullptr;
        throw VerifyError("entry point exo2_run not found in " + so_path);
    }
}

CompiledProc::~CompiledProc()
{
    if (handle_)
        dlclose(handle_);
}

void
CompiledProc::run(const std::vector<RunArg>& args) const
{
    run_marshalled(entry_, proc_, args, 1);
}

double
CompiledProc::time_run(const std::vector<RunArg>& args, int iters) const
{
    return run_marshalled(entry_, proc_, args, iters);
}

double
CompiledProc::time_per_call(const std::vector<RunArg>& args,
                            double target_seconds, int max_iters) const
{
    double once = time_run(args, 1);  // also warms the caches
    int iters =
        static_cast<int>(target_seconds / std::max(once, 1e-7));
    iters = std::max(4, std::min(iters, max_iters));
    return time_run(args, iters) / iters;
}

}  // namespace verify
}  // namespace exo2
