#include "src/verify/cjit.h"

#include <dlfcn.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/codegen/c_codegen.h"
#include "src/ir/errors.h"

namespace exo2 {
namespace verify {

namespace {

constexpr size_t kGuardBytes = 256;
constexpr unsigned char kCanary = 0xAB;

std::string
read_file(const std::string& path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Native element store for one buffer argument, with guard zones. */
struct NativeBuf
{
    std::vector<unsigned char> bytes;  ///< guard | payload | guard
    Buffer* src = nullptr;
    ScalarType type = ScalarType::F32;
    int64_t count = 0;

    void* payload() { return bytes.data() + kGuardBytes; }

    void marshal_in(Buffer* b)
    {
        src = b;
        type = b->type();
        count = b->size();
        size_t elem = static_cast<size_t>(type_size_bytes(type));
        bytes.assign(2 * kGuardBytes + elem * static_cast<size_t>(count),
                     kCanary);
        for (int64_t i = 0; i < count; i++) {
            double v = b->at(i);
            unsigned char* p =
                bytes.data() + kGuardBytes + elem * static_cast<size_t>(i);
            switch (type) {
              case ScalarType::F32: {
                float f = static_cast<float>(v);
                std::memcpy(p, &f, sizeof(f));
                break;
              }
              case ScalarType::F64:
                std::memcpy(p, &v, sizeof(v));
                break;
              case ScalarType::I8: {
                int8_t x = static_cast<int8_t>(v);
                std::memcpy(p, &x, sizeof(x));
                break;
              }
              case ScalarType::I32: {
                int32_t x = static_cast<int32_t>(v);
                std::memcpy(p, &x, sizeof(x));
                break;
              }
              default:
                throw VerifyError("unsupported buffer element type");
            }
        }
    }

    void check_guards(const std::string& arg_name) const
    {
        size_t elem = static_cast<size_t>(type_size_bytes(type));
        size_t tail = kGuardBytes + elem * static_cast<size_t>(count);
        for (size_t i = 0; i < kGuardBytes; i++) {
            if (bytes[i] != kCanary || bytes[tail + i] != kCanary) {
                throw VerifyError(
                    "compiled code wrote outside buffer '" + arg_name +
                    "' (" + (bytes[i] != kCanary ? "before" : "after") +
                    " its storage)");
            }
        }
    }

    void marshal_out() const
    {
        size_t elem = static_cast<size_t>(type_size_bytes(type));
        for (int64_t i = 0; i < count; i++) {
            const unsigned char* p =
                bytes.data() + kGuardBytes + elem * static_cast<size_t>(i);
            double v = 0;
            switch (type) {
              case ScalarType::F32: {
                float f;
                std::memcpy(&f, p, sizeof(f));
                v = static_cast<double>(f);
                break;
              }
              case ScalarType::F64:
                std::memcpy(&v, p, sizeof(v));
                break;
              case ScalarType::I8: {
                int8_t x;
                std::memcpy(&x, p, sizeof(x));
                v = static_cast<double>(x);
                break;
              }
              case ScalarType::I32: {
                int32_t x;
                std::memcpy(&x, p, sizeof(x));
                v = static_cast<double>(x);
                break;
              }
              default:
                throw VerifyError("unsupported buffer element type");
            }
            src->set(i, v);
        }
    }
};

}  // namespace

CompiledProc::CompiledProc(const ProcPtr& p) : proc_(p)
{
    src_ = codegen_c_unit(p);

    char tmpl[] = "/tmp/exo2_jit_XXXXXX";
    char* dir = mkdtemp(tmpl);
    if (!dir)
        throw VerifyError("mkdtemp failed");
    dir_ = dir;

    std::string c_path = dir_ + "/kernel.c";
    std::string so_path = dir_ + "/kernel.so";
    std::string err_path = dir_ + "/cc.err";
    {
        std::ofstream out(c_path);
        out << src_;
    }

    const char* cc = std::getenv("CC");
    std::string cmd = std::string(cc && *cc ? cc : "cc") +
                      " -O1 -fPIC -shared -fno-builtin -ffp-contract=off"
                      " -fno-math-errno -w -o " +
                      so_path + " " + c_path + " 2> " + err_path;
    // The destructor never runs when the constructor throws, so clean
    // the temp directory here on every failure path (minimization
    // replays compile often enough to matter for /tmp).
    auto fail = [&](const std::string& msg) {
        std::string full = msg;
        if (handle_) {
            dlclose(handle_);
            handle_ = nullptr;
        }
        unlink(c_path.c_str());
        unlink(so_path.c_str());
        unlink(err_path.c_str());
        rmdir(dir_.c_str());
        dir_.clear();
        throw VerifyError(full);
    };
    int rc = std::system(cmd.c_str());
    if (rc != 0) {
        fail("C compilation failed for proc '" + p->name() + "':\n" +
             read_file(err_path) + "\n--- generated source ---\n" + src_);
    }

    handle_ = dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (!handle_) {
        const char* err = dlerror();  // clears the error state
        fail("dlopen failed: " + std::string(err ? err : "unknown"));
    }
    entry_ = reinterpret_cast<void (*)(void**)>(dlsym(handle_, "exo2_run"));
    if (!entry_)
        fail("entry point exo2_run not found in " + so_path);
}

CompiledProc::~CompiledProc()
{
    if (handle_)
        dlclose(handle_);
    if (!dir_.empty()) {
        unlink((dir_ + "/kernel.c").c_str());
        unlink((dir_ + "/kernel.so").c_str());
        unlink((dir_ + "/cc.err").c_str());
        rmdir(dir_.c_str());
    }
}

void
CompiledProc::run(const std::vector<RunArg>& args) const
{
    const auto& formals = proc_->args();
    if (formals.size() != args.size())
        throw VerifyError("run: arity mismatch for '" + proc_->name() +
                          "'");

    // Scalar slots must stay alive across the call; one 8-byte slot per
    // argument is enough for every scalar type.
    std::vector<int64_t> slots(args.size(), 0);
    std::vector<NativeBuf> bufs(args.size());
    std::vector<void*> argv(args.size(), nullptr);

    for (size_t i = 0; i < args.size(); i++) {
        const ProcArg& f = formals[i];
        const RunArg& a = args[i];
        switch (a.kind) {
          case RunArg::Kind::Size:
            if (f.dims.empty() == false)
                throw VerifyError("run: size passed for buffer arg");
            std::memcpy(&slots[i], &a.size, sizeof(a.size));
            argv[i] = &slots[i];
            break;
          case RunArg::Kind::Scalar: {
            // Store the native representation the generated entry
            // point dereferences (exo2_run casts argv[i] to the
            // formal's C type).
            switch (f.type) {
              case ScalarType::F32: {
                float v = static_cast<float>(a.scalar);
                std::memcpy(&slots[i], &v, sizeof(v));
                break;
              }
              case ScalarType::F64:
                std::memcpy(&slots[i], &a.scalar, sizeof(a.scalar));
                break;
              case ScalarType::I8: {
                int8_t v = static_cast<int8_t>(a.scalar);
                std::memcpy(&slots[i], &v, sizeof(v));
                break;
              }
              case ScalarType::I32: {
                int32_t v = static_cast<int32_t>(a.scalar);
                std::memcpy(&slots[i], &v, sizeof(v));
                break;
              }
              default:
                throw VerifyError(
                    "run: unsupported scalar formal type for '" +
                    f.name + "'");
            }
            argv[i] = &slots[i];
            break;
          }
          case RunArg::Kind::Buf:
            if (!a.buf)
                throw VerifyError("run: null buffer argument");
            bufs[i].marshal_in(a.buf);
            argv[i] = bufs[i].payload();
            break;
        }
    }

    entry_(argv.data());

    for (size_t i = 0; i < args.size(); i++) {
        if (args[i].kind != RunArg::Kind::Buf)
            continue;
        bufs[i].check_guards(formals[i].name);
        bufs[i].marshal_out();
    }
}

}  // namespace verify
}  // namespace exo2
