#include "src/verify/cjit.h"

#include <dirent.h>
#include <dlfcn.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>

#include "src/cache/cache.h"
#include "src/codegen/c_codegen.h"
#include "src/ir/errors.h"
#include "src/obs/trace.h"
#include "src/util/env.h"
#include "src/verify/marshal.h"

namespace exo2 {
namespace verify {

namespace {

std::string
read_file(const std::string& path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Marshal `args`, call `entry` `iters` times, unmarshal, and return
 *  the wall-clock seconds spent inside the calls. */
double
run_marshalled(void (*entry)(void**), const ProcPtr& proc,
               const std::vector<RunArg>& args, int iters)
{
    ArgArena arena(proc, args);
    std::vector<unsigned char> storage(arena.bytes() + 64);
    // 64-byte-align the arena base inside the heap block.
    auto addr = reinterpret_cast<uintptr_t>(storage.data());
    unsigned char* base = storage.data() + ((64 - addr % 64) % 64);
    arena.marshal_in(base);

    auto t0 = std::chrono::steady_clock::now();
    for (int it = 0; it < iters; it++)
        entry(arena.argv());
    auto t1 = std::chrono::steady_clock::now();

    arena.marshal_out();
    return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

const char*
native_isa_name(NativeIsa isa)
{
    switch (isa) {
      case NativeIsa::Scalar: return "scalar";
      case NativeIsa::Avx2: return "avx2";
      case NativeIsa::Avx512: return "avx512";
    }
    return "?";
}

bool
cjit_cpu_supports(NativeIsa isa)
{
    if (isa == NativeIsa::Scalar)
        return true;
#if defined(__x86_64__) || defined(__i386__)
    if (isa == NativeIsa::Avx2)
        return __builtin_cpu_supports("avx2") &&
               __builtin_cpu_supports("fma");
    return __builtin_cpu_supports("avx512f");
#else
    return false;
#endif
}

// ---------------------------------------------------------------------------
// ISA degradation chain
// ---------------------------------------------------------------------------

namespace {

std::mutex g_downgrade_mu;
std::vector<IsaDowngrade> g_downgrades;

void
record_downgrade(const std::string& proc_name, NativeIsa requested,
                 NativeIsa used, const std::string& reason)
{
    IsaDowngrade d;
    d.proc_name = proc_name;
    d.requested = requested;
    d.used = used;
    d.reason = reason;
    {
        std::lock_guard<std::mutex> lk(g_downgrade_mu);
        g_downgrades.push_back(d);
    }
    if (std::getenv("EXO2_VERBOSE_DOWNGRADES")) {
        std::fprintf(stderr,
                     "exo2: ISA downgrade for '%s': %s -> %s (%s)\n",
                     proc_name.c_str(), native_isa_name(requested),
                     native_isa_name(used), reason.c_str());
    }
}

/** Next step down the chain: avx512 -> avx2 -> scalar. */
NativeIsa
isa_step_down(NativeIsa isa)
{
    return isa == NativeIsa::Avx512 ? NativeIsa::Avx2
                                    : NativeIsa::Scalar;
}

/** Highest ISA at or below `isa` the CPU supports, recording one
 *  downgrade entry when a fallback happens. */
NativeIsa
degrade_to_supported(const std::string& proc_name, NativeIsa isa)
{
    NativeIsa req = isa;
    while (isa != NativeIsa::Scalar && !cjit_cpu_supports(isa))
        isa = isa_step_down(isa);
    if (isa != req) {
        record_downgrade(proc_name, req, isa,
                         std::string("cpuid: CPU does not support ") +
                             native_isa_name(req));
    }
    return isa;
}

}  // namespace

std::vector<IsaDowngrade>
isa_downgrades()
{
    std::lock_guard<std::mutex> lk(g_downgrade_mu);
    return g_downgrades;
}

void
clear_isa_downgrades()
{
    std::lock_guard<std::mutex> lk(g_downgrade_mu);
    g_downgrades.clear();
}

NativeIsa
cjit_env_isa()
{
    const char* e = std::getenv("EXO2_NATIVE_ISA");
    std::string v = e ? e : "";
    for (char& c : v)
        c = static_cast<char>(tolower(static_cast<unsigned char>(c)));
    if (v.empty() || v == "scalar" || v == "off" || v == "0")
        return NativeIsa::Scalar;
    if (v == "auto" || v == "native") {
        if (cjit_cpu_supports(NativeIsa::Avx512))
            return NativeIsa::Avx512;
        if (cjit_cpu_supports(NativeIsa::Avx2))
            return NativeIsa::Avx2;
        return NativeIsa::Scalar;
    }
    if (v == "avx2" || v == "avx512") {
        NativeIsa isa =
            v == "avx2" ? NativeIsa::Avx2 : NativeIsa::Avx512;
        // An explicit request the CPU lacks degrades (recorded) rather
        // than aborting the whole run: a mis-set EXO2_NATIVE_ISA on
        // one worker of a fleet should cost performance, not service.
        return degrade_to_supported("EXO2_NATIVE_ISA", isa);
    }
    throw VerifyError("unrecognized EXO2_NATIVE_ISA value '" + v +
                      "' (expected scalar, avx2, avx512, or auto)");
}

namespace {

/** Recursively delete `path` (the compiler may leave files — or even
 *  driver temp subdirectories — beyond the ones we created). */
void
remove_tree(const std::string& path)
{
    if (DIR* d = opendir(path.c_str())) {
        while (struct dirent* ent = readdir(d)) {
            std::string name = ent->d_name;
            if (name == "." || name == "..")
                continue;
            std::string child = path + "/" + name;
            if (unlink(child.c_str()) != 0 && errno == EISDIR)
                remove_tree(child);
        }
        closedir(d);
    }
    rmdir(path.c_str());
}

double
cjit_timeout_seconds()
{
    return util::env_double("EXO2_CJIT_TIMEOUT", 60.0, 0.01, 86400.0);
}

/** Outcome of one (possibly retried) compiler run. */
struct CompileOutcome
{
    bool ok = false;
    RuntimeFault fault;   ///< when !ok
    int attempts = 0;
};

/**
 * Invoke the C compiler via run_command with a timeout, decoding the
 * wait status properly and retrying transient resource failures with
 * backoff (3 attempts: 0ms, 100ms, 400ms). Fault injection: the
 * CompileFail / CompileSlow sites replace the compiler with a failing
 * or sleeping stand-in, so the exact decode/timeout/recovery paths a
 * real broken toolchain would take are the ones exercised.
 */
CompileOutcome
compile_unit(const std::vector<std::string>& cc_argv,
             const std::string& err_path)
{
    CompileOutcome out;
    double timeout = cjit_timeout_seconds();

    std::vector<std::string> argv = cc_argv;
    if (fault_should_inject(FaultSite::CompileFail)) {
        argv = {"sh", "-c",
                "echo 'exo2: injected compiler failure' >&2; exit 1"};
    } else if (fault_should_inject(FaultSite::CompileSlow)) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "sleep %g",
                      current_fault_spec().slow_seconds);
        argv = {"sh", "-c", buf};
    }

    for (int attempt = 1; attempt <= 3; attempt++) {
        out.attempts = attempt;
        SpawnResult r = run_command(argv, err_path, timeout);
        if (r.ok())
            return CompileOutcome{true, {}, attempt};

        std::string stderr_text = read_file(err_path);
        if (r.timed_out) {
            out.fault.kind = FaultKind::CompileTimeout;
            out.fault.phase = FaultPhase::Compile;
            out.fault.elapsed_seconds = r.seconds;
            out.fault.detail = "compiler exceeded the " +
                               std::to_string(timeout) +
                               "s timeout (EXO2_CJIT_TIMEOUT)" +
                               (stderr_text.empty()
                                    ? ""
                                    : "\n--- compiler output ---\n" +
                                          stderr_text);
            return out;  // a hung compiler is not retried
        }
        out.fault.kind = FaultKind::CompileError;
        out.fault.phase = FaultPhase::Compile;
        out.fault.exit_code = r.exited ? r.exit_code : 0;
        out.fault.signal_number = r.term_signal;
        out.fault.elapsed_seconds = r.seconds;
        if (!r.started) {
            out.fault.detail = "failed to spawn compiler: " + r.error;
        } else if (r.term_signal) {
            out.fault.detail =
                "compiler killed by signal " +
                std::to_string(r.term_signal) +
                (stderr_text.empty()
                     ? ""
                     : "\n--- compiler output ---\n" + stderr_text);
        } else {
            out.fault.detail =
                "compiler exited with code " +
                std::to_string(r.exit_code) +
                "\n--- compiler output ---\n" + stderr_text;
        }
        if (attempt < 3 && spawn_failure_transient(r, stderr_text)) {
            usleep(static_cast<useconds_t>(100000u << (2 * (attempt - 1))));
            continue;
        }
        return out;
    }
    return out;
}

/** Plant an injected execution fault in the generated unit: the real
 *  entry point is renamed and a wrapper that traps / divides by zero /
 *  spins is emitted in its place — a genuine miscompiled-kernel
 *  stand-in, built and loaded through the normal pipeline. */
std::string
plant_execution_fault(const std::string& unit, const char* body,
                      const char* label)
{
    std::string out;
    out += "/* exo2 fault injection: ";
    out += label;
    out += " planted at the entry point */\n";
    out += "#define exo2_run exo2_real_run\n";
    out += unit;
    out += "\n#undef exo2_run\n";
    out += "void exo2_run(void** exo2_argv) {\n";
    out += body;
    out += "    exo2_real_run(exo2_argv);\n}\n";
    return out;
}

}  // namespace

void
TempDir::remove()
{
    if (path_.empty())
        return;
    remove_tree(path_);
    path_.clear();
}

CompiledProc::CompiledProc(const ProcPtr& p)
    : CompiledProc(p, cjit_env_isa()) {}

CompiledProc::CompiledProc(const ProcPtr& p, NativeIsa isa) : proc_(p)
{
    EXO2_SPAN("cjit.build", {{"proc", p->name()}});
    // Requests the CPU cannot execute degrade down the chain (the old
    // behavior threw): compiling for a missing ISA would SIGILL on the
    // first run, so fall back and record it.
    isa = degrade_to_supported(p->name(), isa);
    int required = codegen_max_vector_bytes(p);

    char tmpl[] = "/tmp/exo2_jit_XXXXXX";
    char* dir = mkdtemp(tmpl);
    if (!dir)
        throw VerifyError("mkdtemp failed");
    // From here on the TempDir member owns cleanup: its destructor
    // runs on every exit path, including exceptions thrown below
    // (~CompiledProc never runs when the constructor throws, but
    // fully-constructed members are still destroyed).
    dir_ = TempDir(dir);

    std::string c_path = dir_.path() + "/kernel.c";
    std::string so_path = dir_.path() + "/kernel.so";
    std::string err_path = dir_.path() + "/cc.err";

    const char* cc_env = std::getenv("CC");
    std::string cc = cc_env && *cc_env ? cc_env : "cc";

    // Compile, degrading down the ISA chain on failure: a native
    // (intrinsics) unit whose compile fails — unsupported -m flags,
    // an injected ISA fault, a toolchain missing immintrin.h — is
    // retried as portable scalar C before giving up.
    //
    // Persistent compile cache (DESIGN.md §8): when EXO2_CACHE_DIR is
    // set, a previously built object for the same (generated source,
    // compiler flags, compiler identity) is dlopened directly instead
    // of re-running the compiler. A cached object that fails to load
    // is quarantined and the unit rebuilt from source.
    cache::CompileCache ccache;
    bool cache_probe_ok = true;  // cleared after a cached load failure
    RuntimeFault last_fault;
    for (;;) {
        int avail = isa == NativeIsa::Avx512 ? 64
                    : isa == NativeIsa::Avx2 ? 32
                                             : 0;
        native_ = required > 0 && avail >= required;
        isa_ = native_ ? isa : NativeIsa::Scalar;

        CodegenOpts opts;
        opts.native_vector_bytes = avail;
        opts.required_vector_bytes = required;  // avoid a second walk
        {
            EXO2_SPAN("cjit.codegen",
                      {{"isa", native_isa_name(isa_)}});
            src_ = codegen_c_unit(p, opts);
        }

        // Execution-fault injection is a codegen mode: the planted
        // trap/spin rides through the real compile+load pipeline.
        if (fault_should_inject(FaultSite::Sigsegv)) {
            src_ = plant_execution_fault(
                src_,
                "    volatile int* exo2_null = 0;\n"
                "    *exo2_null = 1;\n",
                "SIGSEGV");
        } else if (fault_should_inject(FaultSite::Sigfpe)) {
            // Both operands volatile: with a constant numerator GCC
            // folds 1/x into a branchless compare (UB assumption) and
            // no idiv — and so no trap — is ever emitted.
            src_ = plant_execution_fault(
                src_,
                "    volatile int exo2_one = 1;\n"
                "    volatile int exo2_zero = 0;\n"
                "    volatile int exo2_q = exo2_one / exo2_zero;\n"
                "    (void)exo2_q;\n",
                "SIGFPE");
        } else if (fault_should_inject(FaultSite::Sigill)) {
            src_ = plant_execution_fault(src_,
                                         "    __builtin_trap();\n",
                                         "SIGILL");
        } else if (fault_should_inject(FaultSite::Hang)) {
            src_ = plant_execution_fault(
                src_,
                "    volatile int exo2_spin = 1;\n"
                "    while (exo2_spin) {}\n",
                "infinite loop");
        }

        {
            std::ofstream out(c_path);
            out << src_;
        }

        std::vector<std::string> argv = {
            cc,   "-O1",          "-fPIC",
            "-shared",            "-fno-builtin",
            "-ffp-contract=off",  "-fno-math-errno",
            "-w"};
        if (native_) {
            if (required >= 64) {
                argv.push_back("-mavx512f");
                argv.push_back("-mavx2");
                argv.push_back("-mfma");
            } else {
                argv.push_back("-mavx2");
                argv.push_back("-mfma");
            }
        }
        argv.push_back("-o");
        argv.push_back(so_path);
        argv.push_back(c_path);

        // Everything that shapes the object is in the cache key: the
        // exact generated source (after any fault planting), the full
        // compiler flag set, and the compiler's identity.
        cache::CompileKey ckey;
        if (ccache.enabled()) {
            ckey.source_digest = cache::fnv1a64(src_);
            for (size_t i = 1; i + 3 < argv.size(); i++) {
                if (i > 1)
                    ckey.isa_flags += ' ';
                ckey.isa_flags += argv[i];
            }
            ckey.compiler_id = cache::compiler_identity(cc);
        }

        from_cache_ = false;
        std::string load_path = so_path;
        if (ccache.enabled() && cache_probe_ok) {
            EXO2_SPAN("cjit.cache_probe");
            if (auto hit = ccache.probe(ckey)) {
                load_path = *hit;
                from_cache_ = true;
            }
        }

        if (!from_cache_) {
            bool injected_isa_fail =
                native_ && fault_should_inject(FaultSite::IsaFail);
            CompileOutcome co;
            if (injected_isa_fail) {
                co.ok = false;
                co.fault.kind = FaultKind::CompileError;
                co.fault.phase = FaultPhase::Compile;
                co.fault.exit_code = 1;
                co.fault.detail = "injected native-ISA compile failure";
            } else {
                EXO2_SPAN("cjit.compile",
                          {{"isa", native_isa_name(isa_)}});
                co = compile_unit(argv, err_path);
            }
            if (!co.ok) {
                last_fault = co.fault;
                if (native_) {
                    // Degrade and retry as scalar rather than failing
                    // the request outright.
                    std::string reason = co.fault.detail;
                    if (reason.size() > 400)
                        reason.resize(400);
                    record_downgrade(
                        p->name(), isa, NativeIsa::Scalar,
                        std::string(fault_kind_name(co.fault.kind)) +
                            ": " + reason);
                    isa = NativeIsa::Scalar;
                    continue;
                }
                last_fault.detail +=
                    "\n--- generated source ---\n" + src_;
                throw FaultError(last_fault);
            }
            if (ccache.enabled()) {
                EXO2_SPAN("cjit.cache_store");
                ccache.store(ckey, so_path);
            }
        }

        if (fault_should_inject(FaultSite::DlopenFail)) {
            // Load the C source instead of the built object: a genuine
            // dlopen failure with a real dlerror, through the real
            // path.
            load_path = c_path;
        }
        {
            EXO2_SPAN("cjit.dlopen");
            handle_ = dlopen(load_path.c_str(), RTLD_NOW | RTLD_LOCAL);
        }
        const char* err = nullptr;
        if (handle_) {
            entry_ = reinterpret_cast<void (*)(void**)>(
                dlsym(handle_, "exo2_run"));
            if (!entry_) {
                err = "entry point exo2_run not found";
                dlclose(handle_);
                handle_ = nullptr;
            }
        } else {
            err = dlerror();  // clears the error state
        }
        if (entry_)
            break;
        if (from_cache_) {
            // Recompile-on-corruption fallback: a cached object that
            // passed its checksum but will not load (damage beyond the
            // covered bytes, an incompatible object format, or an
            // injected dlopen fault) is quarantined and the unit is
            // rebuilt from source on the next pass.
            ccache.invalidate(ckey, "load");
            cache_probe_ok = false;
            from_cache_ = false;
            continue;
        }
        RuntimeFault f;
        f.kind = FaultKind::LoadError;
        f.phase = FaultPhase::Load;
        f.detail = std::string("dlopen failed: ") +
                   (err ? err : "unknown") + " (" + load_path + ")";
        throw FaultError(f);
    }
}

CompiledProc::~CompiledProc()
{
    if (handle_)
        dlclose(handle_);
}

void
CompiledProc::run(const std::vector<RunArg>& args) const
{
    run_marshalled(entry_, proc_, args, 1);
}

SandboxOutcome
CompiledProc::run_sandboxed(const std::vector<RunArg>& args,
                            const SandboxLimits& limits) const
{
    return sandbox_call(entry_, proc_, args, 1, limits);
}

double
CompiledProc::time_run(const std::vector<RunArg>& args, int iters) const
{
    return run_marshalled(entry_, proc_, args, iters);
}

double
CompiledProc::time_per_call(const std::vector<RunArg>& args,
                            double target_seconds, int max_iters) const
{
    double once = time_run(args, 1);  // also warms the caches
    int iters =
        static_cast<int>(target_seconds / std::max(once, 1e-7));
    iters = std::max(4, std::min(iters, max_iters));
    return time_run(args, iters) / iters;
}

TimedOutcome
CompiledProc::time_per_call_sandboxed(const std::vector<RunArg>& args,
                                      double target_seconds,
                                      int max_iters,
                                      const SandboxLimits& limits) const
{
    TimedOutcome out;
    SandboxOutcome once = sandbox_call(entry_, proc_, args, 1, limits);
    if (!once.ok) {
        out.fault = once.fault;
        return out;
    }
    int iters = static_cast<int>(target_seconds /
                                 std::max(once.seconds, 1e-7));
    iters = std::max(4, std::min(iters, max_iters));
    SandboxOutcome timed =
        sandbox_call(entry_, proc_, args, iters, limits);
    if (!timed.ok) {
        out.fault = timed.fault;
        return out;
    }
    out.ok = true;
    out.seconds_per_call = timed.seconds / iters;
    return out;
}

}  // namespace verify
}  // namespace exo2
