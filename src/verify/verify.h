#ifndef EXO2_VERIFY_VERIFY_H_
#define EXO2_VERIFY_VERIFY_H_

/**
 * @file
 * Umbrella header for the differential verification subsystem
 * (DESIGN.md §4).
 *
 * The paper's core promise is that scheduling rewrites are
 * semantics-preserving. This subsystem checks that promise against
 * three independent executable oracles:
 *
 *   1. the IR interpreter running the *scheduled* procedure,
 *   2. generated C for the scheduled procedure, compiled with the
 *      system compiler and executed in-process (cjit.h),
 *   3. the IR interpreter running the *unscheduled original* — the
 *      reference semantics.
 *
 * A seeded schedule fuzzer (fuzz.h) drives random primitive chains
 * over the kernels in src/kernels/ and asserts all three oracles agree
 * on randomized buffer inputs; any divergence is delta-debugged down
 * to a minimal primitive chain and reported as a reproducible
 * (kernel, seed, steps) triple.
 */

#include "src/verify/cjit.h"
#include "src/verify/fuzz.h"
#include "src/verify/oracle.h"

#endif  // EXO2_VERIFY_VERIFY_H_
