#include "src/verify/fuzz.h"

#include <functional>
#include <sstream>

#include "src/analysis/affine.h"
#include "src/cursor/cursor.h"
#include "src/ir/builder.h"
#include "src/ir/errors.h"
#include "src/lint/lint.h"
#include "src/primitives/primitives.h"
#include "src/util/rng.h"
#include "src/verify/sandbox.h"

namespace exo2 {
namespace verify {

namespace {

using Rng = XorShiftRng;  // the shared seeded RNG (util/rng.h)

/** Cursor collections over one proc version, in traversal order. */
struct Walk
{
    std::vector<Cursor> loops;
    std::vector<Cursor> stmts;
    std::vector<Cursor> writes;          ///< Assign / Reduce
    std::vector<Cursor> scalar_assigns;  ///< Assign with no indices
    std::vector<Cursor> allocs;
    std::vector<Cursor> with_next;       ///< stmts with a next sibling
    std::vector<Cursor> scopes;          ///< For/If nested under For/If
    std::vector<std::pair<Cursor, Cursor>> for_pairs;  ///< adjacent Fors
    std::vector<std::pair<Cursor, Cursor>> if_pairs;   ///< adjacent Ifs
};

void
walk_block(const ProcPtr& p, const std::vector<StmtPtr>& block,
           const Path& prefix, PathLabel label, bool parent_is_scope,
           Walk* w)
{
    for (size_t i = 0; i < block.size(); i++) {
        const StmtPtr& s = block[i];
        Path here = prefix;
        here.push_back({label, static_cast<int>(i)});
        CursorLoc loc;
        loc.kind = CursorKind::Node;
        loc.path = here;
        Cursor c(p, loc);
        w->stmts.push_back(c);
        if (i + 1 < block.size())
            w->with_next.push_back(c);
        switch (s->kind()) {
          case StmtKind::For:
            w->loops.push_back(c);
            if (parent_is_scope)
                w->scopes.push_back(c);
            break;
          case StmtKind::If:
            if (parent_is_scope)
                w->scopes.push_back(c);
            break;
          case StmtKind::Assign:
            w->writes.push_back(c);
            if (s->idx().empty())
                w->scalar_assigns.push_back(c);
            break;
          case StmtKind::Reduce:
            w->writes.push_back(c);
            break;
          case StmtKind::Alloc:
            w->allocs.push_back(c);
            break;
          default:
            break;
        }
        if (i + 1 < block.size()) {
            const StmtPtr& nxt = block[i + 1];
            Path np = prefix;
            np.push_back({label, static_cast<int>(i + 1)});
            CursorLoc nloc;
            nloc.kind = CursorKind::Node;
            nloc.path = np;
            Cursor nc(p, nloc);
            if (s->kind() == StmtKind::For && nxt->kind() == StmtKind::For)
                w->for_pairs.emplace_back(c, nc);
            if (s->kind() == StmtKind::If && nxt->kind() == StmtKind::If)
                w->if_pairs.emplace_back(c, nc);
        }
        bool scope =
            s->kind() == StmtKind::For || s->kind() == StmtKind::If;
        if (!s->body().empty())
            walk_block(p, s->body(), here, PathLabel::Body, scope, w);
        if (!s->orelse().empty())
            walk_block(p, s->orelse(), here, PathLabel::Orelse, scope, w);
    }
}

Walk
walk(const ProcPtr& p)
{
    Walk w;
    walk_block(p, p->body_stmts(), {}, PathLabel::Body, false, &w);
    return w;
}

template <typename T>
const T&
pick(const std::vector<T>& v, int64_t ordinal, const char* what)
{
    if (v.empty())
        throw SchedulingError(std::string("fuzz: no candidate ") + what);
    uint64_t u = static_cast<uint64_t>(ordinal);
    return v[u % v.size()];
}

/** First size argument of the proc. */
std::string
first_size_arg(const ProcPtr& p)
{
    for (const auto& a : p->args()) {
        if (a.is_size || (a.dims.empty() && a.type == ScalarType::Index))
            return a.name;
    }
    throw SchedulingError("fuzz: proc has no size argument");
}

/** Condition `buf[0,...,0] >= 0` over the first buffer argument. */
ExprPtr
first_buffer_cond(const ProcPtr& p)
{
    for (const auto& a : p->args()) {
        if (a.dims.empty())
            continue;
        std::vector<ExprPtr> idx(a.dims.size(), idx_const(0));
        ExprPtr rd = Expr::make_read(a.name, std::move(idx), a.type);
        return Expr::make_binop(BinOpKind::Ge, rd,
                                Expr::make_const(0.0, a.type));
    }
    throw SchedulingError("fuzz: proc has no buffer argument");
}

TailStrategy
tail_of(int64_t n)
{
    switch (static_cast<uint64_t>(n) % 4) {
      case 0: return TailStrategy::Perfect;
      case 1: return TailStrategy::Guard;
      case 2: return TailStrategy::Cut;
      default: return TailStrategy::CutAndGuard;
    }
}

}  // namespace

std::string
step_to_string(const FuzzStep& step)
{
    std::ostringstream os;
    os << step.op << "[";
    for (size_t i = 0; i < step.n.size(); i++)
        os << (i ? "," : "") << step.n[i];
    if (!step.s.empty()) {
        os << ";";
        for (size_t i = 0; i < step.s.size(); i++)
            os << (i ? "," : "") << step.s[i];
    }
    os << "]";
    return os.str();
}

FuzzStep
step_from_string(const std::string& text)
{
    size_t lb = text.find('[');
    if (lb == std::string::npos || text.empty() || text.back() != ']')
        throw SchedulingError("step_from_string: malformed step '" +
                              text + "' (want op[n,...;s,...])");
    FuzzStep st;
    st.op = text.substr(0, lb);
    if (st.op.empty())
        throw SchedulingError("step_from_string: empty op in '" + text +
                              "'");
    std::string body = text.substr(lb + 1, text.size() - lb - 2);
    // Operands never contain step syntax; embedded '['/']'/';' means
    // the input is not one step (e.g. a whole script joined onto one
    // line) — reject it rather than absorb the rest into a garbage
    // name operand.
    if (body.find('[') != std::string::npos ||
        body.find(']') != std::string::npos ||
        body.find(';') != body.rfind(';')) {
        throw SchedulingError(
            "step_from_string: '" + text + "' is not a single step "
            "(scripts are one step per line; see script_from_string)");
    }
    size_t semi = body.find(';');
    std::string nums = body.substr(0, semi);
    auto split = [](const std::string& s) {
        std::vector<std::string> out;
        size_t pos = 0;
        while (pos <= s.size()) {
            size_t c = s.find(',', pos);
            if (c == std::string::npos) {
                out.push_back(s.substr(pos));
                break;
            }
            out.push_back(s.substr(pos, c - pos));
            pos = c + 1;
        }
        return out;
    };
    if (!nums.empty()) {
        for (const std::string& tok : split(nums)) {
            try {
                size_t used = 0;
                int64_t v = std::stoll(tok, &used);
                if (used != tok.size())
                    throw std::invalid_argument(tok);
                st.n.push_back(v);
            } catch (const std::exception&) {
                throw SchedulingError(
                    "step_from_string: bad integer operand '" + tok +
                    "' in '" + text + "'");
            }
        }
    }
    if (semi != std::string::npos)
        st.s = split(body.substr(semi + 1));
    return st;
}

std::string
script_to_string(const std::vector<FuzzStep>& steps)
{
    std::string out;
    for (const FuzzStep& st : steps) {
        out += step_to_string(st);
        out += "\n";
    }
    return out;
}

std::vector<FuzzStep>
script_from_string(const std::string& text)
{
    std::vector<FuzzStep> out;
    size_t pos = 0;
    while (pos <= text.size()) {
        size_t nl = text.find('\n', pos);
        std::string line = nl == std::string::npos
                               ? text.substr(pos)
                               : text.substr(pos, nl - pos);
        while (!line.empty() && (line.back() == '\r' || line.back() == ' '))
            line.pop_back();
        size_t first = line.find_first_not_of(" \t");
        line = first == std::string::npos ? std::string()
                                          : line.substr(first);
        // '#' lines are comments: cache entries and hand-edited repro
        // scripts may annotate steps without breaking replay.
        if (!line.empty() && line[0] != '#')
            out.push_back(step_from_string(line));
        if (nl == std::string::npos)
            break;
        pos = nl + 1;
    }
    return out;
}

ProcPtr
apply_fuzz_step(const ProcPtr& p, const FuzzStep& st)
{
    Walk w = walk(p);
    const std::string& op = st.op;
    auto ni = [&](size_t i) -> int64_t {
        return i < st.n.size() ? st.n[i] : 0;
    };
    auto si = [&](size_t i) -> std::string {
        if (i >= st.s.size())
            throw SchedulingError("fuzz: step missing name operand");
        return st.s[i];
    };

    if (op == "divide") {
        return divide_loop(p, pick(w.loops, ni(0), "loop"), ni(1),
                           {si(0), si(1)}, tail_of(ni(2)));
    }
    if (op == "reorder_loops")
        return reorder_loops(p, pick(w.loops, ni(0), "loop"));
    if (op == "unroll") {
        Cursor lc = pick(w.loops, ni(0), "loop");
        StmtPtr s = lc.stmt();
        // Keep unrolled code small enough to interpret and compile.
        Affine lo = to_affine(s->lo());
        Affine hi = to_affine(s->hi());
        require(lo.is_const() && hi.is_const() &&
                    hi.constant - lo.constant <= 16,
                "fuzz: unroll target too large or non-constant");
        return unroll_loop(p, lc);
    }
    if (op == "cut") {
        Cursor lc = pick(w.loops, ni(0), "loop");
        ExprPtr at = lc.stmt()->lo() + idx_const(1 + (ni(1) % 3));
        return cut_loop(p, lc, at);
    }
    if (op == "shift") {
        return shift_loop(p, pick(w.loops, ni(0), "loop"),
                          idx_const(1 + (ni(1) % 3)));
    }
    if (op == "join") {
        const auto& pr = pick(w.for_pairs, ni(0), "adjacent loop pair");
        return join_loops(p, pr.first, pr.second);
    }
    if (op == "fuse") {
        if (!w.if_pairs.empty() && (ni(1) & 1)) {
            const auto& pr = pick(w.if_pairs, ni(0), "adjacent if pair");
            return fuse(p, pr.first, pr.second);
        }
        const auto& pr = pick(w.for_pairs, ni(0), "adjacent loop pair");
        return fuse(p, pr.first, pr.second);
    }
    if (op == "fission") {
        Cursor lc = pick(w.loops, ni(0), "loop");
        auto body = lc.body_list();
        require(body.size() >= 2, "fuzz: fission needs a 2+ stmt body");
        size_t g = 1 + static_cast<uint64_t>(ni(1)) % (body.size() - 1);
        return fission(p, body[g].before(), 1);
    }
    if (op == "reorder_stmts") {
        Cursor c = pick(w.with_next, ni(0), "stmt with successor");
        return reorder_stmts(p, c, c.next());
    }
    if (op == "bind_expr") {
        Cursor wr = pick(w.writes, ni(0), "write");
        return bind_expr(p, wr.rhs(), si(0), (ni(1) & 1) != 0);
    }
    if (op == "bind_config") {
        Cursor wr = pick(w.writes, ni(0), "write");
        return bind_config(p, wr.rhs(), si(0), si(1));
    }
    if (op == "commute")
        return commute_expr(p, pick(w.writes, ni(0), "write").rhs());
    if (op == "inline_assign")
        return inline_assign(p, pick(w.scalar_assigns, ni(0),
                                     "scalar assign"));
    if (op == "lift_alloc") {
        return lift_alloc(p, pick(w.allocs, ni(0), "alloc"),
                          1 + (ni(1) & 1));
    }
    if (op == "sink_alloc")
        return sink_alloc(p, pick(w.allocs, ni(0), "alloc"));
    if (op == "delete_buffer")
        return delete_buffer(p, pick(w.allocs, ni(0), "alloc"));
    if (op == "divide_dim")
        return divide_dim(p, pick(w.allocs, ni(0), "alloc"), 0, 2);
    if (op == "expand_dim") {
        return expand_dim(p, pick(w.allocs, ni(0), "alloc"), idx_const(2),
                          idx_const(0));
    }
    if (op == "rearrange_dim") {
        Cursor ac = pick(w.allocs, ni(0), "alloc");
        require(ac.stmt()->dims().size() >= 2,
                "fuzz: rearrange_dim needs >= 2 dims");
        std::vector<int> perm(ac.stmt()->dims().size());
        for (size_t i = 0; i < perm.size(); i++)
            perm[i] = static_cast<int>(i);
        std::swap(perm[0], perm[1]);
        return rearrange_dim(p, ac, perm);
    }
    if (op == "mult_loops")
        return mult_loops(p, pick(w.loops, ni(0), "loop"), si(0));
    if (op == "remove_loop")
        return remove_loop(p, pick(w.loops, ni(0), "loop"));
    if (op == "add_loop") {
        return add_loop(p, pick(w.stmts, ni(0), "stmt"), si(0),
                        idx_const(1 + (ni(1) % 3)), (ni(2) & 1) != 0);
    }
    if (op == "specialize_size") {
        Cursor sc = pick(w.stmts, ni(0), "stmt");
        ExprPtr cond = Expr::make_binop(
            BinOpKind::Eq,
            Expr::make_binop(BinOpKind::Mod, var(first_size_arg(p)),
                             idx_const(2 + (ni(1) % 3))),
            idx_const(0));
        return specialize(p, sc, {cond});
    }
    if (op == "specialize_data") {
        Cursor sc = pick(w.stmts, ni(0), "stmt");
        return specialize(p, sc, {first_buffer_cond(p)});
    }
    if (op == "lift_scope")
        return lift_scope(p, pick(w.scopes, ni(0), "nested scope"));
    if (op == "parallelize")
        return parallelize_loop(p, pick(w.loops, ni(0), "loop"));
    if (op == "simplify")
        return simplify(p);
    if (op == "dce")
        return eliminate_dead_code(p);
    throw SchedulingError("fuzz: unknown op '" + op + "'");
}

namespace {

/** Draw one candidate step for the current proc. `uniq` must be unique
 *  within the chain (fresh-name generation). */
FuzzStep
random_step(const ProcPtr& p, Rng* rng, int uniq)
{
    static const char* kOps[] = {
        "divide",        "divide",       "reorder_loops", "unroll",
        "cut",           "shift",        "join",          "fuse",
        "fission",       "reorder_stmts", "bind_expr",    "bind_config",
        "commute",       "inline_assign", "lift_alloc",   "sink_alloc",
        "delete_buffer", "divide_dim",   "expand_dim",    "rearrange_dim",
        "mult_loops",    "remove_loop",  "add_loop",      "specialize_size",
        "specialize_data", "lift_scope", "parallelize",   "simplify",
        "dce",
    };
    constexpr int kNumOps = sizeof(kOps) / sizeof(kOps[0]);
    FuzzStep st;
    st.op = kOps[rng->below(kNumOps)];
    std::string u = std::to_string(uniq);
    // Three generic integer operands cover every op's parameters.
    st.n = {rng->below(1 << 20), rng->below(1 << 20), rng->below(1 << 20)};
    if (st.op == "divide") {
        st.n[1] = 2 + rng->below(3);  // factor 2..4
        st.s = {"fz" + u + "o", "fz" + u + "i"};
    } else if (st.op == "bind_expr") {
        st.s = {"fzb" + u};
    } else if (st.op == "bind_config") {
        st.s = {"fzcfg", "f" + u};
    } else if (st.op == "mult_loops") {
        st.s = {"fzm" + u};
    } else if (st.op == "add_loop") {
        st.s = {"fzl" + u};
    }
    (void)p;
    return st;
}

enum class ReplayStatus { Ok, Divergence, EngineError };

ReplayStatus
replay(const ProcPtr& p, const SizeEnv& env, uint64_t seed,
       const std::vector<FuzzStep>& steps)
{
    ProcPtr cur = p;
    for (const FuzzStep& st : steps) {
        try {
            cur = apply_fuzz_step(cur, st);
        } catch (const SchedulingError&) {
        } catch (const InvalidCursorError&) {
        } catch (const InternalError&) {
            return ReplayStatus::EngineError;
        }
    }
    return tri_oracle_check(p, cur, env, seed).ok
               ? ReplayStatus::Ok
               : ReplayStatus::Divergence;
}

/** Greedy single-step removal to a locally minimal failing chain. */
std::vector<FuzzStep>
minimize(const ProcPtr& p, const SizeEnv& env, uint64_t seed,
         std::vector<FuzzStep> steps)
{
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t i = 0; i < steps.size();) {
            std::vector<FuzzStep> cand = steps;
            cand.erase(cand.begin() + static_cast<long>(i));
            if (replay(p, env, seed, cand) != ReplayStatus::Ok) {
                steps = std::move(cand);
                changed = true;
            } else {
                i++;
            }
        }
    }
    return steps;
}

}  // namespace

FuzzResult
fuzz_schedule(const ProcPtr& p, const SizeEnv& env, uint64_t seed,
              int max_steps)
{
    Rng rng(seed);
    FuzzResult r;
    ProcPtr cur = p;
    int attempts = 0;
    while (static_cast<int>(r.applied.size()) < max_steps &&
           attempts < max_steps * 8) {
        attempts++;
        FuzzStep st = random_step(cur, &rng, attempts);
        try {
            cur = apply_fuzz_step(cur, st);
            r.applied.push_back(st);
        } catch (const SchedulingError&) {
        } catch (const InvalidCursorError&) {
        } catch (const InternalError& e) {
            r.status = FuzzResult::Status::EngineError;
            r.detail = "InternalError applying " + step_to_string(st) +
                       ": " + e.what();
            r.applied.push_back(st);
            r.minimized = minimize(p, env, seed, r.applied);
            return r;
        }
    }
    r.scheduled = cur;
    // Fourth oracle (DESIGN.md §9): the static linter's verdict on the
    // scheduled proc, recorded before execution so a contradiction with
    // the dynamic oracles below is detectable.
    {
        lint::LintReport lrep = lint::lint_proc(cur);
        r.lint_safe = lrep.proven_safe();
        r.lint_errors = lrep.count(lint::Severity::Error);
    }
    TriOracleReport rep = tri_oracle_check(p, cur, env, seed);
    if (rep.ok) {
        r.status = FuzzResult::Status::Ok;
        return r;
    }
    if (rep.is_fault()) {
        if (r.lint_safe && rep.fault.kind == FaultKind::Crash &&
            !current_fault_spec().any()) {
            // Lint proved every access in-bounds, yet the kernel died
            // on a real (uninjected) fatal signal: one of the two is
            // wrong, and either way it is a soundness bug worth a
            // minimized repro. Crashes without injection are
            // deterministic, so ddmin replays faithfully.
            r.status = FuzzResult::Status::LintUnsound;
            r.detail = "lint proved the schedule safe but the C oracle "
                       "crashed: " + rep.detail;
            r.fault = rep.fault;
            r.minimized = minimize(p, env, seed, r.applied);
            return r;
        }
        // The candidate could not be executed (compile fail/timeout,
        // dlopen fail, sandboxed crash or hang). Not an equivalence
        // verdict: record the full applied chain as the replayable
        // repro and let the campaign continue. No ddmin — under fault
        // injection a re-run draws fresh faults, so single-step
        // removal would minimize noise, not the failure.
        r.status = FuzzResult::Status::Fault;
        r.fault = rep.fault;
        r.detail = rep.detail;
        r.minimized = r.applied;
        return r;
    }
    r.status = FuzzResult::Status::Divergence;
    r.detail = rep.detail;
    r.minimized = minimize(p, env, seed, r.applied);
    return r;
}

std::string
fuzz_repro_string(const std::string& kernel, uint64_t seed,
                  const FuzzResult& r)
{
    const char* what =
        r.status == FuzzResult::Status::Fault ? "fuzz fault"
        : r.status == FuzzResult::Status::EngineError ? "fuzz engine error"
        : r.status == FuzzResult::Status::LintUnsound
            ? "lint soundness bug"
            : "fuzz divergence";
    std::ostringstream os;
    os << what << " on kernel '" << kernel << "' seed " << seed
       << "\n  detail: " << r.detail << "\n  applied chain:";
    for (const auto& st : r.applied)
        os << " " << step_to_string(st);
    os << "\n  minimized chain:";
    for (const auto& st : r.minimized)
        os << " " << step_to_string(st);
    os << "\n  replay: apply_fuzz_step over the minimized chain on the "
          "kernel, then tri_oracle_check with the same sizes and seed "
       << seed;
    return os.str();
}

}  // namespace verify
}  // namespace exo2
