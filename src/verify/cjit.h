#ifndef EXO2_VERIFY_CJIT_H_
#define EXO2_VERIFY_CJIT_H_

/**
 * @file
 * In-process execution of generated C: the second oracle of the
 * tri-oracle (DESIGN.md §4), hardened for fault isolation (§7).
 *
 * A CompiledProc writes `codegen_c_unit(p)` to a temporary directory,
 * compiles it to a shared object with the system C compiler
 * (`$CC`, default `cc`), loads it with dlopen, and calls the uniform
 * `exo2_run(void**)` entry point. Buffers are marshalled from the
 * interpreter's double-backed `Buffer` into native element arrays with
 * canary-filled guard zones on both sides (marshal.h), so
 * out-of-bounds writes by miscompiled code are detected instead of
 * corrupting the test process.
 *
 * The compile step never uses `std::system`: the compiler runs under
 * `run_command` (sandbox.h) with captured stderr, a per-invocation
 * timeout (`EXO2_CJIT_TIMEOUT` seconds, default 60), full wait-status
 * decoding, and bounded retry with backoff for transient resource
 * failures. A failed compile throws FaultError carrying the compiler's
 * stderr and the generated source.
 *
 * Native SIMD (DESIGN.md §5): the ISA the generated C may target is
 * chosen per CompiledProc. The default comes from `EXO2_NATIVE_ISA`
 * ("scalar"/unset, "avx2", "avx512", or "auto" for cpuid detection).
 * Requests the CPU or the compiler cannot satisfy no longer throw:
 * they *degrade* down the chain (avx512 -> avx2 -> scalar), and each
 * downgrade is recorded in a queryable log (`isa_downgrades()`), so a
 * fleet of tuning workers keeps making progress on heterogeneous or
 * misconfigured hosts while the downgrades stay observable.
 *
 * Untrusted execution: `run_sandboxed` / `time_per_call_sandboxed`
 * run the loaded kernel in a forked child behind rlimits and a
 * watchdog (sandbox.h) and report crashes/hangs as structured
 * RuntimeFaults. The in-process `run` / `time_per_call` fast path
 * stays available for trusted reruns (e.g. final benchmarking of an
 * already-validated winner).
 */

#include <string>
#include <vector>

#include "src/interp/interp.h"
#include "src/ir/errors.h"
#include "src/ir/proc.h"
#include "src/verify/sandbox.h"

namespace exo2 {
namespace verify {

// VerifyError and the fault taxonomy (RuntimeFault, FaultError) live
// in src/ir/errors.h; keep the historical verify:: spellings working.
using ::exo2::FaultError;
using ::exo2::FaultKind;
using ::exo2::FaultPhase;
using ::exo2::RuntimeFault;
using ::exo2::VerifyError;

/** Instruction-set ceiling for generated native code. */
enum class NativeIsa { Scalar, Avx2, Avx512 };

/** Human-readable ISA name ("scalar" / "avx2" / "avx512"). */
const char* native_isa_name(NativeIsa isa);

/** Resolve `EXO2_NATIVE_ISA` against the running CPU: unset/"scalar"
 *  gives Scalar, "auto" the best supported ISA. An explicit
 *  "avx2"/"avx512" the CPU lacks degrades to the best supported ISA
 *  with a recorded downgrade (it used to throw). Unrecognized values
 *  still throw VerifyError. */
NativeIsa cjit_env_isa();

/** Whether the running CPU can execute code for `isa`. */
bool cjit_cpu_supports(NativeIsa isa);

/** One recorded fallback down the ISA degradation chain. */
struct IsaDowngrade
{
    std::string proc_name;
    NativeIsa requested = NativeIsa::Scalar;
    NativeIsa used = NativeIsa::Scalar;
    std::string reason;  ///< "cpuid: ..." or compiler stderr excerpt
};

/** Every downgrade recorded since process start (or the last clear),
 *  oldest first. */
std::vector<IsaDowngrade> isa_downgrades();
void clear_isa_downgrades();

/** An owned temporary directory, recursively removed on destruction
 *  (so JIT scratch files are reclaimed on success *and* on every
 *  failure path, including constructor throws). */
class TempDir
{
  public:
    TempDir() = default;
    explicit TempDir(std::string path) : path_(std::move(path)) {}
    ~TempDir() { remove(); }

    TempDir(const TempDir&) = delete;
    TempDir& operator=(const TempDir&) = delete;
    TempDir& operator=(TempDir&& other) noexcept
    {
        remove();
        path_ = std::move(other.path_);
        other.path_.clear();
        return *this;
    }

    const std::string& path() const { return path_; }

  private:
    void remove();

    std::string path_;
};

/** Result of a sandboxed calibrated timing run. */
struct TimedOutcome
{
    bool ok = false;
    double seconds_per_call = 0.0;
    RuntimeFault fault;
};

/** A procedure compiled to native code and loaded in-process. */
class CompiledProc
{
  public:
    /** Generates, compiles, and loads `p` with the environment-selected
     *  ISA (`cjit_env_isa()`). Throws FaultError (a VerifyError) when
     *  the compiler rejects the generated C even as scalar, hangs past
     *  the timeout, or the built object fails to load; the compiler's
     *  captured stderr and the source are in the message. */
    explicit CompiledProc(const ProcPtr& p);

    /** Same, with an explicit ISA ceiling. Unsupported or
     *  uncompilable native requests degrade (see isa_downgrades())
     *  instead of throwing. */
    CompiledProc(const ProcPtr& p, NativeIsa isa);

    ~CompiledProc();

    CompiledProc(const CompiledProc&) = delete;
    CompiledProc& operator=(const CompiledProc&) = delete;

    /** Execute in-process with the same argument convention as
     *  `interp_run`. Buffer contents are copied in before and back out
     *  after the call. Throws VerifyError if a guard zone was
     *  overwritten. Trusted fast path: a crashing kernel takes the
     *  process down — use run_sandboxed for untrusted candidates. */
    void run(const std::vector<RunArg>& args) const;

    /** Execute in a forked child behind rlimits and a wall-clock
     *  watchdog (sandbox.h). Outputs are marshalled back through
     *  shared memory on a clean run; crashes, hangs, and rlimit kills
     *  come back as `outcome.fault`. */
    SandboxOutcome run_sandboxed(
        const std::vector<RunArg>& args,
        const SandboxLimits& limits = SandboxLimits::defaults()) const;

    /** Benchmark hook: marshal once, call the entry point `iters`
     *  times, and return the wall-clock seconds spent in the calls
     *  (guard zones are still checked and outputs marshalled back). */
    double time_run(const std::vector<RunArg>& args, int iters) const;

    /** Calibrated measurement: time one call (which also warms the
     *  caches), derive an iteration count filling roughly
     *  `target_seconds`, clamp it to [4, max_iters], and return the
     *  measured wall-clock seconds per call. The shared helper behind
     *  every GFLOP/s benchmark; trusted in-process path. */
    double time_per_call(const std::vector<RunArg>& args,
                         double target_seconds = 0.15,
                         int max_iters = 200000) const;

    /** Sandboxed counterpart of time_per_call: the calibration call
     *  and the measured run each execute in a forked child. A fault in
     *  either comes back in the outcome instead of dying — this is
     *  what the autotuner's JIT re-rank uses on untrusted candidates.
     *  Timing excludes fork/marshalling overhead (child-side clock). */
    TimedOutcome time_per_call_sandboxed(
        const std::vector<RunArg>& args, double target_seconds = 0.15,
        int max_iters = 200000,
        const SandboxLimits& limits = SandboxLimits::defaults()) const;

    /** The generated translation unit (for diagnostics). */
    const std::string& source() const { return src_; }

    /** Whether the loaded code was generated with native SIMD
     *  intrinsics (false = portable scalar C). */
    bool is_native() const { return native_; }

    /** The ISA the unit was actually compiled for (after any
     *  degradation). */
    NativeIsa isa() const { return isa_; }

    /** Whether the loaded object came from the persistent compile
     *  cache (DESIGN.md §8) instead of a fresh compiler run. Always
     *  false when EXO2_CACHE_DIR is unset. */
    bool loaded_from_cache() const { return from_cache_; }

  private:
    ProcPtr proc_;
    std::string src_;
    TempDir dir_;
    bool native_ = false;
    NativeIsa isa_ = NativeIsa::Scalar;
    bool from_cache_ = false;
    void* handle_ = nullptr;
    void (*entry_)(void**) = nullptr;
};

}  // namespace verify
}  // namespace exo2

#endif  // EXO2_VERIFY_CJIT_H_
