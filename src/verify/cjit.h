#ifndef EXO2_VERIFY_CJIT_H_
#define EXO2_VERIFY_CJIT_H_

/**
 * @file
 * In-process execution of generated C: the second oracle of the
 * tri-oracle (DESIGN.md §4).
 *
 * A CompiledProc writes `codegen_c_unit(p)` to a temporary directory,
 * compiles it to a shared object with the system C compiler
 * (`$CC`, default `cc`), loads it with dlopen, and calls the uniform
 * `exo2_run(void**)` entry point. Buffers are marshalled from the
 * interpreter's double-backed `Buffer` into native element arrays with
 * canary-filled guard zones on both sides, so out-of-bounds writes by
 * miscompiled code are detected instead of corrupting the test
 * process.
 *
 * Native SIMD (DESIGN.md §5): the ISA the generated C may target is
 * chosen per CompiledProc. The default comes from `EXO2_NATIVE_ISA`
 * ("scalar"/unset, "avx2", "avx512", or "auto" for cpuid detection);
 * explicit requests are validated against the running CPU. When the
 * ISA covers the procedure's vector memories the unit is generated
 * with intrinsic templates and compiled with `-mavx2 -mfma` /
 * `-mavx512f`; otherwise it compiles as portable scalar C.
 */

#include <stdexcept>
#include <string>
#include <vector>

#include "src/interp/interp.h"
#include "src/ir/proc.h"

namespace exo2 {
namespace verify {

/** A verification-harness failure (compile error, guard-zone damage,
 *  marshalling mismatch). Distinct from SchedulingError: it never
 *  indicates user error, always an engine or environment problem. */
class VerifyError : public std::runtime_error
{
  public:
    explicit VerifyError(const std::string& msg)
        : std::runtime_error("VerifyError: " + msg) {}
};

/** Instruction-set ceiling for generated native code. */
enum class NativeIsa { Scalar, Avx2, Avx512 };

/** Resolve `EXO2_NATIVE_ISA` against the running CPU: unset/"scalar"
 *  gives Scalar, "auto" the best supported ISA, and an explicit
 *  "avx2"/"avx512" throws VerifyError when the CPU lacks it. */
NativeIsa cjit_env_isa();

/** Whether the running CPU can execute code for `isa`. */
bool cjit_cpu_supports(NativeIsa isa);

/** An owned temporary directory, recursively removed on destruction
 *  (so JIT scratch files are reclaimed on success *and* on every
 *  failure path, including constructor throws). */
class TempDir
{
  public:
    TempDir() = default;
    explicit TempDir(std::string path) : path_(std::move(path)) {}
    ~TempDir() { remove(); }

    TempDir(const TempDir&) = delete;
    TempDir& operator=(const TempDir&) = delete;
    TempDir& operator=(TempDir&& other) noexcept
    {
        remove();
        path_ = std::move(other.path_);
        other.path_.clear();
        return *this;
    }

    const std::string& path() const { return path_; }

  private:
    void remove();

    std::string path_;
};

/** A procedure compiled to native code and loaded in-process. */
class CompiledProc
{
  public:
    /** Generates, compiles, and loads `p` with the environment-selected
     *  ISA (`cjit_env_isa()`). Throws VerifyError when the compiler
     *  rejects the generated C (the error output and the source are
     *  included in the message). */
    explicit CompiledProc(const ProcPtr& p);

    /** Same, with an explicit ISA ceiling. */
    CompiledProc(const ProcPtr& p, NativeIsa isa);

    ~CompiledProc();

    CompiledProc(const CompiledProc&) = delete;
    CompiledProc& operator=(const CompiledProc&) = delete;

    /** Execute with the same argument convention as `interp_run`.
     *  Buffer contents are copied in before and back out after the
     *  call. Throws VerifyError if a guard zone was overwritten. */
    void run(const std::vector<RunArg>& args) const;

    /** Benchmark hook: marshal once, call the entry point `iters`
     *  times, and return the wall-clock seconds spent in the calls
     *  (guard zones are still checked and outputs marshalled back). */
    double time_run(const std::vector<RunArg>& args, int iters) const;

    /** Calibrated measurement: time one call (which also warms the
     *  caches), derive an iteration count filling roughly
     *  `target_seconds`, clamp it to [4, max_iters], and return the
     *  measured wall-clock seconds per call. The shared helper behind
     *  every GFLOP/s benchmark and the autotuner's JIT re-rank. */
    double time_per_call(const std::vector<RunArg>& args,
                         double target_seconds = 0.15,
                         int max_iters = 200000) const;

    /** The generated translation unit (for diagnostics). */
    const std::string& source() const { return src_; }

    /** Whether the loaded code was generated with native SIMD
     *  intrinsics (false = portable scalar C). */
    bool is_native() const { return native_; }

  private:
    ProcPtr proc_;
    std::string src_;
    TempDir dir_;
    bool native_ = false;
    void* handle_ = nullptr;
    void (*entry_)(void**) = nullptr;
};

}  // namespace verify
}  // namespace exo2

#endif  // EXO2_VERIFY_CJIT_H_
