#ifndef EXO2_VERIFY_CJIT_H_
#define EXO2_VERIFY_CJIT_H_

/**
 * @file
 * In-process execution of generated C: the second oracle of the
 * tri-oracle (DESIGN.md §4).
 *
 * A CompiledProc writes `codegen_c_unit(p)` to a temporary directory,
 * compiles it to a shared object with the system C compiler
 * (`$CC`, default `cc`), loads it with dlopen, and calls the uniform
 * `exo2_run(void**)` entry point. Buffers are marshalled from the
 * interpreter's double-backed `Buffer` into native element arrays with
 * canary-filled guard zones on both sides, so out-of-bounds writes by
 * miscompiled code are detected instead of corrupting the test
 * process.
 */

#include <stdexcept>
#include <string>
#include <vector>

#include "src/interp/interp.h"
#include "src/ir/proc.h"

namespace exo2 {
namespace verify {

/** A verification-harness failure (compile error, guard-zone damage,
 *  marshalling mismatch). Distinct from SchedulingError: it never
 *  indicates user error, always an engine or environment problem. */
class VerifyError : public std::runtime_error
{
  public:
    explicit VerifyError(const std::string& msg)
        : std::runtime_error("VerifyError: " + msg) {}
};

/** A procedure compiled to native code and loaded in-process. */
class CompiledProc
{
  public:
    /** Generates, compiles, and loads `p`. Throws VerifyError when the
     *  compiler rejects the generated C (the error output and the
     *  source are included in the message). */
    explicit CompiledProc(const ProcPtr& p);
    ~CompiledProc();

    CompiledProc(const CompiledProc&) = delete;
    CompiledProc& operator=(const CompiledProc&) = delete;

    /** Execute with the same argument convention as `interp_run`.
     *  Buffer contents are copied in before and back out after the
     *  call. Throws VerifyError if a guard zone was overwritten. */
    void run(const std::vector<RunArg>& args) const;

    /** The generated translation unit (for diagnostics). */
    const std::string& source() const { return src_; }

  private:
    ProcPtr proc_;
    std::string src_;
    std::string dir_;
    void* handle_ = nullptr;
    void (*entry_)(void**) = nullptr;
};

}  // namespace verify
}  // namespace exo2

#endif  // EXO2_VERIFY_CJIT_H_
