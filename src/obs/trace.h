#ifndef EXO2_OBS_TRACE_H_
#define EXO2_OBS_TRACE_H_

/**
 * @file
 * Thread-safe span tracer with Chrome trace-event / Perfetto JSON
 * export (DESIGN.md §10).
 *
 * Usage — one macro, RAII-scoped:
 *
 *     void lint_proc(...) {
 *         EXO2_SPAN("lint.proc", {{"proc", p->name()}});
 *         ...
 *     }
 *
 * Span names follow `subsystem.verb` ("tune.round", "cjit.compile",
 * "serve.request") and MUST be string literals — the tracer stores
 * the pointer, not a copy. Dynamic values go in the args list.
 *
 * Cost model: when tracing is off the macro is one relaxed atomic
 * load and a branch; the arguments are not evaluated and nothing is
 * allocated (test_obs.cc asserts both). When on, each completed span
 * is appended to a per-thread ring buffer (per-ring mutex, touched
 * only by its own thread and the flusher), so tracing never contends
 * across threads on the hot path. Rings wrap: a thread keeps its most
 * recent EXO2_TRACE_RING spans and `trace_dropped()` counts the rest.
 *
 * Export: `EXO2_TRACE=out.json` starts tracing at process start and
 * flushes at exit; `trace_start`/`trace_flush` do the same under
 * program control. The JSON loads directly in https://ui.perfetto.dev
 * (complete "X" events; nesting is reconstructed from timestamps per
 * thread track).
 */

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <string>
#include <vector>

namespace exo2 {
namespace obs {

namespace trace_internal {
extern std::atomic<bool> g_on;
}

/** One hot relaxed load: the EXO2_SPAN fast path when tracing is off. */
inline bool
trace_enabled()
{
    return trace_internal::g_on.load(std::memory_order_relaxed);
}

/** One span argument. Converting constructors let call sites write
 *  `{{"digest", d}, {"round", 3}}` for strings and numbers alike. */
struct TraceArg
{
    const char* key;    ///< string literal, like the span name
    std::string value;
    bool quoted = true; ///< false: emit raw (numbers)

    TraceArg(const char* k, std::string v) : key(k), value(std::move(v)) {}
    TraceArg(const char* k, const char* v) : key(k), value(v) {}
    TraceArg(const char* k, int v)
        : key(k), value(std::to_string(v)), quoted(false) {}
    TraceArg(const char* k, long v)
        : key(k), value(std::to_string(v)), quoted(false) {}
    TraceArg(const char* k, long long v)
        : key(k), value(std::to_string(v)), quoted(false) {}
    TraceArg(const char* k, unsigned v)
        : key(k), value(std::to_string(v)), quoted(false) {}
    TraceArg(const char* k, unsigned long v)
        : key(k), value(std::to_string(v)), quoted(false) {}
    TraceArg(const char* k, unsigned long long v)
        : key(k), value(std::to_string(v)), quoted(false) {}
    TraceArg(const char* k, double v) : key(k), quoted(false)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        value = buf;
    }
};

/** RAII span. Declared unconditionally by EXO2_SPAN; begin() runs only
 *  when tracing is on, so a dormant Span is a few POD stores. */
class Span
{
  public:
    Span() = default;
    ~Span()
    {
        if (active_)
            finish();
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    void begin(const char* name);
    void begin(const char* name, std::initializer_list<TraceArg> args);

  private:
    void finish();

    bool active_ = false;
    const char* name_ = nullptr;
    uint64_t t0_ns_ = 0;
    std::vector<TraceArg> args_;
};

// ---------------------------------------------------------------------------
// Control plane
// ---------------------------------------------------------------------------

/** Enable recording. `path` is remembered as the flush sink (also
 *  flushed at process exit when set via EXO2_TRACE); "" records to
 *  memory only. `ring_capacity` 0 keeps the current/default size.
 *  Already-recorded spans are kept. */
void trace_start(const std::string& path = "", size_t ring_capacity = 0);

/** Stop recording (spans already captured are kept for flushing). */
void trace_stop();

/** Drop every recorded span and zero the drop counter. */
void trace_clear();

/** Spans currently retained across all thread rings. */
uint64_t trace_span_count();

/** Spans overwritten by ring wrap since the last clear. */
uint64_t trace_dropped();

/** Render everything recorded so far as Chrome trace-event JSON. */
std::string trace_json();

/** trace_json() -> `path` via the atomic file writer. False on I/O
 *  failure. */
bool trace_flush(const std::string& path);

// ---------------------------------------------------------------------------
// The macro
// ---------------------------------------------------------------------------

#define EXO2_OBS_CONCAT_(a, b) a##b
#define EXO2_OBS_CONCAT(a, b) EXO2_OBS_CONCAT_(a, b)

/** Open a span for the rest of the enclosing scope. Arguments are
 *  evaluated only when tracing is enabled. One use per source line. */
#define EXO2_SPAN(...)                                                    \
    ::exo2::obs::Span EXO2_OBS_CONCAT(exo2_obs_span_, __LINE__);          \
    if (::exo2::obs::trace_enabled())                                     \
    EXO2_OBS_CONCAT(exo2_obs_span_, __LINE__).begin(__VA_ARGS__)

}  // namespace obs
}  // namespace exo2

#endif  // EXO2_OBS_TRACE_H_
