#include "src/obs/phase.h"

namespace exo2 {
namespace obs {

namespace {

thread_local PhaseBreakdown t_breakdown;
thread_local bool t_collecting = false;

}  // namespace

const char*
phase_name(Phase p)
{
    switch (p) {
      case Phase::Queue: return "queue";
      case Phase::Lint: return "lint";
      case Phase::Cache: return "cache";
      case Phase::Search: return "search";
      case Phase::Cjit: return "cjit";
      case Phase::Validate: return "validate";
      default: return "other";
    }
}

void
phase_begin_collection()
{
    t_breakdown = PhaseBreakdown();
    t_collecting = true;
}

bool
phase_collecting()
{
    return t_collecting;
}

void
phase_add(Phase p, double seconds)
{
    if (!t_collecting)
        return;
    t_breakdown.seconds[static_cast<int>(p)] += seconds;
}

PhaseBreakdown
phase_end_collection()
{
    t_collecting = false;
    PhaseBreakdown out = t_breakdown;
    t_breakdown = PhaseBreakdown();
    return out;
}

}  // namespace obs
}  // namespace exo2
