#include "src/obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "src/ir/errors.h"

namespace exo2 {
namespace obs {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

int
Histogram::bucket_for(double v)
{
    if (!(v > 0))
        return 0;
    // +1e-9 keeps exact powers of two in the bucket they bound from
    // below instead of falling one short through log2 rounding.
    double idx = (std::log2(v) - kMinExp) * kSub + 1e-9;
    if (idx < 0)
        return 0;
    if (idx >= kBuckets)
        return kBuckets - 1;
    return static_cast<int>(idx);
}

double
Histogram::bucket_lower(int i)
{
    return std::exp2(kMinExp + static_cast<double>(i) / kSub);
}

void
Histogram::observe(double v)
{
    buckets_[bucket_for(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    uint64_t old = sum_bits_.load(std::memory_order_relaxed);
    double cur;
    uint64_t want;
    do {
        std::memcpy(&cur, &old, sizeof(cur));
        cur += v;
        std::memcpy(&want, &cur, sizeof(want));
    } while (!sum_bits_.compare_exchange_weak(old, want,
                                              std::memory_order_relaxed));
}

double
Histogram::sum() const
{
    uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
    double s;
    std::memcpy(&s, &bits, sizeof(s));
    return s;
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot s;
    s.count = count();
    s.sum = sum();
    for (int i = 0; i < kBuckets; i++)
        s.buckets[static_cast<size_t>(i)] =
            buckets_[i].load(std::memory_order_relaxed);
    return s;
}

void
Histogram::reset()
{
    for (auto& b : buckets_)
        b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_bits_.store(0, std::memory_order_relaxed);
}

double
HistogramSnapshot::percentile(double p) const
{
    uint64_t total = 0;
    for (uint64_t b : buckets)
        total += b;
    if (total == 0)
        return 0;
    if (p < 0)
        p = 0;
    if (p > 1)
        p = 1;
    // The rank-p sample, 1-based; p=0.5 of 10 samples -> the 5th.
    uint64_t rank = static_cast<uint64_t>(std::ceil(
        p * static_cast<double>(total)));
    if (rank == 0)
        rank = 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets.size(); i++) {
        seen += buckets[i];
        if (seen >= rank) {
            double lo = Histogram::bucket_lower(static_cast<int>(i));
            double hi = Histogram::bucket_lower(static_cast<int>(i) + 1);
            return std::sqrt(lo * hi);  // geometric midpoint
        }
    }
    return Histogram::bucket_lower(Histogram::kBuckets);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

namespace {

enum class Kind
{
    Counter,
    Gauge,
    Histogram
};

struct Metric
{
    Kind kind;
    std::unique_ptr<Counter> c;
    std::unique_ptr<Gauge> g;
    std::unique_ptr<Histogram> h;
};

struct MetricsRegistry
{
    std::mutex mu;
    std::map<std::string, Metric> metrics;
};

MetricsRegistry&
registry()
{
    static MetricsRegistry* r = new MetricsRegistry();  // exit-safe
    return *r;
}

const char*
kind_name(Kind k)
{
    switch (k) {
      case Kind::Counter: return "counter";
      case Kind::Gauge: return "gauge";
      default: return "histogram";
    }
}

Metric&
find_or_create(const std::string& name, Kind kind)
{
    MetricsRegistry& reg = registry();
    std::lock_guard<std::mutex> lk(reg.mu);
    auto it = reg.metrics.find(name);
    if (it == reg.metrics.end()) {
        Metric m;
        m.kind = kind;
        switch (kind) {
          case Kind::Counter:
            m.c = std::make_unique<Counter>();
            break;
          case Kind::Gauge:
            m.g = std::make_unique<Gauge>();
            break;
          case Kind::Histogram:
            m.h = std::make_unique<Histogram>();
            break;
        }
        it = reg.metrics.emplace(name, std::move(m)).first;
    } else if (it->second.kind != kind) {
        throw InternalError("metric '" + name + "' is a " +
                            kind_name(it->second.kind) +
                            ", requested as " + kind_name(kind));
    }
    return it->second;
}

void
append_double(std::ostringstream& out, double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out << buf;
}

}  // namespace

Counter&
counter(const std::string& name)
{
    return *find_or_create(name, Kind::Counter).c;
}

Gauge&
gauge(const std::string& name)
{
    return *find_or_create(name, Kind::Gauge).g;
}

Histogram&
histogram(const std::string& name)
{
    return *find_or_create(name, Kind::Histogram).h;
}

std::string
metrics_json()
{
    MetricsRegistry& reg = registry();
    std::lock_guard<std::mutex> lk(reg.mu);
    std::ostringstream out;
    out << "{\"counters\":{";
    bool first = true;
    for (const auto& [name, m] : reg.metrics) {
        if (m.kind != Kind::Counter)
            continue;
        if (!first)
            out << ",";
        first = false;
        out << "\"" << name << "\":" << m.c->value();
    }
    out << "},\"gauges\":{";
    first = true;
    for (const auto& [name, m] : reg.metrics) {
        if (m.kind != Kind::Gauge)
            continue;
        if (!first)
            out << ",";
        first = false;
        out << "\"" << name << "\":" << m.g->value();
    }
    out << "},\"histograms\":{";
    first = true;
    for (const auto& [name, m] : reg.metrics) {
        if (m.kind != Kind::Histogram)
            continue;
        if (!first)
            out << ",";
        first = false;
        HistogramSnapshot s = m.h->snapshot();
        out << "\"" << name << "\":{\"count\":" << s.count << ",\"sum\":";
        append_double(out, s.sum);
        out << ",\"p50\":";
        append_double(out, s.percentile(0.50));
        out << ",\"p95\":";
        append_double(out, s.percentile(0.95));
        out << ",\"p99\":";
        append_double(out, s.percentile(0.99));
        out << ",\"buckets\":[";
        bool bfirst = true;
        for (size_t i = 0; i < s.buckets.size(); i++) {
            if (s.buckets[i] == 0)
                continue;
            if (!bfirst)
                out << ",";
            bfirst = false;
            out << "[";
            append_double(out,
                          Histogram::bucket_lower(static_cast<int>(i)));
            out << "," << s.buckets[i] << "]";
        }
        out << "]}";
    }
    out << "}}";
    return out.str();
}

void
reset_metrics()
{
    MetricsRegistry& reg = registry();
    std::lock_guard<std::mutex> lk(reg.mu);
    for (auto& [name, m] : reg.metrics) {
        switch (m.kind) {
          case Kind::Counter: m.c->reset(); break;
          case Kind::Gauge: m.g->reset(); break;
          case Kind::Histogram: m.h->reset(); break;
        }
    }
}

}  // namespace obs
}  // namespace exo2
