#include "src/obs/metrics.h"

#include "src/cache/cache.h"
#include "src/cursor/accel.h"
#include "src/machine/cost_sim.h"
#include "src/verify/cjit.h"
#include "src/verify/sandbox.h"

namespace exo2 {
namespace obs {

/** One sweep copies every legacy stats struct into registry gauges so
 *  metrics_json() is the single pane of glass the daemon's op=metrics
 *  serves. Gauges (not counters) because the sources are themselves
 *  monotonic totals owned elsewhere — this mirrors, it does not own. */
void
publish_engine_stats()
{
    CursorAccelStats cs = cursor_accel_stats();
    gauge("cursor.fwd_hits").set(static_cast<int64_t>(cs.fwd_hits));
    gauge("cursor.fwd_misses").set(static_cast<int64_t>(cs.fwd_misses));
    gauge("cursor.index_hits").set(static_cast<int64_t>(cs.index_hits));
    gauge("cursor.index_misses")
        .set(static_cast<int64_t>(cs.index_misses));
    gauge("cursor.index_pruned")
        .set(static_cast<int64_t>(cs.index_pruned));

    CostSimCacheStats ss = cost_sim_cache_stats();
    gauge("costsim.cache_hits").set(static_cast<int64_t>(ss.hits));
    gauge("costsim.cache_misses").set(static_cast<int64_t>(ss.misses));

    cache::CacheStats ps = cache::cache_stats();
    gauge("cache.tune_hits").set(static_cast<int64_t>(ps.tune_hits));
    gauge("cache.tune_misses").set(static_cast<int64_t>(ps.tune_misses));
    gauge("cache.tune_stores").set(static_cast<int64_t>(ps.tune_stores));
    gauge("cache.tune_store_failures")
        .set(static_cast<int64_t>(ps.tune_store_failures));
    gauge("cache.tune_corrupt")
        .set(static_cast<int64_t>(ps.tune_corrupt));
    gauge("cache.tune_stale").set(static_cast<int64_t>(ps.tune_stale));
    gauge("cache.jit_hits").set(static_cast<int64_t>(ps.jit_hits));
    gauge("cache.jit_misses").set(static_cast<int64_t>(ps.jit_misses));
    gauge("cache.jit_stores").set(static_cast<int64_t>(ps.jit_stores));
    gauge("cache.jit_store_failures")
        .set(static_cast<int64_t>(ps.jit_store_failures));
    gauge("cache.jit_corrupt").set(static_cast<int64_t>(ps.jit_corrupt));
    gauge("cache.jit_stale").set(static_cast<int64_t>(ps.jit_stale));
    gauge("cache.tmp_swept").set(static_cast<int64_t>(ps.tmp_swept));

    gauge("cjit.isa_downgrades")
        .set(static_cast<int64_t>(verify::isa_downgrades().size()));
    gauge("faults.fired")
        .set(static_cast<int64_t>(
            verify::fault_injection_counts().total()));
}

}  // namespace obs
}  // namespace exo2
