#include "src/obs/obs.h"

#include "src/util/env.h"

namespace exo2 {
namespace obs {

ObsConfig
ObsConfig::from_env()
{
    ObsConfig c;
    c.trace_path = util::env_string("EXO2_TRACE", c.trace_path);
    c.trace_ring_capacity = static_cast<size_t>(util::env_int(
        "EXO2_TRACE_RING",
        static_cast<int64_t>(c.trace_ring_capacity), 16, 1 << 24));
    return c;
}

const ObsConfig&
obs_config()
{
    static const ObsConfig cfg = ObsConfig::from_env();
    return cfg;
}

}  // namespace obs
}  // namespace exo2
