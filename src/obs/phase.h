#ifndef EXO2_OBS_PHASE_H_
#define EXO2_OBS_PHASE_H_

/**
 * @file
 * Per-request phase attribution (DESIGN.md §10): the coarse time
 * buckets the daemon reports per response (`phase_*_ms` extras) and
 * the tools print as a breakdown.
 *
 * A collection is thread-local: the daemon worker (or a CLI driver)
 * brackets one request with phase_begin_collection() /
 * phase_end_collection() and the phase timers inside the engine —
 * search.cc owns the attribution points — accumulate into it.
 * phase_add() outside a collection is a no-op, so instrumented code
 * costs nothing when nobody is asking for a breakdown.
 *
 * Phases are disjoint by construction (timers are placed around
 * non-overlapping regions and never nested); whatever a collection
 * does not attribute shows up as the gap between total() and the
 * caller's wall clock.
 */

#include <chrono>
#include <cstdint>

namespace exo2 {
namespace obs {

enum class Phase
{
    Queue = 0,  ///< admission -> dequeue (daemon only)
    Lint,       ///< static lint gate / admission lint
    Cache,      ///< persistent-cache probe, replay, store
    Search,     ///< beam rounds, restarts, cost simulation
    Cjit,       ///< JIT build + sandboxed measurement
    Validate,   ///< tri-oracle checks
    Other,      ///< attributed but uncategorized
};

constexpr int kNumPhases = 7;

/** Lowercase stable name ("queue", "lint", ...). */
const char* phase_name(Phase p);

struct PhaseBreakdown
{
    double seconds[kNumPhases] = {};

    double of(Phase p) const { return seconds[static_cast<int>(p)]; }
    double total() const
    {
        double t = 0;
        for (double s : seconds)
            t += s;
        return t;
    }
};

/** Start accumulating on this thread (zeroes any previous state). */
void phase_begin_collection();

/** Whether this thread is inside a collection. */
bool phase_collecting();

/** Charge `seconds` to `p` (no-op outside a collection). */
void phase_add(Phase p, double seconds);

/** Stop and return what was accumulated. */
PhaseBreakdown phase_end_collection();

/** RAII region timer: charges its lifetime to one phase. Do not nest
 *  PhaseTimers — phases are disjoint regions, not a stack. */
class PhaseTimer
{
  public:
    explicit PhaseTimer(Phase p)
        : p_(p), active_(phase_collecting()),
          t0_(std::chrono::steady_clock::now())
    {
    }
    ~PhaseTimer()
    {
        if (active_)
            phase_add(p_, std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0_)
                              .count());
    }
    PhaseTimer(const PhaseTimer&) = delete;
    PhaseTimer& operator=(const PhaseTimer&) = delete;

  private:
    Phase p_;
    bool active_;
    std::chrono::steady_clock::time_point t0_;
};

}  // namespace obs
}  // namespace exo2

#endif  // EXO2_OBS_PHASE_H_
