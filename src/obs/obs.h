#ifndef EXO2_OBS_OBS_H_
#define EXO2_OBS_OBS_H_

/**
 * @file
 * Observability configuration (DESIGN.md §10).
 *
 * All EXO2_TRACE* knobs are parsed exactly once, at first use, into
 * an immutable ObsConfig — consistent with the crash-only service
 * posture (daemon.h): configuration is read at startup, a bad value
 * fails loudly there, and nothing re-parses the environment on a hot
 * path. Reconfiguring means restarting the process.
 *
 * Knobs:
 *   EXO2_TRACE       trace sink path; set = tracing starts enabled
 *                    and the trace is flushed there at process exit
 *   EXO2_TRACE_RING  per-thread span ring capacity (default 65536;
 *                    oldest spans are overwritten when it fills)
 */

#include <cstddef>
#include <string>

namespace exo2 {
namespace obs {

struct ObsConfig
{
    /** EXO2_TRACE: where the trace JSON is written at exit ("" = no
     *  automatic tracing; trace_start() still works). */
    std::string trace_path;
    /** EXO2_TRACE_RING: spans retained per thread before the ring
     *  wraps (dropped spans are counted, never silently lost). */
    size_t trace_ring_capacity = 65536;

    /** Parse the environment. Throws ConfigError (util/env.h) on a
     *  malformed value — misconfigured tracing must not half-work. */
    static ObsConfig from_env();
};

/** The process-wide config, parsed once on first call. */
const ObsConfig& obs_config();

}  // namespace obs
}  // namespace exo2

#endif  // EXO2_OBS_OBS_H_
