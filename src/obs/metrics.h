#ifndef EXO2_OBS_METRICS_H_
#define EXO2_OBS_METRICS_H_

/**
 * @file
 * Process-wide metrics registry (DESIGN.md §10): named counters,
 * gauges, and log-scale histograms behind one queryable snapshot.
 *
 * This is the unification point for the engine's scattered stats
 * structs — cursor-accel hits, cost-sim cache hits, persistent-cache
 * counters, daemon latencies all surface here (publish_engine_stats
 * mirrors the legacy structs in), and `op=metrics` on the daemon
 * serializes the whole registry as JSON.
 *
 * Concurrency: registration (name -> metric lookup) takes a mutex;
 * updates are lock-free atomics. Hot call sites look the metric up
 * once and cache the reference:
 *
 *     static obs::Counter& c = obs::counter("cjit.compiles");
 *     c.inc();
 *
 * References stay valid forever: the registry never erases a metric
 * (reset_metrics() zeroes values in place).
 *
 * Histogram buckets are fixed log-scale: 4 sub-buckets per octave
 * over 2^-12 .. 2^12 (96 buckets — sub-millisecond to ~68 minutes
 * when observing milliseconds), so percentile error is bounded at
 * ~19% of the value and two histograms are always mergeable.
 */

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace exo2 {
namespace obs {

/** Monotonic event count. */
class Counter
{
  public:
    void inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
    uint64_t value() const { return v_.load(std::memory_order_relaxed); }
    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> v_{0};
};

/** Point-in-time signed level (queue depth, cache size, ...). */
class Gauge
{
  public:
    void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
    void add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
    int64_t value() const { return v_.load(std::memory_order_relaxed); }
    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> v_{0};
};

class Histogram;

/** A coherent-enough copy of one histogram (relaxed reads: counts may
 *  straddle a concurrent observe by one sample, which percentile math
 *  tolerates). */
struct HistogramSnapshot
{
    uint64_t count = 0;
    double sum = 0;
    std::array<uint64_t, 96> buckets{};

    /** p in [0,1]; the geometric midpoint of the bucket holding the
     *  p-quantile sample, 0 when empty. */
    double percentile(double p) const;
};

/** Fixed-bucket log2 histogram; observe() is lock-free. */
class Histogram
{
  public:
    static constexpr int kSub = 4;       ///< sub-buckets per octave
    static constexpr int kMinExp = -12;  ///< lowest edge 2^-12
    static constexpr int kMaxExp = 12;   ///< highest edge 2^12
    static constexpr int kBuckets = (kMaxExp - kMinExp) * kSub;

    /** Bucket index of `v`; v <= lowest edge clamps to 0, v beyond the
     *  top edge clamps to kBuckets-1. */
    static int bucket_for(double v);
    /** Lower edge of bucket `i` (2^(kMinExp + i/kSub)). */
    static double bucket_lower(int i);

    void observe(double v);
    uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    double sum() const;
    HistogramSnapshot snapshot() const;
    double percentile(double p) const { return snapshot().percentile(p); }
    void reset();

  private:
    std::atomic<uint64_t> buckets_[kBuckets] = {};
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_bits_{0};  ///< double, CAS-accumulated
};

static_assert(Histogram::kBuckets ==
                  static_cast<int>(std::tuple_size<
                      decltype(HistogramSnapshot::buckets)>::value),
              "snapshot array tracks the bucket count");

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/** Find-or-create by name. Names follow `subsystem.noun` ("serve.
 *  latency_ms"). A name is permanently one kind; asking for it as
 *  another kind throws InternalError. */
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name);

/** The whole registry as one JSON object:
 *  {"counters":{...},"gauges":{...},"histograms":{name:
 *   {"count":..,"sum":..,"p50":..,"p95":..,"p99":..,
 *    "buckets":[[lower_edge,count],...]}}} */
std::string metrics_json();

/** Zero every metric in place (references stay valid). Test hook. */
void reset_metrics();

/** Mirror the engine's legacy stats structs (cursor-accel, cost-sim
 *  cache, persistent caches, fault injection) into registry gauges so
 *  one metrics_json() covers the whole engine. Cheap; call before
 *  serving a snapshot. */
void publish_engine_stats();

/** Bump a named counter; the lookup is done once per call site. */
#define EXO2_COUNT(name)                                                  \
    do {                                                                  \
        static ::exo2::obs::Counter& exo2_obs_counter_ =                  \
            ::exo2::obs::counter(name);                                   \
        exo2_obs_counter_.inc();                                          \
    } while (0)

}  // namespace obs
}  // namespace exo2

#endif  // EXO2_OBS_METRICS_H_
