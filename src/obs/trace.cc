#include "src/obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <sstream>

#include "src/obs/obs.h"
#include "src/util/file_atomic.h"

namespace exo2 {
namespace obs {

namespace trace_internal {
std::atomic<bool> g_on{false};
}

namespace {

uint64_t
now_ns()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

struct SpanRecord
{
    const char* name;
    uint64_t t0_ns;
    uint64_t dur_ns;
    std::vector<TraceArg> args;
};

/** One thread's span storage. Only its owner pushes; the control
 *  plane (flush/clear/count) takes `mu` too, so there is never an
 *  unsynchronized access — but in steady state the mutex is
 *  uncontended and stays in the owner's cache line. */
struct Ring
{
    std::mutex mu;
    uint32_t tid = 0;
    size_t cap = 0;
    std::vector<SpanRecord> buf;  ///< grows to cap, then wraps
    size_t next = 0;              ///< overwrite cursor once full
    uint64_t total = 0;           ///< spans ever pushed

    void push(SpanRecord r)
    {
        std::lock_guard<std::mutex> lk(mu);
        total++;
        if (buf.size() < cap) {
            buf.push_back(std::move(r));
        } else if (cap > 0) {
            buf[next] = std::move(r);
            next = (next + 1) % cap;
        }
    }
};

/** All rings ever created, kept alive past thread exit so late
 *  flushes still see every thread's spans. */
struct Registry
{
    std::mutex mu;
    std::vector<std::shared_ptr<Ring>> rings;
    uint32_t next_tid = 1;
    size_t ring_cap;
    std::string sink_path;  ///< flushed at exit when non-empty
    uint64_t base_ns;       ///< trace epoch: first registry touch

    Registry() : ring_cap(obs_config().trace_ring_capacity),
                 base_ns(now_ns()) {}
};

Registry&
registry()
{
    static Registry* r = new Registry();  // leaked: usable at exit
    return *r;
}

thread_local std::shared_ptr<Ring> t_ring;

Ring&
my_ring()
{
    if (!t_ring) {
        auto ring = std::make_shared<Ring>();
        Registry& reg = registry();
        std::lock_guard<std::mutex> lk(reg.mu);
        ring->tid = reg.next_tid++;
        ring->cap = reg.ring_cap;
        ring->buf.reserve(ring->cap);
        reg.rings.push_back(ring);
        t_ring = std::move(ring);
    }
    return *t_ring;
}

void
json_escape_into(std::ostringstream& out, const std::string& s)
{
    for (char c : s) {
        switch (c) {
          case '"': out << "\\\""; break;
          case '\\': out << "\\\\"; break;
          case '\n': out << "\\n"; break;
          case '\r': out << "\\r"; break;
          case '\t': out << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out << buf;
            } else {
                out << c;
            }
        }
    }
}

void
flush_sink_at_exit()
{
    std::string path;
    {
        Registry& reg = registry();
        std::lock_guard<std::mutex> lk(reg.mu);
        path = reg.sink_path;
    }
    if (!path.empty())
        (void)trace_flush(path);
}

/** EXO2_TRACE=out.json turns tracing on for the whole process life
 *  and flushes at exit. Runs at static-init time; instrumented TUs
 *  reference trace_enabled(), keeping this TU linked in. */
struct EnvAutoStart
{
    EnvAutoStart()
    {
        const ObsConfig& cfg = obs_config();
        if (!cfg.trace_path.empty())
            trace_start(cfg.trace_path, cfg.trace_ring_capacity);
    }
} g_env_autostart;

}  // namespace

void
Span::begin(const char* name)
{
    active_ = true;
    name_ = name;
    t0_ns_ = now_ns();
}

void
Span::begin(const char* name, std::initializer_list<TraceArg> args)
{
    args_.assign(args.begin(), args.end());
    begin(name);
}

void
Span::finish()
{
    active_ = false;
    if (!trace_enabled())
        return;  // tracing stopped mid-span: drop it
    uint64_t t1 = now_ns();
    SpanRecord r;
    r.name = name_;
    r.t0_ns = t0_ns_;
    r.dur_ns = t1 >= t0_ns_ ? t1 - t0_ns_ : 0;
    r.args = std::move(args_);
    my_ring().push(std::move(r));
}

void
trace_start(const std::string& path, size_t ring_capacity)
{
    static std::once_flag at_exit_once;
    Registry& reg = registry();
    {
        std::lock_guard<std::mutex> lk(reg.mu);
        if (!path.empty())
            reg.sink_path = path;
        if (ring_capacity > 0)
            reg.ring_cap = ring_capacity;
    }
    if (!path.empty())
        std::call_once(at_exit_once,
                       [] { std::atexit(flush_sink_at_exit); });
    trace_internal::g_on.store(true, std::memory_order_relaxed);
}

void
trace_stop()
{
    trace_internal::g_on.store(false, std::memory_order_relaxed);
}

void
trace_clear()
{
    Registry& reg = registry();
    std::lock_guard<std::mutex> lk(reg.mu);
    for (auto& ring : reg.rings) {
        std::lock_guard<std::mutex> rlk(ring->mu);
        ring->buf.clear();
        ring->next = 0;
        ring->total = 0;
    }
}

uint64_t
trace_span_count()
{
    Registry& reg = registry();
    std::lock_guard<std::mutex> lk(reg.mu);
    uint64_t n = 0;
    for (auto& ring : reg.rings) {
        std::lock_guard<std::mutex> rlk(ring->mu);
        n += ring->buf.size();
    }
    return n;
}

uint64_t
trace_dropped()
{
    Registry& reg = registry();
    std::lock_guard<std::mutex> lk(reg.mu);
    uint64_t n = 0;
    for (auto& ring : reg.rings) {
        std::lock_guard<std::mutex> rlk(ring->mu);
        n += ring->total - ring->buf.size();
    }
    return n;
}

std::string
trace_json()
{
    // Snapshot under the locks, render outside them.
    struct Row
    {
        const char* name;
        uint64_t t0_ns, dur_ns;
        uint32_t tid;
        std::vector<TraceArg> args;
    };
    std::vector<Row> rows;
    uint64_t base;
    {
        Registry& reg = registry();
        std::lock_guard<std::mutex> lk(reg.mu);
        base = reg.base_ns;
        for (auto& ring : reg.rings) {
            std::lock_guard<std::mutex> rlk(ring->mu);
            for (const SpanRecord& r : ring->buf)
                rows.push_back(
                    {r.name, r.t0_ns, r.dur_ns, ring->tid, r.args});
        }
    }
    std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
        if (a.t0_ns != b.t0_ns)
            return a.t0_ns < b.t0_ns;
        return a.dur_ns > b.dur_ns;  // parents before children
    });

    std::ostringstream out;
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    char num[64];
    for (const Row& r : rows) {
        if (!first)
            out << ",";
        first = false;
        out << "{\"name\":\"";
        json_escape_into(out, r.name);
        out << "\",\"cat\":\"exo2\",\"ph\":\"X\",\"pid\":1,\"tid\":"
            << r.tid;
        double ts_us =
            static_cast<double>(r.t0_ns >= base ? r.t0_ns - base : 0) /
            1000.0;
        double dur_us = static_cast<double>(r.dur_ns) / 1000.0;
        std::snprintf(num, sizeof(num), "%.3f", ts_us);
        out << ",\"ts\":" << num;
        std::snprintf(num, sizeof(num), "%.3f", dur_us);
        out << ",\"dur\":" << num;
        if (!r.args.empty()) {
            out << ",\"args\":{";
            bool afirst = true;
            for (const TraceArg& a : r.args) {
                if (!afirst)
                    out << ",";
                afirst = false;
                out << "\"";
                json_escape_into(out, a.key);
                out << "\":";
                if (a.quoted) {
                    out << "\"";
                    json_escape_into(out, a.value);
                    out << "\"";
                } else {
                    out << a.value;
                }
            }
            out << "}";
        }
        out << "}";
    }
    out << "]}";
    return out.str();
}

bool
trace_flush(const std::string& path)
{
    return util::write_file_atomic(path, trace_json());
}

}  // namespace obs
}  // namespace exo2
