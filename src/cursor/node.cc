#include "src/cursor/node.h"

#include "src/ir/errors.h"

namespace exo2 {

namespace {

[[noreturn]] void
bad_path(const std::string& why)
{
    throw InvalidCursorError("path resolution failed: " + why);
}

/** Fetch the child of a statement named by one step. */
NodeRef
stmt_child(const StmtPtr& s, const PathStep& step)
{
    switch (step.label) {
      case PathLabel::Body:
        if (step.index < 0 ||
            step.index >= static_cast<int>(s->body().size())) {
            bad_path("body index out of range");
        }
        return s->body()[static_cast<size_t>(step.index)];
      case PathLabel::Orelse:
        if (step.index < 0 ||
            step.index >= static_cast<int>(s->orelse().size())) {
            bad_path("orelse index out of range");
        }
        return s->orelse()[static_cast<size_t>(step.index)];
      case PathLabel::Cond:
        if (!s->cond())
            bad_path("no cond");
        return s->cond();
      case PathLabel::Lo:
        if (!s->lo())
            bad_path("no lo");
        return s->lo();
      case PathLabel::Hi:
        if (!s->hi())
            bad_path("no hi");
        return s->hi();
      case PathLabel::Rhs:
        if (!s->rhs())
            bad_path("no rhs");
        return s->rhs();
      case PathLabel::Idx:
        if (step.index < 0 ||
            step.index >= static_cast<int>(s->idx().size())) {
            bad_path("idx index out of range");
        }
        return s->idx()[static_cast<size_t>(step.index)];
      case PathLabel::Dim:
        if (step.index < 0 ||
            step.index >= static_cast<int>(s->dims().size())) {
            bad_path("dim index out of range");
        }
        return s->dims()[static_cast<size_t>(step.index)];
      case PathLabel::Arg:
        if (step.index < 0 ||
            step.index >= static_cast<int>(s->args().size())) {
            bad_path("arg index out of range");
        }
        return s->args()[static_cast<size_t>(step.index)];
      default:
        bad_path("label not valid for statements");
    }
}

/** Fetch the child of an expression named by one step. */
ExprPtr
expr_child(const ExprPtr& e, const PathStep& step)
{
    switch (step.label) {
      case PathLabel::OpLhs:
        if (!e->lhs())
            bad_path("no lhs operand");
        return e->lhs();
      case PathLabel::OpRhs:
        if (!e->rhs())
            bad_path("no rhs operand");
        return e->rhs();
      case PathLabel::Idx:
        if (step.index < 0 ||
            step.index >= static_cast<int>(e->idx().size())) {
            bad_path("expr idx out of range");
        }
        return e->idx()[static_cast<size_t>(step.index)];
      default:
        bad_path("label not valid for expressions");
    }
}

/** Rebuild a statement with the child at `step` replaced by `node`.
 *  Returns `s` itself when the replacement is pointer-identical to the
 *  existing child: no-op edits then preserve the whole spine (and with
 *  it every cached analysis keyed on those subtrees). */
StmtPtr
stmt_with_child(const StmtPtr& s, const PathStep& step, NodeRef node)
{
    NodeRef cur = stmt_child(s, step);
    if (cur == node)
        return s;
    auto as_stmt = [&]() -> StmtPtr {
        if (!std::holds_alternative<StmtPtr>(node))
            bad_path("expected statement node");
        return std::get<StmtPtr>(node);
    };
    auto as_expr = [&]() -> ExprPtr {
        if (!std::holds_alternative<ExprPtr>(node))
            bad_path("expected expression node");
        return std::get<ExprPtr>(node);
    };
    switch (step.label) {
      case PathLabel::Body: {
        auto body = s->body();
        body.at(static_cast<size_t>(step.index)) = as_stmt();
        return s->with_body(std::move(body));
      }
      case PathLabel::Orelse: {
        auto orelse = s->orelse();
        orelse.at(static_cast<size_t>(step.index)) = as_stmt();
        return s->with_orelse(std::move(orelse));
      }
      case PathLabel::Cond:
        return s->with_cond(as_expr());
      case PathLabel::Lo:
        return s->with_bounds(as_expr(), s->hi());
      case PathLabel::Hi:
        return s->with_bounds(s->lo(), as_expr());
      case PathLabel::Rhs:
        return s->with_rhs(as_expr());
      case PathLabel::Idx: {
        auto idx = s->idx();
        idx.at(static_cast<size_t>(step.index)) = as_expr();
        return s->with_idx(std::move(idx));
      }
      case PathLabel::Dim: {
        auto dims = s->dims();
        dims.at(static_cast<size_t>(step.index)) = as_expr();
        return s->with_dims(std::move(dims));
      }
      case PathLabel::Arg: {
        auto args = s->args();
        args.at(static_cast<size_t>(step.index)) = as_expr();
        return s->with_args(std::move(args));
      }
      default:
        bad_path("label not valid for statements");
    }
}

/** Rebuild an expression with the child at `step` replaced. */
ExprPtr
expr_with_child(const ExprPtr& e, const PathStep& step, const ExprPtr& child)
{
    if (expr_child(e, step) == child)
        return e;  // no-op: keep the interned node
    auto kids = e->children();
    // Map step to position in children() order.
    switch (e->kind()) {
      case ExprKind::BinOp:
        if (step.label == PathLabel::OpLhs)
            kids.at(0) = child;
        else if (step.label == PathLabel::OpRhs)
            kids.at(1) = child;
        else
            bad_path("binop child label");
        break;
      case ExprKind::USub:
        if (step.label != PathLabel::OpLhs)
            bad_path("usub child label");
        kids.at(0) = child;
        break;
      case ExprKind::Read:
      case ExprKind::Extern:
        if (step.label != PathLabel::Idx)
            bad_path("read child label");
        kids.at(static_cast<size_t>(step.index)) = child;
        break;
      default:
        bad_path("expression has no children");
    }
    return e->with_children(std::move(kids));
}

NodeRef
node_descend(NodeRef node, const PathStep& step)
{
    if (std::holds_alternative<StmtPtr>(node))
        return stmt_child(std::get<StmtPtr>(node), step);
    return expr_child(std::get<ExprPtr>(node), step);
}

/**
 * Recursive rebuild along a path: returns the replacement for `node`
 * after substituting at path[depth...].
 */
NodeRef
rebuild_rec(NodeRef node, const Path& path, size_t depth, NodeRef repl)
{
    if (depth == path.size())
        return repl;
    const PathStep& step = path[depth];
    NodeRef child = node_descend(node, step);
    NodeRef new_child = rebuild_rec(child, path, depth + 1, repl);
    if (std::holds_alternative<StmtPtr>(node)) {
        return stmt_with_child(std::get<StmtPtr>(node), step, new_child);
    }
    if (!std::holds_alternative<ExprPtr>(new_child))
        bad_path("expression child must be expression");
    return NodeRef(expr_with_child(std::get<ExprPtr>(node), step,
                                   std::get<ExprPtr>(new_child)));
}

}  // namespace

ListAddr
list_addr_of(const Path& stmt_path, int* index_out)
{
    if (stmt_path.empty())
        throw InvalidCursorError("empty path has no containing list");
    const PathStep& last = stmt_path.back();
    if (!is_stmt_list_label(last.label))
        throw InvalidCursorError("path does not end in a statement list");
    ListAddr addr;
    addr.parent = Path(stmt_path.begin(), stmt_path.end() - 1);
    addr.label = last.label;
    if (index_out)
        *index_out = last.index;
    return addr;
}

NodeRef
node_at(const ProcPtr& p, const Path& path)
{
    if (path.empty())
        throw InvalidCursorError("empty path does not denote a node");
    const PathStep& first = path.front();
    if (first.label != PathLabel::Body)
        throw InvalidCursorError("proc-level path must start at body");
    if (first.index < 0 ||
        first.index >= static_cast<int>(p->body_stmts().size())) {
        throw InvalidCursorError("top-level body index out of range");
    }
    NodeRef node = p->body_stmts()[static_cast<size_t>(first.index)];
    for (size_t d = 1; d < path.size(); d++)
        node = node_descend(node, path[d]);
    return node;
}

StmtPtr
stmt_at(const ProcPtr& p, const Path& path)
{
    NodeRef n = node_at(p, path);
    if (!std::holds_alternative<StmtPtr>(n))
        throw InvalidCursorError("path denotes an expression, not a stmt");
    return std::get<StmtPtr>(n);
}

ExprPtr
expr_at(const ProcPtr& p, const Path& path)
{
    NodeRef n = node_at(p, path);
    if (!std::holds_alternative<ExprPtr>(n))
        throw InvalidCursorError("path denotes a statement, not an expr");
    return std::get<ExprPtr>(n);
}

const std::vector<StmtPtr>&
stmt_list_at(const ProcPtr& p, const ListAddr& addr)
{
    if (addr.parent.empty()) {
        if (addr.label != PathLabel::Body)
            throw InvalidCursorError("proc has only a body list");
        return p->body_stmts();
    }
    StmtPtr s = stmt_at(p, addr.parent);
    if (addr.label == PathLabel::Body)
        return s->body();
    if (addr.label == PathLabel::Orelse)
        return s->orelse();
    throw InvalidCursorError("not a statement list label");
}

std::vector<StmtPtr>
rebuild_list(const ProcPtr& p, const ListAddr& addr,
             std::vector<StmtPtr> new_list)
{
    if (addr.parent.empty()) {
        if (addr.label != PathLabel::Body)
            throw InvalidCursorError("proc has only a body list");
        return new_list;
    }
    StmtPtr s = stmt_at(p, addr.parent);
    StmtPtr new_s;
    if (addr.label == PathLabel::Body)
        new_s = s->with_body(std::move(new_list));
    else if (addr.label == PathLabel::Orelse)
        new_s = s->with_orelse(std::move(new_list));
    else
        throw InvalidCursorError("not a statement list label");
    return rebuild_node(p, addr.parent, NodeRef(new_s));
}

std::vector<StmtPtr>
rebuild_node(const ProcPtr& p, const Path& path, NodeRef node)
{
    if (path.empty())
        throw InvalidCursorError("cannot rebuild at empty path");
    const PathStep& first = path.front();
    if (first.label != PathLabel::Body || first.index < 0 ||
        first.index >= static_cast<int>(p->body_stmts().size())) {
        throw InvalidCursorError("top-level body index out of range");
    }
    NodeRef root = p->body_stmts()[static_cast<size_t>(first.index)];
    NodeRef new_root =
        rebuild_rec(root, Path(path.begin() + 1, path.end()), 0, node);
    auto body = p->body_stmts();
    if (!std::holds_alternative<StmtPtr>(new_root))
        throw InvalidCursorError("top-level node must be a statement");
    body[static_cast<size_t>(first.index)] = std::get<StmtPtr>(new_root);
    return body;
}

}  // namespace exo2
