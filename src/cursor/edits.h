#ifndef EXO2_CURSOR_EDITS_H_
#define EXO2_CURSOR_EDITS_H_

/**
 * @file
 * Atomic AST edits with canonical forwarding functions (Section 5.2):
 * insertion, deletion, replacement, movement, and wrapping. Every
 * scheduling primitive decomposes into these; the primitive's
 * forwarding function is the composition of its edits' forwarding
 * functions.
 */

#include <functional>
#include <string>
#include <vector>

#include "src/cursor/node.h"

namespace exo2 {

/** Identity forwarding (e.g. annotations that do not move code). */
ForwardFn fwd_identity();

/** Sequential composition: apply `a`, then `b`. */
ForwardFn fwd_compose(ForwardFn a, ForwardFn b);

/**
 * Forwarding for an in-place rewrite of the subtree at `prefix` that
 * does not preserve its internal structure: the node itself stays
 * valid, anything strictly below is invalidated.
 */
ForwardFn fwd_invalidate_below(Path prefix);

/** Forwarding for insertion of `count` stmts at gap `gap` of list `L`. */
ForwardFn fwd_insert(ListAddr addr, int gap, int count);

/** Forwarding for deletion of stmts [lo, hi) of list `L`. */
ForwardFn fwd_erase(ListAddr addr, int lo, int hi);

/** Forwarding for replacement of [lo, hi) by `count` new stmts. */
ForwardFn fwd_replace_range(ListAddr addr, int lo, int hi, int count);

/**
 * Forwarding for wrapping [lo, hi) into a new one-hole statement whose
 * hole is its Body list (e.g. a new For or If).
 */
ForwardFn fwd_wrap(ListAddr addr, int lo, int hi);

/**
 * Forwarding for unwrapping: the statement at `pos` is replaced by its
 * `count` former Body statements (e.g. remove_loop / dissolve an if).
 */
ForwardFn fwd_unwrap(ListAddr addr, int pos, int count);

/**
 * Forwarding for moving [lo, hi) of `src` to gap `dst_gap` of `dst`,
 * where `dst` and `dst_gap` are expressed in *post-deletion*
 * coordinates (i.e. as if [lo, hi) had already been removed).
 */
ForwardFn fwd_move(ListAddr src, int lo, int hi, ListAddr dst, int dst_gap);

// -- Whole-proc edit helpers (rebuild + provenance in one step) ---------

/** Insert statements at a gap. */
ProcPtr apply_insert(const ProcPtr& p, const ListAddr& addr, int gap,
                     std::vector<StmtPtr> stmts, const std::string& action);

/** Delete statements [lo, hi). */
ProcPtr apply_erase(const ProcPtr& p, const ListAddr& addr, int lo, int hi,
                    const std::string& action);

/** Replace statements [lo, hi) with `repl`. */
ProcPtr apply_replace_range(const ProcPtr& p, const ListAddr& addr, int lo,
                            int hi, std::vector<StmtPtr> repl,
                            const std::string& action);

/**
 * Replace the single statement at `path` with `repl`, *invalidating*
 * cursors below it (used when the new statement has unrelated shape).
 */
ProcPtr apply_replace_stmt(const ProcPtr& p, const Path& path, StmtPtr repl,
                           const std::string& action);

/**
 * Replace the statement at `path` with a same-shape variant (bounds,
 * name, memory, annotations changed; children lists untouched), with
 * identity forwarding.
 */
ProcPtr apply_replace_stmt_same_shape(const ProcPtr& p, const Path& path,
                                      StmtPtr repl,
                                      const std::string& action);

/** Replace the expression at `path` (exact path stays valid). */
ProcPtr apply_replace_expr(const ProcPtr& p, const Path& path, ExprPtr repl,
                           const std::string& action);

/**
 * Wrap [lo, hi) of a list into `wrapper(block)` (a For/If whose Body is
 * the block).
 */
ProcPtr apply_wrap(const ProcPtr& p, const ListAddr& addr, int lo, int hi,
                   const std::function<StmtPtr(std::vector<StmtPtr>)>& wrap,
                   const std::string& action);

/** Unwrap the For/If at `path`, splicing `contents` in its place. */
ProcPtr apply_unwrap(const ProcPtr& p, const Path& path,
                     std::vector<StmtPtr> contents,
                     const std::string& action);

/** Move [lo, hi) of `src` to `dst_gap` of `dst` (post-deletion coords). */
ProcPtr apply_move(const ProcPtr& p, const ListAddr& src, int lo, int hi,
                   const ListAddr& dst, int dst_gap,
                   const std::string& action);

/**
 * A batch of edits committed as ONE derived proc version.
 *
 * Primitives that decompose into several atomic edits (insert + expr
 * rewrite, wrap + wrap, ...) used to emit one provenance hop per edit;
 * a schedule of n such primitives then costs every later forward k·n
 * hops. An EditBatch stages the edits against a scratch body — each
 * edit is expressed in the coordinates AFTER the previous ones, exactly
 * as with chained apply_* calls — and `commit` derives a single new
 * version whose forwarding entry is the composition of the staged
 * edits' forwarding functions: one provenance hop, one spine in the
 * chain, regardless of how many edits the primitive needed.
 */
class EditBatch
{
  public:
    explicit EditBatch(ProcPtr p);

    /** The staged state: resolve paths/lists for the NEXT edit here. */
    const ProcPtr& staged() const { return work_; }

    /** Forward a location of the base proc through the staged edits. */
    std::optional<CursorLoc> forward(const CursorLoc& loc) const;

    void insert(const ListAddr& addr, int gap, std::vector<StmtPtr> stmts);
    void erase(const ListAddr& addr, int lo, int hi);
    void replace_range(const ListAddr& addr, int lo, int hi,
                       std::vector<StmtPtr> repl);
    /** Same-shape stmt replacement (identity forwarding). */
    void replace_stmt_same_shape(const Path& path, StmtPtr repl);
    /** Expression replacement (invalidates below `path`). */
    void replace_expr(const Path& path, ExprPtr repl);
    void wrap(const ListAddr& addr, int lo, int hi,
              const std::function<StmtPtr(std::vector<StmtPtr>)>& wrap_fn);

    /** Derive the new version; no-op batches return the base proc. */
    ProcPtr commit(const std::string& action);

  private:
    /** Adopt a rebuilt body + its forwarding fn as the staged state. */
    void stage(std::vector<StmtPtr> body, ForwardFn fwd);

    ProcPtr base_;
    ProcPtr work_;
    std::vector<ForwardFn> fwds_;
};

}  // namespace exo2

#endif  // EXO2_CURSOR_EDITS_H_
