#ifndef EXO2_CURSOR_PATTERN_H_
#define EXO2_CURSOR_PATTERN_H_

/**
 * @file
 * Structural pattern matching for `Proc::find` (Section 2).
 *
 * Patterns are written in the object language with `_` wildcards, e.g.
 * `"for i in _: _"`, `"y[_] += _"`, `"res = 0.0"`, `"a: _"` (alloc),
 * `"do_ld(_)"` (call). A trailing `" #k"` selects the k-th match
 * (0-based) as in Exo.
 */

#include <string>
#include <vector>

#include "src/cursor/cursor.h"

namespace exo2 {

/**
 * All statements under `prefix` (pre-order) matching `pattern`.
 * An empty prefix searches the whole procedure.
 */
std::vector<Cursor> pattern_find_all(const ProcPtr& p, const Path& prefix,
                                     const std::string& pattern);

/**
 * The first (or `#k`-th) match; throws SchedulingError if absent.
 */
Cursor pattern_find_one(const ProcPtr& p, const Path& prefix,
                        const std::string& pattern);

/** First (or `"name #k"`-th) For loop with the given iterator name. */
Cursor pattern_find_loop(const ProcPtr& p, const Path& prefix,
                         const std::string& name);

/** The Alloc statement introducing `name`. */
Cursor pattern_find_alloc(const ProcPtr& p, const Path& prefix,
                          const std::string& name);

/** Direct structural test used by the finders (exposed for tests). */
bool pattern_match_stmt(const StmtPtr& pat, const StmtPtr& s);

}  // namespace exo2

#endif  // EXO2_CURSOR_PATTERN_H_
