#ifndef EXO2_CURSOR_NODE_H_
#define EXO2_CURSOR_NODE_H_

/**
 * @file
 * Path-based access to AST nodes, and path-directed rebuilding.
 *
 * These are the low-level mechanics behind Cursors: resolving a path to
 * the node it denotes, and producing a new AST in which the node or list
 * at a path has been replaced (sharing all untouched subtrees).
 */

#include <variant>
#include <vector>

#include "src/ir/proc.h"

namespace exo2 {

/** A reference to either a statement or an expression node. */
using NodeRef = std::variant<StmtPtr, ExprPtr>;

/** Address of a statement list: path to the parent stmt + Body/Orelse.
 *  An empty parent path addresses the proc's top-level body. */
struct ListAddr
{
    Path parent;
    PathLabel label = PathLabel::Body;
};

/** Split a statement path into (list address, index within the list). */
ListAddr list_addr_of(const Path& stmt_path, int* index_out);

/** Resolve a path to a node. Throws InvalidCursorError if out of range. */
NodeRef node_at(const ProcPtr& p, const Path& path);

/** Resolve to a statement; throws InvalidCursorError on expressions. */
StmtPtr stmt_at(const ProcPtr& p, const Path& path);

/** Resolve to an expression; throws InvalidCursorError on statements. */
ExprPtr expr_at(const ProcPtr& p, const Path& path);

/** The statement list at a list address. */
const std::vector<StmtPtr>& stmt_list_at(const ProcPtr& p,
                                         const ListAddr& addr);

/**
 * Rebuild the proc body, replacing the list at `addr` with `new_list`.
 */
std::vector<StmtPtr> rebuild_list(const ProcPtr& p, const ListAddr& addr,
                                  std::vector<StmtPtr> new_list);

/**
 * Rebuild the proc body, replacing the node at `path` with `node`.
 * Statement nodes may only replace statement paths, and likewise for
 * expressions.
 */
std::vector<StmtPtr> rebuild_node(const ProcPtr& p, const Path& path,
                                  NodeRef node);

/** Whether a path step addresses a statement-list child. */
inline bool
is_stmt_list_label(PathLabel l)
{
    return l == PathLabel::Body || l == PathLabel::Orelse;
}

}  // namespace exo2

#endif  // EXO2_CURSOR_NODE_H_
