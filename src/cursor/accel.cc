#include "src/cursor/accel.h"

#include <vector>

namespace exo2 {

namespace {

bool g_fwd_enabled = true;
bool g_index_enabled = true;
uint64_t g_epoch = 1;

std::vector<void (*)()>&
clearers()
{
    static auto* v = new std::vector<void (*)()>();
    return *v;
}

}  // namespace

namespace accel_internal {

CursorAccelStats g_stats;

void
register_clearer(void (*fn)())
{
    clearers().push_back(fn);
}

}  // namespace accel_internal

bool
forwarding_compression_enabled()
{
    return g_fwd_enabled;
}

void
set_forwarding_compression_enabled(bool on)
{
    if (g_fwd_enabled != on)
        clear_cursor_accel_caches();
    g_fwd_enabled = on;
}

bool
pattern_index_enabled()
{
    return g_index_enabled;
}

void
set_pattern_index_enabled(bool on)
{
    if (g_index_enabled != on)
        clear_cursor_accel_caches();
    g_index_enabled = on;
}

void
clear_cursor_accel_caches()
{
    g_epoch++;
    for (auto* fn : clearers())
        fn();
}

uint64_t
cursor_accel_epoch()
{
    return g_epoch;
}

CursorAccelStats
cursor_accel_stats()
{
    return accel_internal::g_stats;
}

void
reset_cursor_accel_stats()
{
    accel_internal::g_stats = CursorAccelStats{};
}

}  // namespace exo2
