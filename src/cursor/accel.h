#ifndef EXO2_CURSOR_ACCEL_H_
#define EXO2_CURSOR_ACCEL_H_

/**
 * @file
 * Control plane for the cursor-layer acceleration caches
 * (DESIGN.md §3, "Forwarding compression and pattern indexes").
 *
 * Two independent structures make long schedules scale ~linearly:
 *
 *  - **Forwarding path compression** (cursor/cursor.cc): resolved
 *    cursor locations are memoized per (proc version, cursor origin,
 *    origin location) with union-find-style path compression, so
 *    forwarding a cursor across a schedule of n primitives is
 *    amortized O(1) instead of an O(n) provenance replay.
 *  - **Pattern subtree indexes** (cursor/pattern.cc): every immutable
 *    `Stmt` subtree carries a memoized summary of the (statement kind,
 *    name) keys occurring in it; `pattern_find_all` prunes whole
 *    subtrees whose summary cannot contain the query key. Summaries
 *    are keyed on `Stmt*` identity, so spine-sharing edits reuse all
 *    untouched subtrees' entries — the index is incremental for free.
 *
 * Both caches key on immutable identities (proc uids are never reused,
 * statement nodes are never mutated), so entries can never go stale;
 * management is size-capped eviction only. The kill switches exist for
 * the ablation benchmarks and the randomized equivalence tests, which
 * cross-check the accelerated paths against naive replay / full-tree
 * search. Like the analysis memo caches, these are single-threaded by
 * design (scheduling applies one primitive at a time).
 */

#include <cstdint>
#include <memory>

namespace exo2 {

/** Is forwarding path compression consulted? Defaults to true. */
bool forwarding_compression_enabled();

/**
 * Enable or disable forwarding path compression. Disabling also clears
 * the forwarding memo, so a later re-enable starts cold; while off,
 * `forward_cursor` replays the provenance chain naively.
 */
void set_forwarding_compression_enabled(bool on);

/** Is the pattern subtree index consulted? Defaults to true. */
bool pattern_index_enabled();

/**
 * Enable or disable the pattern subtree index. While off,
 * `pattern_find_all` walks the full tree without pruning.
 */
void set_pattern_index_enabled(bool on);

/** Drop every cursor-acceleration cache entry. */
void clear_cursor_accel_caches();

/**
 * Validation epoch of the inline `SubtreeMemoSlot` caches on `Stmt`
 * (ir/stmt.h): a slot is valid only while its stored epoch matches.
 * `clear_cursor_accel_caches` bumps this, invalidating every inline
 * entry at once (there is no global registry of filled slots to walk).
 * Starts at 1 so default-constructed slots (epoch 0) never validate.
 */
uint64_t cursor_accel_epoch();

/** Hit/miss counters, for tests and benchmark reporting. */
struct CursorAccelStats
{
    /** Forwarding memo hits (walk stopped at a cached ancestor). */
    uint64_t fwd_hits = 0;
    /** Forwarding steps that had to apply a provenance edit. */
    uint64_t fwd_misses = 0;
    /** Subtree-summary reuses across proc versions. */
    uint64_t index_hits = 0;
    /** Subtree summaries built from scratch. */
    uint64_t index_misses = 0;
    /** Subtrees skipped by index pruning during pattern search. */
    uint64_t index_pruned = 0;
};

CursorAccelStats cursor_accel_stats();

/** Reset the counters (does not touch cache contents). */
void reset_cursor_accel_stats();

/**
 * Epoch-validated probe-or-build protocol of the inline
 * `SubtreeMemoSlot` caches: returns the cached summary when the slot's
 * epoch is current, otherwise builds (via `build`, returning a
 * `shared_ptr<const Summary>`), stores, and stamps. Shared by the
 * pattern subtree index (cursor/pattern.cc) and the binder-name
 * summaries (primitives/common.cc) so the validation protocol cannot
 * diverge between them. The returned pointer is owned by the slot and
 * stays valid while the statement lives and no clear intervenes.
 */
template <typename Summary, typename Slot, typename BuildFn>
const Summary*
probe_subtree_memo(const Slot& slot, BuildFn&& build)
{
    uint64_t epoch = cursor_accel_epoch();
    if (slot.epoch == epoch)
        return static_cast<const Summary*>(slot.data.get());
    std::shared_ptr<const Summary> sum = build();
    const Summary* out = sum.get();
    slot.data = std::move(sum);
    slot.epoch = epoch;
    return out;
}

namespace accel_internal {

/** Register a cache-clearing hook; called by clear_cursor_accel_caches
 *  and by the kill switches when toggled. */
void register_clearer(void (*fn)());

/** One registration helper per cache translation unit. */
struct ClearerRegistration
{
    explicit ClearerRegistration(void (*fn)()) { register_clearer(fn); }
};

/** Shared counters, bumped by the individual caches. */
extern CursorAccelStats g_stats;

}  // namespace accel_internal

}  // namespace exo2

#endif  // EXO2_CURSOR_ACCEL_H_
