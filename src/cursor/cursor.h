#ifndef EXO2_CURSOR_CURSOR_H_
#define EXO2_CURSOR_CURSOR_H_

/**
 * @file
 * Cursors (Section 5.2): multiple, stable, relative references into
 * object code. A cursor pairs a time coordinate (the Proc version it
 * was created on) with a spatial coordinate (a path into that proc's
 * AST) and supports navigation, inspection entry points, and
 * forwarding across scheduling actions.
 */

#include <string>
#include <vector>

#include "src/cursor/node.h"
#include "src/ir/proc.h"

namespace exo2 {

/**
 * A reference to a statement, expression, gap, or statement block
 * inside a specific version of a procedure.
 *
 * Navigation methods throw InvalidCursorError when the movement is
 * impossible (e.g. `parent()` of a top-level statement), which user
 * schedules exploit for control flow (Section 3.3).
 */
class Cursor
{
  public:
    /** An invalid cursor (useful as a sentinel; see `is_valid`). */
    Cursor() = default;

    Cursor(ProcPtr proc, CursorLoc loc)
        : proc_(std::move(proc)), loc_(std::move(loc)), valid_(true) {}

    /** An explicitly invalid cursor carrying its proc. */
    static Cursor invalid(ProcPtr proc)
    {
        Cursor c;
        c.proc_ = std::move(proc);
        return c;
    }

    bool is_valid() const { return valid_; }
    const ProcPtr& proc() const { return proc_; }
    const CursorLoc& loc() const { return loc_; }
    CursorKind kind() const { return loc_.kind; }

    /**
     * Two valid cursors are equal iff they denote the same location on
     * the same proc version. All invalid cursors compare equal — an
     * invalid cursor denotes nothing, so the proc it was invalidated on
     * is not observable through `is_valid()` and must not distinguish
     * them (forwarding the same dead cursor along different provenance
     * chains yields `==` results).
     */
    bool operator==(const Cursor& o) const
    {
        if (valid_ != o.valid_)
            return false;
        if (!valid_)
            return true;
        return proc_ == o.proc_ && loc_ == o.loc_;
    }

    // -- Resolution ------------------------------------------------------

    /** True if this is a Node cursor denoting a statement. */
    bool is_stmt() const;

    /** The statement this node cursor denotes. */
    StmtPtr stmt() const;

    /** The expression this node cursor denotes. */
    ExprPtr expr() const;

    /** The statements a block cursor denotes. */
    std::vector<StmtPtr> stmts() const;

    /** Convenience: statement kind name / iterator / target name. */
    std::string name() const;

    // -- Navigation (spatial frame modulation, Section 5.2) --------------

    Cursor parent() const;
    Cursor next(int k = 1) const;
    Cursor prev(int k = 1) const;

    /** Gap before / after this statement. */
    Cursor before() const;
    Cursor after() const;

    /** Block cursor over this For/If statement's body. */
    Cursor body() const;
    Cursor orelse_block() const;

    /** Node cursors for each statement of this For/If body. */
    std::vector<Cursor> body_list() const;

    /** Expression children. */
    Cursor cond() const;
    Cursor lo() const;
    Cursor hi() const;
    Cursor rhs() const;
    Cursor idx(int i) const;

    /**
     * Expand to a block: from a node cursor, the block
     * [i - delta_lo, i + 1 + delta_hi); from a block, widened on both
     * ends. Throws if the range leaves the containing list.
     */
    Cursor expand(int delta_lo, int delta_hi) const;

    /** This statement as a 1-element block. */
    Cursor as_block() const;

    /** Number of statements a block cursor spans. */
    int block_size() const;

    /** The i-th statement of a block cursor. */
    Cursor operator[](int i) const;

    /** The gap at the start / end of a block (for move targets). */
    Cursor block_before() const;
    Cursor block_after() const;

    // -- Scoped find ------------------------------------------------------

    /** First match of `pattern` within this subtree (see pattern.h). */
    Cursor find(const std::string& pattern) const;

    /** All matches of `pattern` within this subtree. */
    std::vector<Cursor> find_all(const std::string& pattern) const;

    /** First loop with iterator `name` within this subtree. */
    Cursor find_loop(const std::string& name) const;

  private:
    void require_valid() const;
    void require_kind(CursorKind k, const char* what) const;

    /** Index of this statement within its containing list. */
    int list_index() const;

    ProcPtr proc_;
    CursorLoc loc_;
    bool valid_ = false;
};

/**
 * Forward `c` (made on an ancestor version) to proc `p` by composing
 * the forwarding functions recorded in the provenance chain
 * (Section 5.2, "Forwarding"). Identity if `c` is already on `p`.
 * Returns an invalid cursor if any step invalidates it; throws
 * InvalidCursorError if `c`'s proc is not an ancestor of `p`.
 */
Cursor forward_cursor(const ProcPtr& p, const Cursor& c);

}  // namespace exo2

#endif  // EXO2_CURSOR_CURSOR_H_
