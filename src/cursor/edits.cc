#include "src/cursor/edits.h"

#include "src/ir/errors.h"
#include "src/obs/trace.h"

namespace exo2 {

namespace {

/** Does `path` start with `prefix`? */
bool
has_prefix(const Path& path, const Path& prefix)
{
    if (path.size() < prefix.size())
        return false;
    for (size_t i = 0; i < prefix.size(); i++) {
        if (!(path[i] == prefix[i]))
            return false;
    }
    return true;
}

/**
 * Relation of a location to a statement list: whether its path passes
 * through the list, and if so at which path depth.
 */
struct ListRelation
{
    bool through = false;
    size_t depth = 0;  ///< index of the step addressing the list
};

ListRelation
relate(const CursorLoc& loc, const ListAddr& addr)
{
    ListRelation r;
    size_t d = addr.parent.size();
    if (loc.path.size() <= d)
        return r;
    if (!has_prefix(loc.path, addr.parent))
        return r;
    if (loc.path[d].label != addr.label)
        return r;
    r.through = true;
    r.depth = d;
    return r;
}

/** Whether the list step is the final step of the path. */
bool
is_final(const CursorLoc& loc, size_t depth)
{
    return loc.path.size() == depth + 1;
}

}  // namespace

ForwardFn
fwd_identity()
{
    return [](const CursorLoc& l) { return std::optional<CursorLoc>(l); };
}

ForwardFn
fwd_compose(ForwardFn a, ForwardFn b)
{
    return [a = std::move(a), b = std::move(b)](const CursorLoc& l)
               -> std::optional<CursorLoc> {
        auto m = a(l);
        if (!m)
            return std::nullopt;
        return b(*m);
    };
}

ForwardFn
fwd_invalidate_below(Path prefix)
{
    return [prefix = std::move(prefix)](const CursorLoc& l)
               -> std::optional<CursorLoc> {
        if (l.path.size() > prefix.size() && has_prefix(l.path, prefix))
            return std::nullopt;
        return l;
    };
}

ForwardFn
fwd_insert(ListAddr addr, int gap, int count)
{
    return [addr = std::move(addr), gap, count](const CursorLoc& l)
               -> std::optional<CursorLoc> {
        ListRelation r = relate(l, addr);
        if (!r.through)
            return l;
        CursorLoc out = l;
        int i = l.path[r.depth].index;
        if (is_final(l, r.depth) && l.kind == CursorKind::Gap) {
            // The insertion gap itself keeps pointing before the new code.
            if (i > gap)
                out.path[r.depth].index = i + count;
            return out;
        }
        if (is_final(l, r.depth) && l.kind == CursorKind::Block) {
            int lo = i;
            int hi = l.hi;
            if (gap <= lo) {
                out.path[r.depth].index = lo + count;
                out.hi = hi + count;
            } else if (gap < hi) {
                out.hi = hi + count;  // block grows over the insertion
            }
            return out;
        }
        if (i >= gap)
            out.path[r.depth].index = i + count;
        return out;
    };
}

ForwardFn
fwd_erase(ListAddr addr, int lo, int hi)
{
    return [addr = std::move(addr), lo, hi](const CursorLoc& l)
               -> std::optional<CursorLoc> {
        ListRelation r = relate(l, addr);
        if (!r.through)
            return l;
        CursorLoc out = l;
        int width = hi - lo;
        int i = l.path[r.depth].index;
        if (is_final(l, r.depth) && l.kind == CursorKind::Gap) {
            if (i <= lo)
                return out;
            out.path[r.depth].index = (i >= hi) ? i - width : lo;
            return out;
        }
        if (is_final(l, r.depth) && l.kind == CursorKind::Block) {
            auto remap = [&](int pos) {
                return pos <= lo ? pos : (pos >= hi ? pos - width : lo);
            };
            int blo = remap(i);
            int bhi = remap(l.hi);
            if (blo >= bhi)
                return std::nullopt;
            out.path[r.depth].index = blo;
            out.hi = bhi;
            return out;
        }
        if (i >= lo && i < hi)
            return std::nullopt;  // inside the deleted subtree
        if (i >= hi)
            out.path[r.depth].index = i - width;
        return out;
    };
}

ForwardFn
fwd_replace_range(ListAddr addr, int lo, int hi, int count)
{
    return [addr = std::move(addr), lo, hi, count](const CursorLoc& l)
               -> std::optional<CursorLoc> {
        ListRelation r = relate(l, addr);
        if (!r.through)
            return l;
        CursorLoc out = l;
        int width = hi - lo;
        int shift = count - width;
        int i = l.path[r.depth].index;
        if (is_final(l, r.depth) && l.kind == CursorKind::Gap) {
            if (i <= lo)
                return out;
            if (i >= hi) {
                out.path[r.depth].index = i + shift;
                return out;
            }
            return std::nullopt;
        }
        if (is_final(l, r.depth) && l.kind == CursorKind::Block) {
            int bhi = l.hi;
            if (bhi <= lo)
                return out;
            if (i >= hi) {
                out.path[r.depth].index = i + shift;
                out.hi = bhi + shift;
                return out;
            }
            if (i == lo && bhi == hi) {
                // Exact match: the replaced block maps to its replacement.
                if (count == 0)
                    return std::nullopt;
                out.hi = lo + count;
                return out;
            }
            if (i >= lo && bhi <= hi)
                return std::nullopt;
            // Straddling: keep the surviving extent.
            out.path[r.depth].index = std::min(i, lo);
            out.hi = std::max(bhi + shift, lo + count);
            return out;
        }
        if (i < lo)
            return out;
        if (i >= hi) {
            out.path[r.depth].index = i + shift;
            return out;
        }
        // Inside the replaced range.
        if (is_final(l, r.depth) && l.kind == CursorKind::Node) {
            // Heuristic (paper: "attempt to produce a valid cursor"):
            // map onto the replacement block, clamped.
            if (count == 0)
                return std::nullopt;
            int offset = i - lo;
            out.path[r.depth].index = lo + std::min(offset, count - 1);
            return out;
        }
        return std::nullopt;  // deeper paths into replaced subtrees
    };
}

ForwardFn
fwd_wrap(ListAddr addr, int lo, int hi)
{
    return [addr = std::move(addr), lo, hi](const CursorLoc& l)
               -> std::optional<CursorLoc> {
        ListRelation r = relate(l, addr);
        if (!r.through)
            return l;
        CursorLoc out = l;
        int width = hi - lo;
        int i = l.path[r.depth].index;
        if (is_final(l, r.depth) && l.kind == CursorKind::Gap) {
            if (i <= lo)
                return out;
            if (i >= hi) {
                out.path[r.depth].index = i - width + 1;
                return out;
            }
            // Gap inside the wrapped region: descend into the wrapper.
            out.path[r.depth].index = lo;
            out.path.insert(out.path.begin() + r.depth + 1,
                            {PathLabel::Body, i - lo});
            return out;
        }
        if (is_final(l, r.depth) && l.kind == CursorKind::Block) {
            int bhi = l.hi;
            if (bhi <= lo)
                return out;
            if (i >= hi) {
                out.path[r.depth].index = i - width + 1;
                out.hi = bhi - width + 1;
                return out;
            }
            if (i >= lo && bhi <= hi) {
                out.path[r.depth].index = lo;
                out.path.insert(out.path.begin() + r.depth + 1,
                                {PathLabel::Body, i - lo});
                out.hi = bhi - lo;
                return out;
            }
            return std::nullopt;
        }
        if (i < lo)
            return out;
        if (i >= hi) {
            out.path[r.depth].index = i - width + 1;
            return out;
        }
        // Inside: path gains a step through the wrapper's body.
        out.path[r.depth].index = lo;
        out.path.insert(out.path.begin() + r.depth + 1,
                        {PathLabel::Body, i - lo});
        return out;
    };
}

ForwardFn
fwd_unwrap(ListAddr addr, int pos, int count)
{
    return [addr = std::move(addr), pos, count](const CursorLoc& l)
               -> std::optional<CursorLoc> {
        ListRelation r = relate(l, addr);
        if (!r.through)
            return l;
        CursorLoc out = l;
        int i = l.path[r.depth].index;
        if (is_final(l, r.depth) && l.kind == CursorKind::Gap) {
            if (i <= pos)
                return out;
            out.path[r.depth].index = i + count - 1;
            return out;
        }
        if (is_final(l, r.depth) && l.kind == CursorKind::Block) {
            int bhi = l.hi;
            if (bhi <= pos)
                return out;
            if (i > pos) {
                out.path[r.depth].index = i + count - 1;
                out.hi = bhi + count - 1;
                return out;
            }
            // Includes the unwrapped stmt: widen over its contents.
            out.hi = bhi + count - 1;
            return out;
        }
        if (i < pos)
            return out;
        if (i > pos) {
            out.path[r.depth].index = i + count - 1;
            return out;
        }
        // At or under the unwrapped statement.
        if (is_final(l, r.depth)) {
            // The wrapper itself: map to its former contents as a block,
            // or the single stmt if count == 1.
            if (count == 0)
                return std::nullopt;
            if (count == 1)
                return out;
            out.kind = CursorKind::Block;
            out.hi = pos + count;
            return out;
        }
        // Below the wrapper: splice out the Body step if it is next.
        const PathStep& next_step = l.path[r.depth + 1];
        if (next_step.label != PathLabel::Body)
            return std::nullopt;  // cursor into the dissolved header
        out.path[r.depth].index = pos + next_step.index;
        out.path.erase(out.path.begin() + r.depth + 1);
        return out;
    };
}

ForwardFn
fwd_move(ListAddr src, int lo, int hi, ListAddr dst, int dst_gap)
{
    ForwardFn erase_fn = fwd_erase(src, lo, hi);
    ForwardFn insert_fn = fwd_insert(dst, dst_gap, hi - lo);
    return [src, lo, hi, dst, dst_gap, erase_fn,
            insert_fn](const CursorLoc& l) -> std::optional<CursorLoc> {
        ListRelation r = relate(l, src);
        int i = r.through ? l.path[r.depth].index : -1;
        bool inside = r.through && i >= lo && i < hi &&
                      !(is_final(l, r.depth) && l.kind == CursorKind::Gap);
        if (inside) {
            // Subtree identity preserved: remap the prefix.
            CursorLoc out = l;
            Path new_prefix = dst.parent;
            new_prefix.push_back({dst.label, dst_gap + (i - lo)});
            Path rest(l.path.begin() + static_cast<long>(r.depth) + 1,
                      l.path.end());
            out.path = new_prefix;
            out.path.insert(out.path.end(), rest.begin(), rest.end());
            return out;
        }
        // Everything else: deletion then insertion. Note: the source
        // subtree positions were handled above, so erase_fn only sees
        // outside locations. The destination is in post-deletion coords.
        auto m = erase_fn(l);
        if (!m)
            return std::nullopt;
        return insert_fn(*m);
    };
}

// -- Edit batches ---------------------------------------------------------

namespace {

/** Apply staged forwarding functions in order; nullopt short-circuits. */
std::optional<CursorLoc>
apply_fwd_chain(const std::vector<ForwardFn>& fwds, const CursorLoc& loc)
{
    std::optional<CursorLoc> cur = loc;
    for (const auto& f : fwds) {
        cur = f(*cur);
        if (!cur)
            return std::nullopt;
    }
    return cur;
}

}  // namespace

EditBatch::EditBatch(ProcPtr p) : base_(std::move(p)), work_(base_) {}

void
EditBatch::stage(std::vector<StmtPtr> body, ForwardFn fwd)
{
    // The scratch proc exists only to resolve the next edit's
    // coordinates; it is never published and gets no provenance.
    work_ = Proc::make(base_->name(), base_->args(), base_->preds(),
                       std::move(body), base_->instr());
    fwds_.push_back(std::move(fwd));
}

std::optional<CursorLoc>
EditBatch::forward(const CursorLoc& loc) const
{
    return apply_fwd_chain(fwds_, loc);
}

void
EditBatch::insert(const ListAddr& addr, int gap, std::vector<StmtPtr> stmts)
{
    const auto& list = stmt_list_at(work_, addr);
    if (gap < 0 || gap > static_cast<int>(list.size()))
        throw InvalidCursorError("insertion gap out of range");
    std::vector<StmtPtr> nl(list.begin(), list.begin() + gap);
    int count = static_cast<int>(stmts.size());
    for (auto& s : stmts)
        nl.push_back(std::move(s));
    nl.insert(nl.end(), list.begin() + gap, list.end());
    stage(rebuild_list(work_, addr, std::move(nl)),
          fwd_insert(addr, gap, count));
}

void
EditBatch::erase(const ListAddr& addr, int lo, int hi)
{
    const auto& list = stmt_list_at(work_, addr);
    if (lo < 0 || hi > static_cast<int>(list.size()) || lo > hi)
        throw InvalidCursorError("erase range out of bounds");
    std::vector<StmtPtr> nl(list.begin(), list.begin() + lo);
    nl.insert(nl.end(), list.begin() + hi, list.end());
    stage(rebuild_list(work_, addr, std::move(nl)), fwd_erase(addr, lo, hi));
}

void
EditBatch::replace_range(const ListAddr& addr, int lo, int hi,
                         std::vector<StmtPtr> repl)
{
    const auto& list = stmt_list_at(work_, addr);
    if (lo < 0 || hi > static_cast<int>(list.size()) || lo > hi)
        throw InvalidCursorError("replace range out of bounds");
    std::vector<StmtPtr> nl(list.begin(), list.begin() + lo);
    int count = static_cast<int>(repl.size());
    for (auto& s : repl)
        nl.push_back(std::move(s));
    nl.insert(nl.end(), list.begin() + hi, list.end());
    stage(rebuild_list(work_, addr, std::move(nl)),
          fwd_replace_range(addr, lo, hi, count));
}

void
EditBatch::replace_stmt_same_shape(const Path& path, StmtPtr repl)
{
    NodeRef cur = node_at(work_, path);
    if (std::holds_alternative<StmtPtr>(cur) &&
        std::get<StmtPtr>(cur) == repl) {
        return;  // no-op (hash-consed subtree): nothing to stage
    }
    stage(rebuild_node(work_, path, NodeRef(std::move(repl))),
          fwd_identity());
}

void
EditBatch::replace_expr(const Path& path, ExprPtr repl)
{
    NodeRef cur = node_at(work_, path);
    if (std::holds_alternative<ExprPtr>(cur) &&
        std::get<ExprPtr>(cur) == repl) {
        return;  // interned no-op
    }
    stage(rebuild_node(work_, path, NodeRef(std::move(repl))),
          fwd_invalidate_below(path));
}

void
EditBatch::wrap(const ListAddr& addr, int lo, int hi,
                const std::function<StmtPtr(std::vector<StmtPtr>)>& wrap_fn)
{
    const auto& list = stmt_list_at(work_, addr);
    if (lo < 0 || hi > static_cast<int>(list.size()) || lo >= hi)
        throw InvalidCursorError("wrap range out of bounds");
    std::vector<StmtPtr> inner(list.begin() + lo, list.begin() + hi);
    StmtPtr wrapper = wrap_fn(std::move(inner));
    std::vector<StmtPtr> nl(list.begin(), list.begin() + lo);
    nl.push_back(std::move(wrapper));
    nl.insert(nl.end(), list.begin() + hi, list.end());
    stage(rebuild_list(work_, addr, std::move(nl)), fwd_wrap(addr, lo, hi));
}

ProcPtr
EditBatch::commit(const std::string& action)
{
    if (fwds_.empty())
        return base_;
    EXO2_SPAN("prim.apply", {{"action", action}});
    ForwardFn fwd;
    if (fwds_.size() == 1) {
        fwd = std::move(fwds_[0]);
    } else {
        auto fs = std::make_shared<std::vector<ForwardFn>>(std::move(fwds_));
        fwd = [fs](const CursorLoc& l) { return apply_fwd_chain(*fs, l); };
    }
    fwds_.clear();
    return base_->with_body(std::vector<StmtPtr>(work_->body_stmts()),
                            std::move(fwd), action);
}

// -- Whole-proc helpers ---------------------------------------------------

ProcPtr
apply_insert(const ProcPtr& p, const ListAddr& addr, int gap,
             std::vector<StmtPtr> stmts, const std::string& action)
{
    EditBatch b(p);
    b.insert(addr, gap, std::move(stmts));
    return b.commit(action);
}

ProcPtr
apply_erase(const ProcPtr& p, const ListAddr& addr, int lo, int hi,
            const std::string& action)
{
    EditBatch b(p);
    b.erase(addr, lo, hi);
    return b.commit(action);
}

ProcPtr
apply_replace_range(const ProcPtr& p, const ListAddr& addr, int lo, int hi,
                    std::vector<StmtPtr> repl, const std::string& action)
{
    EditBatch b(p);
    b.replace_range(addr, lo, hi, std::move(repl));
    return b.commit(action);
}

ProcPtr
apply_replace_stmt(const ProcPtr& p, const Path& path, StmtPtr repl,
                   const std::string& action)
{
    int i = 0;
    ListAddr addr = list_addr_of(path, &i);
    return apply_replace_range(p, addr, i, i + 1, {std::move(repl)}, action);
}

ProcPtr
apply_replace_stmt_same_shape(const ProcPtr& p, const Path& path,
                              StmtPtr repl, const std::string& action)
{
    // No-op edits (the replacement IS the current statement, common
    // with hash-consed subtrees) stage nothing and commit to `p`
    // itself: no spine rebuild, no provenance hop, cursors stay valid.
    EditBatch b(p);
    b.replace_stmt_same_shape(path, std::move(repl));
    return b.commit(action);
}

ProcPtr
apply_replace_expr(const ProcPtr& p, const Path& path, ExprPtr repl,
                   const std::string& action)
{
    EditBatch b(p);
    b.replace_expr(path, std::move(repl));
    return b.commit(action);
}

ProcPtr
apply_wrap(const ProcPtr& p, const ListAddr& addr, int lo, int hi,
           const std::function<StmtPtr(std::vector<StmtPtr>)>& wrap,
           const std::string& action)
{
    EditBatch b(p);
    b.wrap(addr, lo, hi, wrap);
    return b.commit(action);
}

ProcPtr
apply_unwrap(const ProcPtr& p, const Path& path,
             std::vector<StmtPtr> contents, const std::string& action)
{
    int pos = 0;
    ListAddr addr = list_addr_of(path, &pos);
    const auto& list = stmt_list_at(p, addr);
    int count = static_cast<int>(contents.size());
    std::vector<StmtPtr> nl(list.begin(), list.begin() + pos);
    for (auto& s : contents)
        nl.push_back(std::move(s));
    nl.insert(nl.end(), list.begin() + pos + 1, list.end());
    return p->with_body(rebuild_list(p, addr, std::move(nl)),
                        fwd_unwrap(addr, pos, count), action);
}

ProcPtr
apply_move(const ProcPtr& p, const ListAddr& src, int lo, int hi,
           const ListAddr& dst, int dst_gap, const std::string& action)
{
    const auto& slist = stmt_list_at(p, src);
    if (lo < 0 || hi > static_cast<int>(slist.size()) || lo >= hi)
        throw InvalidCursorError("move range out of bounds");
    std::vector<StmtPtr> moved(slist.begin() + lo, slist.begin() + hi);
    // Delete from source.
    std::vector<StmtPtr> snew(slist.begin(), slist.begin() + lo);
    snew.insert(snew.end(), slist.begin() + hi, slist.end());
    auto body1 = rebuild_list(p, src, std::move(snew));
    // Insert at destination, resolved against the intermediate body.
    ProcPtr tmp = Proc::make("*tmp*", p->args(), p->preds(), body1);
    const auto& dlist = stmt_list_at(tmp, dst);
    if (dst_gap < 0 || dst_gap > static_cast<int>(dlist.size()))
        throw InvalidCursorError("move destination gap out of range");
    std::vector<StmtPtr> dnew(dlist.begin(), dlist.begin() + dst_gap);
    for (auto& s : moved)
        dnew.push_back(std::move(s));
    dnew.insert(dnew.end(), dlist.begin() + dst_gap, dlist.end());
    auto body2 = rebuild_list(tmp, dst, std::move(dnew));
    return p->with_body(std::move(body2), fwd_move(src, lo, hi, dst, dst_gap),
                        action);
}

}  // namespace exo2
