#include "src/cursor/pattern.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <unordered_map>

#include "src/cursor/accel.h"
#include "src/frontend/parser.h"
#include "src/ir/errors.h"
#include "src/ir/interner.h"

namespace exo2 {

namespace {

bool
is_wildcard_name(const std::string& n)
{
    return n == "_";
}

bool
is_wildcard_expr(const ExprPtr& e)
{
    return e && e->kind() == ExprKind::Read && e->name() == "_" &&
           e->idx().empty();
}

bool match_expr(const ExprPtr& pat, const ExprPtr& e);

/** `[_]` as an index list matches any index list. */
bool
match_expr_list(const std::vector<ExprPtr>& pat,
                const std::vector<ExprPtr>& es)
{
    if (pat.size() == 1 && is_wildcard_expr(pat[0]))
        return true;
    if (pat.size() != es.size())
        return false;
    for (size_t i = 0; i < pat.size(); i++) {
        if (!match_expr(pat[i], es[i]))
            return false;
    }
    return true;
}

bool
match_expr(const ExprPtr& pat, const ExprPtr& e)
{
    // Interned pointer identity: a node trivially matches itself (every
    // construct matches an identical construct, wildcards included).
    if (pat == e && pat)
        return true;
    if (is_wildcard_expr(pat))
        return true;
    if (!pat || !e || pat->kind() != e->kind())
        return false;
    switch (pat->kind()) {
      case ExprKind::Const:
        return pat->const_value() == e->const_value();
      case ExprKind::Read:
      case ExprKind::Extern:
        if (!is_wildcard_name(pat->name()) && pat->name() != e->name())
            return false;
        return match_expr_list(pat->idx(), e->idx());
      case ExprKind::BinOp:
        return pat->op() == e->op() && match_expr(pat->lhs(), e->lhs()) &&
               match_expr(pat->rhs(), e->rhs());
      case ExprKind::USub:
        return match_expr(pat->lhs(), e->lhs());
      case ExprKind::Window:
        return is_wildcard_name(pat->name()) || pat->name() == e->name();
      case ExprKind::Stride:
        return pat->name() == e->name() &&
               pat->stride_dim() == e->stride_dim();
      case ExprKind::ReadConfig:
        return pat->name() == e->name() && pat->field() == e->field();
    }
    return false;
}

bool
match_block(const std::vector<StmtPtr>& pat, const std::vector<StmtPtr>& b)
{
    if (pat.empty())
        return true;  // `_` body: match anything
    if (pat.size() != b.size())
        return false;
    for (size_t i = 0; i < pat.size(); i++) {
        if (!pattern_match_stmt(pat[i], b[i]))
            return false;
    }
    return true;
}

}  // namespace

bool
pattern_match_stmt(const StmtPtr& pat, const StmtPtr& s)
{
    if (!pat || !s)
        return false;
    if (pat == s)  // a statement trivially matches itself
        return true;
    // `Call` patterns parsed without a resolvable callee store the name
    // on the stmt itself.
    if (pat->kind() != s->kind())
        return false;
    switch (pat->kind()) {
      case StmtKind::Assign:
      case StmtKind::Reduce:
        if (!is_wildcard_name(pat->name()) && pat->name() != s->name())
            return false;
        if (!match_expr_list(pat->idx(), s->idx()))
            return false;
        return match_expr(pat->rhs(), s->rhs());
      case StmtKind::Alloc:
        return is_wildcard_name(pat->name()) || pat->name() == s->name();
      case StmtKind::For: {
        if (!is_wildcard_name(pat->iter()) && pat->iter() != s->iter())
            return false;
        if (!match_expr(pat->lo(), s->lo()) ||
            !match_expr(pat->hi(), s->hi())) {
            return false;
        }
        return match_block(pat->body(), s->body());
      }
      case StmtKind::If:
        return match_expr(pat->cond(), s->cond()) &&
               match_block(pat->body(), s->body()) &&
               match_block(pat->orelse(), s->orelse());
      case StmtKind::Pass:
        return true;
      case StmtKind::Call: {
        std::string pat_name =
            pat->callee() ? pat->callee()->name() : pat->name();
        std::string s_name = s->callee() ? s->callee()->name() : s->name();
        if (!is_wildcard_name(pat_name) && pat_name != s_name)
            return false;
        return match_expr_list(pat->args(), s->args());
      }
      case StmtKind::WriteConfig:
        return (is_wildcard_name(pat->name()) || pat->name() == s->name()) &&
               (is_wildcard_name(pat->field()) || pat->field() == s->field());
      case StmtKind::WindowDecl:
        return (is_wildcard_name(pat->name()) || pat->name() == s->name()) &&
               match_expr(pat->rhs(), s->rhs());
    }
    return false;
}

namespace {

// ---- Subtree pattern index (DESIGN.md §3) -------------------------------
//
// Every statement subtree gets a memoized summary of the (statement
// kind, binder name) keys occurring in it. A pattern with a concrete
// kind/name can then prune whole subtrees whose summary cannot contain
// a match, turning full-tree searches into walks of the few spines that
// lead to candidates. Summaries are keyed on `Stmt*` identity: the IR
// is immutable and spine-rebuilding edits share untouched subtrees, so
// consecutive proc versions reuse all unchanged entries — the index is
// maintained incrementally across edits for free.

/** Key-relevant name of a statement: what a concrete-name pattern of
 *  the same kind must equal for `pattern_match_stmt` to succeed. */
const std::string&
stmt_key_name(const Stmt& s)
{
    switch (s.kind()) {
      case StmtKind::For:
        return s.iter();
      case StmtKind::Call:
        return s.callee() ? s.callee()->name() : s.name();
      default:
        return s.name();  // empty for If/Pass: no name key
    }
}

uint64_t
stmt_key(StmtKind kind, const std::string& name)
{
    return hash_combine(hash_mix(static_cast<uint64_t>(kind) + 1),
                        hash_str(name));
}

struct SubtreeSummary
{
    /** Bitmask over StmtKind of kinds present in the subtree. */
    uint16_t kind_mask = 0;
    /** 64-bit bloom of the key hashes: one bit per key (`1 << (k&63)`).
     *  A clear bit proves absence without touching `keys`. */
    uint64_t key_bloom = 0;
    /** Sorted unique (kind, name) key hashes present in the subtree. */
    std::vector<uint64_t> keys;
};

/**
 * Memoized in the statement's inline `pattern_memo()` slot (ir/stmt.h):
 * probing costs a pointer dereference, and spine-sharing edits reuse
 * every untouched subtree's summary with no global table. The returned
 * pointer stays valid while the statement lives — the slot owns it.
 */
const SubtreeSummary*
subtree_summary(const StmtPtr& s)
{
    if (s->pattern_memo().epoch == cursor_accel_epoch())
        accel_internal::g_stats.index_hits++;
    else
        accel_internal::g_stats.index_misses++;
    return probe_subtree_memo<SubtreeSummary>(s->pattern_memo(), [&] {
        auto sum = std::make_shared<SubtreeSummary>();
        sum->kind_mask = static_cast<uint16_t>(
            1u << static_cast<unsigned>(s->kind()));
        std::vector<uint64_t> keys{stmt_key(s->kind(), stmt_key_name(*s))};
        auto merge = [&](const std::vector<StmtPtr>& block) {
            for (const StmtPtr& ch : block) {
                const SubtreeSummary* cs = subtree_summary(ch);
                sum->kind_mask |= cs->kind_mask;
                sum->key_bloom |= cs->key_bloom;
                keys.insert(keys.end(), cs->keys.begin(), cs->keys.end());
            }
        };
        merge(s->body());
        merge(s->orelse());
        std::sort(keys.begin(), keys.end());
        keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
        for (uint64_t k : keys)
            sum->key_bloom |= uint64_t(1) << (k & 63);
        sum->keys = std::move(keys);
        return std::shared_ptr<const SubtreeSummary>(std::move(sum));
    });
}

/** The index-probe form of a parsed pattern. */
struct PatQuery
{
    uint16_t kind_bit = 0;
    bool has_name = false;
    uint64_t key = 0;
};

PatQuery
query_of(const StmtPtr& pat)
{
    PatQuery q;
    q.kind_bit =
        static_cast<uint16_t>(1u << static_cast<unsigned>(pat->kind()));
    const std::string& name = stmt_key_name(*pat);
    if (!name.empty() && !is_wildcard_name(name)) {
        q.has_name = true;
        q.key = stmt_key(pat->kind(), name);
    }
    return q;
}

/** May the subtree rooted at `s` contain a statement matching `q`?
 *  A `false` answer is exact pruning: `pattern_match_stmt` requires a
 *  kind match and (for concrete-name patterns) a key-name match, and
 *  the summary over-approximates both for the whole subtree. */
bool
may_contain(const StmtPtr& s, const PatQuery& q)
{
    if (!pattern_index_enabled())
        return true;
    const SubtreeSummary* sum = subtree_summary(s);
    if (!(sum->kind_mask & q.kind_bit)) {
        accel_internal::g_stats.index_pruned++;
        return false;
    }
    if (q.has_name &&
        (!(sum->key_bloom & (uint64_t(1) << (q.key & 63))) ||
         !std::binary_search(sum->keys.begin(), sum->keys.end(), q.key))) {
        accel_internal::g_stats.index_pruned++;
        return false;
    }
    return true;
}

/** Pre-order walk of all statements under a block, collecting matches;
 *  subtrees that cannot contain a match are skipped wholesale. */
void
walk_block(const ProcPtr& p, const std::vector<StmtPtr>& block, Path path,
           PathLabel label, const StmtPtr& pat, const PatQuery& q,
           std::vector<Cursor>* out)
{
    for (size_t i = 0; i < block.size(); i++) {
        const StmtPtr& s = block[i];
        if (!may_contain(s, q))
            continue;
        Path here = path;
        here.push_back({label, static_cast<int>(i)});
        if (pattern_match_stmt(pat, s)) {
            CursorLoc l;
            l.kind = CursorKind::Node;
            l.path = here;
            out->push_back(Cursor(p, std::move(l)));
        }
        if (!s->body().empty())
            walk_block(p, s->body(), here, PathLabel::Body, pat, q, out);
        if (!s->orelse().empty())
            walk_block(p, s->orelse(), here, PathLabel::Orelse, pat, q, out);
    }
}

/** Split a trailing " #k" selector off a pattern string. */
std::string
split_selector(const std::string& pattern, int* k_out)
{
    *k_out = -1;
    auto pos = pattern.rfind(" #");
    if (pos == std::string::npos)
        return pattern;
    *k_out = std::atoi(pattern.c_str() + pos + 2);
    return pattern.substr(0, pos);
}

std::vector<Cursor>
find_matching(const ProcPtr& p, const Path& prefix, const StmtPtr& pat)
{
    std::vector<Cursor> out;
    PatQuery q = query_of(pat);
    if (prefix.empty()) {
        walk_block(p, p->body_stmts(), {}, PathLabel::Body, pat, q, &out);
        return out;
    }
    // Search the subtree rooted at `prefix` (including the root stmt).
    StmtPtr root = stmt_at(p, prefix);
    if (pattern_match_stmt(pat, root)) {
        CursorLoc l;
        l.kind = CursorKind::Node;
        l.path = prefix;
        out.push_back(Cursor(p, l));
    }
    Path parent = prefix;
    if (!root->body().empty())
        walk_block(p, root->body(), parent, PathLabel::Body, pat, q, &out);
    if (!root->orelse().empty())
        walk_block(p, root->orelse(), parent, PathLabel::Orelse, pat, q,
                   &out);
    return out;
}

}  // namespace

namespace {

/** Parsed-pattern cache: schedules re-find the same handful of pattern
 *  strings across every step, so parsing each once is enough. */
StmtPtr
cached_parse_pattern(const std::string& body)
{
    static auto* cache = new std::unordered_map<std::string, StmtPtr>();
    auto it = cache->find(body);
    if (it != cache->end())
        return it->second;
    StmtPtr pat = parse_pattern(body + "\n");
    if (cache->size() >= 4096)
        cache->clear();
    cache->emplace(body, pat);
    return pat;
}

}  // namespace

std::vector<Cursor>
pattern_find_all(const ProcPtr& p, const Path& prefix,
                 const std::string& pattern)
{
    int k = -1;
    std::string body = split_selector(pattern, &k);
    StmtPtr pat = cached_parse_pattern(body);
    auto all = find_matching(p, prefix, pat);
    if (k >= 0) {
        if (k >= static_cast<int>(all.size()))
            return {};
        return {all[static_cast<size_t>(k)]};
    }
    return all;
}

Cursor
pattern_find_one(const ProcPtr& p, const Path& prefix,
                 const std::string& pattern)
{
    auto all = pattern_find_all(p, prefix, pattern);
    if (all.empty()) {
        throw SchedulingError("find: no match for pattern '" + pattern +
                              "' in " + p->name());
    }
    return all.front();
}

Cursor
pattern_find_loop(const ProcPtr& p, const Path& prefix,
                  const std::string& name)
{
    int k = -1;
    std::string base = split_selector(name, &k);
    std::string pattern = "for " + base + " in _: _";
    if (k >= 0)
        pattern += " #" + std::to_string(k);
    return pattern_find_one(p, prefix, pattern);
}

Cursor
pattern_find_alloc(const ProcPtr& p, const Path& prefix,
                   const std::string& name)
{
    int k = -1;
    std::string base = split_selector(name, &k);
    std::string pattern = base + ": _";
    if (k >= 0)
        pattern += " #" + std::to_string(k);
    return pattern_find_one(p, prefix, pattern);
}

}  // namespace exo2
