#include "src/cursor/cursor.h"

#include <algorithm>
#include <unordered_map>

#include "src/cursor/accel.h"
#include "src/cursor/pattern.h"
#include "src/ir/errors.h"
#include "src/ir/interner.h"

namespace exo2 {

void
Cursor::require_valid() const
{
    if (!valid_ || !proc_)
        throw InvalidCursorError("cursor is invalid");
}

void
Cursor::require_kind(CursorKind k, const char* what) const
{
    require_valid();
    if (loc_.kind != k)
        throw InvalidCursorError(std::string("cursor is not a ") + what);
}

bool
Cursor::is_stmt() const
{
    require_kind(CursorKind::Node, "node");
    return std::holds_alternative<StmtPtr>(node_at(proc_, loc_.path));
}

StmtPtr
Cursor::stmt() const
{
    require_kind(CursorKind::Node, "node");
    return stmt_at(proc_, loc_.path);
}

ExprPtr
Cursor::expr() const
{
    require_kind(CursorKind::Node, "node");
    return expr_at(proc_, loc_.path);
}

std::vector<StmtPtr>
Cursor::stmts() const
{
    require_valid();
    if (loc_.kind == CursorKind::Node)
        return {stmt()};
    require_kind(CursorKind::Block, "block");
    int lo = 0;
    ListAddr addr = list_addr_of(loc_.path, &lo);
    const auto& list = stmt_list_at(proc_, addr);
    if (lo < 0 || loc_.hi > static_cast<int>(list.size()) || lo > loc_.hi)
        throw InvalidCursorError("block range out of bounds");
    return std::vector<StmtPtr>(list.begin() + lo, list.begin() + loc_.hi);
}

std::string
Cursor::name() const
{
    StmtPtr s = stmt();
    switch (s->kind()) {
      case StmtKind::For:
        return s->iter();
      case StmtKind::Call:
        return s->callee() ? s->callee()->name() : s->name();
      default:
        return s->name();
    }
}

int
Cursor::list_index() const
{
    require_valid();
    if (loc_.path.empty() || !is_stmt_list_label(loc_.path.back().label))
        throw InvalidCursorError("cursor is not inside a statement list");
    return loc_.path.back().index;
}

Cursor
Cursor::parent() const
{
    require_valid();
    if (loc_.path.size() <= 1)
        throw InvalidCursorError("parent of a top-level statement");
    CursorLoc l;
    l.kind = CursorKind::Node;
    l.path = Path(loc_.path.begin(), loc_.path.end() - 1);
    // Expression cursors may sit several labels under their statement;
    // parent() of an expression child is the enclosing node either way.
    return Cursor(proc_, std::move(l));
}

Cursor
Cursor::next(int k) const
{
    require_kind(CursorKind::Node, "node");
    int i = list_index();
    CursorLoc l = loc_;
    l.path.back().index = i + k;
    Cursor c(proc_, l);
    c.stmt();  // validate
    return c;
}

Cursor
Cursor::prev(int k) const
{
    return next(-k);
}

Cursor
Cursor::before() const
{
    require_kind(CursorKind::Node, "node");
    CursorLoc l = loc_;
    l.kind = CursorKind::Gap;
    (void)list_index();
    return Cursor(proc_, std::move(l));
}

Cursor
Cursor::after() const
{
    require_kind(CursorKind::Node, "node");
    CursorLoc l = loc_;
    l.kind = CursorKind::Gap;
    l.path.back().index = list_index() + 1;
    return Cursor(proc_, std::move(l));
}

Cursor
Cursor::body() const
{
    StmtPtr s = stmt();
    if (s->kind() != StmtKind::For && s->kind() != StmtKind::If)
        throw InvalidCursorError("body() of a statement without a body");
    CursorLoc l;
    l.kind = CursorKind::Block;
    l.path = loc_.path;
    l.path.push_back({PathLabel::Body, 0});
    l.hi = static_cast<int>(s->body().size());
    return Cursor(proc_, std::move(l));
}

Cursor
Cursor::orelse_block() const
{
    StmtPtr s = stmt();
    if (s->kind() != StmtKind::If)
        throw InvalidCursorError("orelse() of a non-if statement");
    CursorLoc l;
    l.kind = CursorKind::Block;
    l.path = loc_.path;
    l.path.push_back({PathLabel::Orelse, 0});
    l.hi = static_cast<int>(s->orelse().size());
    return Cursor(proc_, std::move(l));
}

std::vector<Cursor>
Cursor::body_list() const
{
    Cursor blk = body();
    std::vector<Cursor> out;
    for (int i = 0; i < blk.block_size(); i++)
        out.push_back(blk[i]);
    return out;
}

Cursor
Cursor::cond() const
{
    StmtPtr s = stmt();
    if (!s->cond())
        throw InvalidCursorError("statement has no condition");
    CursorLoc l = loc_;
    l.path.push_back({PathLabel::Cond, -1});
    return Cursor(proc_, std::move(l));
}

Cursor
Cursor::lo() const
{
    StmtPtr s = stmt();
    if (!s->lo())
        throw InvalidCursorError("statement has no lower bound");
    CursorLoc l = loc_;
    l.path.push_back({PathLabel::Lo, -1});
    return Cursor(proc_, std::move(l));
}

Cursor
Cursor::hi() const
{
    StmtPtr s = stmt();
    if (!s->hi())
        throw InvalidCursorError("statement has no upper bound");
    CursorLoc l = loc_;
    l.path.push_back({PathLabel::Hi, -1});
    return Cursor(proc_, std::move(l));
}

Cursor
Cursor::rhs() const
{
    StmtPtr s = stmt();
    if (!s->rhs())
        throw InvalidCursorError("statement has no rhs");
    CursorLoc l = loc_;
    l.path.push_back({PathLabel::Rhs, -1});
    return Cursor(proc_, std::move(l));
}

Cursor
Cursor::idx(int i) const
{
    StmtPtr s = stmt();
    if (i < 0 || i >= static_cast<int>(s->idx().size()))
        throw InvalidCursorError("index out of range");
    CursorLoc l = loc_;
    l.path.push_back({PathLabel::Idx, i});
    return Cursor(proc_, std::move(l));
}

Cursor
Cursor::expand(int delta_lo, int delta_hi) const
{
    require_valid();
    int lo = 0;
    int hi = 0;
    CursorLoc l = loc_;
    if (loc_.kind == CursorKind::Node) {
        lo = list_index();
        hi = lo + 1;
    } else if (loc_.kind == CursorKind::Block) {
        lo = loc_.path.back().index;
        hi = loc_.hi;
    } else {
        throw InvalidCursorError("cannot expand a gap cursor");
    }
    lo -= delta_lo;
    hi += delta_hi;
    ListAddr addr = list_addr_of(loc_.path, nullptr);
    const auto& list = stmt_list_at(proc_, addr);
    if (lo < 0 || hi > static_cast<int>(list.size()) || lo >= hi)
        throw InvalidCursorError("expand out of range");
    l.kind = CursorKind::Block;
    l.path.back().index = lo;
    l.hi = hi;
    return Cursor(proc_, std::move(l));
}

Cursor
Cursor::as_block() const
{
    return expand(0, 0);
}

int
Cursor::block_size() const
{
    require_kind(CursorKind::Block, "block");
    return loc_.hi - loc_.path.back().index;
}

Cursor
Cursor::operator[](int i) const
{
    require_kind(CursorKind::Block, "block");
    int lo = loc_.path.back().index;
    if (i < 0 || lo + i >= loc_.hi)
        throw InvalidCursorError("block index out of range");
    CursorLoc l = loc_;
    l.kind = CursorKind::Node;
    l.path.back().index = lo + i;
    l.hi = -1;
    return Cursor(proc_, std::move(l));
}

Cursor
Cursor::block_before() const
{
    require_kind(CursorKind::Block, "block");
    CursorLoc l = loc_;
    l.kind = CursorKind::Gap;
    l.hi = -1;
    return Cursor(proc_, std::move(l));
}

Cursor
Cursor::block_after() const
{
    require_kind(CursorKind::Block, "block");
    CursorLoc l = loc_;
    l.kind = CursorKind::Gap;
    l.path.back().index = loc_.hi;
    l.hi = -1;
    return Cursor(proc_, std::move(l));
}

Cursor
Cursor::find(const std::string& pattern) const
{
    require_valid();
    return pattern_find_one(proc_, loc_.path, pattern);
}

std::vector<Cursor>
Cursor::find_all(const std::string& pattern) const
{
    require_valid();
    return pattern_find_all(proc_, loc_.path, pattern);
}

Cursor
Cursor::find_loop(const std::string& name) const
{
    require_valid();
    return pattern_find_loop(proc_, loc_.path, name);
}

namespace {

uint64_t
cursor_loc_hash(const CursorLoc& l)
{
    uint64_t h = hash_combine(static_cast<uint64_t>(l.kind),
                              static_cast<uint64_t>(l.hi) + 1);
    for (const PathStep& s : l.path) {
        h = hash_combine(h, (static_cast<uint64_t>(s.label) << 32) ^
                                static_cast<uint64_t>(s.index + 1));
    }
    return h;
}

/**
 * Key of a memoized forwarding result: the origin (proc uid + location
 * the cursor was created with) and the proc version the location has
 * been forwarded to. Proc uids are never reused and procs are
 * immutable, so entries can never go stale.
 */
struct FwdKey
{
    uint64_t target_uid;
    uint64_t origin_uid;
    CursorLoc loc;

    bool operator==(const FwdKey& o) const
    {
        return target_uid == o.target_uid && origin_uid == o.origin_uid &&
               loc == o.loc;
    }
};

struct FwdKeyHash
{
    size_t operator()(const FwdKey& k) const
    {
        return static_cast<size_t>(hash_combine(
            hash_combine(k.target_uid, k.origin_uid), cursor_loc_hash(k.loc)));
    }
};

using FwdCache =
    std::unordered_map<FwdKey, std::optional<CursorLoc>, FwdKeyHash>;

FwdCache&
fwd_cache()
{
    static auto* c = new FwdCache();
    return *c;
}

void
clear_fwd_cache()
{
    fwd_cache().clear();
}

accel_internal::ClearerRegistration fwd_cache_reg(&clear_fwd_cache);

constexpr size_t kFwdCacheCap = 1u << 20;

[[noreturn]] void
not_an_ancestor()
{
    throw InvalidCursorError(
        "cursor's procedure is not an ancestor of the target");
}

/** Pre-compression forwarding: replay the whole provenance chain. */
Cursor
forward_cursor_naive(const ProcPtr& p, const Cursor& c)
{
    std::vector<const Provenance*> chain;
    const Proc* cur = p.get();
    while (cur && cur->uid() != c.proc()->uid()) {
        const auto& prov = cur->provenance();
        if (!prov)
            not_an_ancestor();
        chain.push_back(prov.get());
        cur = prov->parent.get();
    }
    if (!cur)
        not_an_ancestor();
    std::optional<CursorLoc> loc = c.loc();
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        loc = (*it)->fwd(*loc);
        if (!loc)
            return Cursor::invalid(p);
    }
    return Cursor(p, *loc);
}

}  // namespace

Cursor
forward_cursor(const ProcPtr& p, const Cursor& c)
{
    if (!c.proc())
        throw InvalidCursorError("cannot forward a null cursor");
    if (!c.is_valid())
        return Cursor::invalid(p);
    if (c.proc()->uid() == p->uid())
        return Cursor(p, c.loc());
    if (!forwarding_compression_enabled())
        return forward_cursor_naive(p, c);

    // Path compression (DESIGN.md §3): walk up from `p` until we reach
    // the origin or a version whose resolved location is memoized, then
    // apply only the remaining (unseen) provenance suffix, caching the
    // resolved location at every version on the way back down. A cursor
    // forwarded after each of n scheduling steps thus pays O(1) per
    // step amortized: each edit's forwarding function runs at most once
    // per distinct (origin, location).
    const uint64_t origin_uid = c.proc()->uid();
    const uint64_t origin_gen = c.proc()->generation();
    auto& cache = fwd_cache();
    std::vector<const Proc*> pending;  // versions whose fwd is unapplied
    std::optional<CursorLoc> loc;
    const Proc* cur = p.get();
    // One key for the whole walk (the origin loc's path vector is
    // heap-allocated; copying it per probe would put an allocation in
    // the exact hot loop this cache removes).
    FwdKey key{0, origin_uid, c.loc()};
    for (;;) {
        if (cur->uid() == origin_uid) {
            loc = c.loc();
            break;
        }
        key.target_uid = cur->uid();
        auto it = cache.find(key);
        if (it != cache.end()) {
            accel_internal::g_stats.fwd_hits++;
            loc = it->second;
            break;
        }
        // Generations are strictly increasing along provenance chains:
        // once below the origin's generation, the origin is unreachable.
        if (cur->generation() <= origin_gen || !cur->provenance())
            not_an_ancestor();
        pending.push_back(cur);
        cur = cur->provenance()->parent.get();
    }
    // Evict before (not during) the descent so a cap-crossing walk
    // never discards the entries it is in the middle of inserting.
    if (cache.size() + pending.size() >= kFwdCacheCap)
        cache.clear();
    for (auto it = pending.rbegin(); it != pending.rend(); ++it) {
        if (loc) {
            loc = (*it)->provenance()->fwd(*loc);
            accel_internal::g_stats.fwd_misses++;
        }
        key.target_uid = (*it)->uid();
        cache.emplace(key, loc);
    }
    if (!loc)
        return Cursor::invalid(p);
    return Cursor(p, *loc);
}

// ---- Proc cursor conveniences (declared in ir/proc.h) ------------------

Cursor
Proc::body() const
{
    CursorLoc l;
    l.kind = CursorKind::Block;
    l.path = {{PathLabel::Body, 0}};
    l.hi = static_cast<int>(body_.size());
    return Cursor(shared_from_this(), std::move(l));
}

Cursor
Proc::find(const std::string& pattern) const
{
    return pattern_find_one(shared_from_this(), {}, pattern);
}

std::vector<Cursor>
Proc::find_all(const std::string& pattern) const
{
    return pattern_find_all(shared_from_this(), {}, pattern);
}

Cursor
Proc::find_loop(const std::string& name) const
{
    return pattern_find_loop(shared_from_this(), {}, name);
}

Cursor
Proc::find_alloc(const std::string& name) const
{
    return pattern_find_alloc(shared_from_this(), {}, name);
}

Cursor
Proc::forward(const Cursor& c) const
{
    return forward_cursor(shared_from_this(), c);
}

}  // namespace exo2
