#ifndef EXO2_BASELINES_BASELINES_H_
#define EXO2_BASELINES_BASELINES_H_

/**
 * @file
 * Reference-library models (the DESIGN.md substitution for MKL /
 * OpenBLAS / BLIS / Halide / the Gemmini standard library / original
 * Exo). Each model is a hand-chosen schedule run on the same cost
 * simulator; the parameter choices reflect each library's published
 * character:
 *
 *  - MKL-model:      wide interleave, masked tails (best small-size
 *                    handling among the reference libraries).
 *  - OpenBLAS-model: wide interleave, scalar tails (weak tiny sizes).
 *  - BLIS-model:     modest interleave, scalar tails.
 *  - Exo-model:      the same generators with the PLDI'22 parameter
 *                    choices (no interleave tuning) — Fig. 6's
 *                    comparison partner.
 *
 * None of the models uses the Exo 2 skinny/specialized paths: the
 * paper's small-N wins come exactly from that asymmetry.
 */

#include "src/kernels/blas.h"
#include "src/machine/cost_sim.h"
#include "src/machine/machine.h"
#include "src/sched/blas.h"

namespace exo2 {
namespace baselines {

enum class RefLib { Exo2, MKL, OpenBLAS, BLIS, Exo };

/** Printable name. */
std::string ref_lib_name(RefLib lib);

/** The cost-model configuration for a library (dispatch overhead). */
CostConfig cost_config_for(RefLib lib);

/** Schedule a level-1 kernel as `lib` would (cached). */
ProcPtr scheduled_level1(const kernels::KernelDef& k, const Machine& m,
                         RefLib lib);

/** Schedule a level-2 kernel as `lib` would (cached). */
ProcPtr scheduled_level2(const kernels::KernelDef& k, const Machine& m,
                         RefLib lib);

/** Exo 2's skinny-matrix specialization for gemv/ger at fixed N. */
ProcPtr scheduled_skinny(const kernels::KernelDef& k, const Machine& m,
                         int64_t fixed_n);

}  // namespace baselines
}  // namespace exo2

#endif  // EXO2_BASELINES_BASELINES_H_
