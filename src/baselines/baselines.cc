#include "src/baselines/baselines.h"

#include <map>
#include <mutex>

#include "src/ir/errors.h"

namespace exo2 {
namespace baselines {

std::string
ref_lib_name(RefLib lib)
{
    switch (lib) {
      case RefLib::Exo2: return "Exo 2";
      case RefLib::MKL: return "MKL";
      case RefLib::OpenBLAS: return "OpenBLAS";
      case RefLib::BLIS: return "BLIS";
      case RefLib::Exo: return "Exo";
    }
    return "?";
}

CostConfig
cost_config_for(RefLib lib)
{
    CostConfig cfg;
    switch (lib) {
      case RefLib::Exo2:
      case RefLib::Exo:
        cfg.dispatch_cycles = 0.0;  // direct generated kernels
        break;
      case RefLib::MKL:
        cfg.dispatch_cycles = 14.0;
        break;
      case RefLib::OpenBLAS:
        cfg.dispatch_cycles = 28.0;
        break;
      case RefLib::BLIS:
        cfg.dispatch_cycles = 30.0;
        break;
    }
    return cfg;
}

namespace {

struct LibParams
{
    int interleave = 4;
    bool masked_tail = true;
    int r_fac = 4;
    int c_fac = 2;
};

LibParams
params_for(RefLib lib)
{
    LibParams p;
    switch (lib) {
      case RefLib::Exo2:
        p.interleave = 4;
        p.masked_tail = true;
        p.r_fac = 2;
        p.c_fac = 2;
        break;
      case RefLib::MKL:
        p.interleave = 8;
        p.masked_tail = true;
        p.r_fac = 2;
        p.c_fac = 2;
        break;
      case RefLib::OpenBLAS:
        p.interleave = 8;
        p.masked_tail = false;
        p.r_fac = 2;
        p.c_fac = 2;
        break;
      case RefLib::BLIS:
        p.interleave = 2;
        p.masked_tail = false;
        p.r_fac = 2;
        p.c_fac = 2;
        break;
      case RefLib::Exo:
        p.interleave = 1;
        p.masked_tail = false;
        p.r_fac = 2;
        p.c_fac = 1;
        break;
    }
    return p;
}

std::map<std::string, ProcPtr>&
cache()
{
    static std::map<std::string, ProcPtr> c;
    return c;
}

std::mutex&
cache_mutex()
{
    static std::mutex m;
    return m;
}

}  // namespace

ProcPtr
scheduled_level1(const kernels::KernelDef& k, const Machine& m, RefLib lib)
{
    std::string key =
        "l1:" + k.name + ":" + m.name() + ":" + ref_lib_name(lib);
    {
        std::lock_guard<std::mutex> g(cache_mutex());
        auto it = cache().find(key);
        if (it != cache().end())
            return it->second;
    }
    LibParams prm = params_for(lib);
    ProcPtr s = sched::optimize_level_1(
        k.proc, k.proc->find_loop(k.main_loop), k.prec, m, prm.interleave,
        prm.masked_tail);
    std::lock_guard<std::mutex> g(cache_mutex());
    cache()[key] = s;
    return s;
}

ProcPtr
scheduled_level2(const kernels::KernelDef& k, const Machine& m, RefLib lib)
{
    std::string key =
        "l2:" + k.name + ":" + m.name() + ":" + ref_lib_name(lib);
    {
        std::lock_guard<std::mutex> g(cache_mutex());
        auto it = cache().find(key);
        if (it != cache().end())
            return it->second;
    }
    LibParams prm = params_for(lib);
    ProcPtr s = sched::optimize_level_2_general(
        k.proc, k.proc->find_loop(k.main_loop), k.prec, m, prm.r_fac,
        prm.c_fac, prm.masked_tail);
    std::lock_guard<std::mutex> g(cache_mutex());
    cache()[key] = s;
    return s;
}

ProcPtr
scheduled_skinny(const kernels::KernelDef& k, const Machine& m,
                 int64_t fixed_n)
{
    std::string key = "sk:" + k.name + ":" + m.name() + ":" +
                      std::to_string(fixed_n);
    {
        std::lock_guard<std::mutex> g(cache_mutex());
        auto it = cache().find(key);
        if (it != cache().end())
            return it->second;
    }
    ProcPtr fixed = partial_eval(k.proc, "N", fixed_n);
    ProcPtr s = sched::opt_skinny(fixed, fixed->find_loop(k.main_loop),
                                  k.prec, m, fixed_n);
    std::lock_guard<std::mutex> g(cache_mutex());
    cache()[key] = s;
    return s;
}

}  // namespace baselines
}  // namespace exo2
