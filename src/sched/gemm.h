#ifndef EXO2_SCHED_GEMM_H_
#define EXO2_SCHED_GEMM_H_

/**
 * @file
 * The GEMM scheduling library (Section 6.2.3, Appendix C): a single
 * parameterized micro-kernel generator in the GotoBLAS/BLIS style —
 * register-tiled C, broadcast A, streamed B, all vector instructions —
 * applied under loop tiling.
 */

#include "src/sched/vectorize.h"

namespace exo2 {
namespace sched {

/** Register-tile parameters (Appendix C's hardware constraints). */
struct GemmConfig
{
    int m_r = 4;        ///< micro-tile rows
    int n_r_vecs = 2;   ///< micro-tile width in vector registers
    bool interleave_k = false;
};

/**
 * Generate the register micro-kernel: stages the C micro-tile into
 * vector registers around `k_loop`, vectorizes the update, and unrolls
 * the register loops (Appendix C's `gen_ukernel`).
 */
ProcPtr gen_ukernel(const ProcPtr& p, const Cursor& k_loop,
                    const Cursor& ii_loop, const Cursor& ji_loop,
                    const std::string& c_buf, const ExprPtr& row_base,
                    const ExprPtr& col_base, const Machine& machine,
                    ScalarType precision, const GemmConfig& cfg);

/**
 * Schedule the outer-product SGEMM for a vector machine. Requires the
 * divisibility assertions `M % m_r == 0`, `N % (n_r_vecs*vw) == 0` on
 * the input proc (the benchmark sizes satisfy them; ragged sizes go
 * through the general level-2 path instead).
 */
ProcPtr schedule_sgemm(const ProcPtr& p, const Machine& machine,
                       GemmConfig cfg = GemmConfig());

/** Add the divisibility assertions `schedule_sgemm` needs. */
ProcPtr sgemm_with_asserts(const ProcPtr& p, const Machine& machine,
                           const GemmConfig& cfg = GemmConfig());

}  // namespace sched
}  // namespace exo2

#endif  // EXO2_SCHED_GEMM_H_
