#include "src/sched/halide.h"

#include "src/inspect/bounds.h"
#include "src/ir/builder.h"
#include "src/ir/printer.h"

namespace exo2 {
namespace sched {

namespace {

/** The statement computing buffer `buf` (Halide's nominal reference). */
Cursor
find_store(const ProcPtr& p, const std::string& buf)
{
    auto assigns = p->find_all(buf + "[_] = _");
    if (!assigns.empty())
        return assigns.front();
    return p->find(buf + "[_] += _");
}

/** Enclosing For loops of a statement, outermost first. */
std::vector<Cursor>
compute_nest(const ProcPtr& p, const Cursor& store)
{
    std::vector<Cursor> out;
    const Path& path = store.loc().path;
    for (size_t d = 1; d <= path.size(); d++) {
        Path prefix(path.begin(), path.begin() + static_cast<long>(d));
        if (!is_stmt_list_label(prefix.back().label))
            continue;
        if (d == path.size())
            break;  // the store itself
        StmtPtr s = stmt_at(p, prefix);
        if (s->kind() == StmtKind::For) {
            out.push_back(
                Cursor(p, CursorLoc{CursorKind::Node, prefix, -1}));
        }
    }
    return out;
}

}  // namespace

ProcPtr
H_tile(const ProcPtr& p, const std::string& cons, const std::string& y,
       const std::string& x, const std::string& yi, const std::string& xi,
       int ty, int tx)
{
    ProcPtr cur = p;
    Cursor store = find_store(cur, cons);
    auto nest = compute_nest(cur, store);
    require(nest.size() >= 2, "H_tile: need a 2-D nest for " + cons);
    Cursor ly = nest[nest.size() - 2];
    Cursor lx = nest[nest.size() - 1];
    require(ly.stmt()->iter() == y && lx.stmt()->iter() == x,
            "H_tile: loop names do not match the nest");
    cur = divide_loop(cur, ly, ty, {y, yi}, TailStrategy::Perfect);
    cur = divide_loop(cur, cur->forward(lx), tx, {x, xi},
                      TailStrategy::Perfect);
    // Order: y, x, yi, xi. (Find the consumer's x loop through its own
    // nest — other stages may reuse the iterator name.)
    Cursor store2 = find_store(cur, cons);
    auto nest2 = compute_nest(cur, store2);
    require(nest2.size() >= 4, "H_tile: tiling failed");
    cur = lift_scope(cur, nest2[nest2.size() - 2]);
    return cur;
}

ProcPtr
H_compute_store_at(const ProcPtr& p, const std::string& prod,
                   const std::string& cons, const std::string& at)
{
    ProcPtr cur = p;

    // Fuse level by level, outermost consumer loop down to `at`.
    for (int level = 0;; level++) {
        Cursor cstore = find_store(cur, cons);
        auto cnest = compute_nest(cur, cstore);
        require(static_cast<size_t>(level) < cnest.size(),
                "H_compute_store_at: '" + at + "' not found in nest");
        Cursor target = cnest[static_cast<size_t>(level)];
        std::string it = target.stmt()->iter();

        Cursor pstore = find_store(cur, prod);
        auto pnest = compute_nest(cur, pstore);
        require(!pnest.empty(), "H_compute_store_at: producer has no nest");

        // Which producer dimension does this consumer loop sweep?
        auto bounds = inspect::infer_read_bounds(cur, target, prod);
        int dim = -1;
        int64_t stride = 0;
        for (size_t d = 0; d < bounds.size(); d++) {
            int64_t c = to_affine(bounds[d].lo).coeff_of(it);
            if (c > 0) {
                dim = static_cast<int>(d);
                stride = c;
                break;
            }
        }
        require(dim >= 0, "H_compute_store_at: consumer loop '" + it +
                              "' does not sweep " + prod);
        // The producer loop writing that dimension: its iterator is the
        // store index of that dim.
        StmtPtr ps = pstore.stmt();
        require(static_cast<size_t>(dim) < ps->idx().size(),
                "H_compute_store_at: store arity");
        Cursor ploop;
        bool found = false;
        for (const auto& lp : pnest) {
            if (expr_uses(ps->idx()[static_cast<size_t>(dim)],
                          lp.stmt()->iter())) {
                ploop = lp;
                found = true;
            }
        }
        require(found, "H_compute_store_at: no producer loop for dim");

        // Overlapping tile split of the producer, then surface the tile
        // loop to the top of the producer nest and fuse.
        std::string po = fresh_in(cur, prod + "_" + it + "o");
        std::string pi = prod + "_" + it + "i";
        if (cur->find_all("for " + pi + " in _: _").empty()) {
            // name free
        } else {
            pi = fresh_in(cur, pi);
        }
        ExprPtr n_tiles = target.stmt()->hi();
        cur = divide_with_recompute(cur, ploop, n_tiles, stride, {po, pi});
        // Lift the tile loop over the remaining producer loops.
        for (int guard = 0; guard < 8; guard++) {
            Cursor po_loop = cur->find_loop(po);
            int pos = 0;
            ListAddr addr = list_addr_of(po_loop.loc().path, &pos);
            if (addr.parent.empty())
                break;
            StmtPtr parent = stmt_at(cur, addr.parent);
            if (parent->kind() != StmtKind::For)
                break;
            // Only lift within the producer nest (stop at the fused
            // consumer loops).
            bool in_prod_nest = false;
            Cursor ps2 = find_store(cur, prod);
            for (const auto& lp : compute_nest(cur, ps2)) {
                if (lp.loc().path == addr.parent)
                    in_prod_nest = true;
            }
            if (!in_prod_nest)
                break;
            // The consumer-fused loops contain more than the producer:
            // lift only while the tile loop is the sole statement.
            if (parent->body().size() != 1)
                break;
            cur = lift_scope(cur, po_loop);
        }
        Cursor po_loop = cur->find_loop(po);
        cur = fuse(cur, po_loop, cur->forward(target));
        cur = simplify(cur);
        if (it == at)
            break;
    }

    // store_at: shrink the producer's storage to the tile.
    Cursor alloc = cur->find_alloc(prod);
    for (int guard = 0; guard < 8; guard++) {
        Cursor ac = cur->forward(alloc);
        int pos = 0;
        ListAddr addr = list_addr_of(ac.loc().path, &pos);
        const auto& list = stmt_list_at(cur, addr);
        if (static_cast<size_t>(pos) + 1 >= list.size())
            break;
        StmtPtr next = list[static_cast<size_t>(pos) + 1];
        if (next->kind() != StmtKind::For)
            break;
        // Stop sinking below the `at` loop.
        cur = sink_alloc(cur, ac);
        Cursor ac2 = cur->forward(alloc);
        // Did we just sink into the `at` loop? Then resize and stop.
        int pos2 = 0;
        ListAddr addr2 = list_addr_of(ac2.loc().path, &pos2);
        if (!addr2.parent.empty()) {
            StmtPtr parent = stmt_at(cur, addr2.parent);
            if (parent->kind() == StmtKind::For &&
                parent->iter() == at) {
                break;
            }
        }
    }
    // Shrink storage to the accessed window of the innermost scope.
    {
        Cursor ac = cur->forward(alloc);
        int pos = 0;
        ListAddr addr = list_addr_of(ac.loc().path, &pos);
        if (!addr.parent.empty()) {
            Cursor scope(cur,
                         CursorLoc{CursorKind::Node, addr.parent, -1});
            auto bounds = inspect::infer_bounds(cur, scope, prod);
            for (size_t d = 0; d < bounds.size(); d++) {
                Context ctx = Context::at(cur, ac.loc().path);
                ExprPtr extent = simplify_expr(
                    ctx, bounds[d].hi - bounds[d].lo);
                cur = resize_dim(cur, cur->forward(alloc),
                                 static_cast<int>(d), extent,
                                 bounds[d].lo);
            }
        }
    }
    return simplify(cur);
}

ProcPtr
H_parallel(const ProcPtr& p, const std::string& loop)
{
    return parallelize_loop(p, p->find_loop(loop));
}

ProcPtr
H_vectorize(const ProcPtr& p, const std::string& prod,
            const std::string& loop, const Machine& machine)
{
    ProcPtr cur = p;
    Cursor store = find_store(cur, prod);
    auto nest = compute_nest(cur, store);
    Cursor target;
    bool found = false;
    for (const auto& lp : nest) {
        const std::string& it = lp.stmt()->iter();
        if (it == loop || (it.size() >= loop.size() &&
                           it.compare(it.size() - loop.size(), loop.size(),
                                      loop) == 0)) {
            target = lp;
            found = true;
        }
    }
    require(found, "H_vectorize: no loop matching '" + loop + "' around " +
                       prod);
    VectorizeOpts opts;
    opts.tail = TailStrategy::Cut;
    return vectorize(cur, target, machine, ScalarType::F32, opts);
}

ProcPtr
H_store_in(const ProcPtr& p, const std::string& buf, const MemoryPtr& mem)
{
    ScheduleStats::count_rewrite("set_memory");
    Cursor ac = p->find_alloc(buf);
    // Plain DRAM-kind memories need no vector-shape check.
    return apply_replace_stmt_same_shape(
        p, ac.loc().path, ac.stmt()->with_mem(mem), "H_store_in");
}

ProcPtr
schedule_blur_like_halide(const ProcPtr& blur, const Machine& machine)
{
    // Figure 12, line for line.
    ProcPtr p = blur;
    p = H_tile(p, "blur_y", "y", "x", "yi", "xi", 32, 256);
    p = H_compute_store_at(p, "blur_x", "blur_y", "x");
    p = H_parallel(p, "y");
    p = H_vectorize(p, "blur_x", "xi", machine);
    p = H_vectorize(p, "blur_y", "xi", machine);
    p = H_store_in(p, "blur_x", mem_dram_stack());
    return cleanup(p);
}

ProcPtr
schedule_unsharp_like_halide(const ProcPtr& unsharp, const Machine& machine)
{
    ProcPtr p = unsharp;
    p = H_tile(p, "out", "y", "x", "yi", "xi", 32, 256);
    p = H_compute_store_at(p, "by", "out", "x");
    p = H_compute_store_at(p, "bx", "by", "x");
    p = H_parallel(p, "y");
    p = H_vectorize(p, "bx", "xi", machine);
    p = H_vectorize(p, "by", "xi", machine);
    p = H_vectorize(p, "out", "xi", machine);
    p = H_store_in(p, "bx", mem_dram_stack());
    p = H_store_in(p, "by", mem_dram_stack());
    return cleanup(p);
}

}  // namespace sched
}  // namespace exo2
