#ifndef EXO2_SCHED_HALIDE_H_
#define EXO2_SCHED_HALIDE_H_

/**
 * @file
 * The Halide reproduction library (Section 6.3.2): Halide's nominal,
 * fixed-time referencing scheme and scheduling operations recreated in
 * user code on top of cursors. `H_`-prefixed functions take buffer /
 * iterator *names* and internally resolve them to cursors, bridging
 * Halide's referencing scheme to Exo 2's (Figure 12).
 */

#include <string>

#include "src/machine/machine.h"
#include "src/sched/vectorize.h"

namespace exo2 {
namespace sched {

/**
 * `cons.tile(y, x, yi, xi, ty, tx)`: tile the loop nest computing
 * buffer `cons` (identified nominally, as in Halide).
 */
ProcPtr H_tile(const ProcPtr& p, const std::string& cons,
               const std::string& y, const std::string& x,
               const std::string& yi, const std::string& xi, int ty,
               int tx);

/**
 * `prod.compute_at(cons, at) + store_at`: fuse the producer of buffer
 * `prod` into the consumer nest at loop `at` with recompute at tile
 * edges (Figure 10), then shrink the producer's storage to the tile
 * (Halide's automatic store_at placement).
 */
ProcPtr H_compute_store_at(const ProcPtr& p, const std::string& prod,
                           const std::string& cons, const std::string& at);

/** `parallel(loop)`: mark a loop of the nest parallel. */
ProcPtr H_parallel(const ProcPtr& p, const std::string& loop);

/**
 * `prod.vectorize(loop, width)`: vectorize the named loop of `prod`'s
 * compute nest for `machine`.
 */
ProcPtr H_vectorize(const ProcPtr& p, const std::string& prod,
                    const std::string& loop, const Machine& machine);

/** `store_in(buf, mem)`: place a buffer in a specific memory. */
ProcPtr H_store_in(const ProcPtr& p, const std::string& buf,
                   const MemoryPtr& mem);

/** The complete blur schedule of Figure 12. */
ProcPtr schedule_blur_like_halide(const ProcPtr& blur,
                                  const Machine& machine);

/** The unsharp schedule (tile + compute_at + vectorize). */
ProcPtr schedule_unsharp_like_halide(const ProcPtr& unsharp,
                                     const Machine& machine);

}  // namespace sched
}  // namespace exo2

#endif  // EXO2_SCHED_HALIDE_H_
