#ifndef EXO2_SCHED_COMBINATORS_H_
#define EXO2_SCHED_COMBINATORS_H_

/**
 * @file
 * Higher-order scheduling functions (Section 3.4) and the
 * ELEVATE-style linear-time reframing combinators (Section 6.3.1).
 *
 * Everything here is *user-space library code*: it is built purely
 * from cursors and the trusted primitives, demonstrating the paper's
 * central claim that scheduling automation can grow outside the
 * compiler.
 */

#include <functional>
#include <utility>
#include <vector>

#include "src/primitives/primitives.h"

namespace exo2 {
namespace sched {

/** `cOp = Proc x Cursor -> Proc x Cursor` (Section 3.4). */
using COp = std::function<std::pair<ProcPtr, Cursor>(const ProcPtr&,
                                                     const Cursor&)>;

/** `Op = Proc x Cursor -> Proc` (Section 3.2). */
using Op = std::function<ProcPtr(const ProcPtr&, const Cursor&)>;

/** Lift an Op to a cOp: `lift op = \(p, c). (op(p), c)`. */
COp lift(Op op);

/** Sequential composition of cOps. */
COp seq_ops(std::vector<COp> ops);

/** Apply `op` until it raises SchedulingError/InvalidCursorError. */
COp repeat_op(COp op);

/** Apply `op`; on failure apply `opelse`. */
COp try_else(COp op, COp opelse);

/** Cursor-to-cursor movement used by `nav` / `reframe`. */
using Move = std::function<Cursor(const Cursor&)>;

/** Navigate the frame of reference (forwards the cursor first). */
COp nav(Move move);

/** Run `op` but restore the incoming cursor afterwards. */
COp savec(COp op);

/** `reframe(move, op) = savec(seq(nav(move), op))` (Section 6.3.1). */
COp reframe(Move move, COp op);

// -- Exo-style relative-reference operations, one line each ------------

/** Swap the statement at the cursor with its predecessor. */
ProcPtr reorder_before(const ProcPtr& p, const Cursor& c);

/** Remove the loop enclosing the cursor's statement. */
ProcPtr remove_parent_loop(const ProcPtr& p, const Cursor& c);

/** Fission the enclosing loop right after the cursor's statement. */
ProcPtr fission_after(const ProcPtr& p, const Cursor& c, int n_lifts = 1);

/**
 * Hoist the statement at `c` to the top of the object program by
 * repeatedly reordering, fissioning, and removing enclosing loops
 * (Figures 5b/5c).
 */
ProcPtr hoist_stmt(const ProcPtr& p, const Cursor& c);

/** Hoist every loop-invariant leading statement out of `loop` (LICM). */
ProcPtr hoist_from_loop(const ProcPtr& p, const Cursor& loop);

/** Post-order traversal of For/If nodes under `c` (Section 6.3.1). */
std::vector<Cursor> lrn(const Cursor& c);

/** All innermost loops under the procedure body. */
std::vector<Cursor> innermost_loops(const ProcPtr& p);

/** The innermost loop nested under `loop` (following single chains). */
Cursor get_inner_loop(const ProcPtr& p, const Cursor& loop);

/** Unroll every loop under the proc whose bounds are constants <= cap. */
ProcPtr unroll_all(const ProcPtr& p, int64_t cap = 64);

/** simplify + eliminate_dead_code convenience. */
ProcPtr cleanup(const ProcPtr& p);

}  // namespace sched
}  // namespace exo2

#endif  // EXO2_SCHED_COMBINATORS_H_
