#ifndef EXO2_SCHED_BLAS_H_
#define EXO2_SCHED_BLAS_H_

/**
 * @file
 * The BLAS scheduling library (Sections 6.2.1, 6.2.2, Appendix D):
 * user-space scheduling operators shared across all kernel variants.
 */

#include "src/sched/vectorize.h"

namespace exo2 {
namespace sched {

/**
 * Optimize a BLAS level-1 style loop (Appendix D.1): specialization on
 * a vectorizable size, CSE, vectorization with a (predicated) tail,
 * LICM of broadcasts, and interleaving for ILP.
 */
ProcPtr optimize_level_1(const ProcPtr& p, const Cursor& loop,
                         ScalarType precision, const Machine& machine,
                         int interleave_factor = 4,
                         bool masked_tail = true);

/**
 * Round a loop's bound up to a multiple of `factor`, guarding the body
 * (`for i in (0, N)` -> `for i in (0, ceil(N/f)*f): if i < N`).
 */
ProcPtr round_loop(const ProcPtr& p, const Cursor& loop, int factor);

/**
 * Unroll-and-jam: batch `r_fac` iterations of `outer` into its inner
 * loop (Section 6.2.2's general-matrix strategy). Returns the new proc;
 * the jammed inner loop retains the inner iterator name.
 */
ProcPtr unroll_and_jam(const ProcPtr& p, const Cursor& outer, int r_fac);

/**
 * Adjust a triangular inner loop: round the iterator-dependent bound to
 * a multiple of `factor` with a guard, removing the dependence that
 * blocks unroll-and-jam (Section 6.2.2, Triangular Matrix).
 */
ProcPtr adjust_triang(const ProcPtr& p, const Cursor& inner, int factor);

/**
 * Optimize a BLAS level-2 kernel (Appendix D.2): adjust triangular
 * bounds, unroll-and-jam `r_fac` rows, and run the level-1 pipeline on
 * the resulting inner loop.
 */
ProcPtr optimize_level_2_general(const ProcPtr& p, const Cursor& o_loop,
                                 ScalarType precision,
                                 const Machine& machine, int r_fac,
                                 int c_fac, bool masked_tail = true);

/**
 * The skinny-matrix schedule (Figure 7b): stage the reused vector into
 * registers around the doubly nested loops, vectorize the load / inner
 * math / store loops with masks, and unroll.
 */
ProcPtr opt_skinny(const ProcPtr& p, const Cursor& out_loop,
                   ScalarType precision, const Machine& machine,
                   int64_t max_len);

}  // namespace sched
}  // namespace exo2

#endif  // EXO2_SCHED_BLAS_H_
