#include "src/sched/blas.h"

#include "src/analysis/effects.h"
#include "src/ir/builder.h"
#include "src/ir/printer.h"

namespace exo2 {
namespace sched {

ProcPtr
round_loop(const ProcPtr& p, const Cursor& loop, int factor)
{
    Cursor lc = p->forward(loop);
    StmtPtr s = lc.stmt();
    ExprPtr f = idx_const(factor);
    ExprPtr rounded = (s->hi() + idx_const(factor - 1)) / f * f;
    return extend_loop_bound(p, lc, nullptr, rounded);
}

ProcPtr
adjust_triang(const ProcPtr& p, const Cursor& inner, int factor)
{
    Cursor lc = p->forward(inner);
    StmtPtr s = lc.stmt();
    ExprPtr f = idx_const(factor);
    ExprPtr new_lo;
    ExprPtr new_hi;
    // Round an iterator-dependent lower bound down and the upper bound
    // up so that the bounds are uniform within each group of `factor`
    // consecutive outer iterations (making unroll-and-jam fusible).
    Affine lo = to_affine(s->lo());
    Affine hi = to_affine(s->hi());
    if (!lo.is_const())
        new_lo = (s->lo() - idx_const(factor - 1)) / f * f;
    if (!hi.is_const())
        new_hi = (s->hi() + idx_const(factor - 1)) / f * f;
    if (!new_lo && !new_hi)
        return p;
    return extend_loop_bound(p, lc, new_lo, new_hi);
}

ProcPtr
unroll_and_jam(const ProcPtr& p, const Cursor& outer, int r_fac)
{
    if (r_fac <= 1)
        return p;
    Cursor oc = p->forward(outer);
    std::string base = oc.stmt()->iter();
    std::string io = fresh_in(p, base + "o");
    std::string iu = fresh_in(p, base + "u");
    ProcPtr cur = divide_loop(p, oc, r_fac, {io, iu}, TailStrategy::Cut);
    cur = unroll_loop(cur, cur->find_loop(iu));
    // Jam: fuse the duplicated inner loops pairwise, reordering the
    // interleaved scalar statements out of the way when possible.
    Cursor io_loop = cur->find_loop(io);
    for (int guard = 0; guard < 512; guard++) {
        io_loop = cur->forward(io_loop);
        const auto& body = io_loop.stmt()->body();
        bool changed = false;
        for (size_t k = 0; k + 1 < body.size(); k++) {
            if (body[k]->kind() != StmtKind::For)
                continue;
            if (body[k + 1]->kind() == StmtKind::For) {
                StmtPtr a = body[k];
                StmtPtr b = body[k + 1];
                if (!expr_equal(a->lo(), b->lo()) ||
                    !expr_equal(a->hi(), b->hi())) {
                    continue;
                }
                try {
                    cur = fuse(cur, io_loop.body()[static_cast<int>(k)],
                               io_loop.body()[static_cast<int>(k + 1)]);
                    changed = true;
                    break;
                } catch (const SchedulingError&) {
                    continue;
                }
            }
            // A scalar statement separates two jam candidates: try to
            // move the next For before it.
            if (k + 2 < body.size() &&
                body[k + 2]->kind() == StmtKind::For) {
                try {
                    cur = reorder_before(
                        cur, io_loop.body()[static_cast<int>(k + 2)]);
                    changed = true;
                    break;
                } catch (const SchedulingError&) {
                    continue;
                }
            }
        }
        if (!changed)
            break;
    }
    return cur;
}

ProcPtr
optimize_level_1(const ProcPtr& p, const Cursor& loop,
                 ScalarType precision, const Machine& machine,
                 int interleave_factor, bool masked_tail)
{
    ProcPtr cur = p;
    Cursor lc = cur->forward(loop);

    // CSE repeated loads (mostly effective on jammed level-2 bodies).
    cur = cse_reads(cur, lc);
    lc = cur->forward(loop);

    // Vectorize with a cut tail; predicated machines get a masked tail.
    VectorizeOpts opts;
    opts.tail = (masked_tail && machine.supports_predication())
                    ? TailStrategy::CutAndGuard
                    : TailStrategy::Cut;
    std::string vo;
    cur = vectorize(cur, lc, machine, precision, opts, &vo);

    // LICM: hoist broadcasts and vector allocations out of the main
    // vector loop.
    try {
        Cursor main = cur->find_loop(vo);
        cur = hoist_from_loop(cur, main);
    } catch (const SchedulingError&) {
    }

    // Interleave for ILP.
    if (interleave_factor > 1) {
        try {
            Cursor main = cur->find_loop(vo);
            cur = interleave_loop(cur, main, interleave_factor);
        } catch (const SchedulingError&) {
        }
    }
    return cleanup(cur);
}

namespace {

/** The inner loop's reused 1-D vector (Figure 7b, step 1). */
std::string
get_reused_vector(const ProcPtr& p, const Cursor& in_loop)
{
    StmtPtr loop = in_loop.stmt();
    const std::string& j = loop->iter();
    std::string found;
    std::function<void(const ExprPtr&)> scan_expr =
        [&](const ExprPtr& e) {
            if (!e)
                return;
            if (e->kind() == ExprKind::Read && e->idx().size() == 1 &&
                expr_uses(e->idx()[0], j) &&
                p->find_arg(e->name()) != nullptr) {
                if (found.empty())
                    found = e->name();
            }
            for (const auto& k : e->children())
                scan_expr(k);
        };
    std::function<void(const StmtPtr&)> scan = [&](const StmtPtr& s) {
        if ((s->kind() == StmtKind::Assign ||
             s->kind() == StmtKind::Reduce) &&
            s->idx().size() == 1 && expr_uses(s->idx()[0], j) &&
            p->find_arg(s->name()) != nullptr && found.empty()) {
            found = s->name();
        }
        for (const auto& i : s->idx())
            scan_expr(i);
        scan_expr(s->rhs());
        for (const auto& c : s->body())
            scan(c);
        for (const auto& c : s->orelse())
            scan(c);
    };
    for (const auto& s : loop->body())
        scan(s);
    require(!found.empty(), "opt_skinny: no reused vector found");
    return found;
}

}  // namespace

ProcPtr
opt_skinny(const ProcPtr& p, const Cursor& out_loop, ScalarType precision,
           const Machine& machine, int64_t max_len)
{
    int vw = machine.vec_width(precision);
    ProcPtr cur = p;
    Cursor oc = cur->forward(out_loop);

    // (1) Inspect: inner loop and the reused vector.
    Cursor in_loop = get_inner_loop(cur, oc);
    std::string vec = get_reused_vector(cur, in_loop);
    const ProcArg* va = cur->find_arg(vec);
    require(va && va->dims.size() == 1, "opt_skinny: vector must be 1-D");
    ExprPtr vec_len = va->dims[0];

    // (2) Round the inner loop up to the vector width and stage the
    // reused vector into registers around the doubly nested loops.
    cur = round_loop(cur, in_loop, vw);
    std::vector<WindowDim> win{WindowDim{idx_const(0), vec_len}};
    std::string reg = fresh_in(cur, "var0");
    auto cs = stage_mem(cur, cur->forward(oc), vec, win, reg);
    cur = cs.p;
    // Grow the staging buffer to a multiple of the vector width, split
    // it into registers, and place it in the vector register file.
    ExprPtr rounded =
        (vec_len + idx_const(vw - 1)) / idx_const(vw) * idx_const(vw);
    cur = resize_dim(cur, cs.alloc, 0, rounded, idx_const(0));
    cur = divide_dim(cur, cur->forward(cs.alloc), 0, vw);
    cur = set_memory(cur, cur->forward(cs.alloc), machine.mem_type());

    // (3) Vectorize the load, inner math loop, and store with masks.
    VectorizeOpts mopts;
    mopts.masked = true;
    std::vector<Cursor> loops;
    if (cs.load.is_valid())
        loops.push_back(cs.load);
    loops.push_back(in_loop);
    if (cs.store.is_valid())
        loops.push_back(cs.store);
    for (const Cursor& l : loops) {
        Cursor fl = cur->forward(l);
        if (!fl.is_valid())
            continue;
        // Copy loops produced by stage_mem are unguarded `for (0, N)`;
        // round them first so the masked path applies.
        StmtPtr s = fl.stmt();
        bool guarded = s->body().size() == 1 &&
                       s->body()[0]->kind() == StmtKind::If;
        if (!guarded)
            cur = round_loop(cur, fl, vw);
        cur = vectorize(cur, cur->forward(l), machine, precision, mopts);
    }

    // (4) Specialize: with constant sizes (after partial_eval) the
    // loops fully unroll into register code.
    cur = simplify(cur);
    cur = unroll_all(cur, std::max<int64_t>(max_len, 64));
    return cleanup(cur);
}

ProcPtr
optimize_level_2_general(const ProcPtr& p, const Cursor& o_loop,
                         ScalarType precision, const Machine& machine,
                         int r_fac, int c_fac, bool masked_tail)
{
    ProcPtr cur = p;
    Cursor oc = cur->forward(o_loop);

    // Triangular kernels: make the inner bounds group-uniform first.
    Cursor inner = get_inner_loop(cur, oc);
    if (!(inner == oc)) {
        StmtPtr is = inner.stmt();
        if (expr_uses(is->lo(), oc.stmt()->iter()) ||
            expr_uses(is->hi(), oc.stmt()->iter())) {
            cur = adjust_triang(cur, inner, r_fac);
            oc = cur->forward(o_loop);
        }
    }

    // Batch r_fac rows into the inner loop (unroll-and-jam).
    cur = unroll_and_jam(cur, oc, r_fac);
    cur = simplify(cur);

    // The fused inner loop of the main (divided) copy is now a level-1
    // problem.
    Cursor main_outer;
    try {
        main_outer = cur->find_loop(oc.stmt()->iter() + "o");
    } catch (const SchedulingError&) {
        main_outer = cur->forward(o_loop);
    }
    Cursor in_main = get_inner_loop(cur, main_outer);
    if (!(in_main == main_outer)) {
        cur = optimize_level_1(cur, in_main, precision, machine, c_fac,
                               masked_tail);
    }

    // The tail copy's inner loop is likewise a level-1 problem.
    try {
        Cursor tail_outer = cur->forward(main_outer).next();
        if (tail_outer.stmt()->kind() == StmtKind::For) {
            Cursor in_tail = get_inner_loop(cur, tail_outer);
            if (!(in_tail == tail_outer)) {
                cur = optimize_level_1(cur, in_tail, precision, machine,
                                       c_fac, masked_tail);
            }
        }
    } catch (const InvalidCursorError&) {
    } catch (const SchedulingError&) {
    }
    return cleanup(cur);
}

}  // namespace sched
}  // namespace exo2
