#include "src/sched/combinators.h"

#include "src/analysis/effects.h"

namespace exo2 {
namespace sched {

COp
lift(Op op)
{
    return [op = std::move(op)](const ProcPtr& p, const Cursor& c) {
        ProcPtr p2 = op(p, c);
        return std::make_pair(p2, p2->forward(c));
    };
}

COp
seq_ops(std::vector<COp> ops)
{
    return [ops = std::move(ops)](const ProcPtr& p, const Cursor& c) {
        ProcPtr cur = p;
        Cursor cc = c;
        for (const auto& op : ops) {
            auto [np, nc] = op(cur, cc);
            cur = np;
            cc = nc;
        }
        return std::make_pair(cur, cc);
    };
}

COp
repeat_op(COp op)
{
    return [op = std::move(op)](const ProcPtr& p, const Cursor& c) {
        ProcPtr cur = p;
        Cursor cc = c;
        for (;;) {
            try {
                auto [np, nc] = op(cur, cc);
                cur = np;
                cc = nc;
            } catch (const SchedulingError&) {
                return std::make_pair(cur, cc);
            } catch (const InvalidCursorError&) {
                return std::make_pair(cur, cc);
            }
        }
    };
}

COp
try_else(COp op, COp opelse)
{
    return [op = std::move(op), opelse = std::move(opelse)](
               const ProcPtr& p, const Cursor& c) {
        try {
            return op(p, c);
        } catch (const SchedulingError&) {
            return opelse(p, c);
        } catch (const InvalidCursorError&) {
            return opelse(p, c);
        }
    };
}

COp
nav(Move move)
{
    return [move = std::move(move)](const ProcPtr& p, const Cursor& c) {
        return std::make_pair(p, move(p->forward(c)));
    };
}

COp
savec(COp op)
{
    return [op = std::move(op)](const ProcPtr& p, const Cursor& c) {
        auto [np, nc] = op(p, c);
        (void)nc;
        return std::make_pair(np, np->forward(c));
    };
}

COp
reframe(Move move, COp op)
{
    return savec(seq_ops({nav(std::move(move)), std::move(op)}));
}

ProcPtr
reorder_before(const ProcPtr& p, const Cursor& c)
{
    // reframe(\c. c.expand(1, 0), lift(reorder_stmts)) — Section 6.3.1.
    Cursor cc = p->forward(c);
    return reorder_stmts(p, cc.expand(1, 0));
}

ProcPtr
remove_parent_loop(const ProcPtr& p, const Cursor& c)
{
    Cursor cc = p->forward(c);
    return remove_loop(p, cc.parent());
}

ProcPtr
fission_after(const ProcPtr& p, const Cursor& c, int n_lifts)
{
    Cursor cc = p->forward(c);
    return fission(p, cc.after(), n_lifts);
}

ProcPtr
hoist_stmt(const ProcPtr& p, const Cursor& c)
{
    // Figure 5c:
    //   repeat(try_else(seq(fission_after, remove_parent_loop),
    //                   reorder_before))
    COp schedule = repeat_op(try_else(
        seq_ops({lift([](const ProcPtr& pp, const Cursor& cc) {
                    return fission_after(pp, cc);
                }),
                 lift(remove_parent_loop)}),
        lift(reorder_before)));
    return schedule(p, c).first;
}

ProcPtr
hoist_from_loop(const ProcPtr& p, const Cursor& loop)
{
    // Loop-invariant code motion built from primitives: allocations
    // are lifted with lift_alloc; invariant idempotent statements are
    // reordered to the front, fissioned off, and their loop removed.
    ProcPtr cur = p;
    Cursor anchor = loop;
    for (int guard = 0; guard < 512; guard++) {
        Cursor lc = cur->forward(anchor);
        if (!lc.is_valid() || lc.stmt()->kind() != StmtKind::For)
            return cur;
        StmtPtr s = lc.stmt();
        bool changed = false;
        for (size_t k = 0; k < s->body().size(); k++) {
            const StmtPtr& st = s->body()[k];
            Cursor sc = lc.body()[static_cast<int>(k)];
            if (st->kind() == StmtKind::Alloc) {
                bool indep = true;
                for (const auto& d : st->dims()) {
                    if (expr_uses(d, s->iter()))
                        indep = false;
                }
                if (!indep)
                    continue;
                try {
                    cur = lift_alloc(cur, sc);
                    changed = true;
                    break;
                } catch (const SchedulingError&) {
                    continue;
                }
            }
            if (stmt_uses(st, s->iter()) || !stmt_idempotent(st))
                continue;
            if (s->body().size() < 2)
                break;
            try {
                ProcPtr attempt = cur;
                Cursor moving = sc;
                for (size_t back = k; back > 0; back--) {
                    attempt = reorder_before(attempt, moving);
                    moving = attempt->forward(moving);
                }
                // Now at the front: fission and remove.
                ProcPtr split = fission(attempt, moving.after());
                Cursor head = split->forward(lc);
                Cursor rest = head.next();
                cur = remove_loop(split, head);
                anchor = rest;
                changed = true;
                break;
            } catch (const SchedulingError&) {
                continue;
            } catch (const InvalidCursorError&) {
                continue;
            }
        }
        if (!changed)
            return cur;
    }
    return cur;
}

namespace {

void
lrn_rec(const Cursor& c, std::vector<Cursor>* out)
{
    StmtPtr s = c.stmt();
    if (s->kind() != StmtKind::For && s->kind() != StmtKind::If)
        return;
    for (const Cursor& child : c.body_list())
        lrn_rec(child, out);
    if (s->kind() == StmtKind::If) {
        Cursor blk = c.orelse_block();
        for (int i = 0; i < blk.block_size(); i++)
            lrn_rec(blk[i], out);
    }
    out->push_back(c);
}

}  // namespace

std::vector<Cursor>
lrn(const Cursor& c)
{
    std::vector<Cursor> out;
    lrn_rec(c, &out);
    return out;
}

std::vector<Cursor>
innermost_loops(const ProcPtr& p)
{
    std::vector<Cursor> out;
    for (const Cursor& c : p->find_all("for _ in _: _")) {
        bool has_inner_loop = false;
        for (const Cursor& inner : c.find_all("for _ in _: _")) {
            if (!(inner == c)) {
                has_inner_loop = true;
                break;
            }
        }
        if (!has_inner_loop)
            out.push_back(c);
    }
    return out;
}

Cursor
get_inner_loop(const ProcPtr& p, const Cursor& loop)
{
    Cursor cur = p->forward(loop);
    for (;;) {
        StmtPtr s = cur.stmt();
        Cursor next = cur;
        bool found = false;
        for (size_t i = 0; i < s->body().size(); i++) {
            if (s->body()[i]->kind() == StmtKind::For) {
                next = cur.body()[static_cast<int>(i)];
                found = true;
                break;
            }
            if (s->body()[i]->kind() == StmtKind::If &&
                s->body()[i]->body().size() == 1 &&
                s->body()[i]->body()[0]->kind() == StmtKind::For) {
                next = cur.body()[static_cast<int>(i)].body()[0];
                found = true;
                break;
            }
        }
        if (!found)
            return cur;
        cur = next;
    }
}

ProcPtr
unroll_all(const ProcPtr& p, int64_t cap)
{
    ProcPtr cur = p;
    for (int guard = 0; guard < 4096; guard++) {
        bool changed = false;
        for (const Cursor& c : cur->find_all("for _ in _: _")) {
            StmtPtr s = c.stmt();
            Affine lo = to_affine(s->lo());
            Affine hi = to_affine(s->hi());
            if (!lo.is_const() || !hi.is_const())
                continue;
            int64_t trips = hi.constant - lo.constant;
            if (trips <= 0 || trips > cap)
                continue;
            cur = unroll_loop(cur, c);
            changed = true;
            break;
        }
        if (!changed)
            return cur;
    }
    return cur;
}

ProcPtr
cleanup(const ProcPtr& p)
{
    return eliminate_dead_code(simplify(p));
}

}  // namespace sched
}  // namespace exo2
