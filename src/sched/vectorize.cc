#include "src/sched/vectorize.h"

#include <algorithm>
#include <set>

#include "src/analysis/effects.h"
#include "src/ir/builder.h"
#include "src/ir/printer.h"

namespace exo2 {
namespace sched {

namespace {

bool
is_temp_read(const ExprPtr& e, const std::set<std::string>& temps)
{
    return e->kind() == ExprKind::Read && temps.count(e->name()) > 0;
}

/** Is `e` a valid single-op RHS over temps? */
bool
rhs_is_normal(const ExprPtr& e, const std::set<std::string>& temps,
              bool target_is_temp)
{
    if (is_temp_read(e, temps))
        return true;  // copy / store form
    if (!target_is_temp)
        return false;  // non-temp target must receive a temp read
    if (e->kind() == ExprKind::Const)
        return true;  // zero / broadcast-const
    if (e->kind() == ExprKind::Read)
        return true;  // load or scalar broadcast
    if (e->kind() == ExprKind::BinOp &&
        (e->op() == BinOpKind::Add || e->op() == BinOpKind::Sub ||
         e->op() == BinOpKind::Mul)) {
        return is_temp_read(e->lhs(), temps) &&
               is_temp_read(e->rhs(), temps);
    }
    if (e->kind() == ExprKind::USub)
        return is_temp_read(e->lhs(), temps);
    if (e->kind() == ExprKind::Extern && e->idx().size() == 1)
        return is_temp_read(e->idx()[0], temps);
    return false;
}

/** Path (relative to the statement) of the first operand to bind. */
bool
find_bind_target(const ExprPtr& e, const std::set<std::string>& temps,
                 bool target_is_temp, bool fma_reduce, Path* out)
{
    // For a normal form nothing to do.
    if (rhs_is_normal(e, temps, target_is_temp) && !fma_reduce)
        return false;
    if (fma_reduce) {
        // Want `t += a * b` with a, b temps: bind non-temp operands.
        if (e->kind() == ExprKind::BinOp && e->op() == BinOpKind::Mul) {
            if (!is_temp_read(e->lhs(), temps)) {
                out->push_back({PathLabel::Rhs, -1});
                out->push_back({PathLabel::OpLhs, -1});
                return true;
            }
            if (!is_temp_read(e->rhs(), temps)) {
                out->push_back({PathLabel::Rhs, -1});
                out->push_back({PathLabel::OpRhs, -1});
                return true;
            }
            return false;  // normal fma
        }
        // Not a product: fall through to generic handling.
    }
    if (e->kind() == ExprKind::BinOp) {
        if (!is_temp_read(e->lhs(), temps)) {
            out->push_back({PathLabel::Rhs, -1});
            out->push_back({PathLabel::OpLhs, -1});
            return true;
        }
        if (!is_temp_read(e->rhs(), temps)) {
            out->push_back({PathLabel::Rhs, -1});
            out->push_back({PathLabel::OpRhs, -1});
            return true;
        }
        return false;
    }
    if (e->kind() == ExprKind::USub) {
        if (!is_temp_read(e->lhs(), temps)) {
            out->push_back({PathLabel::Rhs, -1});
            out->push_back({PathLabel::OpLhs, -1});
            return true;
        }
        return false;
    }
    if (e->kind() == ExprKind::Extern) {
        for (size_t i = 0; i < e->idx().size(); i++) {
            if (!is_temp_read(e->idx()[i], temps)) {
                out->push_back({PathLabel::Rhs, -1});
                out->push_back({PathLabel::Idx, static_cast<int>(i)});
                return true;
            }
        }
        return false;
    }
    return false;
}

}  // namespace

ProcPtr
stage_compute(const ProcPtr& p, const Cursor& lane_loop, bool use_fma,
              std::vector<std::string>* temps_out)
{
    ProcPtr cur = p;
    Cursor loop = cur->forward(lane_loop);
    std::set<std::string> temps;
    if (temps_out)
        temps.insert(temps_out->begin(), temps_out->end());
    // Buffers already living in vector registers behave like staged
    // temps: reads of them are register operands, not loads.
    {
        std::function<void(const std::vector<StmtPtr>&)> scan =
            [&](const std::vector<StmtPtr>& b) {
                for (const auto& s : b) {
                    if (s->kind() == StmtKind::Alloc &&
                        s->mem()->is_vector()) {
                        temps.insert(s->name());
                    }
                    scan(s->body());
                    scan(s->orelse());
                }
            };
        scan(cur->body_stmts());
    }
    // Pre-existing lane-local scalars (e.g. the swap/rot temporaries)
    // are per-lane values: treat them as staged temps so they get
    // expanded to vectors.
    {
        std::function<void(const StmtPtr&)> scan = [&](const StmtPtr& s) {
            if (s->kind() == StmtKind::Alloc && s->dims().empty())
                temps.insert(s->name());
            for (const auto& c : s->body())
                scan(c);
            for (const auto& c : s->orelse())
                scan(c);
        };
        for (const auto& s : loop.stmt()->body())
            scan(s);
    }
    int counter = 0;
    auto fresh_temp = [&]() {
        for (;;) {
            std::string nm = "var" + std::to_string(counter++);
            try {
                ensure_unused(cur, nm);
                return nm;
            } catch (const SchedulingError&) {
            }
        }
    };

    // Process the (dynamic) list of statements under the lane loop,
    // including statements nested under a mask guard.
    for (int guard = 0; guard < 1000; guard++) {
        loop = cur->forward(lane_loop);
        // Collect candidate statement cursors: direct body stmts and
        // single-if bodies.
        std::vector<Cursor> work;
        for (const Cursor& c : loop.body_list()) {
            if (c.stmt()->kind() == StmtKind::If) {
                Cursor blk = c.body();
                for (int i = 0; i < blk.block_size(); i++)
                    work.push_back(blk[i]);
            } else {
                work.push_back(c);
            }
        }
        bool changed = false;
        for (const Cursor& sc : work) {
            StmtPtr s = sc.stmt();
            if (s->kind() == StmtKind::Alloc ||
                s->kind() == StmtKind::Pass) {
                continue;
            }
            if (s->kind() != StmtKind::Assign &&
                s->kind() != StmtKind::Reduce) {
                continue;
            }
            bool target_is_temp = temps.count(s->name()) > 0;
            // Reductions into non-temp targets: stage the operands
            // first (so no other access to the target buffer remains),
            // then stage the target itself.
            if (s->kind() == StmtKind::Reduce && !target_is_temp) {
                bool fma_shape = use_fma &&
                                 s->rhs()->kind() == ExprKind::BinOp &&
                                 s->rhs()->op() == BinOpKind::Mul;
                Path rel;
                if (find_bind_target(s->rhs(), temps, /*target_temp=*/true,
                                     fma_shape, &rel)) {
                    Path full = sc.loc().path;
                    full.insert(full.end(), rel.begin(), rel.end());
                    std::string nm = fresh_temp();
                    cur = bind_expr(cur,
                                    Cursor(cur, CursorLoc{CursorKind::Node,
                                                          full, -1}),
                                    nm);
                    temps.insert(nm);
                    changed = true;
                    break;
                }
                if (!fma_shape &&
                    !(s->rhs()->kind() == ExprKind::Read &&
                      temps.count(s->rhs()->name()))) {
                    // Collapse the (already temp-only) rhs to a single
                    // temp so the merged form is one vector op.
                    Path full = sc.loc().path;
                    full.push_back({PathLabel::Rhs, -1});
                    std::string nm = fresh_temp();
                    cur = bind_expr(cur,
                                    Cursor(cur, CursorLoc{CursorKind::Node,
                                                          full, -1}),
                                    nm);
                    temps.insert(nm);
                    changed = true;
                    break;
                }
                std::vector<WindowDim> win;
                for (const auto& i : s->idx())
                    win.push_back(WindowDim{i, nullptr});
                std::string nm = fresh_temp();
                auto res = stage_mem(cur, sc, s->name(), win, nm);
                cur = res.p;
                temps.insert(nm);
                if (!use_fma) {
                    // Figure 4b: merge load + reduce into one assign.
                    Cursor red = res.block[0];
                    cur = merge_writes(cur, res.load, red);
                }
                changed = true;
                break;
            }
            bool fma_reduce = s->kind() == StmtKind::Reduce &&
                              target_is_temp && use_fma &&
                              s->rhs()->kind() == ExprKind::BinOp &&
                              s->rhs()->op() == BinOpKind::Mul;
            if (s->kind() == StmtKind::Reduce && target_is_temp &&
                !fma_reduce &&
                !(s->rhs()->kind() == ExprKind::Read &&
                  temps.count(s->rhs()->name()))) {
                // `t += e` without FMA shape: bind e so the statement
                // becomes an accumulate of a staged vector.
                Path rel{{PathLabel::Rhs, -1}};
                Path full = sc.loc().path;
                full.insert(full.end(), rel.begin(), rel.end());
                std::string nm = fresh_temp();
                cur = bind_expr(cur, Cursor(cur, CursorLoc{
                                                 CursorKind::Node, full,
                                                 -1}),
                                nm);
                temps.insert(nm);
                changed = true;
                break;
            }
            // Assign with non-temp target and compound rhs: bind rhs.
            if (s->kind() == StmtKind::Assign && !target_is_temp &&
                !is_temp_read(s->rhs(), temps)) {
                Path full = sc.loc().path;
                full.push_back({PathLabel::Rhs, -1});
                std::string nm = fresh_temp();
                cur = bind_expr(
                    cur, Cursor(cur, CursorLoc{CursorKind::Node, full, -1}),
                    nm);
                temps.insert(nm);
                changed = true;
                break;
            }
            // Operand staging.
            Path rel;
            if (find_bind_target(s->rhs(), temps, target_is_temp,
                                 fma_reduce, &rel)) {
                Path full = sc.loc().path;
                full.insert(full.end(), rel.begin(), rel.end());
                std::string nm = fresh_temp();
                cur = bind_expr(
                    cur, Cursor(cur, CursorLoc{CursorKind::Node, full, -1}),
                    nm);
                temps.insert(nm);
                changed = true;
                break;
            }
        }
        if (!changed)
            break;
    }
    if (temps_out)
        temps_out->assign(temps.begin(), temps.end());
    return cur;
}

ProcPtr
fission_into_singles(const ProcPtr& p, const Cursor& lane_loop, int vw,
                     const MemoryPtr& mem,
                     const std::vector<std::string>& temps)
{
    ProcPtr cur = p;
    Cursor loop = cur->forward(lane_loop);
    std::string iter = loop.stmt()->iter();

    // 1. Expand staged scalars to per-lane vectors and hoist them out.
    for (const auto& nm : temps) {
        Cursor ac;
        try {
            ac = loop.find(nm + ": _");
        } catch (const SchedulingError&) {
            continue;  // bound elsewhere (e.g. accumulator)
        }
        cur = expand_dim(cur, cur->forward(ac), idx_const(vw), var(iter));
        cur = set_memory(cur, cur->forward(ac), mem);
        // Lift above the guard (if present) and the lane loop.
        for (int lift = 0; lift < 4; lift++) {
            Cursor cc = cur->forward(ac);
            int pos = 0;
            ListAddr addr = list_addr_of(cc.loc().path, &pos);
            if (addr.parent.empty())
                break;
            StmtPtr parent = stmt_at(cur, addr.parent);
            cur = lift_alloc(cur, cc);
            if (parent->kind() == StmtKind::For)
                break;  // now directly above the lane loop
        }
        loop = cur->forward(lane_loop);
    }

    // 2. Distribute a single mask guard over its statements.
    loop = cur->forward(lane_loop);
    if (loop.stmt()->body().size() == 1 &&
        loop.stmt()->body()[0]->kind() == StmtKind::If) {
        cur = split_guard(cur, loop.body()[0]);
        loop = cur->forward(lane_loop);
    }

    // 3. Fission between every pair of statements.
    Cursor work = lane_loop;
    for (int guard = 0; guard < 256; guard++) {
        loop = cur->forward(work);
        if (!loop.is_valid() || loop.stmt()->kind() != StmtKind::For)
            break;
        if (loop.stmt()->body().size() <= 1)
            break;
        cur = fission(cur, loop.body()[0].after());
        // The forwarded lane loop is the first half; continue with the
        // second half.
        Cursor head = cur->forward(work);
        work = head.next();
    }
    return cur;
}

ProcPtr
interleave_loop(const ProcPtr& p, const Cursor& loop, int factor)
{
    if (factor <= 1)
        return p;
    Cursor lc = p->forward(loop);
    std::string base = lc.stmt()->iter();
    std::string io = fresh_in(p, base + "o");
    std::string iu = fresh_in(p, base + "u");
    ProcPtr cur =
        divide_loop(p, lc, factor, {io, iu}, TailStrategy::Cut);
    // Unroll the inner interleave loop of the main copy.
    cur = unroll_loop(cur, cur->find_loop(iu));
    return cur;
}

ProcPtr
cse_reads(const ProcPtr& p, const Cursor& loop)
{
    ProcPtr cur = p;
    for (int guard = 0; guard < 64; guard++) {
        Cursor lc = cur->forward(loop);
        // Count reads by printed form across the loop body.
        std::map<std::string, std::pair<ExprPtr, int>> counts;
        std::function<void(const ExprPtr&)> scan = [&](const ExprPtr& e) {
            if (!e)
                return;
            if (e->kind() == ExprKind::Read && !e->idx().empty()) {
                auto key = print_expr(e);
                auto it = counts.find(key);
                if (it == counts.end())
                    counts[key] = {e, 1};
                else
                    it->second.second++;
            }
            for (const auto& k : e->children())
                scan(k);
        };
        std::function<void(const StmtPtr&)> scan_stmt =
            [&](const StmtPtr& s) {
                scan(s->rhs());
                for (const auto& c : s->body())
                    scan_stmt(c);
                for (const auto& c : s->orelse())
                    scan_stmt(c);
            };
        for (const auto& s : lc.stmt()->body())
            scan_stmt(s);
        ExprPtr target;
        for (const auto& [key, val] : counts) {
            if (val.second > 1) {
                target = val.first;
                break;
            }
        }
        if (!target)
            return cur;
        std::string nm = fresh_in(cur, "cse");
        // Bind inside the guard when the body is a single if (keeps the
        // hoisted load from executing lanes the guard masks off).
        Cursor block = lc.body();
        if (lc.stmt()->body().size() == 1 &&
            lc.stmt()->body()[0]->kind() == StmtKind::If) {
            block = lc.body()[0].body();
        }
        try {
            cur = bind_expr_block(cur, block, target, nm);
        } catch (const SchedulingError&) {
            return cur;  // unsafe to bind: stop
        }
    }
    return cur;
}

namespace {

/** Steps 2-5 on a lane loop (possibly guarded). */
ProcPtr
vectorize_lane(const ProcPtr& p, const Cursor& around,
               const Cursor& lane_loop, const Machine& machine,
               ScalarType precision, bool use_fma)
{
    int vw = machine.vec_width(precision);
    const VecInstrSet& instrs = machine.instrs(precision);
    const MemoryPtr& mem = machine.mem_type();
    ProcPtr cur = p;
    Cursor lane = cur->forward(lane_loop);
    std::vector<std::string> accs;

    // Step 2: parallelize reductions with loop-invariant targets
    // (inside the lane loop directly or under a mask guard).
    {
        std::vector<Cursor> reduces;
        std::function<void(const Cursor&)> scan = [&](const Cursor& c) {
            StmtPtr s = c.stmt();
            if (s->kind() == StmtKind::Reduce) {
                reduces.push_back(c);
                return;
            }
            if (s->kind() == StmtKind::If) {
                Cursor blk = c.body();
                for (int i = 0; i < blk.block_size(); i++)
                    scan(blk[i]);
            }
        };
        for (const Cursor& c : lane.body_list())
            scan(c);
        StmtPtr lane_stmt = lane.stmt();
        for (const Cursor& c : reduces) {
            StmtPtr s = c.stmt();
            bool invariant = !s->idx().empty();
            for (const auto& e : s->idx()) {
                if (expr_uses(e, lane_stmt->iter()))
                    invariant = false;
            }
            if (!invariant)
                continue;
            std::string acc = fresh_in(cur, "acc");
            try {
                cur = parallelize_reduction(cur, cur->forward(around),
                                            cur->forward(lane_loop),
                                            cur->forward(c), acc, vw, mem);
                accs.push_back(acc);
            } catch (const SchedulingError&) {
                continue;
            }
        }
        lane = cur->forward(lane_loop);
    }

    // Step 3: stage computation (accumulators are pre-staged temps).
    std::vector<std::string> temps = accs;
    cur = stage_compute(cur, lane, use_fma, &temps);

    // Step 4: fission into single-statement lane loops.
    cur = fission_into_singles(cur, cur->forward(lane_loop), vw, mem,
                               temps);

    // Step 5: simplify staged indices (e.g. `(4*vo+vi)%4 -> vi`), then
    // replace with hardware instructions.
    cur = simplify(cur);
    cur = replace_all_stmts(cur, instrs.all());
    return cur;
}

}  // namespace

ProcPtr
vectorize(const ProcPtr& p, const Cursor& loop, const Machine& machine,
          ScalarType precision, VectorizeOpts opts,
          std::string* out_loop_name)
{
    int vw = machine.vec_width(precision);
    bool use_fma = opts.use_fma && machine.has_fma();

    ProcPtr cur = p;
    Cursor lc = cur->forward(loop);
    // divide_loop wants a zero-based loop (e.g. upper-triangular inner
    // loops start at a rounded multiple): re-base first.
    if (!affine_is_zero(to_affine(lc.stmt()->lo()))) {
        cur = shift_loop(cur, lc, idx_const(0));
        lc = cur->forward(loop);
    }
    std::string io = fresh_in(cur, "vo");
    std::string ii = fresh_in(cur, "vi");
    if (out_loop_name)
        *out_loop_name = io;

    if (opts.masked) {
        // The loop body is already guarded (`for i in (0, rounded):
        // if i < n: s`); divide perfectly and vectorize with masks.
        cur = divide_loop(cur, lc, vw, {io, ii}, TailStrategy::Perfect);
        Cursor io_loop = cur->find_loop(io);
        return vectorize_lane(cur, io_loop, io_loop.body()[0], machine,
                              precision, use_fma);
    }

    bool pred_tail = opts.tail == TailStrategy::CutAndGuard &&
                     machine.supports_predication();
    TailStrategy div_tail =
        (opts.tail == TailStrategy::Perfect) ? TailStrategy::Perfect
                                             : TailStrategy::Cut;
    cur = divide_loop(cur, lc, vw, {io, ii}, div_tail);
    Cursor io_loop = cur->find_loop(io);
    cur = vectorize_lane(cur, io_loop, io_loop.body()[0], machine,
                         precision, use_fma);
    if (div_tail == TailStrategy::Cut && pred_tail) {
        // Vectorize the cut tail with masked instructions: guard-divide
        // it (one ceil block), then run the masked lane pipeline.
        Cursor tail = cur->find_loop(ii);  // the remaining scalar tail
        std::string to = fresh_in(cur, "vt");
        std::string ti = fresh_in(cur, "vj");
        cur = divide_loop(cur, tail, vw, {to, ti}, TailStrategy::Guard);
        Cursor to_loop = cur->find_loop(to);
        cur = vectorize_lane(cur, to_loop, to_loop.body()[0], machine,
                             precision, use_fma);
    }
    return cur;
}

}  // namespace sched
}  // namespace exo2
