#include "src/sched/gemmini_lib.h"

#include "src/frontend/parser.h"
#include "src/ir/builder.h"
#include "src/ir/printer.h"

namespace exo2 {
namespace sched {

ProcPtr
gemmini_matmul_kernel()
{
    static ProcPtr p = parse_proc(R"(
def matmul_on_gemmini(N: size, M: size, scale: f32, A: i8[N, 512] @ DRAM, B: i8[512, M] @ DRAM, C: i8[N, M] @ DRAM):
    assert N % 16 == 0
    assert M % 16 == 0
    assert N >= 16
    assert M >= 16
    for i in seq(0, N):
        for j in seq(0, M):
            res: i32 @ DRAM
            res = 0.0
            for k in seq(0, 512):
                res += A[i, k] * B[k, j]
            C[i, j] = clamp_i8(acc_scale(res, scale))
)");
    return p;
}

namespace {

/** Insert the matching configuration call before every `do_*` call
 *  (the naive compiler pattern of Figure 5a). */
ProcPtr
insert_configs(const ProcPtr& p)
{
    const GemminiInstrSet& g = gemmini_instrs();
    struct Entry
    {
        ProcPtr target;
        ProcPtr config;
        std::vector<ExprPtr> args;
    };
    std::vector<Entry> table = {
        {g.do_ld_block_id1, g.config_ld_id1, {Expr::make_stride("A", 0)}},
        {g.do_ld_block_id2, g.config_ld_id2, {Expr::make_stride("B", 0)}},
        {g.do_matmul_acc, g.config_matmul, {idx_const(1)}},
        {g.do_zero_acc, g.config_zero, {idx_const(1)}},
        {g.do_st_acc, g.config_st_acc, {Expr::make_stride("C", 0)}},
    };
    ProcPtr cur = p;
    for (const auto& e : table) {
        auto calls = cur->find_all(e.target->name() + "(_)");
        for (const auto& c : calls) {
            Cursor fc = cur->forward(c);
            cur = insert_config_call(cur, fc.before(), e.config, e.args);
        }
    }
    return cur;
}

}  // namespace

ProcPtr
hoist_all_configs(const ProcPtr& p)
{
    ProcPtr cur = p;
    // Hoist each configuration call with the Figure 5c program.
    for (int guard = 0; guard < 64; guard++) {
        bool changed = false;
        for (const auto& c : cur->find_all("_(_)")) {
            StmtPtr s = c.stmt();
            if (!s->callee() || !s->callee()->is_instr() ||
                s->callee()->instr()->instr_class != "config") {
                continue;
            }
            // Skip configs already at the top level.
            if (c.loc().path.size() == 1)
                continue;
            ProcPtr next = hoist_stmt(cur, c);
            if (next != cur) {
                cur = next;
                changed = true;
                break;
            }
        }
        if (!changed)
            break;
    }
    // Deduplicate: keep the first call per (config, args) spelling.
    for (int guard = 0; guard < 256; guard++) {
        bool changed = false;
        std::vector<std::string> seen;
        for (const auto& c : cur->find_all("_(_)")) {
            StmtPtr s = c.stmt();
            if (!s->callee() || !s->callee()->is_instr() ||
                s->callee()->instr()->instr_class != "config") {
                continue;
            }
            if (c.loc().path.size() != 1)
                continue;  // only top-level duplicates
            std::string key = print_stmt(s);
            if (std::find(seen.begin(), seen.end(), key) != seen.end()) {
                cur = delete_config_call(cur, c);
                changed = true;
                break;
            }
            seen.push_back(key);
        }
        if (!changed)
            break;
    }
    return cur;
}

ProcPtr
schedule_gemmini_matmul(const ProcPtr& p, GemminiScheduleOpts opts)
{
    const GemminiInstrSet& g = gemmini_instrs();
    ProcPtr cur = p;

    // ---- Tiling onto the 16x16 array --------------------------------
    cur = divide_loop(cur, "i", 16, {"io", "ii"}, TailStrategy::Perfect);
    cur = divide_loop(cur, "j", 16, {"jo", "ji"}, TailStrategy::Perfect);
    cur = lift_scope(cur, "jo");  // io, jo, ii, ji
    cur = divide_loop(cur, "k", 16, {"ko", "ki"}, TailStrategy::Perfect);

    // ---- Accumulator tile -------------------------------------------
    Cursor res = cur->find_alloc("res");
    cur = expand_dim(cur, res, idx_const(16), var("ji"));
    cur = expand_dim(cur, cur->forward(res), idx_const(16), var("ii"));
    cur = lift_alloc(cur, cur->forward(res), 2);
    cur = set_memory(cur, cur->forward(res), mem_gemm_accum());

    // ---- Split zero / matmul / store into separate 16x16 nests ------
    Cursor zero_stmt = cur->find("res[_] = 0.0");
    cur = fission(cur, zero_stmt.after(), 2);
    Cursor ko = cur->find_loop("ko");
    cur = fission(cur, ko.after(), 2);
    // Lift ko to the top of the matmul nest: ko, ii, ji, ki.
    cur = lift_scope(cur, cur->find_loop("ko"));
    cur = lift_scope(cur, cur->find_loop("ko"));

    if (opts.stage_operands) {
        // ---- A through the scratchpad (blocked 4x16x16 loads) -------
        // A's tile depends only on io: stage around the jo loop.
        Cursor jo = cur->find_loop("jo");
        std::vector<WindowDim> awin{
            WindowDim{idx_const(16) * var("io"),
                      idx_const(16) * var("io") + idx_const(16)},
            WindowDim{idx_const(0), idx_const(512)}};
        auto acs = stage_mem(cur, jo, "A", awin, "A_tmp");
        cur = acs.p;
        cur = divide_dim(cur, cur->forward(acs.alloc), 1, 16);
        cur = rearrange_dim(cur, cur->forward(acs.alloc), {1, 0, 2});
        cur = set_memory(cur, cur->forward(acs.alloc), mem_gemm_scratch());
        {
            // Restructure the copy loop into the blocked-load shape.
            Cursor load = cur->forward(acs.load);
            Cursor inner = load.body()[0];
            cur = divide_loop(cur, inner, 64, {"ab", "aw"},
                              TailStrategy::Perfect);
            cur = divide_loop(cur, cur->find_loop("aw"), 16, {"ablk", "ac"},
                              TailStrategy::Perfect);
            cur = lift_scope(cur, cur->find_loop("ab"));
            cur = lift_scope(cur, cur->find_loop("ablk"));
            cur = simplify(cur);
        }

        // ---- B through the scratchpad --------------------------------
        // B's tile depends on jo: stage around the matmul ko nest.
        Cursor mm = cur->find_loop("ko");
        std::vector<WindowDim> bwin{
            WindowDim{idx_const(0), idx_const(512)},
            WindowDim{idx_const(16) * var("jo"),
                      idx_const(16) * var("jo") + idx_const(16)}};
        auto bcs = stage_mem(cur, mm, "B", bwin, "B_tmp");
        cur = bcs.p;
        cur = divide_dim(cur, cur->forward(bcs.alloc), 0, 16);
        cur = set_memory(cur, cur->forward(bcs.alloc), mem_gemm_scratch());
        {
            Cursor load = cur->forward(bcs.load);
            cur = divide_loop(cur, load, 64, {"bb", "bw"},
                              TailStrategy::Perfect);
            cur = divide_loop(cur, cur->find_loop("bw"), 16, {"bblk", "br"},
                              TailStrategy::Perfect);
            cur = simplify(cur);
        }
    }

    // ---- Map to Gemmini instructions --------------------------------
    cur = simplify(cur);
    cur = replace_all_stmts(cur, {g.do_matmul_acc, g.do_ld_block_id1,
                                  g.do_ld_block_id2, g.do_zero_acc,
                                  g.do_st_acc});

    // ---- Configuration (Figure 5) ------------------------------------
    cur = insert_configs(cur);
    if (opts.hoist_configs)
        cur = hoist_all_configs(cur);
    return cleanup(cur);
}

}  // namespace sched
}  // namespace exo2
