#ifndef EXO2_SCHED_GEMMINI_LIB_H_
#define EXO2_SCHED_GEMMINI_LIB_H_

/**
 * @file
 * The Gemmini scheduling library (Section 6.1.2, Appendix B):
 * accelerator-specific optimization passes written entirely in user
 * code — tiling onto the 16x16 systolic array, scratchpad staging with
 * blocked DMA loads, instruction mapping, and configuration hoisting
 * via the Figure 5c combinator program.
 */

#include "src/machine/gemmini.h"
#include "src/sched/combinators.h"

namespace exo2 {
namespace sched {

/** The matmul object code of Appendix B (K fixed at 512). */
ProcPtr gemmini_matmul_kernel();

/** Options for the Gemmini matmul schedule. */
struct GemminiScheduleOpts
{
    bool hoist_configs = true;   ///< Figure 5 configuration hoisting
    bool stage_operands = true;  ///< scratchpad staging w/ blocked loads
};

/**
 * Schedule the Appendix B matmul for the Gemmini model: tile to 16x16,
 * accumulate in the accumulator, stage A/B through the scratchpad with
 * 4-block DMA loads, map to instructions, and hoist configuration.
 */
ProcPtr schedule_gemmini_matmul(
    const ProcPtr& p, GemminiScheduleOpts opts = GemminiScheduleOpts());

/**
 * Hoist every configuration instruction as far up as possible using
 * the higher-order schedule of Figure 5c, then deduplicate.
 */
ProcPtr hoist_all_configs(const ProcPtr& p);

}  // namespace sched
}  // namespace exo2

#endif  // EXO2_SCHED_GEMMINI_LIB_H_
