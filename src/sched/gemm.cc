#include "src/sched/gemm.h"

#include "src/frontend/parser.h"
#include "src/ir/builder.h"
#include "src/ir/printer.h"

namespace exo2 {
namespace sched {

ProcPtr
sgemm_with_asserts(const ProcPtr& p, const Machine& machine,
                   const GemmConfig& cfg)
{
    int vw = machine.vec_width(ScalarType::F32);
    int n_r = cfg.n_r_vecs * vw;
    ProcPtr cur = p;
    cur = cur->with_assertion(
        eq(var("M") % idx_const(cfg.m_r), idx_const(0)));
    cur = cur->with_assertion(eq(var("N") % idx_const(n_r), idx_const(0)));
    return cur;
}

ProcPtr
gen_ukernel(const ProcPtr& p, const Cursor& k_loop, const Cursor& ii_loop,
            const Cursor& ji_loop, const std::string& c_buf,
            const ExprPtr& row_base, const ExprPtr& col_base,
            const Machine& machine, ScalarType precision,
            const GemmConfig& cfg)
{
    int vw = machine.vec_width(precision);
    int n_r = cfg.n_r_vecs * vw;
    ProcPtr cur = p;

    // Stage the C micro-tile into registers around the k loop.
    std::vector<WindowDim> win;
    win.push_back(
        WindowDim{row_base, row_base + idx_const(cfg.m_r)});
    win.push_back(WindowDim{col_base, col_base + idx_const(n_r)});
    std::string reg = fresh_in(cur, "C_reg");
    auto cs = stage_mem(cur, cur->forward(k_loop), c_buf, win, reg);
    cur = cs.p;
    cur = divide_dim(cur, cur->forward(cs.alloc), 1, vw);
    cur = set_memory(cur, cur->forward(cs.alloc), machine.mem_type());

    // Vectorize the C load / store copy loops and the update loop.
    VectorizeOpts opts;
    opts.tail = TailStrategy::Perfect;
    for (const Cursor& c : {cs.load, cs.store}) {
        if (!c.is_valid())
            continue;
        Cursor inner = get_inner_loop(cur, cur->forward(c));
        cur = vectorize(cur, inner, machine, precision, opts);
    }
    cur = vectorize(cur, cur->forward(ji_loop), machine, precision, opts);
    cur = simplify(cur);

    // Hoist the A broadcast and register allocations where possible,
    // then unroll the register loops.
    try {
        Cursor kk = cur->forward(k_loop);
        cur = hoist_from_loop(cur, kk);
    } catch (const SchedulingError&) {
    } catch (const InvalidCursorError&) {
    }
    (void)ii_loop;
    cur = unroll_all(cur, std::max(cfg.m_r, n_r));
    return cleanup(cur);
}

ProcPtr
schedule_sgemm(const ProcPtr& p, const Machine& machine, GemmConfig cfg)
{
    ScalarType prec = ScalarType::F32;
    int vw = machine.vec_width(prec);
    int n_r = cfg.n_r_vecs * vw;
    ProcPtr cur = p;

    // Initial order (Appendix C): k outer, i, j inner. Build the
    // GotoBLAS nest io, jo, k, ii, ji.
    cur = divide_loop(cur, "i", cfg.m_r, {"io", "ii"},
                      TailStrategy::Perfect);
    cur = divide_loop(cur, "j", n_r, {"jo", "ji"}, TailStrategy::Perfect);
    cur = lift_scope(cur, "jo");   // k, io, jo, ii, ji
    cur = lift_scope(cur, "io");   // io, k, jo, ii, ji
    cur = lift_scope(cur, "jo");   // io, jo, k, ii, ji

    Cursor k = cur->find_loop("k");
    Cursor ii = cur->find_loop("ii");
    Cursor ji = cur->find_loop("ji");
    cur = gen_ukernel(cur, k, ii, ji, "C",
                      idx_const(cfg.m_r) * var("io"),
                      idx_const(n_r) * var("jo"), machine, prec, cfg);
    return cur;
}

}  // namespace sched
}  // namespace exo2
