#ifndef EXO2_SCHED_VECTORIZE_H_
#define EXO2_SCHED_VECTORIZE_H_

/**
 * @file
 * The user-defined `vectorize` scheduling operator (Section 6.1.1),
 * parameterized over vector width, precision, memory type, and vector
 * instructions so it can be instantiated for many machines.
 *
 * Steps (paper): (1) expose parallelism by dividing the loop,
 * (2) parallelize reductions, (3) stage the computation into single-op
 * assignments (FMA-aware, Figure 4), (4) fission into single-statement
 * loops, and (5) replace them with hardware instructions.
 */

#include <string>
#include <vector>

#include "src/machine/machine.h"
#include "src/sched/combinators.h"

namespace exo2 {
namespace sched {

/** Options controlling `vectorize`. */
struct VectorizeOpts
{
    TailStrategy tail = TailStrategy::Cut;
    /** Use FMA-style staging (Figure 4c) when the machine has FMA. */
    bool use_fma = true;
    /** The loop is pre-guarded (`for i: if i < n: s`) and should be
     *  vectorized with masked instructions (opt_skinny path). */
    bool masked = false;
};

/**
 * Vectorize `loop` for `machine` at `precision`. Returns the new proc;
 * the vectorized outer loop keeps a fresh name discoverable via
 * `find_loop(out_loop_name)` when provided.
 */
ProcPtr vectorize(const ProcPtr& p, const Cursor& loop,
                  const Machine& machine, ScalarType precision,
                  VectorizeOpts opts = VectorizeOpts(),
                  std::string* out_loop_name = nullptr);

/**
 * Stage the body of `lane_loop` into single-operation statements
 * (step 3). Exposed for tests and for the GEMM library.
 */
ProcPtr stage_compute(const ProcPtr& p, const Cursor& lane_loop,
                      bool use_fma, std::vector<std::string>* temps);

/**
 * Expand the staged scalars to vectors, hoist them, and fission the
 * lane loop into single-statement loops (step 4).
 */
ProcPtr fission_into_singles(const ProcPtr& p, const Cursor& lane_loop,
                             int vw, const MemoryPtr& mem,
                             const std::vector<std::string>& temps);

/**
 * Interleave (unroll-and-accumulate) `loop` by `factor` for ILP: the
 * loop is divided by `factor` (cut tail) and the inner copies unrolled.
 */
ProcPtr interleave_loop(const ProcPtr& p, const Cursor& loop, int factor);

/** CSE repeated buffer reads across the statements of a loop body. */
ProcPtr cse_reads(const ProcPtr& p, const Cursor& loop);

}  // namespace sched
}  // namespace exo2

#endif  // EXO2_SCHED_VECTORIZE_H_
