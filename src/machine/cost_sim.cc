#include "src/machine/cost_sim.h"

#include <cstring>
#include <memory>
#include <unordered_map>

#include "src/cursor/accel.h"
#include "src/ir/errors.h"
#include "src/ir/interner.h"
#include "src/ir/printer.h"
#include "src/obs/trace.h"

namespace exo2 {

namespace {

/** One level of set-associative LRU cache. */
class CacheLevel
{
  public:
    CacheLevel(int size_kb, int assoc, int line_bytes) : assoc_(assoc)
    {
        int lines = size_kb * 1024 / line_bytes;
        sets_ = lines / assoc;
        if (sets_ < 1)
            sets_ = 1;
        tags_.assign(static_cast<size_t>(sets_) * assoc_, UINT64_MAX);
        ages_.assign(tags_.size(), 0);
    }

    /** Access one line address; returns true on hit. */
    bool access(uint64_t line)
    {
        uint64_t set = line % static_cast<uint64_t>(sets_);
        size_t base = static_cast<size_t>(set) * assoc_;
        tick_++;
        for (int w = 0; w < assoc_; w++) {
            if (tags_[base + w] == line) {
                ages_[base + w] = tick_;
                return true;
            }
        }
        size_t victim = base;
        for (int w = 1; w < assoc_; w++) {
            if (ages_[base + w] < ages_[victim])
                victim = base + w;
        }
        tags_[victim] = line;
        ages_[victim] = tick_;
        return false;
    }

  private:
    int assoc_;
    int sets_;
    std::vector<uint64_t> tags_;
    std::vector<uint64_t> ages_;
    uint64_t tick_ = 0;
};

/** Strided address view of a simulated buffer. */
struct AddrView
{
    uint64_t base = 0;  ///< byte address
    bool dram = false;  ///< only DRAM-kind memories hit the caches
    int elem_bytes = 4;
    std::vector<int64_t> dims;
    std::vector<int64_t> strides;  ///< in elements

    static AddrView whole(uint64_t base, bool dram, int elem_bytes,
                          std::vector<int64_t> dims)
    {
        AddrView v;
        v.base = base;
        v.dram = dram;
        v.elem_bytes = elem_bytes;
        v.dims = std::move(dims);
        v.strides.assign(v.dims.size(), 1);
        int64_t s = 1;
        for (size_t d = v.dims.size(); d-- > 0;) {
            v.strides[d] = s;
            s *= v.dims[d];
        }
        return v;
    }

    uint64_t byte_at(const std::vector<int64_t>& idx) const
    {
        int64_t off = 0;
        for (size_t d = 0; d < idx.size() && d < strides.size(); d++)
            off += idx[d] * strides[d];
        return base + static_cast<uint64_t>(off * elem_bytes);
    }
};

struct Binding
{
    enum class Kind { Index, Scalar, Buf } kind = Kind::Index;
    int64_t index = 0;
    double scalar = 0.0;
    AddrView view;
};

using Frame = std::map<std::string, Binding>;

class CostSim
{
  public:
    explicit CostSim(const CostConfig& cfg)
        : cfg_(cfg), l1_(cfg.l1_kb, cfg.l1_assoc, cfg.line_bytes),
          l2_(cfg.l2_kb, cfg.l2_assoc, cfg.line_bytes) {}

    CostResult result;

    uint64_t alloc_bytes(int64_t bytes)
    {
        uint64_t a = heap_;
        heap_ += static_cast<uint64_t>((bytes + 63) & ~63ll);
        return a;
    }

    void run(const ProcPtr& p, Frame frame)
    {
        exec_block(frame, p->body_stmts());
    }

    // -- Evaluation (control-relevant values only) -----------------------

    double eval(Frame& f, const ExprPtr& e)
    {
        switch (e->kind()) {
          case ExprKind::Const:
            return e->const_value();
          case ExprKind::Read: {
            auto it = f.find(e->name());
            if (it == f.end()) {
                throw InternalError("cost_sim: unbound name '" +
                                    e->name() + "'");
            }
            Binding& b = it->second;
            if (b.kind == Binding::Kind::Index)
                return static_cast<double>(b.index);
            if (b.kind == Binding::Kind::Scalar)
                return b.scalar;
            // Data read: charge memory, value unknown (0).
            touch_read(f, e);
            return 0.0;
          }
          case ExprKind::BinOp: {
            double l = eval(f, e->lhs());
            double r = eval(f, e->rhs());
            switch (e->op()) {
              case BinOpKind::Add: return l + r;
              case BinOpKind::Sub: return l - r;
              case BinOpKind::Mul: return l * r;
              case BinOpKind::Div: {
                if (e->type() == ScalarType::Index) {
                    int64_t li = static_cast<int64_t>(l);
                    int64_t ri = static_cast<int64_t>(r);
                    if (ri == 0)
                        throw InternalError("cost_sim: div by zero");
                    int64_t q = li / ri;
                    if ((li % ri != 0) && ((li < 0) != (ri < 0)))
                        q -= 1;
                    return static_cast<double>(q);
                }
                return r != 0 ? l / r : 0;
              }
              case BinOpKind::Mod: {
                int64_t li = static_cast<int64_t>(l);
                int64_t ri = static_cast<int64_t>(r);
                if (ri == 0)
                    throw InternalError("cost_sim: mod by zero");
                int64_t m = li % ri;
                if (m != 0 && ((li < 0) != (ri < 0)))
                    m += ri;
                return static_cast<double>(m);
              }
              case BinOpKind::Lt: return l < r ? 1 : 0;
              case BinOpKind::Le: return l <= r ? 1 : 0;
              case BinOpKind::Gt: return l > r ? 1 : 0;
              case BinOpKind::Ge: return l >= r ? 1 : 0;
              case BinOpKind::Eq: return l == r ? 1 : 0;
              case BinOpKind::Ne: return l != r ? 1 : 0;
              case BinOpKind::And: return (l != 0 && r != 0) ? 1 : 0;
              case BinOpKind::Or: return (l != 0 || r != 0) ? 1 : 0;
            }
            throw InternalError("cost_sim: bad binop");
          }
          case ExprKind::USub:
            return -eval(f, e->lhs());
          case ExprKind::Stride: {
            auto it = f.find(e->name());
            if (it == f.end() || it->second.kind != Binding::Kind::Buf)
                throw InternalError("cost_sim: stride of non-buffer");
            size_t d = static_cast<size_t>(e->stride_dim());
            return static_cast<double>(it->second.view.strides.at(d));
          }
          case ExprKind::ReadConfig:
            return config_[e->name() + "." + e->field()];
          case ExprKind::Extern: {
            for (const auto& a : e->idx())
                eval(f, a);
            return 0.0;
          }
          case ExprKind::Window:
            throw InternalError("cost_sim: window outside call");
        }
        throw InternalError("cost_sim: unknown expr");
    }

    int64_t eval_int(Frame& f, const ExprPtr& e)
    {
        return static_cast<int64_t>(eval(f, e));
    }

    /** Charge a data read `buf[idx]`. */
    void touch_read(Frame& f, const ExprPtr& e)
    {
        auto it = f.find(e->name());
        Binding& b = it->second;
        if (!b.view.dram)
            return;  // registers / scratchpad: free
        std::vector<int64_t> idx;
        idx.reserve(e->idx().size());
        for (const auto& i : e->idx())
            idx.push_back(eval_int(f, i));
        touch(b.view.byte_at(idx), b.view.elem_bytes);
    }

    void touch(uint64_t byte_addr, int bytes)
    {
        result.dram_accesses++;
        result.cycles += cfg_.l1_hit_cycles;
        uint64_t first =
            byte_addr / static_cast<uint64_t>(cfg_.line_bytes);
        uint64_t last = (byte_addr + static_cast<uint64_t>(bytes) - 1) /
                        static_cast<uint64_t>(cfg_.line_bytes);
        for (uint64_t line = first; line <= last; line++) {
            if (!l1_.access(line)) {
                result.l1_misses++;
                result.cycles += cfg_.l1_miss_cycles;
                if (!l2_.access(line)) {
                    result.l2_misses++;
                    result.cycles += cfg_.l2_miss_cycles;
                }
            }
        }
    }

    /** Resolve a call argument to an address view. */
    AddrView eval_view(Frame& f, const ExprPtr& e)
    {
        if (e->kind() == ExprKind::Read && e->idx().empty()) {
            auto it = f.find(e->name());
            if (it == f.end() || it->second.kind != Binding::Kind::Buf)
                throw InternalError("cost_sim: not a buffer: " + e->name());
            return it->second.view;
        }
        if (e->kind() != ExprKind::Window)
            throw InternalError("cost_sim: expected buffer/window arg");
        auto it = f.find(e->name());
        if (it == f.end() || it->second.kind != Binding::Kind::Buf)
            throw InternalError("cost_sim: window of non-buffer");
        const AddrView& base = it->second.view;
        AddrView v;
        v.dram = base.dram;
        v.elem_bytes = base.elem_bytes;
        int64_t off = 0;
        for (size_t d = 0; d < base.dims.size(); d++) {
            const WindowDim& wd = e->window_dims().at(d);
            int64_t lo = eval_int(f, wd.lo);
            off += lo * base.strides[d];
            if (!wd.is_point()) {
                int64_t hi = eval_int(f, wd.hi);
                v.dims.push_back(hi - lo);
                v.strides.push_back(base.strides[d]);
            }
        }
        v.base = base.base +
                 static_cast<uint64_t>(off * base.elem_bytes);
        return v;
    }

    /** Charge the whole footprint of a DRAM window (DMA-style). */
    void touch_view(const AddrView& v)
    {
        if (!v.dram)
            return;
        // Iterate rows of the innermost contiguous run.
        if (v.dims.empty()) {
            touch(v.base, v.elem_bytes);
            return;
        }
        std::vector<int64_t> idx(v.dims.size(), 0);
        int64_t inner = v.dims.back();
        for (;;) {
            uint64_t row = v.byte_at(idx);
            int64_t stride = v.strides.back();
            if (stride == 1) {
                touch(row, static_cast<int>(inner * v.elem_bytes));
            } else {
                for (int64_t k = 0; k < inner; k++) {
                    touch(row + static_cast<uint64_t>(
                                     k * stride * v.elem_bytes),
                          v.elem_bytes);
                }
            }
            // Advance all but the innermost dim.
            size_t d = v.dims.size() - 1;
            for (;;) {
                if (d == 0)
                    return;
                d--;
                idx[d]++;
                if (idx[d] < v.dims[d])
                    break;
                idx[d] = 0;
                if (d == 0)
                    return;
            }
        }
    }

    void exec_block(Frame& f, const std::vector<StmtPtr>& block)
    {
        for (const auto& s : block)
            exec(f, s);
    }

    void exec(Frame& f, const StmtPtr& s)
    {
        switch (s->kind()) {
          case StmtKind::Assign:
          case StmtKind::Reduce: {
            result.cycles += cfg_.scalar_op * cfg_.host_penalty;
            eval(f, s->rhs());
            auto it = f.find(s->name());
            if (it == f.end()) {
                throw InternalError("cost_sim: unbound target '" +
                                    s->name() + "'");
            }
            Binding& b = it->second;
            if (b.kind == Binding::Kind::Buf && b.view.dram) {
                std::vector<int64_t> idx;
                for (const auto& i : s->idx())
                    idx.push_back(eval_int(f, i));
                touch(b.view.byte_at(idx), b.view.elem_bytes);
            }
            return;
          }
          case StmtKind::Alloc: {
            Binding b;
            std::vector<int64_t> dims;
            int64_t n = 1;
            for (const auto& d : s->dims()) {
                dims.push_back(eval_int(f, d));
                n *= dims.back();
            }
            if (dims.empty()) {
                b.kind = Binding::Kind::Scalar;
                f[s->name()] = b;
                return;
            }
            b.kind = Binding::Kind::Buf;
            bool dram = s->mem()->kind() == MemoryKind::Dram;
            // Stable addresses for loop-local allocations.
            uint64_t base;
            auto key = s.get();
            auto ait = alloc_addr_.find(key);
            if (ait != alloc_addr_.end()) {
                base = ait->second;
            } else {
                base = alloc_bytes(n * type_size_bytes(s->type()));
                alloc_addr_[key] = base;
            }
            b.view = AddrView::whole(base, dram,
                                     type_size_bytes(s->type()), dims);
            f[s->name()] = b;
            return;
          }
          case StmtKind::For: {
            int64_t lo = eval_int(f, s->lo());
            int64_t hi = eval_int(f, s->hi());
            Binding iter;
            iter.kind = Binding::Kind::Index;
            auto saved = f.count(s->iter())
                             ? std::optional<Binding>(f[s->iter()])
                             : std::nullopt;
            for (int64_t i = lo; i < hi; i++) {
                result.cycles += cfg_.loop_overhead;
                iter.index = i;
                f[s->iter()] = iter;
                exec_block(f, s->body());
            }
            if (saved)
                f[s->iter()] = *saved;
            else
                f.erase(s->iter());
            return;
          }
          case StmtKind::If: {
            result.cycles += 0.5;  // branch
            if (eval(f, s->cond()) != 0.0)
                exec_block(f, s->body());
            else
                exec_block(f, s->orelse());
            return;
          }
          case StmtKind::Pass:
            return;
          case StmtKind::Call: {
            const ProcPtr& callee = s->callee();
            if (!callee)
                throw InternalError("cost_sim: unresolved call");
            if (callee->is_instr()) {
                const InstrInfo& info = *callee->instr();
                result.instr_calls++;
                result.cycles += info.cycles;
                if (info.instr_class == "config")
                    result.config_writes++;
                // Charge DRAM traffic of buffer arguments.
                for (size_t i = 0; i < s->args().size(); i++) {
                    const ProcArg& formal = callee->args()[i];
                    if (formal.dims.empty()) {
                        eval(f, s->args()[i]);
                        continue;
                    }
                    AddrView v = eval_view(f, s->args()[i]);
                    touch_view(v);
                }
                return;
            }
            // Regular sub-procedure: recurse.
            Frame inner;
            const auto& formals = callee->args();
            for (size_t i = 0; i < formals.size(); i++) {
                Binding b;
                if (formals[i].dims.empty()) {
                    if (formals[i].is_size ||
                        formals[i].type == ScalarType::Index) {
                        b.kind = Binding::Kind::Index;
                        b.index = eval_int(f, s->args()[i]);
                    } else {
                        b.kind = Binding::Kind::Scalar;
                        b.scalar = eval(f, s->args()[i]);
                    }
                } else {
                    b.kind = Binding::Kind::Buf;
                    b.view = eval_view(f, s->args()[i]);
                }
                inner[formals[i].name] = b;
            }
            exec_block(inner, callee->body_stmts());
            return;
          }
          case StmtKind::WriteConfig: {
            result.config_writes++;
            result.cycles += cfg_.scalar_op;
            config_[s->name() + "." + s->field()] = eval(f, s->rhs());
            return;
          }
          case StmtKind::WindowDecl: {
            Binding b;
            b.kind = Binding::Kind::Buf;
            b.view = eval_view(f, s->rhs());
            f[s->name()] = b;
            return;
          }
        }
        throw InternalError("cost_sim: unknown stmt");
    }

  private:
    CostConfig cfg_;
    CacheLevel l1_;
    CacheLevel l2_;
    uint64_t heap_ = 4096;
    std::map<std::string, double> config_;
    std::map<const Stmt*, uint64_t> alloc_addr_;
};

// -- Result memoization (see cost_sim.h) -------------------------------

bool g_cache_enabled = true;
CostSimCacheStats g_cache_stats;

std::unordered_map<uint64_t, CostResult>&
cost_cache()
{
    static std::unordered_map<uint64_t, CostResult> c;
    return c;
}

accel_internal::ClearerRegistration g_cost_cache_clearer(
    +[] { cost_cache().clear(); });

uint64_t
cost_key(const ProcPtr& p, const std::vector<CostArg>& args,
         const CostConfig& cfg)
{
    uint64_t h = proc_digest(p);
    for (const CostArg& a : args) {
        h = hash_combine(h, a.is_scalar ? 1u : 0u);
        h = hash_combine(h, static_cast<uint64_t>(a.size));
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(a.scalar), "");
        memcpy(&bits, &a.scalar, sizeof(bits));
        h = hash_combine(h, bits);
    }
    h = hash_combine(h, static_cast<uint64_t>(cfg.line_bytes));
    h = hash_combine(h, static_cast<uint64_t>(cfg.l1_kb));
    h = hash_combine(h, static_cast<uint64_t>(cfg.l1_assoc));
    h = hash_combine(h, static_cast<uint64_t>(cfg.l2_kb));
    h = hash_combine(h, static_cast<uint64_t>(cfg.l2_assoc));
    for (double d : {cfg.l1_hit_cycles, cfg.l1_miss_cycles,
                     cfg.l2_miss_cycles, cfg.loop_overhead, cfg.scalar_op,
                     cfg.host_penalty, cfg.dispatch_cycles}) {
        uint64_t bits;
        memcpy(&bits, &d, sizeof(bits));
        h = hash_combine(h, bits);
    }
    return hash_combine(h, cfg.warm ? 1u : 0u);
}

}  // namespace

CostSimCacheStats
cost_sim_cache_stats()
{
    return g_cache_stats;
}

void
reset_cost_sim_cache_stats()
{
    g_cache_stats = CostSimCacheStats();
}

bool
cost_sim_cache_enabled()
{
    return g_cache_enabled;
}

void
set_cost_sim_cache_enabled(bool on)
{
    if (!on)
        cost_cache().clear();
    g_cache_enabled = on;
}

void
clear_cost_sim_cache()
{
    cost_cache().clear();
}

CostResult
simulate_cost(const ProcPtr& p, const std::vector<CostArg>& args,
              const CostConfig& cfg)
{
    uint64_t key = 0;
    if (g_cache_enabled) {
        key = cost_key(p, args, cfg);
        auto it = cost_cache().find(key);
        if (it != cost_cache().end()) {
            g_cache_stats.hits++;
            return it->second;
        }
        g_cache_stats.misses++;
    }
    // Spanned only on a memo miss: hits are a hash probe, far below
    // span granularity, and the tuner scores thousands of them.
    EXO2_SPAN("cost.simulate", {{"proc", p->name()}});
    CostSim sim(cfg);
    Frame frame;
    size_t ai = 0;
    for (const auto& formal : p->args()) {
        Binding b;
        if (formal.dims.empty()) {
            if (ai >= args.size())
                throw InternalError("simulate_cost: missing argument for " +
                                    formal.name);
            const CostArg& a = args[ai++];
            if (formal.is_size || formal.type == ScalarType::Index) {
                b.kind = Binding::Kind::Index;
                b.index = a.is_scalar ? static_cast<int64_t>(a.scalar)
                                      : a.size;
            } else {
                b.kind = Binding::Kind::Scalar;
                b.scalar = a.is_scalar ? a.scalar
                                       : static_cast<double>(a.size);
            }
            frame[formal.name] = b;
        }
    }
    // Second pass: buffers sized by (now bound) size args.
    for (const auto& formal : p->args()) {
        if (formal.dims.empty())
            continue;
        std::vector<int64_t> dims;
        int64_t n = 1;
        for (const auto& d : formal.dims) {
            dims.push_back(sim.eval_int(frame, d));
            n *= dims.back();
        }
        Binding b;
        b.kind = Binding::Kind::Buf;
        bool dram = !formal.mem || formal.mem->kind() == MemoryKind::Dram;
        uint64_t base = sim.alloc_bytes(n * type_size_bytes(formal.type));
        b.view = AddrView::whole(base, dram, type_size_bytes(formal.type),
                                 std::move(dims));
        frame[formal.name] = b;
    }
    if (cfg.warm) {
        Frame warm_frame = frame;
        sim.run(p, std::move(warm_frame));
        sim.result = CostResult();
    }
    sim.result.cycles += cfg.dispatch_cycles;
    sim.run(p, std::move(frame));
    if (g_cache_enabled)
        cost_cache()[key] = sim.result;
    return sim.result;
}

CostResult
simulate_cost_named(const ProcPtr& p,
                    const std::map<std::string, int64_t>& sizes,
                    const CostConfig& cfg)
{
    std::vector<CostArg> args;
    for (const auto& formal : p->args()) {
        if (!formal.dims.empty())
            continue;
        if (formal.is_size || formal.type == ScalarType::Index) {
            auto it = sizes.find(formal.name);
            if (it == sizes.end()) {
                throw InternalError("simulate_cost_named: size '" +
                                    formal.name + "' not provided");
            }
            args.push_back(CostArg::make_size(it->second));
        } else {
            args.push_back(CostArg::make_scalar(1.0));
        }
    }
    return simulate_cost(p, args, cfg);
}

}  // namespace exo2
