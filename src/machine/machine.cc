#include "src/machine/machine.h"

#include "src/frontend/parser.h"
#include "src/ir/errors.h"

namespace exo2 {

std::vector<ProcPtr>
VecInstrSet::all() const
{
    std::vector<ProcPtr> out;
    // Compute patterns first so fused forms win over separated ones;
    // masked variants before unmasked so guards match.
    for (const ProcPtr& p :
         {r_fma, r_add, r_sub, r_mul, r_abs, r_neg, r_acc, r_broadcast,
          r_load, r_store, m_fma, m_add, m_sub, m_mul, m_abs, m_neg,
          m_acc, m_broadcast, fma, add, sub, mul, reduce_add, vabs, vneg,
          acc, zero, broadcast, load_pred, store_pred, load, store}) {
        if (p)
            out.push_back(p);
    }
    return out;
}

namespace {

struct InstrSpec
{
    std::string name;
    std::string src;
    double cycles;
    std::string cls;
};

ProcPtr
make_instr(const InstrSpec& spec)
{
    ProcPtr body = parse_proc(spec.src);
    InstrInfo info;
    info.c_template = spec.name;
    info.cycles = spec.cycles;
    info.instr_class = spec.cls;
    return Proc::make(spec.name, body->args(), body->preds(),
                      body->body_stmts(), info);
}

std::string
fmt(std::string tpl, const std::string& key, const std::string& value)
{
    for (;;) {
        auto pos = tpl.find(key);
        if (pos == std::string::npos)
            return tpl;
        tpl.replace(pos, key.size(), value);
    }
}

/** Build the instruction set for (prefix, memory, precision, width). */
VecInstrSet
build_vec_set(const std::string& prefix, const std::string& mem,
              ScalarType t, int w, bool predication, bool fma)
{
    VecInstrSet set;
    std::string T = type_name(t);
    std::string sfx = (t == ScalarType::F32) ? "ps" : "pd";
    auto sub = [&](const char* tpl) {
        std::string s = tpl;
        s = fmt(s, "{W}", std::to_string(w));
        s = fmt(s, "{T}", T);
        s = fmt(s, "{MEM}", mem);
        return s;
    };
    auto I = [&](const std::string& op, const char* tpl, double cycles,
                 const std::string& cls) {
        InstrSpec spec;
        spec.name = prefix + "_" + op + "_" + sfx;
        spec.src = fmt(sub(tpl), "{NAME}", spec.name);
        spec.cycles = cycles;
        spec.cls = cls;
        return make_instr(spec);
    };

    set.load = I("loadu", R"(
def {NAME}(dst: [{T}][{W}] @ {MEM}, src: [{T}][{W}] @ DRAM):
    for i in seq(0, {W}):
        dst[i] = src[i]
)",
                 1.0, "load");
    set.store = I("storeu", R"(
def {NAME}(dst: [{T}][{W}] @ DRAM, src: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        dst[i] = src[i]
)",
                  1.0, "store");
    if (predication) {
        set.load_pred = I("maskz_loadu", R"(
def {NAME}(m: size, dst: [{T}][{W}] @ {MEM}, src: [{T}][m] @ DRAM):
    for i in seq(0, {W}):
        if i < m:
            dst[i] = src[i]
)",
                          1.0, "load");
        set.store_pred = I("mask_storeu", R"(
def {NAME}(m: size, dst: [{T}][m] @ DRAM, src: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        if i < m:
            dst[i] = src[i]
)",
                           1.0, "store");
    }
    set.broadcast = I("set1", R"(
def {NAME}(dst: [{T}][{W}] @ {MEM}, val: {T}):
    for i in seq(0, {W}):
        dst[i] = val
)",
                      1.0, "broadcast");
    set.zero = I("setzero", R"(
def {NAME}(dst: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        dst[i] = 0.0
)",
                 1.0, "arith");
    set.add = I("add", R"(
def {NAME}(dst: [{T}][{W}] @ {MEM}, a: [{T}][{W}] @ {MEM}, b: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        dst[i] = a[i] + b[i]
)",
                1.0, "arith");
    set.sub = I("sub", R"(
def {NAME}(dst: [{T}][{W}] @ {MEM}, a: [{T}][{W}] @ {MEM}, b: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        dst[i] = a[i] - b[i]
)",
                1.0, "arith");
    set.mul = I("mul", R"(
def {NAME}(dst: [{T}][{W}] @ {MEM}, a: [{T}][{W}] @ {MEM}, b: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        dst[i] = a[i] * b[i]
)",
                1.0, "arith");
    if (fma) {
        set.fma = I("fmadd", R"(
def {NAME}(a: [{T}][{W}] @ {MEM}, b: [{T}][{W}] @ {MEM}, dst: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        dst[i] += a[i] * b[i]
)",
                    1.0, "fma");
    }
    set.reduce_add = I("reduce_add", R"(
def {NAME}(dst: [{T}][1] @ DRAM, src: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        dst[0] += src[i]
)",
                       4.0, "reduce");
    set.vabs = I("abs", R"(
def {NAME}(dst: [{T}][{W}] @ {MEM}, src: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        dst[i] = abs(src[i])
)",
                 1.0, "arith");
    set.vneg = I("neg", R"(
def {NAME}(dst: [{T}][{W}] @ {MEM}, src: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        dst[i] = -src[i]
)",
                 1.0, "arith");
    set.acc = I("addacc", R"(
def {NAME}(dst: [{T}][{W}] @ {MEM}, src: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        dst[i] += src[i]
)",
                1.0, "arith");
    if (predication) {
        set.m_broadcast = I("maskz_set1", R"(
def {NAME}(m: size, dst: [{T}][{W}] @ {MEM}, val: {T}):
    for i in seq(0, {W}):
        if i < m:
            dst[i] = val
)",
                            1.0, "broadcast");
        set.m_add = I("maskz_add", R"(
def {NAME}(m: size, dst: [{T}][{W}] @ {MEM}, a: [{T}][{W}] @ {MEM}, b: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        if i < m:
            dst[i] = a[i] + b[i]
)",
                      1.0, "arith");
        set.m_sub = I("maskz_sub", R"(
def {NAME}(m: size, dst: [{T}][{W}] @ {MEM}, a: [{T}][{W}] @ {MEM}, b: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        if i < m:
            dst[i] = a[i] - b[i]
)",
                      1.0, "arith");
        set.m_mul = I("maskz_mul", R"(
def {NAME}(m: size, dst: [{T}][{W}] @ {MEM}, a: [{T}][{W}] @ {MEM}, b: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        if i < m:
            dst[i] = a[i] * b[i]
)",
                      1.0, "arith");
        if (fma) {
            set.m_fma = I("mask_fmadd", R"(
def {NAME}(m: size, a: [{T}][{W}] @ {MEM}, b: [{T}][{W}] @ {MEM}, dst: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        if i < m:
            dst[i] += a[i] * b[i]
)",
                          1.0, "fma");
        }
        set.m_abs = I("maskz_abs", R"(
def {NAME}(m: size, dst: [{T}][{W}] @ {MEM}, src: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        if i < m:
            dst[i] = abs(src[i])
)",
                      1.0, "arith");
        set.m_neg = I("maskz_neg", R"(
def {NAME}(m: size, dst: [{T}][{W}] @ {MEM}, src: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        if i < m:
            dst[i] = -src[i]
)",
                      1.0, "arith");
        set.m_acc = I("mask_addacc", R"(
def {NAME}(m: size, dst: [{T}][{W}] @ {MEM}, src: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        if i < m:
            dst[i] += src[i]
)",
                      1.0, "arith");
        // Range-masked (two-sided) forms for triangular guards. A real
        // ISA realizes these with one extra mask-register compare.
        set.r_load = I("rmask_loadu", R"(
def {NAME}(l: size, m: size, dst: [{T}][{W}] @ {MEM}, src: [{T}][m] @ DRAM):
    for i in seq(0, {W}):
        if i >= l and i < m:
            dst[i] = src[i]
)",
                       1.0, "load");
        set.r_store = I("rmask_storeu", R"(
def {NAME}(l: size, m: size, dst: [{T}][m] @ DRAM, src: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        if i >= l and i < m:
            dst[i] = src[i]
)",
                        1.0, "store");
        set.r_broadcast = I("rmask_set1", R"(
def {NAME}(l: size, m: size, dst: [{T}][{W}] @ {MEM}, val: {T}):
    for i in seq(0, {W}):
        if i >= l and i < m:
            dst[i] = val
)",
                            1.0, "broadcast");
        set.r_add = I("rmask_add", R"(
def {NAME}(l: size, m: size, dst: [{T}][{W}] @ {MEM}, a: [{T}][{W}] @ {MEM}, b: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        if i >= l and i < m:
            dst[i] = a[i] + b[i]
)",
                      1.0, "arith");
        set.r_sub = I("rmask_sub", R"(
def {NAME}(l: size, m: size, dst: [{T}][{W}] @ {MEM}, a: [{T}][{W}] @ {MEM}, b: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        if i >= l and i < m:
            dst[i] = a[i] - b[i]
)",
                      1.0, "arith");
        set.r_mul = I("rmask_mul", R"(
def {NAME}(l: size, m: size, dst: [{T}][{W}] @ {MEM}, a: [{T}][{W}] @ {MEM}, b: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        if i >= l and i < m:
            dst[i] = a[i] * b[i]
)",
                      1.0, "arith");
        if (fma) {
            set.r_fma = I("rmask_fmadd", R"(
def {NAME}(l: size, m: size, a: [{T}][{W}] @ {MEM}, b: [{T}][{W}] @ {MEM}, dst: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        if i >= l and i < m:
            dst[i] += a[i] * b[i]
)",
                          1.0, "fma");
        }
        set.r_abs = I("rmask_abs", R"(
def {NAME}(l: size, m: size, dst: [{T}][{W}] @ {MEM}, src: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        if i >= l and i < m:
            dst[i] = abs(src[i])
)",
                      1.0, "arith");
        set.r_neg = I("rmask_neg", R"(
def {NAME}(l: size, m: size, dst: [{T}][{W}] @ {MEM}, src: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        if i >= l and i < m:
            dst[i] = -src[i]
)",
                      1.0, "arith");
        set.r_acc = I("rmask_addacc", R"(
def {NAME}(l: size, m: size, dst: [{T}][{W}] @ {MEM}, src: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        if i >= l and i < m:
            dst[i] += src[i]
)",
                      1.0, "arith");
    }
    return set;
}

}  // namespace

Machine::Machine(std::string name, MemoryPtr mem, bool predication,
                 bool fma)
    : name_(std::move(name)), mem_(std::move(mem)),
      predication_(predication), fma_(fma)
{
    std::string prefix = (mem_->vector_bytes() == 64) ? "mm512" : "mm256";
    f32_ = build_vec_set(prefix, mem_->name(), ScalarType::F32,
                         vec_width(ScalarType::F32), predication_, fma_);
    f64_ = build_vec_set(prefix, mem_->name(), ScalarType::F64,
                         vec_width(ScalarType::F64), predication_, fma_);
}

int
Machine::vec_width(ScalarType t) const
{
    return mem_->vector_bytes() / type_size_bytes(t);
}

const VecInstrSet&
Machine::instrs(ScalarType t) const
{
    if (t == ScalarType::F32)
        return f32_;
    if (t == ScalarType::F64)
        return f64_;
    // A user-selected precision, not an engine invariant: schedules pick
    // the precision they vectorize at (Section 6.2), so reject it as a
    // scheduling error that names the offending precision and machine.
    throw SchedulingError(
        "machine '" + name_ + "': unsupported vectorization precision " +
        type_name(t) + " (only f32 and f64 vector instruction sets "
        "exist; integer kernels must stay scalar or target a dedicated "
        "accelerator)");
}

std::vector<ProcPtr>
Machine::all_instrs() const
{
    auto out = f32_.all();
    auto d = f64_.all();
    out.insert(out.end(), d.begin(), d.end());
    return out;
}

const Machine&
machine_avx2()
{
    // AVX2 has vmaskmov loads/stores; masked arithmetic is emulated by
    // blending (priced identically in the simulator).
    static Machine m("AVX2", mem_avx2(), /*predication=*/true,
                     /*fma=*/true);
    return m;
}

const Machine&
machine_avx512()
{
    static Machine m("AVX512", mem_avx512(), /*predication=*/true,
                     /*fma=*/true);
    return m;
}

}  // namespace exo2
