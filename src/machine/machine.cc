#include "src/machine/machine.h"

#include <cctype>

#include "src/frontend/parser.h"
#include "src/ir/errors.h"
#include "src/machine/cost_sim.h"
#include "src/util/strings.h"

namespace exo2 {

std::vector<ProcPtr>
VecInstrSet::all() const
{
    std::vector<ProcPtr> out;
    // Compute patterns first so fused forms win over separated ones;
    // masked variants before unmasked so guards match.
    for (const ProcPtr& p :
         {r_fma, r_add, r_sub, r_mul, r_abs, r_neg, r_acc, r_broadcast,
          r_load, r_store, m_fma, m_add, m_sub, m_mul, m_abs, m_neg,
          m_acc, m_broadcast, fma, add, sub, mul, reduce_add, vabs, vneg,
          acc, zero, broadcast, load_pred, store_pred, load, store}) {
        if (p)
            out.push_back(p);
    }
    return out;
}

namespace {

struct InstrSpec
{
    std::string name;
    std::string src;
    std::string native;  ///< intrinsic snippet; empty = scalar helper
    double cycles;
    std::string cls;
};

ProcPtr
make_instr(const InstrSpec& spec)
{
    ProcPtr body = parse_proc(spec.src);
    InstrInfo info;
    // A native snippet carries `{arg}` placeholders; without one the
    // template is just the helper-function name (scalar lowering).
    info.c_template = spec.native.empty() ? spec.name : spec.native;
    info.cycles = spec.cycles;
    info.instr_class = spec.cls;
    return Proc::make(spec.name, body->args(), body->preds(),
                      body->body_stmts(), info);
}

/** Native (intrinsic) call-site snippets for one (ISA, precision).
 *  Placeholders name the instr-proc formals: vector-register formals
 *  expand to __m256/__m512 lvalues, DRAM formals to element pointers,
 *  scalar formals to parenthesized C expressions. The exo2_* mask and
 *  reduction helpers are emitted by codegen_c_unit's native preamble. */
struct NativeTpls
{
    std::string load, store, load_pred, store_pred, broadcast, zero;
    std::string add, sub, mul, fma, reduce_add, vabs, vneg, acc;
    std::string m_broadcast, m_add, m_sub, m_mul, m_fma, m_abs, m_neg,
        m_acc;
    std::string r_load, r_store, r_broadcast, r_add, r_sub, r_mul, r_fma,
        r_abs, r_neg, r_acc;
};

NativeTpls
native_templates(bool w512, ScalarType t)
{
    bool f32 = (t == ScalarType::F32);
    std::string sfx = f32 ? "ps" : "pd";
    NativeTpls o;
    if (!w512) {
        // AVX2: vmaskmov for memory, blends for (emulated) masked ALU.
        std::string p = "_mm256_";
        auto fn = [&](const char* op) { return p + op + "_" + sfx; };
        std::string cast = p + "castsi256_" + sfx;
        std::string mk = f32 ? "exo2_m256_lt({m})" : "exo2_m256d_lt({m})";
        std::string rk = f32 ? "exo2_m256_range({l}, {m})"
                             : "exo2_m256d_range({l}, {m})";
        std::string signc =
            fn("set1") + (f32 ? "(-0.0f)" : "(-0.0)");
        std::string absv = fn("andnot") + "(" + signc + ", {src})";
        std::string negv = fn("xor") + "({src}, " + signc + ")";
        auto blend = [&](const std::string& val, const std::string& k) {
            return "{dst} = " + fn("blendv") + "({dst}, " + val + ", " +
                   cast + "(" + k + "));";
        };
        auto mload = [&](const std::string& k) {
            return "{ __m256i exo2_k = " + k + "; {dst} = " +
                   fn("blendv") + "({dst}, " + fn("maskload") +
                   "({src}, exo2_k), " + cast + "(exo2_k)); }";
        };
        o.load = "{dst} = " + fn("loadu") + "({src});";
        o.store = fn("storeu") + "({dst}, {src});";
        o.load_pred = mload(mk);
        o.store_pred = fn("maskstore") + "({dst}, " + mk + ", {src});";
        o.broadcast = "{dst} = " + fn("set1") + "({val});";
        o.zero = "{dst} = " + fn("setzero") + "();";
        o.add = "{dst} = " + fn("add") + "({a}, {b});";
        o.sub = "{dst} = " + fn("sub") + "({a}, {b});";
        o.mul = "{dst} = " + fn("mul") + "({a}, {b});";
        o.fma = "{dst} = " + fn("fmadd") + "({a}, {b}, {dst});";
        o.reduce_add = "exo2_reduce_mm256_" + sfx + "({dst}, {src});";
        o.vabs = "{dst} = " + absv + ";";
        o.vneg = "{dst} = " + negv + ";";
        o.acc = "{dst} = " + fn("add") + "({dst}, {src});";
        o.m_broadcast = blend(fn("set1") + "({val})", mk);
        o.m_add = blend(fn("add") + "({a}, {b})", mk);
        o.m_sub = blend(fn("sub") + "({a}, {b})", mk);
        o.m_mul = blend(fn("mul") + "({a}, {b})", mk);
        o.m_fma = blend(fn("fmadd") + "({a}, {b}, {dst})", mk);
        o.m_abs = blend(absv, mk);
        o.m_neg = blend(negv, mk);
        o.m_acc = blend(fn("add") + "({dst}, {src})", mk);
        o.r_load = mload(rk);
        o.r_store = fn("maskstore") + "({dst}, " + rk + ", {src});";
        o.r_broadcast = blend(fn("set1") + "({val})", rk);
        o.r_add = blend(fn("add") + "({a}, {b})", rk);
        o.r_sub = blend(fn("sub") + "({a}, {b})", rk);
        o.r_mul = blend(fn("mul") + "({a}, {b})", rk);
        o.r_fma = blend(fn("fmadd") + "({a}, {b}, {dst})", rk);
        o.r_abs = blend(absv, rk);
        o.r_neg = blend(negv, rk);
        o.r_acc = blend(fn("add") + "({dst}, {src})", rk);
        return o;
    }
    // AVX-512: real mask registers; merge-masked forms reproduce the
    // reference semantics (unselected lanes keep the old destination).
    std::string p = "_mm512_";
    auto fn = [&](const char* op) { return p + op + "_" + sfx; };
    std::string mk = f32 ? "exo2_k16_lt({m})" : "exo2_k8_lt({m})";
    std::string rk = f32 ? "exo2_k16_range({l}, {m})"
                         : "exo2_k8_range({l}, {m})";
    // AVX512F has no 512-bit float logic ops (those are DQ); spell
    // abs/neg through the integer domain.
    std::string absv, negv;
    if (f32) {
        absv = "_mm512_castsi512_ps(_mm512_and_epi32("
               "_mm512_castps_si512({src}), "
               "_mm512_set1_epi32(0x7fffffff)))";
        negv = "_mm512_castsi512_ps(_mm512_xor_epi32("
               "_mm512_castps_si512({src}), "
               "_mm512_set1_epi32((int)0x80000000u)))";
    } else {
        absv = "_mm512_castsi512_pd(_mm512_and_epi64("
               "_mm512_castpd_si512({src}), "
               "_mm512_set1_epi64(0x7fffffffffffffffLL)))";
        negv = "_mm512_castsi512_pd(_mm512_xor_epi64("
               "_mm512_castpd_si512({src}), "
               "_mm512_set1_epi64((long long)0x8000000000000000ULL)))";
    }
    auto mmov = [&](const std::string& val, const std::string& k) {
        return "{dst} = " + fn("mask_mov") + "({dst}, " + k + ", " + val +
               ");";
    };
    o.load = "{dst} = " + fn("loadu") + "({src});";
    o.store = fn("storeu") + "({dst}, {src});";
    o.load_pred =
        "{dst} = " + fn("mask_loadu") + "({dst}, " + mk + ", {src});";
    o.store_pred = fn("mask_storeu") + "({dst}, " + mk + ", {src});";
    o.broadcast = "{dst} = " + fn("set1") + "({val});";
    o.zero = "{dst} = " + fn("setzero") + "();";
    o.add = "{dst} = " + fn("add") + "({a}, {b});";
    o.sub = "{dst} = " + fn("sub") + "({a}, {b});";
    o.mul = "{dst} = " + fn("mul") + "({a}, {b});";
    o.fma = "{dst} = " + fn("fmadd") + "({a}, {b}, {dst});";
    o.reduce_add = "exo2_reduce_mm512_" + sfx + "({dst}, {src});";
    o.vabs = "{dst} = " + absv + ";";
    o.vneg = "{dst} = " + negv + ";";
    o.acc = "{dst} = " + fn("add") + "({dst}, {src});";
    o.m_broadcast = mmov(fn("set1") + "({val})", mk);
    o.m_add = "{dst} = " + fn("mask_add") + "({dst}, " + mk + ", {a}, {b});";
    o.m_sub = "{dst} = " + fn("mask_sub") + "({dst}, " + mk + ", {a}, {b});";
    o.m_mul = "{dst} = " + fn("mask_mul") + "({dst}, " + mk + ", {a}, {b});";
    o.m_fma =
        "{dst} = " + fn("mask3_fmadd") + "({a}, {b}, {dst}, " + mk + ");";
    o.m_abs = mmov(absv, mk);
    o.m_neg = mmov(negv, mk);
    o.m_acc =
        "{dst} = " + fn("mask_add") + "({dst}, " + mk + ", {dst}, {src});";
    o.r_load =
        "{dst} = " + fn("mask_loadu") + "({dst}, " + rk + ", {src});";
    o.r_store = fn("mask_storeu") + "({dst}, " + rk + ", {src});";
    o.r_broadcast = mmov(fn("set1") + "({val})", rk);
    o.r_add = "{dst} = " + fn("mask_add") + "({dst}, " + rk + ", {a}, {b});";
    o.r_sub = "{dst} = " + fn("mask_sub") + "({dst}, " + rk + ", {a}, {b});";
    o.r_mul = "{dst} = " + fn("mask_mul") + "({dst}, " + rk + ", {a}, {b});";
    o.r_fma =
        "{dst} = " + fn("mask3_fmadd") + "({a}, {b}, {dst}, " + rk + ");";
    o.r_abs = mmov(absv, rk);
    o.r_neg = mmov(negv, rk);
    o.r_acc =
        "{dst} = " + fn("mask_add") + "({dst}, " + rk + ", {dst}, {src});";
    return o;
}

/** Build the instruction set for (prefix, memory, precision, width). */
VecInstrSet
build_vec_set(const std::string& prefix, const std::string& mem,
              ScalarType t, int w, bool predication, bool fma,
              bool predicated_alu)
{
    VecInstrSet set;
    std::string T = type_name(t);
    std::string sfx = (t == ScalarType::F32) ? "ps" : "pd";
    NativeTpls nat = native_templates(prefix == "mm512", t);
    // Masked arithmetic without a predicated ALU is emulated by
    // blending: one extra operation per masked instruction. Two-sided
    // (range) masks cost one extra mask compare on every machine.
    double mask_alu = predicated_alu ? 0.0 : 1.0;
    double range_extra = 0.5;
    auto sub = [&](const char* tpl) {
        std::string s = tpl;
        s = replace_all(s, "{W}", std::to_string(w));
        s = replace_all(s, "{T}", T);
        s = replace_all(s, "{MEM}", mem);
        return s;
    };
    auto I = [&](const std::string& op, const char* tpl,
                 const std::string& native, double cycles,
                 const std::string& cls) {
        InstrSpec spec;
        spec.name = prefix + "_" + op + "_" + sfx;
        spec.src = replace_all(sub(tpl), "{NAME}", spec.name);
        spec.native = native;
        spec.cycles = cycles;
        spec.cls = cls;
        return make_instr(spec);
    };

    set.load = I("loadu", R"(
def {NAME}(dst: [{T}][{W}] @ {MEM}, src: [{T}][{W}] @ DRAM):
    for i in seq(0, {W}):
        dst[i] = src[i]
)",
                 nat.load, 1.0, "load");
    set.store = I("storeu", R"(
def {NAME}(dst: [{T}][{W}] @ DRAM, src: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        dst[i] = src[i]
)",
                  nat.store, 1.0, "store");
    if (predication) {
        set.load_pred = I("maskz_loadu", R"(
def {NAME}(m: size, dst: [{T}][{W}] @ {MEM}, src: [{T}][m] @ DRAM):
    for i in seq(0, {W}):
        if i < m:
            dst[i] = src[i]
)",
                          nat.load_pred, 1.0, "load");
        set.store_pred = I("mask_storeu", R"(
def {NAME}(m: size, dst: [{T}][m] @ DRAM, src: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        if i < m:
            dst[i] = src[i]
)",
                           nat.store_pred, 1.0, "store");
    }
    set.broadcast = I("set1", R"(
def {NAME}(dst: [{T}][{W}] @ {MEM}, val: {T}):
    for i in seq(0, {W}):
        dst[i] = val
)",
                      nat.broadcast, 1.0, "broadcast");
    set.zero = I("setzero", R"(
def {NAME}(dst: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        dst[i] = 0.0
)",
                 nat.zero, 1.0, "arith");
    set.add = I("add", R"(
def {NAME}(dst: [{T}][{W}] @ {MEM}, a: [{T}][{W}] @ {MEM}, b: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        dst[i] = a[i] + b[i]
)",
                nat.add, 1.0, "arith");
    set.sub = I("sub", R"(
def {NAME}(dst: [{T}][{W}] @ {MEM}, a: [{T}][{W}] @ {MEM}, b: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        dst[i] = a[i] - b[i]
)",
                nat.sub, 1.0, "arith");
    set.mul = I("mul", R"(
def {NAME}(dst: [{T}][{W}] @ {MEM}, a: [{T}][{W}] @ {MEM}, b: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        dst[i] = a[i] * b[i]
)",
                nat.mul, 1.0, "arith");
    if (fma) {
        set.fma = I("fmadd", R"(
def {NAME}(a: [{T}][{W}] @ {MEM}, b: [{T}][{W}] @ {MEM}, dst: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        dst[i] += a[i] * b[i]
)",
                    nat.fma, 1.0, "fma");
    }
    set.reduce_add = I("reduce_add", R"(
def {NAME}(dst: [{T}][1] @ DRAM, src: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        dst[0] += src[i]
)",
                       nat.reduce_add, 4.0, "reduce");
    set.vabs = I("abs", R"(
def {NAME}(dst: [{T}][{W}] @ {MEM}, src: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        dst[i] = abs(src[i])
)",
                 nat.vabs, 1.0, "arith");
    set.vneg = I("neg", R"(
def {NAME}(dst: [{T}][{W}] @ {MEM}, src: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        dst[i] = -src[i]
)",
                 nat.vneg, 1.0, "arith");
    set.acc = I("addacc", R"(
def {NAME}(dst: [{T}][{W}] @ {MEM}, src: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        dst[i] += src[i]
)",
                nat.acc, 1.0, "arith");
    if (predication) {
        set.m_broadcast = I("maskz_set1", R"(
def {NAME}(m: size, dst: [{T}][{W}] @ {MEM}, val: {T}):
    for i in seq(0, {W}):
        if i < m:
            dst[i] = val
)",
                            nat.m_broadcast, 1.0 + mask_alu, "broadcast");
        set.m_add = I("maskz_add", R"(
def {NAME}(m: size, dst: [{T}][{W}] @ {MEM}, a: [{T}][{W}] @ {MEM}, b: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        if i < m:
            dst[i] = a[i] + b[i]
)",
                      nat.m_add, 1.0 + mask_alu, "arith");
        set.m_sub = I("maskz_sub", R"(
def {NAME}(m: size, dst: [{T}][{W}] @ {MEM}, a: [{T}][{W}] @ {MEM}, b: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        if i < m:
            dst[i] = a[i] - b[i]
)",
                      nat.m_sub, 1.0 + mask_alu, "arith");
        set.m_mul = I("maskz_mul", R"(
def {NAME}(m: size, dst: [{T}][{W}] @ {MEM}, a: [{T}][{W}] @ {MEM}, b: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        if i < m:
            dst[i] = a[i] * b[i]
)",
                      nat.m_mul, 1.0 + mask_alu, "arith");
        if (fma) {
            set.m_fma = I("mask_fmadd", R"(
def {NAME}(m: size, a: [{T}][{W}] @ {MEM}, b: [{T}][{W}] @ {MEM}, dst: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        if i < m:
            dst[i] += a[i] * b[i]
)",
                          nat.m_fma, 1.0 + mask_alu, "fma");
        }
        set.m_abs = I("maskz_abs", R"(
def {NAME}(m: size, dst: [{T}][{W}] @ {MEM}, src: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        if i < m:
            dst[i] = abs(src[i])
)",
                      nat.m_abs, 1.0 + mask_alu, "arith");
        set.m_neg = I("maskz_neg", R"(
def {NAME}(m: size, dst: [{T}][{W}] @ {MEM}, src: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        if i < m:
            dst[i] = -src[i]
)",
                      nat.m_neg, 1.0 + mask_alu, "arith");
        set.m_acc = I("mask_addacc", R"(
def {NAME}(m: size, dst: [{T}][{W}] @ {MEM}, src: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        if i < m:
            dst[i] += src[i]
)",
                      nat.m_acc, 1.0 + mask_alu, "arith");
        // Range-masked (two-sided) forms for triangular guards. A real
        // ISA realizes these with one extra mask-register compare.
        set.r_load = I("rmask_loadu", R"(
def {NAME}(l: size, m: size, dst: [{T}][{W}] @ {MEM}, src: [{T}][m] @ DRAM):
    for i in seq(0, {W}):
        if i >= l and i < m:
            dst[i] = src[i]
)",
                       nat.r_load, 1.0 + range_extra, "load");
        set.r_store = I("rmask_storeu", R"(
def {NAME}(l: size, m: size, dst: [{T}][m] @ DRAM, src: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        if i >= l and i < m:
            dst[i] = src[i]
)",
                        nat.r_store, 1.0 + range_extra, "store");
        set.r_broadcast = I("rmask_set1", R"(
def {NAME}(l: size, m: size, dst: [{T}][{W}] @ {MEM}, val: {T}):
    for i in seq(0, {W}):
        if i >= l and i < m:
            dst[i] = val
)",
                            nat.r_broadcast, 1.0 + mask_alu + range_extra,
                            "broadcast");
        set.r_add = I("rmask_add", R"(
def {NAME}(l: size, m: size, dst: [{T}][{W}] @ {MEM}, a: [{T}][{W}] @ {MEM}, b: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        if i >= l and i < m:
            dst[i] = a[i] + b[i]
)",
                      nat.r_add, 1.0 + mask_alu + range_extra, "arith");
        set.r_sub = I("rmask_sub", R"(
def {NAME}(l: size, m: size, dst: [{T}][{W}] @ {MEM}, a: [{T}][{W}] @ {MEM}, b: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        if i >= l and i < m:
            dst[i] = a[i] - b[i]
)",
                      nat.r_sub, 1.0 + mask_alu + range_extra, "arith");
        set.r_mul = I("rmask_mul", R"(
def {NAME}(l: size, m: size, dst: [{T}][{W}] @ {MEM}, a: [{T}][{W}] @ {MEM}, b: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        if i >= l and i < m:
            dst[i] = a[i] * b[i]
)",
                      nat.r_mul, 1.0 + mask_alu + range_extra, "arith");
        if (fma) {
            set.r_fma = I("rmask_fmadd", R"(
def {NAME}(l: size, m: size, a: [{T}][{W}] @ {MEM}, b: [{T}][{W}] @ {MEM}, dst: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        if i >= l and i < m:
            dst[i] += a[i] * b[i]
)",
                          nat.r_fma, 1.0 + mask_alu + range_extra, "fma");
        }
        set.r_abs = I("rmask_abs", R"(
def {NAME}(l: size, m: size, dst: [{T}][{W}] @ {MEM}, src: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        if i >= l and i < m:
            dst[i] = abs(src[i])
)",
                      nat.r_abs, 1.0 + mask_alu + range_extra, "arith");
        set.r_neg = I("rmask_neg", R"(
def {NAME}(l: size, m: size, dst: [{T}][{W}] @ {MEM}, src: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        if i >= l and i < m:
            dst[i] = -src[i]
)",
                      nat.r_neg, 1.0 + mask_alu + range_extra, "arith");
        set.r_acc = I("rmask_addacc", R"(
def {NAME}(l: size, m: size, dst: [{T}][{W}] @ {MEM}, src: [{T}][{W}] @ {MEM}):
    for i in seq(0, {W}):
        if i >= l and i < m:
            dst[i] += src[i]
)",
                      nat.r_acc, 1.0 + mask_alu + range_extra, "arith");
    }
    return set;
}

}  // namespace

Machine::Machine(std::string name, MemoryPtr mem, bool predication,
                 bool fma, bool predicated_alu)
    : name_(std::move(name)), mem_(std::move(mem)),
      predication_(predication), fma_(fma),
      predicated_alu_(predicated_alu)
{
    std::string prefix = (mem_->vector_bytes() == 64) ? "mm512" : "mm256";
    f32_ = build_vec_set(prefix, mem_->name(), ScalarType::F32,
                         vec_width(ScalarType::F32), predication_, fma_,
                         predicated_alu_);
    f64_ = build_vec_set(prefix, mem_->name(), ScalarType::F64,
                         vec_width(ScalarType::F64), predication_, fma_,
                         predicated_alu_);
}

int
Machine::vec_width(ScalarType t) const
{
    return mem_->vector_bytes() / type_size_bytes(t);
}

const VecInstrSet&
Machine::instrs(ScalarType t) const
{
    if (t == ScalarType::F32)
        return f32_;
    if (t == ScalarType::F64)
        return f64_;
    // A user-selected precision, not an engine invariant: schedules pick
    // the precision they vectorize at (Section 6.2), so reject it as a
    // scheduling error that names the offending precision and machine.
    throw SchedulingError(
        "machine '" + name_ + "': unsupported vectorization precision " +
        type_name(t) + " (only f32 and f64 vector instruction sets "
        "exist; integer kernels must stay scalar or target a dedicated "
        "accelerator)");
}

std::vector<ProcPtr>
Machine::all_instrs() const
{
    auto out = f32_.all();
    auto d = f64_.all();
    out.insert(out.end(), d.begin(), d.end());
    return out;
}

const Machine&
machine_avx2()
{
    // AVX2 has vmaskmov loads/stores, but no predicated ALU: masked
    // arithmetic is emulated by blending (and priced as such).
    static Machine m("AVX2", mem_avx2(), /*predication=*/true,
                     /*fma=*/true, /*predicated_alu=*/false);
    return m;
}

const Machine&
machine_avx512()
{
    static Machine m("AVX512", mem_avx512(), /*predication=*/true,
                     /*fma=*/true, /*predicated_alu=*/true);
    return m;
}

const Machine&
find_machine(const std::string& name)
{
    std::string up;
    for (char c : name)
        up.push_back(static_cast<char>(toupper(static_cast<unsigned char>(c))));
    if (up == "AVX2")
        return machine_avx2();
    if (up == "AVX512")
        return machine_avx512();
    // A caller-supplied lookup key (e.g. from a replayed schedule
    // script), not an engine invariant.
    throw SchedulingError("unknown machine '" + name +
                          "' (known: AVX2, AVX512)");
}

TileHints
tile_hints(const Machine& m, ScalarType t, const CostConfig& cfg)
{
    TileHints h;
    h.vec_width = m.vec_width(t);
    // Register-level split factors: one vector, and small multiples for
    // interleaving / unroll-and-jam headroom.
    h.split_factors = {h.vec_width, 2ll * h.vec_width,
                       4ll * h.vec_width};
    // Cache-level tiles: sides of a square working set filling roughly
    // a third of L1 / L2 (three streams in flight: two inputs and one
    // output), rounded down to a vector multiple.
    int elem = type_size_bytes(t);
    for (int64_t kb : {static_cast<int64_t>(cfg.l1_kb),
                       static_cast<int64_t>(cfg.l2_kb)}) {
        int64_t elems = kb * 1024 / 3 / elem;
        int64_t side = 1;
        while ((side * 2) * (side * 2) <= elems)
            side *= 2;
        side = side / h.vec_width * h.vec_width;
        if (side >= 2 * h.vec_width)
            h.cache_tiles.push_back(side);
    }
    return h;
}

}  // namespace exo2
