#include "src/machine/gemmini.h"

#include "src/frontend/parser.h"

namespace exo2 {

std::vector<ProcPtr>
GemminiInstrSet::all() const
{
    std::vector<ProcPtr> out;
    for (const ProcPtr& p :
         {config_ld_id1, config_ld_id2, config_st_acc, config_matmul,
          config_zero, do_ld_block_id1, do_ld_block_id2, do_matmul_acc,
          do_zero_acc, do_st_acc}) {
        if (p)
            out.push_back(p);
    }
    return out;
}

namespace {

ProcPtr
make_instr(const std::string& name, const std::string& src, double cycles,
           const std::string& cls)
{
    ProcPtr body = parse_proc(src);
    InstrInfo info;
    info.c_template = name;
    info.cycles = cycles;
    info.instr_class = cls;
    return Proc::make(name, body->args(), body->preds(),
                      body->body_stmts(), info);
}

GemminiInstrSet
build()
{
    GemminiInstrSet g;

    // Configuration instructions: writes to accelerator state. The
    // state is semantically unobservable in this model (DESIGN.md);
    // their cost models the pipeline flush of reconfiguration.
    g.config_ld_id1 = make_instr("config_ld_i8_id1", R"(
def config_ld_i8_id1(stride: size):
    gcfg.ld1_stride = stride
)",
                                 50.0, "config");
    g.config_ld_id2 = make_instr("config_ld_i8_id2", R"(
def config_ld_i8_id2(stride: size):
    gcfg.ld2_stride = stride
)",
                                 50.0, "config");
    g.config_st_acc = make_instr("config_st_acc_i8", R"(
def config_st_acc_i8(stride: size):
    gcfg.st_stride = stride
)",
                                 50.0, "config");
    g.config_matmul = make_instr("config_matmul", R"(
def config_matmul(dataflow: size):
    gcfg.mm_dataflow = dataflow
)",
                                 50.0, "config");
    g.config_zero = make_instr("config_zero", R"(
def config_zero(acc: size):
    gcfg.zero_acc = acc
)",
                               50.0, "config");

    // A 4-block (16x64) row-major DMA load into the scratchpad.
    g.do_ld_block_id1 = make_instr("do_ld_i8_block_id1", R"(
def do_ld_i8_block_id1(src: [i8][16, 64] @ DRAM, dst: [i8][4, 16, 16] @ GEMM_SCRATCH):
    for b in seq(0, 4):
        for r in seq(0, 16):
            for c in seq(0, 16):
                dst[b, r, c] = src[r, 16 * b + c]
)",
                                   64.0, "load");
    // A 4-block (64x16) column-panel DMA load.
    g.do_ld_block_id2 = make_instr("do_ld_i8_block_id2", R"(
def do_ld_i8_block_id2(src: [i8][64, 16] @ DRAM, dst: [i8][4, 16, 16] @ GEMM_SCRATCH):
    for b in seq(0, 4):
        for r in seq(0, 16):
            for c in seq(0, 16):
                dst[b, r, c] = src[16 * b + r, c]
)",
                                   64.0, "load");
    // 16x16x16 systolic matmul-accumulate.
    g.do_matmul_acc = make_instr("do_matmul_acc_i8", R"(
def do_matmul_acc_i8(A: [i8][16, 16] @ GEMM_SCRATCH, B: [i8][16, 16] @ GEMM_SCRATCH, C: [i32][16, 16] @ GEMM_ACCUM):
    for i in seq(0, 16):
        for j in seq(0, 16):
            for k in seq(0, 16):
                C[i, j] += A[i, k] * B[k, j]
)",
                                 16.0, "fma");
    g.do_zero_acc = make_instr("do_zero_acc_i32", R"(
def do_zero_acc_i32(dst: [i32][16, 16] @ GEMM_ACCUM):
    for i in seq(0, 16):
        for j in seq(0, 16):
            dst[i, j] = 0.0
)",
                               4.0, "arith");
    // Scale, clamp, and store an accumulator tile to DRAM.
    g.do_st_acc = make_instr("do_st_acc_i8", R"(
def do_st_acc_i8(scale: f32, src: [i32][16, 16] @ GEMM_ACCUM, dst: [i8][16, 16] @ DRAM):
    for i in seq(0, 16):
        for j in seq(0, 16):
            dst[i, j] = clamp_i8(acc_scale(src[i, j], scale))
)",
                             32.0, "store");
    return g;
}

}  // namespace

const GemminiInstrSet&
gemmini_instrs()
{
    static GemminiInstrSet g = build();
    return g;
}

std::vector<std::pair<ProcPtr, ProcPtr>>
gemmini_instr_pairs()
{
    const GemminiInstrSet& g = gemmini_instrs();
    return {
        {g.do_ld_block_id1, g.config_ld_id1},
        {g.do_ld_block_id2, g.config_ld_id2},
        {g.do_matmul_acc, g.config_matmul},
        {g.do_zero_acc, g.config_zero},
        {g.do_st_acc, g.config_st_acc},
    };
}

}  // namespace exo2
