#ifndef EXO2_MACHINE_GEMMINI_H_
#define EXO2_MACHINE_GEMMINI_H_

/**
 * @file
 * The Gemmini accelerator model (Section 6.1.2, Appendix B): a 16x16
 * int8 systolic array with a 256 KiB software-managed scratchpad, a
 * 16 KiB accumulator, blocked DMA loads, and *stateful configuration
 * registers* that make configuration hoisting profitable.
 *
 * The paper measured on FireSim/FPGA; here the same instruction set is
 * defined as instr-procs (semantics bodies + cycle costs) executed on
 * the cost simulator — the substitution documented in DESIGN.md.
 */

#include <vector>

#include "src/ir/proc.h"

namespace exo2 {

/** The Gemmini instruction set. */
struct GemminiInstrSet
{
    // Configuration instructions (expensive, stateful).
    ProcPtr config_ld_id1;
    ProcPtr config_ld_id2;
    ProcPtr config_st_acc;
    ProcPtr config_matmul;
    ProcPtr config_zero;

    // Compute / data movement (do_* read the configuration state).
    ProcPtr do_ld_block_id1;   ///< DMA 4 16x16 i8 blocks into scratchpad
    ProcPtr do_ld_block_id2;
    ProcPtr do_matmul_acc;     ///< 16x16x16 MAC into the accumulator
    ProcPtr do_zero_acc;
    ProcPtr do_st_acc;         ///< scale/activate/store accumulator tile

    // Fused _v2 variants: configuration write + do_* (Appendix B).
    ProcPtr ld_block_id1_v2;
    ProcPtr ld_block_id2_v2;
    ProcPtr matmul_acc_v2;
    ProcPtr zero_acc_v2;
    ProcPtr st_acc_v2;

    std::vector<ProcPtr> all() const;
};

/** The singleton Gemmini instruction set. */
const GemminiInstrSet& gemmini_instrs();

/** Pairs (base, _v2) used by replace_and_inline (Appendix B). */
std::vector<std::pair<ProcPtr, ProcPtr>> gemmini_instr_pairs();

}  // namespace exo2

#endif  // EXO2_MACHINE_GEMMINI_H_
