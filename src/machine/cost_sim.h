#ifndef EXO2_MACHINE_COST_SIM_H_
#define EXO2_MACHINE_COST_SIM_H_

/**
 * @file
 * Cycle-approximate cost simulator.
 *
 * Walks a procedure with concrete sizes, executing control flow for
 * real (loop trip counts, guards) but not data, and charges:
 *   - per-statement scalar issue costs,
 *   - per-instruction costs from InstrInfo (hardware instructions),
 *   - cache hierarchy penalties for every DRAM access (two-level LRU
 *     set-associative model with write-allocate).
 *
 * This is the testbed substitute for the paper's Intel Xeon + FireSim
 * measurements (see DESIGN.md): relative performance between schedules
 * comes from schedule structure, which the model prices uniformly.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/ir/proc.h"

namespace exo2 {

/**
 * Version of the cost model. Bump on any change to the pricing rules
 * (cache model, per-instruction costs, masked-op penalties): cached
 * tuning winners embed the model's ranking decisions, so the
 * persistent tuning cache (src/cache/) treats entries written under
 * an older model as stale (DESIGN.md §8).
 */
constexpr int kCostModelVersion = 1;

/** Tunable machine-model parameters. */
struct CostConfig
{
    int line_bytes = 64;
    int l1_kb = 32;
    int l1_assoc = 8;
    int l2_kb = 1024;
    int l2_assoc = 16;
    double l1_hit_cycles = 0.5;    ///< charged on every DRAM access
    double l1_miss_cycles = 10.0;  ///< extra on L1 miss
    double l2_miss_cycles = 60.0;  ///< extra on L2 miss
    double loop_overhead = 1.0;    ///< per loop iteration
    double scalar_op = 1.0;        ///< per scalar Assign/Reduce
    /** Scalar-op multiplier (e.g. slow accelerator host CPU). */
    double host_penalty = 1.0;
    /** Fixed per-call front-end cost (library dispatch, argument
     *  checking, architecture selection). Zero for generated kernels;
     *  nonzero for the reference-library models (DESIGN.md). */
    double dispatch_cycles = 0.0;
    /** Measure hot-loop (warm-cache) performance: execute once to warm
     *  the caches, then report the second execution, matching how the
     *  paper's wall-clock benchmarks iterate each kernel. */
    bool warm = true;
};

/** Simulation outcome. */
struct CostResult
{
    double cycles = 0.0;
    int64_t instr_calls = 0;
    int64_t config_writes = 0;
    int64_t dram_accesses = 0;
    int64_t l1_misses = 0;
    int64_t l2_misses = 0;
};

/** Argument for a cost simulation: a size or a scalar value. Buffers
 *  are materialized internally from the signature. */
struct CostArg
{
    bool is_scalar = false;
    int64_t size = 0;
    double scalar = 0.0;

    static CostArg make_size(int64_t v)
    {
        CostArg a;
        a.size = v;
        return a;
    }
    static CostArg make_scalar(double v)
    {
        CostArg a;
        a.is_scalar = true;
        a.scalar = v;
        return a;
    }
};

/**
 * Simulate `p`. `args` supplies size/scalar arguments positionally
 * (buffer arguments are skipped in `args` and allocated internally).
 */
CostResult simulate_cost(const ProcPtr& p, const std::vector<CostArg>& args,
                         const CostConfig& cfg = CostConfig());

/** Convenience: bind sizes by name; scalars default to 1.0. */
CostResult simulate_cost_named(const ProcPtr& p,
                               const std::map<std::string, int64_t>& sizes,
                               const CostConfig& cfg = CostConfig());

// -- Result memoization (DESIGN.md §6) ---------------------------------
//
// `simulate_cost` memoizes results keyed on (proc_digest, arguments,
// config): the autotuner's beam search repeatedly reaches structurally
// identical schedule states through different edit orders, and a
// digest hit skips the whole simulation. Keys are structural, so the
// cache can never go stale (simulation depends only on proc structure
// and inputs). Single-threaded like the analysis memo caches; cleared
// together with the cursor-accel caches (`clear_cursor_accel_caches`).

/** Hit/miss counters, reported alongside `cursor_accel_stats()`. */
struct CostSimCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;  ///< simulations actually executed
};

CostSimCacheStats cost_sim_cache_stats();

/** Reset the counters (does not touch cache contents). */
void reset_cost_sim_cache_stats();

/** Is cost-result memoization consulted? Defaults to true. */
bool cost_sim_cache_enabled();

/** Toggle memoization; disabling clears the cache. */
void set_cost_sim_cache_enabled(bool on);

/** Drop every memoized cost result. */
void clear_cost_sim_cache();

}  // namespace exo2

#endif  // EXO2_MACHINE_COST_SIM_H_
