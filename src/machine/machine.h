#ifndef EXO2_MACHINE_MACHINE_H_
#define EXO2_MACHINE_MACHINE_H_

/**
 * @file
 * Machine descriptions. Exo externalizes hardware targets to user code;
 * a Machine packages a vector register memory, width/predication/FMA
 * capabilities, and the instruction set (instr-procs whose bodies give
 * reference semantics and whose InstrInfo gives codegen template and
 * simulator cost).
 */

#include <string>
#include <vector>

#include "src/ir/proc.h"

namespace exo2 {

/** The vector instructions of one machine at one precision. */
struct VecInstrSet
{
    ProcPtr load;
    ProcPtr load_pred;    ///< null when unsupported
    ProcPtr store;
    ProcPtr store_pred;   ///< null when unsupported
    ProcPtr broadcast;    ///< splat a scalar
    ProcPtr zero;
    ProcPtr add;
    ProcPtr sub;
    ProcPtr mul;
    ProcPtr fma;          ///< dst += a * b; null when unsupported
    ProcPtr reduce_add;   ///< dst[0] += sum(src)
    ProcPtr vabs;         ///< dst = |src|
    ProcPtr vneg;         ///< dst = -src
    ProcPtr acc;          ///< dst += src (add with aliased operand)

    // Masked variants (predicated machines): guarded lane loops.
    ProcPtr m_broadcast;
    ProcPtr m_add;
    ProcPtr m_sub;
    ProcPtr m_mul;
    ProcPtr m_fma;
    ProcPtr m_abs;
    ProcPtr m_neg;
    ProcPtr m_acc;

    // Range-masked variants (`l <= lane < m`): triangular guards.
    ProcPtr r_load;
    ProcPtr r_store;
    ProcPtr r_broadcast;
    ProcPtr r_add;
    ProcPtr r_sub;
    ProcPtr r_mul;
    ProcPtr r_fma;
    ProcPtr r_abs;
    ProcPtr r_neg;
    ProcPtr r_acc;

    /** All non-null instructions, replacement order (stores/loads last
     *  so compute patterns match first). */
    std::vector<ProcPtr> all() const;
};

/** A CPU vector target (AVX2 / AVX512). */
class Machine
{
  public:
    Machine(std::string name, MemoryPtr mem, bool predication, bool fma,
            bool predicated_alu);

    const std::string& name() const { return name_; }
    const MemoryPtr& mem_type() const { return mem_; }
    bool supports_predication() const { return predication_; }
    bool has_fma() const { return fma_; }

    /** Whether the ALU executes masked arithmetic natively (AVX-512
     *  mask registers). Machines without it (AVX2) emulate masked
     *  arithmetic by blending, which the cost model prices as an extra
     *  operation per masked instruction. */
    bool has_predicated_alu() const { return predicated_alu_; }

    /** Lanes per vector register for an element type. */
    int vec_width(ScalarType t) const;

    /** The instruction set for one precision (f32 or f64). */
    const VecInstrSet& instrs(ScalarType t) const;

    /** Every instruction of this machine (all precisions). */
    std::vector<ProcPtr> all_instrs() const;

  private:
    std::string name_;
    MemoryPtr mem_;
    bool predication_;
    bool fma_;
    bool predicated_alu_;
    VecInstrSet f32_;
    VecInstrSet f64_;
};

/** The AVX2 target: 32-byte vectors, FMA, no predicated memory ops. */
const Machine& machine_avx2();

/** The AVX512 target: 64-byte vectors, FMA, predicated memory ops. */
const Machine& machine_avx512();

/**
 * Look up a CPU vector machine by its `name()` ("AVX2", "AVX512";
 * case-insensitive). Throws SchedulingError for unknown names. Used by
 * the autotuner's replayable schedule scripts, which reference the
 * machine nominally so a recorded step is self-describing.
 */
const Machine& find_machine(const std::string& name);

struct CostConfig;  // machine/cost_sim.h

/**
 * Tile-size hints for the autotuner's action enumeration (DESIGN.md
 * §6): candidate loop-split factors derived from the machine's vector
 * shape and the cost model's cache geometry.
 */
struct TileHints
{
    int vec_width = 8;                    ///< lanes at the precision
    std::vector<int64_t> split_factors;   ///< vector-register multiples
    std::vector<int64_t> cache_tiles;     ///< L1/L2-derived tile sides
};

/** Hints for vectorizing/tiling `t`-typed loops on `m` under `cfg`. */
TileHints tile_hints(const Machine& m, ScalarType t,
                     const CostConfig& cfg);

}  // namespace exo2

#endif  // EXO2_MACHINE_MACHINE_H_
