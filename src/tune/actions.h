#ifndef EXO2_TUNE_ACTIONS_H_
#define EXO2_TUNE_ACTIONS_H_

/**
 * @file
 * Action enumeration for the schedule autotuner (DESIGN.md §6).
 *
 * An *action* is one legal scheduling move at one cursor site of a
 * proc, emitted as a self-describing, replayable `FuzzStep`. Sites are
 * addressed by ordinals into deterministic pre-order walks (loops,
 * allocs), so a step is meaningful relative to the proc it was
 * enumerated on and replays bit-for-bit.
 *
 * The tuner vocabulary (integer operands first, name operands second):
 *
 *   t_divide[loop,factor,tail; io,ii]  divide_loop (tail 0=cut 1=guard
 *                                      2=perfect)
 *   t_reorder[loop]                    reorder_loops (swap with inner)
 *   t_unroll[loop]                     unroll_loop (const trip only)
 *   t_vectorize[loop,tail; machine,prec]
 *                                      sched::vectorize (tail 0=cut,
 *                                      1=cut+masked-guard)
 *   t_interleave[loop,factor]          sched::interleave_loop (ILP)
 *   t_cse[loop]                        sched::cse_reads
 *   t_licm[loop]                       sched::hoist_from_loop
 *   t_uaj[loop,factor]                 sched::unroll_and_jam
 *   t_lift_alloc[alloc,n]              lift_alloc (stage buffers out)
 *
 * Enumeration is *validated*: candidate sites come from cheap
 * structural scans, and every candidate is then applied once — for
 * composite combinators the only sound legality predicate is the
 * apply itself — so every returned action is known-good and carries
 * its resulting proc. Primitives signalling inapplicability must do so
 * via SchedulingError/InvalidCursorError; anything else (InternalError,
 * untyped exceptions) escapes, and the legality test suite treats it
 * as an engine bug.
 */

#include <vector>

#include "src/machine/machine.h"
#include "src/verify/fuzz.h"

namespace exo2 {
namespace tune {

/**
 * Version of the tuner's action vocabulary and of the scheduling
 * primitives it drives. Bump on ANY change that can alter what script
 * a given (kernel, machine, sizes) tune produces or how a recorded
 * script replays: new/removed actions, changed operand encodings,
 * changed enumeration order, changed primitive semantics. The
 * persistent tuning cache (src/cache/) keys its entries on this —
 * a bump invalidates every cached script, which is exactly the safe
 * behavior (DESIGN.md §8).
 */
constexpr int kScheduleLibraryVersion = 1;

/** The tunable action space, parameterized by the machine. */
struct TuneSpace
{
    /** Loop-split factors (`t_divide`): vector-register multiples and
     *  cache-tile sides from `tile_hints`. */
    std::vector<int64_t> divide_factors;
    /** `t_interleave` / `t_uaj` factors. */
    std::vector<int> interleave_factors;
    std::vector<int> jam_factors;
    /** `t_unroll` only fires on constant trip counts <= this. */
    int64_t unroll_max_trip = 8;
    /** `t_interleave` only fires on loops with at most this many
     *  direct body statements (stops interleave-stacking: the cost
     *  model prices saved loop overhead but not code footprint). */
    size_t max_interleave_body = 16;
    /** `t_uaj` only fires on nests of at most this many statements
     *  (stops jam-stacking and the register pressure it hides). */
    size_t max_uaj_stmts = 8;
    /** Master switches (all on by default). */
    bool enable_vectorize = true;
    bool enable_divide = true;
    bool enable_reorder = true;
    bool enable_unroll = true;
    bool enable_interleave = true;
    bool enable_cse = true;
    bool enable_licm = true;
    bool enable_uaj = true;
    bool enable_lift_alloc = true;
};

/** The default space for `machine` at `precision` under `cfg`. */
TuneSpace default_space(const Machine& machine, ScalarType precision,
                        const struct CostConfig& cfg);

/** One validated action: the replayable step and its known result. */
struct TuneAction
{
    verify::FuzzStep step;
    ProcPtr result;
};

/**
 * Enumerate every legal action on `p`. Deterministic: site walks are
 * pre-order, op families in fixed order, factors in `space` order.
 * No-op actions (result structurally identical to `p`) are dropped.
 */
std::vector<TuneAction> enumerate_actions(const ProcPtr& p,
                                          const Machine& machine,
                                          ScalarType precision,
                                          const TuneSpace& space);

}  // namespace tune
}  // namespace exo2

#endif  // EXO2_TUNE_ACTIONS_H_
