#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <unordered_set>

#include "src/cache/cache.h"
#include "src/ir/errors.h"
#include "src/lint/lint.h"
#include "src/obs/phase.h"
#include "src/obs/trace.h"
#include "src/tune/actions.h"
#include "src/tune/tune.h"
#include "src/util/env.h"
#include "src/util/rng.h"
#include "src/verify/cjit.h"
#include "src/verify/oracle.h"

namespace exo2 {
namespace tune {

namespace {

struct State
{
    ProcPtr proc;
    std::vector<FuzzStep> script;
    double cost = 0.0;
    uint64_t digest = 0;
};

bool
state_less(const State& a, const State& b)
{
    if (a.cost != b.cost)
        return a.cost < b.cost;
    // Deterministic tie-breaks: shorter script, then digest.
    if (a.script.size() != b.script.size())
        return a.script.size() < b.script.size();
    return a.digest < b.digest;
}

/** Keep the best-`cap` scored states (winner candidates). */
class TopPool
{
  public:
    explicit TopPool(size_t cap) : cap_(cap) {}

    void offer(const State& s)
    {
        auto it = std::lower_bound(states_.begin(), states_.end(), s,
                                   state_less);
        if (it == states_.end() && states_.size() >= cap_)
            return;
        states_.insert(it, s);
        if (states_.size() > cap_)
            states_.pop_back();
    }

    const std::vector<State>& states() const { return states_; }

  private:
    size_t cap_;
    std::vector<State> states_;  ///< sorted, best first
};

}  // namespace

cache::TuneKey
tune_cache_key(const ProcPtr& p, const Machine& machine,
               const SizeEnv& tune_sizes)
{
    cache::TuneKey key;
    key.proc_digest = proc_digest(p);
    key.machine = machine.name();
    key.isa = verify::native_isa_name(verify::cjit_env_isa());
    for (const auto& [name, value] : tune_sizes) {
        if (!key.sizes.empty())
            key.sizes += ',';
        key.sizes += name + "=" + std::to_string(value);
    }
    return key;
}

TuneResult
autotune(const ProcPtr& p, const Machine& machine, const TuneOpts& opts_in)
{
    if (!p)
        throw SchedulingError("autotune: null proc");

    TuneOpts opts = opts_in;
    opts.beam_width = static_cast<int>(
        util::env_int("EXO2_TUNE_BEAM", opts.beam_width, 1, 1000000));
    opts.max_rounds = static_cast<int>(util::env_int(
        "EXO2_TUNE_ROUNDS", opts.max_rounds, 0, 1000000));
    opts.random_restarts = static_cast<int>(util::env_int(
        "EXO2_TUNE_RESTARTS", opts.random_restarts, 0, 1000000));
    opts.jit_topk = static_cast<int>(util::env_int(
        "EXO2_TUNE_JIT_TOPK", opts.jit_topk, 0, 1000000));
    opts.seed = static_cast<uint64_t>(util::env_int(
        "EXO2_TUNE_SEED", static_cast<int64_t>(opts.seed), 0,
        std::numeric_limits<int64_t>::max()));
    opts.deadline_seconds =
        util::env_double("EXO2_TUNE_DEADLINE", opts.deadline_seconds,
                         0.0, 1e9);
    opts.lint = util::env_flag("EXO2_TUNE_LINT", opts.lint);
    bool verbose = util::env_flag("EXO2_TUNE_VERBOSE", false);
    if (opts.beam_width < 1)
        opts.beam_width = 1;
    if (opts.measure_sizes.empty())
        opts.measure_sizes = opts.tune_sizes;
    if (opts.validate_sizes.empty())
        opts.validate_sizes = opts.tune_sizes;

    for (const auto& [label, env] :
         {std::pair<const char*, const SizeEnv&>{"tune_sizes",
                                                 opts.tune_sizes},
          {"measure_sizes", opts.measure_sizes},
          {"validate_sizes", opts.validate_sizes}}) {
        for (const auto& a : p->args()) {
            if ((a.is_size ||
                 (a.dims.empty() && a.type == ScalarType::Index)) &&
                env.find(a.name) == env.end()) {
                throw SchedulingError(
                    std::string("autotune: ") + label + " missing size "
                    "argument '" + a.name + "' of proc '" + p->name() +
                    "'");
            }
        }
        if (!verify::preds_hold(p, env)) {
            throw SchedulingError(
                std::string("autotune: ") + label + " violate the "
                "assertions of proc '" + p->name() +
                "' (pick sizes satisfying its preds)");
        }
    }

    EXO2_SPAN("tune.autotune", {{"proc", p->name()}});
    TuneResult result;
    CostSimCacheStats cache0 = cost_sim_cache_stats();

    auto t_start = std::chrono::steady_clock::now();
    auto past_deadline = [&] {
        if (opts.deadline_seconds <= 0)
            return false;
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t_start)
                   .count() >= opts.deadline_seconds;
    };

    // -- Persistent tuning cache (DESIGN.md §8) -------------------------
    // A hit replays the stored script and re-validates through the
    // tri-oracle: the cache is trusted for *search effort*, never for
    // correctness. Any failure to replay or validate quarantines the
    // entry and falls through to a fresh search.
    cache::TuneCache tcache(opts.use_cache ? cache::cache_dir_from_env()
                                           : std::string());
    cache::TuneKey tkey;
    if (tcache.enabled()) {
        tkey = tune_cache_key(p, machine, opts.tune_sizes);
        auto hit = [&] {
            obs::PhaseTimer pt(obs::Phase::Cache);
            EXO2_SPAN("tune.cache_probe", {{"proc", p->name()}});
            return tcache.probe(tkey);
        }();
        if (hit) {
            try {
                TuneResult r;
                {
                    obs::PhaseTimer pt(obs::Phase::Cache);
                    EXO2_SPAN("tune.cache_replay",
                              {{"proc", p->name()}});
                    std::vector<FuzzStep> script =
                        verify::script_from_string(hit->script_text);
                    ProcPtr q = replay_script(p, script);
                    r.best = q;
                    r.script = std::move(script);
                    r.cost = simulate_cost_named(q, opts.tune_sizes,
                                                 opts.cost)
                                 .cycles;
                    r.naive_cost = simulate_cost_named(
                                       p, opts.tune_sizes, opts.cost)
                                       .cycles;
                    r.from_cache = true;
                }
                if (opts.validate) {
                    obs::PhaseTimer pt(obs::Phase::Validate);
                    EXO2_SPAN("tune.validate", {{"source", "cache"}});
                    verify::TriOracleReport rep =
                        verify::tri_oracle_check(p, r.best,
                                                 opts.validate_sizes,
                                                 opts.validate_seed);
                    if (!rep.ok)
                        throw VerifyError(
                            "cached winner failed validation: " +
                            rep.detail);
                    r.validated = true;
                }
                if (verbose) {
                    std::cerr << "autotune[" << p->name()
                              << "] cache hit: " << r.cost
                              << " cycles, " << r.script.size()
                              << " steps\n";
                }
                return r;
            } catch (const std::exception& e) {
                // The entry passed its checksum but no longer replays
                // or validates on this library — semantics drifted
                // without a version bump, or damage the checksum
                // cannot see. Quarantine it and search from scratch.
                tcache.invalidate(tkey, "replay");
                if (verbose) {
                    std::cerr << "autotune[" << p->name()
                              << "] cached entry rejected: " << e.what()
                              << "\n";
                }
            }
        }
    }

    TuneSpace space = default_space(machine, opts.precision, opts.cost);

    auto score = [&](const ProcPtr& q) {
        result.stats.states_scored++;
        return simulate_cost_named(q, opts.tune_sizes, opts.cost).cycles;
    };

    State init;
    init.proc = p;
    init.cost = score(p);
    init.digest = proc_digest(p);
    result.naive_cost = init.cost;

    size_t pool_cap = static_cast<size_t>(
        std::max({opts.beam_width, opts.jit_topk, 8}));
    TopPool pool(pool_cap);
    pool.offer(init);

    std::unordered_set<uint64_t> seen{init.digest};
    std::unordered_set<uint64_t> expanded;

    // The initial state is the one state every descent revisits (beam
    // round 1 and the first step of every restart), and enumeration is
    // the expensive part — it validates candidates by applying them —
    // so its action list is computed once and reused.
    std::vector<TuneAction> init_actions;
    bool init_enumerated = false;
    auto actions_for = [&](const State& st,
                           std::vector<TuneAction>* storage)
        -> const std::vector<TuneAction>& {
        if (st.digest == init.digest) {
            if (!init_enumerated) {
                init_actions = enumerate_actions(st.proc, machine,
                                                 opts.precision, space);
                init_enumerated = true;
                result.stats.actions_enumerated +=
                    static_cast<int>(init_actions.size());
            }
            return init_actions;
        }
        *storage = enumerate_actions(st.proc, machine, opts.precision,
                                     space);
        result.stats.actions_enumerated +=
            static_cast<int>(storage->size());
        return *storage;
    };

    auto expand = [&](const State& st, std::vector<State>* out) {
        // A state that survived a round was already expanded then; all
        // its children are in `seen`, so re-enumerating (re-applying
        // every primitive) would be pure waste.
        if (!expanded.insert(st.digest).second)
            return;
        std::vector<TuneAction> storage;
        const std::vector<TuneAction>& actions = actions_for(st, &storage);
        for (const TuneAction& a : actions) {
            if (past_deadline()) {
                result.degraded = true;
                return;
            }
            uint64_t d = proc_digest(a.result);
            if (!seen.insert(d).second) {
                result.stats.dedup_skips++;
                continue;
            }
            State ns;
            ns.proc = a.result;
            ns.script = st.script;
            ns.script.push_back(a.step);
            ns.cost = score(a.result);
            ns.digest = d;
            pool.offer(ns);
            out->push_back(std::move(ns));
        }
    };

    // -- Beam search ---------------------------------------------------
    {
    obs::PhaseTimer phase_search(obs::Phase::Search);
    std::vector<State> beam{init};
    double best_cost = init.cost;
    int stall = 0;
    for (int round = 1; round <= opts.max_rounds; round++) {
        EXO2_SPAN("tune.round", {{"round", round}});
        if (past_deadline()) {
            result.degraded = true;
            break;
        }
        std::vector<State> candidates = beam;
        for (const State& st : beam)
            expand(st, &candidates);
        std::stable_sort(candidates.begin(), candidates.end(),
                         state_less);
        if (candidates.size() >
            static_cast<size_t>(opts.beam_width))
            candidates.resize(static_cast<size_t>(opts.beam_width));
        beam = std::move(candidates);
        result.stats.rounds = round;
        if (verbose) {
            std::cerr << "autotune[" << p->name() << "] round " << round
                      << ": best " << beam[0].cost << " cycles, "
                      << result.stats.states_scored << " scored, "
                      << result.stats.dedup_skips << " deduped\n";
        }
        if (beam[0].cost < best_cost) {
            best_cost = beam[0].cost;
            stall = 0;
        } else if (++stall >= 2) {
            break;
        }
    }

    // -- Random restarts: noisy greedy descents ------------------------
    for (int r = 1; r <= opts.random_restarts; r++) {
        EXO2_SPAN("tune.restart", {{"restart", r}});
        if (past_deadline()) {
            result.degraded = true;
            break;
        }
        XorShiftRng rng(opts.seed * 0x9E3779B97F4A7C15ull +
                        static_cast<uint64_t>(r));
        State cur = init;
        for (int round = 1; round <= opts.max_rounds; round++) {
            if (past_deadline()) {
                result.degraded = true;
                break;
            }
            std::vector<TuneAction> storage;
            const std::vector<TuneAction>& actions =
                actions_for(cur, &storage);
            State best_next;
            double best_noisy =
                std::numeric_limits<double>::infinity();
            for (const TuneAction& a : actions) {
                uint64_t d = proc_digest(a.result);
                State ns;
                ns.proc = a.result;
                ns.script = cur.script;
                ns.script.push_back(a.step);
                ns.cost = score(a.result);  // cache-hit if seen before
                ns.digest = d;
                if (seen.insert(d).second)
                    pool.offer(ns);
                double noisy = ns.cost * (1.0 + 0.25 * rng.unit());
                if (noisy < best_noisy) {
                    best_noisy = noisy;
                    best_next = std::move(ns);
                }
            }
            if (!best_next.proc)
                break;
            cur = std::move(best_next);
        }
        if (verbose) {
            std::cerr << "autotune[" << p->name() << "] restart " << r
                      << ": reached " << cur.cost << " cycles\n";
        }
    }
    }  // phase_search

    // -- Static lint gate (DESIGN.md §9) --------------------------------
    // Every pool candidate is linted before the cjit/sandbox step;
    // Error-level findings (proven out-of-bounds, parallel loops
    // carrying a dependence) prune the candidate from JIT measurement
    // and validation without paying for a compile. Sound rewrites never
    // produce them, so healthy winners are bit-for-bit unchanged; the
    // set is keyed by digest so it survives the post-measurement
    // re-rank.
    std::vector<State> ranked = pool.states();
    std::unordered_set<uint64_t> lint_rejected;
    if (opts.lint) {
        obs::PhaseTimer phase_lint(obs::Phase::Lint);
        EXO2_SPAN("tune.lint_gate",
                  {{"candidates", static_cast<int>(ranked.size())}});
        auto lint_t0 = std::chrono::steady_clock::now();
        for (const State& st : ranked) {
            lint::LintReport lr = lint::lint_proc(st.proc);
            result.stats.lint_checked++;
            if (verbose) {
                std::cerr << "autotune[" << p->name() << "] lint "
                          << (lr.has_errors() ? "PRUNE" : "pass ")
                          << " cost=" << st.cost << " errors="
                          << lr.count(lint::Severity::Error)
                          << " warnings="
                          << lr.count(lint::Severity::Warn) << " infos="
                          << lr.count(lint::Severity::Info) << " proven="
                          << lr.proven << "/" << lr.obligations
                          << (lr.proven_safe() ? " safe" : "") << "\n";
                if (!lr.diags.empty())
                    std::cerr << lr.to_text();
            }
            if (lr.has_errors()) {
                lint_rejected.insert(st.digest);
                result.stats.lint_pruned++;
            }
        }
        result.stats.lint_seconds +=
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          lint_t0)
                .count();
    }
    auto lint_bad = [&](const State& st) {
        return lint_rejected.count(st.digest) > 0;
    };

    // -- JIT-measured refinement ---------------------------------------
    std::vector<double> measured(ranked.size(), -1.0);
    if (opts.jit_topk > 0) {
        obs::PhaseTimer phase_cjit(obs::Phase::Cjit);
        size_t k = std::min(static_cast<size_t>(opts.jit_topk),
                            ranked.size());
        std::vector<std::pair<double, size_t>> order;
        verify::SandboxLimits limits = verify::SandboxLimits::defaults();
        bool sandboxed = verify::sandbox_enabled();
        for (size_t i = 0; i < k; i++) {
            if (past_deadline()) {
                // Skip the remaining measurements; the states already
                // measured keep their wall-clock order.
                result.degraded = true;
                break;
            }
            if (lint_bad(ranked[i]))
                continue;  // pruned before the compile (counted above)
            try {
                EXO2_SPAN("tune.jit_measure",
                          {{"rank", static_cast<int>(i)}});
                verify::CompiledProc cp(ranked[i].proc);
                verify::OracleInputs in = verify::make_inputs(
                    ranked[i].proc, opts.measure_sizes, 0x7777);
                // Candidates are untrusted generated code: measure in
                // the fault sandbox so a kernel that SIGSEGVs or never
                // terminates is scored infeasible — the search keeps
                // going — instead of killing the tuner. EXO2_SANDBOX=0
                // selects the trusted in-process fast path.
                double per;
                if (sandboxed) {
                    verify::TimedOutcome to = cp.time_per_call_sandboxed(
                        in.args, 0.05, 100000, limits);
                    if (!to.ok) {
                        result.stats.jit_faults++;
                        if (verbose) {
                            std::cerr << "autotune[" << p->name()
                                      << "] jit rank " << i
                                      << " faulted: "
                                      << to.fault.to_string() << "\n";
                        }
                        continue;
                    }
                    per = to.seconds_per_call;
                } else {
                    per = cp.time_per_call(in.args, 0.05, 100000);
                }
                measured[i] = per;
                order.emplace_back(per, i);
                result.stats.jit_measured++;
                if (verbose) {
                    std::cerr << "autotune[" << p->name()
                              << "] jit rank " << i << ": "
                              << per * 1e6 << " us/call (cost "
                              << ranked[i].cost << ")\n";
                }
            } catch (const verify::FaultError& e) {
                // Build-phase fault (compiler failure/timeout, dlopen
                // failure): structured, counted, non-fatal.
                result.stats.jit_faults++;
                if (verbose) {
                    std::cerr << "autotune[" << p->name()
                              << "] jit rank " << i << " faulted: "
                              << e.fault().to_string() << "\n";
                }
            } catch (const std::exception& e) {
                // A candidate the cost model accepted but the C
                // backend rejects (VerifyError from the compiler,
                // SchedulingError from codegen checks) is skipped, not
                // fatal — same tolerance the tri-oracle applies.
                if (verbose) {
                    std::cerr << "autotune[" << p->name()
                              << "] jit rank " << i
                              << " failed to compile: " << e.what()
                              << "\n";
                }
            }
        }
        // Re-rank the measured prefix by wall clock (unmeasured states
        // keep their cost-model order after it).
        std::stable_sort(order.begin(), order.end());
        std::vector<State> rr;
        std::vector<double> rm;
        for (auto& [per, i] : order) {
            rr.push_back(ranked[i]);
            rm.push_back(per);
        }
        for (size_t i = 0; i < ranked.size(); i++) {
            if (measured[i] < 0) {
                rr.push_back(ranked[i]);
                rm.push_back(-1.0);
            }
        }
        ranked = std::move(rr);
        measured = std::move(rm);
    }

    // -- Tri-oracle validation ------------------------------------------
    // Past the deadline only the current leader is checked: a degraded
    // answer should cost one tri-oracle pass, not a walk down the
    // whole pool.
    size_t chosen = 0;
    if (!opts.validate) {
        // Without tri-oracle validation the lint gate is the only
        // filter: report the best statically-clean candidate (all-bad
        // falls back to 0, best-effort).
        for (size_t i = 0; i < ranked.size(); i++) {
            if (!lint_bad(ranked[i])) {
                chosen = i;
                break;
            }
        }
    }
    if (opts.validate) {
        obs::PhaseTimer phase_validate(obs::Phase::Validate);
        bool found = false;
        size_t limit =
            result.degraded ? std::min<size_t>(1, ranked.size())
                            : ranked.size();
        for (size_t i = 0; i < limit; i++) {
            if (lint_bad(ranked[i]))
                continue;  // statically unsafe: never a winner
            EXO2_SPAN("tune.validate",
                      {{"candidate", static_cast<int>(i)}});
            verify::TriOracleReport rep = verify::tri_oracle_check(
                p, ranked[i].proc, opts.validate_sizes,
                opts.validate_seed);
            if (rep.ok) {
                chosen = i;
                found = true;
                break;
            }
            result.stats.validate_rejects++;
            if (rep.is_fault())
                result.stats.validate_faults++;
            if (verbose) {
                std::cerr << "autotune[" << p->name()
                          << "] candidate " << i
                          << " failed validation: " << rep.detail
                          << "\n";
            }
        }
        result.validated = found;
        if (!found)
            chosen = 0;  // report best-effort, flagged unvalidated
    }

    const State& win = ranked[chosen];
    result.best = win.proc;
    result.script = win.script;
    result.cost = win.cost;
    result.measured_seconds = measured[chosen];

    // -- Publish the winner (DESIGN.md §8) ------------------------------
    // Only full-search, tri-oracle-validated winners are stored: a
    // degraded (deadline-cut) result would poison every later request
    // for the same key with a weaker schedule.
    if (tcache.enabled() && result.validated && !result.degraded) {
        obs::PhaseTimer phase_store(obs::Phase::Cache);
        EXO2_SPAN("tune.cache_store", {{"proc", p->name()}});
        cache::TuneEntry entry;
        entry.script_text = verify::script_to_string(result.script);
        entry.cost = result.cost;
        entry.validated = true;
        tcache.store(tkey, entry);
    }

    CostSimCacheStats cache1 = cost_sim_cache_stats();
    result.stats.cost_cache_hits = cache1.hits - cache0.hits;
    result.stats.cost_cache_misses = cache1.misses - cache0.misses;
    return result;
}

}  // namespace tune
}  // namespace exo2
