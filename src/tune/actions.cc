#include "src/tune/actions.h"

#include <algorithm>
#include <functional>

#include "src/analysis/affine.h"
#include "src/cursor/cursor.h"
#include "src/ir/builder.h"
#include "src/ir/errors.h"
#include "src/machine/cost_sim.h"
#include "src/obs/trace.h"
#include "src/primitives/primitives.h"
#include "src/sched/blas.h"
#include "src/sched/combinators.h"
#include "src/sched/vectorize.h"
#include "src/tune/tune.h"

namespace exo2 {
namespace tune {

namespace {

/** Pre-order site walk (the ordinal space of tuner steps). */
struct Sites
{
    std::vector<Cursor> loops;
    std::vector<Cursor> allocs;
};

void
walk_block(const ProcPtr& p, const std::vector<StmtPtr>& block,
           const Path& prefix, PathLabel label, Sites* out)
{
    for (size_t i = 0; i < block.size(); i++) {
        const StmtPtr& s = block[i];
        Path here = prefix;
        here.push_back({label, static_cast<int>(i)});
        CursorLoc loc;
        loc.kind = CursorKind::Node;
        loc.path = here;
        Cursor c(p, loc);
        if (s->kind() == StmtKind::For)
            out->loops.push_back(c);
        if (s->kind() == StmtKind::Alloc)
            out->allocs.push_back(c);
        if (!s->body().empty())
            walk_block(p, s->body(), here, PathLabel::Body, out);
        if (!s->orelse().empty())
            walk_block(p, s->orelse(), here, PathLabel::Orelse, out);
    }
}

Sites
walk(const ProcPtr& p)
{
    Sites s;
    walk_block(p, p->body_stmts(), {}, PathLabel::Body, &s);
    return s;
}

const Cursor&
site(const std::vector<Cursor>& v, int64_t ordinal, const char* what)
{
    // Strict bounds (unlike the fuzzer's modulo-wrap `pick`): tuner
    // steps record exact ordinals, so an out-of-range index means the
    // script is being replayed against the wrong proc — fail loudly
    // rather than silently applying a different action.
    if (ordinal < 0 || static_cast<size_t>(ordinal) >= v.size()) {
        throw SchedulingError(
            "tune: step references " + std::string(what) + " #" +
            std::to_string(ordinal) + " but the proc has " +
            std::to_string(v.size()) +
            " (replaying against the wrong proc?)");
    }
    return v[static_cast<size_t>(ordinal)];
}

int64_t
ni(const FuzzStep& st, size_t i)
{
    return i < st.n.size() ? st.n[i] : 0;
}

std::string
si(const FuzzStep& st, size_t i)
{
    if (i >= st.s.size())
        throw SchedulingError("tune: step '" + st.op +
                              "' missing name operand");
    return st.s[i];
}

TailStrategy
divide_tail(int64_t code)
{
    switch (static_cast<uint64_t>(code) % 3) {
      case 0: return TailStrategy::Cut;
      case 1: return TailStrategy::Guard;
      default: return TailStrategy::Perfect;
    }
}

/** Structural facts about one loop subtree, for cheap prefilters. */
struct LoopShape
{
    bool has_inner_for = false;
    bool has_call = false;
    bool has_write = false;  ///< Assign / Reduce anywhere beneath
    size_t stmt_count = 0;   ///< statements in the whole subtree
};

void
scan_shape(const std::vector<StmtPtr>& block, LoopShape* sh)
{
    for (const StmtPtr& s : block) {
        sh->stmt_count++;
        switch (s->kind()) {
          case StmtKind::For:
            sh->has_inner_for = true;
            break;
          case StmtKind::Call:
            sh->has_call = true;
            break;
          case StmtKind::Assign:
          case StmtKind::Reduce:
            sh->has_write = true;
            break;
          default:
            break;
        }
        scan_shape(s->body(), sh);
        scan_shape(s->orelse(), sh);
    }
}

LoopShape
shape_of(const StmtPtr& loop)
{
    LoopShape sh;
    scan_shape(loop->body(), &sh);
    return sh;
}

/** Constant trip count of a loop, or -1 when not constant. */
int64_t
const_trip(const StmtPtr& loop)
{
    Affine lo = to_affine(loop->lo());
    Affine hi = to_affine(loop->hi());
    if (!lo.is_const() || !hi.is_const())
        return -1;
    return hi.constant - lo.constant;
}

}  // namespace

TuneSpace
default_space(const Machine& machine, ScalarType precision,
              const CostConfig& cfg)
{
    TileHints hints = tile_hints(machine, precision, cfg);
    TuneSpace sp;
    sp.divide_factors = hints.split_factors;
    for (int64_t t : hints.cache_tiles) {
        if (std::find(sp.divide_factors.begin(), sp.divide_factors.end(),
                      t) == sp.divide_factors.end())
            sp.divide_factors.push_back(t);
    }
    sp.interleave_factors = {2, 4};
    sp.jam_factors = {2, 4};
    return sp;
}

namespace {

/** Dispatch one tuner op against a precomputed site walk of `p` —
 *  enumeration validates hundreds of candidates per state, and they
 *  all share the same walk. */
ProcPtr
apply_with_sites(const ProcPtr& p, const Sites& w, const FuzzStep& st)
{
    const std::string& op = st.op;
    if (op == "t_divide") {
        return divide_loop(p, site(w.loops, ni(st, 0), "loop"), ni(st, 1),
                           {si(st, 0), si(st, 1)}, divide_tail(ni(st, 2)));
    }
    if (op == "t_reorder")
        return reorder_loops(p, site(w.loops, ni(st, 0), "loop"));
    if (op == "t_unroll")
        return unroll_loop(p, site(w.loops, ni(st, 0), "loop"));
    if (op == "t_vectorize") {
        const Machine& m = find_machine(si(st, 0));
        ScalarType prec = type_from_name(si(st, 1));
        sched::VectorizeOpts opts;
        opts.tail = (ni(st, 1) == 1) ? TailStrategy::CutAndGuard
                                     : TailStrategy::Cut;
        return sched::vectorize(p, site(w.loops, ni(st, 0), "loop"), m,
                                prec, opts);
    }
    if (op == "t_interleave") {
        return sched::interleave_loop(
            p, site(w.loops, ni(st, 0), "loop"),
            static_cast<int>(ni(st, 1)));
    }
    if (op == "t_cse")
        return sched::cse_reads(p, site(w.loops, ni(st, 0), "loop"));
    if (op == "t_licm")
        return sched::hoist_from_loop(p, site(w.loops, ni(st, 0), "loop"));
    if (op == "t_uaj") {
        return sched::unroll_and_jam(p, site(w.loops, ni(st, 0), "loop"),
                                     static_cast<int>(ni(st, 1)));
    }
    if (op == "t_lift_alloc") {
        return lift_alloc(p, site(w.allocs, ni(st, 0), "alloc"),
                          static_cast<int>(ni(st, 1)));
    }
    throw SchedulingError("tune: unknown op '" + op + "'");
}

}  // namespace

ProcPtr
apply_tune_step(const ProcPtr& p, const FuzzStep& st)
{
    if (st.op.rfind("t_", 0) != 0)
        return verify::apply_fuzz_step(p, st);
    return apply_with_sites(p, walk(p), st);
}

ProcPtr
replay_script(const ProcPtr& p, const std::vector<FuzzStep>& script)
{
    ProcPtr cur = p;
    for (const FuzzStep& st : script)
        cur = apply_tune_step(cur, st);
    return cur;
}

std::vector<TuneAction>
enumerate_actions(const ProcPtr& p, const Machine& machine,
                  ScalarType precision, const TuneSpace& space)
{
    EXO2_SPAN("tune.enumerate", {{"proc", p->name()}});
    Sites w = walk(p);
    uint64_t base_digest = proc_digest(p);
    std::vector<TuneAction> out;

    // Try one candidate: apply, drop inapplicable (SchedulingError /
    // InvalidCursorError) and no-op results. Anything else escapes —
    // a primitive reporting inapplicability with the wrong exception
    // type is an engine bug the legality tests must see.
    auto consider = [&](FuzzStep st) {
        ProcPtr res;
        try {
            res = apply_with_sites(p, w, st);
        } catch (const SchedulingError&) {
            return;
        } catch (const InvalidCursorError&) {
            return;
        }
        if (!res || proc_digest(res) == base_digest)
            return;
        out.push_back({std::move(st), std::move(res)});
    };

    for (size_t li = 0; li < w.loops.size(); li++) {
        int64_t l = static_cast<int64_t>(li);
        StmtPtr loop = w.loops[li].stmt();
        LoopShape sh = shape_of(loop);
        int64_t trip = const_trip(loop);

        // Vectorize innermost compute loops (the combinator internally
        // re-bases, divides by the vector width, stages, fissions, and
        // replaces with machine instructions).
        if (space.enable_vectorize && !sh.has_inner_for &&
            !sh.has_call && sh.has_write) {
            consider({"t_vectorize",
                      {l, 0},
                      {machine.name(), type_name(precision)}});
            if (machine.supports_predication()) {
                consider({"t_vectorize",
                          {l, 1},
                          {machine.name(), type_name(precision)}});
            }
        }

        // Tile: divide by register multiples and cache-tile sides.
        if (space.enable_divide) {
            for (int64_t f : space.divide_factors) {
                if (f < 2 || (trip >= 0 && trip <= f))
                    continue;
                std::string io = fresh_in(p, loop->iter() + "o");
                std::string ii = fresh_in(p, loop->iter() + "i");
                consider({"t_divide", {l, f, 0}, {io, ii}});
            }
        }

        if (space.enable_reorder && loop->body().size() == 1 &&
            loop->body()[0]->kind() == StmtKind::For) {
            consider({"t_reorder", {l}, {}});
        }

        if (space.enable_unroll && trip >= 2 &&
            trip <= space.unroll_max_trip) {
            consider({"t_unroll", {l}, {}});
        }

        // Interleave vectorized (instruction-calling) loops for ILP.
        // The body-size cap stops the search from stacking interleaves
        // into unbounded unrolling (the cost model prices the saved
        // loop overhead but not the instruction-cache footprint).
        if (space.enable_interleave && sh.has_call && !sh.has_inner_for &&
            loop->body().size() <= space.max_interleave_body) {
            for (int f : space.interleave_factors) {
                if (trip >= 0 && trip <= f)
                    continue;
                consider({"t_interleave", {l, f}, {}});
            }
        }

        if (space.enable_cse && !sh.has_call)
            consider({"t_cse", {l}, {}});

        if (space.enable_licm)
            consider({"t_licm", {l}, {}});

        // Unroll-and-jam batches outer iterations into the inner loop
        // for input reuse. The subtree cap stops jam-stacking (jamming
        // an already-jammed nest multiplies body size; the cost model
        // sees the saved loads but not the register pressure).
        if (space.enable_uaj && sh.has_inner_for &&
            sh.stmt_count <= space.max_uaj_stmts) {
            for (int f : space.jam_factors) {
                if (trip >= 0 && trip <= f)
                    continue;
                consider({"t_uaj", {l, f}, {}});
            }
        }
    }

    if (space.enable_lift_alloc) {
        for (size_t ai = 0; ai < w.allocs.size(); ai++) {
            consider({"t_lift_alloc", {static_cast<int64_t>(ai), 1}, {}});
            consider({"t_lift_alloc", {static_cast<int64_t>(ai), 2}, {}});
        }
    }

    return out;
}

}  // namespace tune
}  // namespace exo2
