#ifndef EXO2_TUNE_TUNE_H_
#define EXO2_TUNE_TUNE_H_

/**
 * @file
 * Schedule autotuning (DESIGN.md §6): cost-guided beam search over the
 * scheduling-primitive library, with optional JIT-measured refinement.
 *
 * The tuner closes the loop the rest of the engine leaves open: the
 * primitive library supplies the moves, the machine description the
 * parameters (vector widths, tile sizes), the cost simulator the
 * objective, the in-process C JIT the ground truth, and the tri-oracle
 * the safety net. `autotune` searches schedule space from a naive
 * kernel and returns the best proc it found *plus the replayable
 * script that produces it* — the same self-describing `FuzzStep`
 * serialization the verification fuzzer records, so a tuning result
 * is reproducible from text alone.
 *
 * Environment overrides (all optional, applied on top of TuneOpts;
 * see DESIGN.md §6): EXO2_TUNE_BEAM, EXO2_TUNE_ROUNDS,
 * EXO2_TUNE_RESTARTS, EXO2_TUNE_JIT_TOPK, EXO2_TUNE_SEED,
 * EXO2_TUNE_VERBOSE, EXO2_TUNE_DEADLINE.
 *
 * Persistence (DESIGN.md §8): when EXO2_CACHE_DIR is set, validated
 * winners are published to the on-disk tuning cache keyed on
 * (proc digest, machine, native ISA, tune sizes) and replayed —
 * re-validated through the tri-oracle — on the next identical request.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "src/cache/cache.h"
#include "src/ir/proc.h"
#include "src/machine/cost_sim.h"
#include "src/machine/machine.h"
#include "src/verify/fuzz.h"

namespace exo2 {
namespace tune {

using verify::FuzzStep;
using verify::SizeEnv;

/** Search configuration. `tune_sizes` is the only required field. */
struct TuneOpts
{
    // -- Search shape --------------------------------------------------
    /** Schedule states kept per round. 1 = greedy descent. */
    int beam_width = 6;
    /** Maximum search rounds (and so maximum script length). */
    int max_rounds = 8;
    /** Extra noisy greedy descents from the naive proc, merged into
     *  the candidate pool (random-restart mode). Deterministic under
     *  `seed`. */
    int random_restarts = 0;
    /** Seed for restart noise (the plain beam search is exhaustive per
     *  round and does not consume randomness). */
    uint64_t seed = 0;

    // -- Scoring -------------------------------------------------------
    /** Concrete sizes the cost simulator scores schedules at. Keep
     *  them small: relative ranking is what matters, and simulation
     *  time is proportional to trip counts. Required. */
    SizeEnv tune_sizes;
    /** Machine model for scoring. */
    CostConfig cost;
    /** Precision the action library vectorizes at. */
    ScalarType precision = ScalarType::F32;

    // -- JIT-measured refinement ----------------------------------------
    /** Re-rank the top-k cost-model survivors by real wall clock
     *  through the in-process C JIT (0 = cost model only). The JIT
     *  honours EXO2_NATIVE_ISA, so measured refinement sees the same
     *  native instruction lowering the final binary would. */
    int jit_topk = 0;
    /** Sizes for the JIT measurement; empty = `tune_sizes`. */
    SizeEnv measure_sizes;

    // -- Static lint gate -------------------------------------------------
    /** Lint every pool candidate (lint_proc, DESIGN.md §9) before the
     *  JIT/sandbox step; candidates with Error-level findings — proven
     *  out-of-bounds accesses, parallel loops carrying a dependence —
     *  are pruned without paying for a compile. Sound rewrites never
     *  trip it, so winners are unchanged; it is defense-in-depth
     *  against engine bugs and costs ~nothing (pool is tiny). Env
     *  override: EXO2_TUNE_LINT=0 disables. */
    bool lint = true;

    // -- Validation ------------------------------------------------------
    /** Tri-oracle-check the winner against the input proc before
     *  reporting it (candidates that fail are discarded). */
    bool validate = true;
    /** Sizes for validation; empty = `tune_sizes`. */
    SizeEnv validate_sizes;
    uint64_t validate_seed = 4242;

    // -- Service behavior -------------------------------------------------
    /** Soft wall-clock budget in seconds (0 = unlimited). When the
     *  budget runs out mid-search the tuner stops expanding, skips the
     *  remaining JIT measurements, validates only the current leader,
     *  and returns best-so-far with `TuneResult::degraded` set — a
     *  deadline produces a usable (if weaker) schedule, never an
     *  error. Env override: EXO2_TUNE_DEADLINE. */
    double deadline_seconds = 0.0;
    /** Consult/fill the persistent tuning cache when EXO2_CACHE_DIR is
     *  set (cache.h). Off = this call neither reads nor publishes. */
    bool use_cache = true;
};

/** Search-effort counters for one `autotune` call. */
struct TuneStats
{
    int rounds = 0;              ///< beam rounds actually run
    int actions_enumerated = 0;  ///< legal actions generated
    int states_scored = 0;       ///< cost simulations requested
    int dedup_skips = 0;         ///< states dropped by digest dedup
    int jit_measured = 0;        ///< candidates timed through the JIT
    /** Candidates whose JIT build or sandboxed measurement faulted
     *  (compile fail/timeout, dlopen fail, crash, hang, rlimit kill);
     *  each is scored infeasible and the search continues. */
    int jit_faults = 0;
    int validate_rejects = 0;    ///< candidates the tri-oracle rejected
    /** Winner candidates the tri-oracle rejected because the C oracle
     *  faulted (subset of the faults observed during validation; these
     *  also count toward validate_rejects). */
    int validate_faults = 0;
    /** Pool candidates run through the static lint gate, and the
     *  subset pruned before the cjit/sandbox step for Error-level
     *  findings (proven violations; see lint.h's soundness contract). */
    int lint_checked = 0;
    int lint_pruned = 0;
    /** Wall-clock seconds spent in the lint gate. */
    double lint_seconds = 0;
    /** Cost-cache deltas over this call (see cost_sim.h). */
    uint64_t cost_cache_hits = 0;
    uint64_t cost_cache_misses = 0;
};

/** Outcome of one `autotune` call. */
struct TuneResult
{
    ProcPtr best;                   ///< winning schedule (never null)
    std::vector<FuzzStep> script;   ///< replayable derivation of `best`
    double cost = 0.0;              ///< simulated cycles of `best`
    double naive_cost = 0.0;        ///< simulated cycles of the input
    /** Wall-clock seconds per call of `best` when JIT re-ranking ran,
     *  else negative. */
    double measured_seconds = -1.0;
    /** Whether `best` passed the tri-oracle (always false when
     *  `opts.validate` is off). */
    bool validated = false;
    /** The deadline expired mid-search: `best` is the best schedule
     *  found so far, not the end of the search. */
    bool degraded = false;
    /** `best` was replayed from the persistent tuning cache instead of
     *  searched for (still tri-oracle-validated when opts.validate). */
    bool from_cache = false;
    TuneStats stats;
};

/**
 * Search for a fast schedule of `p` on `machine`. Deterministic for a
 * fixed (proc, machine, opts) when `jit_topk == 0`; JIT re-ranking
 * introduces measurement noise into winner selection by design.
 * Throws SchedulingError when `tune_sizes` is empty or does not cover
 * the proc's size arguments.
 */
TuneResult autotune(const ProcPtr& p, const Machine& machine,
                    const TuneOpts& opts);

/**
 * Apply one schedule-script step. Understands the tuner vocabulary
 * (`t_divide`, `t_reorder`, `t_unroll`, `t_vectorize`, `t_interleave`,
 * `t_cse`, `t_licm`, `t_uaj`, `t_lift_alloc` — see actions.h) and
 * falls back to `verify::apply_fuzz_step` for every fuzzer op, so any
 * recorded script — tuner winner or fuzz repro — replays through this
 * one entry point. Throws SchedulingError when a step is inapplicable.
 */
ProcPtr apply_tune_step(const ProcPtr& p, const FuzzStep& step);

/** Fold `apply_tune_step` over a whole script. */
ProcPtr replay_script(const ProcPtr& p,
                      const std::vector<FuzzStep>& script);

/**
 * The persistent-cache identity of a tuning request: proc_digest(p),
 * the machine's name, the environment-selected native ISA
 * (EXO2_NATIVE_ISA — measured refinement and validation both honour
 * it, so results for different ISAs must not alias), and the
 * canonical rendering of `tune_sizes` ("K=48,M=48,N=48"; SizeEnv is
 * an ordered map, so the rendering is unique). Shared by `autotune`
 * and the scheduling daemon.
 */
cache::TuneKey tune_cache_key(const ProcPtr& p, const Machine& machine,
                              const SizeEnv& tune_sizes);

}  // namespace tune
}  // namespace exo2

#endif  // EXO2_TUNE_TUNE_H_
