#include <map>
#include <set>
#include <string>
#include <utility>

#include "src/analysis/context.h"
#include "src/ir/builder.h"
#include "src/lint/lint.h"
#include "src/machine/machine.h"

/**
 * @file
 * Schedule-hygiene pass (DESIGN.md §9): findings that cost performance
 * or signal a half-finished schedule without threatening safety — all
 * Info severity.
 *
 *  - EXL301/302: allocations never used / written but never read
 *    (a producer scheduled away, or a lift_alloc left behind).
 *  - EXL303/304: provably zero-trip / single-trip loops (dead code, or
 *    a divide_loop remainder worth simplifying away).
 *  - EXL305: masked vector *arithmetic* on a machine without a
 *    predicated ALU — AVX2 has vmaskmov loads/stores but emulates
 *    masked ALU ops by blending, which the cost model prices at one
 *    extra op per instruction; a cut tail avoids the mask entirely.
 */

namespace exo2 {
namespace lint {

namespace {

std::string
loc_str(const Path& path)
{
    CursorLoc loc;
    loc.kind = CursorKind::Node;
    loc.path = path;
    return loc.to_string();
}

/** instr name -> (machine name, machine has a predicated ALU). */
const std::map<std::string, std::pair<std::string, bool>>&
instr_machines()
{
    static const auto* map = [] {
        auto* m =
            new std::map<std::string, std::pair<std::string, bool>>();
        for (const Machine* mach : {&machine_avx2(), &machine_avx512()}) {
            for (const auto& ip : mach->all_instrs()) {
                (*m)[ip->name()] = {mach->name(),
                                    mach->has_predicated_alu()};
            }
        }
        return m;
    }();
    return *map;
}

bool
block_has_if(const std::vector<StmtPtr>& b)
{
    for (const auto& s : b) {
        if (s->kind() == StmtKind::If)
            return true;
        if (s->kind() == StmtKind::For && block_has_if(s->body()))
            return true;
    }
    return false;
}

/** ALU instruction classes; loads/stores have native masked forms on
 *  every vector machine here (vmaskmov), so only these pay the blend. */
bool
is_alu_class(const std::string& cls)
{
    return cls == "arith" || cls == "fma" || cls == "broadcast" ||
           cls == "reduce";
}

class HygieneWalker
{
  public:
    HygieneWalker(const ProcPtr& p, LintReport* rep) : p_(p), rep_(rep) {}

    void run()
    {
        for (const auto& a : collect_accesses_block(p_->body_stmts())) {
            if (a.kind == AccessKind::Read)
                read_.insert(a.buf);
            else
                written_.insert(a.buf);
        }
        Path path;
        block(p_->body_stmts(), PathLabel::Body, path);
    }

  private:
    void diag(const Path& path, const char* code, const std::string& buf,
              std::string message, std::string fixit)
    {
        Diagnostic d;
        d.code = code;
        d.severity = Severity::Info;
        d.pass = "hygiene";
        d.loc = loc_str(path);
        d.buf = buf;
        d.message = std::move(message);
        d.fixit = std::move(fixit);
        rep_->diags.push_back(std::move(d));
    }

    void stmt(const StmtPtr& s, const Path& path)
    {
        switch (s->kind()) {
          case StmtKind::Alloc: {
            const std::string& n = s->name();
            bool r = read_.count(n) > 0;
            bool w = written_.count(n) > 0;
            if (!r && !w) {
                diag(path, "EXL301", n,
                     "allocation '" + n + "' is never used",
                     "delete the allocation (delete_buffer)");
            } else if (!r) {
                diag(path, "EXL302", n,
                     "allocation '" + n +
                         "' is written but never read (dead stores)",
                     "delete the allocation and its stores");
            }
            return;
          }
          case StmtKind::For: {
            Context ctx = Context::at(p_, path);
            if (ctx.prove_eq(s->lo(), s->hi())) {
                diag(path, "EXL303", s->iter(),
                     "loop '" + s->iter() +
                         "' provably runs zero iterations",
                     "delete the dead loop");
            } else if (ctx.prove_eq(s->hi(), s->lo() + idx_const(1))) {
                diag(path, "EXL304", s->iter(),
                     "loop '" + s->iter() +
                         "' provably runs exactly one iteration",
                     "inline the single iteration (remove_loop)");
            }
            Path bpath = path;
            block(s->body(), PathLabel::Body, bpath);
            return;
          }
          case StmtKind::If: {
            Path bpath = path;
            block(s->body(), PathLabel::Body, bpath);
            bpath = path;
            block(s->orelse(), PathLabel::Orelse, bpath);
            return;
          }
          case StmtKind::Call: {
            const ProcPtr& callee = s->callee();
            if (!callee || !callee->is_instr())
                return;
            auto it = instr_machines().find(callee->name());
            if (it == instr_machines().end() || it->second.second)
                return;  // unknown machine, or predicated ALU present
            if (!is_alu_class(callee->instr()->instr_class))
                return;
            // Masked variants are the guarded ones: their semantics
            // body carries the lane guard the mask implements.
            if (!block_has_if(callee->body_stmts()))
                return;
            diag(path, "EXL305", callee->name(),
                 "masked '" + callee->name() + "' on " + it->second.first +
                     " is emulated by blending (no predicated ALU; one "
                     "extra op per instruction)",
                 "vectorize with a cut tail (TailStrategy::Cut) or "
                 "target a machine with mask registers");
            return;
          }
          default:
            return;
        }
    }

    void block(const std::vector<StmtPtr>& b, PathLabel label, Path& path)
    {
        for (size_t i = 0; i < b.size(); i++) {
            path.push_back({label, static_cast<int>(i)});
            stmt(b[i], path);
            path.pop_back();
        }
    }

    const ProcPtr& p_;
    LintReport* rep_;
    std::set<std::string> read_;
    std::set<std::string> written_;
};

class HygienePass : public LintPass
{
  public:
    const char* name() const override { return "hygiene"; }
    void run(const ProcPtr& p, const LintOptions&,
             LintReport* out) const override
    {
        HygieneWalker(p, out).run();
    }
};

}  // namespace

const LintPass&
hygiene_pass()
{
    static const HygienePass pass;
    return pass;
}

}  // namespace lint
}  // namespace exo2
