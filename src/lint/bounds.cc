#include <map>

#include "src/analysis/context.h"
#include "src/ir/builder.h"
#include "src/ir/printer.h"
#include "src/lint/lint.h"

/**
 * @file
 * Bounds pass: prove every buffer/window access in-bounds for all
 * admissible sizes (DESIGN.md §9).
 *
 * The walker descends the statement tree, growing a Context (asserts,
 * size-arg nonnegativity, enclosing loop ranges, if-guards) and a shape
 * environment (arg dims, alloc dims, window extents). Window
 * declarations are checked against their base buffer and then accessed
 * *compositionally*: later accesses through the window are proved
 * against the window's own extents, which is sound given the window
 * itself was checked — this keeps windows-of-windows precise where the
 * effect collector goes opaque.
 *
 * Severity discipline: an access is EXL002 (Error) only when the facts
 * *imply* the index escapes on every valuation and the program point is
 * not provably dead — a true positive for any size that reaches it.
 * Everything short of a proof-of-safety or proof-of-violation is
 * EXL001 (Warn).
 */

namespace exo2 {
namespace lint {

namespace {

std::string
loc_str(const Path& path)
{
    CursorLoc loc;
    loc.kind = CursorKind::Node;
    loc.path = path;
    return loc.to_string();
}

class BoundsWalker
{
  public:
    BoundsWalker(const ProcPtr& p, LintReport* rep) : p_(p), rep_(rep) {}

    void run()
    {
        for (const auto& a : p_->args()) {
            if (!a.dims.empty())
                shapes_[a.name] = a.dims;
        }
        Context ctx = Context::at(p_, {});
        Path path;
        block(ctx, p_->body_stmts(), PathLabel::Body, path);
    }

  private:
    void diag(const Path& path, const char* code, Severity sev,
              const std::string& buf, std::string message,
              std::string fixit)
    {
        Diagnostic d;
        d.code = code;
        d.severity = sev;
        d.pass = "bounds";
        d.loc = loc_str(path);
        d.buf = buf;
        d.message = std::move(message);
        d.fixit = std::move(fixit);
        rep_->diags.push_back(std::move(d));
    }

    /** Prove lo <= e < hi given ctx; one obligation. `what` renders the
     *  access for messages (e.g. "read y[i + 1]"). */
    void check_range(Context& ctx, const Path& path, const std::string& buf,
                     const ExprPtr& e, const ExprPtr& hi,
                     const std::string& what)
    {
        rep_->obligations++;
        bool lo_ok = ctx.prove_ge0(e);
        bool hi_ok = ctx.prove_lt(e, hi);
        if (lo_ok && hi_ok) {
            rep_->proven++;
            return;
        }
        // Proven violation: every valuation the facts admit puts the
        // index outside [0, hi), and the point is not provably dead.
        LinearSystem sys = ctx.system();
        bool reachable = !sys.infeasible();
        Affine below = to_affine(e);  // e <= -1  <=>  -e - 1 >= 0
        below = affine_neg(below);
        below.constant -= 1;
        Affine above = affine_sub(to_affine(e), to_affine(hi));  // e >= hi
        if (reachable &&
            (ctx.system().implies_ge0(below) ||
             ctx.system().implies_ge0(above))) {
            diag(path, "EXL002", Severity::Error, buf,
                 what + ": index " + print_expr(e) +
                     " is out of bounds (valid range [0, " +
                     print_expr(hi) + ")) for every admissible size",
                 "fix the index expression or delete the dead access");
            return;
        }
        std::string side = lo_ok ? (print_expr(e) + " < " + print_expr(hi))
                                 : ("0 <= " + print_expr(e));
        diag(path, "EXL001", Severity::Warn, buf,
             what + ": cannot prove " + side,
             "guard the access or add an assert() precondition "
             "establishing the bound");
    }

    void check_access(Context& ctx, const Path& path, const std::string& buf,
                     const std::vector<ExprPtr>& idx, const char* kind)
    {
        auto it = shapes_.find(buf);
        if (it == shapes_.end()) {
            if (!idx.empty()) {
                rep_->obligations++;
                diag(path, "EXL003", Severity::Warn, buf,
                     std::string(kind) + " of '" + buf +
                         "' with unknown shape",
                     "");
            }
            return;
        }
        const auto& dims = it->second;
        if (idx.empty())
            return;  // whole-buffer mention (window/call argument)
        if (idx.size() != dims.size()) {
            rep_->obligations++;
            diag(path, "EXL003", Severity::Warn, buf,
                 std::string(kind) + " of '" + buf + "' with " +
                     std::to_string(idx.size()) + " indices but " +
                     std::to_string(dims.size()) + " dims",
                 "");
            return;
        }
        std::string what = std::string(kind) + " " + buf + "[";
        for (size_t d = 0; d < idx.size(); d++) {
            if (d)
                what += ", ";
            what += print_expr(idx[d]);
        }
        what += "]";
        for (size_t d = 0; d < idx.size(); d++)
            check_range(ctx, path, buf, idx[d], dims[d], what);
    }

    /** Check a window expression against its base and return the
     *  window's own shape (extents); null optional when unknowable. */
    std::vector<ExprPtr> check_window(Context& ctx, const Path& path,
                                      const ExprPtr& w, bool* known)
    {
        *known = false;
        const std::string& base = w->name();
        auto it = shapes_.find(base);
        std::vector<ExprPtr> extents;
        if (it == shapes_.end()) {
            rep_->obligations++;
            diag(path, "EXL003", Severity::Warn, base,
                 "window of '" + base + "' with unknown shape", "");
            return extents;
        }
        const auto& dims = it->second;
        if (w->window_dims().size() != dims.size()) {
            rep_->obligations++;
            diag(path, "EXL003", Severity::Warn, base,
                 "window of '" + base + "' with " +
                     std::to_string(w->window_dims().size()) +
                     " dims but base has " + std::to_string(dims.size()),
                 "");
            return extents;
        }
        for (size_t d = 0; d < dims.size(); d++) {
            const WindowDim& wd = w->window_dims()[d];
            if (wd.is_point()) {
                check_range(ctx, path, base, wd.lo, dims[d],
                            "window point " + base + "[" +
                                print_expr(wd.lo) + "]");
            } else {
                // lo in [0, dim], hi in [lo, dim]: prove 0 <= lo,
                // lo <= hi, hi <= dim (three obligations).
                rep_->obligations++;
                std::string what = "window " + base + "[" +
                                   print_expr(wd.lo) + ":" +
                                   print_expr(wd.hi) + "]";
                bool ok = ctx.prove_ge0(wd.lo) &&
                          ctx.prove_le(wd.lo, wd.hi) &&
                          ctx.prove_le(wd.hi, dims[d]);
                if (ok) {
                    rep_->proven++;
                } else {
                    diag(path, "EXL001", Severity::Warn, base,
                         what + ": cannot prove 0 <= " +
                             print_expr(wd.lo) + " <= " +
                             print_expr(wd.hi) + " <= " +
                             print_expr(dims[d]),
                         "guard the window or add an assert() "
                         "precondition establishing the bound");
                }
                extents.push_back(wd.hi - wd.lo);
            }
        }
        *known = true;
        return extents;
    }

    void expr(Context& ctx, const Path& path, const ExprPtr& e)
    {
        if (!e)
            return;
        switch (e->kind()) {
          case ExprKind::Read:
            check_access(ctx, path, e->name(), e->idx(), "read");
            for (const auto& i : e->idx())
                expr(ctx, path, i);
            return;
          case ExprKind::Window: {
            bool known = false;
            check_window(ctx, path, e, &known);
            return;
          }
          case ExprKind::Stride:
          case ExprKind::ReadConfig:
            return;
          default:
            for (const auto& k : e->children())
                expr(ctx, path, k);
            return;
        }
    }

    void stmt(Context& ctx, const Path& path, const StmtPtr& s)
    {
        switch (s->kind()) {
          case StmtKind::Assign:
          case StmtKind::Reduce: {
            expr(ctx, path, s->rhs());
            for (const auto& i : s->idx())
                expr(ctx, path, i);
            check_access(ctx, path, s->name(), s->idx(),
                         s->kind() == StmtKind::Assign ? "write" : "reduce");
            return;
          }
          case StmtKind::Alloc: {
            for (const auto& d : s->dims()) {
                expr(ctx, path, d);
                rep_->obligations++;
                if (ctx.prove_ge0(d)) {
                    rep_->proven++;
                } else {
                    diag(path, "EXL004", Severity::Warn, s->name(),
                         "allocation '" + s->name() + "' extent " +
                             print_expr(d) +
                             " is not provably nonnegative",
                         "add an assert() precondition");
                }
            }
            shapes_[s->name()] = s->dims();
            return;
          }
          case StmtKind::For: {
            expr(ctx, path, s->lo());
            expr(ctx, path, s->hi());
            Context inner = ctx;
            inner.enter_loop(s->iter(), s->lo(), s->hi());
            Path bpath = path;
            block(inner, s->body(), PathLabel::Body, bpath);
            return;
          }
          case StmtKind::If: {
            expr(ctx, path, s->cond());
            {
                Context inner = ctx;
                inner.assume(s->cond());
                Path bpath = path;
                block(inner, s->body(), PathLabel::Body, bpath);
            }
            if (!s->orelse().empty()) {
                Context inner = ctx;
                ExprPtr nc = negate_pred(s->cond());
                if (nc)
                    inner.assume(nc);
                Path bpath = path;
                block(inner, s->orelse(), PathLabel::Orelse, bpath);
            }
            return;
          }
          case StmtKind::Call:
            for (const auto& a : s->args())
                expr(ctx, path, a);
            return;
          case StmtKind::WriteConfig:
            expr(ctx, path, s->rhs());
            return;
          case StmtKind::WindowDecl: {
            bool known = false;
            auto extents = check_window(ctx, path, s->rhs(), &known);
            if (known)
                shapes_[s->name()] = std::move(extents);
            return;
          }
          case StmtKind::Pass:
            return;
        }
    }

    void block(Context& ctx, const std::vector<StmtPtr>& b, PathLabel label,
               Path& path)
    {
        for (size_t i = 0; i < b.size(); i++) {
            path.push_back({label, static_cast<int>(i)});
            stmt(ctx, path, b[i]);
            path.pop_back();
        }
    }

    const ProcPtr& p_;
    LintReport* rep_;
    std::map<std::string, std::vector<ExprPtr>> shapes_;
};

class BoundsPass : public LintPass
{
  public:
    const char* name() const override { return "bounds"; }
    void run(const ProcPtr& p, const LintOptions&,
             LintReport* out) const override
    {
        BoundsWalker(p, out).run();
    }
};

}  // namespace

const LintPass&
bounds_pass()
{
    static const BoundsPass pass;
    return pass;
}

}  // namespace lint
}  // namespace exo2
