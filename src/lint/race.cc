#include <string>
#include <vector>

#include "src/analysis/context.h"
#include "src/lint/lint.h"

/**
 * @file
 * Race pass: certifying re-check of every `Par` loop (DESIGN.md §9).
 *
 * `parallelize_loop` proves independence once, at scheduling time; this
 * pass re-derives the proof for the *final* program so downstream
 * consumers (the tuner's pre-JIT gate, the daemon's admission check,
 * the planned OpenMP lowering) never trust a stale annotation. A
 * conflict on a Par loop is an Error: the checker exhibits the access
 * pair (buffer, kinds, index expressions) via `loop_conflicts`, which
 * is also what `parallelize_loop`'s failure message now reports.
 * Covers `parallelize_reduction` partial-sum buffers (their Par loops
 * re-certify like any other) and nested parallel loops (every Par loop
 * is certified at its own depth; nesting itself is only an Info).
 */

namespace exo2 {
namespace lint {

namespace {

std::string
loc_str(const Path& path)
{
    CursorLoc loc;
    loc.kind = CursorKind::Node;
    loc.path = path;
    return loc.to_string();
}

void
walk(const ProcPtr& p, const std::vector<StmtPtr>& b, PathLabel label,
     Path& path, int par_depth, std::vector<ParLoopCert>* certs,
     LintReport* rep)
{
    for (size_t i = 0; i < b.size(); i++) {
        path.push_back({label, static_cast<int>(i)});
        const StmtPtr& s = b[i];
        int depth = par_depth;
        if (s->kind() == StmtKind::For) {
            if (s->loop_mode() == LoopMode::Par) {
                ParLoopCert cert;
                cert.iter = s->iter();
                cert.loc = loc_str(path);
                Context ctx = Context::at(p, path);
                cert.safe = !loop_conflicts(ctx, s, /*reductions_ok=*/false,
                                            &cert.conflicts);
                if (rep != nullptr) {
                    if (!cert.safe) {
                        for (const auto& c : cert.conflicts) {
                            Diagnostic d;
                            d.code = "EXL201";
                            d.severity = Severity::Error;
                            d.pass = "race";
                            d.loc = cert.loc;
                            d.buf = c.buf;
                            d.message = "parallel loop '" + cert.iter +
                                        "' carries a dependence: " +
                                        c.detail;
                            d.fixit =
                                "keep the loop sequential, make the "
                                "accesses disjoint, or use "
                                "parallelize_reduction for reductions";
                            rep->diags.push_back(std::move(d));
                        }
                    }
                    if (par_depth > 0) {
                        Diagnostic d;
                        d.code = "EXL202";
                        d.severity = Severity::Info;
                        d.pass = "race";
                        d.loc = cert.loc;
                        d.buf = cert.iter;
                        d.message = "parallel loop '" + cert.iter +
                                    "' is nested inside another parallel "
                                    "loop (oversubscription; inner "
                                    "parallelism is usually wasted)";
                        d.fixit = "parallelize only the outer loop, or "
                                  "collapse the nest first";
                        rep->diags.push_back(std::move(d));
                    }
                }
                if (certs != nullptr)
                    certs->push_back(std::move(cert));
                depth = par_depth + 1;
            }
            walk(p, s->body(), PathLabel::Body, path, depth, certs, rep);
        } else if (s->kind() == StmtKind::If) {
            walk(p, s->body(), PathLabel::Body, path, depth, certs, rep);
            walk(p, s->orelse(), PathLabel::Orelse, path, depth, certs,
                 rep);
        }
        path.pop_back();
    }
}

class RacePass : public LintPass
{
  public:
    const char* name() const override { return "race"; }
    void run(const ProcPtr& p, const LintOptions&,
             LintReport* out) const override
    {
        Path path;
        walk(p, p->body_stmts(), PathLabel::Body, path, 0, nullptr, out);
    }
};

}  // namespace

std::vector<ParLoopCert>
certify_parallel_loops(const ProcPtr& p)
{
    std::vector<ParLoopCert> certs;
    Path path;
    walk(p, p->body_stmts(), PathLabel::Body, path, 0, &certs, nullptr);
    return certs;
}

const LintPass&
race_pass()
{
    static const RacePass pass;
    return pass;
}

}  // namespace lint
}  // namespace exo2
