#ifndef EXO2_LINT_LINT_H_
#define EXO2_LINT_LINT_H_

/**
 * @file
 * Static schedule-safety analyzer (DESIGN.md §9): a pass framework
 * over the IR producing Diagnostics with stable codes, severities,
 * source-cursor locations, and fix-it hints.
 *
 * Four passes layer on the affine machinery of src/analysis/:
 *
 *  - **bounds**: prove every buffer/window access in-bounds for all
 *    admissible loop extents and size arguments (`implies_ge0`).
 *  - **init**: forward dataflow over Read/Write/Reduce effect sets
 *    detecting reads of never-written allocation cells.
 *  - **race**: certifying re-check of every `Par` loop, reporting the
 *    conflicting access pair (buffer, kinds, index expressions); its
 *    verdict (`certify_parallel_loops`) is what an OpenMP lowering
 *    consumes.
 *  - **hygiene**: dead allocations, degenerate (zero/one-trip) loops,
 *    masked vector arithmetic on machines without a predicated ALU.
 *
 * Soundness contract (the direction matters): an `Error` diagnostic is
 * a *proven* violation — the access is out-of-bounds for every
 * valuation the facts allow, or the parallel loop carries a dependence
 * the checker can exhibit. A `Warn` means safety could not be proved
 * (the checker is conservative: windows of windows, non-affine
 * indices). `Info` is hygiene. `LintReport::proven_safe()` is the
 * strong claim — every obligation discharged, no soundness-pass Warn
 * or Error — and is what verify/fuzz.cc cross-checks against the
 * dynamic tri-oracle: a proven-safe schedule that crashes the JIT is a
 * lint soundness bug and fails the fuzz run.
 *
 * Diagnostic code registry (stable; never renumber):
 *
 *   EXL001 Warn   bounds: access not provably in-bounds
 *   EXL002 Error  bounds: access provably out-of-bounds (reachable)
 *   EXL003 Warn   bounds: access with unknown or mismatched shape
 *   EXL004 Warn   bounds: allocation extent not provably nonnegative
 *   EXL101 Warn   init:   read of a never-written allocation
 *   EXL201 Error  race:   parallel loop carries a cross-iteration
 *                         conflict (message names the access pair)
 *   EXL202 Info   race:   nested parallel loops
 *   EXL301 Info   hygiene: allocation never used
 *   EXL302 Info   hygiene: allocation written but never read
 *   EXL303 Info   hygiene: provably zero-trip loop
 *   EXL304 Info   hygiene: provably single-trip loop
 *   EXL305 Info   hygiene: masked vector op emulated (no predicated
 *                          ALU on the target machine)
 */

#include <cstddef>
#include <string>
#include <vector>

#include "src/analysis/effects.h"
#include "src/ir/proc.h"

namespace exo2 {
namespace lint {

enum class Severity : uint8_t {
    Info,
    Warn,
    Error,
};

/** "info" / "warn" / "error". */
const char* severity_name(Severity s);

/** One finding. `loc` is the source-cursor location of the anchor
 *  statement in `CursorLoc::to_string()` form (e.g. "body[1].body[0]"),
 *  usable to re-derive a Cursor into the proc. */
struct Diagnostic
{
    std::string code;      ///< stable registry code, e.g. "EXL002"
    Severity severity = Severity::Info;
    std::string pass;      ///< producing pass ("bounds", "init", ...)
    std::string loc;       ///< cursor path of the anchor statement
    std::string buf;       ///< buffer/loop/instr involved (may be empty)
    std::string message;   ///< human-readable finding
    std::string fixit;     ///< suggested remedy (may be empty)
};

/** Which passes run. All on by default. */
struct LintOptions
{
    bool bounds = true;
    bool init = true;
    bool race = true;
    bool hygiene = true;
};

struct LintReport
{
    std::string proc;  ///< name of the linted procedure
    std::vector<Diagnostic> diags;
    /** Bounds/window proof obligations attempted / discharged. */
    int obligations = 0;
    int proven = 0;
    /** True when bounds+init+race all ran (proven_safe prerequisite). */
    bool sound_passes_ran = false;

    size_t count(Severity s) const;
    bool has_errors() const { return count(Severity::Error) > 0; }
    bool has_code(const std::string& code) const;

    /**
     * The strong static claim: every access proven in-bounds and every
     * soundness pass silent (no Warn/Error from bounds/init/race).
     * Implies the schedule cannot fault for any admissible sizes; the
     * fuzz harness treats a contradiction by ASan/the tri-oracle as a
     * lint soundness bug.
     */
    bool proven_safe() const;

    /** One line per diagnostic: `code severity loc: message [fixit]`. */
    std::string to_text() const;
    /** Machine-readable rendering (stable field names). */
    std::string to_json() const;
};

/** A lint pass: stateless, registered in all_passes(). */
class LintPass
{
  public:
    virtual ~LintPass() = default;
    virtual const char* name() const = 0;
    virtual void run(const ProcPtr& p, const LintOptions& opts,
                     LintReport* out) const = 0;
};

/** The pass registry, in execution order: bounds, init, race, hygiene. */
const std::vector<const LintPass*>& all_passes();

/** Run the (enabled) passes over `p`. */
LintReport lint_proc(const ProcPtr& p, const LintOptions& opts = {});

/**
 * The race pass's certifying verdict for one `Par` loop, consumable by
 * the planned OpenMP lowering: safe == true is a proof of iteration
 * independence; otherwise `conflicts` exhibits every access pair the
 * checker could not separate.
 */
struct ParLoopCert
{
    std::string iter;  ///< loop iteration variable
    std::string loc;   ///< cursor path of the loop
    bool safe = false;
    std::vector<LoopConflict> conflicts;
};

/** Certify every `Par`-mode loop of `p` (empty when none). */
std::vector<ParLoopCert> certify_parallel_loops(const ProcPtr& p);

// Individual passes (for targeted use and the registry).
const LintPass& bounds_pass();
const LintPass& init_pass();
const LintPass& race_pass();
const LintPass& hygiene_pass();

}  // namespace lint
}  // namespace exo2

#endif  // EXO2_LINT_LINT_H_
