#include <set>
#include <string>

#include "src/lint/lint.h"

/**
 * @file
 * Init pass: forward dataflow over Read/Write/Reduce effect sets
 * detecting reads of never-written allocation cells (DESIGN.md §9).
 *
 * Allocations are zero-filled in the object language, so such reads are
 * well-defined — but they are the classic symptom of a scheduling bug
 * (PR 3's tri-oracle caught several, one size at a time): the schedule
 * dropped or reordered the producer. The pass therefore reports Warn,
 * not Error.
 *
 * Lattice per allocation: never-written / maybe-written, merged by
 * union over branches ("any path wrote" silences the warning —
 * conservative in the non-flagging direction). Reduce targets count as
 * writes but *not* as flagged reads: `acc += x` onto a zero-filled
 * accumulator is the idiomatic reduction pattern (and what
 * parallelize_reduction's partial-sum buffers do).
 */

namespace exo2 {
namespace lint {

namespace {

std::string
loc_str(const Path& path)
{
    CursorLoc loc;
    loc.kind = CursorKind::Node;
    loc.path = path;
    return loc.to_string();
}

class InitWalker
{
  public:
    explicit InitWalker(LintReport* rep) : rep_(rep) {}

    void run(const ProcPtr& p)
    {
        Path path;
        block(p->body_stmts(), PathLabel::Body, path);
    }

  private:
    void leaf(const StmtPtr& s, const Path& path)
    {
        auto accs = collect_accesses(s);
        // Reads first (an Assign's RHS reads precede its write; the
        // collector preserves statement order through calls), but a
        // statement both reading and writing the same never-written
        // buffer flags: the read happens before this statement's write.
        for (const auto& a : accs) {
            if (a.kind != AccessKind::Read)
                continue;
            if (allocs_.count(a.buf) == 0 || written_.count(a.buf) > 0)
                continue;
            if (flagged_.insert(a.buf).second) {
                Diagnostic d;
                d.code = "EXL101";
                d.severity = Severity::Warn;
                d.pass = "init";
                d.loc = loc_str(path);
                d.buf = a.buf;
                d.message = describe_access(a) + ": allocation '" + a.buf +
                            "' is never written before this read (reads "
                            "the zero fill)";
                d.fixit = "write '" + a.buf +
                          "' first, or delete the allocation if the "
                          "producer was scheduled away";
                rep_->diags.push_back(std::move(d));
            }
        }
        for (const auto& a : accs) {
            if (a.kind != AccessKind::Read)
                written_.insert(a.buf);
        }
    }

    void stmt(const StmtPtr& s, const Path& path)
    {
        switch (s->kind()) {
          case StmtKind::Alloc:
            allocs_.insert(s->name());
            return;
          case StmtKind::For: {
            Path bpath = path;
            block(s->body(), PathLabel::Body, bpath);
            return;
          }
          case StmtKind::If: {
            // Both branches see the incoming state; their writes merge
            // by union (either branch writing silences later reads).
            std::set<std::string> in = written_;
            Path bpath = path;
            block(s->body(), PathLabel::Body, bpath);
            std::set<std::string> after_body = written_;
            written_ = in;
            bpath = path;
            block(s->orelse(), PathLabel::Orelse, bpath);
            written_.insert(after_body.begin(), after_body.end());
            return;
          }
          case StmtKind::Pass:
            return;
          default:
            leaf(s, path);
            return;
        }
    }

    void block(const std::vector<StmtPtr>& b, PathLabel label, Path& path)
    {
        for (size_t i = 0; i < b.size(); i++) {
            path.push_back({label, static_cast<int>(i)});
            stmt(b[i], path);
            path.pop_back();
        }
    }

    LintReport* rep_;
    std::set<std::string> allocs_;
    std::set<std::string> written_;
    std::set<std::string> flagged_;  ///< one diagnostic per buffer
};

class InitPass : public LintPass
{
  public:
    const char* name() const override { return "init"; }
    void run(const ProcPtr& p, const LintOptions&,
             LintReport* out) const override
    {
        InitWalker(out).run(p);
    }
};

}  // namespace

const LintPass&
init_pass()
{
    static const InitPass pass;
    return pass;
}

}  // namespace lint
}  // namespace exo2
