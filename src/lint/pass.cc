#include "src/lint/lint.h"

#include <algorithm>
#include <cstdio>

#include "src/obs/trace.h"

namespace exo2 {
namespace lint {

const char*
severity_name(Severity s)
{
    switch (s) {
      case Severity::Info:
        return "info";
      case Severity::Warn:
        return "warn";
      case Severity::Error:
        return "error";
    }
    return "?";
}

size_t
LintReport::count(Severity s) const
{
    return static_cast<size_t>(
        std::count_if(diags.begin(), diags.end(),
                      [&](const Diagnostic& d) { return d.severity == s; }));
}

bool
LintReport::has_code(const std::string& code) const
{
    return std::any_of(diags.begin(), diags.end(),
                       [&](const Diagnostic& d) { return d.code == code; });
}

bool
LintReport::proven_safe() const
{
    if (!sound_passes_ran || proven != obligations)
        return false;
    for (const auto& d : diags) {
        if (d.severity == Severity::Info)
            continue;
        if (d.pass == "bounds" || d.pass == "init" || d.pass == "race")
            return false;
    }
    return true;
}

std::string
LintReport::to_text() const
{
    std::string out;
    for (const auto& d : diags) {
        out += d.code;
        out += " ";
        out += severity_name(d.severity);
        out += " [";
        out += d.pass;
        out += "] ";
        out += d.loc.empty() ? "<proc>" : d.loc;
        out += ": ";
        out += d.message;
        if (!d.fixit.empty()) {
            out += " (fix: ";
            out += d.fixit;
            out += ")";
        }
        out += "\n";
    }
    return out;
}

namespace {

std::string
json_escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof(hex), "\\u%04x", c);
                out += hex;
            } else {
                out += c;
            }
        }
    }
    return out;
}

}  // namespace

std::string
LintReport::to_json() const
{
    std::string out = "{\"proc\":\"" + json_escape(proc) + "\",\"diags\":[";
    for (size_t i = 0; i < diags.size(); i++) {
        const Diagnostic& d = diags[i];
        if (i)
            out += ",";
        out += "{\"code\":\"" + json_escape(d.code) + "\"";
        out += ",\"severity\":\"";
        out += severity_name(d.severity);
        out += "\"";
        out += ",\"pass\":\"" + json_escape(d.pass) + "\"";
        out += ",\"loc\":\"" + json_escape(d.loc) + "\"";
        out += ",\"buf\":\"" + json_escape(d.buf) + "\"";
        out += ",\"message\":\"" + json_escape(d.message) + "\"";
        out += ",\"fixit\":\"" + json_escape(d.fixit) + "\"}";
    }
    out += "],\"errors\":" + std::to_string(count(Severity::Error));
    out += ",\"warnings\":" + std::to_string(count(Severity::Warn));
    out += ",\"infos\":" + std::to_string(count(Severity::Info));
    out += ",\"obligations\":" + std::to_string(obligations);
    out += ",\"proven\":" + std::to_string(proven);
    out += ",\"proven_safe\":";
    out += proven_safe() ? "true" : "false";
    out += "}";
    return out;
}

const std::vector<const LintPass*>&
all_passes()
{
    static const std::vector<const LintPass*> passes = {
        &bounds_pass(),
        &init_pass(),
        &race_pass(),
        &hygiene_pass(),
    };
    return passes;
}

LintReport
lint_proc(const ProcPtr& p, const LintOptions& opts)
{
    EXO2_SPAN("lint.proc", {{"proc", p->name()}});
    LintReport rep;
    rep.proc = p->name();
    auto enabled = [&](const LintPass* pass) {
        std::string n = pass->name();
        if (n == "bounds")
            return opts.bounds;
        if (n == "init")
            return opts.init;
        if (n == "race")
            return opts.race;
        if (n == "hygiene")
            return opts.hygiene;
        return true;
    };
    for (const LintPass* pass : all_passes()) {
        if (!enabled(pass))
            continue;
        EXO2_SPAN("lint.pass", {{"pass", pass->name()}});
        pass->run(p, opts, &rep);
    }
    rep.sound_passes_ran = opts.bounds && opts.init && opts.race;
    return rep;
}

}  // namespace lint
}  // namespace exo2
