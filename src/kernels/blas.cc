#include "src/kernels/blas.h"

#include <map>

#include "src/frontend/parser.h"
#include "src/ir/errors.h"

namespace exo2 {
namespace kernels {

namespace {

std::string
fmt(std::string tpl, const std::string& key, const std::string& value)
{
    for (;;) {
        auto pos = tpl.find(key);
        if (pos == std::string::npos)
            return tpl;
        tpl.replace(pos, key.size(), value);
    }
}

KernelDef
make(const std::string& name, ScalarType prec, const char* tpl,
     const std::string& main_loop, bool triangular = false)
{
    std::string proc_name;
    for (char c : name) {
        proc_name +=
            isalnum(static_cast<unsigned char>(c)) ? c : '_';
    }
    std::string src = fmt(tpl, "{T}", type_name(prec));
    src = fmt(src, "{NAME}", proc_name);
    KernelDef d;
    d.name = name;
    d.prec = prec;
    d.proc = parse_proc(src);
    d.main_loop = main_loop;
    d.triangular = triangular;
    return d;
}

// ---- Level 1 ------------------------------------------------------------

const char* kAsum = R"(
def {NAME}(n: size, x: {T}[n] @ DRAM, res: {T}[1] @ DRAM):
    for i in seq(0, n):
        res[0] += abs(x[i])
)";

const char* kAxpy = R"(
def {NAME}(n: size, a: {T}, x: {T}[n] @ DRAM, y: {T}[n] @ DRAM):
    for i in seq(0, n):
        y[i] += a * x[i]
)";

const char* kDot = R"(
def {NAME}(n: size, x: {T}[n] @ DRAM, y: {T}[n] @ DRAM, res: {T}[1] @ DRAM):
    for i in seq(0, n):
        res[0] += x[i] * y[i]
)";

const char* kSdsdot = R"(
def {NAME}(n: size, sb: f32, x: f32[n] @ DRAM, y: f32[n] @ DRAM, res: f64[1] @ DRAM):
    res[0] += sb
    for i in seq(0, n):
        res[0] += x[i] * y[i]
)";

const char* kDsdot = R"(
def {NAME}(n: size, x: f32[n] @ DRAM, y: f32[n] @ DRAM, res: f64[1] @ DRAM):
    for i in seq(0, n):
        res[0] += x[i] * y[i]
)";

const char* kCopy = R"(
def {NAME}(n: size, x: {T}[n] @ DRAM, y: {T}[n] @ DRAM):
    for i in seq(0, n):
        y[i] = x[i]
)";

const char* kSwap = R"(
def {NAME}(n: size, x: {T}[n] @ DRAM, y: {T}[n] @ DRAM):
    for i in seq(0, n):
        t: {T} @ DRAM
        t = x[i]
        x[i] = y[i]
        y[i] = t
)";

const char* kScal = R"(
def {NAME}(n: size, a: {T}, x: {T}[n] @ DRAM):
    for i in seq(0, n):
        x[i] = a * x[i]
)";

const char* kRot = R"(
def {NAME}(n: size, c: {T}, s: {T}, x: {T}[n] @ DRAM, y: {T}[n] @ DRAM):
    for i in seq(0, n):
        xt: {T} @ DRAM
        xt = c * x[i] + s * y[i]
        y[i] = c * y[i] - s * x[i]
        x[i] = xt
)";

// Modified Givens rotations, one kernel per flag (Appendix D.1).
const char* kRotmM1 = R"(
def {NAME}(n: size, h11: {T}, h12: {T}, h21: {T}, h22: {T}, x: {T}[n] @ DRAM, y: {T}[n] @ DRAM):
    for i in seq(0, n):
        xt: {T} @ DRAM
        xt = h11 * x[i] + h12 * y[i]
        y[i] = h21 * x[i] + h22 * y[i]
        x[i] = xt
)";

const char* kRotm0 = R"(
def {NAME}(n: size, h12: {T}, h21: {T}, x: {T}[n] @ DRAM, y: {T}[n] @ DRAM):
    for i in seq(0, n):
        xt: {T} @ DRAM
        xt = x[i] + h12 * y[i]
        y[i] = h21 * x[i] + y[i]
        x[i] = xt
)";

const char* kRotm1 = R"(
def {NAME}(n: size, h11: {T}, h22: {T}, x: {T}[n] @ DRAM, y: {T}[n] @ DRAM):
    for i in seq(0, n):
        xt: {T} @ DRAM
        xt = h11 * x[i] + y[i]
        y[i] = h22 * y[i] - x[i]
        x[i] = xt
)";

const char* kRotmM2 = R"(
def {NAME}(n: size, x: {T}[n] @ DRAM, y: {T}[n] @ DRAM):
    for i in seq(0, n):
        x[i] = x[i]
)";

// ---- Level 2 ------------------------------------------------------------

const char* kGemvN = R"(
def {NAME}(M: size, N: size, A: {T}[M, N] @ DRAM, x: {T}[N] @ DRAM, y: {T}[M] @ DRAM):
    for i in seq(0, M):
        for j in seq(0, N):
            y[i] += x[j] * A[i, j]
)";

const char* kGemvT = R"(
def {NAME}(M: size, N: size, A: {T}[M, N] @ DRAM, x: {T}[M] @ DRAM, y: {T}[N] @ DRAM):
    for i in seq(0, M):
        for j in seq(0, N):
            y[j] += x[i] * A[i, j]
)";

const char* kGer = R"(
def {NAME}(M: size, N: size, alpha: {T}, x: {T}[M] @ DRAM, y: {T}[N] @ DRAM, A: {T}[M, N] @ DRAM):
    for i in seq(0, M):
        for j in seq(0, N):
            A[i, j] += alpha * x[i] * y[j]
)";

const char* kSymvL = R"(
def {NAME}(N: size, A: {T}[N, N] @ DRAM, x: {T}[N] @ DRAM, y: {T}[N] @ DRAM):
    for i in seq(0, N):
        for j in seq(0, i):
            y[i] += x[j] * A[i, j]
            y[j] += x[i] * A[i, j]
        y[i] += x[i] * A[i, i]
)";

const char* kSymvU = R"(
def {NAME}(N: size, A: {T}[N, N] @ DRAM, x: {T}[N] @ DRAM, y: {T}[N] @ DRAM):
    for i in seq(0, N):
        for j in seq(i + 1, N):
            y[i] += x[j] * A[i, j]
            y[j] += x[i] * A[i, j]
        y[i] += x[i] * A[i, i]
)";

const char* kSyrL = R"(
def {NAME}(N: size, alpha: {T}, x: {T}[N] @ DRAM, A: {T}[N, N] @ DRAM):
    for i in seq(0, N):
        for j in seq(0, i + 1):
            A[i, j] += alpha * x[i] * x[j]
)";

const char* kSyrU = R"(
def {NAME}(N: size, alpha: {T}, x: {T}[N] @ DRAM, A: {T}[N, N] @ DRAM):
    for i in seq(0, N):
        for j in seq(i, N):
            A[i, j] += alpha * x[i] * x[j]
)";

const char* kSyr2L = R"(
def {NAME}(N: size, alpha: {T}, x: {T}[N] @ DRAM, y: {T}[N] @ DRAM, A: {T}[N, N] @ DRAM):
    for i in seq(0, N):
        for j in seq(0, i + 1):
            A[i, j] += alpha * x[i] * y[j] + alpha * y[i] * x[j]
)";

const char* kSyr2U = R"(
def {NAME}(N: size, alpha: {T}, x: {T}[N] @ DRAM, y: {T}[N] @ DRAM, A: {T}[N, N] @ DRAM):
    for i in seq(0, N):
        for j in seq(i, N):
            A[i, j] += alpha * x[i] * y[j] + alpha * y[i] * x[j]
)";

// Triangular matrix-vector multiply: y = op(A) * x over the triangle.
// l/u = lower/upper, n/t = (non)transposed, n/u = non-unit/unit diag.
const char* kTrmvLnn = R"(
def {NAME}(N: size, A: {T}[N, N] @ DRAM, x: {T}[N] @ DRAM, y: {T}[N] @ DRAM):
    for i in seq(0, N):
        for j in seq(0, i + 1):
            y[i] += A[i, j] * x[j]
)";

const char* kTrmvLnu = R"(
def {NAME}(N: size, A: {T}[N, N] @ DRAM, x: {T}[N] @ DRAM, y: {T}[N] @ DRAM):
    for i in seq(0, N):
        y[i] += x[i]
        for j in seq(0, i):
            y[i] += A[i, j] * x[j]
)";

const char* kTrmvLtn = R"(
def {NAME}(N: size, A: {T}[N, N] @ DRAM, x: {T}[N] @ DRAM, y: {T}[N] @ DRAM):
    for i in seq(0, N):
        for j in seq(0, i + 1):
            y[j] += A[i, j] * x[i]
)";

const char* kTrmvLtu = R"(
def {NAME}(N: size, A: {T}[N, N] @ DRAM, x: {T}[N] @ DRAM, y: {T}[N] @ DRAM):
    for i in seq(0, N):
        y[i] += x[i]
        for j in seq(0, i):
            y[j] += A[i, j] * x[i]
)";

const char* kTrmvUnn = R"(
def {NAME}(N: size, A: {T}[N, N] @ DRAM, x: {T}[N] @ DRAM, y: {T}[N] @ DRAM):
    for i in seq(0, N):
        for j in seq(i, N):
            y[i] += A[i, j] * x[j]
)";

const char* kTrmvUnu = R"(
def {NAME}(N: size, A: {T}[N, N] @ DRAM, x: {T}[N] @ DRAM, y: {T}[N] @ DRAM):
    for i in seq(0, N):
        y[i] += x[i]
        for j in seq(i + 1, N):
            y[i] += A[i, j] * x[j]
)";

const char* kTrmvUtn = R"(
def {NAME}(N: size, A: {T}[N, N] @ DRAM, x: {T}[N] @ DRAM, y: {T}[N] @ DRAM):
    for i in seq(0, N):
        for j in seq(i, N):
            y[j] += A[i, j] * x[i]
)";

const char* kTrmvUtu = R"(
def {NAME}(N: size, A: {T}[N, N] @ DRAM, x: {T}[N] @ DRAM, y: {T}[N] @ DRAM):
    for i in seq(0, N):
        y[i] += x[i]
        for j in seq(i + 1, N):
            y[j] += A[i, j] * x[i]
)";

// Triangular solve: x := op(A)^-1 * x. The dot-product inner loop is
// the vectorization target; the outer recurrence is sequential.
const char* kTrsvLnn = R"(
def {NAME}(N: size, A: {T}[N, N] @ DRAM, x: {T}[N] @ DRAM):
    for i in seq(0, N):
        for j in seq(0, i):
            x[i] += -(A[i, j] * x[j])
        x[i] = x[i] / A[i, i]
)";

const char* kTrsvLnu = R"(
def {NAME}(N: size, A: {T}[N, N] @ DRAM, x: {T}[N] @ DRAM):
    for i in seq(0, N):
        for j in seq(0, i):
            x[i] += -(A[i, j] * x[j])
)";

// Transposed solves walk columns; expressed with the reduction flipped.
const char* kTrsvLtn = R"(
def {NAME}(N: size, A: {T}[N, N] @ DRAM, x: {T}[N] @ DRAM):
    for i in seq(0, N):
        x[N - 1 - i] = x[N - 1 - i] / A[N - 1 - i, N - 1 - i]
        for j in seq(0, N - 1 - i):
            x[j] += -(A[N - 1 - i, j] * x[N - 1 - i])
)";

const char* kTrsvLtu = R"(
def {NAME}(N: size, A: {T}[N, N] @ DRAM, x: {T}[N] @ DRAM):
    for i in seq(0, N):
        for j in seq(0, N - 1 - i):
            x[j] += -(A[N - 1 - i, j] * x[N - 1 - i])
)";

const char* kTrsvUnn = R"(
def {NAME}(N: size, A: {T}[N, N] @ DRAM, x: {T}[N] @ DRAM):
    for i in seq(0, N):
        for j in seq(N - i, N):
            x[N - 1 - i] += -(A[N - 1 - i, j] * x[j])
        x[N - 1 - i] = x[N - 1 - i] / A[N - 1 - i, N - 1 - i]
)";

const char* kTrsvUnu = R"(
def {NAME}(N: size, A: {T}[N, N] @ DRAM, x: {T}[N] @ DRAM):
    for i in seq(0, N):
        for j in seq(N - i, N):
            x[N - 1 - i] += -(A[N - 1 - i, j] * x[j])
)";

const char* kTrsvUtn = R"(
def {NAME}(N: size, A: {T}[N, N] @ DRAM, x: {T}[N] @ DRAM):
    for i in seq(0, N):
        x[i] = x[i] / A[i, i]
        for j in seq(i + 1, N):
            x[j] += -(A[i, j] * x[i])
)";

const char* kTrsvUtu = R"(
def {NAME}(N: size, A: {T}[N, N] @ DRAM, x: {T}[N] @ DRAM):
    for i in seq(0, N):
        for j in seq(i + 1, N):
            x[j] += -(A[i, j] * x[i])
)";

const char* kSgemm = R"(
def sgemm(M: size, N: size, K: size, A: f32[M, K] @ DRAM, B: f32[K, N] @ DRAM, C: f32[M, N] @ DRAM):
    for k in seq(0, K):
        for i in seq(0, M):
            for j in seq(0, N):
                C[i, j] += A[i, k] * B[k, j]
)";

std::vector<KernelDef>
build_level1()
{
    std::vector<KernelDef> out;
    for (ScalarType t : {ScalarType::F32, ScalarType::F64}) {
        std::string p = (t == ScalarType::F32) ? "s" : "d";
        out.push_back(make(p + "asum", t, kAsum, "i"));
        out.push_back(make(p + "axpy", t, kAxpy, "i"));
        out.push_back(make(p + "dot", t, kDot, "i"));
        out.push_back(make(p + "copy", t, kCopy, "i"));
        out.push_back(make(p + "swap", t, kSwap, "i"));
        out.push_back(make(p + "scal", t, kScal, "i"));
        out.push_back(make(p + "rot", t, kRot, "i"));
        out.push_back(make(p + "rotm(-1)", t, kRotmM1, "i"));
        out.push_back(make(p + "rotm(0)", t, kRotm0, "i"));
        out.push_back(make(p + "rotm(1)", t, kRotm1, "i"));
        out.push_back(make(p + "rotm(-2)", t, kRotmM2, "i"));
    }
    out.push_back(make("sdsdot", ScalarType::F32, kSdsdot, "i"));
    out.push_back(make("dsdot", ScalarType::F32, kDsdot, "i"));
    return out;
}

std::vector<KernelDef>
build_level2()
{
    std::vector<KernelDef> out;
    for (ScalarType t : {ScalarType::F32, ScalarType::F64}) {
        std::string p = (t == ScalarType::F32) ? "s" : "d";
        out.push_back(make(p + "gemv_n", t, kGemvN, "i"));
        out.push_back(make(p + "gemv_t", t, kGemvT, "i"));
        out.push_back(make(p + "ger", t, kGer, "i"));
        out.push_back(make(p + "symv_l", t, kSymvL, "i", true));
        out.push_back(make(p + "symv_u", t, kSymvU, "i", true));
        out.push_back(make(p + "syr_l", t, kSyrL, "i", true));
        out.push_back(make(p + "syr_u", t, kSyrU, "i", true));
        out.push_back(make(p + "syr2_l", t, kSyr2L, "i", true));
        out.push_back(make(p + "syr2_u", t, kSyr2U, "i", true));
        out.push_back(make(p + "trmv_lnn", t, kTrmvLnn, "i", true));
        out.push_back(make(p + "trmv_lnu", t, kTrmvLnu, "i", true));
        out.push_back(make(p + "trmv_ltn", t, kTrmvLtn, "i", true));
        out.push_back(make(p + "trmv_ltu", t, kTrmvLtu, "i", true));
        out.push_back(make(p + "trmv_unn", t, kTrmvUnn, "i", true));
        out.push_back(make(p + "trmv_unu", t, kTrmvUnu, "i", true));
        out.push_back(make(p + "trmv_utn", t, kTrmvUtn, "i", true));
        out.push_back(make(p + "trmv_utu", t, kTrmvUtu, "i", true));
        out.push_back(make(p + "trsv_lnn", t, kTrsvLnn, "i", true));
        out.push_back(make(p + "trsv_lnu", t, kTrsvLnu, "i", true));
        out.push_back(make(p + "trsv_ltn", t, kTrsvLtn, "i", true));
        out.push_back(make(p + "trsv_ltu", t, kTrsvLtu, "i", true));
        out.push_back(make(p + "trsv_unn", t, kTrsvUnn, "i", true));
        out.push_back(make(p + "trsv_unu", t, kTrsvUnu, "i", true));
        out.push_back(make(p + "trsv_utn", t, kTrsvUtn, "i", true));
        out.push_back(make(p + "trsv_utu", t, kTrsvUtu, "i", true));
    }
    return out;
}

}  // namespace

const std::vector<KernelDef>&
blas_level1()
{
    static std::vector<KernelDef> k = build_level1();
    return k;
}

const std::vector<KernelDef>&
blas_level2()
{
    static std::vector<KernelDef> k = build_level2();
    return k;
}

const KernelDef&
find_kernel(const std::string& name)
{
    for (const auto& k : blas_level1()) {
        if (k.name == name)
            return k;
    }
    for (const auto& k : blas_level2()) {
        if (k.name == name)
            return k;
    }
    // A caller-supplied lookup key, not an engine invariant.
    throw SchedulingError("unknown kernel: '" + name +
                          "' (see blas_level1()/blas_level2() for the "
                          "available variants)");
}

ProcPtr
sgemm()
{
    static ProcPtr p = parse_proc(kSgemm);
    return p;
}

}  // namespace kernels
}  // namespace exo2
