#include "src/kernels/image.h"

#include "src/frontend/parser.h"

namespace exo2 {
namespace kernels {

namespace {

// The tiled schedules use 32x256 tiles (Figure 11); sizes are asserted
// to be whole multiples.
const char* kBlur = R"(
def blur(H: size, W: size, inp: f32[H + 2, W + 2] @ DRAM, blur_y: f32[H, W] @ DRAM):
    assert H % 32 == 0
    assert W % 256 == 0
    blur_x: f32[H + 2, W] @ DRAM
    for y in seq(0, H + 2):
        for x in seq(0, W):
            blur_x[y, x] = (inp[y, x] + inp[y, x + 1] + inp[y, x + 2]) * 0.33333334
    for y in seq(0, H):
        for x in seq(0, W):
            blur_y[y, x] = (blur_x[y, x] + blur_x[y + 1, x] + blur_x[y + 2, x]) * 0.33333334
)";

const char* kUnsharp = R"(
def unsharp(H: size, W: size, inp: f32[H + 2, W + 2] @ DRAM, out: f32[H, W] @ DRAM):
    assert H % 32 == 0
    assert W % 256 == 0
    bx: f32[H + 2, W] @ DRAM
    for y in seq(0, H + 2):
        for x in seq(0, W):
            bx[y, x] = (inp[y, x] + inp[y, x + 1] + inp[y, x + 2]) * 0.33333334
    by: f32[H, W] @ DRAM
    for y in seq(0, H):
        for x in seq(0, W):
            by[y, x] = (bx[y, x] + bx[y + 1, x] + bx[y + 2, x]) * 0.33333334
    for y in seq(0, H):
        for x in seq(0, W):
            out[y, x] = 2.0 * inp[y + 1, x + 1] - by[y, x]
)";

}  // namespace

ProcPtr
blur()
{
    static ProcPtr p = parse_proc(kBlur);
    return p;
}

ProcPtr
unsharp()
{
    static ProcPtr p = parse_proc(kUnsharp);
    return p;
}

}  // namespace kernels
}  // namespace exo2
