#ifndef EXO2_KERNELS_IMAGE_H_
#define EXO2_KERNELS_IMAGE_H_

/**
 * @file
 * Image-processing pipelines for the Halide reproduction
 * (Section 6.3.2): 3x3 box blur and unsharp masking. As in the paper,
 * image sizes are restricted to whole multiples of the tile size.
 */

#include "src/ir/proc.h"

namespace exo2 {
namespace kernels {

/** Separable 3x3 box blur: blur_x then blur_y (Figure 11's algorithm). */
ProcPtr blur();

/** Unsharp mask: two blur stages then `out = 2*in - blurred`. */
ProcPtr unsharp();

}  // namespace kernels
}  // namespace exo2

#endif  // EXO2_KERNELS_IMAGE_H_
