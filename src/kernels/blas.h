#ifndef EXO2_KERNELS_BLAS_H_
#define EXO2_KERNELS_BLAS_H_

/**
 * @file
 * Object-code definitions of the BLAS level 1 and level 2 kernels the
 * paper optimizes (Sections 6.2.1, 6.2.2) plus SGEMM (6.2.3).
 *
 * Deviations from reference BLAS, documented in DESIGN.md:
 *  - `nrm2` / `iamax` are omitted (value-dependent control; the paper
 *    makes the same exclusion).
 *  - triangular kernels write a separate output vector rather than
 *    updating in place (ascending loops only in the object language).
 *  - sdsdot/dsdot accumulate at f64 via an f64 result buffer.
 */

#include <string>
#include <vector>

#include "src/ir/proc.h"

namespace exo2 {
namespace kernels {

/** A named kernel variant with its precision and main-loop iterator. */
struct KernelDef
{
    std::string name;       ///< e.g. "saxpy", "dgemv_n"
    ScalarType prec;        ///< computation precision
    ProcPtr proc;
    std::string main_loop;  ///< iterator of the outermost compute loop
    bool triangular = false;
};

/** The 24 level-1 kernel variants (s/d x {asum, axpy, dot, sdsdot,
 *  dsdot*, copy, swap, scal, rot, rotm(-1/0/1/-2)}). */
const std::vector<KernelDef>& blas_level1();

/** The 50 level-2 kernel variants. */
const std::vector<KernelDef>& blas_level2();

/** Look up a kernel by name across both levels. */
const KernelDef& find_kernel(const std::string& name);

/** Outer-product SGEMM (Appendix C starting point). */
ProcPtr sgemm();

}  // namespace kernels
}  // namespace exo2

#endif  // EXO2_KERNELS_BLAS_H_
