#include "src/interp/interp.h"

#include <algorithm>
#include <cmath>

#include "src/ir/errors.h"
#include "src/ir/printer.h"

namespace exo2 {

Buffer::Buffer(ScalarType type, std::vector<int64_t> dims)
    : type_(type), dims_(std::move(dims))
{
    int64_t n = 1;
    for (int64_t d : dims_) {
        if (d < 0)
            throw InternalError("negative buffer dimension");
        n *= d;
    }
    if (dims_.empty())
        n = 1;
    data_.assign(static_cast<size_t>(n), 0.0);
}

namespace {

/** Round-to-storage conversion mirroring C assignment semantics. */
double
convert(ScalarType t, double v)
{
    switch (t) {
      case ScalarType::F32:
        return static_cast<double>(static_cast<float>(v));
      case ScalarType::F64:
        return v;
      case ScalarType::I8:
        return static_cast<double>(
            static_cast<int8_t>(static_cast<int64_t>(v)));
      case ScalarType::I32:
        return static_cast<double>(
            static_cast<int32_t>(static_cast<int64_t>(v)));
      default:
        return v;
    }
}

}  // namespace

void
Buffer::set(int64_t flat, double v)
{
    data_.at(static_cast<size_t>(flat)) = convert(type_, v);
}

void
Buffer::fill_random(uint64_t seed)
{
    uint64_t s = seed * 6364136223846793005ull + 1442695040888963407ull;
    for (auto& v : data_) {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        double u = static_cast<double>((s >> 16) & 0xFFFFFF) /
                   static_cast<double>(0xFFFFFF);
        v = convert(type_, 2.0 * u - 1.0);
    }
}

void
Buffer::fill(double v)
{
    for (auto& x : data_)
        x = convert(type_, v);
}

namespace {

std::map<std::string, ExternFn>&
extern_registry()
{
    static std::map<std::string, ExternFn> reg = [] {
        std::map<std::string, ExternFn> r;
        r["relu"] = [](const std::vector<double>& a) {
            return a.at(0) > 0 ? a.at(0) : 0.0;
        };
        r["clamp_i8"] = [](const std::vector<double>& a) {
            return std::max(-128.0, std::min(127.0, std::round(a.at(0))));
        };
        r["acc_scale"] = [](const std::vector<double>& a) {
            return a.at(0) * a.at(1);
        };
        r["select"] = [](const std::vector<double>& a) {
            // select(cond_ge, x, y): x if cond >= 0 else y
            return a.at(0) >= 0 ? a.at(1) : a.at(2);
        };
        r["sqrt"] = [](const std::vector<double>& a) {
            return std::sqrt(a.at(0));
        };
        r["abs"] = [](const std::vector<double>& a) {
            return std::fabs(a.at(0));
        };
        return r;
    }();
    return reg;
}

/** A strided view into a Buffer. */
struct View
{
    Buffer* buf = nullptr;
    int64_t offset = 0;
    std::vector<int64_t> dims;
    std::vector<int64_t> strides;

    int64_t flatten(const std::vector<int64_t>& idx) const
    {
        if (idx.size() != dims.size()) {
            throw InternalError("interp: access arity mismatch on view (" +
                                std::to_string(idx.size()) + " vs " +
                                std::to_string(dims.size()) + ")");
        }
        int64_t f = offset;
        for (size_t d = 0; d < idx.size(); d++) {
            if (idx[d] < 0 || idx[d] >= dims[d]) {
                throw InternalError(
                    "interp: out-of-bounds access: index " +
                    std::to_string(idx[d]) + " not in [0, " +
                    std::to_string(dims[d]) + ")");
            }
            f += idx[d] * strides[d];
        }
        if (f < 0 || f >= buf->size()) {
            throw InternalError(
                "interp: absolute access out of the underlying buffer");
        }
        return f;
    }

    static View whole(Buffer* b)
    {
        View v;
        v.buf = b;
        v.dims = b->dims();
        v.strides.assign(v.dims.size(), 1);
        int64_t s = 1;
        for (size_t d = v.dims.size(); d-- > 0;) {
            v.strides[d] = s;
            s *= v.dims[d];
        }
        return v;
    }
};

/** Runtime binding of a name. */
struct Binding
{
    enum class Kind { Index, Scalar, Buf } kind = Kind::Index;
    int64_t index = 0;
    double scalar = 0.0;
    View view;
};

struct Frame
{
    std::map<std::string, Binding> names;
    std::vector<std::unique_ptr<Buffer>> locals;
};

class Machine
{
  public:
    std::map<std::string, double> config;

    void run_proc(const ProcPtr& p, std::vector<Binding> args)
    {
        Frame frame;
        const auto& formals = p->args();
        if (args.size() != formals.size()) {
            throw InternalError("interp: call arity mismatch in " +
                                p->name());
        }
        for (size_t i = 0; i < formals.size(); i++)
            frame.names[formals[i].name] = std::move(args[i]);
        // Check asserts.
        for (const auto& pred : p->preds()) {
            if (eval(frame, pred) == 0.0) {
                throw InternalError("interp: assertion failed in " +
                                    p->name() + ": " + print_expr(pred));
            }
        }
        exec_block(frame, p->body_stmts());
    }

    double eval(Frame& f, const ExprPtr& e)
    {
        switch (e->kind()) {
          case ExprKind::Const:
            return e->const_value();
          case ExprKind::Read: {
            auto it = f.names.find(e->name());
            if (it == f.names.end()) {
                throw InternalError("interp: unbound name '" + e->name() +
                                    "'");
            }
            Binding& b = it->second;
            if (b.kind == Binding::Kind::Index)
                return static_cast<double>(b.index);
            if (b.kind == Binding::Kind::Scalar)
                return b.scalar;
            std::vector<int64_t> idx;
            idx.reserve(e->idx().size());
            for (const auto& i : e->idx())
                idx.push_back(eval_int(f, i));
            return b.view.buf->at(b.view.flatten(idx));
          }
          case ExprKind::BinOp: {
            double l = eval(f, e->lhs());
            if (e->op() == BinOpKind::And)
                return (l != 0.0 && eval(f, e->rhs()) != 0.0) ? 1.0 : 0.0;
            if (e->op() == BinOpKind::Or)
                return (l != 0.0 || eval(f, e->rhs()) != 0.0) ? 1.0 : 0.0;
            double r = eval(f, e->rhs());
            // The expression's declared type is the semantics: f32
            // arithmetic rounds each operation to f32, exactly as the
            // C backend compiles it (which builds with -ffp-contract
            // off). Without this, mixed-precision kernels (sdsdot /
            // dsdot: f32 products into an f64 accumulator) diverge
            // between the interpreter and generated C.
            auto fp = [&](double v) {
                return e->type() == ScalarType::F32
                           ? static_cast<double>(static_cast<float>(v))
                           : v;
            };
            switch (e->op()) {
              case BinOpKind::Add: return fp(l + r);
              case BinOpKind::Sub: return fp(l - r);
              case BinOpKind::Mul: return fp(l * r);
              case BinOpKind::Div: {
                if (e->type() == ScalarType::Index) {
                    int64_t li = static_cast<int64_t>(l);
                    int64_t ri = static_cast<int64_t>(r);
                    if (ri == 0)
                        throw InternalError("interp: division by zero");
                    // floor division
                    int64_t q = li / ri;
                    if ((li % ri != 0) && ((li < 0) != (ri < 0)))
                        q -= 1;
                    return static_cast<double>(q);
                }
                return fp(l / r);
              }
              case BinOpKind::Mod: {
                int64_t li = static_cast<int64_t>(l);
                int64_t ri = static_cast<int64_t>(r);
                if (ri == 0)
                    throw InternalError("interp: modulo by zero");
                int64_t m = li % ri;
                if (m != 0 && ((li < 0) != (ri < 0)))
                    m += ri;
                return static_cast<double>(m);
              }
              case BinOpKind::Lt: return l < r ? 1.0 : 0.0;
              case BinOpKind::Le: return l <= r ? 1.0 : 0.0;
              case BinOpKind::Gt: return l > r ? 1.0 : 0.0;
              case BinOpKind::Ge: return l >= r ? 1.0 : 0.0;
              case BinOpKind::Eq: return l == r ? 1.0 : 0.0;
              case BinOpKind::Ne: return l != r ? 1.0 : 0.0;
              default:
                throw InternalError("interp: bad binop");
            }
          }
          case ExprKind::USub:
            // Negation is exact in binary floating point; no rounding.
            return -eval(f, e->lhs());
          case ExprKind::Stride: {
            auto it = f.names.find(e->name());
            if (it == f.names.end() ||
                it->second.kind != Binding::Kind::Buf) {
                throw InternalError("interp: stride() of non-buffer");
            }
            const View& v = it->second.view;
            size_t d = static_cast<size_t>(e->stride_dim());
            if (d >= v.strides.size())
                throw InternalError("interp: stride() dim out of range");
            return static_cast<double>(v.strides[d]);
          }
          case ExprKind::ReadConfig: {
            auto key = e->name() + "." + e->field();
            return config[key];
          }
          case ExprKind::Extern: {
            auto& reg = extern_registry();
            auto it = reg.find(e->name());
            if (it == reg.end()) {
                throw InternalError("interp: unknown extern '" +
                                    e->name() + "'");
            }
            std::vector<double> args;
            for (const auto& a : e->idx())
                args.push_back(eval(f, a));
            return it->second(args);
          }
          case ExprKind::Window:
            throw InternalError("interp: window outside call argument");
        }
        throw InternalError("interp: unknown expr kind");
    }

    int64_t eval_int(Frame& f, const ExprPtr& e)
    {
        return static_cast<int64_t>(eval(f, e));
    }

    View eval_view(Frame& f, const ExprPtr& e)
    {
        if (e->kind() == ExprKind::Read && e->idx().empty()) {
            auto it = f.names.find(e->name());
            if (it == f.names.end() ||
                it->second.kind != Binding::Kind::Buf) {
                throw InternalError("interp: '" + e->name() +
                                    "' is not a buffer");
            }
            return it->second.view;
        }
        if (e->kind() != ExprKind::Window)
            throw InternalError("interp: expected buffer or window arg");
        auto it = f.names.find(e->name());
        if (it == f.names.end() || it->second.kind != Binding::Kind::Buf)
            throw InternalError("interp: window of non-buffer");
        const View& base = it->second.view;
        if (e->window_dims().size() != base.dims.size())
            throw InternalError("interp: window arity mismatch");
        View v;
        v.buf = base.buf;
        v.offset = base.offset;
        for (size_t d = 0; d < base.dims.size(); d++) {
            const WindowDim& wd = e->window_dims()[d];
            int64_t lo = eval_int(f, wd.lo);
            // Negative low bounds arise from range-masked instructions
            // whose low lanes are masked off; the absolute bounds check
            // in View::flatten catches any actual out-of-range access.
            if (lo > base.dims[d]) {
                throw InternalError("interp: window low bound " +
                                    std::to_string(lo) + " out of range");
            }
            v.offset += lo * base.strides[d];
            if (!wd.is_point()) {
                int64_t hi = eval_int(f, wd.hi);
                // Degenerate (empty / negative) windows are legal for
                // fully-masked instructions: no lane may touch them.
                if (hi < lo)
                    hi = lo;
                if (hi > base.dims[d]) {
                    throw InternalError("interp: window high bound out of "
                                        "range");
                }
                v.dims.push_back(hi - lo);
                v.strides.push_back(base.strides[d]);
            }
        }
        return v;
    }

    void exec_block(Frame& f, const std::vector<StmtPtr>& block)
    {
        // Scope allocations and window bindings to the block so that
        // loops do not accumulate dead local buffers.
        size_t mark = f.locals.size();
        std::vector<std::pair<std::string, std::optional<Binding>>> saved;
        for (const auto& s : block) {
            if (s->kind() == StmtKind::Alloc ||
                s->kind() == StmtKind::WindowDecl) {
                auto it = f.names.find(s->name());
                saved.emplace_back(s->name(),
                                   it != f.names.end()
                                       ? std::optional<Binding>(it->second)
                                       : std::nullopt);
            }
            exec(f, s);
        }
        for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
            if (it->second)
                f.names[it->first] = *it->second;
            else
                f.names.erase(it->first);
        }
        f.locals.resize(mark);
    }

    void exec(Frame& f, const StmtPtr& s)
    {
        switch (s->kind()) {
          case StmtKind::Assign:
          case StmtKind::Reduce: {
            double v = eval(f, s->rhs());
            auto it = f.names.find(s->name());
            if (it == f.names.end()) {
                throw InternalError("interp: unbound write target '" +
                                    s->name() + "'");
            }
            Binding& b = it->second;
            if (b.kind == Binding::Kind::Scalar) {
                if (!s->idx().empty())
                    throw InternalError("interp: indexing a scalar");
                if (s->kind() == StmtKind::Reduce)
                    b.scalar = convert(s->type(), b.scalar + v);
                else
                    b.scalar = convert(s->type(), v);
                return;
            }
            if (b.kind != Binding::Kind::Buf)
                throw InternalError("interp: writing a loop index");
            std::vector<int64_t> idx;
            idx.reserve(s->idx().size());
            for (const auto& i : s->idx())
                idx.push_back(eval_int(f, i));
            int64_t flat = b.view.flatten(idx);
            if (s->kind() == StmtKind::Reduce)
                v += b.view.buf->at(flat);
            b.view.buf->set(flat, v);
            return;
          }
          case StmtKind::Alloc: {
            std::vector<int64_t> dims;
            for (const auto& d : s->dims())
                dims.push_back(eval_int(f, d));
            auto buf = std::make_unique<Buffer>(s->type(), dims);
            Binding b;
            if (dims.empty()) {
                b.kind = Binding::Kind::Scalar;
                b.scalar = 0.0;
                f.names[s->name()] = b;
                return;
            }
            b.kind = Binding::Kind::Buf;
            b.view = View::whole(buf.get());
            f.locals.push_back(std::move(buf));
            f.names[s->name()] = b;
            return;
          }
          case StmtKind::For: {
            int64_t lo = eval_int(f, s->lo());
            int64_t hi = eval_int(f, s->hi());
            Binding iter;
            iter.kind = Binding::Kind::Index;
            auto saved = f.names.find(s->iter()) != f.names.end()
                             ? std::optional<Binding>(f.names[s->iter()])
                             : std::nullopt;
            for (int64_t i = lo; i < hi; i++) {
                iter.index = i;
                f.names[s->iter()] = iter;
                exec_block(f, s->body());
            }
            if (saved)
                f.names[s->iter()] = *saved;
            else
                f.names.erase(s->iter());
            return;
          }
          case StmtKind::If: {
            if (eval(f, s->cond()) != 0.0)
                exec_block(f, s->body());
            else
                exec_block(f, s->orelse());
            return;
          }
          case StmtKind::Pass:
            return;
          case StmtKind::Call: {
            const ProcPtr& callee = s->callee();
            if (!callee)
                throw InternalError("interp: unresolved call");
            std::vector<Binding> args;
            const auto& formals = callee->args();
            if (formals.size() != s->args().size())
                throw InternalError("interp: call arity mismatch");
            for (size_t i = 0; i < formals.size(); i++) {
                Binding b;
                if (formals[i].dims.empty()) {
                    if (formals[i].is_size ||
                        formals[i].type == ScalarType::Index) {
                        b.kind = Binding::Kind::Index;
                        b.index = eval_int(f, s->args()[i]);
                    } else {
                        b.kind = Binding::Kind::Scalar;
                        // Scalars round to the formal's type at the
                        // call boundary, as C parameter passing does.
                        b.scalar = convert(formals[i].type,
                                           eval(f, s->args()[i]));
                    }
                } else {
                    b.kind = Binding::Kind::Buf;
                    b.view = eval_view(f, s->args()[i]);
                }
                args.push_back(std::move(b));
            }
            run_proc(callee, std::move(args));
            return;
          }
          case StmtKind::WriteConfig: {
            config[s->name() + "." + s->field()] = eval(f, s->rhs());
            return;
          }
          case StmtKind::WindowDecl: {
            Binding b;
            b.kind = Binding::Kind::Buf;
            b.view = eval_view(f, s->rhs());
            f.names[s->name()] = b;
            return;
          }
        }
        throw InternalError("interp: unknown stmt kind");
    }
};

}  // namespace

void
register_extern(const std::string& name, ExternFn fn)
{
    extern_registry()[name] = std::move(fn);
}

void
interp_run(const ProcPtr& p, const std::vector<RunArg>& args)
{
    Machine m;
    std::vector<Binding> bindings;
    const auto& formals = p->args();
    if (formals.size() != args.size())
        throw InternalError("interp_run: arity mismatch");
    for (size_t i = 0; i < formals.size(); i++) {
        Binding b;
        switch (args[i].kind) {
          case RunArg::Kind::Size:
            b.kind = Binding::Kind::Index;
            b.index = args[i].size;
            break;
          case RunArg::Kind::Scalar:
            b.kind = Binding::Kind::Scalar;
            // Round to the formal's type, as C parameter passing does.
            b.scalar = convert(formals[i].type, args[i].scalar);
            break;
          case RunArg::Kind::Buf:
            b.kind = Binding::Kind::Buf;
            b.view = View::whole(args[i].buf);
            break;
        }
        bindings.push_back(std::move(b));
    }
    m.run_proc(p, std::move(bindings));
}

}  // namespace exo2
