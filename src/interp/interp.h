#ifndef EXO2_INTERP_INTERP_H_
#define EXO2_INTERP_INTERP_H_

/**
 * @file
 * Reference interpreter for the object language.
 *
 * Executes procedures over real buffers, including windows, hardware
 * instruction calls (interpreted through their semantics bodies),
 * configuration state, and extern scalar functions. The test suite
 * uses it for randomized equivalence checking: every scheduling
 * primitive must preserve the interpreter-observable behaviour.
 */

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/ir/proc.h"

namespace exo2 {

/** A dense buffer of element type `type` with logical shape `dims`. */
class Buffer
{
  public:
    Buffer(ScalarType type, std::vector<int64_t> dims);

    ScalarType type() const { return type_; }
    const std::vector<int64_t>& dims() const { return dims_; }
    int64_t size() const { return static_cast<int64_t>(data_.size()); }

    double* data() { return data_.data(); }
    const double* data() const { return data_.data(); }

    double at(int64_t flat) const { return data_.at(static_cast<size_t>(flat)); }
    void set(int64_t flat, double v);

    /** Fill with deterministic pseudo-random values in [-1, 1]. */
    void fill_random(uint64_t seed);

    /** Fill with a constant. */
    void fill(double v);

  private:
    ScalarType type_;
    std::vector<int64_t> dims_;
    std::vector<double> data_;
};

/** An argument passed to `run`: a size, a scalar, or a buffer. */
struct RunArg
{
    enum class Kind { Size, Scalar, Buf } kind = Kind::Size;
    int64_t size = 0;
    double scalar = 0.0;
    Buffer* buf = nullptr;

    static RunArg make_size(int64_t v)
    {
        RunArg a;
        a.kind = Kind::Size;
        a.size = v;
        return a;
    }
    static RunArg make_scalar(double v)
    {
        RunArg a;
        a.kind = Kind::Scalar;
        a.scalar = v;
        return a;
    }
    static RunArg make_buffer(Buffer* b)
    {
        RunArg a;
        a.kind = Kind::Buf;
        a.buf = b;
        return a;
    }
};

/** Extern scalar function semantics (e.g. relu). */
using ExternFn = std::function<double(const std::vector<double>&)>;

/** Register an extern function available to all interpretations. */
void register_extern(const std::string& name, ExternFn fn);

/**
 * Execute `p` with positional `args`. Throws InternalError on
 * malformed programs (out-of-bounds access, unbound names), making the
 * interpreter double as a dynamic checker.
 */
void interp_run(const ProcPtr& p, const std::vector<RunArg>& args);

}  // namespace exo2

#endif  // EXO2_INTERP_INTERP_H_
