#include "src/serve/daemon.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>

#include "src/cache/cache.h"
#include "src/ir/errors.h"
#include "src/kernels/blas.h"
#include "src/kernels/image.h"
#include "src/lint/lint.h"
#include "src/machine/machine.h"
#include "src/obs/metrics.h"
#include "src/obs/phase.h"
#include "src/obs/trace.h"
#include "src/tune/tune.h"
#include "src/util/env.h"
#include "src/verify/oracle.h"
#include "src/verify/sandbox.h"

namespace exo2 {
namespace serve {

namespace {

double
now_seconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** "K=48,M=48,N=48" -> SizeEnv. Throws ConfigError on malformed
 *  pairs; an unsatisfiable request must answer `error`, not guess. */
verify::SizeEnv
parse_sizes(const std::string& text)
{
    verify::SizeEnv env;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        std::string pair = text.substr(pos, comma - pos);
        size_t eq = pair.find('=');
        if (eq == std::string::npos || eq == 0)
            throw ConfigError("request sizes '" + text +
                              "': expected name=value pairs");
        try {
            size_t used = 0;
            int64_t v = std::stoll(pair.substr(eq + 1), &used);
            if (used != pair.size() - eq - 1 || v <= 0)
                throw std::invalid_argument(pair);
            env[pair.substr(0, eq)] = v;
        } catch (const std::exception&) {
            throw ConfigError("request sizes '" + text +
                              "': bad value in '" + pair + "'");
        }
        pos = comma + 1;
    }
    return env;
}

/** Request kernel name -> naive proc: the blas registry plus the
 *  non-registry demo kernels. */
ProcPtr
resolve_kernel(const std::string& name)
{
    if (name == "sgemm")
        return kernels::sgemm();
    if (name == "blur")
        return kernels::blur();
    return kernels::find_kernel(name).proc;
}

/** Attach a lint verdict to a response as structured extra fields:
 *  summary counters plus the full diagnostic list as JSON, so clients
 *  render findings without re-running the analysis. */
void
attach_lint(ServeResponse* resp, const lint::LintReport& rep)
{
    resp->extra["lint_errors"] =
        std::to_string(rep.count(lint::Severity::Error));
    resp->extra["lint_warnings"] =
        std::to_string(rep.count(lint::Severity::Warn));
    resp->extra["lint_infos"] =
        std::to_string(rep.count(lint::Severity::Info));
    resp->extra["lint_proven"] = std::to_string(rep.proven) + "/" +
                                 std::to_string(rep.obligations);
    resp->extra["lint_safe"] = rep.proven_safe() ? "1" : "0";
    resp->extra["lint"] = rep.to_json();
}

/** Millisecond values travel with fixed sub-microsecond precision
 *  (extras are text; std::to_string's %f default is fine for ms). */
std::string
fmt_ms(double ms)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", ms);
    return buf;
}

/** Attach one request's phase breakdown as phase_*_ms extras and feed
 *  the registry's latency histograms, so the same numbers surface in
 *  the response, op=metrics, and op=stats percentiles. */
void
attach_phases(ServeResponse* resp, const obs::PhaseBreakdown& pb)
{
    static const obs::Phase kPhases[] = {
        obs::Phase::Queue,    obs::Phase::Lint,  obs::Phase::Cache,
        obs::Phase::Search,   obs::Phase::Cjit,  obs::Phase::Validate,
    };
    for (obs::Phase ph : kPhases) {
        double ms = pb.of(ph) * 1000.0;
        resp->extra[std::string("phase_") + obs::phase_name(ph) +
                    "_ms"] = fmt_ms(ms);
        obs::histogram(std::string("serve.phase.") +
                       obs::phase_name(ph) + "_ms")
            .observe(ms);
    }
}

/** Transient faults are worth a bounded retry; deterministic ones
 *  (a kernel that always SIGSEGVs) are not — but those never escape
 *  autotune, which scores them infeasible. */
bool
is_transient(FaultKind k)
{
    switch (k) {
      case FaultKind::CompileError:
      case FaultKind::CompileTimeout:
      case FaultKind::LoadError:
      case FaultKind::Timeout:
      case FaultKind::ResourceLimit:
      case FaultKind::SandboxError:
        return true;
      default:
        return false;
    }
}

}  // namespace

ServeConfig
ServeConfig::from_env()
{
    ServeConfig c;
    c.socket_path = util::env_string("EXO2_SERVE_SOCKET", c.socket_path);
    c.workers = static_cast<int>(
        util::env_int("EXO2_SERVE_WORKERS", c.workers, 1, 256));
    c.queue_capacity = static_cast<int>(
        util::env_int("EXO2_SERVE_QUEUE", c.queue_capacity, 1, 65536));
    c.default_deadline_seconds = util::env_double(
        "EXO2_SERVE_DEADLINE", c.default_deadline_seconds, 0, 86400);
    c.retry_attempts = static_cast<int>(
        util::env_int("EXO2_SERVE_RETRIES", c.retry_attempts, 0, 16));
    return c;
}

// ---------------------------------------------------------------------------
// Internals
// ---------------------------------------------------------------------------

/** One accepted client connection. Workers and the connection thread
 *  share it; the last owner closes the fd. Writes are serialized so
 *  two workers answering pipelined requests cannot interleave
 *  frames. */
struct Daemon::Conn
{
    int fd = -1;
    std::mutex write_mu;

    explicit Conn(int f) : fd(f) {}
    ~Conn()
    {
        if (fd >= 0)
            close(fd);
    }
};

/** One admitted request waiting for a worker. */
struct Daemon::Job
{
    ServeRequest req;
    std::shared_ptr<Conn> conn;
    double admitted = 0;  ///< now_seconds() at admission
};

Daemon::Daemon(ServeConfig cfg) : cfg_(std::move(cfg)) {}

Daemon::~Daemon() { stop(); }

void
Daemon::start()
{
    if (running_.load())
        return;

    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (cfg_.socket_path.size() >= sizeof(addr.sun_path))
        throw ConfigError("socket path too long (" +
                          std::to_string(cfg_.socket_path.size()) +
                          " bytes, max " +
                          std::to_string(sizeof(addr.sun_path) - 1) +
                          "): " + cfg_.socket_path);
    std::strncpy(addr.sun_path, cfg_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);

    listen_fd_ = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0)
        throw ConfigError(std::string("socket() failed: ") +
                          std::strerror(errno));
    // A previous daemon instance (clean or killed) leaves the socket
    // file behind; crash-only startup reclaims it unconditionally.
    unlink(cfg_.socket_path.c_str());
    if (bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
        listen(listen_fd_, 64) != 0) {
        int err = errno;
        close(listen_fd_);
        listen_fd_ = -1;
        throw ConfigError("bind/listen on '" + cfg_.socket_path +
                          "' failed: " + std::strerror(err));
    }

    running_.store(true);
    draining_.store(false);
    listener_ = std::thread([this] { listener_main(); });
    for (int i = 0; i < cfg_.workers; i++)
        workers_.emplace_back([this] { worker_main(); });
}

void
Daemon::request_stop()
{
    draining_.store(true);
    queue_cv_.notify_all();
}

void
Daemon::join()
{
    if (listener_.joinable())
        listener_.join();
    // Workers exit once draining_ is set and the queue is empty.
    for (std::thread& w : workers_) {
        if (w.joinable())
            w.join();
    }
    workers_.clear();
    {
        std::lock_guard<std::mutex> lk(conns_mu_);
        for (std::thread& c : conns_) {
            if (c.joinable())
                c.join();
        }
        conns_.clear();
    }
    if (listen_fd_ >= 0) {
        close(listen_fd_);
        listen_fd_ = -1;
    }
    unlink(cfg_.socket_path.c_str());
    running_.store(false);
}

void
Daemon::stop()
{
    if (!running_.load())
        return;
    request_stop();
    join();
}

ServeStats
Daemon::stats() const
{
    ServeStats s;
    s.connections = stats_.connections.load(std::memory_order_relaxed);
    s.requests = stats_.requests.load(std::memory_order_relaxed);
    s.completed = stats_.completed.load(std::memory_order_relaxed);
    s.degraded = stats_.degraded.load(std::memory_order_relaxed);
    s.rejected = stats_.rejected.load(std::memory_order_relaxed);
    s.errors = stats_.errors.load(std::memory_order_relaxed);
    s.retries = stats_.retries.load(std::memory_order_relaxed);
    s.queue_peak = stats_.queue_peak.load(std::memory_order_relaxed);
    s.deadline_expired =
        stats_.deadline_expired.load(std::memory_order_relaxed);
    s.lint_rejects =
        stats_.lint_rejects.load(std::memory_order_relaxed);
    return s;
}

void
Daemon::listener_main()
{
    while (!draining_.load()) {
        struct pollfd pfd;
        pfd.fd = listen_fd_;
        pfd.events = POLLIN;
        pfd.revents = 0;
        int rc = poll(&pfd, 1, 100);
        if (rc <= 0)
            continue;  // timeout tick or EINTR: re-check draining_
        int fd = accept(listen_fd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        auto conn = std::make_shared<Conn>(fd);
        stats_.connections.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lk(conns_mu_);
        conns_.emplace_back(
            [this, conn] { connection_main(conn); });
    }
}

void
Daemon::connection_main(std::shared_ptr<Conn> conn)
{
    std::string payload;
    // 1s read ticks so a drain closes idle connections promptly.
    while (!draining_.load()) {
        if (!read_frame(conn->fd, &payload, 1.0)) {
            // Distinguish "nothing arrived this tick" from EOF/error:
            // peek for EOF.
            char b;
            ssize_t n = recv(conn->fd, &b, 1, MSG_PEEK | MSG_DONTWAIT);
            if (n == 0)
                return;  // peer closed
            if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)
                return;
            continue;
        }

        ServeRequest req;
        try {
            req = ServeRequest::from_wire(payload);
            stats_.requests.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::exception& e) {
            ServeResponse resp;
            resp.status = "error";
            resp.detail = e.what();
            send_response(conn, resp);
            stats_.errors.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        // Telemetry needs every request attributable: a frame that
        // arrives without an id is assigned one ("r<n>"), echoed back
        // in the request_id extra (the id field itself stays an echo
        // of what the client sent).
        if (req.id.empty()) {
            req.id = "r" + std::to_string(req_seq_.fetch_add(
                               1, std::memory_order_relaxed) +
                           1);
        }

        // Control ops answer inline: they must work even when the
        // queue is saturated — that is when you need `stats` most.
        if (req.op == "ping" || req.op == "stats" ||
            req.op == "metrics" || req.op == "shutdown") {
            ServeResponse resp = process(req, now_seconds());
            send_response(conn, resp);
            if (req.op == "shutdown")
                request_stop();
            continue;
        }

        // Admission: bounded queue with explicit backpressure. The
        // `queue_full` fault site makes a healthy queue report
        // saturation for one admission, driving this exact path.
        bool full_injected =
            verify::fault_should_inject(verify::FaultSite::QueueFull);
        bool admitted = false;
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (!draining_.load() && !full_injected &&
                queue_.size() <
                    static_cast<size_t>(cfg_.queue_capacity)) {
                Job job;
                job.req = req;
                job.conn = conn;
                job.admitted = now_seconds();
                queue_.push_back(std::move(job));
                uint64_t depth = queue_.size();
                uint64_t peak = stats_.queue_peak.load(
                    std::memory_order_relaxed);
                while (depth > peak &&
                       !stats_.queue_peak.compare_exchange_weak(
                           peak, depth, std::memory_order_relaxed)) {
                }
                admitted = true;
            } else {
                stats_.rejected.fetch_add(1, std::memory_order_relaxed);
            }
        }
        if (admitted) {
            queue_cv_.notify_one();
        } else {
            ServeResponse resp;
            resp.id = req.id;
            resp.status = "rejected";
            resp.detail = draining_.load()
                              ? "draining: daemon is shutting down"
                              : (full_injected
                                     ? "queue full (injected)"
                                     : "queue full");
            resp.retry_after_ms = cfg_.retry_after_ms;
            send_response(conn, resp);
        }
    }
}

void
Daemon::worker_main()
{
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lk(mu_);
            queue_cv_.wait(lk, [this] {
                return !queue_.empty() || draining_.load();
            });
            if (queue_.empty()) {
                if (draining_.load())
                    return;
                continue;
            }
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        // One collection per request: queue wait measured here, the
        // engine phases (lint/cache/search/cjit/validate) accumulated
        // by the timers inside autotune and friends.
        obs::phase_begin_collection();
        obs::phase_add(obs::Phase::Queue,
                       now_seconds() - job.admitted);
        ServeResponse resp;
        {
            EXO2_SPAN("serve.request",
                      {{"rid", job.req.id}, {"op", job.req.op}});
            resp = process(job.req, job.admitted);
        }
        obs::PhaseBreakdown pb = obs::phase_end_collection();
        attach_phases(&resp, pb);
        obs::histogram("serve.latency_ms").observe(resp.elapsed_ms);
        send_response(job.conn, resp);
    }
}

ServeResponse
Daemon::process(const ServeRequest& req, double admitted)
{
    double t0 = now_seconds();
    ServeResponse resp;
    resp.id = req.id;
    try {
        if (req.op == "ping") {
            resp.status = "ok";
            resp.detail = "pong";
        } else if (req.op == "shutdown") {
            resp.status = "ok";
            resp.detail = "draining";
        } else if (req.op == "stats") {
            resp.status = "ok";
            ServeStats s = stats();
            cache::CacheStats cs = cache::cache_stats();
            verify::FaultInjectionCounts fc =
                verify::fault_injection_counts();
            auto put = [&](const char* k, uint64_t v) {
                resp.extra[k] = std::to_string(v);
            };
            put("connections", s.connections);
            put("requests", s.requests);
            put("completed", s.completed);
            put("degraded_count", s.degraded);
            put("rejected_count", s.rejected);
            put("error_count", s.errors);
            put("retry_count", s.retries);
            put("queue_peak", s.queue_peak);
            put("deadline_expired", s.deadline_expired);
            put("lint_rejects", s.lint_rejects);
            put("tune_cache_hits", cs.tune_hits);
            put("tune_cache_misses", cs.tune_misses);
            put("tune_cache_corrupt", cs.tune_corrupt);
            put("tune_cache_stale", cs.tune_stale);
            put("jit_cache_hits", cs.jit_hits);
            put("jit_cache_misses", cs.jit_misses);
            put("jit_cache_corrupt", cs.jit_corrupt);
            put("tmp_swept", cs.tmp_swept);
            put("faults_fired", fc.total());
            obs::HistogramSnapshot lat =
                obs::histogram("serve.latency_ms").snapshot();
            resp.extra["latency_count"] = std::to_string(lat.count);
            resp.extra["latency_p50_ms"] = fmt_ms(lat.percentile(0.50));
            resp.extra["latency_p95_ms"] = fmt_ms(lat.percentile(0.95));
            resp.extra["latency_p99_ms"] = fmt_ms(lat.percentile(0.99));
        } else if (req.op == "metrics") {
            // The whole registry as one JSON value: engine gauges
            // refreshed first so counters, caches, latency and phase
            // histograms arrive in a single snapshot.
            obs::publish_engine_stats();
            resp.status = "ok";
            resp.extra["metrics"] = obs::metrics_json();
        } else if (req.op == "tune") {
            resp = process_tune(req, admitted);
        } else if (req.op == "schedule") {
            resp = process_schedule(req);
        } else if (req.op == "lint") {
            resp = process_lint(req);
        } else {
            resp.status = "error";
            resp.detail =
                "unknown op '" + req.op +
                "' (ping|stats|metrics|tune|schedule|lint|shutdown)";
        }
    } catch (const std::exception& e) {
        resp.status = "error";
        resp.detail = e.what();
    } catch (...) {
        resp.status = "error";
        resp.detail = "unknown exception";
    }
    resp.id = req.id;
    resp.extra["request_id"] = req.id;
    resp.elapsed_ms = (now_seconds() - t0) * 1000.0;
    if (resp.status == "ok")
        stats_.completed.fetch_add(1, std::memory_order_relaxed);
    else if (resp.status == "degraded")
        stats_.degraded.fetch_add(1, std::memory_order_relaxed);
    else if (resp.status == "rejected")
        stats_.rejected.fetch_add(1, std::memory_order_relaxed);
    else
        stats_.errors.fetch_add(1, std::memory_order_relaxed);
    return resp;
}

ServeResponse
Daemon::process_tune(const ServeRequest& req, double admitted)
{
    ServeResponse resp;
    resp.id = req.id;

    ProcPtr naive = resolve_kernel(req.kernel);
    const Machine& m = find_machine(req.machine);

    tune::TuneOpts opts;
    opts.tune_sizes = parse_sizes(req.sizes);
    if (opts.tune_sizes.empty())
        throw ConfigError("tune request needs non-empty sizes");
    if (req.beam > 0)
        opts.beam_width = req.beam;
    if (req.rounds > 0)
        opts.max_rounds = req.rounds;
    if (req.restarts >= 0)
        opts.random_restarts = req.restarts;
    if (req.jit_topk >= 0)
        opts.jit_topk = req.jit_topk;
    opts.validate = req.validate != 0;  // default on

    double budget = req.deadline_ms > 0
                        ? req.deadline_ms / 1000.0
                        : cfg_.default_deadline_seconds;
    double waited = now_seconds() - admitted;
    bool expired_in_queue = budget > 0 && waited >= budget;
    if (expired_in_queue) {
        // Bottom of the degradation ladder: no search budget left.
        // A cached winner still replays in milliseconds; otherwise
        // answer with the naive schedule. Weaker, never an error.
        stats_.deadline_expired.fetch_add(1, std::memory_order_relaxed);
    }
    if (budget > 0) {
        opts.deadline_seconds =
            expired_in_queue ? 0.001 : budget - waited;
        if (expired_in_queue) {
            opts.max_rounds = 0;
            opts.random_restarts = 0;
            opts.jit_topk = 0;
            opts.validate = false;
        }
    }

    tune::TuneResult r;
    int attempt = 0;
    for (;;) {
        try {
            std::lock_guard<std::mutex> lk(engine_mu_);
            r = tune::autotune(naive, m, opts);
            break;
        } catch (const FaultError& e) {
            if (!is_transient(e.fault().kind) ||
                attempt >= cfg_.retry_attempts)
                throw;
            double back_ms =
                cfg_.retry_backoff_ms * static_cast<double>(1 << attempt);
            attempt++;
            stats_.retries.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(std::chrono::duration<double>(
                back_ms / 1000.0));
        }
    }

    resp.status =
        (r.degraded || expired_in_queue) ? "degraded" : "ok";
    if (expired_in_queue)
        resp.detail = "deadline expired before search began";
    else if (r.degraded)
        resp.detail = "deadline reached mid-search: best-so-far";
    resp.script = verify::script_to_string(r.script);
    resp.cost = r.cost;
    resp.naive_cost = r.naive_cost;
    resp.validated = r.validated;
    resp.from_cache = r.from_cache;
    resp.extra["lint_checked"] = std::to_string(r.stats.lint_checked);
    resp.extra["lint_pruned"] = std::to_string(r.stats.lint_pruned);
    return resp;
}

ServeResponse
Daemon::process_lint(const ServeRequest& req)
{
    ServeResponse resp;
    resp.id = req.id;

    ProcPtr p = resolve_kernel(req.kernel);
    if (!req.script.empty()) {
        std::vector<verify::FuzzStep> script =
            verify::script_from_string(req.script);
        std::lock_guard<std::mutex> lk(engine_mu_);
        p = tune::replay_script(p, script);
        resp.script = verify::script_to_string(script);
    }
    lint::LintReport rep = lint::lint_proc(p);
    attach_lint(&resp, rep);
    // The analysis ran to completion, so the request succeeded; the
    // verdict — including any Error findings — is the payload.
    resp.status = "ok";
    resp.detail = std::to_string(rep.count(lint::Severity::Error)) +
                  " error(s), " +
                  std::to_string(rep.count(lint::Severity::Warn)) +
                  " warning(s), " +
                  std::to_string(rep.count(lint::Severity::Info)) +
                  " info(s)";
    return resp;
}

ServeResponse
Daemon::process_schedule(const ServeRequest& req)
{
    ServeResponse resp;
    resp.id = req.id;

    ProcPtr naive = resolve_kernel(req.kernel);
    std::vector<verify::FuzzStep> script =
        verify::script_from_string(req.script);

    std::lock_guard<std::mutex> lk(engine_mu_);
    ProcPtr scheduled = tune::replay_script(naive, script);

    // Admission lint (DESIGN.md §9): every submitted schedule is
    // statically vetted before the daemon spends any JIT/oracle time
    // on it. Error-level findings are proven violations — the request
    // is unsatisfiable, refused with the structured diagnostics.
    lint::LintReport lrep = lint::lint_proc(scheduled);
    attach_lint(&resp, lrep);
    if (lrep.has_errors()) {
        stats_.lint_rejects.fetch_add(1, std::memory_order_relaxed);
        resp.status = "error";
        resp.detail =
            "schedule rejected by lint: " + lrep.to_text();
        return resp;
    }

    resp.status = "ok";
    resp.extra["digest"] = cache::hex64(proc_digest(scheduled));
    if (!req.sizes.empty()) {
        verify::SizeEnv env = parse_sizes(req.sizes);
        resp.cost = simulate_cost_named(scheduled, env).cycles;
        resp.naive_cost = simulate_cost_named(naive, env).cycles;
        if (req.validate == 1) {
            verify::TriOracleReport rep =
                verify::tri_oracle_check(naive, scheduled, env, 4242);
            if (!rep.ok)
                throw VerifyError("schedule failed validation: " +
                                  rep.detail);
            resp.validated = true;
        }
    }
    resp.script = verify::script_to_string(script);
    return resp;
}

void
Daemon::send_response(const std::shared_ptr<Conn>& conn,
                      const ServeResponse& resp)
{
    std::lock_guard<std::mutex> lk(conn->write_mu);
    // A client that vanished mid-request is not an error worth more
    // than a counter; the next read on the connection sees EOF.
    (void)write_frame(conn->fd, resp.to_wire(),
                      cfg_.io_timeout_seconds);
}

}  // namespace serve
}  // namespace exo2
