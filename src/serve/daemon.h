#ifndef EXO2_SERVE_DAEMON_H_
#define EXO2_SERVE_DAEMON_H_

/**
 * @file
 * The scheduling daemon `exo2d` (DESIGN.md §8): a long-running
 * service that answers tune/schedule requests over a unix-domain
 * socket, built crash-only on the persistent caches of src/cache/.
 *
 * Architecture:
 *
 *   listener thread ── accept ──> connection threads (one per client)
 *        │                              │ read frame, decode
 *        │                              │ ping/stats/shutdown: inline
 *        │                              ▼
 *        │                     bounded request queue ── full? ──> REJECTED
 *        │                              │                 (retry_after_ms)
 *        │                              ▼
 *        └── stop flag ──────── worker thread pool
 *                                       │ engine mutex (the scheduling
 *                                       │ engine's memo caches are
 *                                       │ single-threaded by design)
 *                                       ▼
 *                               autotune / replay  ──>  response frame
 *
 * Robustness posture — every request gets exactly one response and
 * the daemon never dies on a request's behalf:
 *
 *  - **Backpressure**: the queue is bounded (ServeConfig::queue_capacity).
 *    A full queue (real, or injected via the `queue_full` fault site)
 *    answers `rejected` + `retry_after_ms` immediately instead of
 *    growing without bound. Clients retry; memory does not.
 *  - **Deadlines**: each request carries a wall-clock budget, counted
 *    from *admission* (queue wait included). The degradation ladder:
 *    budget left -> full search; budget expires mid-search -> the
 *    tuner's best-so-far, `degraded`; budget already gone at dequeue
 *    -> cached winner if one replays, else the naive schedule,
 *    `degraded`. Deadlines produce weaker answers, never errors.
 *  - **Retry**: transient faults from the PR 6 taxonomy (compiler
 *    timeout/crash, sandbox trouble, resource limits) are retried
 *    inside the daemon with bounded exponential backoff before any
 *    degraded answer is considered.
 *  - **Drain**: request_stop() (SIGTERM in exo2d) stops admission —
 *    late arrivals are `rejected` with "draining" — finishes every
 *    queued request, flushes nothing because cache writes are
 *    write-through (atomic rename + fsync at store time), then joins.
 *  - **Crash-only**: kill -9 at any instant leaves only temp files and
 *    possibly-torn unreferenced entries; the next daemon's cache
 *    construction sweeps orphans and quarantines damage (cache.h).
 */

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/protocol.h"

namespace exo2 {
namespace serve {

/** Daemon configuration; every field has an EXO2_SERVE_* override
 *  (see from_env). */
struct ServeConfig
{
    std::string socket_path = "/tmp/exo2d.sock";
    int workers = 4;            ///< worker threads (EXO2_SERVE_WORKERS)
    int queue_capacity = 64;    ///< bounded queue (EXO2_SERVE_QUEUE)
    double default_deadline_seconds = 0;  ///< 0 = none (EXO2_SERVE_DEADLINE)
    int retry_attempts = 3;     ///< transient-fault retries (EXO2_SERVE_RETRIES)
    double retry_backoff_ms = 25;  ///< first backoff; doubles per attempt
    double io_timeout_seconds = 30;  ///< per-frame read/write budget
    int retry_after_ms = 100;   ///< hint sent with `rejected`

    /** Defaults overridden by EXO2_SERVE_SOCKET, EXO2_SERVE_WORKERS,
     *  EXO2_SERVE_QUEUE, EXO2_SERVE_DEADLINE (seconds),
     *  EXO2_SERVE_RETRIES. Throws ConfigError on out-of-range values
     *  (util/env.h) — a misconfigured daemon must not start. */
    static ServeConfig from_env();
};

/** Monotonic service counters (stats() and the op=stats response).
 *  A point-in-time copy: the live counters are lock-free atomics, so
 *  sampling them (bench_serve does, mid-run) never touches the queue
 *  mutex or blocks a worker. */
struct ServeStats
{
    uint64_t connections = 0;
    uint64_t requests = 0;        ///< frames decoded into requests
    uint64_t completed = 0;       ///< responses with status ok
    uint64_t degraded = 0;        ///< responses with status degraded
    uint64_t rejected = 0;        ///< backpressure/drain rejections
    uint64_t errors = 0;          ///< responses with status error
    uint64_t retries = 0;         ///< transient-fault retry sleeps
    uint64_t queue_peak = 0;      ///< high-water mark of queue depth
    uint64_t deadline_expired = 0;  ///< budget gone before dequeue
    /** Schedule submissions refused at admission because the static
     *  linter (DESIGN.md §9) proved an Error-level violation. */
    uint64_t lint_rejects = 0;
};

class Daemon
{
  public:
    explicit Daemon(ServeConfig cfg);
    ~Daemon();

    Daemon(const Daemon&) = delete;
    Daemon& operator=(const Daemon&) = delete;

    /** Bind the socket and start listener + workers. Throws
     *  ConfigError when the socket cannot be created (path too long,
     *  directory missing, ...). */
    void start();

    /** Begin a graceful drain: stop admitting, finish the queue, then
     *  stop the threads. Safe from signal-driven contexts via a
     *  self-pipe in exo2d; idempotent. */
    void request_stop();

    /** Block until a drain requested by request_stop() (or a shutdown
     *  request frame) has completed and all threads are joined. */
    void join();

    /** request_stop() + join(); called by the destructor. */
    void stop();

    bool running() const { return running_.load(); }
    bool draining() const { return draining_.load(); }
    const ServeConfig& config() const { return cfg_; }
    /** Atomic snapshot of the live counters; never blocks a worker. */
    ServeStats stats() const;

  private:
    struct Conn;
    struct Job;

    void listener_main();
    void connection_main(std::shared_ptr<Conn> conn);
    void worker_main();

    /** Handle one decoded request end-to-end (never throws). */
    ServeResponse process(const ServeRequest& req,
                          double admitted_monotonic);

    ServeResponse process_tune(const ServeRequest& req,
                               double admitted_monotonic);
    ServeResponse process_schedule(const ServeRequest& req);
    ServeResponse process_lint(const ServeRequest& req);

    void send_response(const std::shared_ptr<Conn>& conn,
                       const ServeResponse& resp);

    /** Lock-free mirror of ServeStats: every counter bumps through a
     *  relaxed atomic, so op=stats and bench sampling are wait-free
     *  with respect to the worker queue (whose mutex now guards only
     *  the queue). */
    struct AtomicStats
    {
        std::atomic<uint64_t> connections{0};
        std::atomic<uint64_t> requests{0};
        std::atomic<uint64_t> completed{0};
        std::atomic<uint64_t> degraded{0};
        std::atomic<uint64_t> rejected{0};
        std::atomic<uint64_t> errors{0};
        std::atomic<uint64_t> retries{0};
        std::atomic<uint64_t> queue_peak{0};
        std::atomic<uint64_t> deadline_expired{0};
        std::atomic<uint64_t> lint_rejects{0};
    };

    ServeConfig cfg_;
    int listen_fd_ = -1;

    std::atomic<bool> running_{false};
    std::atomic<bool> draining_{false};

    mutable std::mutex mu_;           ///< queue only
    std::condition_variable queue_cv_;
    std::deque<Job> queue_;
    AtomicStats stats_;
    /** Generates "r<n>" request ids for frames that arrive without
     *  one, so telemetry can always attribute a request. */
    std::atomic<uint64_t> req_seq_{0};

    /** The scheduling engine (analysis memo caches, cost-sim cache,
     *  interning tables) is single-threaded by design (ROADMAP);
     *  every worker takes this around engine work. Cache I/O, framing,
     *  and backpressure run outside it. */
    std::mutex engine_mu_;

    std::thread listener_;
    std::vector<std::thread> workers_;
    std::vector<std::thread> conns_;
    std::mutex conns_mu_;
};

}  // namespace serve
}  // namespace exo2

#endif  // EXO2_SERVE_DAEMON_H_
