#include "src/serve/protocol.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "src/ir/errors.h"

namespace exo2 {
namespace serve {

namespace {

/** Wait until `fd` is ready for `events` (POLLIN/POLLOUT) within the
 *  deadline. False on timeout or poll error. */
bool
wait_ready(int fd, short events, double timeout_seconds)
{
    int ms = timeout_seconds <= 0
                 ? 0
                 : static_cast<int>(timeout_seconds * 1000.0 + 0.5);
    if (ms < 1)
        ms = 1;
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    for (;;) {
        int rc = poll(&pfd, 1, ms);
        if (rc > 0)
            return (pfd.revents & (events | POLLHUP | POLLERR)) != 0;
        if (rc == 0)
            return false;  // timeout
        if (errno == EINTR)
            continue;
        return false;
    }
}

bool
write_all(int fd, const char* data, size_t len, double timeout_seconds)
{
    size_t off = 0;
    while (off < len) {
        // MSG_NOSIGNAL: a peer that hung up must surface as EPIPE,
        // not kill the daemon with SIGPIPE.
        ssize_t n = send(fd, data + off, len - off, MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            if (!wait_ready(fd, POLLOUT, timeout_seconds))
                return false;
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

bool
read_all(int fd, char* data, size_t len, double timeout_seconds)
{
    size_t off = 0;
    while (off < len) {
        ssize_t n = recv(fd, data + off, len - off, 0);
        if (n > 0) {
            off += static_cast<size_t>(n);
            continue;
        }
        if (n == 0)
            return false;  // EOF mid-frame
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            if (!wait_ready(fd, POLLIN, timeout_seconds))
                return false;
            continue;
        }
        if (errno == EINTR)
            continue;
        return false;
    }
    return true;
}

}  // namespace

bool
write_frame(int fd, const std::string& payload, double timeout_seconds)
{
    if (payload.size() > kMaxFrameBytes)
        return false;
    uint32_t len = static_cast<uint32_t>(payload.size());
    char hdr[4] = {static_cast<char>(len & 0xff),
                   static_cast<char>((len >> 8) & 0xff),
                   static_cast<char>((len >> 16) & 0xff),
                   static_cast<char>((len >> 24) & 0xff)};
    if (!write_all(fd, hdr, 4, timeout_seconds))
        return false;
    return write_all(fd, payload.data(), payload.size(),
                     timeout_seconds);
}

bool
read_frame(int fd, std::string* out, double timeout_seconds)
{
    char hdr[4];
    if (!wait_ready(fd, POLLIN, timeout_seconds))
        return false;
    if (!read_all(fd, hdr, 4, timeout_seconds))
        return false;
    uint32_t len = (static_cast<uint32_t>(static_cast<unsigned char>(hdr[0]))) |
                   (static_cast<uint32_t>(static_cast<unsigned char>(hdr[1])) << 8) |
                   (static_cast<uint32_t>(static_cast<unsigned char>(hdr[2])) << 16) |
                   (static_cast<uint32_t>(static_cast<unsigned char>(hdr[3])) << 24);
    if (len > kMaxFrameBytes)
        return false;  // corrupt prefix; don't trust it with memory
    out->resize(len);
    if (len == 0)
        return true;
    return read_all(fd, &(*out)[0], len, timeout_seconds);
}

std::string
escape_value(const std::string& v)
{
    std::string out;
    out.reserve(v.size());
    for (char c : v) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else
            out += c;
    }
    return out;
}

std::string
unescape_value(const std::string& v)
{
    std::string out;
    out.reserve(v.size());
    for (size_t i = 0; i < v.size(); i++) {
        if (v[i] == '\\' && i + 1 < v.size()) {
            i++;
            out += v[i] == 'n' ? '\n' : v[i];
        } else {
            out += v[i];
        }
    }
    return out;
}

std::string
encode_kv(const std::map<std::string, std::string>& kv)
{
    std::string out;
    for (const auto& [k, v] : kv) {
        out += k;
        out += '=';
        out += escape_value(v);
        out += '\n';
    }
    return out;
}

std::map<std::string, std::string>
decode_kv(const std::string& text)
{
    std::map<std::string, std::string> kv;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t nl = text.find('\n', pos);
        if (nl == std::string::npos)
            nl = text.size();
        size_t eq = text.find('=', pos);
        if (eq != std::string::npos && eq < nl) {
            kv[text.substr(pos, eq - pos)] =
                unescape_value(text.substr(eq + 1, nl - eq - 1));
        }
        pos = nl + 1;
    }
    return kv;
}

namespace {

int
kv_int(const std::map<std::string, std::string>& kv, const char* key,
       int fallback)
{
    auto it = kv.find(key);
    if (it == kv.end() || it->second.empty())
        return fallback;
    try {
        size_t used = 0;
        int v = std::stoi(it->second, &used);
        if (used != it->second.size())
            throw std::invalid_argument(it->second);
        return v;
    } catch (const std::exception&) {
        throw ConfigError(std::string("request field '") + key +
                          "' = '" + it->second +
                          "' is not an integer");
    }
}

double
kv_double(const std::map<std::string, std::string>& kv, const char* key,
          double fallback)
{
    auto it = kv.find(key);
    if (it == kv.end() || it->second.empty())
        return fallback;
    try {
        size_t used = 0;
        double v = std::stod(it->second, &used);
        if (used != it->second.size())
            throw std::invalid_argument(it->second);
        return v;
    } catch (const std::exception&) {
        throw ConfigError(std::string("request field '") + key +
                          "' = '" + it->second + "' is not a number");
    }
}

std::string
kv_str(const std::map<std::string, std::string>& kv, const char* key,
       const std::string& fallback)
{
    auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
}

}  // namespace

std::string
ServeRequest::to_wire() const
{
    std::map<std::string, std::string> kv;
    kv["id"] = id;
    kv["op"] = op;
    if (!kernel.empty())
        kv["kernel"] = kernel;
    if (!machine.empty())
        kv["machine"] = machine;
    if (!sizes.empty())
        kv["sizes"] = sizes;
    if (deadline_ms > 0)
        kv["deadline_ms"] = std::to_string(deadline_ms);
    if (beam > 0)
        kv["beam"] = std::to_string(beam);
    if (rounds > 0)
        kv["rounds"] = std::to_string(rounds);
    if (restarts >= 0)
        kv["restarts"] = std::to_string(restarts);
    if (jit_topk >= 0)
        kv["jit_topk"] = std::to_string(jit_topk);
    if (validate >= 0)
        kv["validate"] = std::to_string(validate);
    if (!script.empty())
        kv["script"] = script;
    return encode_kv(kv);
}

ServeRequest
ServeRequest::from_wire(const std::string& payload)
{
    auto kv = decode_kv(payload);
    ServeRequest r;
    r.id = kv_str(kv, "id", "");
    r.op = kv_str(kv, "op", "");
    r.kernel = kv_str(kv, "kernel", "");
    r.machine = kv_str(kv, "machine", "AVX2");
    r.sizes = kv_str(kv, "sizes", "");
    r.deadline_ms = kv_double(kv, "deadline_ms", 0);
    r.beam = kv_int(kv, "beam", 0);
    r.rounds = kv_int(kv, "rounds", 0);
    r.restarts = kv_int(kv, "restarts", -1);
    r.jit_topk = kv_int(kv, "jit_topk", -1);
    r.validate = kv_int(kv, "validate", -1);
    r.script = kv_str(kv, "script", "");
    return r;
}

std::string
ServeResponse::to_wire() const
{
    std::map<std::string, std::string> kv = extra;
    kv["id"] = id;
    kv["status"] = status;
    if (!detail.empty())
        kv["detail"] = detail;
    if (retry_after_ms > 0)
        kv["retry_after_ms"] = std::to_string(retry_after_ms);
    if (!script.empty())
        kv["script"] = script;
    char buf[64];
    if (cost > 0) {
        std::snprintf(buf, sizeof(buf), "%.17g", cost);
        kv["cost"] = buf;
    }
    if (naive_cost > 0) {
        std::snprintf(buf, sizeof(buf), "%.17g", naive_cost);
        kv["naive_cost"] = buf;
    }
    kv["validated"] = validated ? "1" : "0";
    kv["from_cache"] = from_cache ? "1" : "0";
    std::snprintf(buf, sizeof(buf), "%.3f", elapsed_ms);
    kv["elapsed_ms"] = buf;
    return encode_kv(kv);
}

ServeResponse
ServeResponse::from_wire(const std::string& payload)
{
    auto kv = decode_kv(payload);
    ServeResponse r;
    r.id = kv_str(kv, "id", "");
    r.status = kv_str(kv, "status", "error");
    r.detail = kv_str(kv, "detail", "");
    r.retry_after_ms = kv_int(kv, "retry_after_ms", 0);
    r.script = kv_str(kv, "script", "");
    r.cost = kv_double(kv, "cost", 0);
    r.naive_cost = kv_double(kv, "naive_cost", 0);
    r.validated = kv_int(kv, "validated", 0) != 0;
    r.from_cache = kv_int(kv, "from_cache", 0) != 0;
    r.elapsed_ms = kv_double(kv, "elapsed_ms", 0);
    for (const auto& [k, v] : kv) {
        static const char* known[] = {
            "id", "status", "detail", "retry_after_ms", "script",
            "cost", "naive_cost", "validated", "from_cache",
            "elapsed_ms"};
        bool is_known = false;
        for (const char* n : known)
            is_known = is_known || k == n;
        if (!is_known)
            r.extra[k] = v;
    }
    return r;
}

}  // namespace serve
}  // namespace exo2
