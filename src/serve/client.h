#ifndef EXO2_SERVE_CLIENT_H_
#define EXO2_SERVE_CLIENT_H_

/**
 * @file
 * Client side of the scheduling daemon's protocol: connect to the
 * unix socket, send one framed request, read one framed response.
 *
 * `call_with_retry` is the production entry point: it honours the
 * daemon's backpressure contract by sleeping `retry_after_ms` on a
 * `rejected` response and re-sending, up to a bounded attempt count.
 * Transport failures (daemon not up yet, daemon killed mid-call)
 * retry the connection the same way — the caller sees either a
 * daemon response or a final transport error, never an exception.
 */

#include <string>

#include "src/serve/protocol.h"

namespace exo2 {
namespace serve {

class ServeClient
{
  public:
    explicit ServeClient(std::string socket_path,
                         double io_timeout_seconds = 30.0);
    ~ServeClient();

    ServeClient(const ServeClient&) = delete;
    ServeClient& operator=(const ServeClient&) = delete;

    /** (Re)connect. False when the daemon is not accepting. */
    bool connect();
    void disconnect();
    bool connected() const { return fd_ >= 0; }

    /** One request/response round-trip on the open connection.
     *  False on transport failure (response then holds status=error
     *  with a transport detail). */
    bool call(const ServeRequest& req, ServeResponse* resp);

    /** call() + reconnect-on-transport-failure + bounded honouring of
     *  `rejected`/`retry_after_ms` backpressure. Returns the final
     *  response; `rejected` after `max_attempts` is returned as-is so
     *  the caller can account for shed load. */
    ServeResponse call_with_retry(const ServeRequest& req,
                                  int max_attempts = 10);

  private:
    std::string path_;
    double timeout_;
    int fd_ = -1;
};

}  // namespace serve
}  // namespace exo2

#endif  // EXO2_SERVE_CLIENT_H_
