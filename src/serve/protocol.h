#ifndef EXO2_SERVE_PROTOCOL_H_
#define EXO2_SERVE_PROTOCOL_H_

/**
 * @file
 * Wire protocol of the scheduling daemon (DESIGN.md §8).
 *
 * Transport: a unix-domain stream socket carrying *frames*. A frame
 * is a 4-byte little-endian payload length followed by that many
 * payload bytes; frames larger than kMaxFrameBytes are rejected so a
 * corrupt length prefix cannot make a reader allocate gigabytes.
 *
 * Payload: UTF-8 text, one `key=value` per line. Values escape
 * backslash and newline (`\\` and `\n`) so multi-line schedule
 * scripts travel as one value. Unknown keys are preserved in
 * `extra` on decode — a newer client talking to an older daemon
 * degrades instead of failing.
 *
 * Requests (client -> daemon):
 *   id       echo token, returned verbatim in the response; when
 *            omitted the daemon assigns one ("r<n>") and reports it
 *            in the request_id extra
 *   op       ping | stats | metrics | tune | schedule | lint | shutdown
 *   kernel   kernel name (tune/schedule/lint), e.g. "saxpy", "sgemm"
 *   machine  machine name (default "AVX2")
 *   sizes    canonical size env, e.g. "K=48,M=48,N=48"
 *   deadline_ms  per-request wall-clock budget (0 = daemon default)
 *   beam/rounds/restarts/jit_topk  optional tuner budget overrides
 *   validate 0/1 (tune default 1, schedule default 0)
 *   script   schedule script text (op=schedule)
 *
 * Responses (daemon -> client):
 *   id       echoed request id
 *   status   ok | degraded | rejected | error
 *   detail   human-readable context (error cause, rejection reason)
 *   retry_after_ms  backpressure hint, set when status=rejected
 *   script / cost / naive_cost / validated / from_cache / elapsed_ms
 *   (op=stats responses carry counters as extra key=value pairs plus
 *   latency_count and latency_p50/p95/p99_ms percentiles; op=metrics
 *   returns the whole observability registry — counters, gauges,
 *   latency and per-phase histograms — as one JSON value under
 *   `metrics`; op=lint — and op=schedule, which lints at admission —
 *   carry the static-analysis verdict in extra: lint_errors/
 *   lint_warnings/lint_infos/lint_proven/lint_safe plus the full
 *   diagnostic list as JSON under `lint`)
 *
 * Telemetry extras on every response: request_id (the request's id,
 *   daemon-assigned when the client sent none) and — for queued work
 *   (tune/schedule/lint) — a per-phase time breakdown
 *   phase_{queue,lint,cache,search,cjit,validate}_ms attributing
 *   where the request's wall clock went (DESIGN.md §10).
 *
 * Every response is one of exactly four statuses; "the daemon died"
 * is not among them. `rejected` means the bounded queue (or a drain
 * in progress) refused admission — retry after `retry_after_ms`.
 * `degraded` means a usable-but-weaker answer (deadline-cut search,
 * naive fallback). `error` is reserved for malformed or unsatisfiable
 * requests, never for transient faults (those are retried inside the
 * daemon and surface as degraded at worst).
 */

#include <cstdint>
#include <map>
#include <string>

namespace exo2 {
namespace serve {

/** Upper bound on one frame's payload (schedule scripts are a few KB;
 *  this is sanity, not capacity). */
constexpr uint32_t kMaxFrameBytes = 8u << 20;

// ---------------------------------------------------------------------------
// Framing (blocking fd + poll timeout; fd is a connected stream socket)
// ---------------------------------------------------------------------------

/** Write a length-prefixed frame. False on error/timeout/EPIPE (the
 *  caller treats the connection as dead; never raises SIGPIPE). */
bool write_frame(int fd, const std::string& payload,
                 double timeout_seconds);

/** Read one frame into `*out`. Returns false on EOF, timeout, a
 *  malformed length, or a short read. */
bool read_frame(int fd, std::string* out, double timeout_seconds);

// ---------------------------------------------------------------------------
// Payload encoding
// ---------------------------------------------------------------------------

/** Escape a value for one-line transport (`\` -> `\\`, LF -> `\n`). */
std::string escape_value(const std::string& v);
std::string unescape_value(const std::string& v);

/** Render a key=value map, one pair per line, values escaped. */
std::string encode_kv(const std::map<std::string, std::string>& kv);

/** Parse encode_kv output. Lines without '=' are ignored. */
std::map<std::string, std::string> decode_kv(const std::string& text);

// ---------------------------------------------------------------------------
// Typed request/response views
// ---------------------------------------------------------------------------

struct ServeRequest
{
    std::string id;
    std::string op;  ///< ping|stats|metrics|tune|schedule|lint|shutdown
    std::string kernel;
    std::string machine = "AVX2";
    std::string sizes;     ///< "K=48,M=48,N=48"
    double deadline_ms = 0;
    int beam = 0;          ///< 0 = tuner default
    int rounds = 0;
    int restarts = -1;     ///< -1 = tuner default (0 is meaningful)
    int jit_topk = -1;
    int validate = -1;     ///< -1 = op default
    std::string script;

    std::string to_wire() const;
    /** Throws ConfigError on unparseable numeric fields. */
    static ServeRequest from_wire(const std::string& payload);
};

struct ServeResponse
{
    std::string id;
    std::string status;  ///< ok|degraded|rejected|error
    std::string detail;
    int retry_after_ms = 0;
    std::string script;
    double cost = 0;
    double naive_cost = 0;
    bool validated = false;
    bool from_cache = false;
    double elapsed_ms = 0;
    /** Extra key=value pairs (op=stats counters; forward compat). */
    std::map<std::string, std::string> extra;

    bool ok() const { return status == "ok"; }
    bool degraded() const { return status == "degraded"; }
    bool rejected() const { return status == "rejected"; }

    std::string to_wire() const;
    static ServeResponse from_wire(const std::string& payload);
};

}  // namespace serve
}  // namespace exo2

#endif  // EXO2_SERVE_PROTOCOL_H_
