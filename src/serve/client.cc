#include "src/serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

namespace exo2 {
namespace serve {

ServeClient::ServeClient(std::string socket_path,
                         double io_timeout_seconds)
    : path_(std::move(socket_path)), timeout_(io_timeout_seconds) {}

ServeClient::~ServeClient() { disconnect(); }

bool
ServeClient::connect()
{
    disconnect();
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path_.size() >= sizeof(addr.sun_path))
        return false;
    std::strncpy(addr.sun_path, path_.c_str(),
                 sizeof(addr.sun_path) - 1);
    int fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return false;
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        close(fd);
        return false;
    }
    fd_ = fd;
    return true;
}

void
ServeClient::disconnect()
{
    if (fd_ >= 0) {
        close(fd_);
        fd_ = -1;
    }
}

bool
ServeClient::call(const ServeRequest& req, ServeResponse* resp)
{
    *resp = ServeResponse();
    resp->id = req.id;
    resp->status = "error";
    if (fd_ < 0 && !connect()) {
        resp->detail = "connect failed: " + path_;
        return false;
    }
    if (!write_frame(fd_, req.to_wire(), timeout_)) {
        resp->detail = "transport: write failed";
        disconnect();
        return false;
    }
    std::string payload;
    if (!read_frame(fd_, &payload, timeout_)) {
        resp->detail = "transport: read failed (daemon gone?)";
        disconnect();
        return false;
    }
    *resp = ServeResponse::from_wire(payload);
    return true;
}

ServeResponse
ServeClient::call_with_retry(const ServeRequest& req, int max_attempts)
{
    ServeResponse resp;
    for (int attempt = 0; attempt < max_attempts; attempt++) {
        bool transported = call(req, &resp);
        if (transported && !resp.rejected())
            return resp;
        // Backpressure or a daemon restart: both are "try again
        // shortly", with the daemon's own hint when it gave one.
        int sleep_ms =
            resp.rejected() && resp.retry_after_ms > 0
                ? resp.retry_after_ms
                : 50 * (attempt + 1);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(sleep_ms));
    }
    return resp;  // final rejected/error after exhausting attempts
}

}  // namespace serve
}  // namespace exo2
