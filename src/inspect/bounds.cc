#include "src/inspect/bounds.h"

#include <functional>
#include <map>

#include "src/analysis/context.h"
#include "src/ir/builder.h"
#include "src/ir/errors.h"
#include "src/ir/printer.h"

namespace exo2 {
namespace inspect {

namespace {

/** A bound iterator with its range at the point of an access. */
struct Binder
{
    std::string name;
    ExprPtr lo;
    ExprPtr hi;
};

/** Substitute each bound iterator by the extreme giving min (or max). */
ExprPtr
extreme(const ExprPtr& idx, const std::vector<Binder>& binders, bool want_max)
{
    Affine a = to_affine(idx);
    ExprPtr out = idx;
    for (const auto& b : binders) {
        int64_t c = a.coeff_of(b.name);
        if (c == 0) {
            if (a.mentions(b.name)) {
                throw SchedulingError(
                    "infer_bounds: non-affine use of iterator '" + b.name +
                    "' in index " + print_expr(idx));
            }
            continue;
        }
        bool take_hi = (c > 0) == want_max;
        ExprPtr v = take_hi ? (b.hi - idx_const(1)) : b.lo;
        out = expr_subst(out, b.name, v);
    }
    return out;
}

enum class Filter { All, Reads, Writes };

std::vector<WindowDim>
infer(const ProcPtr& p, const Cursor& scope, const std::string& buf,
      Filter filter)
{
    Cursor sc = p->forward(scope);
    StmtPtr root = sc.stmt();
    Context base = Context::at(p, sc.loc().path);
    struct Acc
    {
        std::vector<ExprPtr> lo;
        std::vector<ExprPtr> hi;  // exclusive
    };
    std::vector<Acc> accs;
    std::vector<Binder> binders;

    std::function<void(const std::vector<ExprPtr>&)> record =
        [&](const std::vector<ExprPtr>& idx) {
            Acc a;
            for (const auto& e : idx) {
                a.lo.push_back(extreme(e, binders, /*want_max=*/false));
                a.hi.push_back(extreme(e, binders, /*want_max=*/true) +
                               idx_const(1));
            }
            accs.push_back(std::move(a));
        };

    std::function<void(const ExprPtr&)> scan_expr;
    std::function<void(const StmtPtr&)> scan;
    scan_expr = [&](const ExprPtr& e) {
        if (!e)
            return;
        if (e->kind() == ExprKind::Read && e->name() == buf &&
            !e->idx().empty() && filter != Filter::Writes) {
            record(e->idx());
        }
        if (e->kind() == ExprKind::Window && e->name() == buf) {
            throw SchedulingError("infer_bounds: windowed access");
        }
        for (const auto& k : e->children())
            scan_expr(k);
    };
    scan = [&](const StmtPtr& s) {
        switch (s->kind()) {
          case StmtKind::Assign:
          case StmtKind::Reduce:
            if (s->name() == buf && filter != Filter::Reads)
                record(s->idx());
            if (s->name() == buf && s->kind() == StmtKind::Reduce &&
                filter == Filter::Reads) {
                record(s->idx());  // reductions also read
            }
            for (const auto& i : s->idx())
                scan_expr(i);
            scan_expr(s->rhs());
            return;
          case StmtKind::For: {
            binders.push_back({s->iter(), s->lo(), s->hi()});
            for (const auto& c : s->body())
                scan(c);
            binders.pop_back();
            return;
          }
          case StmtKind::If: {
            for (const auto& c : s->body())
                scan(c);
            for (const auto& c : s->orelse())
                scan(c);
            return;
          }
          default:
            for (const auto& c : s->body())
                scan(c);
            for (const auto& c : s->orelse())
                scan(c);
            return;
        }
    };
    // Bounds over the scope's body: the scope iterator itself is free.
    if (root->kind() == StmtKind::For || root->kind() == StmtKind::If) {
        for (const auto& c : root->body())
            scan(c);
        for (const auto& c : root->orelse())
            scan(c);
    } else {
        scan(root);
    }

    if (accs.empty()) {
        throw SchedulingError("infer_bounds: no accesses to '" + buf +
                              "' in scope");
    }
    size_t rank = accs[0].lo.size();
    for (const auto& a : accs) {
        if (a.lo.size() != rank)
            throw SchedulingError("infer_bounds: mixed access arity");
    }
    // Union: smallest lo, largest hi per dim (provably ordered).
    Context ctx = base;
    if (root->kind() == StmtKind::For)
        ctx.enter_loop(root->iter(), root->lo(), root->hi());
    std::vector<WindowDim> out;
    for (size_t d = 0; d < rank; d++) {
        ExprPtr lo = accs[0].lo[d];
        ExprPtr hi = accs[0].hi[d];
        for (size_t k = 1; k < accs.size(); k++) {
            const ExprPtr& cl = accs[k].lo[d];
            const ExprPtr& ch = accs[k].hi[d];
            if (ctx.prove_le(cl, lo)) {
                lo = cl;
            } else if (!ctx.prove_le(lo, cl)) {
                throw SchedulingError(
                    "infer_bounds: incomparable lower bounds " +
                    print_expr(lo) + " vs " + print_expr(cl));
            }
            if (ctx.prove_le(hi, ch)) {
                hi = ch;
            } else if (!ctx.prove_le(ch, hi)) {
                throw SchedulingError(
                    "infer_bounds: incomparable upper bounds");
            }
        }
        WindowDim wd;
        wd.lo = lo;
        wd.hi = hi;
        out.push_back(wd);
    }
    return out;
}

}  // namespace

std::vector<WindowDim>
infer_bounds(const ProcPtr& p, const Cursor& scope, const std::string& buf)
{
    return infer(p, scope, buf, Filter::All);
}

std::vector<WindowDim>
infer_read_bounds(const ProcPtr& p, const Cursor& scope,
                  const std::string& buf)
{
    return infer(p, scope, buf, Filter::Reads);
}

std::vector<WindowDim>
infer_write_bounds(const ProcPtr& p, const Cursor& scope,
                   const std::string& buf)
{
    return infer(p, scope, buf, Filter::Writes);
}

}  // namespace inspect
}  // namespace exo2
