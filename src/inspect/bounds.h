#ifndef EXO2_INSPECT_BOUNDS_H_
#define EXO2_INSPECT_BOUNDS_H_

/**
 * @file
 * User-level bounds inference (Section 4): determine the index window
 * a scope may access of a buffer, by combining primitive cursor
 * inspections (loop bounds, index expressions) with ordinary code that
 * tracks free/bound variables — exactly the library the paper builds
 * for its Halide reproduction (Section 6.3.2).
 */

#include <optional>
#include <string>
#include <vector>

#include "src/cursor/cursor.h"

namespace exo2 {
namespace inspect {

/**
 * Per-dimension half-open bounds `[lo, hi)` of every access to `buf`
 * inside the subtree at `scope`. Iterators bound within the scope are
 * eliminated by substituting their extreme values; variables free
 * outside the scope (including the scope's own loop iterator when
 * `include_own_iter` is false... the iterator of `scope` itself stays
 * free) appear symbolically in the result.
 *
 * Throws SchedulingError when an index is not affine in the bound
 * iterators or the per-access bounds cannot be ordered.
 */
std::vector<WindowDim> infer_bounds(const ProcPtr& p, const Cursor& scope,
                                    const std::string& buf);

/** Bounds of only the reads / only the writes of `buf`. */
std::vector<WindowDim> infer_read_bounds(const ProcPtr& p,
                                         const Cursor& scope,
                                         const std::string& buf);
std::vector<WindowDim> infer_write_bounds(const ProcPtr& p,
                                          const Cursor& scope,
                                          const std::string& buf);

}  // namespace inspect
}  // namespace exo2

#endif  // EXO2_INSPECT_BOUNDS_H_
