#ifndef EXO2_UTIL_RNG_H_
#define EXO2_UTIL_RNG_H_

/**
 * @file
 * The deterministic xorshift64 RNG shared by every seeded component
 * (schedule fuzzer, autotuner restarts, randomized equivalence tests).
 * One definition so the zero-state guard cannot drift between copies:
 * xorshift has a single absorbing state (0), and the seed whitening
 * XOR maps exactly one seed onto it.
 */

#include <cstdint>

namespace exo2 {

struct XorShiftRng
{
    uint64_t s;

    explicit XorShiftRng(uint64_t seed) : s(seed ^ 0x9E3779B97F4A7C15ull)
    {
        if (s == 0)
            s = 0x2545F4914F6CDD1Dull;
    }

    uint64_t next()
    {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        return s;
    }

    /** Uniform in [0, n). */
    int64_t below(int64_t n)
    {
        return static_cast<int64_t>(next() % static_cast<uint64_t>(n));
    }

    /** Uniform in [0, 1). */
    double unit() { return (next() >> 11) * (1.0 / 9007199254740992.0); }
};

}  // namespace exo2

#endif  // EXO2_UTIL_RNG_H_
