#ifndef EXO2_UTIL_STRINGS_H_
#define EXO2_UTIL_STRINGS_H_

/**
 * @file
 * Small string utilities shared across layers.
 */

#include <string>

namespace exo2 {

/**
 * Replace every occurrence of `key` in `tpl` with `value`, single
 * pass: replacements are never rescanned, so `value` may safely
 * contain `key` (or other placeholder-looking text). Both the machine
 * library's template instantiation ({W}/{T}/{MEM}/{NAME}) and the C
 * backend's intrinsic-snippet expansion ({dst}/{src}/...) go through
 * this helper.
 */
inline std::string
replace_all(const std::string& tpl, const std::string& key,
            const std::string& value)
{
    std::string out;
    size_t pos = 0;
    for (;;) {
        size_t f = tpl.find(key, pos);
        if (f == std::string::npos) {
            out.append(tpl, pos, std::string::npos);
            return out;
        }
        out.append(tpl, pos, f - pos);
        out += value;
        pos = f + key.size();
    }
}

}  // namespace exo2

#endif  // EXO2_UTIL_STRINGS_H_
