#ifndef EXO2_UTIL_FILE_ATOMIC_H_
#define EXO2_UTIL_FILE_ATOMIC_H_

/**
 * @file
 * The one audited atomic-write path (DESIGN.md §8), shared by the
 * persistent caches (src/cache/), the scheduling daemon (src/serve/),
 * and every benchmark JSON writer (bench/bench_util.h forwards here).
 *
 * Crash-only discipline: a file either keeps its previous contents or
 * atomically gains the new ones — a writer killed at any instant
 * (including `kill -9` mid-write) can leave at most an orphaned
 * `*.tmp.<pid>.*` sibling, never a truncated or interleaved target.
 * `sweep_stale_tmp_files` reclaims those orphans on the next startup,
 * completing the recovery story.
 */

#include <string>

namespace exo2 {
namespace util {

/**
 * Write `content` to `path` atomically: unique temp file in the same
 * directory, fsync of the file, rename over `path`, then (when
 * `durable` is set) fsync of the containing directory so the rename
 * itself survives a power cut. Returns false (and removes the temp
 * file) on any I/O failure; never throws.
 */
bool write_file_atomic(const std::string& path,
                       const std::string& content,
                       bool durable = false);

/**
 * Read the whole file into `out`. Returns false when the file cannot
 * be opened (out is cleared). A concurrent atomic writer can never
 * make this observe a torn state: renames replace the name, not the
 * bytes of an open file.
 */
bool read_file_text(const std::string& path, std::string* out);

/**
 * Remove `dir`-level `*.tmp.<pid>.*` orphans left by writers that died
 * mid-write. An orphan is reclaimed when its embedded pid is no longer
 * alive, or unconditionally when it is older than `max_age_seconds`
 * (pids recycle; a stale tmp from a recycled pid still goes away).
 * Returns the number of files removed. Never throws.
 */
int sweep_stale_tmp_files(const std::string& dir,
                          double max_age_seconds = 3600.0);

}  // namespace util
}  // namespace exo2

#endif  // EXO2_UTIL_FILE_ATOMIC_H_
