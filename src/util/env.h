#ifndef EXO2_UTIL_ENV_H_
#define EXO2_UTIL_ENV_H_

/**
 * @file
 * One audited path for reading configuration from the environment.
 *
 * Every `EXO2_*` knob used to be parsed at its point of use with a
 * bare `atoi`/`atof`, which silently mapped typos ("2O" -> 2, "" -> 0)
 * onto surprising defaults. These helpers centralize the rules:
 *
 *  - unset or empty variables return the caller's fallback;
 *  - set variables must parse *completely* (no trailing junk) and lie
 *    inside the caller's declared range, or a ConfigError is thrown
 *    whose message names the variable, the offending value, and the
 *    accepted range — a misconfigured worker fails loudly at startup
 *    instead of running with a nonsense limit.
 *
 * Knobs consolidated here: EXO2_CJIT_TIMEOUT, EXO2_SANDBOX_WALL,
 * EXO2_SANDBOX, EXO2_TUNE_* (beam/rounds/restarts/topk/seed/verbose),
 * EXO2_CACHE_DIR, and the EXO2_SERVE_* family (workers, queue,
 * deadline). EXO2_FAULTS keeps its own structured parser
 * (sandbox.h: parse_fault_spec) and EXO2_NATIVE_ISA its enum
 * validation (cjit.h), both already strict.
 */

#include <cstdint>
#include <string>

namespace exo2 {
namespace util {

/**
 * Integer knob. Unset/empty -> `fallback`. Set -> must be a full
 * decimal integer in [min, max], else ConfigError.
 */
int64_t env_int(const char* name, int64_t fallback, int64_t min,
                int64_t max);

/**
 * Floating-point knob (seconds, probabilities, ...). Unset/empty ->
 * `fallback`. Set -> must parse fully and lie in [min, max], else
 * ConfigError.
 */
double env_double(const char* name, double fallback, double min,
                  double max);

/**
 * Boolean knob. Unset/empty -> `fallback`. Accepts 0/1, on/off,
 * true/false, yes/no (case-insensitive); anything else throws
 * ConfigError.
 */
bool env_flag(const char* name, bool fallback);

/** String knob: unset or empty -> `fallback` (no validation). */
std::string env_string(const char* name, const std::string& fallback);

}  // namespace util
}  // namespace exo2

#endif  // EXO2_UTIL_ENV_H_
