#include "src/util/env.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "src/ir/errors.h"

namespace exo2 {
namespace util {

namespace {

/** The raw value, or nullptr when unset/empty (both mean "use the
 *  fallback": an empty export is how shell scripts un-set a knob). */
const char*
raw(const char* name)
{
    const char* v = std::getenv(name);
    return v && *v ? v : nullptr;
}

[[noreturn]] void
bad_value(const char* name, const char* value, const std::string& why)
{
    throw ConfigError(std::string(name) + "='" + value + "': " + why);
}

}  // namespace

int64_t
env_int(const char* name, int64_t fallback, int64_t min, int64_t max)
{
    const char* v = raw(name);
    if (!v)
        return fallback;
    errno = 0;
    char* end = nullptr;
    long long parsed = std::strtoll(v, &end, 10);
    if (end == v || *end != '\0')
        bad_value(name, v, "not an integer");
    if (errno == ERANGE)
        bad_value(name, v, "out of 64-bit range");
    if (parsed < min || parsed > max) {
        bad_value(name, v,
                  "out of range [" + std::to_string(min) + ", " +
                      std::to_string(max) + "]");
    }
    return parsed;
}

double
env_double(const char* name, double fallback, double min, double max)
{
    const char* v = raw(name);
    if (!v)
        return fallback;
    errno = 0;
    char* end = nullptr;
    double parsed = std::strtod(v, &end);
    if (end == v || *end != '\0')
        bad_value(name, v, "not a number");
    if (errno == ERANGE)
        bad_value(name, v, "out of double range");
    if (!(parsed >= min && parsed <= max)) {  // also rejects NaN
        bad_value(name, v,
                  "out of range [" + std::to_string(min) + ", " +
                      std::to_string(max) + "]");
    }
    return parsed;
}

bool
env_flag(const char* name, bool fallback)
{
    const char* v = raw(name);
    if (!v)
        return fallback;
    std::string s;
    for (const char* p = v; *p; p++)
        s += static_cast<char>(
            std::tolower(static_cast<unsigned char>(*p)));
    if (s == "1" || s == "on" || s == "true" || s == "yes")
        return true;
    if (s == "0" || s == "off" || s == "false" || s == "no")
        return false;
    bad_value(name, v, "not a boolean (expected 0/1, on/off, "
                       "true/false, or yes/no)");
}

std::string
env_string(const char* name, const std::string& fallback)
{
    const char* v = raw(name);
    return v ? v : fallback;
}

}  // namespace util
}  // namespace exo2
